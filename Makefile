GO ?= go

.PHONY: build test race vet fmt check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the packages with concurrency (obs registry, charlib
# worker pool) plus the rest of the tree.
race:
	$(GO) test -race ./internal/obs/... ./internal/charlib/... ./internal/synth/...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The CI gate: everything that must be green before merging.
check: build vet fmt test race
	@echo "check: OK"

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

clean:
	rm -rf build
