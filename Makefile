GO ?= go

.PHONY: build test race vet fmt check bench bench-diff bench-record explain trend cost paperbench microbench cec sim clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the packages with concurrency (obs registry, sparse
# solver state, charlib worker pool, cec fallback miter workers) plus the
# rest of the tree.
race:
	$(GO) test -race ./internal/obs/... ./internal/linalg/... ./internal/spice/... ./internal/charlib/... ./internal/synth/... ./internal/cec/... ./internal/qor/... ./internal/gsim/...

# Equivalence-checker suite under the race detector (the parallel fallback
# miter is the flow's most concurrent code path).
cec:
	$(GO) test -race -v ./internal/cec/...

# Gate-level simulator suite (docs/GSIM.md) plus a quick end-to-end run:
# synthesize an EPFL benchmark, simulate it event-driven with annotated
# delays, and report measured-activity power.
sim:
	$(GO) test ./internal/gsim/...
	$(GO) run ./cmd/cryosim -vectors 256 -power epfl:ctrl

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The CI gate: everything that must be green before merging.
check: build vet fmt test race
	@echo "check: OK"

# QoR flight recorder (docs/QOR.md). `make bench` records a fresh smoke run
# and gates it against the committed baseline; `make bench-record` refreshes
# the baseline after an intentional QoR change; `make bench-diff` compares
# the two most recent BENCH_*.json recordings without running the flow.
BENCH_PROFILE ?= smoke
BENCH_REPEAT  ?= 2
BENCH_HISTORY ?= bench/history.jsonl

bench:
	$(GO) run ./cmd/cryobench -profile $(BENCH_PROFILE) -repeat $(BENCH_REPEAT) \
		-history $(BENCH_HISTORY) \
		-out build/BENCH_latest.json -baseline bench/baseline-$(BENCH_PROFILE).json

bench-record:
	$(GO) run ./cmd/cryobench -profile $(BENCH_PROFILE) -repeat $(BENCH_REPEAT) \
		-history $(BENCH_HISTORY) \
		-out bench/baseline-$(BENCH_PROFILE).json

bench-diff:
	@set -- $$(ls -t BENCH_*.json build/BENCH_*.json 2>/dev/null | head -2); \
	if [ $$# -lt 2 ]; then echo "need two BENCH_*.json recordings"; exit 1; fi; \
	echo "diffing $$2 (base) vs $$1 (current)"; \
	$(GO) run ./cmd/cryobench -diff -explain "$$2" "$$1"

# Attribution self-diff smoke (docs/EXPLAIN.md): diffing the committed
# baseline against itself must attribute zero delta.
explain:
	@mkdir -p build
	$(GO) run ./cmd/cryobench -diff -explain \
		-explain-json build/self-explain.json \
		bench/baseline-$(BENCH_PROFILE).json bench/baseline-$(BENCH_PROFILE).json
	@grep -q '"zero_delta": true' build/self-explain.json && \
		echo "explain: self-diff is zero-delta, OK"

# Run-over-run drift table from the metrics history store that `make bench`
# appends to (docs/OBSERVABILITY.md). TREND_GLOB subsets the metrics.
TREND_LAST ?= 8
TREND_GLOB ?= *

trend:
	$(GO) run ./cmd/cryoobs trend -history $(BENCH_HISTORY) \
		-last $(TREND_LAST) -glob '$(TREND_GLOB)'

# Span-scoped cost attribution of a smoke bench run (docs/OBSERVABILITY.md):
# per-stage CPU/alloc/engine-counter tree on stderr, journal + history
# copies under build/ for cryoobs cost.
cost:
	@mkdir -p build
	$(GO) run ./cmd/cryobench -profile $(BENCH_PROFILE) -repeat 1 \
		-out build/BENCH_cost.json \
		-journal build/cost-journal.jsonl -history build/cost-history.jsonl \
		-cost -

# Go microbenchmarks (the paper-benchmark target predating cryobench).
paperbench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Linear-solver and op-point microbenchmarks (dense vs sparse vs refactor).
microbench:
	$(GO) test ./internal/linalg ./internal/spice -run xxx -bench . -benchmem -benchtime 100x

clean:
	rm -rf build
