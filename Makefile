GO ?= go

.PHONY: build test race vet fmt check bench cec clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the packages with concurrency (obs registry, charlib
# worker pool, cec fallback miter workers) plus the rest of the tree.
race:
	$(GO) test -race ./internal/obs/... ./internal/charlib/... ./internal/synth/... ./internal/cec/...

# Equivalence-checker suite under the race detector (the parallel fallback
# miter is the flow's most concurrent code path).
cec:
	$(GO) test -race -v ./internal/cec/...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The CI gate: everything that must be green before merging.
check: build vet fmt test race
	@echo "check: OK"

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

clean:
	rm -rf build
