// Package constants provides physical constants and unit helpers shared by
// the device, SPICE, and characterization packages.
package constants

const (
	// Boltzmann is the Boltzmann constant in J/K.
	Boltzmann = 1.380649e-23
	// ElectronCharge is the elementary charge in C.
	ElectronCharge = 1.602176634e-19
	// Eps0 is the vacuum permittivity in F/m.
	Eps0 = 8.8541878128e-12
	// EpsSiO2 is the relative permittivity of SiO2.
	EpsSiO2 = 3.9
	// EpsSi is the relative permittivity of silicon.
	EpsSi = 11.7

	// RoomTemp is the reference "room temperature" in K used throughout the
	// paper (300 K).
	RoomTemp = 300.0
	// CryoTemp is the paper's cryogenic operating point in K (10 K).
	CryoTemp = 10.0
)

// ThermalVoltage returns kT/q in volts for the given temperature in kelvin.
func ThermalVoltage(tempK float64) float64 {
	return Boltzmann * tempK / ElectronCharge
}
