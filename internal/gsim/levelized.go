package gsim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/obs"
)

// Engine is a gate-level simulation engine over a compiled model. Both
// engines are deterministic: the same model, options, and vectors produce
// bit-identical results.
type Engine interface {
	// Name identifies the engine ("levelized" or "event").
	Name() string
	// Run executes the vectors in order and returns the measured result.
	Run(ctx context.Context, vectors []Vector) (*Result, error)
}

// levelized is the zero-delay compiled engine: gates evaluate once per
// vector in topological order, 64 vectors at a time in word-parallel
// planes. It is the functional/regression mode — fast, two-valued, and
// bit-compatible with netlist.ToggleRates' activity measurement when fed
// the same stimulus stream.
type levelized struct {
	m *Model
}

// NewLevelized returns the zero-delay levelized engine.
func NewLevelized(m *Model) Engine { return &levelized{m: m} }

func (e *levelized) Name() string { return "levelized" }

// SimWords evaluates one 64-vector word plane: in[i] carries the stimulus
// bits of primary input i. The returned slice holds one word per net.
func (m *Model) SimWords(in []uint64) ([]uint64, error) {
	if len(in) != len(m.Inputs) {
		return nil, fmt.Errorf("gsim: SimWords wants %d input words, got %d", len(m.Inputs), len(in))
	}
	vals := make([]uint64, len(m.Nets))
	vals[netConst1] = ^uint64(0)
	for i, idx := range m.Inputs {
		vals[idx] = in[i]
	}
	for gi := range m.Gates {
		g := &m.Gates[gi]
		var out uint64
		// Shannon row selection, bit-parallel: for each ON-set row of the
		// truth table, AND together the matching input planes.
		for row := 0; row < 1<<uint(len(g.In)); row++ {
			if g.Truth&(1<<uint(row)) == 0 {
				continue
			}
			sel := ^uint64(0)
			for i, idx := range g.In {
				if row&(1<<uint(i)) != 0 {
					sel &= vals[idx]
				} else {
					sel &= ^vals[idx]
				}
			}
			out |= sel
		}
		vals[g.Out] = out
	}
	return vals, nil
}

func (e *levelized) Run(ctx context.Context, vectors []Vector) (*Result, error) {
	m := e.m
	_, span := obs.Start(ctx, "gsim.levelized")
	span.SetAttr("design", m.Name)
	span.SetAttr("vectors", len(vectors))
	defer span.End()
	obs.C("gsim.runs").Inc()

	res := &Result{
		Engine:     "levelized",
		Vectors:    len(vectors),
		Toggles:    make([]int64, len(m.Nets)),
		OutputBits: make([][]bool, len(vectors)),
		Final:      make([]Value, len(m.Nets)),
		model:      m,
	}
	for i := range res.Final {
		res.Final[i] = VX
	}
	res.Final[netConst0] = V0
	res.Final[netConst1] = V1

	in := make([]uint64, len(m.Inputs))
	var prev []uint64
	var evals int64
	task := obs.Progress("gsim.vectors", int64(len(vectors)))
	defer task.Finish()
	for base := 0; base < len(vectors); base += 64 {
		chunk := len(vectors) - base
		if chunk > 64 {
			chunk = 64
		}
		for i := range in {
			var w uint64
			for b := 0; b < chunk; b++ {
				if len(vectors[base+b]) != len(m.Inputs) {
					return nil, fmt.Errorf("gsim: vector %d has %d bits, want %d",
						base+b, len(vectors[base+b]), len(m.Inputs))
				}
				if vectors[base+b][i] {
					w |= 1 << uint(b)
				}
			}
			in[i] = w
		}
		vals, err := m.SimWords(in)
		if err != nil {
			return nil, err
		}
		evals += int64(len(m.Gates))
		// Toggle counting: transitions between consecutive vectors inside
		// the word, plus the boundary to the previous word's last vector.
		mask := ^uint64(0)
		if chunk < 64 {
			mask = 1<<uint(chunk) - 1
		}
		for net, w := range vals {
			flips := bits.OnesCount64((w ^ (w << 1)) &^ 1 & mask)
			if prev != nil && (prev[net]>>63)&1 != w&1 {
				flips++
			}
			res.Toggles[net] += int64(flips)
		}
		for b := 0; b < chunk; b++ {
			ob := make([]bool, len(m.Outputs))
			for o, idx := range m.Outputs {
				ob[o] = vals[idx]&(1<<uint(b)) != 0
			}
			res.OutputBits[base+b] = ob
		}
		if base+chunk == len(vectors) {
			last := uint(chunk - 1)
			for net, w := range vals {
				if w&(1<<last) != 0 {
					res.Final[net] = V1
				} else {
					res.Final[net] = V0
				}
			}
		}
		prev = vals
		task.Add(int64(chunk))
	}
	res.Events = evals
	obs.C("gsim.vectors").Add(int64(len(vectors)))
	obs.C("gsim.gate_evals").Add(evals)
	obs.C("gsim.toggles").Add(res.TotalToggles())
	span.SetAttr("toggles", res.TotalToggles())
	return res, nil
}
