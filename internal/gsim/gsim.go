// Package gsim is the gate-level logic simulator of the flow: it executes a
// technology-mapped netlist on concrete stimulus vectors, producing per-net
// toggle counts (the measured switching activity that internal/power can
// consume in place of its statistical model), VCD traces, and per-vector
// primary-output values for functional signoff against AIG simulation.
//
// A netlist is first compiled (Compile) into a flat evaluation graph: nets
// become dense indices, every gate carries its PDK truth table (the same
// table the mapper's cut matching and the CEC elaborator use), and fanout
// lists plus topological levels are frozen. Two engines then run behind one
// interface:
//
//   - the levelized engine (levelized.go) evaluates gates in topological
//     order with 64-bit vector parallelism and zero delay — the fast
//     functional/regression mode, bit-compatible with the random-vector
//     activity model in netlist.ToggleRates;
//   - the event-driven engine (event.go) propagates individual value
//     changes through a time-ordered event queue with per-arc transport
//     delays annotated from the characterized liberty tables (delay.go), so
//     hazard glitches — the dynamic-power events a zero-delay model assumes
//     away — are simulated, counted, and dumpable to VCD.
//
// Logic is three-valued (0/1/X). The event engine starts every net at X and
// lets the first stimulus wave resolve the circuit, matching conventional
// gate-level simulator semantics; the levelized engine is two-valued (its
// inputs are always fully specified vectors). See docs/GSIM.md.
package gsim

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// Value is a three-valued logic level.
type Value uint8

// Logic values. X is the unknown/uninitialized state.
const (
	V0 Value = iota
	V1
	VX
)

// String renders the value the way VCD does.
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	default:
		return "x"
	}
}

// Reserved net indices in every compiled model.
const (
	netConst0 = 0
	netConst1 = 1
)

// Gate is one compiled cell instance.
type Gate struct {
	Name  string  // instance name from the netlist
	Cell  string  // library cell name
	Truth uint64  // output truth table over In (bit i of the row = In[i])
	In    []int32 // input net indices
	Out   int32   // output net index
	Level int32   // topological level (inputs/constants are level 0)
	// DelayFs[i] is the input-to-output transport delay of arc i in
	// femtoseconds; nil until Annotate, in which case engines fall back to
	// DefaultDelayFs per arc.
	DelayFs []int64
}

// DefaultDelayFs is the per-arc unit delay (1 ps) used by the event engine
// when the model has not been annotated against a liberty library.
const DefaultDelayFs = 1000

// Model is a netlist compiled for simulation.
type Model struct {
	Name  string
	Nets  []string // net index -> name; [0]=1'b0, [1]=1'b1
	Gates []Gate   // topological order (drivers before loads)

	// Inputs / Outputs are net indices of the primary ports, in the
	// netlist's port order. Output aliases are pre-resolved, so Outputs may
	// repeat indices or point at constants.
	Inputs      []int32
	InputNames  []string
	Outputs     []int32
	OutputNames []string

	// fanouts[net] lists the gates reading the net, in gate order.
	fanouts [][]int32

	nl        *netlist.Netlist
	netIndex  map[string]int32
	annotated bool
}

// Compile flattens a mapped netlist into an evaluation graph. Every cell
// must be combinational with a truth table (≤ 6 inputs) — the same
// restriction the CEC elaborator imposes.
func Compile(nl *netlist.Netlist) (*Model, error) {
	m := &Model{
		Name:     nl.Name,
		Nets:     []string{netlist.Const0, netlist.Const1},
		nl:       nl,
		netIndex: make(map[string]int32, len(nl.Inputs)+len(nl.Gates)+2),
	}
	m.netIndex[netlist.Const0] = netConst0
	m.netIndex[netlist.Const1] = netConst1
	intern := func(name string) int32 {
		if i, ok := m.netIndex[name]; ok {
			return i
		}
		i := int32(len(m.Nets))
		m.Nets = append(m.Nets, name)
		m.netIndex[name] = i
		return i
	}
	for _, in := range nl.Inputs {
		if _, dup := m.netIndex[in]; dup {
			return nil, fmt.Errorf("gsim: duplicate input %q", in)
		}
		idx := intern(in)
		m.Inputs = append(m.Inputs, idx)
		m.InputNames = append(m.InputNames, in)
	}
	driven := make([]bool, len(m.Nets))
	driven[netConst0], driven[netConst1] = true, true
	for _, idx := range m.Inputs {
		driven[idx] = true
	}
	level := make([]int32, len(m.Nets))
	for _, g := range nl.Gates {
		def := nl.Cell(g.Cell)
		if def == nil {
			return nil, fmt.Errorf("gsim: gate %s: unknown cell %q", g.Name, g.Cell)
		}
		if len(def.Outputs) != 1 {
			return nil, fmt.Errorf("gsim: gate %s: cell %s is not single-output", g.Name, g.Cell)
		}
		tt, ok := def.Truth(def.Outputs[0])
		if !ok {
			return nil, fmt.Errorf("gsim: gate %s: cell %s has no truth table (sequential or >6 inputs)", g.Name, g.Cell)
		}
		cg := Gate{Name: g.Name, Cell: g.Cell, Truth: tt, In: make([]int32, len(g.Inputs))}
		var lvl int32
		for i, net := range g.Inputs {
			idx, ok := m.netIndex[net]
			if !ok || !driven[idx] {
				return nil, fmt.Errorf("gsim: gate %s: net %q used before driven", g.Name, net)
			}
			cg.In[i] = idx
			if level[idx] > lvl {
				lvl = level[idx]
			}
		}
		out := intern(g.Output)
		for int(out) >= len(driven) {
			driven = append(driven, false)
			level = append(level, 0)
		}
		if driven[out] {
			return nil, fmt.Errorf("gsim: gate %s: net %q driven twice", g.Name, g.Output)
		}
		driven[out] = true
		level[out] = lvl + 1
		cg.Out = out
		cg.Level = lvl + 1
		m.Gates = append(m.Gates, cg)
	}
	for _, o := range nl.Outputs {
		drv := nl.Resolve(o)
		idx, ok := m.netIndex[drv]
		if !ok || !driven[idx] {
			return nil, fmt.Errorf("gsim: output %q resolves to undriven net %q", o, drv)
		}
		m.Outputs = append(m.Outputs, idx)
		m.OutputNames = append(m.OutputNames, o)
	}
	m.fanouts = make([][]int32, len(m.Nets))
	for gi, g := range m.Gates {
		for _, in := range g.In {
			m.fanouts[in] = append(m.fanouts[in], int32(gi))
		}
	}
	return m, nil
}

// NumNets returns the net count (constants included).
func (m *Model) NumNets() int { return len(m.Nets) }

// NetIndex returns the compiled index of a net name.
func (m *Model) NetIndex(name string) (int, bool) {
	i, ok := m.netIndex[name]
	return int(i), ok
}

// Annotated reports whether per-arc liberty delays have been attached.
func (m *Model) Annotated() bool { return m.annotated }

// Depth returns the maximum gate level.
func (m *Model) Depth() int {
	var d int32
	for i := range m.Gates {
		if m.Gates[i].Level > d {
			d = m.Gates[i].Level
		}
	}
	return int(d)
}

// evalTruth3 evaluates a truth table under three-valued inputs: if every
// input is known it is a direct row lookup; otherwise the X inputs are
// cofactored and the output is X unless both cofactor sets agree.
func evalTruth3(tt uint64, in []Value) Value {
	row := 0
	unknown := 0
	unknownBits := make([]int, 0, 6)
	for i, v := range in {
		switch v {
		case V1:
			row |= 1 << uint(i)
		case VX:
			unknown++
			unknownBits = append(unknownBits, i)
		}
	}
	if unknown == 0 {
		if tt&(1<<uint(row)) != 0 {
			return V1
		}
		return V0
	}
	// Enumerate the 2^unknown completions; stop early once both output
	// values are seen.
	seen0, seen1 := false, false
	for k := 0; k < 1<<uint(unknown); k++ {
		r := row
		for b, bit := range unknownBits {
			if k&(1<<uint(b)) != 0 {
				r |= 1 << uint(bit)
			}
		}
		if tt&(1<<uint(r)) != 0 {
			seen1 = true
		} else {
			seen0 = true
		}
		if seen0 && seen1 {
			return VX
		}
	}
	if seen1 {
		return V1
	}
	return V0
}

// Vector is one primary-input assignment in Model.InputNames order.
type Vector []bool

// RandomVectors draws n uniform random vectors for the model's inputs,
// deterministic for a seed. The bit stream is laid out exactly like
// netlist.ToggleRates' word-parallel stimulus (per 64-vector round, one
// fresh word per input in port order), so a zero-delay gsim run over these
// vectors measures the same activity the statistical model simulates.
func (m *Model) RandomVectors(n int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Vector, n)
	for v := range out {
		out[v] = make(Vector, len(m.Inputs))
	}
	for base := 0; base < n; base += 64 {
		for i := range m.Inputs {
			w := rng.Uint64()
			for b := 0; b < 64 && base+b < n; b++ {
				out[base+b][i] = w&(1<<uint(b)) != 0
			}
		}
	}
	return out
}

// Result is the outcome of a simulation run.
type Result struct {
	Engine  string // "levelized" or "event"
	Vectors int

	// Toggles counts 0↔1 transitions per net index over the whole run
	// (transitions out of X are not toggles). The event engine counts every
	// committed change — glitches included; the levelized engine counts one
	// per changed settled value.
	Toggles []int64

	// OutputBits[v][o] is primary output o's settled value under vector v.
	OutputBits [][]bool

	// Final holds the settled value of every net after the last vector.
	Final []Value

	// Events is the number of committed net-change events processed (event
	// engine; the levelized engine counts gate evaluations).
	Events int64
	// MaxQueue is the event-queue high-water mark (event engine only).
	MaxQueue int
	// SimTimeFs is the total simulated time in femtoseconds (event engine
	// only).
	SimTimeFs int64

	model *Model
}

// ToggleRates returns per-net-name toggle densities (transitions per
// vector), the unit internal/power consumes.
func (r *Result) ToggleRates() map[string]float64 {
	rates := make(map[string]float64, len(r.Toggles))
	if r.Vectors == 0 {
		return rates
	}
	for i, t := range r.Toggles {
		rates[r.model.Nets[i]] = float64(t) / float64(r.Vectors)
	}
	return rates
}

// TotalToggles sums toggle counts over all nets.
func (r *Result) TotalToggles() int64 {
	var n int64
	for _, t := range r.Toggles {
		n += t
	}
	return n
}

// Activity packages measured per-net toggle densities as a
// power.ActivitySource (the interface is satisfied structurally, keeping
// gsim free of a power dependency).
type Activity struct {
	Rates map[string]float64
}

// NetActivity returns the measured rates; the netlist argument is the
// design the rates were measured on and is only used for validation.
func (a Activity) NetActivity(nl *netlist.Netlist) (map[string]float64, error) {
	if a.Rates == nil {
		return nil, fmt.Errorf("gsim: empty activity")
	}
	return a.Rates, nil
}

// Activity returns the run's measured activity in power.ActivitySource form.
func (r *Result) Activity() Activity { return Activity{Rates: r.ToggleRates()} }
