package gsim

import (
	"context"
	"fmt"

	"repro/internal/liberty"
	"repro/internal/obs"
	"repro/internal/sta"
)

// Annotate attaches per-arc transport delays from a characterized liberty
// library: one STA pass computes every net's worst-case input slew and
// capacitive load (the same loading model the signoff timer uses), then
// each gate arc gets the worse of its rise/fall NLDM delays looked up at
// that (slew, load) operating point, quantized to femtoseconds. After
// annotation the event engine's glitch timing tracks the characterized
// corner instead of unit delays.
func (m *Model) Annotate(ctx context.Context, lib *liberty.Library, opt sta.Options) error {
	ctx, span := obs.Start(ctx, "gsim.annotate")
	span.SetAttr("design", m.Name)
	defer span.End()
	timing, err := sta.Analyze(ctx, m.nl, lib, opt)
	if err != nil {
		return fmt.Errorf("gsim: annotate: %w", err)
	}
	for gi := range m.Gates {
		g := &m.Gates[gi]
		lc := lib.FindCell(g.Cell)
		if lc == nil {
			return fmt.Errorf("gsim: annotate: cell %s not in library %s", g.Cell, lib.Name)
		}
		def := m.nl.Cell(g.Cell)
		outPin := def.Outputs[0]
		load := timing.Load[m.Nets[g.Out]]
		g.DelayFs = make([]int64, len(g.In))
		for i, in := range g.In {
			tm := lc.Timing(outPin, def.Inputs[i])
			if tm == nil {
				return fmt.Errorf("gsim: annotate: cell %s missing arc %s->%s", g.Cell, def.Inputs[i], outPin)
			}
			slew := timing.Slew[m.Nets[in]]
			d := tm.CellRise.Lookup(slew, load)
			if f := tm.CellFall.Lookup(slew, load); f > d {
				d = f
			}
			fs := int64(d*1e15 + 0.5)
			if fs < 1 {
				fs = 1 // keep causality: every arc advances time
			}
			g.DelayFs[i] = fs
		}
	}
	m.annotated = true
	obs.C("gsim.annotations").Inc()
	span.SetAttr("settle_fs", m.SettleBoundFs())
	return nil
}
