package gsim

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// EventOptions tunes the event-driven engine.
type EventOptions struct {
	// PeriodFs is the stimulus period: vector k is applied at k*PeriodFs.
	// It is clamped up to the model's static settle bound (longest
	// annotated path plus margin) so event timestamps stay monotonic;
	// 0 picks the bound automatically.
	PeriodFs int64
	// Trace, when non-nil, receives every committed value change (VCD).
	Trace *VCDTracer
}

// event is one scheduled net update. seq breaks time ties in scheduling
// order, keeping the simulation deterministic.
type event struct {
	t   int64
	seq int64
	net int32
	val Value
}

// pendingEvent is a live heap entry of one net's transport schedule.
type pendingEvent struct {
	t   int64
	seq int64
}

// eventEngine is the delay-annotated engine: value changes propagate
// individually through a time-ordered queue with per-arc transport delays,
// so unequal path delays produce hazard glitches — each one a counted
// toggle — instead of being absorbed the way the zero-delay engine absorbs
// them. Logic is three-valued: every net starts at X and the first stimulus
// wave resolves the circuit.
type eventEngine struct {
	m   *Model
	opt EventOptions
}

// NewEvent returns the event-driven engine over a compiled (and usually
// liberty-annotated) model. Without annotation every arc gets
// DefaultDelayFs.
func NewEvent(m *Model, opt EventOptions) Engine { return &eventEngine{m: m, opt: opt} }

func (e *eventEngine) Name() string { return "event" }

// SettleBoundFs returns the static longest input-to-output path through the
// annotated arc delays — an upper bound on how long one stimulus wave can
// keep generating events.
func (m *Model) SettleBoundFs() int64 {
	arr := make([]int64, len(m.Nets))
	var worst int64
	for gi := range m.Gates {
		g := &m.Gates[gi]
		var out int64
		for i, in := range g.In {
			if a := arr[in] + g.arcDelayFs(i); a > out {
				out = a
			}
		}
		arr[g.Out] = out
		if out > worst {
			worst = out
		}
	}
	return worst
}

// arcDelayFs returns arc i's transport delay in femtoseconds.
func (g *Gate) arcDelayFs(i int) int64 {
	if g.DelayFs != nil {
		return g.DelayFs[i]
	}
	return DefaultDelayFs
}

func (e *eventEngine) Run(ctx context.Context, vectors []Vector) (*Result, error) {
	m := e.m
	_, span := obs.Start(ctx, "gsim.event")
	span.SetAttr("design", m.Name)
	span.SetAttr("vectors", len(vectors))
	defer span.End()
	obs.C("gsim.runs").Inc()

	settle := m.SettleBoundFs()
	period := e.opt.PeriodFs
	if min := settle + settle/4 + 1000; period < min {
		period = min
	}

	res := &Result{
		Engine:     "event",
		Vectors:    len(vectors),
		Toggles:    make([]int64, len(m.Nets)),
		OutputBits: make([][]bool, len(vectors)),
		model:      m,
	}

	// All nets start unknown — including the constant rails, whose
	// resolving events at t=0 seed evaluation of constant-only cones.
	cur := make([]Value, len(m.Nets))
	for i := range cur {
		cur[i] = VX
	}
	if e.opt.Trace != nil {
		if err := e.opt.Trace.begin(cur); err != nil {
			return nil, err
		}
	}

	var q eventQueue
	var seq int64
	// pending[net] lists the net's live events as (time, seq) in scheduling
	// order. Scheduling follows VHDL transport semantics: a new event
	// supersedes pending ones arriving at or after it (with per-arc delays a
	// slow arc's stale value can otherwise land after — and revert — the
	// final value delivered by a faster arc). Superseded events stay in the
	// heap and are dropped at pop time: an event is live only while it is
	// the head of its net's pending queue.
	pending := make([][]pendingEvent, len(m.Nets))
	push := func(t int64, net int32, val Value) {
		p := pending[net]
		for len(p) > 0 && p[len(p)-1].t >= t {
			p = p[:len(p)-1]
		}
		pending[net] = append(p, pendingEvent{t: t, seq: seq})
		q.push(event{t: t, seq: seq, net: net, val: val})
		seq++
		if len(q) > res.MaxQueue {
			res.MaxQueue = len(q)
		}
	}

	// Delta-batch scratch state: events sharing a timestamp are staged
	// together (last scheduled wins per net) and each affected gate
	// re-evaluates once per time step, so simultaneous input changes do not
	// manufacture zero-width glitches. Distinct arrival times still glitch —
	// that is the point of this engine.
	staged := make([]Value, len(m.Nets))
	stagedSet := make([]bool, len(m.Nets))
	changedSet := make([]bool, len(m.Nets))
	var stagedOrder, changedOrder []int32
	gateSet := make([]bool, len(m.Gates))
	var gateOrder []int32
	scratch := make([]Value, 6)

	task := obs.Progress("gsim.vectors", int64(len(vectors)))
	defer task.Finish()
	for v, vec := range vectors {
		task.Inc()
		if len(vec) != len(m.Inputs) {
			return nil, fmt.Errorf("gsim: vector %d has %d bits, want %d", v, len(vec), len(m.Inputs))
		}
		t0 := int64(v) * period
		if v == 0 {
			push(t0, netConst0, V0)
			push(t0, netConst1, V1)
		}
		for i, idx := range m.Inputs {
			val := V0
			if vec[i] {
				val = V1
			}
			if cur[idx] != val {
				push(t0, idx, val)
			}
		}
		// Drain: inputs only change at vector boundaries, so the wave runs
		// to quiescence before the next vector is applied.
		for len(q) > 0 {
			t := q[0].t
			// Stage every live event at time t; superseded ones (no longer
			// the head of their net's pending queue) are dropped here.
			for len(q) > 0 && q[0].t == t {
				ev := q.pop()
				p := pending[ev.net]
				if len(p) == 0 || p[0].seq != ev.seq {
					continue // superseded by a later-scheduled event
				}
				pending[ev.net] = p[1:]
				if !stagedSet[ev.net] {
					stagedSet[ev.net] = true
					stagedOrder = append(stagedOrder, ev.net)
				}
				staged[ev.net] = ev.val
			}
			// Commit changed nets and collect affected gates (once each).
			for _, net := range stagedOrder {
				stagedSet[net] = false
				val := staged[net]
				if cur[net] == val {
					continue
				}
				old := cur[net]
				cur[net] = val
				changedSet[net] = true
				changedOrder = append(changedOrder, net)
				res.Events++
				if (old == V0 && val == V1) || (old == V1 && val == V0) {
					res.Toggles[net]++
				}
				if e.opt.Trace != nil {
					e.opt.Trace.change(t, net, val)
				}
				for _, gi := range m.fanouts[net] {
					if !gateSet[gi] {
						gateSet[gi] = true
						gateOrder = append(gateOrder, gi)
					}
				}
			}
			stagedOrder = stagedOrder[:0]
			// Re-evaluate each affected gate once; the new value departs on
			// every changed-input arc's own delay. Scheduling is
			// unconditional on changed arcs — an event that arrives equal to
			// the then-current value simply commits nothing, while skipping
			// it here would lose the trailing edge of reconvergent pulses.
			for _, gi := range gateOrder {
				gateSet[gi] = false
				g := &m.Gates[gi]
				ins := scratch[:len(g.In)]
				for i, in := range g.In {
					ins[i] = cur[in]
				}
				out := evalTruth3(g.Truth, ins)
				for i, in := range g.In {
					if changedSet[in] {
						push(t+g.arcDelayFs(i), g.Out, out)
					}
				}
			}
			gateOrder = gateOrder[:0]
			for _, net := range changedOrder {
				changedSet[net] = false
			}
			changedOrder = changedOrder[:0]
		}
		ob := make([]bool, len(m.Outputs))
		for o, idx := range m.Outputs {
			ob[o] = cur[idx] == V1
		}
		res.OutputBits[v] = ob
	}
	res.Final = cur
	res.SimTimeFs = int64(len(vectors)) * period
	if e.opt.Trace != nil {
		e.opt.Trace.time(res.SimTimeFs)
	}

	obs.C("gsim.vectors").Add(int64(len(vectors)))
	obs.C("gsim.events").Add(res.Events)
	obs.C("gsim.toggles").Add(res.TotalToggles())
	obs.H("gsim.wheel_depth").Observe(float64(res.MaxQueue))
	span.SetAttr("events", res.Events)
	span.SetAttr("toggles", res.TotalToggles())
	span.SetAttr("max_queue", res.MaxQueue)
	return res, nil
}

// eventQueue is a binary min-heap ordered by (time, seq): time order first,
// scheduling order among simultaneous events — fully deterministic.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		(*q)[i], (*q)[parent] = (*q)[parent], (*q)[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*q).less(l, small) {
			small = l
		}
		if r < n && (*q).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*q)[i], (*q)[small] = (*q)[small], (*q)[i]
		i = small
	}
	return top
}
