package gsim

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/aig"
	"repro/internal/epfl"
	"repro/internal/liberty"
	"repro/internal/mapper"
	"repro/internal/netlist"
	"repro/internal/pdk"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/testlib"
)

// mapped is a synthesized EPFL smoke circuit shared across tests.
type mappedCircuit struct {
	g   *aig.AIG
	nl  *netlist.Netlist
	lib *liberty.Library
}

var (
	mappedMu    sync.Mutex
	mappedCache = map[string]*mappedCircuit{}
)

// buildMapped synthesizes an EPFL circuit through the real flow (testlib
// liberty model, cut mapper, CryoPDA scenario) and caches the result.
func buildMapped(t *testing.T, name string) *mappedCircuit {
	t.Helper()
	mappedMu.Lock()
	defer mappedMu.Unlock()
	if c, ok := mappedCache[name]; ok {
		return c
	}
	g, err := epfl.Build(name)
	if err != nil {
		t.Fatalf("epfl.Build(%s): %v", name, err)
	}
	lib, cells := testlib.Build(pdk.Catalog(), testlib.Names(), 300)
	ml, err := mapper.BuildMatchLibrary(lib, cells, 6)
	if err != nil {
		t.Fatalf("match library: %v", err)
	}
	res, err := synth.Synthesize(context.Background(), g, ml, synth.Options{Scenario: synth.CryoPDA, Seed: 1})
	if err != nil {
		t.Fatalf("synthesize %s: %v", name, err)
	}
	c := &mappedCircuit{g: g, nl: res.Netlist, lib: lib}
	mappedCache[name] = c
	return c
}

var smokeCircuits = []string{"ctrl", "dec", "int2float"}

// aigOutputBits simulates the source AIG over the same vectors, returning
// per-vector output values keyed by PO name.
func aigOutputBits(t *testing.T, g *aig.AIG, m *Model, vectors []Vector) [][]bool {
	t.Helper()
	// Map the model's input order onto AIG PI order by name.
	piPos := make([]int, g.NumPIs())
	for i := 0; i < g.NumPIs(); i++ {
		found := false
		for j, name := range m.InputNames {
			if name == g.PIName(i) {
				piPos[i] = j
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("AIG PI %q not a model input", g.PIName(i))
		}
	}
	// Map model outputs onto AIG PO indices by name.
	poIdx := make([]int, len(m.OutputNames))
	for o, name := range m.OutputNames {
		found := false
		for i := 0; i < g.NumPOs(); i++ {
			if g.POName(i) == name {
				poIdx[o] = i
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("model output %q not an AIG PO", name)
		}
	}
	out := make([][]bool, len(vectors))
	words := make([]uint64, g.NumPIs())
	for base := 0; base < len(vectors); base += 64 {
		chunk := len(vectors) - base
		if chunk > 64 {
			chunk = 64
		}
		for i := range words {
			var w uint64
			for b := 0; b < chunk; b++ {
				if vectors[base+b][piPos[i]] {
					w |= 1 << uint(b)
				}
			}
			words[i] = w
		}
		vals := g.SimWords(words)
		for b := 0; b < chunk; b++ {
			ob := make([]bool, len(m.OutputNames))
			for o := range m.OutputNames {
				ob[o] = aig.EvalLit(vals, g.PO(poIdx[o]))&(1<<uint(b)) != 0
			}
			out[base+b] = ob
		}
	}
	return out
}

func diffBits(a, b [][]bool) (int, int, bool) {
	for v := range a {
		for o := range a[v] {
			if a[v][o] != b[v][o] {
				return v, o, false
			}
		}
	}
	return 0, 0, true
}

// TestEngineCrossCheck is the tentpole acceptance test: on every EPFL smoke
// circuit, 256 seeded random vectors must produce identical primary-output
// values from the levelized engine, the event engine (unit delays), the
// event engine (liberty-annotated delays), and word-parallel simulation of
// the pre-mapping AIG.
func TestEngineCrossCheck(t *testing.T) {
	ctx := context.Background()
	for _, name := range smokeCircuits {
		t.Run(name, func(t *testing.T) {
			c := buildMapped(t, name)
			m, err := Compile(c.nl)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			vectors := m.RandomVectors(256, 42)

			lev, err := NewLevelized(m).Run(ctx, vectors)
			if err != nil {
				t.Fatalf("levelized: %v", err)
			}
			evt, err := NewEvent(m, EventOptions{}).Run(ctx, vectors)
			if err != nil {
				t.Fatalf("event: %v", err)
			}
			if err := m.Annotate(ctx, c.lib, sta.Options{}); err != nil {
				t.Fatalf("annotate: %v", err)
			}
			ann, err := NewEvent(m, EventOptions{}).Run(ctx, vectors)
			if err != nil {
				t.Fatalf("event annotated: %v", err)
			}
			ref := aigOutputBits(t, c.g, m, vectors)

			for _, r := range []*Result{evt, ann} {
				if v, o, ok := diffBits(lev.OutputBits, r.OutputBits); !ok {
					t.Errorf("%s: vector %d output %s: levelized=%v %s=%v",
						r.Engine, v, m.OutputNames[o], lev.OutputBits[v][o], r.Engine, r.OutputBits[v][o])
				}
			}
			if v, o, ok := diffBits(lev.OutputBits, ref); !ok {
				t.Errorf("AIG mismatch: vector %d output %s", v, m.OutputNames[o])
			}

			// The settled state after the last vector must agree net-by-net.
			for _, r := range []*Result{evt, ann} {
				for i := range m.Nets {
					if r.Final[i] != lev.Final[i] {
						t.Errorf("%s: net %s settled to %s, levelized %s",
							r.Engine, m.Nets[i], r.Final[i], lev.Final[i])
					}
				}
			}

			// Transport-delay simulation sees every settled transition plus
			// hazard glitches, never fewer.
			if evt.TotalToggles() < lev.TotalToggles() {
				t.Errorf("event engine counted %d toggles < levelized %d",
					evt.TotalToggles(), lev.TotalToggles())
			}
		})
	}
}

// glitchFixture builds the canonical hazard circuit: y = XOR(a, INV(INV(a))).
// The settled value of y is constant 0, so a zero-delay simulator never
// toggles it; with transport delays every edge of a races its delayed copy
// through the XOR, emitting a two-toggle pulse.
func glitchFixture(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("glitch", pdk.Catalog())
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"y"}
	for _, g := range []struct {
		cell string
		in   []string
		out  string
	}{
		{"INVx1", []string{"a"}, "n1"},
		{"INVx1", []string{"n1"}, "n2"},
		{"XOR2x1", []string{"a", "n2"}, "y"},
	} {
		if err := nl.AddGate(g.cell, g.in, g.out); err != nil {
			t.Fatalf("AddGate(%s): %v", g.cell, err)
		}
	}
	return nl
}

func TestGlitchFixture(t *testing.T) {
	ctx := context.Background()
	m, err := Compile(glitchFixture(t))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Alternate a: 0,1,0,1,... — seven edges.
	vectors := make([]Vector, 8)
	for v := range vectors {
		vectors[v] = Vector{v%2 == 1}
	}
	lev, err := NewLevelized(m).Run(ctx, vectors)
	if err != nil {
		t.Fatalf("levelized: %v", err)
	}
	evt, err := NewEvent(m, EventOptions{}).Run(ctx, vectors)
	if err != nil {
		t.Fatalf("event: %v", err)
	}
	y, ok := m.NetIndex("y")
	if !ok {
		t.Fatal("net y missing")
	}
	if lev.Toggles[y] != 0 {
		t.Errorf("zero-delay y toggles = %d, want 0 (settled value is constant)", lev.Toggles[y])
	}
	if want := int64(14); evt.Toggles[y] != want {
		t.Errorf("event y toggles = %d, want %d (two per input edge)", evt.Toggles[y], want)
	}
	// Settled outputs still agree.
	if v, o, ok := diffBits(lev.OutputBits, evt.OutputBits); !ok {
		t.Errorf("outputs diverge at vector %d output %d", v, o)
	}
}

func TestEvalTruth3(t *testing.T) {
	const (
		and2 = uint64(0b1000)
		or2  = uint64(0b1110)
		xor2 = uint64(0b0110)
		buf  = uint64(0b10)
	)
	cases := []struct {
		name string
		tt   uint64
		in   []Value
		want Value
	}{
		{"and(1,1)", and2, []Value{V1, V1}, V1},
		{"and(0,x)", and2, []Value{V0, VX}, V0},
		{"and(x,0)", and2, []Value{VX, V0}, V0},
		{"and(1,x)", and2, []Value{V1, VX}, VX},
		{"or(1,x)", or2, []Value{V1, VX}, V1},
		{"or(0,x)", or2, []Value{V0, VX}, VX},
		{"xor(x,0)", xor2, []Value{VX, V0}, VX},
		{"xor(x,x)", xor2, []Value{VX, VX}, VX},
		{"buf(x)", buf, []Value{VX}, VX},
		{"buf(1)", buf, []Value{V1}, V1},
	}
	for _, c := range cases {
		if got := evalTruth3(c.tt, c.in); got != c.want {
			t.Errorf("%s = %s, want %s", c.name, got, c.want)
		}
	}
}

// TestActivityMatchesToggleRates pins the stimulus-stream compatibility the
// power flow relies on: a zero-delay gsim run over RandomVectors measures
// exactly the activity netlist.ToggleRates models for the same seed.
func TestActivityMatchesToggleRates(t *testing.T) {
	c := buildMapped(t, "ctrl")
	m, err := Compile(c.nl)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	const rounds, seed = 4, 7
	vectors := m.RandomVectors(rounds*64, seed)
	res, err := NewLevelized(m).Run(context.Background(), vectors)
	if err != nil {
		t.Fatalf("levelized: %v", err)
	}
	measured := res.ToggleRates()
	model, err := c.nl.ToggleRates(rounds, seed)
	if err != nil {
		t.Fatalf("ToggleRates: %v", err)
	}
	for net, want := range model {
		if got := measured[net]; math.Abs(got-want) > 1e-12 {
			t.Errorf("net %s: measured %g, model %g", net, got, want)
		}
	}
	for net := range measured {
		if _, ok := model[net]; !ok && measured[net] != 0 {
			t.Errorf("net %s measured %g but absent from model", net, measured[net])
		}
	}
}

func TestCompileRejectsDoubleDriver(t *testing.T) {
	nl := netlist.New("bad", pdk.Catalog())
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"y"}
	if err := nl.AddGate("INVx1", []string{"a"}, "y"); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddGate("BUFx1", []string{"a"}, "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(nl); err == nil || !strings.Contains(err.Error(), "driven twice") {
		t.Errorf("Compile = %v, want double-driver error", err)
	}
}

// TestEventVCDTrace smoke-checks the digital VCD path: scalar declarations,
// the all-X initial dump, and glitch pulses all land in the stream.
func TestEventVCDTrace(t *testing.T) {
	m, err := Compile(glitchFixture(t))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var buf bytes.Buffer
	tr := NewVCDTracer(&buf, m, "test")
	vectors := []Vector{{false}, {true}, {false}}
	if _, err := NewEvent(m, EventOptions{Trace: tr}).Run(context.Background(), vectors); err != nil {
		t.Fatalf("event: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1fs $end",
		"$var wire 1 ! " + netlist.Const0 + " $end",
		"$dumpvars",
		"#0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The initial dump records every net as x.
	if got := strings.Count(out, "x"); got < m.NumNets() {
		t.Errorf("VCD has %d x entries, want >= %d nets", got, m.NumNets())
	}
}
