package gsim

import (
	"io"

	"repro/internal/vcd"
)

// VCDTracer streams committed net changes to a VCD file through the shared
// internal/vcd encoder: every net becomes a `$var wire 1` scalar, and the
// initial $dumpvars block records the all-X pre-stimulus state, so glitch
// pulses land in the same viewers the analog cryospice dumps open in.
type VCDTracer struct {
	enc  *vcd.Writer
	vars []vcd.Var
	last int64 // last declared timestamp; -1 before begin
}

// NewVCDTracer declares the model's nets (in index order) against out.
// Timescale is 1 fs, matching the engines' timestamps.
func NewVCDTracer(out io.Writer, m *Model, date string) *VCDTracer {
	enc := vcd.NewWriter(out)
	enc.Date(date)
	enc.Version("cryosim gate-level")
	enc.Timescale("1fs")
	enc.Scope(m.Name)
	t := &VCDTracer{enc: enc, vars: make([]vcd.Var, len(m.Nets)), last: -1}
	for i, name := range m.Nets {
		t.vars[i] = enc.Wire(name)
	}
	enc.EndHeader()
	return t
}

// begin dumps the initial state of every net at time 0.
func (t *VCDTracer) begin(cur []Value) error {
	t.enc.Time(0)
	t.last = 0
	for i, v := range cur {
		t.enc.SetScalar(t.vars[i], scalarByte(v))
	}
	return t.enc.Err()
}

// change records one committed net update. The timestamp is only re-declared
// when time advances, so a burst of same-instant commits shares one `#t`.
func (t *VCDTracer) change(timeFs int64, net int32, v Value) {
	if timeFs != t.last {
		t.enc.Time(timeFs)
		t.last = timeFs
	}
	t.enc.SetScalar(t.vars[net], scalarByte(v))
}

// time advances the pending timestamp (used to stamp the end of the run).
func (t *VCDTracer) time(timeFs int64) {
	if timeFs != t.last {
		t.enc.Time(timeFs)
		t.last = timeFs
	}
}

// Close finishes the stream and returns the first write error.
func (t *VCDTracer) Close() error { return t.enc.Close() }

func scalarByte(v Value) byte {
	switch v {
	case V0:
		return vcd.Scalar0
	case V1:
		return vcd.Scalar1
	default:
		return vcd.ScalarX
	}
}
