// Package pdk provides an ASAP7-style standard-cell library for the target
// FinFET technology: transistor-level netlist generators for 200
// combinational and sequential cells, with functional truth tables and
// drive-strength variants. It substitutes for the paper's post-layout ASAP7
// netlists — the geometry is near-identical between 7 nm and the 5 nm
// target, as the paper itself argues.
package pdk

import "fmt"

// ExprOp is the operator of an Expr node.
type ExprOp byte

// Expression operators for pull-network topology: a literal names a gate
// net; And composes its children in series; Or composes them in parallel.
const (
	OpLit ExprOp = 'l'
	OpAnd ExprOp = '&'
	OpOr  ExprOp = '|'
)

// Expr describes the pull-down condition of a static CMOS stage as an
// AND/OR tree over (non-inverted) gate nets. The pull-up network is the
// structural dual.
type Expr struct {
	Op   ExprOp
	Name string  // literal net name (OpLit only)
	Kids []*Expr // operands (OpAnd/OpOr)
}

// Lit returns a literal expression for the named net.
func Lit(name string) *Expr { return &Expr{Op: OpLit, Name: name} }

// And returns the series composition of the given expressions.
func And(kids ...*Expr) *Expr { return &Expr{Op: OpAnd, Kids: kids} }

// Or returns the parallel composition of the given expressions.
func Or(kids ...*Expr) *Expr { return &Expr{Op: OpOr, Kids: kids} }

// Dual returns the structural dual (ANDs and ORs swapped), which describes
// the pull-up network of a static CMOS stage.
func (e *Expr) Dual() *Expr {
	switch e.Op {
	case OpLit:
		return e
	case OpAnd:
		kids := make([]*Expr, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = k.Dual()
		}
		return &Expr{Op: OpOr, Kids: kids}
	case OpOr:
		kids := make([]*Expr, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = k.Dual()
		}
		return &Expr{Op: OpAnd, Kids: kids}
	}
	panic("pdk: bad expr op")
}

// Eval evaluates the expression under the given net assignment.
func (e *Expr) Eval(val map[string]bool) bool {
	switch e.Op {
	case OpLit:
		return val[e.Name]
	case OpAnd:
		for _, k := range e.Kids {
			if !k.Eval(val) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range e.Kids {
			if k.Eval(val) {
				return true
			}
		}
		return false
	}
	panic("pdk: bad expr op")
}

// SeriesDepth returns the longest series chain (transistor stack height) of
// the network realizing the expression, where And means series.
func (e *Expr) SeriesDepth() int {
	switch e.Op {
	case OpLit:
		return 1
	case OpAnd:
		d := 0
		for _, k := range e.Kids {
			d += k.SeriesDepth()
		}
		return d
	case OpOr:
		d := 0
		for _, k := range e.Kids {
			if kd := k.SeriesDepth(); kd > d {
				d = kd
			}
		}
		return d
	}
	panic("pdk: bad expr op")
}

// Literals appends every literal net name in the expression to dst (with
// duplicates) and returns it.
func (e *Expr) Literals(dst []string) []string {
	switch e.Op {
	case OpLit:
		return append(dst, e.Name)
	default:
		for _, k := range e.Kids {
			dst = k.Literals(dst)
		}
		return dst
	}
}

// CountDevices returns the transistor count of one pull network realizing
// the expression.
func (e *Expr) CountDevices() int {
	if e.Op == OpLit {
		return 1
	}
	n := 0
	for _, k := range e.Kids {
		n += k.CountDevices()
	}
	return n
}

func (e *Expr) String() string {
	switch e.Op {
	case OpLit:
		return e.Name
	case OpAnd, OpOr:
		s := "("
		for i, k := range e.Kids {
			if i > 0 {
				s += string(e.Op)
			}
			s += k.String()
		}
		return s + ")"
	}
	return fmt.Sprintf("?%c", e.Op)
}
