package pdk

import "fmt"

// letters used for generated gate input pins.
var pinLetters = []string{"A", "B", "C", "D", "E", "F"}

func litsFor(n int) []*Expr {
	out := make([]*Expr, n)
	for i := 0; i < n; i++ {
		out[i] = Lit(pinLetters[i])
	}
	return out
}

func comb(base string, drive int, inputs []string, outputs []string, stages []Stage) *Cell {
	c := &Cell{
		Name:    fmt.Sprintf("%sx%d", base, drive),
		Base:    base,
		Drive:   drive,
		Inputs:  inputs,
		Outputs: outputs,
		Stages:  stages,
	}
	c.computeTruth()
	return c
}

func inv(in, out string) Stage { return Stage{Out: out, F: Lit(in)} }

// buildBase constructs the stage network for a named base function. It
// returns inputs, outputs, stages, and whether the cell is sequential.
func buildBase(base string, drive int) *Cell {
	switch base {
	case "INV", "CLKINV":
		return comb(base, drive, []string{"A"}, []string{"Y"}, []Stage{inv("A", "Y")})
	case "BUF", "CLKBUF":
		return comb(base, drive, []string{"A"}, []string{"Y"}, []Stage{inv("A", "yn"), inv("yn", "Y")})
	case "DLY4":
		return comb(base, drive, []string{"A"}, []string{"Y"}, []Stage{
			inv("A", "t1"), inv("t1", "t2"), inv("t2", "t3"), inv("t3", "Y"),
		})
	case "NAND2", "NAND3", "NAND4", "NAND5":
		n := int(base[4] - '0')
		ins := pinLetters[:n]
		return comb(base, drive, ins, []string{"Y"}, []Stage{{Out: "Y", F: And(litsFor(n)...)}})
	case "NOR2", "NOR3", "NOR4", "NOR5":
		n := int(base[3] - '0')
		ins := pinLetters[:n]
		return comb(base, drive, ins, []string{"Y"}, []Stage{{Out: "Y", F: Or(litsFor(n)...)}})
	case "AND2", "AND3", "AND4", "AND5":
		n := int(base[3] - '0')
		ins := pinLetters[:n]
		return comb(base, drive, ins, []string{"Y"}, []Stage{
			{Out: "yn", F: And(litsFor(n)...)}, inv("yn", "Y"),
		})
	case "OR2", "OR3", "OR4", "OR5":
		n := int(base[2] - '0')
		ins := pinLetters[:n]
		return comb(base, drive, ins, []string{"Y"}, []Stage{
			{Out: "yn", F: Or(litsFor(n)...)}, inv("yn", "Y"),
		})
	case "NAND2B": // Y = !(!A & B)
		return comb(base, drive, []string{"A", "B"}, []string{"Y"}, []Stage{
			inv("A", "an"), {Out: "Y", F: And(Lit("an"), Lit("B"))},
		})
	case "NOR2B": // Y = !(!A | B)
		return comb(base, drive, []string{"A", "B"}, []string{"Y"}, []Stage{
			inv("A", "an"), {Out: "Y", F: Or(Lit("an"), Lit("B"))},
		})
	case "AND2B": // Y = !A & B
		return comb(base, drive, []string{"A", "B"}, []string{"Y"}, []Stage{
			inv("A", "an"), {Out: "yn", F: And(Lit("an"), Lit("B"))}, inv("yn", "Y"),
		})
	case "OR2B": // Y = !A | B
		return comb(base, drive, []string{"A", "B"}, []string{"Y"}, []Stage{
			inv("A", "an"), {Out: "yn", F: Or(Lit("an"), Lit("B"))}, inv("yn", "Y"),
		})
	case "AOI21": // Y = !(A&B | C)
		return comb(base, drive, pinLetters[:3], []string{"Y"}, []Stage{
			{Out: "Y", F: Or(And(Lit("A"), Lit("B")), Lit("C"))},
		})
	case "OAI21": // Y = !((A|B) & C)
		return comb(base, drive, pinLetters[:3], []string{"Y"}, []Stage{
			{Out: "Y", F: And(Or(Lit("A"), Lit("B")), Lit("C"))},
		})
	case "AOI22":
		return comb(base, drive, pinLetters[:4], []string{"Y"}, []Stage{
			{Out: "Y", F: Or(And(Lit("A"), Lit("B")), And(Lit("C"), Lit("D")))},
		})
	case "OAI22":
		return comb(base, drive, pinLetters[:4], []string{"Y"}, []Stage{
			{Out: "Y", F: And(Or(Lit("A"), Lit("B")), Or(Lit("C"), Lit("D")))},
		})
	case "AOI211":
		return comb(base, drive, pinLetters[:4], []string{"Y"}, []Stage{
			{Out: "Y", F: Or(And(Lit("A"), Lit("B")), Lit("C"), Lit("D"))},
		})
	case "OAI211":
		return comb(base, drive, pinLetters[:4], []string{"Y"}, []Stage{
			{Out: "Y", F: And(Or(Lit("A"), Lit("B")), Lit("C"), Lit("D"))},
		})
	case "AOI221":
		return comb(base, drive, pinLetters[:5], []string{"Y"}, []Stage{
			{Out: "Y", F: Or(And(Lit("A"), Lit("B")), And(Lit("C"), Lit("D")), Lit("E"))},
		})
	case "OAI221":
		return comb(base, drive, pinLetters[:5], []string{"Y"}, []Stage{
			{Out: "Y", F: And(Or(Lit("A"), Lit("B")), Or(Lit("C"), Lit("D")), Lit("E"))},
		})
	case "AOI222":
		return comb(base, drive, pinLetters[:6], []string{"Y"}, []Stage{
			{Out: "Y", F: Or(And(Lit("A"), Lit("B")), And(Lit("C"), Lit("D")), And(Lit("E"), Lit("F")))},
		})
	case "OAI222":
		return comb(base, drive, pinLetters[:6], []string{"Y"}, []Stage{
			{Out: "Y", F: And(Or(Lit("A"), Lit("B")), Or(Lit("C"), Lit("D")), Or(Lit("E"), Lit("F")))},
		})
	case "AOI31":
		return comb(base, drive, pinLetters[:4], []string{"Y"}, []Stage{
			{Out: "Y", F: Or(And(Lit("A"), Lit("B"), Lit("C")), Lit("D"))},
		})
	case "OAI31":
		return comb(base, drive, pinLetters[:4], []string{"Y"}, []Stage{
			{Out: "Y", F: And(Or(Lit("A"), Lit("B"), Lit("C")), Lit("D"))},
		})
	case "AOI32":
		return comb(base, drive, pinLetters[:5], []string{"Y"}, []Stage{
			{Out: "Y", F: Or(And(Lit("A"), Lit("B"), Lit("C")), And(Lit("D"), Lit("E")))},
		})
	case "OAI32":
		return comb(base, drive, pinLetters[:5], []string{"Y"}, []Stage{
			{Out: "Y", F: And(Or(Lit("A"), Lit("B"), Lit("C")), Or(Lit("D"), Lit("E")))},
		})
	case "AOI33":
		return comb(base, drive, pinLetters[:6], []string{"Y"}, []Stage{
			{Out: "Y", F: Or(And(Lit("A"), Lit("B"), Lit("C")), And(Lit("D"), Lit("E"), Lit("F")))},
		})
	case "OAI33":
		return comb(base, drive, pinLetters[:6], []string{"Y"}, []Stage{
			{Out: "Y", F: And(Or(Lit("A"), Lit("B"), Lit("C")), Or(Lit("D"), Lit("E"), Lit("F")))},
		})
	case "AO21":
		return comb(base, drive, pinLetters[:3], []string{"Y"}, []Stage{
			{Out: "yn", F: Or(And(Lit("A"), Lit("B")), Lit("C"))}, inv("yn", "Y"),
		})
	case "OA21":
		return comb(base, drive, pinLetters[:3], []string{"Y"}, []Stage{
			{Out: "yn", F: And(Or(Lit("A"), Lit("B")), Lit("C"))}, inv("yn", "Y"),
		})
	case "AO22":
		return comb(base, drive, pinLetters[:4], []string{"Y"}, []Stage{
			{Out: "yn", F: Or(And(Lit("A"), Lit("B")), And(Lit("C"), Lit("D")))}, inv("yn", "Y"),
		})
	case "OA22":
		return comb(base, drive, pinLetters[:4], []string{"Y"}, []Stage{
			{Out: "yn", F: And(Or(Lit("A"), Lit("B")), Or(Lit("C"), Lit("D")))}, inv("yn", "Y"),
		})
	case "XOR2": // Y = !(A&B | !A&!B)
		return comb(base, drive, []string{"A", "B"}, []string{"Y"}, []Stage{
			inv("A", "an"), inv("B", "bn"),
			{Out: "Y", F: Or(And(Lit("A"), Lit("B")), And(Lit("an"), Lit("bn")))},
		})
	case "XNOR2": // Y = !(A&!B | !A&B)
		return comb(base, drive, []string{"A", "B"}, []string{"Y"}, []Stage{
			inv("A", "an"), inv("B", "bn"),
			{Out: "Y", F: Or(And(Lit("A"), Lit("bn")), And(Lit("an"), Lit("B")))},
		})
	case "XOR3":
		return comb(base, drive, []string{"A", "B", "C"}, []string{"Y"}, []Stage{
			inv("A", "an"), inv("B", "bn"),
			{Out: "t", F: Or(And(Lit("A"), Lit("B")), And(Lit("an"), Lit("bn")))}, // t = A^B
			inv("t", "tn"), inv("C", "cn"),
			{Out: "Y", F: Or(And(Lit("t"), Lit("C")), And(Lit("tn"), Lit("cn")))}, // Y = t^C
		})
	case "XNOR3":
		return comb(base, drive, []string{"A", "B", "C"}, []string{"Y"}, []Stage{
			inv("A", "an"), inv("B", "bn"),
			{Out: "t", F: Or(And(Lit("A"), Lit("B")), And(Lit("an"), Lit("bn")))},
			inv("t", "tn"), inv("C", "cn"),
			{Out: "Y", F: Or(And(Lit("t"), Lit("cn")), And(Lit("tn"), Lit("C")))}, // Y = !(t^C)
		})
	case "MUX2": // Y = S ? B : A
		return comb(base, drive, []string{"A", "B", "S"}, []string{"Y"}, []Stage{
			inv("S", "sn"),
			{Out: "yn", F: Or(And(Lit("A"), Lit("sn")), And(Lit("B"), Lit("S")))},
			inv("yn", "Y"),
		})
	case "MUXI2": // Y = !(S ? B : A)
		return comb(base, drive, []string{"A", "B", "S"}, []string{"Y"}, []Stage{
			inv("S", "sn"),
			{Out: "Y", F: Or(And(Lit("A"), Lit("sn")), And(Lit("B"), Lit("S")))},
		})
	case "MUX4": // Y = {S1,S0} selects among A,B,C,D
		return comb(base, drive, []string{"A", "B", "C", "D", "S0", "S1"}, []string{"Y"}, []Stage{
			inv("S0", "s0n"), inv("S1", "s1n"),
			{Out: "yn", F: Or(
				And(Lit("A"), Lit("s1n"), Lit("s0n")),
				And(Lit("B"), Lit("s1n"), Lit("S0")),
				And(Lit("C"), Lit("S1"), Lit("s0n")),
				And(Lit("D"), Lit("S1"), Lit("S0")),
			)},
			inv("yn", "Y"),
		})
	case "MAJI3": // Y = !maj(A,B,C)
		return comb(base, drive, []string{"A", "B", "C"}, []string{"Y"}, []Stage{
			{Out: "Y", F: Or(And(Lit("A"), Lit("B")), And(Lit("A"), Lit("C")), And(Lit("B"), Lit("C")))},
		})
	case "MAJ3":
		return comb(base, drive, []string{"A", "B", "C"}, []string{"Y"}, []Stage{
			{Out: "yn", F: Or(And(Lit("A"), Lit("B")), And(Lit("A"), Lit("C")), And(Lit("B"), Lit("C")))},
			inv("yn", "Y"),
		})
	case "HA": // S = A^B, CO = A&B
		return comb(base, drive, []string{"A", "B"}, []string{"S", "CO"}, []Stage{
			inv("A", "an"), inv("B", "bn"),
			{Out: "sn", F: Or(And(Lit("A"), Lit("bn")), And(Lit("an"), Lit("B")))},
			inv("sn", "S"),
			{Out: "cn", F: And(Lit("A"), Lit("B"))},
			inv("cn", "CO"),
		})
	case "FA": // mirror full adder
		return comb(base, drive, []string{"A", "B", "CI"}, []string{"S", "CO"}, []Stage{
			{Out: "cn", F: Or(And(Lit("A"), Lit("B")), And(Lit("CI"), Or(Lit("A"), Lit("B"))))},
			inv("cn", "CO"),
			{Out: "sn", F: Or(And(Lit("A"), Lit("B"), Lit("CI")), And(Lit("cn"), Or(Lit("A"), Lit("B"), Lit("CI"))))},
			inv("sn", "S"),
		})
	}
	return buildSequential(base, drive)
}

// buildSequential constructs flop and latch cells from clocked-inverter
// (C2MOS) master/slave pairs.
func buildSequential(base string, drive int) *Cell {
	seq := func(name string, inputs []string, stages []Stage, isFlop, posEdge bool) *Cell {
		return &Cell{
			Name:    fmt.Sprintf("%sx%d", name, drive),
			Base:    name,
			Drive:   drive,
			Inputs:  inputs,
			Outputs: []string{"Q"},
			Stages:  stages,
			Seq:     true,
			Clock:   "CLK",
			Edge:    posEdge,
			IsFlop:  isFlop,
		}
	}
	// Master-slave core: master transparent on CLK low (enN=clkb), slave on
	// CLK high. Q = !si so that Q follows D captured at the rising edge.
	core := func(extraMaster, extraSlave *Expr) []Stage {
		moF := Lit("mi")
		soF := Lit("si")
		if extraMaster != nil {
			moF = Or(Lit("mi"), extraMaster)
		}
		if extraSlave != nil {
			soF = Or(Lit("si"), extraSlave)
		}
		return []Stage{
			inv("CLK", "clkb"), inv("clkb", "clki"),
			{Out: "mi", Tri: &Tri{In: "D", EnN: "clkb", EnP: "clki"}},
			{Out: "mo", F: moF},
			{Out: "mi", Tri: &Tri{In: "mo", EnN: "clki", EnP: "clkb"}},
			{Out: "si", Tri: &Tri{In: "mo", EnN: "clki", EnP: "clkb"}},
			{Out: "so", F: soF},
			{Out: "si", Tri: &Tri{In: "so", EnN: "clkb", EnP: "clki"}},
			inv("si", "Q"),
		}
	}
	switch base {
	case "DFF":
		return seq("DFF", []string{"D", "CLK"}, core(nil, nil), true, true)
	case "DFFN":
		st := core(nil, nil)
		// Swap master/slave phases for negative-edge triggering.
		for i := range st {
			if st[i].Tri != nil {
				st[i].Tri.EnN, st[i].Tri.EnP = st[i].Tri.EnP, st[i].Tri.EnN
			}
		}
		return seq("DFFN", []string{"D", "CLK"}, st, true, false)
	case "DFFR": // active-low async reset RN forces Q = 0
		st := append([]Stage{inv("RN", "rst")}, core(Lit("rst"), Lit("rst"))...)
		return seq("DFFR", []string{"D", "CLK", "RN"}, st, true, true)
	case "DFFS": // active-low async set SN forces Q = 1
		st := core(nil, nil)
		// Master forced high and Q forced high via NAND-style gating.
		for i := range st {
			switch st[i].Out {
			case "mo":
				st[i].F = And(Lit("mi"), Lit("SN"))
			case "Q":
				st[i].F = And(Lit("si"), Lit("SN"))
			}
		}
		return seq("DFFS", []string{"D", "CLK", "SN"}, st, true, true)
	case "SDFF": // scan flop: D/SI selected by SE in front of a DFF
		front := []Stage{
			inv("SE", "sen"),
			{Out: "dm", F: Or(And(Lit("D"), Lit("sen")), And(Lit("SI"), Lit("SE")))},
			inv("dm", "dmb"),
		}
		st := core(nil, nil)
		// Feed the mux output (dmb = selected data) into the master.
		for i := range st {
			if st[i].Tri != nil && st[i].Tri.In == "D" {
				st[i].Tri.In = "dmb"
			}
		}
		return seq("SDFF", []string{"D", "SI", "SE", "CLK"}, append(front, st...), true, true)
	case "DLATCH": // transparent when CLK high
		st := []Stage{
			inv("CLK", "clkb"), inv("clkb", "clki"),
			{Out: "li", Tri: &Tri{In: "D", EnN: "clki", EnP: "clkb"}},
			{Out: "lo", F: Lit("li")},
			{Out: "li", Tri: &Tri{In: "lo", EnN: "clkb", EnP: "clki"}},
			inv("li", "Q"),
		}
		return seq("DLATCH", []string{"D", "CLK"}, st, false, true)
	case "DLATCHN": // transparent when CLK low
		st := []Stage{
			inv("CLK", "clkb"), inv("clkb", "clki"),
			{Out: "li", Tri: &Tri{In: "D", EnN: "clkb", EnP: "clki"}},
			{Out: "lo", F: Lit("li")},
			{Out: "li", Tri: &Tri{In: "lo", EnN: "clki", EnP: "clkb"}},
			inv("li", "Q"),
		}
		return seq("DLATCHN", []string{"D", "CLK"}, st, false, false)
	}
	panic("pdk: unknown base cell " + base)
}

// driveTable lists the drive strengths offered for each base function,
// sized like a commercial library: rich fan-up for inverters/buffers and
// simple gates, fewer options for wide complex gates.
var driveTable = []struct {
	base   string
	drives []int
}{
	{"INV", []int{1, 2, 3, 4, 6, 8, 12, 16}},
	{"BUF", []int{1, 2, 3, 4, 6, 8, 12, 16}},
	{"CLKINV", []int{1, 2, 4, 8}},
	{"CLKBUF", []int{1, 2, 4, 8}},
	{"DLY4", []int{1, 2, 4}},
	{"NAND2", []int{1, 2, 3, 4, 6, 8}},
	{"NOR2", []int{1, 2, 3, 4, 6, 8}},
	{"AND2", []int{1, 2, 3, 4, 6, 8}},
	{"OR2", []int{1, 2, 3, 4, 6, 8}},
	{"NAND3", []int{1, 2, 4, 8}},
	{"NOR3", []int{1, 2, 4, 8}},
	{"AND3", []int{1, 2, 4, 8}},
	{"OR3", []int{1, 2, 4, 8}},
	{"NAND4", []int{1, 2, 4, 8}},
	{"NOR4", []int{1, 2, 4, 8}},
	{"AND4", []int{1, 2, 4, 8}},
	{"OR4", []int{1, 2, 4, 8}},
	{"NAND5", []int{1, 2}},
	{"NOR5", []int{1, 2}},
	{"AND5", []int{1, 2}},
	{"OR5", []int{1, 2}},
	{"NAND2B", []int{1, 2}},
	{"NOR2B", []int{1, 2}},
	{"AND2B", []int{1, 2}},
	{"OR2B", []int{1, 2}},
	{"AOI21", []int{1, 2, 4, 8}},
	{"OAI21", []int{1, 2, 4, 8}},
	{"AOI22", []int{1, 2, 4, 8}},
	{"OAI22", []int{1, 2, 4, 8}},
	{"AOI211", []int{1, 2, 4}},
	{"OAI211", []int{1, 2, 4}},
	{"AOI221", []int{1, 2, 4}},
	{"OAI221", []int{1, 2}},
	{"AOI222", []int{1, 2}},
	{"OAI222", []int{1, 2}},
	{"AOI31", []int{1, 2}},
	{"OAI31", []int{1, 2}},
	{"AOI32", []int{1, 2}},
	{"OAI32", []int{1, 2}},
	{"AOI33", []int{1, 2}},
	{"OAI33", []int{1, 2}},
	{"AO21", []int{1, 2}},
	{"OA21", []int{1, 2}},
	{"AO22", []int{1, 2}},
	{"OA22", []int{1, 2}},
	{"XOR2", []int{1, 2, 4, 8}},
	{"XNOR2", []int{1, 2, 4, 8}},
	{"XOR3", []int{1, 2}},
	{"XNOR3", []int{1, 2}},
	{"MUX2", []int{1, 2, 4, 8}},
	{"MUXI2", []int{1, 2, 4, 8}},
	{"MUX4", []int{1, 2}},
	{"MAJ3", []int{1, 2, 4}},
	{"MAJI3", []int{1, 2, 4}},
	{"HA", []int{1, 2, 4}},
	{"FA", []int{1, 2, 4}},
	{"DFF", []int{1, 2, 4, 8}},
	{"DFFN", []int{1, 2}},
	{"DFFR", []int{1, 2}},
	{"DFFS", []int{1, 2}},
	{"SDFF", []int{1, 2}},
	{"DLATCH", []int{1, 2}},
	{"DLATCHN", []int{1, 2}},
}

// Catalog generates the full 200-cell standard-cell library.
func Catalog() []*Cell {
	var out []*Cell
	for _, e := range driveTable {
		for _, d := range e.drives {
			out = append(out, buildBase(e.base, d))
		}
	}
	return out
}

// FindCell returns the catalog cell with the given name, or nil.
func FindCell(cells []*Cell, name string) *Cell {
	for _, c := range cells {
		if c.Name == name {
			return c
		}
	}
	return nil
}
