package pdk

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/spice"
)

// Stage is one CMOS stage inside a cell: either a static complementary gate
// (Out = NOT(F), pull-up = dual of F) or an inverting tristate (clocked
// inverter) driving Out from In when EnN is high / EnP is low.
type Stage struct {
	Out string
	F   *Expr
	Tri *Tri
}

// Tri describes an inverting tristate stage.
type Tri struct {
	In  string // data input (inverted onto Out when enabled)
	EnN string // gate of the NMOS enable device (active high)
	EnP string // gate of the PMOS enable device (active low)
}

// Cell is one standard cell: pins, internal stage network, and metadata.
type Cell struct {
	Name    string // e.g. "NAND2x2"
	Base    string // e.g. "NAND2"
	Drive   int    // drive-strength multiplier
	Inputs  []string
	Outputs []string
	Stages  []Stage

	Seq    bool   // sequential cell (has a clock)
	Clock  string // clock pin name for sequential cells
	Edge   bool   // true: positive-edge flop; false: negedge or level latch
	IsFlop bool   // true for edge-triggered flops, false for latches

	// truth[out] is the truth table of the named output over Inputs (bit i
	// of the index is Inputs[i]); valid for combinational cells with at most
	// 6 inputs.
	truth map[string]uint64
}

// finSizing returns the per-stage fin counts. The pull-up uses twice the
// fins of the pull-down to balance the slower hole transport, and series
// stacks are upsized by their depth as in commercial libraries.
func finSizing(drive, depthN, depthP int) (nN, nP int) {
	if depthN < 1 {
		depthN = 1
	}
	if depthP < 1 {
		depthP = 1
	}
	return drive * depthN, 2 * drive * depthP
}

// Build instantiates the cell's transistors into the circuit. pins maps
// every external pin name to a node; vdd is the supply rail. Internal nets
// get names prefixed with prefix to keep instances distinct.
func (cl *Cell) Build(c *spice.Circuit, prefix string, pins map[string]spice.NodeID, vdd spice.NodeID) error {
	for _, p := range cl.Pins() {
		if _, ok := pins[p]; !ok {
			return fmt.Errorf("pdk: cell %s: pin %s not connected", cl.Name, p)
		}
	}
	node := func(name string) spice.NodeID {
		if n, ok := pins[name]; ok {
			return n
		}
		return c.Node(prefix + "." + name)
	}
	fresh := 0
	mkNet := func() spice.NodeID {
		fresh++
		return c.Node(fmt.Sprintf("%s.__t%d", prefix, fresh))
	}
	// Devices are named "<prefix>.<stage>.<pol><k>(<gate>)" so SPICE
	// nonconvergence forensics can point at a specific transistor.
	ndev := 0
	name := func(stage string, pol byte, gate string) {
		ndev++
		c.NameLast(fmt.Sprintf("%s.%s.%c%d(%s)", prefix, stage, pol, ndev, gate))
	}
	for _, st := range cl.Stages {
		out := node(st.Out)
		if st.Tri != nil {
			// Inverting tristate: vdd -P(in)- x -P(enP)- out ; out -N(enN)- y -N(in)- gnd.
			nN, nP := finSizing(cl.Drive, 2, 2)
			x := mkNet()
			y := mkNet()
			c.AddMOSFET(device.NewP(nP), x, node(st.Tri.In), vdd, vdd)
			name(st.Out, 'P', st.Tri.In)
			c.AddMOSFET(device.NewP(nP), out, node(st.Tri.EnP), x, vdd)
			name(st.Out, 'P', st.Tri.EnP)
			c.AddMOSFET(device.NewN(nN), out, node(st.Tri.EnN), y, spice.Ground)
			name(st.Out, 'N', st.Tri.EnN)
			c.AddMOSFET(device.NewN(nN), y, node(st.Tri.In), spice.Ground, spice.Ground)
			name(st.Out, 'N', st.Tri.In)
			continue
		}
		pdn := st.F
		pun := st.F.Dual()
		nN, nP := finSizing(cl.Drive, pdn.SeriesDepth(), pun.SeriesDepth())
		buildNetwork(c, pdn, out, spice.Ground, func(gate string, a, b spice.NodeID) {
			c.AddMOSFET(device.NewN(nN), a, node(gate), b, spice.Ground)
			name(st.Out, 'N', gate)
		}, mkNet)
		buildNetwork(c, pun, vdd, out, func(gate string, a, b spice.NodeID) {
			c.AddMOSFET(device.NewP(nP), b, node(gate), a, vdd)
			name(st.Out, 'P', gate)
		}, mkNet)
	}
	return nil
}

// buildNetwork recursively expands the expression into a series/parallel
// transistor network between top and bottom. mkDev receives (gate,
// topSide, bottomSide) for each device; mkNet allocates internal nodes.
func buildNetwork(c *spice.Circuit, e *Expr, top, bottom spice.NodeID, mkDev func(gate string, a, b spice.NodeID), mkNet func() spice.NodeID) {
	switch e.Op {
	case OpLit:
		mkDev(e.Name, top, bottom)
	case OpAnd:
		cur := top
		for i, k := range e.Kids {
			next := bottom
			if i < len(e.Kids)-1 {
				next = mkNet()
			}
			buildNetwork(c, k, cur, next, mkDev, mkNet)
			cur = next
		}
	case OpOr:
		for _, k := range e.Kids {
			buildNetwork(c, k, top, bottom, mkDev, mkNet)
		}
	}
}

// Pins returns all external pins: inputs (including clock/reset pins listed
// in Inputs) followed by outputs.
func (cl *Cell) Pins() []string {
	return append(append([]string{}, cl.Inputs...), cl.Outputs...)
}

// computeTruth evaluates the combinational stage network for every input
// combination, filling cl.truth. It must not be called for sequential cells.
func (cl *Cell) computeTruth() {
	if cl.Seq || len(cl.Inputs) > 6 {
		return
	}
	cl.truth = make(map[string]uint64, len(cl.Outputs))
	n := len(cl.Inputs)
	for idx := 0; idx < 1<<uint(n); idx++ {
		val := make(map[string]bool, n+len(cl.Stages))
		for i, in := range cl.Inputs {
			val[in] = idx&(1<<uint(i)) != 0
		}
		for _, st := range cl.Stages {
			if st.Tri != nil {
				panic("pdk: tristate stage in combinational cell " + cl.Name)
			}
			val[st.Out] = !st.F.Eval(val)
		}
		for _, out := range cl.Outputs {
			if val[out] {
				cl.truth[out] |= 1 << uint(idx)
			}
		}
	}
}

// Truth returns the truth table of the named output over the cell's inputs
// (bit i of the row index corresponds to Inputs[i]). ok is false for
// sequential cells or cells with more than 6 inputs.
func (cl *Cell) Truth(output string) (uint64, bool) {
	if cl.truth == nil {
		return 0, false
	}
	tt, ok := cl.truth[output]
	return tt, ok
}

// InputCap returns the total gate capacitance presented by the named input
// pin at the given temperature, by summing the gate capacitance of every
// device the pin drives.
func (cl *Cell) InputCap(pin string, tempK float64) float64 {
	var total float64
	for _, st := range cl.Stages {
		if st.Tri != nil {
			nN, nP := finSizing(cl.Drive, 2, 2)
			if st.Tri.In == pin {
				total += gateCapOf(device.NFET, nN, tempK) + gateCapOf(device.PFET, nP, tempK)
			}
			if st.Tri.EnN == pin {
				total += gateCapOf(device.NFET, nN, tempK)
			}
			if st.Tri.EnP == pin {
				total += gateCapOf(device.PFET, nP, tempK)
			}
			continue
		}
		nN, nP := finSizing(cl.Drive, st.F.SeriesDepth(), st.F.Dual().SeriesDepth())
		for _, lit := range st.F.Literals(nil) {
			if lit == pin {
				total += gateCapOf(device.NFET, nN, tempK) + gateCapOf(device.PFET, nP, tempK)
			}
		}
	}
	return total
}

func gateCapOf(typ device.Type, nfin int, tempK float64) float64 {
	var m *device.Model
	if typ == device.PFET {
		m = device.NewP(nfin)
	} else {
		m = device.NewN(nfin)
	}
	return m.GateCap(tempK)
}

// TransistorCount returns the number of devices in the cell.
func (cl *Cell) TransistorCount() int {
	n := 0
	for _, st := range cl.Stages {
		if st.Tri != nil {
			n += 4
			continue
		}
		n += st.F.CountDevices() + st.F.Dual().CountDevices()
	}
	return n
}

// Area returns a layout-proxy area figure for the cell in arbitrary
// consistent units (fin count weighted by stack sizing), used by
// area-driven cost functions.
func (cl *Cell) Area() float64 {
	var a float64
	for _, st := range cl.Stages {
		if st.Tri != nil {
			nN, nP := finSizing(cl.Drive, 2, 2)
			a += float64(2 * (nN + nP))
			continue
		}
		nN, nP := finSizing(cl.Drive, st.F.SeriesDepth(), st.F.Dual().SeriesDepth())
		a += float64(st.F.CountDevices()*nN + st.F.Dual().CountDevices()*nP)
	}
	return a
}

// SortCells orders cells by name for stable iteration.
func SortCells(cells []*Cell) {
	sort.Slice(cells, func(i, j int) bool { return cells[i].Name < cells[j].Name })
}
