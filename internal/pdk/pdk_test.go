package pdk

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/spice"
)

func TestCatalogSize(t *testing.T) {
	cells := Catalog()
	if len(cells) != 200 {
		t.Errorf("catalog has %d cells, want 200 (the paper's library size)", len(cells))
	}
	names := make(map[string]bool, len(cells))
	for _, c := range cells {
		if names[c.Name] {
			t.Errorf("duplicate cell name %s", c.Name)
		}
		names[c.Name] = true
	}
}

func TestCatalogHasCombAndSeq(t *testing.T) {
	cells := Catalog()
	var comb, seq int
	for _, c := range cells {
		if c.Seq {
			seq++
		} else {
			comb++
		}
	}
	if comb == 0 || seq == 0 {
		t.Fatalf("library must contain both combinational (%d) and sequential (%d) cells", comb, seq)
	}
	if seq < 10 {
		t.Errorf("only %d sequential cells; want a realistic flop/latch family", seq)
	}
}

func TestTruthTables(t *testing.T) {
	cells := Catalog()
	cases := []struct {
		cell, out string
		fn        func(bits []bool) bool
	}{
		{"INVx1", "Y", func(b []bool) bool { return !b[0] }},
		{"BUFx1", "Y", func(b []bool) bool { return b[0] }},
		{"NAND2x1", "Y", func(b []bool) bool { return !(b[0] && b[1]) }},
		{"NOR3x1", "Y", func(b []bool) bool { return !(b[0] || b[1] || b[2]) }},
		{"AND4x1", "Y", func(b []bool) bool { return b[0] && b[1] && b[2] && b[3] }},
		{"OR2x1", "Y", func(b []bool) bool { return b[0] || b[1] }},
		{"XOR2x1", "Y", func(b []bool) bool { return b[0] != b[1] }},
		{"XNOR2x1", "Y", func(b []bool) bool { return b[0] == b[1] }},
		{"XOR3x1", "Y", func(b []bool) bool { return (b[0] != b[1]) != b[2] }},
		{"AOI21x1", "Y", func(b []bool) bool { return !(b[0] && b[1] || b[2]) }},
		{"OAI22x1", "Y", func(b []bool) bool { return !((b[0] || b[1]) && (b[2] || b[3])) }},
		{"AOI222x1", "Y", func(b []bool) bool { return !(b[0] && b[1] || b[2] && b[3] || b[4] && b[5]) }},
		{"MUX2x1", "Y", func(b []bool) bool {
			if b[2] {
				return b[1]
			}
			return b[0]
		}},
		{"MUX4x1", "Y", func(b []bool) bool {
			sel := 0
			if b[4] {
				sel |= 1
			}
			if b[5] {
				sel |= 2
			}
			return b[sel]
		}},
		{"MAJ3x1", "Y", func(b []bool) bool {
			n := 0
			for _, v := range b[:3] {
				if v {
					n++
				}
			}
			return n >= 2
		}},
		{"HAx1", "S", func(b []bool) bool { return b[0] != b[1] }},
		{"HAx1", "CO", func(b []bool) bool { return b[0] && b[1] }},
		{"FAx1", "S", func(b []bool) bool { return (b[0] != b[1]) != b[2] }},
		{"FAx1", "CO", func(b []bool) bool {
			n := 0
			for _, v := range b[:3] {
				if v {
					n++
				}
			}
			return n >= 2
		}},
		{"NAND2Bx1", "Y", func(b []bool) bool { return !(!b[0] && b[1]) }},
		{"AND2Bx1", "Y", func(b []bool) bool { return !b[0] && b[1] }},
		{"AO21x1", "Y", func(b []bool) bool { return b[0] && b[1] || b[2] }},
	}
	for _, cse := range cases {
		cell := FindCell(cells, cse.cell)
		if cell == nil {
			t.Errorf("cell %s missing from catalog", cse.cell)
			continue
		}
		tt, ok := cell.Truth(cse.out)
		if !ok {
			t.Errorf("%s: no truth table for output %s", cse.cell, cse.out)
			continue
		}
		n := len(cell.Inputs)
		for idx := 0; idx < 1<<uint(n); idx++ {
			bits := make([]bool, n)
			for i := range bits {
				bits[i] = idx&(1<<uint(i)) != 0
			}
			want := cse.fn(bits)
			got := tt&(1<<uint(idx)) != 0
			if got != want {
				t.Errorf("%s.%s row %d: got %v, want %v", cse.cell, cse.out, idx, got, want)
			}
		}
	}
}

func TestExprDualInvolution(t *testing.T) {
	f := func(seed int64) bool {
		e := randExpr(seed, 3)
		d := e.Dual().Dual()
		return e.String() == d.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExprDualIsComplementOfNegatedInputs(t *testing.T) {
	// De Morgan: dual(f)(x) == !f(!x) for all assignments.
	f := func(seed int64) bool {
		e := randExpr(seed, 3)
		for idx := 0; idx < 16; idx++ {
			val := map[string]bool{}
			neg := map[string]bool{}
			for i, name := range []string{"A", "B", "C", "D"} {
				v := idx&(1<<uint(i)) != 0
				val[name] = v
				neg[name] = !v
			}
			if e.Dual().Eval(val) != !e.Eval(neg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randExpr builds a deterministic pseudo-random expression over A-D.
func randExpr(seed int64, depth int) *Expr {
	state := uint64(seed)*2654435761 + 12345
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	var gen func(d int) *Expr
	gen = func(d int) *Expr {
		if d == 0 || next(3) == 0 {
			return Lit([]string{"A", "B", "C", "D"}[next(4)])
		}
		k := 2 + next(2)
		kids := make([]*Expr, k)
		for i := range kids {
			kids[i] = gen(d - 1)
		}
		if next(2) == 0 {
			return And(kids...)
		}
		return Or(kids...)
	}
	return gen(depth)
}

// evalVector drives a built cell at DC and returns the measured output
// levels for one input vector.
func evalVector(t *testing.T, cell *Cell, idx int, temp float64) map[string]float64 {
	t.Helper()
	const vdd = 0.7
	c := spice.New(temp)
	vddN := c.Node("vdd")
	c.AddVSource(vddN, spice.Ground, spice.DC(vdd))
	pins := map[string]spice.NodeID{}
	for i, in := range cell.Inputs {
		n := c.Node("in_" + in)
		pins[in] = n
		v := 0.0
		if idx&(1<<uint(i)) != 0 {
			v = vdd
		}
		c.AddVSource(n, spice.Ground, spice.DC(v))
	}
	for _, out := range cell.Outputs {
		pins[out] = c.Node("out_" + out)
	}
	if err := cell.Build(c, "dut", pins, vddN); err != nil {
		t.Fatalf("%s: %v", cell.Name, err)
	}
	x, err := c.OpPoint()
	if err != nil {
		t.Fatalf("%s vector %d: op point: %v", cell.Name, idx, err)
	}
	res := map[string]float64{}
	for _, out := range cell.Outputs {
		res[out] = x[pins[out]]
	}
	return res
}

func TestCombinationalCellsFunctionInSPICE(t *testing.T) {
	// Every x1 combinational cell must realize its truth table at DC, at
	// both room and cryogenic temperature.
	cells := Catalog()
	const vdd = 0.7
	for _, cell := range cells {
		if cell.Seq || cell.Drive != 1 {
			continue
		}
		nIn := len(cell.Inputs)
		for _, temp := range []float64{300, 10} {
			for idx := 0; idx < 1<<uint(nIn); idx++ {
				levels := evalVector(t, cell, idx, temp)
				for _, out := range cell.Outputs {
					tt, ok := cell.Truth(out)
					if !ok {
						t.Fatalf("%s: missing truth for %s", cell.Name, out)
					}
					want := tt&(1<<uint(idx)) != 0
					got := levels[out]
					if want && got < 0.9*vdd {
						t.Errorf("%s.%s T=%v vector %d: output %v, want high", cell.Name, out, temp, idx, got)
					}
					if !want && got > 0.1*vdd {
						t.Errorf("%s.%s T=%v vector %d: output %v, want low", cell.Name, out, temp, idx, got)
					}
				}
			}
		}
	}
}

func TestDFFCapturesOnRisingEdge(t *testing.T) {
	const vdd = 0.7
	cells := Catalog()
	cell := FindCell(cells, "DFFx1")
	if cell == nil {
		t.Fatal("DFFx1 missing")
	}
	c := spice.New(300)
	vddN := c.Node("vdd")
	c.AddVSource(vddN, spice.Ground, spice.DC(vdd))
	pins := map[string]spice.NodeID{
		"D":   c.Node("d"),
		"CLK": c.Node("clk"),
		"Q":   c.Node("q"),
	}
	// D goes high well before the first rising edge, low before the second.
	c.AddVSource(pins["D"], spice.Ground, spice.PWL(
		[2]float64{0, 0}, [2]float64{0.1e-9, vdd},
		[2]float64{1.1e-9, vdd}, [2]float64{1.15e-9, 0},
	))
	c.AddVSource(pins["CLK"], spice.Ground, spice.Pulse(0, vdd, 0.5e-9, 20e-12, 20e-12, 0.5e-9, 1e-9))
	if err := cell.Build(c, "ff", pins, vddN); err != nil {
		t.Fatal(err)
	}
	wf, err := c.Transient(2.4e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	q := wf.V("q")
	sampleAt := func(tm float64) float64 {
		best := 0
		for i, tt := range wf.Time {
			if tt <= tm {
				best = i
			}
		}
		return q[best]
	}
	if v := sampleAt(0.45e-9); v > 0.1*vdd {
		t.Errorf("Q before first edge = %v, want low", v)
	}
	if v := sampleAt(0.9e-9); v < 0.9*vdd {
		t.Errorf("Q after first rising edge = %v, want high (D was 1)", v)
	}
	if v := sampleAt(1.9e-9); v > 0.1*vdd {
		t.Errorf("Q after second rising edge = %v, want low (D was 0)", v)
	}
}

func TestDFFRReset(t *testing.T) {
	const vdd = 0.7
	cell := FindCell(Catalog(), "DFFRx1")
	if cell == nil {
		t.Fatal("DFFRx1 missing")
	}
	c := spice.New(300)
	vddN := c.Node("vdd")
	c.AddVSource(vddN, spice.Ground, spice.DC(vdd))
	pins := map[string]spice.NodeID{
		"D": c.Node("d"), "CLK": c.Node("clk"), "RN": c.Node("rn"), "Q": c.Node("q"),
	}
	c.AddVSource(pins["D"], spice.Ground, spice.DC(vdd))
	c.AddVSource(pins["CLK"], spice.Ground, spice.Pulse(0, vdd, 0.3e-9, 20e-12, 20e-12, 0.4e-9, 0.8e-9))
	// Reset asserted (low) after Q has captured 1.
	c.AddVSource(pins["RN"], spice.Ground, spice.PWL(
		[2]float64{0, vdd}, [2]float64{1.2e-9, vdd}, [2]float64{1.25e-9, 0},
	))
	if err := cell.Build(c, "ff", pins, vddN); err != nil {
		t.Fatal(err)
	}
	wf, err := c.Transient(1.9e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	q := wf.V("q")
	// Q captured high after the first edge.
	var midIdx int
	for i, tt := range wf.Time {
		if tt <= 0.9e-9 {
			midIdx = i
		}
	}
	if q[midIdx] < 0.9*vdd {
		t.Fatalf("Q did not capture 1 before reset: %v", q[midIdx])
	}
	if final := wf.Final(q); final > 0.1*vdd {
		t.Errorf("Q after async reset = %v, want 0", final)
	}
}

func TestDLatchTransparency(t *testing.T) {
	const vdd = 0.7
	cell := FindCell(Catalog(), "DLATCHx1")
	if cell == nil {
		t.Fatal("DLATCHx1 missing")
	}
	c := spice.New(300)
	vddN := c.Node("vdd")
	c.AddVSource(vddN, spice.Ground, spice.DC(vdd))
	pins := map[string]spice.NodeID{"D": c.Node("d"), "CLK": c.Node("clk"), "Q": c.Node("q")}
	// CLK high (transparent) until 1 ns, then low (opaque); D toggles in
	// both phases.
	c.AddVSource(pins["CLK"], spice.Ground, spice.PWL([2]float64{0, vdd}, [2]float64{1.0e-9, vdd}, [2]float64{1.02e-9, 0}))
	c.AddVSource(pins["D"], spice.Ground, spice.PWL(
		[2]float64{0, 0}, [2]float64{0.4e-9, 0}, [2]float64{0.42e-9, vdd}, // while transparent -> Q follows
		[2]float64{1.4e-9, vdd}, [2]float64{1.42e-9, 0}, // while opaque -> Q holds
	))
	if err := cell.Build(c, "lat", pins, vddN); err != nil {
		t.Fatal(err)
	}
	wf, err := c.Transient(2.0e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	q := wf.V("q")
	idxAt := func(tm float64) int {
		best := 0
		for i, tt := range wf.Time {
			if tt <= tm {
				best = i
			}
		}
		return best
	}
	if v := q[idxAt(0.3e-9)]; v > 0.1*vdd {
		t.Errorf("transparent phase, D=0: Q=%v want low", v)
	}
	if v := q[idxAt(0.8e-9)]; v < 0.9*vdd {
		t.Errorf("transparent phase, D=1: Q=%v want high", v)
	}
	if v := wf.Final(q); v < 0.9*vdd {
		t.Errorf("opaque phase after D drops: Q=%v want held high", v)
	}
}

func TestInputCapPositiveAndScales(t *testing.T) {
	cells := Catalog()
	inv1 := FindCell(cells, "INVx1")
	inv4 := FindCell(cells, "INVx4")
	c1 := inv1.InputCap("A", 300)
	c4 := inv4.InputCap("A", 300)
	if c1 <= 0 {
		t.Fatalf("INVx1 input cap = %v", c1)
	}
	if r := c4 / c1; math.Abs(r-4) > 0.2 {
		t.Errorf("INVx4/INVx1 input cap ratio = %v, want ~4", r)
	}
	// Cryogenic cap slightly lower.
	if c10 := inv1.InputCap("A", 10); c10 >= c1 {
		t.Errorf("input cap at 10K (%v) should be below 300K (%v)", c10, c1)
	}
}

func TestAreaMonotoneInDrive(t *testing.T) {
	cells := Catalog()
	for _, base := range []string{"INV", "NAND2", "XOR2", "DFF"} {
		a1 := FindCell(cells, base+"x1").Area()
		a2 := FindCell(cells, base+"x2").Area()
		if a2 <= a1 {
			t.Errorf("%s: area x2 (%v) <= x1 (%v)", base, a2, a1)
		}
	}
}

func TestTransistorCounts(t *testing.T) {
	cells := Catalog()
	cases := map[string]int{
		"INVx1":   2,
		"NAND2x1": 4,
		"AOI21x1": 6,
		"XOR2x1":  12, // 2 inverters + 8-device complex stage
	}
	for name, want := range cases {
		got := FindCell(cells, name).TransistorCount()
		if got != want {
			t.Errorf("%s: %d transistors, want %d", name, got, want)
		}
	}
	dff := FindCell(cells, "DFFx1")
	if n := dff.TransistorCount(); n < 16 || n > 32 {
		t.Errorf("DFFx1 transistor count %d implausible", n)
	}
}

func TestBuildRejectsUnconnectedPins(t *testing.T) {
	cell := FindCell(Catalog(), "NAND2x1")
	c := spice.New(300)
	vddN := c.Node("vdd")
	err := cell.Build(c, "u", map[string]spice.NodeID{"A": c.Node("a")}, vddN)
	if err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Errorf("Build with missing pins: err = %v", err)
	}
}

func TestComplementaryNetworksInvariant(t *testing.T) {
	// Static CMOS invariant: for every input vector, exactly one of the
	// pull-down network (F) and pull-up network (dual of F over inverted
	// literals) conducts. Violations would mean DC contention or floating
	// outputs in silicon.
	for _, cell := range Catalog() {
		for si, st := range cell.Stages {
			if st.Tri != nil {
				continue
			}
			lits := st.F.Literals(nil)
			names := map[string]bool{}
			for _, l := range lits {
				names[l] = true
			}
			var vars []string
			for n := range names {
				vars = append(vars, n)
			}
			if len(vars) > 10 {
				continue
			}
			dual := st.F.Dual()
			for idx := 0; idx < 1<<uint(len(vars)); idx++ {
				val := map[string]bool{}
				neg := map[string]bool{}
				for i, n := range vars {
					v := idx&(1<<uint(i)) != 0
					val[n] = v
					neg[n] = !v
				}
				pdnOn := st.F.Eval(val)
				punOn := dual.Eval(neg)
				if pdnOn == punOn {
					t.Fatalf("%s stage %d: PDN and PUN both %v under %v", cell.Name, si, pdnOn, val)
				}
			}
		}
	}
}

func TestQuickSeriesDepthBounds(t *testing.T) {
	// Series depth is at most the literal count and at least 1.
	f := func(seed int64) bool {
		e := randExpr(seed, 3)
		d := e.SeriesDepth()
		return d >= 1 && d <= len(e.Literals(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCatalogDriveFamiliesShareFunction(t *testing.T) {
	// All drive variants of a base must implement the same function.
	byBase := map[string][]*Cell{}
	for _, c := range Catalog() {
		byBase[c.Base] = append(byBase[c.Base], c)
	}
	for base, family := range byBase {
		if family[0].Seq {
			continue
		}
		ref, ok := family[0].Truth(family[0].Outputs[0])
		if !ok {
			continue
		}
		for _, c := range family[1:] {
			tt, _ := c.Truth(c.Outputs[0])
			if tt != ref {
				t.Errorf("%s: drive variants disagree on function", base)
			}
		}
		_ = base
	}
}
