package aig

import (
	"math/rand"

	"repro/internal/sat"
)

// Signatures computes per-variable bit-parallel simulation signatures of the
// given width (in 64-bit words) under deterministic random stimulus.
func (g *AIG) Signatures(words int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	sigs := make([][]uint64, g.NumVars())
	for v := range sigs {
		sigs[v] = make([]uint64, words)
	}
	for i := 1; i <= g.numPI; i++ {
		for w := 0; w < words; w++ {
			sigs[i][w] = rng.Uint64()
		}
	}
	for v := g.numPI + 1; v < g.NumVars(); v++ {
		n := &g.nodes[v]
		a := sigs[n.fan0.Var()]
		b := sigs[n.fan1.Var()]
		ac, bc := n.fan0.IsCompl(), n.fan1.IsCompl()
		dst := sigs[v]
		for w := 0; w < words; w++ {
			x, y := a[w], b[w]
			if ac {
				x = ^x
			}
			if bc {
				y = ^y
			}
			dst[w] = x & y
		}
	}
	return sigs
}

func sigEqual(a, b []uint64, compl bool) bool {
	for w := range a {
		x := b[w]
		if compl {
			x = ^x
		}
		if a[w] != x {
			return false
		}
	}
	return true
}

func sigHash(a []uint64, compl bool) uint64 {
	var h uint64 = 14695981039346656037
	for _, w := range a {
		if compl {
			w = ^w
		}
		h = (h ^ w) * 1099511628211
	}
	return h
}

// ResubOptions tunes SAT-based resubstitution.
type ResubOptions struct {
	Words     int   // simulation signature width in 64-bit words
	SATBudget int64 // conflict budget per proof
	Seed      int64
	// MaxPairs bounds the divisor-pair search per node for 1-resub.
	MaxPairs int
	// Window bounds the CNF cone encoded per proof (sound for acceptance).
	Window int
	// MaxProofs bounds the SAT proof attempts per node.
	MaxProofs int
}

// DefaultResubOptions returns sensible defaults.
func DefaultResubOptions() ResubOptions {
	return ResubOptions{Words: 8, SATBudget: 300, Seed: 1, MaxPairs: 64, Window: 600, MaxProofs: 6}
}

// Resub performs SAT-sweeping-style Boolean resubstitution: nodes whose
// simulation signature matches an earlier node (up to complement) are
// proven equivalent with SAT and merged (0-resub); nodes whose function
// equals the AND of two earlier divisors with smaller cost are replaced
// (1-resub). This is the Boolean-resubstitution stage of the paper's c2rs
// script.
func (g *AIG) Resub(opt ResubOptions) *AIG {
	done := startPass("resub", g)
	if opt.Words == 0 {
		opt = DefaultResubOptions()
	}
	sigs := g.Signatures(opt.Words, opt.Seed)
	refs := g.FanoutCounts()

	out := New(g.Name)
	m := make([]Lit, g.NumVars())
	m[0] = False
	for i := 0; i < g.numPI; i++ {
		m[i+1] = out.AddPI(g.pis[i])
	}
	// Hash earlier nodes by signature for 0-resub candidates; store old
	// variables.
	byHash := make(map[uint64][]int)
	zero := make([]uint64, opt.Words)
	for i := 1; i <= g.numPI; i++ {
		byHash[sigHash(sigs[i], false)] = append(byHash[sigHash(sigs[i], false)], i)
	}

	for v := g.numPI + 1; v < g.NumVars(); v++ {
		f0, f1 := g.Fanins(v)
		dflt := out.And(m[f0.Var()].NotIf(f0.IsCompl()), m[f1.Var()].NotIf(f1.IsCompl()))
		repl := dflt
		replaced := false

		proofs := 0
		// Constant detection.
		if sigEqual(sigs[v], zero, false) {
			proofs++
			if eq, proven := ProveEqualWindow(g, MakeLit(v, false), False, opt.SATBudget, opt.Window); eq && proven {
				repl, replaced = False, true
			}
		} else if sigEqual(sigs[v], zero, true) {
			proofs++
			if eq, proven := ProveEqualWindow(g, MakeLit(v, false), True, opt.SATBudget, opt.Window); eq && proven {
				repl, replaced = True, true
			}
		}

		// 0-resub: equivalent (possibly complemented) earlier node.
		if !replaced {
			for _, compl := range []bool{false, true} {
				if replaced {
					break
				}
				for _, d := range byHash[sigHash(sigs[v], compl)] {
					if proofs >= opt.MaxProofs {
						break
					}
					if d == v || !sigEqual(sigs[v], sigs[d], compl) {
						continue
					}
					proofs++
					eq, proven := ProveEqualWindow(g, MakeLit(v, false), MakeLit(d, compl), opt.SATBudget, opt.Window)
					if eq && proven {
						repl = m[d].NotIf(compl)
						replaced = true
						break
					}
				}
			}
		}

		// 1-resub: v == AND of two divisors drawn from its fanin
		// neighborhood, profitable when the MFFC releases nodes.
		if !replaced && refs[v] > 0 {
			divs := g.divisors(v, 24)
			mffc := g.MFFCSize(v, []int{f0.Var(), f1.Var()}, refs)
			if mffc >= 2 {
				pairs := 0
			searchPairs:
				for i := 0; i < len(divs) && pairs < opt.MaxPairs; i++ {
					for j := i + 1; j < len(divs) && pairs < opt.MaxPairs; j++ {
						for mask := 0; mask < 4; mask++ {
							pairs++
							da, db := divs[i], divs[j]
							ca, cb := mask&1 != 0, mask&2 != 0
							if !sigIsAnd(sigs[v], sigs[da], sigs[db], ca, cb) {
								continue
							}
							if proofs >= opt.MaxProofs {
								break searchPairs
							}
							proofs++
							if g.proveIsAnd(v, MakeLit(da, ca), MakeLit(db, cb), opt.SATBudget, opt.Window) {
								repl = out.And(m[da].NotIf(ca), m[db].NotIf(cb))
								replaced = true
								break searchPairs
							}
						}
					}
				}
			}
		}
		m[v] = repl
		// Make v available as a 0-resub divisor for later nodes.
		byHash[sigHash(sigs[v], false)] = append(byHash[sigHash(sigs[v], false)], v)
	}
	for i, po := range g.pos {
		out.AddPO(m[po.Var()].NotIf(po.IsCompl()), g.poNames[i])
	}
	swept := out.Sweep()
	done(swept)
	return swept
}

// proveIsAnd checks with SAT that node v equals the conjunction of the two
// divisor literals, using an auxiliary Tseitin variable so no node has to be
// added to the graph.
func (g *AIG) proveIsAnd(v int, la, lb Lit, budget int64, window int) bool {
	s := newBudgetSolver(budget)
	cb := NewCNFBuilder(g, s)
	cb.Limit = window
	sv := sat.L(cb.SatVar(v), false)
	sa := cb.SatLit(la)
	sb := cb.SatLit(lb)
	t := sat.L(s.AddVar(), false)
	s.AddClause(t.Not(), sa)
	s.AddClause(t.Not(), sb)
	s.AddClause(t, sa.Not(), sb.Not())
	if s.Solve(sv, t.Not()) != sat.Unsat {
		return false
	}
	return s.Solve(sv.Not(), t) == sat.Unsat
}

func newBudgetSolver(budget int64) *sat.Solver {
	s := sat.New(0)
	s.ConflictBudget = budget
	return s
}

// sigIsAnd checks sig(v) == sig(a)^ca & sig(b)^cb.
func sigIsAnd(v, a, b []uint64, ca, cb bool) bool {
	for w := range v {
		x, y := a[w], b[w]
		if ca {
			x = ^x
		}
		if cb {
			y = ^y
		}
		if v[w] != x&y {
			return false
		}
	}
	return true
}

// divisors collects candidate divisor variables from the two-level fanin
// neighborhood of v (excluding v itself), capped at limit.
func (g *AIG) divisors(v, limit int) []int {
	seen := map[int]bool{v: true}
	var out []int
	var frontier []int
	f0, f1 := g.Fanins(v)
	frontier = append(frontier, f0.Var(), f1.Var())
	for depth := 0; depth < 3 && len(out) < limit; depth++ {
		var next []int
		for _, u := range frontier {
			if u == 0 || seen[u] {
				continue
			}
			seen[u] = true
			out = append(out, u)
			if len(out) >= limit {
				break
			}
			if g.IsAnd(u) {
				a, b := g.Fanins(u)
				next = append(next, a.Var(), b.Var())
			}
		}
		frontier = next
	}
	return out
}
