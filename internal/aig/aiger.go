package aig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteAIGER emits the graph in the ASCII AIGER 1.9 format ("aag"), the
// interchange format of the logic-synthesis community (and of the original
// EPFL benchmark distribution). Symbol-table entries preserve PI/PO names.
func (g *AIG) WriteAIGER(w io.Writer) error {
	bw := bufio.NewWriter(w)
	m := g.NumVars() - 1 // maximum variable index
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", m, g.numPI, len(g.pos), g.NumNodes())
	for i := 1; i <= g.numPI; i++ {
		fmt.Fprintf(bw, "%d\n", 2*i)
	}
	for _, po := range g.pos {
		fmt.Fprintf(bw, "%d\n", uint32(po))
	}
	for v := g.numPI + 1; v < g.NumVars(); v++ {
		n := &g.nodes[v]
		fmt.Fprintf(bw, "%d %d %d\n", 2*v, uint32(n.fan0), uint32(n.fan1))
	}
	for i, name := range g.pis {
		fmt.Fprintf(bw, "i%d %s\n", i, name)
	}
	for i, name := range g.poNames {
		fmt.Fprintf(bw, "o%d %s\n", i, name)
	}
	fmt.Fprintf(bw, "c\n%s\n", g.Name)
	return bw.Flush()
}

// ReadAIGER parses an ASCII AIGER ("aag") file written by WriteAIGER or any
// conforming producer with combinational content (no latches).
func ReadAIGER(r io.Reader) (*AIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("aiger: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 || header[0] != "aag" {
		return nil, fmt.Errorf("aiger: bad header %q", sc.Text())
	}
	nums := make([]int, 5)
	for i := 0; i < 5; i++ {
		v, err := strconv.Atoi(header[i+1])
		if err != nil {
			return nil, fmt.Errorf("aiger: bad header field %q", header[i+1])
		}
		nums[i] = v
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, fmt.Errorf("aiger: latches unsupported (combinational AIGs only)")
	}
	if maxVar < nIn+nAnd {
		return nil, fmt.Errorf("aiger: inconsistent header")
	}
	g := New("aiger")
	for i := 0; i < nIn; i++ {
		if !sc.Scan() {
			return nil, io.ErrUnexpectedEOF
		}
		lit, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
		if err != nil || lit != 2*(i+1) {
			return nil, fmt.Errorf("aiger: unexpected input literal %q (reordered inputs unsupported)", sc.Text())
		}
		g.AddPI(fmt.Sprintf("i%d", i))
	}
	outLits := make([]Lit, nOut)
	for i := 0; i < nOut; i++ {
		if !sc.Scan() {
			return nil, io.ErrUnexpectedEOF
		}
		lit, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
		if err != nil {
			return nil, fmt.Errorf("aiger: bad output literal %q", sc.Text())
		}
		outLits[i] = Lit(lit)
	}
	// AND definitions; map file variables onto graph literals (the graph
	// may simplify, so the mapping is explicit).
	varMap := make([]Lit, maxVar+1)
	varMap[0] = False
	for i := 1; i <= nIn; i++ {
		varMap[i] = MakeLit(i, false)
	}
	deref := func(fileLit int) (Lit, error) {
		v := fileLit >> 1
		if v > maxVar {
			return 0, fmt.Errorf("aiger: literal %d out of range", fileLit)
		}
		base := varMap[v]
		if base == 0 && v != 0 {
			return 0, fmt.Errorf("aiger: literal %d used before definition", fileLit)
		}
		return base.NotIf(fileLit&1 == 1), nil
	}
	for i := 0; i < nAnd; i++ {
		if !sc.Scan() {
			return nil, io.ErrUnexpectedEOF
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 3 {
			return nil, fmt.Errorf("aiger: bad AND line %q", sc.Text())
		}
		lhs, err0 := strconv.Atoi(fields[0])
		rhs0, err1 := strconv.Atoi(fields[1])
		rhs1, err2 := strconv.Atoi(fields[2])
		if err0 != nil || err1 != nil || err2 != nil || lhs%2 != 0 {
			return nil, fmt.Errorf("aiger: bad AND line %q", sc.Text())
		}
		a, err := deref(rhs0)
		if err != nil {
			return nil, err
		}
		b, err := deref(rhs1)
		if err != nil {
			return nil, err
		}
		varMap[lhs>>1] = g.And(a, b)
	}
	poNames := make([]string, nOut)
	for i := range poNames {
		poNames[i] = fmt.Sprintf("o%d", i)
	}
	// Symbol table and comment.
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "i"):
			idx, name, ok := parseSymbol(line[1:])
			if ok && idx < len(g.pis) {
				g.pis[idx] = name
			}
		case strings.HasPrefix(line, "o"):
			idx, name, ok := parseSymbol(line[1:])
			if ok && idx < nOut {
				poNames[idx] = name
			}
		case line == "c":
			if sc.Scan() {
				g.Name = strings.TrimSpace(sc.Text())
			}
		}
	}
	for i, ol := range outLits {
		l, err := deref(int(ol))
		if err != nil {
			return nil, err
		}
		g.AddPO(l, poNames[i])
	}
	return g, sc.Err()
}

func parseSymbol(s string) (int, string, bool) {
	parts := strings.SplitN(s, " ", 2)
	if len(parts) != 2 {
		return 0, "", false
	}
	idx, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, "", false
	}
	return idx, parts[1], true
}
