package aig

// Rewrite and Refactor: cut-based resynthesis in the style of DAG-aware AIG
// rewriting [Mishchenko et al., DAC'06] and refactoring [Brayton &
// Mishchenko, IWLS'06]. Each node's cut function is re-synthesized from an
// irredundant SOP (factored form), and the replacement is accepted when it
// adds fewer nodes than the node's maximum fanout-free cone would release —
// with structural hashing providing free reuse of existing logic. Losing
// candidates are left dangling and removed by the final sweep.

// RewriteOptions tunes the resynthesis passes.
type RewriteOptions struct {
	CutSize   int  // cut width (4 for rewrite, 6 for refactor)
	MaxCuts   int  // priority cuts kept per node
	ZeroCost  bool // accept zero-gain replacements (perturbation)
	UseFactor bool // build factored forms instead of flat SOPs
}

// Rewrite runs cut-based resynthesis with 4-input cuts.
func (g *AIG) Rewrite(zeroCost bool) *AIG {
	done := startPass("rewrite", g)
	out := g.resynthesize(RewriteOptions{CutSize: 4, MaxCuts: 6, ZeroCost: zeroCost, UseFactor: true})
	done(out)
	return out
}

// Refactor runs resynthesis with wide (6-input) cuts and factored-form
// construction.
func (g *AIG) Refactor() *AIG {
	done := startPass("refactor", g)
	out := g.resynthesize(RewriteOptions{CutSize: 6, MaxCuts: 4, UseFactor: true})
	done(out)
	return out
}

func (g *AIG) resynthesize(opt RewriteOptions) *AIG {
	cuts := g.EnumerateCuts(opt.CutSize, opt.MaxCuts)
	refs := g.FanoutCounts()
	isopCache := make(map[uint64][]Cube)

	out := New(g.Name)
	m := make([]Lit, g.NumVars())
	m[0] = False
	for i := 0; i < g.numPI; i++ {
		m[i+1] = out.AddPI(g.pis[i])
	}
	for v := g.numPI + 1; v < g.NumVars(); v++ {
		f0, f1 := g.Fanins(v)
		dflt := out.And(m[f0.Var()].NotIf(f0.IsCompl()), m[f1.Var()].NotIf(f1.IsCompl()))
		best := dflt
		bestGain := 0
		if opt.ZeroCost {
			bestGain = -1
		}
		for _, cut := range cuts[v] {
			if len(cut.Leaves) < 2 || len(cut.Leaves) > 6 {
				continue
			}
			// Trivial cut (just v) is useless for resynthesis.
			if len(cut.Leaves) == 1 && cut.Leaves[0] == v {
				continue
			}
			mffc := g.MFFCSize(v, cut.Leaves, refs)
			if mffc < 1 {
				continue
			}
			tt := g.CutTruth(MakeLit(v, false), cut.Leaves)
			n := len(cut.Leaves)
			// Synthesize the smaller phase.
			cubesPos, okPos := cachedISOP(isopCache, tt, n)
			cubesNeg, okNeg := cachedISOP(isopCache, ^tt&Truth6Mask(n), n)
			leaves := make([]Lit, n)
			for i, lv := range cut.Leaves {
				leaves[i] = m[lv]
			}
			for phase := 0; phase < 2; phase++ {
				var cubes []Cube
				switch {
				case phase == 0 && okPos:
					cubes = cubesPos
				case phase == 1 && okNeg:
					cubes = cubesNeg
				default:
					continue
				}
				before := out.NumNodes()
				var cand Lit
				if opt.UseFactor {
					cand = out.buildFactored(cubes, leaves)
				} else {
					cand = out.BuildFromCubes(cubes, leaves)
				}
				if phase == 1 {
					cand = cand.Not()
				}
				added := out.NumNodes() - before
				if gain := mffc - added; gain > bestGain {
					bestGain = gain
					best = cand
				}
			}
		}
		m[v] = best
	}
	for i, po := range g.pos {
		out.AddPO(m[po.Var()].NotIf(po.IsCompl()), g.poNames[i])
	}
	return out.Sweep()
}

func cachedISOP(cache map[uint64][]Cube, tt uint64, n int) ([]Cube, bool) {
	key := tt | uint64(n)<<58
	if c, ok := cache[key]; ok {
		return c, true
	}
	c := ISOP(tt, tt, n)
	// Reject pathological covers (keeps candidate-node bloat bounded).
	if len(c) > 16 {
		cache[key] = nil
		return nil, false
	}
	cache[key] = c
	return c, true
}

// buildFactored synthesizes a cube cover in algebraically factored form:
// the most frequent literal is divided out recursively (quick-factor),
// yielding multi-level structures that share better than flat SOPs.
func (g *AIG) buildFactored(cubes []Cube, leaves []Lit) Lit {
	switch len(cubes) {
	case 0:
		return False
	case 1:
		return g.cubeAnd(cubes[0], leaves)
	}
	// Count literal occurrences.
	n := len(leaves)
	bestLit, bestCount, bestNeg := -1, 1, false
	for i := 0; i < n; i++ {
		pos, neg := 0, 0
		for _, c := range cubes {
			if c.Pos&(1<<uint(i)) != 0 {
				pos++
			}
			if c.Neg&(1<<uint(i)) != 0 {
				neg++
			}
		}
		if pos > bestCount {
			bestLit, bestCount, bestNeg = i, pos, false
		}
		if neg > bestCount {
			bestLit, bestCount, bestNeg = i, neg, true
		}
	}
	if bestLit < 0 {
		// No shared literal: flat OR of cube ANDs.
		terms := make([]Lit, len(cubes))
		for i, c := range cubes {
			terms[i] = g.cubeAnd(c, leaves)
		}
		return g.balancedTree(terms, false)
	}
	bit := uint32(1) << uint(bestLit)
	var quot, rem []Cube
	for _, c := range cubes {
		switch {
		case !bestNeg && c.Pos&bit != 0:
			c.Pos &^= bit
			quot = append(quot, c)
		case bestNeg && c.Neg&bit != 0:
			c.Neg &^= bit
			quot = append(quot, c)
		default:
			rem = append(rem, c)
		}
	}
	l := leaves[bestLit].NotIf(bestNeg)
	q := g.buildFactored(quot, leaves)
	r := g.buildFactored(rem, leaves)
	return g.Or(g.And(l, q), r)
}

func (g *AIG) cubeAnd(c Cube, leaves []Lit) Lit {
	var lits []Lit
	for i, leaf := range leaves {
		if c.Pos&(1<<uint(i)) != 0 {
			lits = append(lits, leaf)
		}
		if c.Neg&(1<<uint(i)) != 0 {
			lits = append(lits, leaf.Not())
		}
	}
	return g.balancedTree(lits, true)
}
