package aig

import (
	"sort"

	"repro/internal/sat"
)

// LUT is one node of a mapped k-LUT network: a root AIG variable, its cut
// leaves, and the cut function. pristine records that the function still
// matches the underlying AIG cone (so Strash may copy the original
// structure instead of re-synthesizing from cubes — important for
// parity-like functions whose SOP covers are exponential).
type LUT struct {
	Root     int
	Leaves   []int
	TT       uint64
	pristine bool
}

// LUTNet is a k-LUT network over an underlying AIG: the result of
// technology-independent k-LUT mapping (ABC's `if`).
type LUTNet struct {
	G     *AIG
	LUTs  map[int]*LUT // by root variable
	Order []int        // topological order of mapped roots
}

// LUTMapOptions controls k-LUT mapping.
type LUTMapOptions struct {
	K          int  // LUT input count (<= 6)
	MaxCuts    int  // priority cuts per node
	PowerAware bool // weight cut choice by switching activity (ABC's -p)
}

// MapLUT covers the AIG with k-input LUTs using area-flow-based cut
// selection. With PowerAware set, cut costs are weighted by the switching
// activity of the cut boundary, steering the cover toward low-activity
// roots — the power-aware mode of ABC's `if -p`.
func (g *AIG) MapLUT(opt LUTMapOptions) *LUTNet {
	if opt.K == 0 {
		opt.K = 6
	}
	if opt.MaxCuts == 0 {
		opt.MaxCuts = 8
	}
	cuts := g.EnumerateCuts(opt.K, opt.MaxCuts)
	refs := g.FanoutCounts()
	act := g.Activities()

	// Forward pass: best cut per node by area flow.
	type choice struct {
		cut  Cut
		flow float64
	}
	best := make([]choice, g.NumVars())
	for v := 1; v <= g.numPI; v++ {
		best[v] = choice{cut: newCut([]int{v})}
	}
	for v := g.numPI + 1; v < g.NumVars(); v++ {
		bestFlow := -1.0
		var bestCut Cut
		for _, c := range cuts[v] {
			if len(c.Leaves) == 1 && c.Leaves[0] == v {
				continue // trivial cut cannot implement the node
			}
			flow := 1.0
			if opt.PowerAware {
				flow = 0.2 + act[v]
			}
			for _, leaf := range c.Leaves {
				r := refs[leaf]
				if r < 1 {
					r = 1
				}
				flow += best[leaf].flow / float64(r)
			}
			if bestFlow < 0 || flow < bestFlow {
				bestFlow, bestCut = flow, c
			}
		}
		if bestFlow < 0 {
			// Node has only the trivial cut (shouldn't happen for ANDs).
			bestCut = newCut([]int{v})
			bestFlow = 1
		}
		best[v] = choice{cut: bestCut, flow: bestFlow}
	}

	// Backward pass: extract the cover.
	net := &LUTNet{G: g, LUTs: make(map[int]*LUT)}
	var visit func(v int)
	visit = func(v int) {
		if v == 0 || g.IsPI(v) {
			return
		}
		if _, ok := net.LUTs[v]; ok {
			return
		}
		c := best[v].cut
		for _, leaf := range c.Leaves {
			visit(leaf)
		}
		net.LUTs[v] = &LUT{
			Root:     v,
			Leaves:   append([]int(nil), c.Leaves...),
			TT:       g.CutTruth(MakeLit(v, false), c.Leaves),
			pristine: true,
		}
		net.Order = append(net.Order, v)
	}
	for i := 0; i < g.NumPOs(); i++ {
		visit(g.PO(i).Var())
	}
	return net
}

// NumLUTs returns the LUT count of the cover.
func (n *LUTNet) NumLUTs() int { return len(n.LUTs) }

// MfsOptions controls SAT-based don't-care minimization of a LUT network
// (ABC's mfs).
type MfsOptions struct {
	SimWords   int   // random-simulation width used to find candidate SDCs
	SATBudget  int64 // conflict budget per don't-care proof
	MaxChecks  int   // unobserved input patterns SAT-checked per LUT
	PowerAware bool  // drop high-activity supports first (mfs -p)
	Seed       int64
	Window     int // CNF cone bound per proof (sound for UNSAT)
}

// DefaultMfsOptions returns sensible defaults.
func DefaultMfsOptions() MfsOptions {
	return MfsOptions{SimWords: 16, SATBudget: 200, MaxChecks: 12, Seed: 7, Window: 400}
}

// Mfs minimizes each LUT's function using satisfiability don't-cares: input
// patterns of the LUT that no primary-input assignment can produce are
// proven with SAT and exploited to reduce the LUT's support and literal
// count. With PowerAware set, support reduction tries the highest-activity
// inputs first so that switching-intensive nets are disconnected
// preferentially — the power-optimizing variant (mfs -pegd) the paper's
// stage 2 uses.
func (n *LUTNet) Mfs(opt MfsOptions) {
	if opt.SimWords == 0 {
		opt = DefaultMfsOptions()
	}
	sigs := n.G.Signatures(opt.SimWords, opt.Seed)
	act := n.G.Activities()

	for _, root := range n.Order {
		lut := n.LUTs[root]
		k := len(lut.Leaves)
		if k == 0 || k > 6 {
			continue
		}
		// Observed input patterns under random simulation.
		observed := make([]bool, 1<<uint(k))
		for w := 0; w < opt.SimWords; w++ {
			for bit := 0; bit < 64; bit++ {
				idx := 0
				for i, leaf := range lut.Leaves {
					if sigs[leaf][w]&(1<<uint(bit)) != 0 {
						idx |= 1 << uint(i)
					}
				}
				observed[idx] = true
			}
		}
		// Prove unobserved patterns unreachable (true SDCs), up to budget.
		var dc uint64
		checks := 0
		for idx := 0; idx < 1<<uint(k) && checks < opt.MaxChecks; idx++ {
			if observed[idx] {
				continue
			}
			checks++
			if n.patternUnreachable(lut, idx, opt.SATBudget, opt.Window) {
				dc |= 1 << uint(idx)
			}
		}
		if dc == 0 {
			continue
		}
		onset := lut.TT &^ dc
		upper := lut.TT | dc
		// Support reduction: drop inputs the function no longer depends on
		// within the care set; power-aware order tries active nets first.
		tt := onset
		leaves := append([]int(nil), lut.Leaves...)
		care := ^dc & Truth6Mask(k)
		for changed := true; changed; {
			changed = false
			order := make([]int, len(leaves))
			for i := range order {
				order[i] = i
			}
			if opt.PowerAware {
				sort.Slice(order, func(a, b int) bool {
					return act[leaves[order[a]]] > act[leaves[order[b]]]
				})
			}
			for _, i := range order {
				if removableInput(tt, care, i, len(leaves)) {
					tt, care, leaves = dropInput(tt, care, i, leaves)
					changed = true
					break
				}
			}
		}
		if len(leaves) < len(lut.Leaves) {
			lut.Leaves = leaves
			lut.TT = tt & Truth6Mask(len(leaves))
			lut.pristine = false
			continue
		}
		// Otherwise keep the cover but adopt the ISOP-minimized function
		// within [onset, upper] to reduce literal count.
		cubes := ISOP(onset, upper, k)
		min := CoverTruth(cubes, k)
		if min != lut.TT {
			lut.TT = min
			lut.pristine = false
		}
	}
}

// patternUnreachable checks whether a specific leaf-value combination of a
// LUT can ever occur; returns true when proven impossible.
func (n *LUTNet) patternUnreachable(lut *LUT, idx int, budget int64, window int) bool {
	s := sat.New(0)
	s.ConflictBudget = budget
	cb := NewCNFBuilder(n.G, s)
	cb.Limit = window
	assumptions := make([]sat.Lit, len(lut.Leaves))
	for i, leaf := range lut.Leaves {
		neg := idx&(1<<uint(i)) == 0
		assumptions[i] = sat.L(cb.SatVar(leaf), neg)
	}
	return s.Solve(assumptions...) == sat.Unsat
}

// removableInput reports whether the function tt (with care set) is
// insensitive to input i over the care minterms.
func removableInput(tt, care uint64, i, k int) bool {
	lo, hi := truth6Cofactors(tt, i)
	cl, ch := truth6Cofactors(care, i)
	both := cl & ch & Truth6Mask(k)
	return (lo^hi)&both == 0
}

// dropInput removes input i, compacting the truth table and leaf list.
func dropInput(tt, care uint64, i int, leaves []int) (uint64, uint64, []int) {
	k := len(leaves)
	// Choose, per remaining minterm, a defined cofactor value.
	lo, hi := truth6Cofactors(tt, i)
	cl, ch := truth6Cofactors(care, i)
	merged := (lo & cl) | (hi &^ cl) // prefer the low cofactor where cared
	mc := cl | ch                    // merged care: union of cofactor cares
	// Compact: move variables above i down by one position.
	for j := i; j < k-1; j++ {
		merged = truthSwapAdjacent(merged, j)
		mc = truthSwapAdjacent(mc, j)
	}
	newLeaves := append(append([]int(nil), leaves[:i]...), leaves[i+1:]...)
	return merged & Truth6Mask(k-1), mc & Truth6Mask(k-1), newLeaves
}

// copyCone replicates the AIG cone between root and the cut leaves into
// dst, with the leaves bound to the given dst literals.
func copyCone(src, dst *AIG, root int, leaves []int, bound []Lit) Lit {
	local := make(map[int]Lit, 8)
	for i, leaf := range leaves {
		local[leaf] = bound[i]
	}
	var rec func(v int) Lit
	rec = func(v int) Lit {
		if l, ok := local[v]; ok {
			return l
		}
		f0, f1 := src.Fanins(v)
		a := rec(f0.Var()).NotIf(f0.IsCompl())
		b := rec(f1.Var()).NotIf(f1.IsCompl())
		l := dst.And(a, b)
		local[v] = l
		return l
	}
	return rec(root)
}

// Strash converts the LUT network back into a structurally hashed AIG,
// synthesizing each LUT in factored form (the `strash` step closing the
// paper's stage 2).
func (n *LUTNet) Strash() *AIG {
	g := n.G
	out := New(g.Name)
	m := make(map[int]Lit, len(n.LUTs)+g.NumPIs()+1)
	m[0] = False
	for i := 0; i < g.NumPIs(); i++ {
		m[i+1] = out.AddPI(g.PIName(i))
	}
	for _, root := range n.Order {
		lut := n.LUTs[root]
		leaves := make([]Lit, len(lut.Leaves))
		for i, leaf := range lut.Leaves {
			leaves[i] = m[leaf]
		}
		k := len(lut.Leaves)
		mask := Truth6Mask(k)
		tt := lut.TT & mask
		var l Lit
		switch {
		case tt == 0:
			l = False
		case tt == mask:
			l = True
		case lut.pristine:
			// Copy the original cone: never worse than the source and
			// avoids SOP blowup on parity-like functions.
			l = copyCone(g, out, root, lut.Leaves, leaves)
		default:
			pos := ISOP(tt, tt, k)
			neg := ISOP(^tt&mask, ^tt&mask, k)
			if len(neg) < len(pos) {
				l = out.buildFactored(neg, leaves).Not()
			} else {
				l = out.buildFactored(pos, leaves)
			}
		}
		m[root] = l
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		l, ok := m[po.Var()]
		if !ok {
			l = False
		}
		out.AddPO(l.NotIf(po.IsCompl()), g.POName(i))
	}
	return out.Sweep()
}
