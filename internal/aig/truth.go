package aig

// Truth-table machinery for cut functions of up to 6 inputs, packed into a
// single uint64, plus NPN-style canonicalization and irredundant
// sum-of-products (Minato-Morreale ISOP) computation.

// truth6Masks[i] is the truth table of input variable i over 6 variables.
var truth6Masks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// Truth6Var returns the truth table of variable i (< 6).
func Truth6Var(i int) uint64 { return truth6Masks[i] }

// Truth6Mask returns the mask of meaningful bits for an n-variable table.
func Truth6Mask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(n))) - 1
}

// truth6Cofactors returns the negative and positive cofactors of t with
// respect to variable i, each replicated so the result is independent of
// variable i.
func truth6Cofactors(t uint64, i int) (lo, hi uint64) {
	m := truth6Masks[i]
	shift := uint(1) << uint(i)
	lo = t &^ m
	lo |= lo << shift
	hi = t & m
	hi |= hi >> shift
	return lo, hi
}

// CutTruth computes the truth table of root over the given leaves (at most
// 6), which must form a cut: every path from root to the PIs passes through
// a leaf. Leaves are positive-phase variable indices.
func (g *AIG) CutTruth(root Lit, leaves []int) uint64 {
	if len(leaves) > 6 {
		panic("aig: CutTruth supports at most 6 leaves")
	}
	tt := make(map[int]uint64, len(leaves)*2)
	tt[0] = 0
	for i, v := range leaves {
		tt[v] = truth6Masks[i]
	}
	var rec func(v int) uint64
	rec = func(v int) uint64 {
		if t, ok := tt[v]; ok {
			return t
		}
		if !g.IsAnd(v) {
			panic("aig: CutTruth reached a PI that is not a leaf")
		}
		n := &g.nodes[v]
		a := rec(n.fan0.Var())
		if n.fan0.IsCompl() {
			a = ^a
		}
		b := rec(n.fan1.Var())
		if n.fan1.IsCompl() {
			b = ^b
		}
		t := a & b
		tt[v] = t
		return t
	}
	t := rec(root.Var())
	if root.IsCompl() {
		t = ^t
	}
	return t & Truth6Mask(len(leaves))
}

// TruthSupport returns a bitmask of the variables (0..n-1) the table
// actually depends on.
func TruthSupport(t uint64, n int) uint32 {
	var s uint32
	for i := 0; i < n; i++ {
		lo, hi := truth6Cofactors(t, i)
		if lo&Truth6Mask(n) != hi&Truth6Mask(n) {
			s |= 1 << uint(i)
		}
	}
	return s
}

// truthSwapAdjacent swaps variables i and i+1 in the table.
func truthSwapAdjacent(t uint64, i int) uint64 {
	// Classic bit-permutation constants for adjacent-variable swap.
	switch i {
	case 0:
		return t&0x9999999999999999 | t&0x2222222222222222<<1 | t&0x4444444444444444>>1
	case 1:
		return t&0xC3C3C3C3C3C3C3C3 | t&0x0C0C0C0C0C0C0C0C<<2 | t&0x3030303030303030>>2
	case 2:
		return t&0xF00FF00FF00FF00F | t&0x00F000F000F000F0<<4 | t&0x0F000F000F000F00>>4
	case 3:
		return t&0xFF0000FFFF0000FF | t&0x0000FF000000FF00<<8 | t&0x00FF000000FF0000>>8
	case 4:
		return t&0xFFFF00000000FFFF | t&0x00000000FFFF0000<<16 | t&0x0000FFFF00000000>>16
	}
	panic("aig: bad adjacent swap index")
}

// truthFlip complements variable i in the table.
func truthFlip(t uint64, i int) uint64 {
	m := truth6Masks[i]
	shift := uint(1) << uint(i)
	return t&m>>shift | t&^m<<shift
}

// CanonPP computes a permutation-canonical form of the n-variable table
// (P-canonicalization with output phase): the minimum table value over all
// input permutations and output complementation. It returns the canonical
// table, the permutation applied (perm[newPos] = oldPos), and whether the
// output was complemented. Exhaustive for n <= 6 cells via greedy-repeat;
// used to index the technology-mapping match tables.
func CanonPP(t uint64, n int) (canon uint64, perm []int, outNeg bool) {
	mask := Truth6Mask(n)
	t &= mask
	best := t
	bestPerm := identityPerm(n)
	bestNeg := false
	// Try both output phases; for each, bubble-sort style enumeration of
	// permutations via adjacent swaps (full enumeration up to 6! = 720).
	for phase := 0; phase < 2; phase++ {
		cur := t
		if phase == 1 {
			cur = ^t & mask
		}
		perm := identityPerm(n)
		var enumerate func(k int, tt uint64, p []int)
		enumerate = func(k int, tt uint64, p []int) {
			if k == n {
				if tt < best {
					best = tt
					bestPerm = append([]int(nil), p...)
					bestNeg = phase == 1
				}
				return
			}
			enumerate(k+1, tt, p)
			for i := k + 1; i < n; i++ {
				// Swap positions k and i via adjacent swaps.
				tt2, p2 := tt, append([]int(nil), p...)
				for j := i - 1; j >= k; j-- {
					tt2 = truthSwapAdjacent(tt2, j)
					p2[j], p2[j+1] = p2[j+1], p2[j]
				}
				enumerate(k+1, tt2, p2)
			}
		}
		enumerate(0, cur, perm)
	}
	return best, bestPerm, bestNeg
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Cube is a product term over cut variables: a bit set in Pos (Neg) means
// the variable appears as a positive (negative) literal.
type Cube struct {
	Pos, Neg uint32
}

// ISOP computes an irredundant sum-of-products cover of the incompletely
// specified function [onset, onset|dcset] over n variables using the
// Minato-Morreale procedure. The returned cubes cover every onset minterm,
// stay inside onset|dcset, and are irredundant by construction.
func ISOP(onset, upper uint64, n int) []Cube {
	onset &= Truth6Mask(n)
	upper &= Truth6Mask(n)
	cubes, _ := isopRec(onset, upper, n)
	return cubes
}

// isopRec returns the cover and the function it realizes.
func isopRec(lo, up uint64, n int) ([]Cube, uint64) {
	if lo == 0 {
		return nil, 0
	}
	if up == Truth6Mask(n) {
		return []Cube{{}}, Truth6Mask(n)
	}
	// Pick the top-most variable in the combined support.
	v := -1
	for i := n - 1; i >= 0; i-- {
		l0, l1 := truth6Cofactors(lo, i)
		u0, u1 := truth6Cofactors(up, i)
		if l0 != l1 || u0 != u1 {
			v = i
			break
		}
	}
	if v < 0 {
		// Function is constant over the remaining space.
		return []Cube{{}}, Truth6Mask(n)
	}
	l0, l1 := truth6Cofactors(lo, v)
	u0, u1 := truth6Cofactors(up, v)

	// Cubes that must contain !v: needed where the function is on with v=0
	// but cannot be covered by a v-independent cube.
	c0, f0 := isopRec(l0&^u1, u0, n)
	c1, f1 := isopRec(l1&^u0, u1, n)
	// Remaining onset coverable without v.
	rem := (l0 &^ f0) | (l1 &^ f1)
	c2, f2 := isopRec(rem, u0&u1, n)

	mv := truth6Masks[v]
	var out []Cube
	var fun uint64
	for _, c := range c0 {
		c.Neg |= 1 << uint(v)
		out = append(out, c)
	}
	fun |= f0 &^ mv
	for _, c := range c1 {
		c.Pos |= 1 << uint(v)
		out = append(out, c)
	}
	fun |= f1 & mv
	out = append(out, c2...)
	fun |= f2
	return out, fun
}

// CubeTruth returns the truth table of a cube over n variables.
func CubeTruth(c Cube, n int) uint64 {
	t := Truth6Mask(n)
	for i := 0; i < n; i++ {
		if c.Pos&(1<<uint(i)) != 0 {
			t &= truth6Masks[i]
		}
		if c.Neg&(1<<uint(i)) != 0 {
			t &= ^truth6Masks[i]
		}
	}
	return t & Truth6Mask(n)
}

// CoverTruth returns the truth table realized by a cube cover.
func CoverTruth(cubes []Cube, n int) uint64 {
	var t uint64
	for _, c := range cubes {
		t |= CubeTruth(c, n)
	}
	return t & Truth6Mask(n)
}

// BuildFromCubes synthesizes the cover into the AIG over the given leaf
// literals, producing OR-of-ANDs with balanced trees.
func (g *AIG) BuildFromCubes(cubes []Cube, leaves []Lit) Lit {
	if len(cubes) == 0 {
		return False
	}
	terms := make([]Lit, 0, len(cubes))
	for _, c := range cubes {
		lits := make([]Lit, 0, len(leaves))
		for i, leaf := range leaves {
			if c.Pos&(1<<uint(i)) != 0 {
				lits = append(lits, leaf)
			}
			if c.Neg&(1<<uint(i)) != 0 {
				lits = append(lits, leaf.Not())
			}
		}
		terms = append(terms, g.balancedTree(lits, true))
	}
	return g.balancedTree(terms, false)
}

// balancedTree combines literals with AND (and=true) or OR into a balanced
// binary tree.
func (g *AIG) balancedTree(lits []Lit, and bool) Lit {
	if len(lits) == 0 {
		if and {
			return True
		}
		return False
	}
	for len(lits) > 1 {
		var next []Lit
		for i := 0; i+1 < len(lits); i += 2 {
			if and {
				next = append(next, g.And(lits[i], lits[i+1]))
			} else {
				next = append(next, g.Or(lits[i], lits[i+1]))
			}
		}
		if len(lits)%2 == 1 {
			next = append(next, lits[len(lits)-1])
		}
		lits = next
	}
	return lits[0]
}
