package aig

import "repro/internal/sat"

// CNFBuilder incrementally Tseitin-encodes AIG cones into a SAT solver.
// When Limit is positive, at most Limit AND nodes are given defining
// clauses; deeper nodes become free cut-point variables. That windowing
// keeps proofs cheap and remains SOUND for UNSAT-based conclusions (if the
// miter is unsatisfiable even with free cut points, it is unsatisfiable for
// the real cone), at the cost of completeness (spurious SAT answers).
type CNFBuilder struct {
	G      *AIG
	S      *sat.Solver
	Limit  int         // max AND nodes encoded; 0 = unlimited
	varMap map[int]int // AIG variable -> SAT variable
	nAnds  int
}

// NewCNFBuilder returns a builder over the given graph and solver.
func NewCNFBuilder(g *AIG, s *sat.Solver) *CNFBuilder {
	return &CNFBuilder{G: g, S: s, varMap: make(map[int]int)}
}

// SatVar returns the SAT variable encoding the given AIG variable, encoding
// its transitive fanin cone on first use (up to Limit AND nodes).
func (b *CNFBuilder) SatVar(v int) int {
	if sv, ok := b.varMap[v]; ok {
		return sv
	}
	sv := b.S.AddVar()
	b.varMap[v] = sv
	if v == 0 {
		// Constant node: force FALSE.
		b.S.AddClause(sat.L(sv, true))
		return sv
	}
	if b.G.IsAnd(v) {
		if b.Limit > 0 && b.nAnds >= b.Limit {
			return sv // free cut point
		}
		b.nAnds++
		f0, f1 := b.G.Fanins(v)
		a := b.SatLit(f0)
		c := b.SatLit(f1)
		y := sat.L(sv, false)
		// y <-> a & c
		b.S.AddClause(y.Not(), a)
		b.S.AddClause(y.Not(), c)
		b.S.AddClause(y, a.Not(), c.Not())
	}
	return sv
}

// SatLit returns the SAT literal encoding the given AIG literal.
func (b *CNFBuilder) SatLit(l Lit) sat.Lit {
	return sat.L(b.SatVar(l.Var()), l.IsCompl())
}

// ProveEqual checks whether two literals of the same AIG are functionally
// equivalent over all PI assignments, within the given conflict budget.
// It returns (equal, proven): proven is false when the budget ran out.
func ProveEqual(g *AIG, a, b Lit, budget int64) (equal, proven bool) {
	return ProveEqualWindow(g, a, b, budget, 0)
}

// ProveEqualWindow is ProveEqual with a bounded CNF window: at most
// windowNodes AND nodes are encoded (0 = unlimited). A windowed UNSAT
// verdict is sound; a windowed SAT verdict may be spurious, so it is
// reported as not-equal-but-proven=false when windowed.
func ProveEqualWindow(g *AIG, a, b Lit, budget int64, windowNodes int) (equal, proven bool) {
	if a == b {
		return true, true
	}
	s := sat.New(0)
	s.ConflictBudget = budget
	cb := NewCNFBuilder(g, s)
	cb.Limit = windowNodes
	la := cb.SatLit(a)
	lb := cb.SatLit(b)
	windowed := windowNodes > 0 && cb.nAnds >= windowNodes
	// Miter: (a != b) satisfiable?
	switch s.Solve(la, lb.Not()) {
	case sat.Sat:
		return false, !windowed
	case sat.Unknown:
		return false, false
	}
	switch s.Solve(la.Not(), lb) {
	case sat.Sat:
		return false, !windowed
	case sat.Unknown:
		return false, false
	}
	return true, true
}

// equivEngine is the pluggable combinational equivalence engine. The
// simulation-guided SAT-sweeping checker in internal/cec installs itself
// here from its package init, so any binary that (transitively) imports
// internal/cec upgrades Equivalent from the plain per-output miter below to
// the sweeping engine. The indirection exists because cec builds on this
// package and Go forbids the reverse import.
var equivEngine func(a, b *AIG, budget int64) (equal, proven bool)

// RegisterEquivalenceEngine installs the engine Equivalent delegates to.
// Intended to be called from a package init (internal/cec does); later
// registrations replace earlier ones.
func RegisterEquivalenceEngine(f func(a, b *AIG, budget int64) (equal, proven bool)) {
	equivEngine = f
}

// Equivalent checks combinational equivalence of two AIGs with identical PI
// counts and PO counts with the given per-output conflict budget, returning
// (equivalent, proven). It is a thin shim: when the SAT-sweeping engine from
// internal/cec is registered it does the work; otherwise the basic
// output-by-output miter below runs.
func Equivalent(a, b *AIG, budget int64) (bool, bool) {
	if eng := equivEngine; eng != nil {
		return eng(a, b, budget)
	}
	return equivalentMiter(a, b, budget)
}

// equivalentMiter is the fallback engine: a joint miter checked output by
// output with independent SAT calls and no simulation guidance.
func equivalentMiter(a, b *AIG, budget int64) (bool, bool) {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false, true
	}
	// Build a joint miter graph: copy both into one AIG over shared PIs.
	m := New("miter")
	pis := make([]Lit, a.NumPIs())
	for i := range pis {
		pis[i] = m.AddPI(a.PIName(i))
	}
	la := copyInto(a, m, pis)
	lb := copyInto(b, m, pis)
	for i := 0; i < a.NumPOs(); i++ {
		eq, proven := ProveEqual(m, la[i], lb[i], budget)
		if !proven {
			return false, false
		}
		if !eq {
			return false, true
		}
	}
	return true, true
}

// copyInto replicates src's logic into dst over the provided PI literals and
// returns dst literals for src's POs.
func copyInto(src, dst *AIG, pis []Lit) []Lit {
	m := make([]Lit, src.NumVars())
	m[0] = False
	for i := 0; i < src.NumPIs(); i++ {
		m[i+1] = pis[i]
	}
	for v := src.NumPIs() + 1; v < src.NumVars(); v++ {
		f0, f1 := src.Fanins(v)
		a := m[f0.Var()].NotIf(f0.IsCompl())
		b := m[f1.Var()].NotIf(f1.IsCompl())
		m[v] = dst.And(a, b)
	}
	out := make([]Lit, src.NumPOs())
	for i := 0; i < src.NumPOs(); i++ {
		po := src.PO(i)
		out[i] = m[po.Var()].NotIf(po.IsCompl())
	}
	return out
}
