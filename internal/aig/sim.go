package aig

import "math/rand"

// SimWords simulates the AIG over bit-parallel input patterns: in[i] holds
// the 64 stimulus bits of PI i. It returns one word per variable.
func (g *AIG) SimWords(in []uint64) []uint64 {
	if len(in) != g.numPI {
		panic("aig: SimWords input count mismatch")
	}
	vals := make([]uint64, len(g.nodes))
	vals[0] = 0
	for i := 0; i < g.numPI; i++ {
		vals[i+1] = in[i]
	}
	for v := g.numPI + 1; v < len(g.nodes); v++ {
		n := &g.nodes[v]
		a := vals[n.fan0.Var()]
		if n.fan0.IsCompl() {
			a = ^a
		}
		b := vals[n.fan1.Var()]
		if n.fan1.IsCompl() {
			b = ^b
		}
		vals[v] = a & b
	}
	return vals
}

// EvalLit extracts a literal's value from a SimWords result.
func EvalLit(vals []uint64, l Lit) uint64 {
	v := vals[l.Var()]
	if l.IsCompl() {
		return ^v
	}
	return v
}

// Eval computes the primary-output values for a single input assignment.
func (g *AIG) Eval(inputs []bool) []bool {
	words := make([]uint64, g.numPI)
	for i, b := range inputs {
		if b {
			words[i] = ^uint64(0)
		}
	}
	vals := g.SimWords(words)
	out := make([]bool, len(g.pos))
	for i, po := range g.pos {
		out[i] = EvalLit(vals, po)&1 != 0
	}
	return out
}

// RandomSim runs rounds*64 random patterns and returns the per-variable
// simulation signatures of the final round along with accumulated toggle
// statistics. Deterministic for a fixed seed.
func (g *AIG) RandomSim(rounds int, seed int64) (signature []uint64, toggles []float64) {
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, g.numPI)
	toggles = make([]float64, len(g.nodes))
	var prevBit []uint8
	total := 0
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		vals := g.SimWords(in)
		signature = vals
		// Count bit flips between consecutive pattern bits (temporal toggle
		// estimate under random stimulus).
		for v := range vals {
			w := vals[v]
			cnt := popcount((w ^ (w << 1)) &^ 1)
			if prevBit != nil {
				if uint8(w&1) != prevBit[v] {
					cnt++
				}
			}
			toggles[v] += float64(cnt)
			if prevBit == nil {
				prevBit = make([]uint8, len(vals))
			}
			prevBit[v] = uint8(w >> 63 & 1)
		}
		total += 64
	}
	for v := range toggles {
		toggles[v] /= float64(total)
	}
	return signature, toggles
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Probabilities propagates static signal probabilities from the PIs (each
// assumed 0.5, independent) through the graph. The result maps each
// variable to P(node = 1).
func (g *AIG) Probabilities() []float64 {
	p := make([]float64, len(g.nodes))
	p[0] = 0
	for i := 1; i <= g.numPI; i++ {
		p[i] = 0.5
	}
	for v := g.numPI + 1; v < len(g.nodes); v++ {
		n := &g.nodes[v]
		a := p[n.fan0.Var()]
		if n.fan0.IsCompl() {
			a = 1 - a
		}
		b := p[n.fan1.Var()]
		if n.fan1.IsCompl() {
			b = 1 - b
		}
		p[v] = a * b
	}
	return p
}

// Activities returns the switching-activity estimate per variable: the
// zero-delay toggle probability 2*p*(1-p) under the independence
// assumption. This is the cost ABC's power-aware passes use for
// technology-independent optimization.
func (g *AIG) Activities() []float64 {
	p := g.Probabilities()
	a := make([]float64, len(p))
	for v := range p {
		a[v] = 2 * p[v] * (1 - p[v])
	}
	return a
}
