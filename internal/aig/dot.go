package aig

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDot emits the AIG in Graphviz DOT format: PIs as boxes, AND nodes as
// circles, complemented edges dashed, POs as double circles. Intended for
// inspecting small cones; graphs beyond a few thousand nodes are better
// viewed statistically.
func (g *AIG) WriteDot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=BT;\n", g.Name)
	for i := 0; i < g.numPI; i++ {
		fmt.Fprintf(bw, "  v%d [shape=box,label=%q];\n", i+1, g.pis[i])
	}
	edge := func(from int, to Lit) {
		style := "solid"
		if to.IsCompl() {
			style = "dashed"
		}
		fmt.Fprintf(bw, "  v%d -> v%d [dir=back,style=%s];\n", to.Var(), from, style)
	}
	for v := g.numPI + 1; v < g.NumVars(); v++ {
		n := &g.nodes[v]
		fmt.Fprintf(bw, "  v%d [shape=circle,label=\"%d\"];\n", v, v)
		edge(v, n.fan0)
		edge(v, n.fan1)
	}
	for i, po := range g.pos {
		fmt.Fprintf(bw, "  o%d [shape=doublecircle,label=%q];\n", i, g.poNames[i])
		style := "solid"
		if po.IsCompl() {
			style = "dashed"
		}
		fmt.Fprintf(bw, "  v%d -> o%d [style=%s];\n", po.Var(), i, style)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
