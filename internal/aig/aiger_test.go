package aig

import (
	"bytes"
	"strings"
	"testing"
)

func TestAIGERRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randomAIG(seed, 6, 50, 4)
		g.Name = "roundtrip"
		var buf bytes.Buffer
		if err := g.WriteAIGER(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAIGER(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, buf.String()[:200])
		}
		if back.NumPIs() != g.NumPIs() || back.NumPOs() != g.NumPOs() {
			t.Fatalf("seed %d: interface mismatch", seed)
		}
		if back.Name != "roundtrip" {
			t.Errorf("name lost: %q", back.Name)
		}
		eq, proven := Equivalent(g, back, 50000)
		if !proven || !eq {
			t.Fatalf("seed %d: AIGER round trip not equivalent", seed)
		}
		// Names preserved.
		for i := 0; i < g.NumPIs(); i++ {
			if back.PIName(i) != g.PIName(i) {
				t.Errorf("PI %d name %q != %q", i, back.PIName(i), g.PIName(i))
			}
		}
		for i := 0; i < g.NumPOs(); i++ {
			if back.POName(i) != g.POName(i) {
				t.Errorf("PO %d name %q != %q", i, back.POName(i), g.POName(i))
			}
		}
	}
}

func TestAIGERConstantsAndComplements(t *testing.T) {
	g := New("edge")
	a := g.AddPI("a")
	g.AddPO(False, "zero")
	g.AddPO(True, "one")
	g.AddPO(a.Not(), "na")
	var buf bytes.Buffer
	if err := g.WriteAIGER(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAIGER(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	out := back.Eval([]bool{true})
	if out[0] != false || out[1] != true || out[2] != false {
		t.Errorf("edge outputs: %v", out)
	}
}

func TestAIGERRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"aig 1 1 0 1 0\n2\n2\n",             // binary header keyword
		"aag 1 1 1 1 0\n2\n0 0\n2\n",        // latches
		"aag 2 1 0 1 1\n2\n6\n4 2 3\nextra", // output literal out of range
		"aag 2 1 0 1 1\n2\n2\n5 2 2\n",      // odd AND lhs
		"aag 2 1 0 1 1\n2\n2\n4 6 2\n",      // rhs out of range
	}
	for _, src := range cases {
		if _, err := ReadAIGER(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestAIGERBinaryRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randomAIG(seed, 6, 50, 4)
		g.Name = "bin"
		var buf bytes.Buffer
		if err := g.WriteAIGERBinary(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAIGERBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eq, proven := Equivalent(g, back, 50000)
		if !proven || !eq {
			t.Fatalf("seed %d: binary AIGER round trip not equivalent", seed)
		}
		if back.Name != "bin" || back.PIName(0) != g.PIName(0) || back.POName(0) != g.POName(0) {
			t.Error("binary AIGER lost symbols")
		}
	}
}

func TestAIGERBinarySmallerThanASCII(t *testing.T) {
	g := randomAIG(2, 8, 400, 8)
	var ascii, bin bytes.Buffer
	if err := g.WriteAIGER(&ascii); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteAIGERBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= ascii.Len() {
		t.Errorf("binary (%d B) not smaller than ASCII (%d B)", bin.Len(), ascii.Len())
	}
}

func TestAIGERBinaryRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"",
		"aig 3 1 0 1 1\n2\n",         // truncated deltas
		"aig 9 1 0 1 1\n2\n\x00\x00", // header/variable mismatch
		"aig 2 1 0 1 1\n9\n\x00\x00", // zero first delta
	} {
		if _, err := ReadAIGERBinary(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestWriteDot(t *testing.T) {
	g := New("dotted")
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.And(a, b.Not()), "y")
	var buf bytes.Buffer
	if err := g.WriteDot(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{"digraph", "shape=box", "shape=circle", "doublecircle", "dashed", "}"} {
		if !strings.Contains(s, frag) {
			t.Errorf("dot output missing %q:\n%s", frag, s)
		}
	}
}
