// Package aig implements And-Inverter Graphs — the workhorse data structure
// of modern logic synthesis — together with the optimization passes the
// paper's flow uses: structural hashing, balancing, rewriting, refactoring,
// resubstitution, k-LUT mapping with don't-care-based minimization, and
// combinational equivalence checking. It plays the role of ABC's AIG engine
// in the reproduced synthesis pipeline.
package aig

import (
	"fmt"
	"sort"
)

// Lit is a literal: a variable index shifted left once, with the low bit
// indicating complementation. Variable 0 is the constant node, so False==0
// and True==1.
type Lit uint32

// Constant literals.
const (
	False Lit = 0
	True  Lit = 1
)

// MakeLit builds a literal from a variable index and a complement flag.
func MakeLit(v int, compl bool) Lit {
	l := Lit(v << 1)
	if compl {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// IsCompl reports whether the literal is complemented.
func (l Lit) IsCompl() bool { return l&1 != 0 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// Reg returns the positive-phase literal of the same variable.
func (l Lit) Reg() Lit { return l &^ 1 }

type node struct {
	fan0, fan1 Lit   // fanins; fan0 >= fan1 for AND nodes. PIs: both = piMark
	level      int32 // topological level (PIs at 0)
}

const piMark = ^Lit(0)

// AIG is a combinational And-Inverter Graph. Variable 0 is the constant
// FALSE node; variables 1..NumPIs() are primary inputs; higher variables are
// AND nodes created in topological order.
type AIG struct {
	Name    string
	nodes   []node
	numPI   int
	pis     []string // PI names (index i names var i+1)
	pos     []Lit
	poNames []string
	strash  map[uint64]Lit
}

// New returns an empty AIG with the given name.
func New(name string) *AIG {
	g := &AIG{Name: name, strash: make(map[uint64]Lit)}
	g.nodes = append(g.nodes, node{fan0: piMark, fan1: piMark}) // constant
	return g
}

// AddPI appends a primary input and returns its (positive) literal. All PIs
// must be created before the first AND node.
func (g *AIG) AddPI(name string) Lit {
	if len(g.nodes) != g.numPI+1 {
		panic("aig: AddPI after AND nodes were created")
	}
	g.numPI++
	g.pis = append(g.pis, name)
	g.nodes = append(g.nodes, node{fan0: piMark, fan1: piMark})
	return MakeLit(g.numPI, false)
}

// AddPO registers a primary output.
func (g *AIG) AddPO(l Lit, name string) {
	g.checkLit(l)
	g.pos = append(g.pos, l)
	g.poNames = append(g.poNames, name)
}

// NumPIs returns the primary input count.
func (g *AIG) NumPIs() int { return g.numPI }

// NumPOs returns the primary output count.
func (g *AIG) NumPOs() int { return len(g.pos) }

// NumNodes returns the AND-node count (the conventional "size" metric).
func (g *AIG) NumNodes() int { return len(g.nodes) - 1 - g.numPI }

// NumVars returns the total variable count including constant and PIs.
func (g *AIG) NumVars() int { return len(g.nodes) }

// PI returns the literal of the i-th primary input (0-based).
func (g *AIG) PI(i int) Lit { return MakeLit(i+1, false) }

// PIName returns the name of the i-th primary input.
func (g *AIG) PIName(i int) string { return g.pis[i] }

// PO returns the literal driving the i-th primary output.
func (g *AIG) PO(i int) Lit { return g.pos[i] }

// POName returns the name of the i-th primary output.
func (g *AIG) POName(i int) string { return g.poNames[i] }

// SetPO redirects the i-th primary output.
func (g *AIG) SetPO(i int, l Lit) {
	g.checkLit(l)
	g.pos[i] = l
}

// IsPI reports whether the variable is a primary input.
func (g *AIG) IsPI(v int) bool { return v >= 1 && v <= g.numPI }

// IsAnd reports whether the variable is an AND node.
func (g *AIG) IsAnd(v int) bool { return v > g.numPI && v < len(g.nodes) }

// Fanins returns the fanin literals of an AND variable.
func (g *AIG) Fanins(v int) (Lit, Lit) {
	n := &g.nodes[v]
	return n.fan0, n.fan1
}

// Level returns the topological level of a variable.
func (g *AIG) Level(v int) int { return int(g.nodes[v].level) }

// Depth returns the number of logic levels (the conventional "depth"
// metric): the maximum level over the output drivers.
func (g *AIG) Depth() int {
	d := int32(0)
	for _, po := range g.pos {
		if lv := g.nodes[po.Var()].level; lv > d {
			d = lv
		}
	}
	return int(d)
}

func (g *AIG) checkLit(l Lit) {
	if l.Var() >= len(g.nodes) {
		panic(fmt.Sprintf("aig: literal %d references unknown variable", l))
	}
}

// And returns a literal for the conjunction of a and b, applying constant
// propagation, trivial-case simplification, and structural hashing.
func (g *AIG) And(a, b Lit) Lit {
	g.checkLit(a)
	g.checkLit(b)
	// Normalize operand order.
	if a < b {
		a, b = b, a
	}
	// Trivial cases.
	switch {
	case b == False:
		return False
	case b == True:
		return a
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	key := uint64(a)<<32 | uint64(b)
	if l, ok := g.strash[key]; ok {
		return l
	}
	lv := g.nodes[a.Var()].level
	if l2 := g.nodes[b.Var()].level; l2 > lv {
		lv = l2
	}
	v := len(g.nodes)
	g.nodes = append(g.nodes, node{fan0: a, fan1: b, level: lv + 1})
	l := MakeLit(v, false)
	g.strash[key] = l
	return l
}

// Or returns a | b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a ^ b.
func (g *AIG) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Mux returns s ? t : e.
func (g *AIG) Mux(s, t, e Lit) Lit {
	return g.Or(g.And(s, t), g.And(s.Not(), e))
}

// Ands folds And over the operands (True for none).
func (g *AIG) Ands(ls ...Lit) Lit {
	out := True
	for _, l := range ls {
		out = g.And(out, l)
	}
	return out
}

// Ors folds Or over the operands (False for none).
func (g *AIG) Ors(ls ...Lit) Lit {
	out := False
	for _, l := range ls {
		out = g.Or(out, l)
	}
	return out
}

// FanoutCounts returns, for each variable, the number of fanin references
// from AND nodes plus primary outputs.
func (g *AIG) FanoutCounts() []int {
	refs := make([]int, len(g.nodes))
	for v := g.numPI + 1; v < len(g.nodes); v++ {
		refs[g.nodes[v].fan0.Var()]++
		refs[g.nodes[v].fan1.Var()]++
	}
	for _, po := range g.pos {
		refs[po.Var()]++
	}
	return refs
}

// Sweep returns a compacted copy containing only the nodes reachable from
// the primary outputs, preserving PI/PO order and names.
func (g *AIG) Sweep() *AIG {
	out := New(g.Name)
	m := make([]Lit, len(g.nodes))
	m[0] = False
	for i := 0; i < g.numPI; i++ {
		m[i+1] = out.AddPI(g.pis[i])
	}
	// Mark reachable.
	mark := make([]bool, len(g.nodes))
	var stack []int
	for _, po := range g.pos {
		stack = append(stack, po.Var())
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if mark[v] || !g.IsAnd(v) {
			continue
		}
		mark[v] = true
		stack = append(stack, g.nodes[v].fan0.Var(), g.nodes[v].fan1.Var())
	}
	for v := g.numPI + 1; v < len(g.nodes); v++ {
		if !mark[v] {
			continue
		}
		f0, f1 := g.nodes[v].fan0, g.nodes[v].fan1
		n0 := m[f0.Var()].NotIf(f0.IsCompl())
		n1 := m[f1.Var()].NotIf(f1.IsCompl())
		m[v] = out.And(n0, n1)
	}
	for i, po := range g.pos {
		out.AddPO(m[po.Var()].NotIf(po.IsCompl()), g.poNames[i])
	}
	return out
}

// Clone returns a deep copy.
func (g *AIG) Clone() *AIG {
	out := &AIG{
		Name:    g.Name,
		nodes:   append([]node(nil), g.nodes...),
		numPI:   g.numPI,
		pis:     append([]string(nil), g.pis...),
		pos:     append([]Lit(nil), g.pos...),
		poNames: append([]string(nil), g.poNames...),
		strash:  make(map[uint64]Lit, len(g.strash)),
	}
	for k, v := range g.strash {
		out.strash[k] = v
	}
	return out
}

// TFOCone returns the set of variables in the transitive fanin cone of the
// given literal (including PIs, excluding the constant), sorted.
func (g *AIG) TFOCone(root Lit) []int {
	seen := make(map[int]bool)
	var stack []int
	stack = append(stack, root.Var())
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == 0 || seen[v] {
			continue
		}
		seen[v] = true
		if g.IsAnd(v) {
			stack = append(stack, g.nodes[v].fan0.Var(), g.nodes[v].fan1.Var())
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (g *AIG) String() string {
	return fmt.Sprintf("aig{%s: pi=%d po=%d and=%d depth=%d}",
		g.Name, g.numPI, len(g.pos), g.NumNodes(), g.Depth())
}
