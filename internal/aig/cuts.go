package aig

import "sort"

// Cut is a k-feasible cut: a set of leaf variables that covers every path
// from a node to the primary inputs.
type Cut struct {
	Leaves []int  // sorted variable indices
	sign   uint64 // Bloom-style signature for fast dominance checks
}

func newCut(leaves []int) Cut {
	c := Cut{Leaves: leaves}
	for _, v := range leaves {
		c.sign |= 1 << uint(v%64)
	}
	return c
}

// dominates reports whether c's leaf set is a subset of d's.
func (c Cut) dominates(d Cut) bool {
	if len(c.Leaves) > len(d.Leaves) || c.sign&^d.sign != 0 {
		return false
	}
	i := 0
	for _, v := range d.Leaves {
		if i < len(c.Leaves) && c.Leaves[i] == v {
			i++
		}
	}
	return i == len(c.Leaves)
}

// mergeCuts unions two sorted leaf sets, failing if the result exceeds k.
func mergeCuts(a, b Cut, k int) (Cut, bool) {
	leaves := make([]int, 0, k)
	i, j := 0, 0
	for i < len(a.Leaves) || j < len(b.Leaves) {
		var v int
		switch {
		case i >= len(a.Leaves):
			v = b.Leaves[j]
			j++
		case j >= len(b.Leaves):
			v = a.Leaves[i]
			i++
		case a.Leaves[i] < b.Leaves[j]:
			v = a.Leaves[i]
			i++
		case a.Leaves[i] > b.Leaves[j]:
			v = b.Leaves[j]
			j++
		default:
			v = a.Leaves[i]
			i++
			j++
		}
		if len(leaves) == k {
			return Cut{}, false
		}
		leaves = append(leaves, v)
	}
	return newCut(leaves), true
}

// EnumerateCuts computes up to maxCuts k-feasible cuts per variable using
// the standard bottom-up merge with dominance pruning. The trivial cut {v}
// is always included (last). Index by variable.
func (g *AIG) EnumerateCuts(k, maxCuts int) [][]Cut {
	cuts := make([][]Cut, len(g.nodes))
	cuts[0] = []Cut{newCut([]int{})}
	for v := 1; v <= g.numPI; v++ {
		cuts[v] = []Cut{newCut([]int{v})}
	}
	for v := g.numPI + 1; v < len(g.nodes); v++ {
		n := &g.nodes[v]
		c0 := cuts[n.fan0.Var()]
		c1 := cuts[n.fan1.Var()]
		var set []Cut
		for _, a := range c0 {
			for _, b := range c1 {
				m, ok := mergeCuts(a, b, k)
				if !ok {
					continue
				}
				if dominatedByAny(set, m) {
					continue
				}
				set = removeDominated(set, m)
				set = append(set, m)
			}
		}
		sort.Slice(set, func(i, j int) bool { return len(set[i].Leaves) < len(set[j].Leaves) })
		if len(set) > maxCuts-1 {
			set = set[:maxCuts-1]
		}
		set = append(set, newCut([]int{v})) // trivial cut
		cuts[v] = set
	}
	return cuts
}

func dominatedByAny(set []Cut, m Cut) bool {
	for _, c := range set {
		if c.dominates(m) {
			return true
		}
	}
	return false
}

func removeDominated(set []Cut, m Cut) []Cut {
	out := set[:0]
	for _, c := range set {
		if !m.dominates(c) {
			out = append(out, c)
		}
	}
	return out
}

// MFFCSize returns the size of the maximum fanout-free cone of variable v
// with respect to the given cut leaves: the number of AND nodes that would
// become dead if v were replaced by a different implementation. refs must be
// the current fanout counts.
func (g *AIG) MFFCSize(v int, leaves []int, refs []int) int {
	leafSet := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		leafSet[l] = true
	}
	local := make(map[int]int)
	var count func(u int) int
	count = func(u int) int {
		if leafSet[u] || !g.IsAnd(u) {
			return 0
		}
		n := 1
		for _, f := range []Lit{g.nodes[u].fan0, g.nodes[u].fan1} {
			w := f.Var()
			local[w]++
			if !leafSet[w] && g.IsAnd(w) && local[w] >= refs[w] {
				n += count(w)
			}
		}
		return n
	}
	return count(v)
}
