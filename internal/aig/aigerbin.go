package aig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteAIGERBinary emits the graph in the binary AIGER format ("aig"), the
// compact form the EPFL suite is distributed in: AND definitions are
// delta-compressed LEB128 varints instead of ASCII triples.
func (g *AIG) WriteAIGERBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	m := g.NumVars() - 1
	fmt.Fprintf(bw, "aig %d %d 0 %d %d\n", m, g.numPI, len(g.pos), g.NumNodes())
	for _, po := range g.pos {
		fmt.Fprintf(bw, "%d\n", uint32(po))
	}
	for v := g.numPI + 1; v < g.NumVars(); v++ {
		n := &g.nodes[v]
		lhs := uint32(2 * v)
		rhs0 := uint32(n.fan0)
		rhs1 := uint32(n.fan1)
		if rhs1 > rhs0 {
			rhs0, rhs1 = rhs1, rhs0
		}
		if rhs0 >= lhs {
			return fmt.Errorf("aiger: node %d not in topological literal order", v)
		}
		writeVarint(bw, lhs-rhs0)
		writeVarint(bw, rhs0-rhs1)
	}
	for i, name := range g.pis {
		fmt.Fprintf(bw, "i%d %s\n", i, name)
	}
	for i, name := range g.poNames {
		fmt.Fprintf(bw, "o%d %s\n", i, name)
	}
	fmt.Fprintf(bw, "c\n%s\n", g.Name)
	return bw.Flush()
}

func writeVarint(w *bufio.Writer, x uint32) {
	for x >= 0x80 {
		w.WriteByte(byte(x&0x7F | 0x80))
		x >>= 7
	}
	w.WriteByte(byte(x))
}

func readVarint(r *bufio.Reader) (uint32, error) {
	var x uint32
	var shift uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		x |= uint32(b&0x7F) << shift
		if b&0x80 == 0 {
			return x, nil
		}
		shift += 7
		if shift > 28 {
			return 0, fmt.Errorf("aiger: varint overflow")
		}
	}
}

// ReadAIGERBinary parses a binary AIGER ("aig") stream with combinational
// content.
func ReadAIGERBinary(r io.Reader) (*AIG, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(header)
	if len(fields) != 6 || fields[0] != "aig" {
		return nil, fmt.Errorf("aiger: bad binary header %q", header)
	}
	nums := make([]int, 5)
	for i := range nums {
		nums[i], err = strconv.Atoi(fields[i+1])
		if err != nil {
			return nil, fmt.Errorf("aiger: bad header field %q", fields[i+1])
		}
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, fmt.Errorf("aiger: latches unsupported")
	}
	if maxVar != nIn+nAnd {
		return nil, fmt.Errorf("aiger: binary format requires contiguous variables")
	}
	g := New("aiger")
	for i := 0; i < nIn; i++ {
		g.AddPI(fmt.Sprintf("i%d", i))
	}
	outLits := make([]Lit, nOut)
	for i := range outLits {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(strings.TrimSpace(line))
		if err != nil {
			return nil, fmt.Errorf("aiger: bad output literal %q", line)
		}
		outLits[i] = Lit(v)
	}
	varMap := make([]Lit, maxVar+1)
	varMap[0] = False
	for i := 1; i <= nIn; i++ {
		varMap[i] = MakeLit(i, false)
	}
	deref := func(fileLit uint32) (Lit, error) {
		v := int(fileLit >> 1)
		if v > maxVar {
			return 0, fmt.Errorf("aiger: literal %d out of range", fileLit)
		}
		base := varMap[v]
		if base == 0 && v != 0 {
			return 0, fmt.Errorf("aiger: literal %d used before definition", fileLit)
		}
		return base.NotIf(fileLit&1 == 1), nil
	}
	for i := 0; i < nAnd; i++ {
		lhs := uint32(2 * (nIn + 1 + i))
		d0, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		d1, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		if d0 == 0 || d0 > lhs {
			return nil, fmt.Errorf("aiger: bad delta at AND %d", i)
		}
		rhs0 := lhs - d0
		if d1 > rhs0 {
			return nil, fmt.Errorf("aiger: bad second delta at AND %d", i)
		}
		rhs1 := rhs0 - d1
		a, err := deref(rhs0)
		if err != nil {
			return nil, err
		}
		b, err := deref(rhs1)
		if err != nil {
			return nil, err
		}
		varMap[lhs>>1] = g.And(a, b)
	}
	// Symbol table.
	poNames := make([]string, nOut)
	for i := range poNames {
		poNames[i] = fmt.Sprintf("o%d", i)
	}
	for {
		line, err := br.ReadString('\n')
		if len(line) > 0 {
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "i"):
				if idx, name, ok := parseSymbol(line[1:]); ok && idx < len(g.pis) {
					g.pis[idx] = name
				}
			case strings.HasPrefix(line, "o"):
				if idx, name, ok := parseSymbol(line[1:]); ok && idx < nOut {
					poNames[idx] = name
				}
			case line == "c":
				if cm, err2 := br.ReadString('\n'); err2 == nil {
					g.Name = strings.TrimSpace(cm)
				}
			}
		}
		if err != nil {
			break
		}
	}
	for i, ol := range outLits {
		l, err := deref(uint32(ol))
		if err != nil {
			return nil, err
		}
		g.AddPO(l, poNames[i])
	}
	return g, nil
}
