package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAndSimplifications(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	if g.And(a, False) != False {
		t.Error("a & 0 != 0")
	}
	if g.And(a, True) != a {
		t.Error("a & 1 != a")
	}
	if g.And(a, a) != a {
		t.Error("a & a != a")
	}
	if g.And(a, a.Not()) != False {
		t.Error("a & !a != 0")
	}
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Error("strash failed to merge commuted AND")
	}
	if g.NumNodes() != 1 {
		t.Errorf("nodes = %d, want 1", g.NumNodes())
	}
}

func TestEvalGates(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	g.AddPO(g.And(a, b), "and")
	g.AddPO(g.Or(a, b), "or")
	g.AddPO(g.Xor(a, b), "xor")
	g.AddPO(g.Mux(c, a, b), "mux")
	for idx := 0; idx < 8; idx++ {
		in := []bool{idx&1 != 0, idx&2 != 0, idx&4 != 0}
		out := g.Eval(in)
		if out[0] != (in[0] && in[1]) {
			t.Errorf("and(%v) = %v", in, out[0])
		}
		if out[1] != (in[0] || in[1]) {
			t.Errorf("or(%v) = %v", in, out[1])
		}
		if out[2] != (in[0] != in[1]) {
			t.Errorf("xor(%v) = %v", in, out[2])
		}
		want := in[1]
		if !in[2] {
			want = in[0]
		}
		// Mux(s,t,e): s ? t : e with s=c, t=a, e=b.
		wantMux := in[0]
		if !in[2] {
			wantMux = in[1]
		}
		_ = want
		if out[3] != wantMux {
			t.Errorf("mux(%v) = %v, want %v", in, out[3], wantMux)
		}
	}
}

func TestLevelsAndDepth(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	g.AddPO(y, "y")
	if g.Level(x.Var()) != 1 || g.Level(y.Var()) != 2 {
		t.Errorf("levels: %d %d", g.Level(x.Var()), g.Level(y.Var()))
	}
	if g.Depth() != 2 {
		t.Errorf("depth = %d", g.Depth())
	}
}

func TestSweepRemovesDangling(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	keep := g.And(a, b)
	g.And(a, b.Not()) // dangling
	g.AddPO(keep, "y")
	if g.NumNodes() != 2 {
		t.Fatalf("pre-sweep nodes = %d", g.NumNodes())
	}
	s := g.Sweep()
	if s.NumNodes() != 1 {
		t.Errorf("post-sweep nodes = %d, want 1", s.NumNodes())
	}
	if eq, proven := Equivalent(g, s, 1000); !eq || !proven {
		t.Error("sweep changed function")
	}
}

// randomAIG builds a deterministic random DAG for property tests.
func randomAIG(seed int64, nPI, nNodes, nPO int) *AIG {
	rng := rand.New(rand.NewSource(seed))
	g := New("rand")
	lits := make([]Lit, 0, nPI+nNodes)
	for i := 0; i < nPI; i++ {
		lits = append(lits, g.AddPI(pinName(i)))
	}
	for i := 0; i < nNodes; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < nPO; i++ {
		g.AddPO(lits[len(lits)-1-i%len(lits)].NotIf(rng.Intn(2) == 0), pinName(100+i))
	}
	return g
}

func pinName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func TestSimWordsMatchesEval(t *testing.T) {
	g := randomAIG(3, 5, 40, 4)
	f := func(pattern uint8) bool {
		in := make([]bool, 5)
		words := make([]uint64, 5)
		for i := range in {
			in[i] = pattern&(1<<uint(i)) != 0
			if in[i] {
				words[i] = ^uint64(0)
			}
		}
		want := g.Eval(in)
		vals := g.SimWords(words)
		for i := 0; i < g.NumPOs(); i++ {
			if (EvalLit(vals, g.PO(i))&1 != 0) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestProbabilities(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	and := g.And(a, b)
	or := g.Or(a, b)
	p := g.Probabilities()
	if p[and.Var()] != 0.25 {
		t.Errorf("P(and) = %v", p[and.Var()])
	}
	// or is stored complemented: node is !a&!b with p=0.25.
	if p[or.Var()] != 0.25 {
		t.Errorf("P(or-node) = %v", p[or.Var()])
	}
	act := g.Activities()
	if act[and.Var()] != 2*0.25*0.75 {
		t.Errorf("activity = %v", act[and.Var()])
	}
}

func TestCutTruth(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(a, b)
	y := g.Or(x, c)
	tt := g.CutTruth(y, []int{a.Var(), b.Var(), c.Var()})
	// Expected: (a&b)|c over vars (a=bit0, b=bit1, c=bit2).
	var want uint64
	for idx := 0; idx < 8; idx++ {
		av := idx&1 != 0
		bv := idx&2 != 0
		cv := idx&4 != 0
		if av && bv || cv {
			want |= 1 << uint(idx)
		}
	}
	if tt != want {
		t.Errorf("CutTruth = %x, want %x", tt, want)
	}
}

func TestTruthHelpers(t *testing.T) {
	// support of x0 & x2 over 3 vars
	tt := truth6Masks[0] & truth6Masks[2] & Truth6Mask(3)
	if s := TruthSupport(tt, 3); s != 0b101 {
		t.Errorf("support = %b", s)
	}
	// flip and swap sanity
	x := truth6Masks[0] & Truth6Mask(2)
	if truthFlip(x, 0) != (^truth6Masks[0])&Truth6Mask(2) {
		t.Error("truthFlip broken")
	}
	if truthSwapAdjacent(x, 0)&Truth6Mask(2) != truth6Masks[1]&Truth6Mask(2) {
		t.Error("truthSwapAdjacent broken")
	}
}

func TestISOPRoundTrip(t *testing.T) {
	f := func(raw uint16, nRaw uint8) bool {
		n := 2 + int(nRaw)%3 // 2..4 vars
		tt := uint64(raw) & Truth6Mask(n)
		cubes := ISOP(tt, tt, n)
		return CoverTruth(cubes, n) == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestISOPWithDontCares(t *testing.T) {
	f := func(onRaw, dcRaw uint16) bool {
		n := 4
		on := uint64(onRaw) & Truth6Mask(n)
		dc := uint64(dcRaw) & Truth6Mask(n) &^ on
		cubes := ISOP(on, on|dc, n)
		got := CoverTruth(cubes, n)
		// Must cover onset and stay within onset|dc.
		return on&^got == 0 && got&^(on|dc) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCanonPPInvariance(t *testing.T) {
	// Canonical form must be invariant under input permutation and output
	// complementation.
	f := func(raw uint16, permSeed uint8, negOut bool) bool {
		n := 3
		tt := uint64(raw) & Truth6Mask(n)
		canon1, _, _ := CanonPP(tt, n)
		// Apply a random adjacent-swap sequence and optional output negation.
		tt2 := tt
		s := permSeed
		for k := 0; k < 4; k++ {
			tt2 = truthSwapAdjacent(tt2, int(s)%(n-1))
			s = s*7 + 3
		}
		if negOut {
			tt2 = ^tt2 & Truth6Mask(n)
		}
		canon2, _, _ := CanonPP(tt2, n)
		return canon1 == canon2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBuildFromCubesMatchesTruth(t *testing.T) {
	f := func(raw uint16) bool {
		n := 4
		tt := uint64(raw) & Truth6Mask(n)
		g := New("t")
		leaves := make([]Lit, n)
		for i := range leaves {
			leaves[i] = g.AddPI(pinName(i))
		}
		cubes := ISOP(tt, tt, n)
		built := g.BuildFromCubes(cubes, leaves)
		g.AddPO(built, "y")
		factored := New("f")
		leaves2 := make([]Lit, n)
		for i := range leaves2 {
			leaves2[i] = factored.AddPI(pinName(i))
		}
		factored.AddPO(factored.buildFactored(cubes, leaves2), "y")
		for idx := 0; idx < 16; idx++ {
			in := []bool{idx&1 != 0, idx&2 != 0, idx&4 != 0, idx&8 != 0}
			want := tt&(1<<uint(idx)) != 0
			if g.Eval(in)[0] != want || factored.Eval(in)[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateCutsBasic(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	cuts := g.EnumerateCuts(4, 8)
	// y must have a cut {a,b,c} and the trivial cut {y}.
	foundABC, foundTrivial := false, false
	for _, cut := range cuts[y.Var()] {
		if len(cut.Leaves) == 3 && cut.Leaves[0] == a.Var() && cut.Leaves[1] == b.Var() && cut.Leaves[2] == c.Var() {
			foundABC = true
		}
		if len(cut.Leaves) == 1 && cut.Leaves[0] == y.Var() {
			foundTrivial = true
		}
	}
	if !foundABC || !foundTrivial {
		t.Errorf("cuts of y: %+v", cuts[y.Var()])
	}
}

func TestMFFCSize(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	g.AddPO(y, "y")
	refs := g.FanoutCounts()
	// MFFC of y over {a,b,c}: both x and y are exclusively in y's cone.
	if got := g.MFFCSize(y.Var(), []int{a.Var(), b.Var(), c.Var()}, refs); got != 2 {
		t.Errorf("MFFC = %d, want 2", got)
	}
	// With x also feeding a PO, x leaves the MFFC.
	g2 := New("t")
	a2 := g2.AddPI("a")
	b2 := g2.AddPI("b")
	c2 := g2.AddPI("c")
	x2 := g2.And(a2, b2)
	y2 := g2.And(x2, c2)
	g2.AddPO(y2, "y")
	g2.AddPO(x2, "x")
	refs2 := g2.FanoutCounts()
	if got := g2.MFFCSize(y2.Var(), []int{a2.Var(), b2.Var(), c2.Var()}, refs2); got != 1 {
		t.Errorf("MFFC with shared x = %d, want 1", got)
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	g1 := New("a")
	a := g1.AddPI("a")
	b := g1.AddPI("b")
	g1.AddPO(g1.And(a, b), "y")
	g2 := New("b")
	a2 := g2.AddPI("a")
	b2 := g2.AddPI("b")
	g2.AddPO(g2.Or(a2, b2), "y")
	eq, proven := Equivalent(g1, g2, 10000)
	if !proven || eq {
		t.Errorf("AND vs OR: eq=%v proven=%v", eq, proven)
	}
	g3 := New("c")
	a3 := g3.AddPI("a")
	b3 := g3.AddPI("b")
	g3.AddPO(g3.Or(b3, a3), "y")
	eq, proven = Equivalent(g2, g3, 10000)
	if !proven || !eq {
		t.Errorf("OR vs OR: eq=%v proven=%v", eq, proven)
	}
}

func checkPass(t *testing.T, name string, pass func(*AIG) *AIG, allowGrowth bool) {
	t.Helper()
	for seed := int64(1); seed <= 8; seed++ {
		g := randomAIG(seed, 6, 60, 5)
		opt := pass(g)
		eq, proven := Equivalent(g, opt, 50000)
		if !proven {
			t.Errorf("%s seed %d: equivalence not proven", name, seed)
			continue
		}
		if !eq {
			t.Fatalf("%s seed %d: NOT EQUIVALENT (pass is unsound)", name, seed)
		}
		if !allowGrowth && opt.NumNodes() > g.NumNodes() {
			t.Errorf("%s seed %d: size grew %d -> %d", name, seed, g.NumNodes(), opt.NumNodes())
		}
	}
}

func TestBalancePreservesFunction(t *testing.T) {
	checkPass(t, "balance", func(g *AIG) *AIG { return g.Balance() }, true)
}

func TestBalanceReducesChainDepth(t *testing.T) {
	g := New("chain")
	lits := make([]Lit, 16)
	for i := range lits {
		lits[i] = g.AddPI(pinName(i))
	}
	acc := lits[0]
	for i := 1; i < len(lits); i++ {
		acc = g.And(acc, lits[i])
	}
	g.AddPO(acc, "y")
	bal := g.Balance()
	if bal.Depth() != 4 {
		t.Errorf("balanced 16-AND chain depth = %d, want 4", bal.Depth())
	}
	if eq, proven := Equivalent(g, bal, 10000); !eq || !proven {
		t.Error("balance broke the chain function")
	}
}

func TestRewritePreservesFunction(t *testing.T) {
	checkPass(t, "rewrite", func(g *AIG) *AIG { return g.Rewrite(false) }, false)
}

func TestRefactorPreservesFunction(t *testing.T) {
	checkPass(t, "refactor", func(g *AIG) *AIG { return g.Refactor() }, false)
}

func TestResubPreservesFunction(t *testing.T) {
	checkPass(t, "resub", func(g *AIG) *AIG { return g.Resub(DefaultResubOptions()) }, false)
}

func TestResubMergesDuplicates(t *testing.T) {
	// Build two structurally different but equivalent cones; resub (SAT
	// sweeping) must merge them.
	g := New("dup")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(g.And(a, b), c)
	y := g.And(a, g.And(b, c))
	g.AddPO(x, "x")
	g.AddPO(y, "y")
	r := g.Resub(DefaultResubOptions())
	if r.NumNodes() > 2 {
		t.Errorf("resub left %d nodes, want 2 (merged chains)", r.NumNodes())
	}
	if eq, proven := Equivalent(g, r, 10000); !eq || !proven {
		t.Error("resub broke function")
	}
}

func TestMapLUTAndStrashRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomAIG(seed, 6, 80, 5)
		for _, power := range []bool{false, true} {
			net := g.MapLUT(LUTMapOptions{K: 4, PowerAware: power})
			if net.NumLUTs() == 0 || net.NumLUTs() > g.NumNodes() {
				t.Errorf("seed %d: LUT count %d vs %d nodes", seed, net.NumLUTs(), g.NumNodes())
			}
			back := net.Strash()
			eq, proven := Equivalent(g, back, 50000)
			if !proven || !eq {
				t.Fatalf("seed %d power=%v: LUT round trip eq=%v proven=%v", seed, power, eq, proven)
			}
		}
	}
}

func TestMfsPreservesGlobalFunction(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomAIG(seed, 6, 80, 5)
		for _, power := range []bool{false, true} {
			net := g.MapLUT(LUTMapOptions{K: 5})
			opt := DefaultMfsOptions()
			opt.PowerAware = power
			net.Mfs(opt)
			back := net.Strash()
			eq, proven := Equivalent(g, back, 50000)
			if !proven {
				t.Errorf("seed %d: mfs equivalence not proven", seed)
				continue
			}
			if !eq {
				t.Fatalf("seed %d power=%v: mfs BROKE the circuit", seed, power)
			}
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := randomAIG(1, 4, 20, 2)
	c := g.Clone()
	a := c.PI(0)
	b := c.PI(1)
	c.AddPO(c.And(a, b), "extra")
	if g.NumPOs() == c.NumPOs() {
		t.Error("clone shares PO storage")
	}
	if eq, _ := Equivalent(g, g.Clone(), 10000); !eq {
		t.Error("clone not equivalent to original")
	}
}

func TestQuickCutsAreValidCuts(t *testing.T) {
	// Every enumerated cut must be a real cut: the cut truth table computed
	// over the leaves must reproduce node behavior on random simulation.
	f := func(seed int64) bool {
		g := randomAIG(seed, 5, 30, 3)
		cuts := g.EnumerateCuts(4, 6)
		words := make([]uint64, 5)
		st := uint64(seed)*0x9E3779B97F4A7C15 + 1
		for i := range words {
			st ^= st << 13
			st ^= st >> 7
			st ^= st << 17
			words[i] = st
		}
		vals := g.SimWords(words)
		for v := g.NumPIs() + 1; v < g.NumVars(); v++ {
			for _, cut := range cuts[v] {
				if len(cut.Leaves) == 1 && cut.Leaves[0] == v {
					continue
				}
				if len(cut.Leaves) > 6 {
					return false
				}
				tt := g.CutTruth(MakeLit(v, false), cut.Leaves)
				// Check 64 sampled patterns: node value must equal the
				// cut function applied to leaf values.
				for bit := 0; bit < 64; bit++ {
					row := 0
					for i, leaf := range cut.Leaves {
						if vals[leaf]&(1<<uint(bit)) != 0 {
							row |= 1 << uint(i)
						}
					}
					want := tt&(1<<uint(row)) != 0
					got := vals[v]&(1<<uint(bit)) != 0
					if got != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestActivitiesBounded(t *testing.T) {
	g := randomAIG(5, 8, 100, 5)
	for v, a := range g.Activities() {
		if a < 0 || a > 0.5+1e-12 {
			t.Fatalf("activity[%d] = %v outside [0, 0.5]", v, a)
		}
	}
}

func TestSweepPreservesNames(t *testing.T) {
	g := New("names")
	a := g.AddPI("alpha")
	b := g.AddPI("beta")
	g.AddPO(g.And(a, b), "gamma")
	s := g.Sweep()
	if s.PIName(0) != "alpha" || s.PIName(1) != "beta" || s.POName(0) != "gamma" {
		t.Error("sweep lost interface names")
	}
	if s.Name != "names" {
		t.Error("sweep lost circuit name")
	}
}
