package aig

import "sort"

// Balance rebuilds the AIG with AND-tree balancing: maximal single-fanout
// conjunction chains are collected into supergates and re-assembled as
// minimum-depth trees (pairing the two shallowest operands first, Huffman
// style). This is the classic `balance` pass that reduces depth without
// changing size much.
func (g *AIG) Balance() *AIG {
	done := startPass("balance", g)
	out := New(g.Name)
	m := make([]Lit, g.NumVars())
	m[0] = False
	for i := 0; i < g.numPI; i++ {
		m[i+1] = out.AddPI(g.pis[i])
	}
	refs := g.FanoutCounts()
	for v := g.numPI + 1; v < g.NumVars(); v++ {
		ops := g.collectSuper(MakeLit(v, false), refs, nil)
		mapped := make([]Lit, len(ops))
		for i, op := range ops {
			mapped[i] = m[op.Var()].NotIf(op.IsCompl())
		}
		m[v] = out.balanceAnd(mapped)
	}
	for i, po := range g.pos {
		out.AddPO(m[po.Var()].NotIf(po.IsCompl()), g.poNames[i])
	}
	swept := out.Sweep()
	done(swept)
	return swept
}

// collectSuper gathers the operand literals of the maximal AND supergate
// rooted at l: non-complemented AND fanins with a single fanout are expanded
// recursively.
func (g *AIG) collectSuper(l Lit, refs []int, acc []Lit) []Lit {
	v := l.Var()
	if l.IsCompl() || !g.IsAnd(v) {
		return append(acc, l)
	}
	f0, f1 := g.Fanins(v)
	for _, f := range []Lit{f0, f1} {
		if !f.IsCompl() && g.IsAnd(f.Var()) && refs[f.Var()] == 1 {
			acc = g.collectSuper(f, refs, acc)
		} else {
			acc = append(acc, f)
		}
	}
	return acc
}

// balanceAnd combines operands into a depth-minimal AND tree by repeatedly
// pairing the two shallowest literals.
func (g *AIG) balanceAnd(ops []Lit) Lit {
	if len(ops) == 0 {
		return True
	}
	work := append([]Lit(nil), ops...)
	for len(work) > 1 {
		sort.Slice(work, func(i, j int) bool {
			return g.nodes[work[i].Var()].level > g.nodes[work[j].Var()].level
		})
		a := work[len(work)-1]
		b := work[len(work)-2]
		work = work[:len(work)-2]
		work = append(work, g.And(a, b))
	}
	return work[0]
}
