package aig

import (
	"time"

	"repro/internal/obs"
)

// startPass opens per-pass telemetry for an optimization pass and returns
// the closure to call with the pass output. Recorded per pass name: run
// count, cumulative node and depth deltas (negative = the pass shrank the
// network), and a wall-time histogram. When metrics are disabled the
// closure is a no-op and nothing — not even the input depth — is computed.
func startPass(pass string, in *AIG) func(out *AIG) {
	if !obs.MetricsEnabled() {
		return func(*AIG) {}
	}
	t0 := time.Now()
	nodesIn, depthIn := in.NumNodes(), in.Depth()
	return func(out *AIG) {
		prefix := "aig.pass." + pass
		obs.C(prefix + ".runs").Inc()
		obs.C(prefix + ".nodes_delta").Add(int64(out.NumNodes() - nodesIn))
		obs.C(prefix + ".depth_delta").Add(int64(out.Depth() - depthIn))
		obs.H(prefix + ".seconds").Observe(time.Since(t0).Seconds())
	}
}
