package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.hits").Add(42)
	r.Counter("a.misses").Add(7)
	r.Gauge("b.level").Set(3.25)
	h := r.Histogram("c.seconds")
	for _, v := range []float64{0.001, 0.002, 0.004, 1.5} {
		h.Observe(v)
	}

	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	r2 := NewRegistry()
	r2.Restore(back)
	if got := r2.Counter("a.hits").Value(); got != 42 {
		t.Errorf("restored counter a.hits = %d, want 42", got)
	}
	if got := r2.Gauge("b.level").Value(); got != 3.25 {
		t.Errorf("restored gauge = %g, want 3.25", got)
	}
	h2 := r2.Histogram("c.seconds")
	if h2.Count() != 4 || h2.Min() != 0.001 || h2.Max() != 1.5 {
		t.Errorf("restored hist count=%d min=%g max=%g", h2.Count(), h2.Min(), h2.Max())
	}
	if math.Abs(h2.Sum()-h.Sum()) > 1e-15 {
		t.Errorf("restored hist sum=%g want %g", h2.Sum(), h.Sum())
	}
	// The bucketed quantile estimate must survive the round trip exactly.
	if q, q2 := h.Quantile(0.5), h2.Quantile(0.5); q != q2 {
		t.Errorf("restored p50 %g != original %g", q2, q)
	}
}

func TestSnapshotRoundTripEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty.seconds")
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	r2 := NewRegistry()
	r2.Restore(back)
	h := r2.Histogram("empty.seconds")
	if h.Count() != 0 || !math.IsInf(h.Min(), 1) || !math.IsInf(h.Max(), -1) {
		t.Errorf("empty hist after restore: count=%d min=%g max=%g", h.Count(), h.Min(), h.Max())
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(10)
	r.Histogram("t").Observe(1.0)
	before := r.Snapshot()

	r.Counter("n").Add(5)
	r.Counter("fresh").Add(3)
	r.Gauge("g").Set(9)
	r.Histogram("t").Observe(2.0)
	after := r.Snapshot()

	d := after.Diff(before)
	if d.Counters["n"] != 5 {
		t.Errorf("diff counter n = %d, want 5", d.Counters["n"])
	}
	if d.Counters["fresh"] != 3 {
		t.Errorf("diff counter fresh = %d, want 3", d.Counters["fresh"])
	}
	if d.Gauges["g"] != 9 {
		t.Errorf("diff gauge g = %g, want 9", d.Gauges["g"])
	}
	ht := d.Histograms["t"]
	if ht.Count != 1 || math.Abs(ht.Sum-2.0) > 1e-12 {
		t.Errorf("diff hist t count=%d sum=%g, want 1/2.0", ht.Count, ht.Sum)
	}
	var total int64
	for _, c := range ht.Buckets {
		total += c
	}
	if total != 1 {
		t.Errorf("diff hist bucket mass = %d, want 1", total)
	}
}

func TestNilRegistrySnapshot(t *testing.T) {
	var r *Registry
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Errorf("nil registry snapshot has counters: %v", snap.Counters)
	}
	r.Restore(snap) // must not panic
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on empty snapshot: %v", err)
	}
	if !strings.Contains(buf.String(), "{") {
		t.Errorf("expected JSON object, got %q", buf.String())
	}
}
