package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// HistoryRecord is one run's entry in the append-only metrics history
// store (bench/history.jsonl by convention, -history flag): the registry
// snapshot plus per-stage wall times, an optional QoR summary, keyed by
// the journal run ID and the run's artifact SHA-256s. cryoobs trend reads
// the store back and renders run-over-run drift tables.
type HistoryRecord struct {
	TNs int64  `json:"t_ns"` // wall-clock append time, unix nanoseconds
	Run string `json:"run"`  // journal run ID (fresh ID when journaling is off)
	Bin string `json:"bin"`  // producing binary
	// Args is the command line, for "what was this run" archaeology.
	Args string `json:"args,omitempty"`
	// Metrics is the full registry snapshot at flush time.
	Metrics *Snapshot `json:"metrics,omitempty"`
	// Stages maps span name -> total seconds (the tracer's Totals).
	Stages map[string]float64 `json:"stages,omitempty"`
	// QoR carries flattened quality-of-results metrics contributed by the
	// running tool (cryobench flattens its baseline here).
	QoR map[string]float64 `json:"qor,omitempty"`
	// Costs maps span name -> child-exclusive cost rollup (present when the
	// run captured cost attribution via -cost).
	Costs map[string]StageCost `json:"costs,omitempty"`
	// PeakRSSBytes is the process's peak resident set size at flush (0 when
	// the platform does not report it).
	PeakRSSBytes uint64 `json:"peak_rss_bytes,omitempty"`
	// GCPauseTotalSec is the cumulative stop-the-world GC pause time.
	GCPauseTotalSec float64 `json:"gc_pause_total_seconds,omitempty"`
	// Artifacts maps produced file path -> SHA-256, from the journal's
	// provenance events.
	Artifacts map[string]string `json:"artifacts,omitempty"`
}

// Time returns the record timestamp.
func (r *HistoryRecord) Time() time.Time { return time.Unix(0, r.TNs) }

// historyQoR stages QoR metrics for the history record written at flag
// flush; tools contribute via HistoryAddQoR before exiting.
var historyQoR struct {
	mu sync.Mutex
	m  map[string]float64
}

// HistoryAddQoR merges flattened QoR metrics into the history record the
// -history flag appends on exit.
func HistoryAddQoR(metrics map[string]float64) {
	if len(metrics) == 0 {
		return
	}
	historyQoR.mu.Lock()
	defer historyQoR.mu.Unlock()
	if historyQoR.m == nil {
		historyQoR.m = map[string]float64{}
	}
	for k, v := range metrics {
		historyQoR.m[k] = v
	}
}

// takeHistoryQoR drains the staged QoR metrics (nil when none). Draining
// keeps one run's QoR from leaking into the next record when a process
// flushes more than once (tests, long-lived tools).
func takeHistoryQoR() map[string]float64 {
	historyQoR.mu.Lock()
	defer historyQoR.mu.Unlock()
	out := historyQoR.m
	historyQoR.m = nil
	if len(out) == 0 {
		return nil
	}
	return out
}

// AppendHistory appends one record to the JSONL history store at path,
// creating the file (and its directory) on first use. Appends are one
// O_APPEND write of one line, so concurrent runs interleave whole records
// and a crashed run leaves at most one torn final line, which ReadHistory
// tolerates.
func AppendHistory(path string, rec *HistoryRecord) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("obs: history: %w", err)
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: history: encoding record: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: history: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: history: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: history: %w", cerr)
	}
	return nil
}

// ReadHistory decodes a JSONL history stream. Like the journal reader, a
// malformed final line (the torn write of a crashed process) is tolerated
// and dropped; malformed lines mid-stream are an error.
func ReadHistory(r io.Reader) ([]HistoryRecord, error) {
	return readJSONL[HistoryRecord](r, "history")
}

// ReadHistoryFile reads a history store from disk via ReadHistory.
func ReadHistoryFile(path string) ([]HistoryRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadHistory(f)
}

// readJSONL is the shared crash-tolerant JSONL decoder behind ReadJournal
// and ReadHistory: one JSON value per line, a malformed final line is
// dropped (torn write of a killed process), a malformed line followed by a
// well-formed one is an error.
func readJSONL[T any](r io.Reader, label string) ([]T, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	var out []T
	var pendingErr error
	pendingLine := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var v T
		if err := json.Unmarshal(line, &v); err != nil {
			// Only tolerable if no well-formed record follows.
			pendingErr, pendingLine = err, lineNo
			continue
		}
		if pendingErr != nil {
			return nil, fmt.Errorf("obs: %s line %d: %w", label, pendingLine, pendingErr)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", label, err)
	}
	return out, nil
}
