//go:build unix

package obs

import (
	"runtime"
	"syscall"
)

// processCPUSeconds returns the process's cumulative user+system CPU time,
// the denominator the cost report checks its attributed CPU against.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvSeconds(ru.Utime) + tvSeconds(ru.Stime)
}

func tvSeconds(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}

// peakRSSBytes returns the process's peak resident set size, or 0 when the
// platform does not report it. ru_maxrss is kilobytes on Linux/BSD but
// bytes on Darwin.
func peakRSSBytes() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	if ru.Maxrss <= 0 {
		return 0
	}
	if runtime.GOOS == "darwin" {
		return uint64(ru.Maxrss)
	}
	return uint64(ru.Maxrss) * 1024
}
