package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func freshMetrics(t *testing.T) *Registry {
	t.Helper()
	DisableMetrics()
	r := EnableMetrics()
	t.Cleanup(DisableMetrics)
	return r
}

func TestNilSafety(t *testing.T) {
	DisableMetrics()
	// Every handle obtained while disabled must be a usable no-op.
	C("x").Inc()
	C("x").Add(5)
	if got := C("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	G("y").Set(3)
	G("y").Add(1)
	if got := G("y").Value(); got != 0 {
		t.Fatalf("nil gauge value = %g, want 0", got)
	}
	H("z").Observe(1)
	if got := H("z").Count(); got != 0 {
		t.Fatalf("nil histogram count = %d, want 0", got)
	}
	var sb strings.Builder
	if err := Metrics().WriteText(&sb); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	freshMetrics(t)
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				C("conc.counter").Inc()
				G("conc.gauge").Add(1)
				H("conc.hist").Observe(float64(j%100 + 1))
				// Distinct names force concurrent get-or-create too.
				C("conc.mine." + string(rune('a'+i))).Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := C("conc.counter").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := G("conc.gauge").Value(); got != goroutines*perG {
		t.Errorf("gauge = %g, want %d", got, goroutines*perG)
	}
	if got := H("conc.hist").Count(); got != goroutines*perG {
		t.Errorf("hist count = %d, want %d", got, goroutines*perG)
	}
	for i := 0; i < goroutines; i++ {
		if got := C("conc.mine." + string(rune('a'+i))).Value(); got != perG {
			t.Errorf("per-goroutine counter %d = %d, want %d", i, got, perG)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	freshMetrics(t)
	h := H("q.hist")
	// 1..1000 uniformly: quantile q should be ~ 1000q within one bucket
	// (the log buckets have ~26% relative resolution).
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("min = %g", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("max = %g", got)
	}
	if got, want := h.Sum(), 500500.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 500}, {0.9, 900}, {0.99, 990}, {1, 1000},
	} {
		got := h.Quantile(tc.q)
		if tc.want >= 1 && (got < tc.want/1.3 || got > tc.want*1.3) {
			t.Errorf("quantile(%g) = %g, want within 30%% of %g", tc.q, got, tc.want)
		}
	}
	// Quantiles must be monotone in q.
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%g gives %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramTinyValues(t *testing.T) {
	freshMetrics(t)
	h := H("tiny.hist")
	// Picosecond-scale values, as produced by per-arc delay telemetry.
	for _, v := range []float64{1e-12, 2e-12, 4e-12, 8e-12} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got < 1e-12 || got > 8e-12 {
		t.Fatalf("p50 of ps-scale data = %g, want within observed range", got)
	}
	h.Observe(0) // nonpositive values must not panic and land in bucket 0
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d", got)
	}
}

func TestWriteText(t *testing.T) {
	freshMetrics(t)
	C("b.counter").Add(7)
	G("a.gauge").Set(2.5)
	H("c.hist").Observe(10)
	var sb strings.Builder
	if err := Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a.gauge", "b.counter", "c.hist", "7", "2.5", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: gauge line before counter line.
	if strings.Index(out, "a.gauge") > strings.Index(out, "b.counter") {
		t.Errorf("WriteText not sorted by name:\n%s", out)
	}
}
