package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// traceEvent is one Chrome trace_event "complete" event (ph = "X"),
// loadable in chrome://tracing and Perfetto.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds since trace epoch
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the span forest as Chrome trace_event JSON (an
// array of complete events). Spans that overlap in time — parallel
// characterization workers, say — are spread across synthetic thread lanes
// so the nesting renders correctly in the viewer.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var events []traceEvent
	nextTid := 0
	for _, root := range t.Roots() {
		nextTid++
		t.emit(root, nextTid, &nextTid, &events)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// emit appends the event for s on lane tid, then lays s's children out on
// lanes: children that fit after the previous sibling share the parent's
// lane; overlapping siblings open fresh lanes (first-fit interval
// scheduling), keeping every lane's events properly nested.
func (t *Tracer) emit(s *Span, tid int, nextTid *int, events *[]traceEvent) {
	s.mu.Lock()
	start := s.start
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	var args map[string]string
	if len(s.attrs) > 0 {
		args = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			args[a.Key] = a.Val
		}
	}
	s.mu.Unlock()

	*events = append(*events, traceEvent{
		Name: s.name,
		Ph:   "X",
		Ts:   float64(start.Sub(t.epoch)) / float64(time.Microsecond),
		Dur:  float64(dur) / float64(time.Microsecond),
		Pid:  1,
		Tid:  tid,
		Args: args,
	})

	children := s.Children()
	sort.Slice(children, func(i, j int) bool { return children[i].start.Before(children[j].start) })
	type lane struct {
		tid int
		end time.Time
	}
	lanes := []lane{{tid: tid}}
	for _, c := range children {
		cEnd := c.start.Add(c.Duration())
		placed := -1
		for i := range lanes {
			if !c.start.Before(lanes[i].end) {
				placed = i
				break
			}
		}
		if placed < 0 {
			*nextTid++
			lanes = append(lanes, lane{tid: *nextTid})
			placed = len(lanes) - 1
		}
		lanes[placed].end = cEnd
		t.emit(c, lanes[placed].tid, nextTid, events)
	}
}

// WriteSummary renders the span forest as an indented table aggregated by
// tree path: count, total, and mean wall time per span name at each
// nesting level.
func (t *Tracer) WriteSummary(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "(tracing disabled)")
		return err
	}
	type agg struct {
		path  string
		depth int
		count int
		total time.Duration
	}
	byPath := map[string]*agg{}
	var order []string
	var walk func(s *Span, prefix string, depth int)
	walk = func(s *Span, prefix string, depth int) {
		path := prefix + s.name
		a := byPath[path]
		if a == nil {
			a = &agg{path: path, depth: depth}
			byPath[path] = a
			order = append(order, path)
		}
		a.count++
		a.total += s.Duration()
		for _, c := range s.Children() {
			walk(c, path+" / ", depth+1)
		}
	}
	for _, r := range t.Roots() {
		walk(r, "", 0)
	}
	sort.Strings(order)
	if _, err := fmt.Fprintf(w, "%-56s %8s %12s %12s\n", "span", "count", "total", "mean"); err != nil {
		return err
	}
	for _, path := range order {
		a := byPath[path]
		name := path
		if i := strings.LastIndex(path, " / "); i >= 0 {
			name = path[i+3:]
		}
		mean := a.total / time.Duration(a.count)
		if _, err := fmt.Fprintf(w, "%-56s %8d %12s %12s\n",
			strings.Repeat("  ", a.depth)+name, a.count,
			a.total.Round(time.Microsecond), mean.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
