package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestHistoryAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench", "history.jsonl")
	recs := []*HistoryRecord{
		{
			TNs: 1000, Run: "r-aaa", Bin: "cryobench", Args: "-profile smoke",
			Metrics: &Snapshot{
				Counters: map[string]int64{"spice.newton.iterations": 104224},
				Gauges:   map[string]float64{"synth.map.area": 1294},
				Histograms: map[string]HistogramSnapshot{
					"charlib.cell.seconds": {Count: 2, Sum: 2, Min: 0.5, Max: 1.5},
				},
			},
			Stages:    map[string]float64{"synth.opt": 1.25},
			QoR:       map[string]float64{"qor.ctrl/pad@10K.area": 42.5},
			Artifacts: map[string]string{"bench/out.json": "deadbeef"},
		},
		{TNs: 2000, Run: "r-bbb", Bin: "cryochar"},
	}
	// AppendHistory must create the parent directory on first use and
	// append whole records thereafter.
	for _, r := range recs {
		if err := AppendHistory(path, r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	got, err := ReadHistoryFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[0].Run != "r-aaa" || got[1].Run != "r-bbb" {
		t.Errorf("run IDs: %q, %q", got[0].Run, got[1].Run)
	}
	if got[0].Metrics == nil || got[0].Metrics.Counters["spice.newton.iterations"] != 104224 {
		t.Errorf("metrics snapshot mangled: %+v", got[0].Metrics)
	}
	if got[0].Stages["synth.opt"] != 1.25 || got[0].QoR["qor.ctrl/pad@10K.area"] != 42.5 {
		t.Errorf("stages/qor mangled: %+v %+v", got[0].Stages, got[0].QoR)
	}
	if got[0].Artifacts["bench/out.json"] != "deadbeef" {
		t.Errorf("artifacts mangled: %+v", got[0].Artifacts)
	}
	if got[0].Time().UnixNano() != 1000 {
		t.Errorf("Time() = %d, want 1000", got[0].Time().UnixNano())
	}
}

// TestHistoryTornLastLine: a run killed mid-append leaves a torn final
// line, which the reader must drop silently — but garbage mid-stream is an
// error.
func TestHistoryTornLastLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := AppendHistory(path, &HistoryRecord{TNs: 1, Run: "r-1", Bin: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, &HistoryRecord{TNs: 2, Run: "r-2", Bin: "x"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t_ns":3,"run":"r-torn`)
	f.Close()
	got, err := ReadHistoryFile(path)
	if err != nil {
		t.Fatalf("torn last line should be tolerated: %v", err)
	}
	if len(got) != 2 || got[1].Run != "r-2" {
		t.Fatalf("got %d records, want the 2 intact ones", len(got))
	}

	// A garbage line with records after it is corruption mid-stream, not a
	// torn tail, and must be surfaced.
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\n")
	f.Close()
	if err := AppendHistory(path, &HistoryRecord{TNs: 4, Run: "r-4", Bin: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHistoryFile(path); err == nil {
		t.Fatal("mid-stream corruption should be an error")
	}
}

func TestHistoryQoRStaging(t *testing.T) {
	takeHistoryQoR() // drain any prior state
	HistoryAddQoR(nil)
	HistoryAddQoR(map[string]float64{"qor.a": 1})
	HistoryAddQoR(map[string]float64{"qor.b": 2, "qor.a": 3}) // later write wins
	m := takeHistoryQoR()
	if len(m) != 2 || m["qor.a"] != 3 || m["qor.b"] != 2 {
		t.Errorf("staged QoR = %+v", m)
	}
	if takeHistoryQoR() != nil {
		t.Error("take must drain the staging area")
	}
}
