package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func freshTracer(t *testing.T) *Tracer {
	t.Helper()
	DisableTracing()
	tr := EnableTracing()
	t.Cleanup(DisableTracing)
	return tr
}

func TestSpanTreeNesting(t *testing.T) {
	tr := freshTracer(t)
	ctx := context.Background()
	ctx, root := Start(ctx, "flow", Str("tool", "test"))
	cctx, char := Start(ctx, "characterize")
	_, cell := Start(cctx, "cell")
	cell.End()
	char.End()
	_, synth := Start(ctx, "synth")
	synth.SetAttr("nodes", 42)
	synth.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "flow" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "characterize" || kids[1].Name() != "synth" {
		t.Fatalf("flow children wrong: %d", len(kids))
	}
	grand := kids[0].Children()
	if len(grand) != 1 || grand[0].Name() != "cell" {
		t.Fatalf("characterize children wrong")
	}
	if d := roots[0].Duration(); d <= 0 {
		t.Fatalf("root duration = %v", d)
	}

	totals := tr.Totals()
	if totals["cell"].Count != 1 || totals["flow"].Count != 1 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestSpanDisabled(t *testing.T) {
	DisableTracing()
	ctx := context.Background()
	ctx2, s := Start(ctx, "nothing")
	if s != nil {
		t.Fatal("disabled Start returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled Start derived a new context")
	}
	s.End()           // must not panic
	s.SetAttr("k", 1) // must not panic
	if FromContext(ctx2) != nil {
		t.Fatal("disabled context carries a span")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := freshTracer(t)
	ctx, root := Start(context.Background(), "parallel")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := Start(ctx, "worker")
			time.Sleep(time.Millisecond)
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Roots()[0].Children()); got != 32 {
		t.Fatalf("children = %d, want 32", got)
	}
	if tr.Totals()["worker"].Count != 32 {
		t.Fatalf("totals wrong")
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := freshTracer(t)
	ctx, root := Start(context.Background(), "flow")
	// Two overlapping children (parallel workers) plus one nested child.
	c1ctx, c1 := Start(ctx, "worker")
	_, n := Start(c1ctx, "inner")
	time.Sleep(2 * time.Millisecond)
	n.End()
	_, c2 := Start(ctx, "worker")
	time.Sleep(time.Millisecond)
	c1.End()
	c2.End()
	root.End()

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("trace output is not valid trace_event JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	byName := map[string][]int{}
	for i, e := range events {
		if e.Ph != "X" {
			t.Errorf("event %d: ph = %q, want X", i, e.Ph)
		}
		if e.Dur < 0 || e.Ts < 0 {
			t.Errorf("event %d: negative ts/dur", i)
		}
		if e.Pid != 1 {
			t.Errorf("event %d: pid = %d", i, e.Pid)
		}
		byName[e.Name] = append(byName[e.Name], i)
	}
	if len(byName["worker"]) != 2 || len(byName["flow"]) != 1 || len(byName["inner"]) != 1 {
		t.Fatalf("event names wrong: %v", byName)
	}
	// Containment: every child's [ts, ts+dur] within the root's window.
	rootEv := events[byName["flow"][0]]
	const slack = 500.0 // microseconds of scheduling tolerance
	for _, idx := range append(byName["worker"], byName["inner"]...) {
		e := events[idx]
		if e.Ts+slack < rootEv.Ts || e.Ts+e.Dur > rootEv.Ts+rootEv.Dur+slack {
			t.Errorf("event %s not contained in root window", e.Name)
		}
	}
	// Overlapping siblings must land on different lanes.
	w0, w1 := events[byName["worker"][0]], events[byName["worker"][1]]
	overlap := w0.Ts < w1.Ts+w1.Dur && w1.Ts < w0.Ts+w0.Dur
	if overlap && w0.Tid == w1.Tid {
		t.Errorf("overlapping sibling spans share tid %d", w0.Tid)
	}
}

func TestWriteSummary(t *testing.T) {
	tr := freshTracer(t)
	ctx, root := Start(context.Background(), "flow")
	for i := 0; i < 3; i++ {
		_, s := Start(ctx, "stage")
		s.End()
	}
	root.End()
	var sb strings.Builder
	if err := tr.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "flow") || !strings.Contains(out, "stage") {
		t.Fatalf("summary missing spans:\n%s", out)
	}
	if !strings.Contains(out, "       3") {
		t.Fatalf("summary missing aggregated count:\n%s", out)
	}
}
