package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSpanExport hammers the tracer from many goroutines — each
// opening nested spans with attributes — while other goroutines export the
// forest as Chrome trace JSON and as the text summary mid-flight. Run under
// -race (the Makefile race target includes this package); afterwards every
// span must appear exactly once in the final export.
func TestConcurrentSpanExport(t *testing.T) {
	defer DisableTracing()
	tr := ResetTracing()

	const workers = 8
	const spansPerWorker = 50
	var wg sync.WaitGroup
	exportDone := make(chan struct{})

	// Exporters racing with span creation: correctness here is "no race,
	// no panic, valid JSON", not a particular span count.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-exportDone:
				return
			default:
			}
			var buf bytes.Buffer
			if err := tr.WriteChromeTrace(&buf); err != nil {
				t.Errorf("concurrent WriteChromeTrace: %v", err)
				return
			}
			var events []map[string]any
			if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
				t.Errorf("mid-flight trace is not valid JSON: %v", err)
				return
			}
			buf.Reset()
			if err := tr.WriteSummary(&buf); err != nil {
				t.Errorf("concurrent WriteSummary: %v", err)
				return
			}
			tr.Totals()
		}
	}()

	var spanWg sync.WaitGroup
	for w := 0; w < workers; w++ {
		spanWg.Add(1)
		go func(w int) {
			defer spanWg.Done()
			for i := 0; i < spansPerWorker; i++ {
				ctx, outer := Start(context.Background(), "worker.outer")
				outer.SetAttr("worker", w)
				_, inner := Start(ctx, "worker.inner", Int("i", i))
				inner.End()
				outer.End()
			}
		}(w)
	}
	spanWg.Wait()
	close(exportDone)
	wg.Wait()

	totals := tr.Totals()
	wantEach := workers * spansPerWorker
	if got := totals["worker.outer"].Count; got != wantEach {
		t.Errorf("worker.outer count = %d, want %d", got, wantEach)
	}
	if got := totals["worker.inner"].Count; got != wantEach {
		t.Errorf("worker.inner count = %d, want %d", got, wantEach)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("final WriteChromeTrace: %v", err)
	}
	var events []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("final trace JSON: %v", err)
	}
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Name]++
	}
	if counts["worker.outer"] != wantEach || counts["worker.inner"] != wantEach {
		t.Errorf("exported span counts = %v, want %d each", counts, wantEach)
	}

	buf.Reset()
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatalf("final WriteSummary: %v", err)
	}
	if !strings.Contains(buf.String(), "worker.inner") {
		t.Errorf("summary missing worker.inner:\n%s", buf.String())
	}
}

// TestDetach verifies that a detached context opens root spans rather than
// nesting under a stale parent.
func TestDetach(t *testing.T) {
	defer DisableTracing()
	tr := ResetTracing()
	ctx, parent := Start(context.Background(), "parent")
	_, child := Start(Detach(ctx), "detached")
	child.End()
	parent.End()
	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (parent + detached)", len(roots))
	}
	if len(roots[0].Children()) != 0 {
		t.Errorf("detached span still nested under parent")
	}
}
