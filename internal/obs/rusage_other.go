//go:build !unix

package obs

// Platforms without getrusage report no process CPU or peak RSS; cost
// reports degrade to wall/alloc/counter attribution and history records
// carry peak_rss_bytes=0.
func processCPUSeconds() float64 { return 0 }

func peakRSSBytes() uint64 { return 0 }
