package obs

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("spice.newton.iterations").Add(104224)
	r.Gauge("synth.map-area").Set(1294)
	h := r.Histogram("charlib.cell.seconds")
	h.Observe(0.5)
	h.Observe(1.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE spice_newton_iterations counter",
		"spice_newton_iterations 104224",
		"# TYPE synth_map_area gauge",
		"synth_map_area 1294",
		"# TYPE charlib_cell_seconds summary",
		"charlib_cell_seconds_count 2",
		"charlib_cell_seconds_sum 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `charlib_cell_seconds{quantile="0.5"}`) {
		t.Errorf("missing p50 quantile line:\n%s", out)
	}

	// Every non-comment line must match the exposition grammar.
	lineRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestWritePrometheusNativeHistogram pins the cumulative-bucket exposition:
// each histogram additionally exports a <name>_hist histogram family with
// the 200 internal log buckets collapsed to one per decade (20 finite le
// bounds + +Inf), emitted in full even when empty so scrapes are
// shape-stable.
func TestWritePrometheusNativeHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("charlib.cell.seconds")
	h.Observe(0.5)  // decade [0.1, 1)   -> counted under le="1"
	h.Observe(1.5)  // decade [1, 10)    -> le="10"
	h.Observe(3e-9) // decade [1e-9,1e-8)-> le="1e-08"

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()

	// The summary exposition at the original name must survive unchanged
	// next to the new family.
	if !strings.Contains(out, "# TYPE charlib_cell_seconds summary") {
		t.Errorf("summary family missing:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE charlib_cell_seconds_hist histogram",
		`charlib_cell_seconds_hist_bucket{le="1e-14"} 0`,
		`charlib_cell_seconds_hist_bucket{le="1e-08"} 1`,
		`charlib_cell_seconds_hist_bucket{le="1"} 2`,
		`charlib_cell_seconds_hist_bucket{le="10"} 3`,
		`charlib_cell_seconds_hist_bucket{le="100000"} 3`,
		`charlib_cell_seconds_hist_bucket{le="+Inf"} 3`,
		"charlib_cell_seconds_hist_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("native histogram missing %q:\n%s", want, out)
		}
	}
	// Exactly 21 bucket lines: 20 decades + +Inf.
	if n := strings.Count(out, "charlib_cell_seconds_hist_bucket{"); n != 21 {
		t.Errorf("bucket lines = %d, want 21", n)
	}
	// Cumulative monotonicity across the le bounds.
	re := regexp.MustCompile(`charlib_cell_seconds_hist_bucket\{le="[^"]*"\} (\d+)`)
	last := -1
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		var v int
		fmt.Sscanf(m[1], "%d", &v)
		if v < last {
			t.Fatalf("buckets not cumulative:\n%s", out)
		}
		last = v
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "#") {
		t.Errorf("nil registry output should be a comment, got %q", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"spice.newton.iterations": "spice_newton_iterations",
		"a-b c":                   "a_b_c",
		"9lives":                  "_9lives",
		"ok_name:x":               "ok_name:x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestObsMuxEndpoints exercises the -obs-addr handler without binding a
// real port: /metrics must serve Prometheus text, /spans the live span
// summary, /snapshot.json a parseable registry snapshot.
func TestObsMuxEndpoints(t *testing.T) {
	defer DisableMetrics()
	defer DisableTracing()
	EnableMetrics()
	EnableTracing()
	C("mux.test.counter").Add(11)
	_, s := Start(context.Background(), "mux.test.span")
	s.End()

	mux := obsMux()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/metrics")
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q, want prometheus 0.0.4", ct)
	}
	if !strings.Contains(rec.Body.String(), "mux_test_counter 11") {
		t.Errorf("/metrics missing counter:\n%s", rec.Body.String())
	}

	if body := get("/spans").Body.String(); !strings.Contains(body, "mux.test.span") {
		t.Errorf("/spans missing span:\n%s", body)
	}

	snap, err := ReadSnapshot(get("/snapshot.json").Body)
	if err != nil {
		t.Fatalf("/snapshot.json did not parse: %v", err)
	}
	if snap.Counters["mux.test.counter"] != 11 {
		t.Errorf("snapshot counter = %d, want 11", snap.Counters["mux.test.counter"])
	}

	if code := get("/nope").Code; code != 404 {
		t.Errorf("unknown path returned %d, want 404", code)
	}
}
