package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically updated int64 metric. The zero receiver (nil)
// is a valid no-op, so call sites never need to check whether metrics are
// enabled.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64 metric (nil-safe like Counter).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates positive float64 observations into logarithmic
// buckets (about 26% relative resolution over 1e-15..1e5), tracking exact
// count, sum, min, and max. All methods are lock-free and nil-safe.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // math.Float64bits, +Inf when empty
	maxBits atomic.Uint64 // math.Float64bits, -Inf when empty
	buckets [histBuckets]atomic.Int64
}

const (
	// Bucket i covers [histLo * histBase^i, histLo * histBase^(i+1)).
	histBuckets = 200
	histLoExp   = -150 // 10*log10(lower bound): 1e-15
)

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

func histIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	i := int(math.Floor(10*math.Log10(v))) - histLoExp
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bounds of bucket i.
func histBounds(i int) (lo, hi float64) {
	lo = math.Pow(10, float64(i+histLoExp)/10)
	hi = math.Pow(10, float64(i+1+histLoExp)/10)
	return lo, hi
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.buckets[histIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest observation (+Inf when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil {
		return math.Inf(1)
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation (-Inf when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil {
		return math.Inf(-1)
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-th quantile (q in [0,1]) by rank interpolation
// inside the logarithmic buckets; exact at the extremes (min/max). The
// estimate is within one bucket (≈26% relative) of the true value.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := q * float64(n)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := histBounds(i)
			if lo < h.Min() {
				lo = h.Min()
			}
			if hi > h.Max() {
				hi = h.Max()
			}
			frac := (rank - cum) / c
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.Max()
}

// Registry is a concurrent name -> metric table. Get-or-create lookups are
// lock-free on the hit path (sync.Map), so hot loops may call obs.C(...)
// directly, though hoisting the handle out of the loop is cheaper still.
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (which is itself a valid no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use (nil-safe).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it on first use
// (nil-safe).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, newHistogram())
	return v.(*Histogram)
}

// CounterValues snapshots all counters by name.
func (r *Registry) CounterValues() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	r.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Counter).Value()
		return true
	})
	return out
}

// GaugeValues snapshots all gauges by name.
func (r *Registry) GaugeValues() map[string]float64 {
	out := map[string]float64{}
	if r == nil {
		return out
	}
	r.gauges.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Gauge).Value()
		return true
	})
	return out
}

// WriteText renders every metric, sorted by name, one per line:
//
//	counter spice.newton.iterations 104224
//	gauge   synth.map.area 1294
//	hist    charlib.cell.seconds count=200 sum=81.2 min=... p50=... p90=... max=...
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "(metrics disabled)")
		return err
	}
	type line struct{ name, text string }
	var lines []line
	r.counters.Range(func(k, v any) bool {
		name := k.(string)
		lines = append(lines, line{name, fmt.Sprintf("counter %-44s %d", name, v.(*Counter).Value())})
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		name := k.(string)
		lines = append(lines, line{name, fmt.Sprintf("gauge   %-44s %g", name, v.(*Gauge).Value())})
		return true
	})
	r.hists.Range(func(k, v any) bool {
		name := k.(string)
		h := v.(*Histogram)
		if h.Count() == 0 {
			lines = append(lines, line{name, fmt.Sprintf("hist    %-44s count=0", name)})
			return true
		}
		lines = append(lines, line{name, fmt.Sprintf(
			"hist    %-44s count=%d sum=%.6g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
			name, h.Count(), h.Sum(), h.Min(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())})
		return true
	})
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l.text); err != nil {
			return err
		}
	}
	return nil
}
