package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWatchdogStallFiresOnce injects a stall by letting a task go silent
// past the deadline and verifies exactly one post-mortem is captured per
// silence episode, with the goroutine dump and a typed journal event.
func TestWatchdogStallFiresOnce(t *testing.T) {
	DisableProgress()
	StopStallWatchdog()
	defer StopStallWatchdog()
	defer DisableProgress()

	var buf bytes.Buffer
	prev := SetJournal(NewJournal(&buf, "r-stall"))
	defer func() { SetJournal(prev).Close() }()

	var mu sync.Mutex
	var reports []*StallReport
	fired := make(chan struct{}, 16)
	StartStallWatchdog(WatchdogConfig{
		Deadline: 30 * time.Millisecond,
		OnStall: func(r *StallReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
			fired <- struct{}{}
		},
	})
	if !ProgressEnabled() {
		t.Fatal("watchdog must enable progress tracking")
	}

	task := Progress("wedged.stage", 100)
	task.Add(42)

	// Silence: the watchdog scans at deadline/4, so the stall must be seen
	// well within a second.
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("stall never fired")
	}
	// Stay silent across several more scan ticks: the episode must not
	// re-fire.
	time.Sleep(150 * time.Millisecond)
	mu.Lock()
	n := len(reports)
	rep := reports[0]
	mu.Unlock()
	if n != 1 {
		t.Fatalf("stall fired %d times for one episode, want exactly 1", n)
	}
	if rep.Task != "wedged.stage" || rep.Done != 42 || rep.Total != 100 {
		t.Errorf("report identity: %+v", rep)
	}
	if rep.SilentSec <= 0 || rep.DeadlineSec != 0.03 {
		t.Errorf("report timing: silent=%g deadline=%g", rep.SilentSec, rep.DeadlineSec)
	}
	if !strings.Contains(rep.Goroutines, "goroutine") {
		t.Errorf("goroutine dump missing: %.80q", rep.Goroutines)
	}

	// Progress resumes: the episode re-arms and a second silence fires again.
	task.Add(1)
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed stall never fired")
	}

	// The journal carries typed stall events with the report as detail.
	StopStallWatchdog()
	J().Sync()
	evs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	stalls := 0
	for _, e := range evs {
		if e.Kind != KindStall {
			continue
		}
		stalls++
		if e.Stage != "wedged.stage" || e.Attrs["task"] != "wedged.stage" {
			t.Errorf("stall event identity: %+v", e)
		}
		var det StallReport
		if err := json.Unmarshal(e.Detail, &det); err != nil {
			t.Fatalf("stall detail: %v", err)
		}
		if det.Task != "wedged.stage" || !strings.Contains(det.Goroutines, "goroutine") {
			t.Errorf("stall detail mangled: task=%q", det.Task)
		}
	}
	if stalls < 2 {
		t.Errorf("journal has %d stall events, want >= 2 (one per episode)", stalls)
	}
}

// TestWatchdogIgnoresFinishedTasks: a finished task going "silent" is just
// done, not stalled.
func TestWatchdogIgnoresFinishedTasks(t *testing.T) {
	DisableProgress()
	StopStallWatchdog()
	defer StopStallWatchdog()
	defer DisableProgress()

	var mu sync.Mutex
	count := 0
	StartStallWatchdog(WatchdogConfig{
		Deadline: 20 * time.Millisecond,
		OnStall: func(*StallReport) {
			mu.Lock()
			count++
			mu.Unlock()
		},
	})
	task := Progress("done.stage", 5)
	task.Add(5)
	task.Finish()
	time.Sleep(120 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 0 {
		t.Errorf("finished task fired %d stalls, want 0", count)
	}
}

func TestActiveStack(t *testing.T) {
	DisableTracing()
	EnableTracing()
	defer DisableTracing()
	tr := Tracing()
	if got := tr.ActiveStack(); got != nil {
		t.Errorf("empty tracer stack = %v, want nil", got)
	}
	ctxRoot, _ := Start(context.Background(), "flow")
	time.Sleep(time.Millisecond)
	ctxMid, mid := Start(ctxRoot, "charlib.library")
	time.Sleep(time.Millisecond)
	_, leaf := Start(ctxMid, "charlib.cell")
	time.Sleep(time.Millisecond)
	_, sib := Start(ctxRoot, "other")
	sib.End()
	got := tr.ActiveStack()
	want := []string{"flow", "charlib.library", "charlib.cell"}
	if len(got) != len(want) {
		t.Fatalf("ActiveStack = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveStack = %v, want %v", got, want)
		}
	}
	leaf.End()
	mid.End()
	got = tr.ActiveStack()
	if len(got) != 1 || got[0] != "flow" {
		t.Errorf("after ends, ActiveStack = %v, want [flow]", got)
	}
	var nilT *Tracer
	if nilT.ActiveStack() != nil {
		t.Error("nil tracer ActiveStack should be nil")
	}
}
