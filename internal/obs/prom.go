package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// promName maps a dot-separated metric name onto the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and every other illegal rune become
// underscores, and a leading digit gets a guard underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promHistDecades collapses the 200 internal log buckets (10 per decade
// over 1e-15..1e5) to one Prometheus bucket per decade: 20 finite le
// bounds (1e-14 .. 1e5) plus +Inf — a scrape-friendly ~21 series instead
// of 200.
const promHistDecades = histBuckets / 10

// promHistLe returns the upper bound of decade d as its Prometheus le
// label value.
func promHistLe(d int) string {
	return fmt.Sprintf("%g", math.Pow(10, float64(histLoExp/10+d+1)))
}

// writePromHistogram renders h as a native Prometheus histogram family
// named <name>_hist: cumulative decade buckets, _sum, and _count. The full
// bound set is emitted even when empty so the exposition shape (and the
// golden test pinning it) is stable across runs.
func writePromHistogram(b *strings.Builder, name string, h *Histogram) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for d := 0; d < promHistDecades; d++ {
		for i := 10 * d; i < 10*(d+1); i++ {
			cum += h.buckets[i].Load()
		}
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, promHistLe(d), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(b, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.Count())
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name. Counters and gauges map directly.
// Histograms are exported twice: as summaries (p50/p90/p99 quantiles plus
// _sum and _count) at their own name — the original exposition, kept for
// dashboards already scraping it — and as a native cumulative-bucket
// histogram family at <name>_hist, with the 200 internal log buckets
// collapsed to one per decade so aggregation (histogram_quantile, heatmaps)
// works server-side. A nil registry writes only a comment, so the /metrics
// endpoint stays well-formed before metrics are enabled.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# metrics disabled")
		return err
	}
	var blocks []struct{ name, text string }
	add := func(name, text string) {
		blocks = append(blocks, struct{ name, text string }{name, text})
	}
	r.counters.Range(func(k, v any) bool {
		name := promName(k.(string))
		add(name, fmt.Sprintf("# TYPE %s counter\n%s %d\n", name, name, v.(*Counter).Value()))
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		name := promName(k.(string))
		add(name, fmt.Sprintf("# TYPE %s gauge\n%s %g\n", name, name, v.(*Gauge).Value()))
		return true
	})
	r.hists.Range(func(k, v any) bool {
		name := promName(k.(string))
		h := v.(*Histogram)
		var b strings.Builder
		fmt.Fprintf(&b, "# TYPE %s summary\n", name)
		if h.Count() > 0 {
			for _, q := range []float64{0.5, 0.9, 0.99} {
				fmt.Fprintf(&b, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), h.Quantile(q))
			}
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.Count())
		add(name, b.String())
		var hb strings.Builder
		writePromHistogram(&hb, name+"_hist", h)
		add(name+"_hist", hb.String())
		return true
	})
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].name < blocks[j].name })
	for _, bl := range blocks {
		if _, err := io.WriteString(w, bl.text); err != nil {
			return err
		}
	}
	return nil
}
