package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName maps a dot-separated metric name onto the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and every other illegal rune become
// underscores, and a leading digit gets a guard underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name. Counters and gauges map directly;
// histograms are exported as summaries (p50/p90/p99 quantiles plus _sum and
// _count), which matches what the log-bucketed Histogram can answer
// accurately. A nil registry writes only a comment, so the /metrics
// endpoint stays well-formed before metrics are enabled.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# metrics disabled")
		return err
	}
	var blocks []struct{ name, text string }
	add := func(name, text string) {
		blocks = append(blocks, struct{ name, text string }{name, text})
	}
	r.counters.Range(func(k, v any) bool {
		name := promName(k.(string))
		add(name, fmt.Sprintf("# TYPE %s counter\n%s %d\n", name, name, v.(*Counter).Value()))
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		name := promName(k.(string))
		add(name, fmt.Sprintf("# TYPE %s gauge\n%s %g\n", name, name, v.(*Gauge).Value()))
		return true
	})
	r.hists.Range(func(k, v any) bool {
		name := promName(k.(string))
		h := v.(*Histogram)
		var b strings.Builder
		fmt.Fprintf(&b, "# TYPE %s summary\n", name)
		if h.Count() > 0 {
			for _, q := range []float64{0.5, 0.9, 0.99} {
				fmt.Fprintf(&b, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), h.Quantile(q))
			}
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.Count())
		add(name, b.String())
		return true
	})
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].name < blocks[j].name })
	for _, bl := range blocks {
		if _, err := io.WriteString(w, bl.text); err != nil {
			return err
		}
	}
	return nil
}
