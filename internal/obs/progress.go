package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// progressNow is the progress clock, swappable by tests so rate/ETA math
// and the /progress golden output are deterministic.
var progressNow = time.Now

// Task tracks one stage's work units: how much is planned, how much is
// done, and — because every update stamps a wall-clock heartbeat — whether
// the stage is still alive. A nil *Task is a valid no-op (what Progress
// hands out while progress tracking is disabled), so instrumentation sites
// never guard.
//
// Updates are lock-free atomics; a Task may be fed from many goroutines
// (charlib feeds one task from every worker in the pool).
type Task struct {
	name    string
	startNs int64

	total    atomic.Int64
	done     atomic.Int64
	lastNs   atomic.Int64 // heartbeat: unix nanos of the latest update
	finished atomic.Bool

	// stallFired latches after the watchdog captured a post-mortem for the
	// current silence episode, so one stall produces exactly one event. Any
	// subsequent progress update re-arms it.
	stallFired atomic.Bool
}

// Name returns the task name ("" for nil).
func (t *Task) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Add records n finished work units and stamps the liveness heartbeat.
func (t *Task) Add(n int64) {
	if t == nil {
		return
	}
	t.done.Add(n)
	t.lastNs.Store(progressNow().UnixNano())
	if t.stallFired.Load() {
		t.stallFired.Store(false) // progress resumed; re-arm the watchdog
	}
}

// Inc records one finished work unit.
func (t *Task) Inc() { t.Add(1) }

// AddTotal grows the planned work count — stages that discover work
// incrementally (charlib arcs are planned per cell) register totals as
// they learn them.
func (t *Task) AddTotal(n int64) {
	if t == nil {
		return
	}
	t.total.Add(n)
	t.lastNs.Store(progressNow().UnixNano())
}

// Done returns the finished work count (0 for nil).
func (t *Task) Done() int64 {
	if t == nil {
		return 0
	}
	return t.done.Load()
}

// Total returns the planned work count (0 for nil; 0 also means "unknown",
// in which case no percentage or ETA is reported).
func (t *Task) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Finish marks the task complete. The watchdog stops monitoring it and the
// periodic reporter prints its final line. Re-registering a finished name
// via Progress starts a fresh episode.
func (t *Task) Finish() {
	if t == nil {
		return
	}
	t.lastNs.Store(progressNow().UnixNano())
	t.finished.Store(true)
}

// Finished reports whether Finish was called (false for nil).
func (t *Task) Finished() bool {
	if t == nil {
		return false
	}
	return t.finished.Load()
}

// ProgressRegistry is the table of live tasks. Registration keeps order,
// so /progress and the periodic report lines render stages in the order
// the flow reached them.
type ProgressRegistry struct {
	mu     sync.Mutex
	tasks  []*Task
	byName map[string]*Task
}

// NewProgressRegistry returns an empty progress registry.
func NewProgressRegistry() *ProgressRegistry {
	return &ProgressRegistry{byName: map[string]*Task{}}
}

var globalProgress atomic.Pointer[ProgressRegistry]

// EnableProgress installs a process-global progress registry (keeping the
// current one if already enabled) and returns it.
func EnableProgress() *ProgressRegistry {
	if p := globalProgress.Load(); p != nil {
		return p
	}
	p := NewProgressRegistry()
	if !globalProgress.CompareAndSwap(nil, p) {
		return globalProgress.Load()
	}
	return p
}

// DisableProgress removes the global progress registry. Task handles
// already held keep accepting updates but are no longer exported.
func DisableProgress() { globalProgress.Store(nil) }

// ProgressEnabled reports whether a global progress registry is installed.
func ProgressEnabled() bool { return globalProgress.Load() != nil }

// ProgressTable returns the global progress registry, or nil when progress
// tracking is disabled.
func ProgressTable() *ProgressRegistry { return globalProgress.Load() }

// Progress registers (or re-opens) the named task with total planned work
// units and returns it, or nil — a valid no-op — when progress tracking is
// disabled. Registering an existing live task adds total to its plan
// (incremental discovery from concurrent workers); registering a finished
// task resets it for a fresh episode (cryochar -compare characterizes two
// corners through the same task names).
func Progress(name string, total int64) *Task {
	return globalProgress.Load().Task(name, total)
}

// Task is the registry-level Progress (nil-safe).
func (p *ProgressRegistry) Task(name string, total int64) *Task {
	if p == nil {
		return nil
	}
	now := progressNow().UnixNano()
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.byName[name]; ok {
		if t.finished.Load() {
			t.startNs = now
			t.total.Store(total)
			t.done.Store(0)
			t.lastNs.Store(now)
			t.stallFired.Store(false)
			t.finished.Store(false)
		} else if total != 0 {
			t.total.Add(total)
			t.lastNs.Store(now)
		}
		return t
	}
	t := &Task{name: name, startNs: now}
	t.total.Store(total)
	t.lastNs.Store(now)
	p.byName[name] = t
	p.tasks = append(p.tasks, t)
	return t
}

// Tasks returns a snapshot of the registered tasks in registration order.
func (p *ProgressRegistry) Tasks() []*Task {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Task(nil), p.tasks...)
}

// TaskSnapshot is the exported point-in-time state of one task: the
// /progress payload, the periodic report line, and the journal progress
// event all derive from it.
type TaskSnapshot struct {
	Name       string  `json:"name"`
	Done       int64   `json:"done"`
	Total      int64   `json:"total,omitempty"`
	Percent    float64 `json:"percent,omitempty"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	ETASec     float64 `json:"eta_seconds,omitempty"`
	ElapsedSec float64 `json:"elapsed_seconds"`
	SilentSec  float64 `json:"silent_seconds"`
	Finished   bool    `json:"finished,omitempty"`
}

// Line renders the snapshot as the one-line human report the periodic
// reporter prints, e.g.
// "charlib.arcs 42/200 (21.0%) 3.1/s eta 51s" or, for tasks with an
// unknown total, "cec.sweep 1523 done 80.2/s".
func (s *TaskSnapshot) Line() string {
	var b strings.Builder
	b.WriteString(s.Name)
	if s.Total > 0 {
		fmt.Fprintf(&b, " %d/%d (%.1f%%)", s.Done, s.Total, s.Percent)
	} else {
		fmt.Fprintf(&b, " %d done", s.Done)
	}
	if s.RatePerSec > 0 {
		fmt.Fprintf(&b, " %.1f/s", s.RatePerSec)
	}
	switch {
	case s.Finished:
		fmt.Fprintf(&b, " finished in %.1fs", s.ElapsedSec)
	case s.ETASec > 0:
		fmt.Fprintf(&b, " eta %.0fs", s.ETASec)
	}
	return b.String()
}

// snapshotAt digests the task at the given instant.
func (t *Task) snapshotAt(now time.Time) TaskSnapshot {
	s := TaskSnapshot{
		Name:     t.name,
		Done:     t.done.Load(),
		Total:    t.total.Load(),
		Finished: t.finished.Load(),
	}
	s.ElapsedSec = round6(float64(now.UnixNano()-t.startNs) / 1e9)
	s.SilentSec = round6(float64(now.UnixNano()-t.lastNs.Load()) / 1e9)
	if s.ElapsedSec < 0 {
		s.ElapsedSec = 0
	}
	if s.SilentSec < 0 {
		s.SilentSec = 0
	}
	if s.Total > 0 {
		s.Percent = round6(100 * float64(s.Done) / float64(s.Total))
	}
	if s.Done > 0 && s.ElapsedSec > 0 {
		s.RatePerSec = round6(float64(s.Done) / s.ElapsedSec)
		if s.Total > s.Done && !s.Finished {
			s.ETASec = round6(float64(s.Total-s.Done) / s.RatePerSec)
		}
	}
	return s
}

// round6 keeps the JSON payloads short (microsecond-ish resolution is
// plenty for human progress).
func round6(v float64) float64 {
	return float64(int64(v*1e6+0.5)) / 1e6
}

// Snapshot digests every task in registration order.
func (p *ProgressRegistry) Snapshot() []TaskSnapshot {
	now := progressNow()
	tasks := p.Tasks()
	out := make([]TaskSnapshot, 0, len(tasks))
	for _, t := range tasks {
		out = append(out, t.snapshotAt(now))
	}
	return out
}

// progressPayload is the /progress JSON shape.
type progressPayload struct {
	Enabled bool           `json:"enabled"`
	Tasks   []TaskSnapshot `json:"tasks"`
}

// WriteProgressJSON renders the global progress state as indented JSON —
// the /progress endpoint body. Disabled progress yields
// {"enabled": false, "tasks": []} so pollers need no special case.
func WriteProgressJSON(w io.Writer) error {
	p := globalProgress.Load()
	payload := progressPayload{Enabled: p != nil, Tasks: []TaskSnapshot{}}
	if p != nil {
		payload.Tasks = p.Snapshot()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}
