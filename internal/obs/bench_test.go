package obs

import (
	"context"
	"testing"
)

// BenchmarkDisabledSpan proves the disabled-tracing fast path is
// allocation-free: instrumentation left in hot paths costs one atomic load.
func BenchmarkDisabledSpan(b *testing.B) {
	DisableTracing()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx2, s := Start(ctx, "bench.disabled")
		s.SetAttr("k", 1)
		s.End()
		_ = ctx2
	}
}

// BenchmarkDisabledCounter measures the disabled-metrics fast path.
func BenchmarkDisabledCounter(b *testing.B) {
	DisableMetrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		C("bench.counter").Add(1)
	}
}

// BenchmarkDisabledJournal proves the disabled-journal fast path is
// allocation-free: one atomic pointer load plus a nil check.
func BenchmarkDisabledJournal(b *testing.B) {
	DisableJournal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		J().Event("bench.kind", "bench.stage", "msg", nil)
	}
}

// BenchmarkDisabledCost proves cost attribution adds nothing to the
// disabled span path: with cost (and tracing) off, Start/End never snapshot
// boundaries or touch goroutine labels, and CostEnabled is one atomic load.
func BenchmarkDisabledCost(b *testing.B) {
	DisableCost()
	DisableTracing()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if CostEnabled() {
			b.Fatal("cost must be disabled")
		}
		_, s := Start(ctx, "bench.cost")
		s.End()
	}
}

// BenchmarkDisabledProgress proves progress instrumentation in inner loops
// (gsim vector blocks, cec sweep nodes) is allocation-free when tracking is
// off: Progress returns nil and every method is a nil-receiver no-op.
func BenchmarkDisabledProgress(b *testing.B) {
	DisableProgress()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := Progress("bench.task", 10)
		task.Inc()
		task.Add(1)
		task.Finish()
	}
}

// BenchmarkEnabledProgress measures the tracked hot path (lookup + atomic
// adds) for comparison.
func BenchmarkEnabledProgress(b *testing.B) {
	DisableProgress()
	EnableProgress()
	defer DisableProgress()
	task := Progress("bench.task", int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.Inc()
	}
}

// BenchmarkEnabledCounter measures the enabled hot path (lookup + atomic
// add) for comparison.
func BenchmarkEnabledCounter(b *testing.B) {
	DisableMetrics()
	EnableMetrics()
	defer DisableMetrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		C("bench.counter").Add(1)
	}
}

// BenchmarkEnabledSpan measures span creation cost with tracing on.
func BenchmarkEnabledSpan(b *testing.B) {
	DisableTracing()
	EnableTracing()
	defer DisableTracing()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "bench.enabled")
		s.End()
	}
}
