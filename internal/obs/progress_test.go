package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixProgressClock pins the progress clock to a settable instant and
// restores time.Now on cleanup.
func fixProgressClock(t *testing.T, at *time.Time) {
	t.Helper()
	progressNow = func() time.Time { return *at }
	t.Cleanup(func() { progressNow = time.Now })
}

func TestProgressDisabledIsNoop(t *testing.T) {
	DisableProgress()
	task := Progress("idle.task", 10)
	if task != nil {
		t.Fatalf("disabled Progress returned %v, want nil", task)
	}
	// Every method must be a safe no-op on nil.
	task.Add(3)
	task.Inc()
	task.AddTotal(5)
	task.Finish()
	if task.Done() != 0 || task.Total() != 0 || task.Finished() || task.Name() != "" {
		t.Errorf("nil task leaked state: done=%d total=%d", task.Done(), task.Total())
	}
	var buf bytes.Buffer
	if err := WriteProgressJSON(&buf); err != nil {
		t.Fatalf("WriteProgressJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"enabled": false`) {
		t.Errorf("disabled payload should say enabled:false:\n%s", buf.String())
	}
}

func TestProgressConcurrent(t *testing.T) {
	DisableProgress()
	EnableProgress()
	defer DisableProgress()
	task := Progress("conc.task", 0)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Total discovery and completion race from every worker, like
			// charlib's per-cell arc planning.
			task.AddTotal(per)
			for i := 0; i < per; i++ {
				task.Inc()
			}
		}()
	}
	wg.Wait()
	if got := task.Done(); got != workers*per {
		t.Errorf("done = %d, want %d", got, workers*per)
	}
	if got := task.Total(); got != workers*per {
		t.Errorf("total = %d, want %d", got, workers*per)
	}
}

func TestProgressSnapshotAndJSON(t *testing.T) {
	DisableProgress()
	EnableProgress()
	defer DisableProgress()
	start := time.Unix(1000, 0)
	now := start
	fixProgressClock(t, &now)

	task := Progress("char.grid", 200)
	now = start.Add(10 * time.Second)
	task.Add(50)

	now = start.Add(20 * time.Second)
	snap := ProgressTable().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d tasks, want 1", len(snap))
	}
	s := snap[0]
	if s.Name != "char.grid" || s.Done != 50 || s.Total != 200 {
		t.Fatalf("snapshot identity: %+v", s)
	}
	if s.Percent != 25 {
		t.Errorf("percent = %g, want 25", s.Percent)
	}
	if s.RatePerSec != 2.5 { // 50 units over 20 s
		t.Errorf("rate = %g, want 2.5", s.RatePerSec)
	}
	if s.ETASec != 60 { // 150 remaining at 2.5/s
		t.Errorf("eta = %g, want 60", s.ETASec)
	}
	if s.SilentSec != 10 {
		t.Errorf("silent = %g, want 10", s.SilentSec)
	}
	line := s.Line()
	for _, want := range []string{"char.grid", "50/200", "25.0%", "2.5/s", "eta 60s"} {
		if !strings.Contains(line, want) {
			t.Errorf("Line() = %q, missing %q", line, want)
		}
	}

	var buf bytes.Buffer
	if err := WriteProgressJSON(&buf); err != nil {
		t.Fatalf("WriteProgressJSON: %v", err)
	}
	want := `{
  "enabled": true,
  "tasks": [
    {
      "name": "char.grid",
      "done": 50,
      "total": 200,
      "percent": 25,
      "rate_per_sec": 2.5,
      "eta_seconds": 60,
      "elapsed_seconds": 20,
      "silent_seconds": 10
    }
  ]
}
`
	if buf.String() != want {
		t.Errorf("/progress JSON:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestProgressEpisodeReset(t *testing.T) {
	DisableProgress()
	EnableProgress()
	defer DisableProgress()
	t1 := Progress("corner", 10)
	t1.Add(10)
	t1.Finish()
	if !t1.Finished() {
		t.Fatal("task not finished")
	}
	// Re-registering a finished task (second corner of cryochar -compare)
	// starts a fresh episode on the same handle.
	t2 := Progress("corner", 7)
	if t2 != t1 {
		t.Fatalf("re-registration returned a different handle")
	}
	if t2.Finished() || t2.Done() != 0 || t2.Total() != 7 {
		t.Errorf("episode not reset: done=%d total=%d finished=%v", t2.Done(), t2.Total(), t2.Finished())
	}
	// Registering a live task with a nonzero total grows the plan.
	Progress("corner", 3)
	if t2.Total() != 10 {
		t.Errorf("live re-registration total = %d, want 10", t2.Total())
	}
}

func TestProgressUnknownTotalLine(t *testing.T) {
	DisableProgress()
	EnableProgress()
	defer DisableProgress()
	start := time.Unix(2000, 0)
	now := start
	fixProgressClock(t, &now)
	task := Progress("cec.nodes", 0)
	now = start.Add(2 * time.Second)
	task.Add(100)
	s := task.snapshotAt(now)
	line := s.Line()
	if !strings.Contains(line, "100 done") || strings.Contains(line, "%") {
		t.Errorf("unknown-total line = %q", line)
	}
	task.Finish()
	s = task.snapshotAt(now)
	if !strings.Contains(s.Line(), "finished in") {
		t.Errorf("finished line = %q", s.Line())
	}
}
