package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, "r-test")
	j.Event(KindRunStart, "", "cryochar -temp 4", map[string]string{"bin": "cryochar"})
	j.Warning("charlib.cell", "slow arc", map[string]string{"cell": "NAND2x1"})
	j.Failure("charlib.arc", "did not converge", map[string]string{
		"cell": "NAND2x1", "arc": "A->Y", "slew": "5e-12", "load": "4e-16", "temp_k": "4",
	}, map[string]any{"worst_node": "dut.__t1", "residual": 1.5e-9})
	j.StageEnd("charlib.library", 1.25)
	j.Event(KindRunEnd, "", "", nil)
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Run != "r-test" {
			t.Errorf("event %d run = %q", i, e.Run)
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d (monotonic)", i, e.Seq, i+1)
		}
		if e.TNs == 0 {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	fail := events[2]
	if fail.Kind != KindFailure || fail.Attrs["arc"] != "A->Y" {
		t.Errorf("failure event mangled: %+v", fail)
	}
	var detail struct {
		WorstNode string  `json:"worst_node"`
		Residual  float64 `json:"residual"`
	}
	if err := json.Unmarshal(fail.Detail, &detail); err != nil {
		t.Fatalf("detail: %v", err)
	}
	if detail.WorstNode != "dut.__t1" || detail.Residual != 1.5e-9 {
		t.Errorf("detail round-trip: %+v", detail)
	}
	if events[3].Attrs["seconds"] != "1.25" {
		t.Errorf("stage.end seconds = %q", events[3].Attrs["seconds"])
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Event("k", "s", "m", nil)
	j.Warning("s", "m", nil)
	j.Failure("s", "m", nil, nil)
	j.StageStart("s")
	j.StageEnd("s", 1)
	j.Artifact("s", "nope")
	if j.RunID() != "" {
		t.Error("nil RunID")
	}
	if err := j.Sync(); err != nil {
		t.Error(err)
	}
	if err := j.Close(); err != nil {
		t.Error(err)
	}
}

// TestJournalTruncatedTail proves a torn final line (crashed writer) is
// dropped without error, while mid-file corruption is reported.
func TestJournalTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, "r-torn")
	j.Event("a", "", "", nil)
	j.Event("b", "", "", nil)
	j.Close()
	full := buf.String()

	// Cut the stream mid-way through the last line.
	torn := full[:len(full)-10]
	events, err := ReadJournal(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(events) != 1 || events[0].Kind != "a" {
		t.Fatalf("got %d events (%v), want just the first", len(events), events)
	}

	// Corruption followed by a valid line is a real error.
	corrupt := "{\"seq\":1,\"run\":\"x\",\"kind\":\"a\"\nnot json at all\n" + full
	if _, err := ReadJournal(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-file corruption must be an error")
	}
}

func TestJournalFileAndArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	artifact := filepath.Join(dir, "out.lib")
	if err := os.WriteFile(artifact, []byte("library payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	defer DisableJournal()
	DisableJournal() // ensure no stale global
	j, err := EnableJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := SetJournal(j); got != j {
		t.Fatal("SetJournal did not return installed journal")
	}
	if !JournalEnabled() || J() != j {
		t.Fatal("global journal not installed")
	}
	if !strings.HasPrefix(j.RunID(), "r-") {
		t.Errorf("run id %q", j.RunID())
	}
	j.Artifact("test", artifact)
	j.Artifact("test", filepath.Join(dir, "missing"))
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want artifact + warning", len(events))
	}
	art := events[0]
	if art.Kind != KindArtifact || art.Attrs["bytes"] != "15" || len(art.Attrs["sha256"]) != 64 {
		t.Errorf("artifact event: %+v", art)
	}
	if events[1].Kind != KindWarning {
		t.Errorf("missing artifact should warn, got %+v", events[1])
	}
}

func TestJournalConcurrentSeq(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, "r-conc")
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Event("tick", "stage", "", nil)
			}
		}()
	}
	wg.Wait()
	j.Close()
	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != writers*per {
		t.Fatalf("got %d events, want %d", len(events), writers*per)
	}
	seen := make(map[uint64]bool, len(events))
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
