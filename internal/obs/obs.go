// Package obs is the flow-wide observability layer: cheap atomic metrics
// (counters, gauges, histograms) behind a process-global registry,
// hierarchical wall-time spans that nest into a flow tree and export as
// Chrome trace_event JSON, a leveled logger for library diagnostics, and an
// append-only JSONL run journal — the flight recorder that failure
// forensics (cmd/cryoobs) reads back.
//
// Everything is stdlib-only and off by default. When disabled, the hot-path
// entry points (obs.C(...).Add, obs.Start, obs.J().Event, logger calls
// below the level) reduce to an atomic pointer load plus a nil check — no
// allocation, no locking — so instrumentation can stay in the hot paths
// permanently. CLI binaries enable the layer through the -metrics / -trace
// / -pprof / -journal flags installed by InstallFlags.
//
// Metric names are dot-separated, lowest-level subsystem first
// (e.g. "spice.newton.iterations", "charlib.cache.hits"); span names follow
// the same scheme ("synth.c2rs", "charlib.cell"). See docs/OBSERVABILITY.md
// for the full taxonomy.
package obs

import "sync/atomic"

var (
	globalRegistry atomic.Pointer[Registry]
	globalTracer   atomic.Pointer[Tracer]
)

// EnableMetrics installs a process-global metrics registry (keeping the
// current one if already enabled) and returns it.
func EnableMetrics() *Registry {
	if r := globalRegistry.Load(); r != nil {
		return r
	}
	r := NewRegistry()
	if !globalRegistry.CompareAndSwap(nil, r) {
		return globalRegistry.Load()
	}
	return r
}

// DisableMetrics removes the global registry. Metric handles already held
// by callers keep accepting updates but are no longer exported.
func DisableMetrics() { globalRegistry.Store(nil) }

// Metrics returns the global registry, or nil when metrics are disabled.
func Metrics() *Registry { return globalRegistry.Load() }

// MetricsEnabled reports whether a global registry is installed. Hot paths
// that must compute something before recording (e.g. an AIG depth) should
// guard on this to keep the disabled path free.
func MetricsEnabled() bool { return globalRegistry.Load() != nil }

// C returns the named counter from the global registry, or nil when
// metrics are disabled. All Counter methods are nil-safe.
func C(name string) *Counter { return globalRegistry.Load().Counter(name) }

// G returns the named gauge (nil-safe) from the global registry.
func G(name string) *Gauge { return globalRegistry.Load().Gauge(name) }

// H returns the named histogram (nil-safe) from the global registry.
func H(name string) *Histogram { return globalRegistry.Load().Histogram(name) }

// EnableTracing installs a process-global span tracer (keeping the current
// one if already enabled) and returns it.
func EnableTracing() *Tracer {
	if t := globalTracer.Load(); t != nil {
		return t
	}
	t := NewTracer()
	if !globalTracer.CompareAndSwap(nil, t) {
		return globalTracer.Load()
	}
	return t
}

// DisableTracing removes the global tracer; subsequent Start calls become
// no-ops.
func DisableTracing() { globalTracer.Store(nil) }

// ResetTracing unconditionally installs a fresh tracer (unlike
// EnableTracing, which keeps an existing one) and returns it. Benchmark
// harnesses use it to collect a clean span forest per repetition.
func ResetTracing() *Tracer {
	t := NewTracer()
	globalTracer.Store(t)
	return t
}

// Tracing returns the global tracer, or nil when tracing is disabled.
func Tracing() *Tracer { return globalTracer.Load() }
