package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
)

// registerPprof mounts the net/http/pprof handlers on mux (shared by the
// -pprof listener and the -obs-addr endpoint).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// obsMux builds the -obs-addr handler: Prometheus metrics, the plain-text
// metric dump, a JSON registry snapshot, a live span summary, and pprof.
// Handlers read the global registry/tracer at request time, so they follow
// the run as it progresses.
func obsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		SampleRuntimeMetrics()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := Metrics().WritePrometheus(w); err != nil {
			Log().Errorf("obs: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		SampleRuntimeMetrics()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := Metrics().WriteText(w); err != nil {
			Log().Errorf("obs: /metrics.txt: %v", err)
		}
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		SampleRuntimeMetrics()
		w.Header().Set("Content-Type", "application/json")
		if err := Metrics().Snapshot().WriteJSON(w); err != nil {
			Log().Errorf("obs: /snapshot.json: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s\n", Uptime().Round(1e6))
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(BuildInfo()); err != nil {
			Log().Errorf("obs: /buildinfo: %v", err)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteProgressJSON(w); err != nil {
			Log().Errorf("obs: /progress: %v", err)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := Tracing().WriteSummary(w); err != nil {
			Log().Errorf("obs: /spans: %v", err)
		}
	})
	mux.HandleFunc("/costs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// CPU columns only firm up at flush (the profile cannot be parsed
		// mid-capture); the live payload carries wall/alloc/counter costs
		// with cpu_attributed=false until then.
		payload := struct {
			Enabled bool        `json:"enabled"`
			Report  *CostReport `json:"report,omitempty"`
		}{}
		if rep := BuildCostReport(true); rep != nil {
			payload.Enabled = true
			payload.Report = rep
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			Log().Errorf("obs: /costs: %v", err)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "cryo-EDA observability endpoint")
		fmt.Fprintln(w, "  /metrics        Prometheus text exposition")
		fmt.Fprintln(w, "  /metrics.txt    sorted plain-text metric dump")
		fmt.Fprintln(w, "  /snapshot.json  registry snapshot (obs.ReadSnapshot format)")
		fmt.Fprintln(w, "  /progress       live per-stage progress (done/total/rate/ETA, JSON)")
		fmt.Fprintln(w, "  /spans          live span-tree summary")
		fmt.Fprintln(w, "  /costs          span cost-attribution tree (JSON; CPU columns firm up at flush)")
		fmt.Fprintln(w, "  /healthz        liveness probe (ok + uptime)")
		fmt.Fprintln(w, "  /buildinfo      build provenance + enabled telemetry (JSON)")
		fmt.Fprintln(w, "  /debug/pprof/   net/http/pprof")
	})
	registerPprof(mux)
	return mux
}

// BuildInfoReport is the /buildinfo payload: enough provenance to tie a
// scraped metric stream back to the binary that produced it.
type BuildInfoReport struct {
	GoVersion   string  `json:"go_version"`
	Module      string  `json:"module,omitempty"`
	VCSRevision string  `json:"vcs_revision,omitempty"`
	VCSTime     string  `json:"vcs_time,omitempty"`
	VCSModified bool    `json:"vcs_modified,omitempty"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	UptimeSec   float64 `json:"uptime_seconds"`
	Telemetry   struct {
		Metrics bool `json:"metrics"`
		Tracing bool `json:"tracing"`
		Journal bool `json:"journal"`
	} `json:"telemetry"`
}

// BuildInfo assembles the build provenance report from
// debug.ReadBuildInfo and the current telemetry state.
func BuildInfo() *BuildInfoReport {
	r := &BuildInfoReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		UptimeSec: Uptime().Seconds(),
	}
	r.Telemetry.Metrics = MetricsEnabled()
	r.Telemetry.Tracing = Tracing() != nil
	r.Telemetry.Journal = JournalEnabled()
	if bi, ok := debug.ReadBuildInfo(); ok {
		r.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				r.VCSRevision = s.Value
			case "vcs.time":
				r.VCSTime = s.Value
			case "vcs.modified":
				r.VCSModified = s.Value == "true"
			}
		}
	}
	return r
}

// serveObs enables metrics, tracing, and progress (the endpoint is useless
// without them) and serves the observability mux on addr in the background.
func serveObs(addr string) error {
	EnableMetrics()
	EnableTracing()
	EnableProgress()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: exposition listen on %s: %w", addr, err)
	}
	Log().Infof("obs: metrics exposition on http://%s/metrics", ln.Addr())
	go func() {
		if err := http.Serve(ln, obsMux()); err != nil {
			Log().Errorf("obs: exposition server: %v", err)
		}
	}()
	return nil
}
