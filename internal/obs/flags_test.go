package obs

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestFlagSurface pins the shared observability flag surface. Every flow
// binary gets exactly this set from one InstallFlags call; a flag added
// here without updating the docs/README table (or added in one binary by
// hand) should fail loudly.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("pin", flag.ContinueOnError)
	InstallFlags(fs)
	var got []string
	fs.VisitAll(func(f *flag.Flag) { got = append(got, f.Name) })
	sort.Strings(got)
	want := []string{
		"cost", "history", "journal", "loglevel", "metrics", "obs-addr",
		"pprof", "progress", "stall", "stall-abort", "trace",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("obs flag surface drifted:\n got %v\nwant %v", got, want)
	}
}

// TestFlagsProgressLifecycle drives Activate/Flush with -progress and
// -history set: progress tracking comes on, the reporter emits final
// per-task lines, and the flush appends exactly one history record carrying
// the run's tasks' metrics, stages, and staged QoR.
func TestFlagsProgressLifecycle(t *testing.T) {
	DisableProgress()
	DisableMetrics()
	DisableTracing()
	StopStallWatchdog()
	defer func() {
		DisableProgress()
		DisableMetrics()
		DisableTracing()
	}()

	dir := t.TempDir()
	histPath := filepath.Join(dir, "history.jsonl")
	f := &Flags{
		MetricsPath:   filepath.Join(dir, "metrics.txt"),
		ProgressEvery: time.Hour, // reporter only fires its final flush pass
		HistoryPath:   histPath,
	}

	// Silence the reporter's stderr lines for the test.
	oldStderr := os.Stderr
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stderr = devnull
	defer func() { os.Stderr = oldStderr; devnull.Close() }()

	flush, err := f.Activate()
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	if !ProgressEnabled() {
		t.Fatal("-progress must enable progress tracking")
	}
	task := Progress("flags.test", 4)
	task.Add(4)
	task.Finish()
	C("flags.test.counter").Add(7)
	HistoryAddQoR(map[string]float64{"qor.x": 1.5})

	flush()
	flush() // double flush must not append a second record

	recs, err := ReadHistoryFile(histPath)
	if err != nil {
		t.Fatalf("history: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("history has %d records after double flush, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Run == "" || rec.Bin == "" || rec.TNs == 0 {
		t.Errorf("record provenance incomplete: %+v", rec)
	}
	if rec.Metrics == nil || rec.Metrics.Counters["flags.test.counter"] != 7 {
		t.Errorf("record metrics: %+v", rec.Metrics)
	}
	if rec.QoR["qor.x"] != 1.5 {
		t.Errorf("record qor: %+v", rec.QoR)
	}
}

// TestStallFlagStartsWatchdog: -stall must install the watchdog (and
// progress tracking with it).
func TestStallFlagStartsWatchdog(t *testing.T) {
	DisableProgress()
	StopStallWatchdog()
	defer StopStallWatchdog()
	defer DisableProgress()
	f := &Flags{StallAfter: time.Hour}
	flush, err := f.Activate()
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	defer flush()
	if globalWatchdog.Load() == nil {
		t.Error("-stall did not install the watchdog")
	}
	if !ProgressEnabled() {
		t.Error("-stall must enable progress tracking")
	}
}

// TestReportProgressEmitsJournalEvents: each reporter pass journals one
// progress event per task, and finished tasks report exactly once.
func TestReportProgressEmitsJournalEvents(t *testing.T) {
	DisableProgress()
	EnableProgress()
	defer DisableProgress()
	var sink journalSink
	prev := SetJournal(NewJournal(&sink, "r-prog"))
	defer func() { SetJournal(prev).Close() }()

	task := Progress("rep.task", 10)
	task.Add(5)
	reported := map[string]bool{}
	reportProgress(reported)
	task.Add(5)
	task.Finish()
	reportProgress(reported)
	reportProgress(reported) // finished: must not report again

	J().Sync()
	evs, err := ReadJournal(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	var progress []Event
	for _, e := range evs {
		if e.Kind == KindProgress {
			progress = append(progress, e)
		}
	}
	if len(progress) != 2 {
		t.Fatalf("got %d progress events, want 2 (live + final)", len(progress))
	}
	if progress[0].Attrs["done"] != "5" || progress[1].Attrs["done"] != "10" {
		t.Errorf("progress attrs: %+v, %+v", progress[0].Attrs, progress[1].Attrs)
	}
	if progress[0].Stage != "rep.task" {
		t.Errorf("progress stage = %q", progress[0].Stage)
	}
}

// journalSink is an in-memory journal target.
type journalSink struct{ b strings.Builder }

func (s *journalSink) Write(p []byte) (int, error) { return s.b.Write(p) }
func (s *journalSink) String() string              { return s.b.String() }

var _ io.Writer = (*journalSink)(nil)
