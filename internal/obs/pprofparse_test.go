package obs

import (
	"bytes"
	"compress/gzip"
	"context"
	"runtime/pprof"
	"testing"
	"time"
)

// --- tiny protobuf encoder, just enough to hand-craft pprof profiles ---

func pbVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func pbTag(b []byte, field, wire int) []byte {
	return pbVarint(b, uint64(field)<<3|uint64(wire))
}

func pbBytes(b []byte, field int, payload []byte) []byte {
	b = pbTag(b, field, 2)
	b = pbVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func pbInt(b []byte, field int, v uint64) []byte {
	b = pbTag(b, field, 0)
	return pbVarint(b, v)
}

// craftProfile builds a pprof Profile with the given string table,
// sample types (pairs of string-table indices), and samples.
type craftSample struct {
	values   []int64
	labels   map[int]int // key index -> str index
	packed   bool
	junk     bool // include an unknown field to exercise skipping
	fixedLbl bool
}

func craftProfile(strTab []string, types [][2]int, samples []craftSample) []byte {
	var p []byte
	for _, st := range types {
		var vt []byte
		vt = pbInt(vt, 1, uint64(st[0]))
		vt = pbInt(vt, 2, uint64(st[1]))
		p = pbBytes(p, 1, vt)
	}
	for _, s := range samples {
		var sm []byte
		if s.junk {
			sm = pbInt(sm, 1, 42) // location_id — parser must skip
		}
		if s.packed {
			var vals []byte
			for _, v := range s.values {
				vals = pbVarint(vals, uint64(v))
			}
			sm = pbBytes(sm, 2, vals)
		} else {
			for _, v := range s.values {
				sm = pbInt(sm, 2, uint64(v))
			}
		}
		for k, str := range s.labels {
			var lb []byte
			lb = pbInt(lb, 1, uint64(k))
			lb = pbInt(lb, 2, uint64(str))
			if s.fixedLbl {
				// unknown fixed64 field inside the label
				lb = pbTag(lb, 15, 1)
				lb = append(lb, 0, 0, 0, 0, 0, 0, 0, 0)
			}
			sm = pbBytes(sm, 3, lb)
		}
		p = pbBytes(p, 2, sm)
	}
	for _, s := range strTab {
		p = pbBytes(p, 6, []byte(s))
	}
	return p
}

// The canonical fixture: two sample types (samples/count, cpu/nanoseconds),
// one labeled sample worth 500ns under span=flow/charlib, one unlabeled
// sample worth 250ns.
func fixtureProfile() []byte {
	strTab := []string{"", "samples", "count", "cpu", "nanoseconds", "span", "flow/charlib"}
	return craftProfile(strTab,
		[][2]int{{1, 2}, {3, 4}},
		[]craftSample{
			{values: []int64{1, 500}, labels: map[int]int{5: 6}, packed: true, junk: true, fixedLbl: true},
			{values: []int64{2, 250}, packed: false},
		})
}

func TestProfileCPUByLabel(t *testing.T) {
	byLabel, total, err := profileCPUByLabel(fixtureProfile(), "span")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if total != 750 {
		t.Errorf("total = %d ns, want 750", total)
	}
	if got := byLabel["flow/charlib"]; got != 500 {
		t.Errorf("flow/charlib = %d ns, want 500", got)
	}
	if len(byLabel) != 1 {
		t.Errorf("unexpected labels: %v", byLabel)
	}
}

func TestProfileCPUByLabelGzipped(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(fixtureProfile()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	byLabel, total, err := profileCPUByLabel(buf.Bytes(), "span")
	if err != nil {
		t.Fatalf("parse gzipped: %v", err)
	}
	if total != 750 || byLabel["flow/charlib"] != 500 {
		t.Errorf("gzipped parse: total=%d byLabel=%v", total, byLabel)
	}
}

// Without a "cpu" sample type the parser must fall back to the last value
// column (pprof convention puts the primary metric last).
func TestProfileCPUColumnFallback(t *testing.T) {
	strTab := []string{"", "alloc_objects", "count", "alloc_space", "bytes", "span", "p"}
	data := craftProfile(strTab,
		[][2]int{{1, 2}, {3, 4}},
		[]craftSample{{values: []int64{7, 900}, labels: map[int]int{5: 6}, packed: true}})
	byLabel, total, err := profileCPUByLabel(data, "span")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if total != 900 || byLabel["p"] != 900 {
		t.Errorf("fallback column: total=%d byLabel=%v", total, byLabel)
	}
}

func TestProfileCPUByLabelGarbage(t *testing.T) {
	if _, _, err := profileCPUByLabel([]byte{0xff, 0xff, 0xff}, "span"); err == nil {
		t.Error("garbage input parsed without error")
	}
	byLabel, total, err := profileCPUByLabel(nil, "span")
	if err != nil {
		t.Fatalf("empty profile: %v", err)
	}
	if total != 0 || len(byLabel) != 0 {
		t.Errorf("empty profile: total=%d byLabel=%v", total, byLabel)
	}
}

// TestProfileCPUByLabelReal round-trips a real runtime CPU profile: labeled
// busy work must show up under its span label after parsing the runtime's
// own gzipped protobuf output.
func TestProfileCPUByLabelReal(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler busy: %v", err)
	}
	pprof.Do(context.Background(), pprof.Labels("span", "real/burn"), func(context.Context) {
		burnCPU(200 * time.Millisecond)
	})
	pprof.StopCPUProfile()

	byLabel, total, err := profileCPUByLabel(buf.Bytes(), "span")
	if err != nil {
		t.Fatalf("parse real profile: %v", err)
	}
	if total == 0 {
		t.Skip("profiler landed no samples")
	}
	if byLabel["real/burn"] == 0 {
		t.Errorf("no CPU attributed to real/burn; byLabel=%v total=%d", byLabel, total)
	}
}
