package obs

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

func TestSampleRuntimeMetricsDisabledIsNoOp(t *testing.T) {
	DisableMetrics()
	SampleRuntimeMetrics() // must not panic or install a registry
	if MetricsEnabled() {
		t.Fatal("sampling installed a registry")
	}
}

func TestSampleRuntimeMetrics(t *testing.T) {
	defer DisableMetrics()
	EnableMetrics()
	runtime.GC() // guarantee at least one new pause for the histogram
	SampleRuntimeMetrics()

	if g := G("runtime.goroutines").Value(); g < 1 {
		t.Errorf("runtime.goroutines = %g, want >= 1", g)
	}
	if h := G("runtime.heap_alloc_bytes").Value(); h <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %g, want > 0", h)
	}
	if c := G("runtime.gc_count").Value(); c < 1 {
		t.Errorf("runtime.gc_count = %g, want >= 1", c)
	}
	pauses := H("runtime.gc_pause_seconds").Count()
	if pauses < 1 {
		t.Errorf("gc pause histogram empty after forced GC")
	}

	// Re-sampling without new GCs must not double-count pauses. (Guard on
	// the GC count in case the runtime collected between the samples.)
	gcBefore := G("runtime.gc_count").Value()
	SampleRuntimeMetrics()
	if G("runtime.gc_count").Value() == gcBefore {
		if again := H("runtime.gc_pause_seconds").Count(); again != pauses {
			t.Errorf("pause count moved %d -> %d without a GC", pauses, again)
		}
	}
}

func TestHealthzEndpoint(t *testing.T) {
	defer DisableMetrics()
	EnableMetrics()
	mux := obsMux()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz = %d, want 200", rec.Code)
	}
	body := rec.Body.String()
	if !strings.HasPrefix(body, "ok") || !strings.Contains(body, "uptime=") {
		t.Errorf("/healthz body = %q", body)
	}
}

func TestBuildinfoEndpoint(t *testing.T) {
	defer DisableMetrics()
	EnableMetrics()
	mux := obsMux()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/buildinfo", nil))
	if rec.Code != 200 {
		t.Fatalf("/buildinfo = %d, want 200", rec.Code)
	}
	var bi BuildInfoReport
	if err := json.Unmarshal(rec.Body.Bytes(), &bi); err != nil {
		t.Fatalf("/buildinfo did not parse: %v\n%s", err, rec.Body.String())
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("go_version = %q", bi.GoVersion)
	}
	if bi.GOOS != runtime.GOOS || bi.GOARCH != runtime.GOARCH {
		t.Errorf("goos/goarch = %s/%s", bi.GOOS, bi.GOARCH)
	}
	if bi.UptimeSec <= 0 {
		t.Errorf("uptime_seconds = %g", bi.UptimeSec)
	}
	if !bi.Telemetry.Metrics {
		t.Errorf("telemetry.metrics false while registry enabled")
	}
	if bi.Telemetry.Journal {
		t.Errorf("telemetry.journal true while journaling disabled")
	}
}

// TestMetricsExpositionIncludesRuntime: scraping /metrics must refresh the
// runtime gauges in the same registry the scrape reads.
func TestMetricsExpositionIncludesRuntime(t *testing.T) {
	defer DisableMetrics()
	EnableMetrics()
	mux := obsMux()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{"runtime_goroutines", "runtime_heap_alloc_bytes"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s:\n%s", want, body)
		}
	}
}
