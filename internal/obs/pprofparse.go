package obs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// profileCPUByLabel parses a pprof CPU profile (the gzipped protobuf that
// runtime/pprof writes) and sums the CPU sample values per value of the
// given string label, plus the grand total over all samples. Samples that
// do not carry the label contribute only to the total — the caller renders
// them as unattributed. Only the handful of proto fields needed for label
// slicing are decoded (sample types, samples, the string table), so the
// parser stays stdlib-only instead of vendoring the pprof proto.
func profileCPUByLabel(data []byte, labelKey string) (byLabel map[string]int64, totalNs int64, err error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, 0, fmt.Errorf("obs: profile: gunzip: %w", err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, 0, fmt.Errorf("obs: profile: gunzip: %w", err)
		}
	}

	// First pass over the top-level Profile message: collect the raw
	// sample_type (field 1) and sample (field 2) submessages and the string
	// table (field 6). Samples reference strings by table index, so they can
	// only be decoded after the whole message has been scanned.
	var sampleTypes, samples [][]byte
	var strtab []string
	r := wireReader{b: data}
	for !r.done() {
		num, wire, err := r.field()
		if err != nil {
			return nil, 0, err
		}
		switch {
		case num == 1 && wire == wireBytes:
			v, err := r.bytes()
			if err != nil {
				return nil, 0, err
			}
			sampleTypes = append(sampleTypes, v)
		case num == 2 && wire == wireBytes:
			v, err := r.bytes()
			if err != nil {
				return nil, 0, err
			}
			samples = append(samples, v)
		case num == 6 && wire == wireBytes:
			v, err := r.bytes()
			if err != nil {
				return nil, 0, err
			}
			strtab = append(strtab, string(v))
		default:
			if err := r.skip(wire); err != nil {
				return nil, 0, err
			}
		}
	}

	cpuIdx, err := cpuValueIndex(sampleTypes, strtab)
	if err != nil {
		return nil, 0, err
	}

	byLabel = map[string]int64{}
	for _, raw := range samples {
		v, label, err := decodeSample(raw, strtab, cpuIdx, labelKey)
		if err != nil {
			return nil, 0, err
		}
		totalNs += v
		if label != "" {
			byLabel[label] += v
		}
	}
	return byLabel, totalNs, nil
}

// cpuValueIndex finds which per-sample value column holds CPU time: the
// ValueType whose type string is "cpu" (a CPU profile's columns are
// samples/count, cpu/nanoseconds). Falls back to the last column, which is
// pprof's own default_sample_type convention.
func cpuValueIndex(sampleTypes [][]byte, strtab []string) (int, error) {
	for i, raw := range sampleTypes {
		r := wireReader{b: raw}
		for !r.done() {
			num, wire, err := r.field()
			if err != nil {
				return 0, err
			}
			if num == 1 && wire == wireVarint {
				idx, err := r.varint()
				if err != nil {
					return 0, err
				}
				if int(idx) < len(strtab) && strtab[idx] == "cpu" {
					return i, nil
				}
			} else if err := r.skip(wire); err != nil {
				return 0, err
			}
		}
	}
	if n := len(sampleTypes); n > 0 {
		return n - 1, nil
	}
	return 0, nil
}

// decodeSample extracts one Sample's CPU value (column cpuIdx) and the
// value of its labelKey string label ("" when absent).
func decodeSample(raw []byte, strtab []string, cpuIdx int, labelKey string) (int64, string, error) {
	var values []int64
	var label string
	r := wireReader{b: raw}
	for !r.done() {
		num, wire, err := r.field()
		if err != nil {
			return 0, "", err
		}
		switch {
		case num == 2 && wire == wireBytes: // packed repeated int64 value
			packed, err := r.bytes()
			if err != nil {
				return 0, "", err
			}
			pr := wireReader{b: packed}
			for !pr.done() {
				v, err := pr.varint()
				if err != nil {
					return 0, "", err
				}
				values = append(values, int64(v))
			}
		case num == 2 && wire == wireVarint: // unpacked encoding
			v, err := r.varint()
			if err != nil {
				return 0, "", err
			}
			values = append(values, int64(v))
		case num == 3 && wire == wireBytes: // Label submessage
			lraw, err := r.bytes()
			if err != nil {
				return 0, "", err
			}
			k, v, err := decodeLabel(lraw, strtab)
			if err != nil {
				return 0, "", err
			}
			if k == labelKey {
				label = v
			}
		default:
			if err := r.skip(wire); err != nil {
				return 0, "", err
			}
		}
	}
	if len(values) == 0 {
		return 0, label, nil
	}
	if cpuIdx >= len(values) {
		cpuIdx = len(values) - 1
	}
	return values[cpuIdx], label, nil
}

// decodeLabel extracts a Label's key and string value (both are string
// table indices; numeric labels come back with an empty value).
func decodeLabel(raw []byte, strtab []string) (key, val string, err error) {
	r := wireReader{b: raw}
	for !r.done() {
		num, wire, err := r.field()
		if err != nil {
			return "", "", err
		}
		if wire == wireVarint && (num == 1 || num == 2) {
			idx, err := r.varint()
			if err != nil {
				return "", "", err
			}
			if int(idx) < len(strtab) {
				if num == 1 {
					key = strtab[idx]
				} else {
					val = strtab[idx]
				}
			}
			continue
		}
		if err := r.skip(wire); err != nil {
			return "", "", err
		}
	}
	return key, val, nil
}

// Protobuf wire types used by the pprof proto.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// wireReader is a minimal protobuf wire-format cursor.
type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) done() bool { return r.off >= len(r.b) }

// field reads the next field tag and returns its number and wire type.
func (r *wireReader) field() (num, wire int, err error) {
	tag, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

func (r *wireReader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.off >= len(r.b) {
			return 0, fmt.Errorf("obs: profile: truncated varint")
		}
		b := r.b[r.off]
		r.off++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("obs: profile: varint overflow")
}

// bytes reads a length-delimited payload.
func (r *wireReader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.b)-r.off) < n {
		return nil, fmt.Errorf("obs: profile: truncated field (%d bytes wanted, %d left)", n, len(r.b)-r.off)
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v, nil
}

func (r *wireReader) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := r.varint()
		return err
	case wireFixed64:
		if len(r.b)-r.off < 8 {
			return fmt.Errorf("obs: profile: truncated fixed64")
		}
		r.off += 8
		return nil
	case wireBytes:
		_, err := r.bytes()
		return err
	case wireFixed32:
		if len(r.b)-r.off < 4 {
			return fmt.Errorf("obs: profile: truncated fixed32")
		}
		r.off += 4
		return nil
	default:
		return fmt.Errorf("obs: profile: unsupported wire type %d", wire)
	}
}
