package obs

import (
	"os"
	"strings"
	"testing"
)

func TestLoggerLevels(t *testing.T) {
	var sb strings.Builder
	SetLogOutput(&sb)
	t.Cleanup(func() {
		SetLogOutput(os.Stderr)
		SetLogLevel(LogWarn)
	})

	SetLogLevel(LogWarn)
	Log().Debugf("hidden %d", 1)
	Log().Infof("hidden %d", 2)
	Log().Warnf("visible %d", 3)
	Log().Errorf("visible %d", 4)
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("below-level messages leaked:\n%s", out)
	}
	if !strings.Contains(out, "WARN  visible 3") || !strings.Contains(out, "ERROR visible 4") {
		t.Errorf("missing leveled output:\n%s", out)
	}

	sb.Reset()
	SetLogLevel(LogDebug)
	Log().Debugf("now shown")
	if !strings.Contains(sb.String(), "DEBUG now shown") {
		t.Errorf("debug not shown at debug level:\n%s", sb.String())
	}
	if !Log().DebugEnabled() {
		t.Error("DebugEnabled false at debug level")
	}
}

func TestParseLogLevel(t *testing.T) {
	for s, want := range map[string]LogLevel{
		"debug": LogDebug, "info": LogInfo, "warn": LogWarn, "error": LogError,
	} {
		got, err := ParseLogLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted junk")
	}
}
