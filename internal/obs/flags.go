package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Flags carries the standard observability CLI flags shared by every
// binary in the flow: -metrics, -trace, -pprof, -obs-addr, -loglevel,
// -journal, -progress, -stall, -stall-abort, -history, and -cost. Binaries must
// not hand-register any of these: one shared InstallFlags call is what
// keeps the flag surface identical across all ten tools (pinned by
// TestFlagSurface).
type Flags struct {
	MetricsPath string
	TracePath   string
	PprofAddr   string
	ObsAddr     string
	LogLevel    string
	JournalPath string
	// ProgressEvery enables progress tracking and prints per-stage
	// percent/rate/ETA report lines (and journal progress events) at this
	// interval.
	ProgressEvery time.Duration
	// StallAfter enables the stall watchdog: a registered stage silent
	// this long gets a goroutine-dump post-mortem journaled.
	StallAfter time.Duration
	// StallAbort aborts the process (exit 2) after a stall post-mortem
	// instead of waiting for the stage to recover.
	StallAbort bool
	// HistoryPath appends this run's registry snapshot + stage wall times
	// (+ any staged QoR summary) to the JSONL metrics history store on
	// exit (bench/history.jsonl by convention; cryoobs trend reads it).
	HistoryPath string
	// CostPath enables span cost attribution (CPU profile sliced by span
	// labels + alloc/GC/counter boundary deltas) and writes the cost tree
	// to this file on exit ('-' for stderr).
	CostPath string

	runEnded     atomic.Bool // run.end emitted (Flush may be called twice)
	histWritten  atomic.Bool // history appended (Flush may be called twice)
	costWritten  atomic.Bool // cost journal events emitted
	stopReporter func()      // terminates the periodic progress reporter
}

// InstallFlags registers the observability flags on fs (typically
// flag.CommandLine, before flag.Parse). Call Activate after parsing.
func InstallFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsPath, "metrics", "", "write a metrics dump to this file on exit ('-' for stderr)")
	fs.StringVar(&f.TracePath, "trace", "", "write Chrome trace_event JSON (chrome://tracing, Perfetto) to this file on exit")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.ObsAddr, "obs-addr", "", "serve live metrics (Prometheus /metrics, /spans, /progress, pprof) on this address; implies metrics+tracing+progress")
	fs.StringVar(&f.LogLevel, "loglevel", "", "diagnostic log level: debug|info|warn|error (default warn)")
	fs.StringVar(&f.JournalPath, "journal", "", "append a structured JSONL run journal to this file (cryoobs reads it)")
	fs.DurationVar(&f.ProgressEvery, "progress", 0, "print per-stage progress lines (percent/rate/ETA) at this interval (e.g. 5s)")
	fs.DurationVar(&f.StallAfter, "stall", 0, "stall watchdog: journal a goroutine-dump post-mortem when a stage makes no progress for this long")
	fs.BoolVar(&f.StallAbort, "stall-abort", false, "with -stall, abort the process (exit 2) after capturing the stall post-mortem")
	fs.StringVar(&f.HistoryPath, "history", "", "append this run's metrics snapshot + QoR summary to this JSONL history store (cryoobs trend reads it)")
	fs.StringVar(&f.CostPath, "cost", "", "attribute CPU/alloc/engine-counter cost to flow spans and write the cost tree to this file on exit ('-' for stderr); implies metrics+tracing")
	return f
}

// Activate enables the subsystems the parsed flags ask for and returns a
// flush function that writes the -metrics and -trace outputs; call it on
// every exit path (it is safe to call more than once, later calls
// overwrite the files with fresher data).
func (f *Flags) Activate() (flush func(), err error) {
	if f.LogLevel != "" {
		level, err := ParseLogLevel(f.LogLevel)
		if err != nil {
			return nil, err
		}
		SetLogLevel(level)
	}
	if f.MetricsPath != "" {
		EnableMetrics()
	}
	if f.TracePath != "" {
		EnableTracing()
	}
	if f.CostPath != "" {
		EnableCost()
	}
	if f.PprofAddr != "" {
		if err := servePprof(f.PprofAddr); err != nil {
			return nil, err
		}
	}
	if f.ObsAddr != "" {
		if err := serveObs(f.ObsAddr); err != nil {
			return nil, err
		}
	}
	if f.ObsAddr != "" || f.ProgressEvery > 0 || f.StallAfter > 0 {
		EnableProgress()
	}
	if f.StallAfter > 0 {
		StartStallWatchdog(WatchdogConfig{Deadline: f.StallAfter, Abort: f.StallAbort})
	}
	if f.ProgressEvery > 0 {
		f.stopReporter = startProgressReporter(f.ProgressEvery)
	}
	if f.JournalPath != "" {
		j, err := EnableJournal(f.JournalPath)
		if err != nil {
			return nil, err
		}
		j.Event(KindRunStart, "", strings.Join(os.Args, " "), map[string]string{
			"bin": filepath.Base(os.Args[0]),
		})
		// Flush eagerly: a crashed process must leave at least its run.start
		// on disk, or there is nothing to post-mortem.
		if err := j.Sync(); err != nil {
			Log().Errorf("obs: journal: flushing %s: %v", f.JournalPath, err)
		}
	}
	return f.Flush, nil
}

// Flush writes the metrics and trace outputs requested by the flags.
// Failures are reported through the logger rather than returned: flushing
// telemetry must never mask the tool's own exit status.
func (f *Flags) Flush() {
	if f.MetricsPath != "" {
		SampleRuntimeMetrics()
		if f.MetricsPath == "-" {
			fmt.Fprintln(os.Stderr, "--- metrics ---")
			if err := Metrics().WriteText(os.Stderr); err != nil {
				Log().Errorf("obs: writing metrics: %v", err)
			}
		} else if err := writeFileWith(f.MetricsPath, Metrics().WriteText); err != nil {
			Log().Errorf("obs: writing metrics to %s: %v", f.MetricsPath, err)
		}
	}
	if f.TracePath != "" {
		if err := writeFileWith(f.TracePath, Tracing().WriteChromeTrace); err != nil {
			Log().Errorf("obs: writing trace to %s: %v", f.TracePath, err)
		}
	}
	if f.stopReporter != nil {
		f.stopReporter()
		f.stopReporter = nil
	}
	if f.CostPath != "" {
		// Finalize before the history record and run.end so the CPU columns
		// land in both the cost file and the history stage costs.
		FinalizeCost()
		if rep := BuildCostReport(true); rep != nil {
			if f.costWritten.CompareAndSwap(false, true) {
				rep.JournalCost(J())
			}
			var werr error
			if f.CostPath == "-" {
				fmt.Fprintln(os.Stderr, "--- cost ---")
				werr = rep.WriteText(os.Stderr, CostRenderOptions{})
			} else {
				werr = writeFileWith(f.CostPath, func(w io.Writer) error {
					return rep.WriteText(w, CostRenderOptions{})
				})
			}
			if werr != nil {
				Log().Errorf("obs: writing cost report to %s: %v", f.CostPath, werr)
			}
		}
	}
	if f.HistoryPath != "" && f.histWritten.CompareAndSwap(false, true) {
		if err := AppendHistory(f.HistoryPath, buildHistoryRecord()); err != nil {
			Log().Errorf("obs: history: appending to %s: %v", f.HistoryPath, err)
		}
	}
	if f.JournalPath != "" {
		j := J()
		if f.runEnded.CompareAndSwap(false, true) {
			j.Event(KindRunEnd, "", "", nil)
		}
		if err := j.Sync(); err != nil {
			Log().Errorf("obs: journal: flushing %s: %v", f.JournalPath, err)
		}
	}
}

// buildHistoryRecord assembles this run's history entry at flush time: the
// registry snapshot (after a final runtime sample), per-stage wall times,
// staged QoR metrics, and journal artifact provenance, keyed by the
// journal run ID (or a fresh one when journaling is off).
func buildHistoryRecord() *HistoryRecord {
	rec := &HistoryRecord{
		TNs:       time.Now().UnixNano(),
		Run:       J().RunID(),
		Bin:       filepath.Base(os.Args[0]),
		Args:      strings.Join(os.Args[1:], " "),
		QoR:       takeHistoryQoR(),
		Artifacts: J().Artifacts(),
	}
	if rec.Run == "" {
		rec.Run = NewRunID()
	}
	if MetricsEnabled() {
		SampleRuntimeMetrics()
		rec.Metrics = Metrics().Snapshot()
	}
	// Peak RSS and GC pause totals are recorded unconditionally: runs that
	// never scraped /metrics would otherwise miss them entirely.
	rec.PeakRSSBytes = peakRSSBytes()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec.GCPauseTotalSec = round6(float64(ms.PauseTotalNs) / 1e9)
	if rep := BuildCostReport(true); rep != nil {
		rec.Costs = rep.StageCosts()
	}
	if totals := Tracing().Totals(); len(totals) > 0 {
		rec.Stages = make(map[string]float64, len(totals))
		for name, st := range totals {
			rec.Stages[name] = round6(st.Total.Seconds())
		}
	}
	return rec
}

// startProgressReporter launches the periodic reporter: one stderr line and
// one journal progress event per live (or just-finished) task per interval.
// The returned stop function prints each task's final state once.
func startProgressReporter(every time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		// reported tracks tasks whose finished state was already printed, so
		// each task gets exactly one final line.
		reported := map[string]bool{}
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				reportProgress(reported)
				return
			case <-t.C:
				reportProgress(reported)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// reportProgress emits one report line + journal event per task that is
// either live or newly finished since the last report.
func reportProgress(reported map[string]bool) {
	p := ProgressTable()
	if p == nil {
		return
	}
	j := J()
	for _, s := range p.Snapshot() {
		if reported[s.Name] {
			continue
		}
		if s.Finished {
			reported[s.Name] = true
		}
		fmt.Fprintln(os.Stderr, "progress: "+s.Line())
		if j != nil {
			j.Event(KindProgress, s.Name, s.Line(), map[string]string{
				"done":         strconv.FormatInt(s.Done, 10),
				"total":        strconv.FormatInt(s.Total, 10),
				"percent":      strconv.FormatFloat(s.Percent, 'g', 6, 64),
				"rate_per_sec": strconv.FormatFloat(s.RatePerSec, 'g', 6, 64),
				"eta_seconds":  strconv.FormatFloat(s.ETASec, 'g', 6, 64),
			})
		}
	}
}

func writeFileWith(path string, write func(w io.Writer) error) error {
	g, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(g); err != nil {
		g.Close()
		return err
	}
	return g.Close()
}

// servePprof mounts the net/http/pprof handlers on a dedicated mux (not
// http.DefaultServeMux) and serves them in the background.
func servePprof(addr string) error {
	mux := http.NewServeMux()
	registerPprof(mux)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: pprof listen on %s: %w", addr, err)
	}
	Log().Infof("obs: pprof serving on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			Log().Errorf("obs: pprof server: %v", err)
		}
	}()
	return nil
}
