package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// Flags carries the standard observability CLI flags shared by every
// binary in the flow: -metrics, -trace, -pprof, -obs-addr, -loglevel, and
// -journal.
type Flags struct {
	MetricsPath string
	TracePath   string
	PprofAddr   string
	ObsAddr     string
	LogLevel    string
	JournalPath string

	runEnded atomic.Bool // run.end emitted (Flush may be called twice)
}

// InstallFlags registers the observability flags on fs (typically
// flag.CommandLine, before flag.Parse). Call Activate after parsing.
func InstallFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsPath, "metrics", "", "write a metrics dump to this file on exit ('-' for stderr)")
	fs.StringVar(&f.TracePath, "trace", "", "write Chrome trace_event JSON (chrome://tracing, Perfetto) to this file on exit")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.ObsAddr, "obs-addr", "", "serve live metrics (Prometheus /metrics, /spans, pprof) on this address; implies metrics+tracing")
	fs.StringVar(&f.LogLevel, "loglevel", "", "diagnostic log level: debug|info|warn|error (default warn)")
	fs.StringVar(&f.JournalPath, "journal", "", "append a structured JSONL run journal to this file (cryoobs reads it)")
	return f
}

// Activate enables the subsystems the parsed flags ask for and returns a
// flush function that writes the -metrics and -trace outputs; call it on
// every exit path (it is safe to call more than once, later calls
// overwrite the files with fresher data).
func (f *Flags) Activate() (flush func(), err error) {
	if f.LogLevel != "" {
		level, err := ParseLogLevel(f.LogLevel)
		if err != nil {
			return nil, err
		}
		SetLogLevel(level)
	}
	if f.MetricsPath != "" {
		EnableMetrics()
	}
	if f.TracePath != "" {
		EnableTracing()
	}
	if f.PprofAddr != "" {
		if err := servePprof(f.PprofAddr); err != nil {
			return nil, err
		}
	}
	if f.ObsAddr != "" {
		if err := serveObs(f.ObsAddr); err != nil {
			return nil, err
		}
	}
	if f.JournalPath != "" {
		j, err := EnableJournal(f.JournalPath)
		if err != nil {
			return nil, err
		}
		j.Event(KindRunStart, "", strings.Join(os.Args, " "), map[string]string{
			"bin": filepath.Base(os.Args[0]),
		})
		// Flush eagerly: a crashed process must leave at least its run.start
		// on disk, or there is nothing to post-mortem.
		if err := j.Sync(); err != nil {
			Log().Errorf("obs: journal: flushing %s: %v", f.JournalPath, err)
		}
	}
	return f.Flush, nil
}

// Flush writes the metrics and trace outputs requested by the flags.
// Failures are reported through the logger rather than returned: flushing
// telemetry must never mask the tool's own exit status.
func (f *Flags) Flush() {
	if f.MetricsPath != "" {
		SampleRuntimeMetrics()
		if f.MetricsPath == "-" {
			fmt.Fprintln(os.Stderr, "--- metrics ---")
			if err := Metrics().WriteText(os.Stderr); err != nil {
				Log().Errorf("obs: writing metrics: %v", err)
			}
		} else if err := writeFileWith(f.MetricsPath, Metrics().WriteText); err != nil {
			Log().Errorf("obs: writing metrics to %s: %v", f.MetricsPath, err)
		}
	}
	if f.TracePath != "" {
		if err := writeFileWith(f.TracePath, Tracing().WriteChromeTrace); err != nil {
			Log().Errorf("obs: writing trace to %s: %v", f.TracePath, err)
		}
	}
	if f.JournalPath != "" {
		j := J()
		if f.runEnded.CompareAndSwap(false, true) {
			j.Event(KindRunEnd, "", "", nil)
		}
		if err := j.Sync(); err != nil {
			Log().Errorf("obs: journal: flushing %s: %v", f.JournalPath, err)
		}
	}
}

func writeFileWith(path string, write func(w io.Writer) error) error {
	g, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(g); err != nil {
		g.Close()
		return err
	}
	return g.Close()
}

// servePprof mounts the net/http/pprof handlers on a dedicated mux (not
// http.DefaultServeMux) and serves them in the background.
func servePprof(addr string) error {
	mux := http.NewServeMux()
	registerPprof(mux)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: pprof listen on %s: %w", addr, err)
	}
	Log().Infof("obs: pprof serving on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			Log().Errorf("obs: pprof server: %v", err)
		}
	}()
	return nil
}
