package obs

import (
	"runtime"
	"sync"
	"time"
)

// processStart anchors the uptime reported by /healthz and /buildinfo.
var processStart = time.Now()

var gcSample struct {
	mu        sync.Mutex
	lastNumGC uint32
}

// SampleRuntimeMetrics refreshes the runtime health gauges in the global
// registry — runtime.goroutines, runtime.heap_alloc_bytes,
// runtime.gc_count — and observes GC pauses that occurred since the last
// sample into the runtime.gc_pause_seconds histogram. It is called on
// every exposition (/metrics, /metrics.txt, /snapshot.json) and on flag
// flush, so scrapes see current values without a background sampler
// goroutine. No-op while metrics are disabled.
func SampleRuntimeMetrics() {
	if !MetricsEnabled() {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	G("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	G("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	G("runtime.gc_count").Set(float64(ms.NumGC))
	G("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	if rss := peakRSSBytes(); rss > 0 {
		G("runtime.peak_rss_bytes").Set(float64(rss))
	}

	// PauseNs is a ring of the last 256 pauses; replay only the ones that
	// are new since the previous sample so each pause is observed once.
	gcSample.mu.Lock()
	defer gcSample.mu.Unlock()
	last := gcSample.lastNumGC
	if ms.NumGC > last {
		newPauses := ms.NumGC - last
		if newPauses > uint32(len(ms.PauseNs)) {
			newPauses = uint32(len(ms.PauseNs))
		}
		h := H("runtime.gc_pause_seconds")
		for i := uint32(0); i < newPauses; i++ {
			pause := ms.PauseNs[(ms.NumGC-1-i)%uint32(len(ms.PauseNs))]
			h.Observe(float64(pause) / 1e9)
		}
		gcSample.lastNumGC = ms.NumGC
	}
}

// Uptime returns the wall time since process start (as anchored at package
// initialization).
func Uptime() time.Duration { return time.Since(processStart) }
