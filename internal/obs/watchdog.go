package obs

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// StallReport is the structured post-mortem the watchdog captures when a
// registered stage goes silent past its deadline: the wedged task's
// counters, the active span stack (where in the flow tree the run was),
// a registry snapshot, and a full goroutine dump. It rides as the detail
// payload of the typed "stall" journal event, which cmd/cryoobs report
// renders.
type StallReport struct {
	Task         string    `json:"task"`
	Done         int64     `json:"done"`
	Total        int64     `json:"total,omitempty"`
	SilentSec    float64   `json:"silent_seconds"`
	DeadlineSec  float64   `json:"deadline_seconds"`
	SpanStack    []string  `json:"span_stack,omitempty"`
	NumGoroutine int       `json:"num_goroutine"`
	Goroutines   string    `json:"goroutines"`
	Metrics      *Snapshot `json:"metrics,omitempty"`
}

// WatchdogConfig tunes the stall watchdog.
type WatchdogConfig struct {
	// Deadline is the silence (no progress update on a live task) that
	// counts as a stall.
	Deadline time.Duration
	// Abort exits the process (status 2) after the post-mortem is captured
	// and flushed; the default is to keep waiting (the solve may still
	// finish, and the journal already holds the evidence).
	Abort bool
	// OnStall, when non-nil, observes each captured report (tests; the
	// abort decision still applies after it returns).
	OnStall func(*StallReport)
}

// Watchdog periodically scans the progress registry for tasks whose
// heartbeat went silent past the deadline and turns each such episode into
// a self-documenting post-mortem: a goroutine dump + registry snapshot
// journaled as a "stall" event. One episode fires exactly once; a task
// that resumes progress re-arms.
type Watchdog struct {
	cfg  WatchdogConfig
	stop chan struct{}
	once sync.Once
}

var globalWatchdog atomic.Pointer[Watchdog]

// StartStallWatchdog enables progress tracking, installs a watchdog with
// the given config, and starts its scan loop. A second call while one is
// running returns the existing watchdog unchanged.
func StartStallWatchdog(cfg WatchdogConfig) *Watchdog {
	if w := globalWatchdog.Load(); w != nil {
		return w
	}
	EnableProgress()
	if cfg.Deadline <= 0 {
		cfg.Deadline = 5 * time.Minute
	}
	w := &Watchdog{cfg: cfg, stop: make(chan struct{})}
	if !globalWatchdog.CompareAndSwap(nil, w) {
		return globalWatchdog.Load()
	}
	go w.loop()
	return w
}

// StopStallWatchdog stops and removes the global watchdog (no-op when none
// is running).
func StopStallWatchdog() {
	if w := globalWatchdog.Swap(nil); w != nil {
		w.Stop()
	}
}

// Stop terminates the scan loop. Safe to call repeatedly.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.once.Do(func() { close(w.stop) })
}

// loop scans at a quarter of the deadline so a stall is detected within
// ~1.25 deadlines of the last heartbeat.
func (w *Watchdog) loop() {
	tick := w.cfg.Deadline / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.scan()
		}
	}
}

// scan fires a post-mortem for every live task silent past the deadline
// that has not already fired for this episode.
func (w *Watchdog) scan() {
	p := globalProgress.Load()
	if p == nil {
		return
	}
	now := progressNow()
	for _, task := range p.Tasks() {
		if task.finished.Load() {
			continue
		}
		silent := now.UnixNano() - task.lastNs.Load()
		if silent < int64(w.cfg.Deadline) {
			continue
		}
		if !task.stallFired.CompareAndSwap(false, true) {
			continue // already post-mortemed this episode
		}
		rep := w.capture(task, float64(silent)/1e9)
		if w.cfg.OnStall != nil {
			w.cfg.OnStall(rep)
		}
		if w.cfg.Abort {
			fmt.Fprintf(os.Stderr,
				"obs: watchdog: stage %s stalled for %.1fs (deadline %.1fs); aborting\n%s\n",
				rep.Task, rep.SilentSec, rep.DeadlineSec, rep.Goroutines)
			os.Exit(2)
		}
	}
}

// capture assembles the post-mortem and journals it. The journal is
// synced immediately: a stalled process is exactly the one likely to be
// killed before a graceful flush.
func (w *Watchdog) capture(task *Task, silentSec float64) *StallReport {
	rep := &StallReport{
		Task:         task.name,
		Done:         task.done.Load(),
		Total:        task.total.Load(),
		SilentSec:    round6(silentSec),
		DeadlineSec:  w.cfg.Deadline.Seconds(),
		SpanStack:    Tracing().ActiveStack(),
		NumGoroutine: runtime.NumGoroutine(),
		Goroutines:   goroutineDump(),
	}
	if MetricsEnabled() {
		rep.Metrics = Metrics().Snapshot()
	}
	C("obs.stalls").Inc()
	Log().Errorf("obs: watchdog: stage %s silent for %.1fs (deadline %gs) at %d/%d units — post-mortem captured",
		rep.Task, rep.SilentSec, rep.DeadlineSec, rep.Done, rep.Total)
	if j := J(); j != nil {
		j.EventDetail(KindStall, rep.Task,
			fmt.Sprintf("no progress for %.1fs", rep.SilentSec),
			map[string]string{
				"task":           rep.Task,
				"silent_seconds": strconv.FormatFloat(rep.SilentSec, 'g', 6, 64),
				"done":           strconv.FormatInt(rep.Done, 10),
				"total":          strconv.FormatInt(rep.Total, 10),
			}, rep)
		if err := j.Sync(); err != nil {
			Log().Errorf("obs: watchdog: flushing journal: %v", err)
		}
	}
	return rep
}

// goroutineDump captures the stacks of every goroutine, growing the buffer
// until the dump fits (capped at 64 MiB).
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) || len(buf) >= 64<<20 {
			return string(buf[:n])
		}
		buf = make([]byte, len(buf)*2)
	}
}

// ActiveStack returns the name path (root first) of the deepest span still
// open — the flow's "where am I" at stall time. It picks the most recently
// started open span, so a wedged leaf solve reports its full ancestry. Nil
// tracer (tracing disabled) returns nil.
func (t *Tracer) ActiveStack() []string {
	if t == nil {
		return nil
	}
	var best *Span
	var walk func(s *Span)
	walk = func(s *Span) {
		s.mu.Lock()
		ended := s.ended
		start := s.start
		s.mu.Unlock()
		if !ended && (best == nil || start.After(best.start)) {
			best = s
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	if best == nil {
		return nil
	}
	var path []string
	for s := best; s != nil; s = s.parent {
		path = append([]string{s.name}, path...)
	}
	return path
}
