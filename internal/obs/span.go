package obs

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span, rendered into the Chrome
// trace "args" object.
type Attr struct {
	Key string
	Val string
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: strconv.Itoa(v)} }

// F64 builds a float attribute, rendered at full precision (shortest
// round-trip form) so counter-delta attrs do not silently truncate.
func F64(k string, v float64) Attr { return Attr{Key: k, Val: strconv.FormatFloat(v, 'g', -1, 64)} }

// Span is one timed region of the flow. Spans form a tree: children are
// created by calling Start with the context returned by the parent's Start.
// A nil *Span is valid and ignores every method call, which is what Start
// hands out while tracing is disabled.
type Span struct {
	name   string
	start  time.Time
	parent *Span
	// path is the '/'-joined span path used for cost attribution ("" when
	// cost capture was off at Start).
	path string
	// restore carries the pre-span context whose goroutine labels End
	// reinstates; written before the span is published, read only by End.
	restore context.Context

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dur      time.Duration
	ended    bool
	cost     *costStart // boundary snapshot; nil when cost is off or folded
}

type spanCtxKey struct{}

// Start opens a span named name under the span carried by ctx (a root span
// when ctx has none) and returns a derived context carrying the new span.
// When tracing is disabled it returns (ctx, nil) without allocating; note
// that passing explicit attrs still materializes the variadic slice, so
// genuinely hot call sites should use SetAttr after checking the span.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := globalTracer.Load()
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	s := &Span{name: name, start: time.Now(), parent: parent, attrs: attrs}
	if CostEnabled() {
		s.path = spanPath(parent, name)
		s.cost = takeCostStart()
		s.restore = ctx
	}
	if parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		t.mu.Lock()
		t.roots = append(t.roots, s)
		t.mu.Unlock()
	}
	out := context.WithValue(ctx, spanCtxKey{}, s)
	if s.path != "" {
		// Label this goroutine (and every goroutine it spawns inside the
		// span) with the span path, so CPU profile samples stay attributable
		// to the stage even inside worker pools. End restores the previous
		// labels on this goroutine; workers that outlive the span keep the
		// inherited label, which is the correct attribution for their work.
		out = pprof.WithLabels(out, pprof.Labels(CostLabelKey, s.path))
		pprof.SetGoroutineLabels(out)
	}
	return out, s
}

// spanPath joins the ancestor chain with '/'. When the parent predates
// cost capture (its path is empty), the chain is rebuilt from span names
// so late-enabled capture still nests correctly.
func spanPath(parent *Span, name string) string {
	if parent == nil {
		return name
	}
	if parent.path != "" {
		return parent.path + "/" + name
	}
	var names []string
	for p := parent; p != nil; p = p.parent {
		names = append(names, p.name)
	}
	var b strings.Builder
	for i := len(names) - 1; i >= 0; i-- {
		b.WriteString(names[i])
		b.WriteByte('/')
	}
	b.WriteString(name)
	return b.String()
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Detach returns a context that no longer carries a span, so subsequent
// Start calls open fresh root spans. Harnesses that swap the tracer between
// repetitions (cryobench) use it to keep new spans out of stale parents.
func Detach(ctx context.Context) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, (*Span)(nil))
}

// End closes the span, recording its wall time, folding its cost deltas
// into the global cost table, and restoring the goroutine's previous
// profiler labels. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	var foldStart *costStart
	var restore context.Context
	var dur time.Duration
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
		dur = s.dur
		foldStart, s.cost = s.cost, nil
		restore, s.restore = s.restore, nil
	}
	s.mu.Unlock()
	if foldStart != nil {
		foldCost(s.path, dur, foldStart)
	}
	if restore != nil {
		pprof.SetGoroutineLabels(restore)
	}
}

// SetAttr attaches a key/value annotation (nil-safe; any value is rendered
// with %v).
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	var sv string
	switch v := val.(type) {
	case string:
		sv = v
	case int:
		sv = strconv.Itoa(v)
	case float64:
		sv = strconv.FormatFloat(v, 'g', -1, 64)
	default:
		sv = fmt.Sprintf("%v", val)
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: sv})
	s.mu.Unlock()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded wall time; for a still-open span it
// returns the elapsed time so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the direct child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Tracer collects the span forest of one process run.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an empty tracer; its epoch anchors trace timestamps.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// Roots returns a snapshot of the top-level spans.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// SpanTotal aggregates all spans sharing one name.
type SpanTotal struct {
	Count int
	Total time.Duration
}

// Totals aggregates the whole forest by span name — the per-stage wall
// times used by run reports.
func (t *Tracer) Totals() map[string]SpanTotal {
	out := map[string]SpanTotal{}
	if t == nil {
		return out
	}
	var walk func(s *Span)
	walk = func(s *Span) {
		agg := out[s.name]
		agg.Count++
		agg.Total += s.Duration()
		out[s.name] = agg
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	return out
}
