package obs

import (
	"bufio"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one record of the append-only run journal: the black-box flight
// recorder of a flow run. Events carry a per-process run ID, a monotonic
// sequence number, and a stage name that correlates with the span taxonomy
// ("charlib.cell", "qor.rep", ...). The journal is JSONL: one event per
// line, so a crashed process leaves at most one torn final line, which
// ReadJournal tolerates.
type Event struct {
	Seq   uint64 `json:"seq"`
	TNs   int64  `json:"t_ns"` // wall-clock time, unix nanoseconds
	Run   string `json:"run"`
	Kind  string `json:"kind"`
	Stage string `json:"stage,omitempty"`
	Msg   string `json:"msg,omitempty"`
	// Attrs are flat, greppable key/value annotations (cell, arc, slew,
	// temp_k, worst_node, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Detail carries a structured payload for machine consumers — e.g. a
	// full spice.Diagnosis on nonconvergence failures.
	Detail json.RawMessage `json:"detail,omitempty"`
}

// Time returns the event timestamp as a time.Time.
func (e *Event) Time() time.Time { return time.Unix(0, e.TNs) }

// Well-known event kinds. Producers may emit additional domain kinds
// (e.g. "qor.rep"); consumers must ignore kinds they do not understand.
const (
	KindRunStart   = "run.start"
	KindRunEnd     = "run.end"
	KindStageStart = "stage.start"
	KindStageEnd   = "stage.end"
	KindWarning    = "warning"
	KindFailure    = "failure"
	KindArtifact   = "artifact"
	// KindSignoff records a functional signoff check: an independent
	// re-verification (e.g. gate-level simulation cross-checked against AIG
	// simulation) passing or failing on a flow result.
	KindSignoff = "signoff"
	// KindAttribution carries a QoR attribution report (internal/explain)
	// as its structured detail payload.
	KindAttribution = "attribution"
	// KindProgress is a periodic progress heartbeat from a registered
	// stage task (done/total/rate/eta in attrs); the -progress flag's
	// reporter emits one per live task per interval.
	KindProgress = "progress"
	// KindStall is the watchdog's post-mortem of a stage that went silent
	// past its deadline; the detail payload is an obs.StallReport
	// (goroutine dump, active span stack, registry snapshot).
	KindStall = "stall"
	// KindCost carries the flush-time cost-attribution tree: one summary
	// event (report totals in attrs, no detail) followed by one event per
	// tree node whose detail payload is the obs.CostNode sans children.
	// cryoobs cost relinks the tree from the node paths.
	KindCost = "cost"
)

// Journal is an append-only JSONL event writer. All methods are safe for
// concurrent use and nil-safe: a nil *Journal ignores every call, which is
// what J() hands out while journaling is disabled — so instrumentation
// sites need no guards and the disabled hot path is one atomic pointer
// load.
type Journal struct {
	runID string
	seq   atomic.Uint64

	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer // nil when the journal does not own the sink
	failed bool      // first write error was logged; drop further events
	closed bool
	// arts mirrors the artifact provenance events in memory (path ->
	// SHA-256) so the -history record can key the run by its outputs.
	arts map[string]string
}

var globalJournal atomic.Pointer[Journal]

// NewJournal wraps an arbitrary writer as a journal with the given run ID
// (tests and in-memory consumers). When w also implements io.Closer,
// Close closes it.
func NewJournal(w io.Writer, runID string) *Journal {
	j := &Journal{runID: runID, w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// NewRunID returns a fresh random run identifier ("r-<12 hex>").
func NewRunID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived ID; uniqueness is best-effort.
		return fmt.Sprintf("r-%012x", uint64(time.Now().UnixNano())&0xffffffffffff)
	}
	return "r-" + hex.EncodeToString(b[:])
}

// EnableJournal opens (creating or truncating) the journal file at path and
// installs it as the process-global journal, keeping the current one if
// already enabled.
func EnableJournal(path string) (*Journal, error) {
	if j := globalJournal.Load(); j != nil {
		return j, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: journal: %w", err)
	}
	j := NewJournal(f, NewRunID())
	if !globalJournal.CompareAndSwap(nil, j) {
		f.Close()
		os.Remove(path)
		return globalJournal.Load(), nil
	}
	return j, nil
}

// SetJournal installs j (possibly nil) as the process-global journal and
// returns the previous one. Tests use it to capture events in memory.
func SetJournal(j *Journal) *Journal {
	return globalJournal.Swap(j)
}

// DisableJournal flushes, closes, and removes the global journal.
func DisableJournal() {
	if j := globalJournal.Swap(nil); j != nil {
		j.Close()
	}
}

// J returns the global journal, or nil when journaling is disabled. All
// Journal methods are nil-safe.
func J() *Journal { return globalJournal.Load() }

// JournalEnabled reports whether a global journal is installed. Call sites
// that must assemble attributes before emitting should guard on this (or on
// J() != nil) to keep the disabled path allocation-free.
func JournalEnabled() bool { return globalJournal.Load() != nil }

// RunID returns the journal's run identifier ("" for nil).
func (j *Journal) RunID() string {
	if j == nil {
		return ""
	}
	return j.runID
}

// Event appends one journal event. kind classifies it (see the Kind
// constants), stage correlates with the span taxonomy, and attrs may be
// nil.
func (j *Journal) Event(kind, stage, msg string, attrs map[string]string) {
	j.emit(kind, stage, msg, attrs, nil)
}

// EventDetail appends an event with a structured detail payload, which is
// marshalled to JSON.
func (j *Journal) EventDetail(kind, stage, msg string, attrs map[string]string, detail any) {
	j.emit(kind, stage, msg, attrs, detail)
}

// Warning appends a warning event.
func (j *Journal) Warning(stage, msg string, attrs map[string]string) {
	j.emit(KindWarning, stage, msg, attrs, nil)
}

// Failure appends a failure event, optionally carrying a structured
// diagnosis in detail.
func (j *Journal) Failure(stage, msg string, attrs map[string]string, detail any) {
	j.emit(KindFailure, stage, msg, attrs, detail)
}

// StageStart appends a stage.start event.
func (j *Journal) StageStart(stage string) {
	j.emit(KindStageStart, stage, "", nil, nil)
}

// StageEnd appends a stage.end event recording the stage's wall time.
func (j *Journal) StageEnd(stage string, seconds float64) {
	if j == nil {
		return
	}
	j.emit(KindStageEnd, stage, "", map[string]string{
		"seconds": strconv.FormatFloat(seconds, 'g', 6, 64),
	}, nil)
}

// Artifact appends a provenance event for a produced file: its path,
// SHA-256, and size. Unreadable artifacts are recorded as warnings rather
// than silently dropped.
func (j *Journal) Artifact(stage, path string) {
	if j == nil {
		return
	}
	sum, size, err := fileSHA256(path)
	if err != nil {
		j.Warning(stage, "artifact unreadable: "+err.Error(), map[string]string{"path": path})
		return
	}
	j.mu.Lock()
	if j.arts == nil {
		j.arts = map[string]string{}
	}
	j.arts[path] = sum
	j.mu.Unlock()
	j.emit(KindArtifact, stage, "", map[string]string{
		"path":   path,
		"sha256": sum,
		"bytes":  strconv.FormatInt(size, 10),
	}, nil)
}

// Artifacts returns a copy of the recorded artifact provenance
// (path -> SHA-256); nil journal or no artifacts yields nil.
func (j *Journal) Artifacts() map[string]string {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.arts) == 0 {
		return nil
	}
	out := make(map[string]string, len(j.arts))
	for k, v := range j.arts {
		out[k] = v
	}
	return out
}

func fileSHA256(path string) (sum string, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

func (j *Journal) emit(kind, stage, msg string, attrs map[string]string, detail any) {
	if j == nil {
		return
	}
	e := Event{
		Seq:   j.seq.Add(1),
		TNs:   time.Now().UnixNano(),
		Run:   j.runID,
		Kind:  kind,
		Stage: stage,
		Msg:   msg,
		Attrs: attrs,
	}
	if detail != nil {
		raw, err := json.Marshal(detail)
		if err != nil {
			e.Attrs = cloneAttrs(attrs)
			e.Attrs["detail_error"] = err.Error()
		} else {
			e.Detail = raw
		}
	}
	line, err := json.Marshal(&e)
	if err != nil {
		Log().Errorf("obs: journal: encoding event: %v", err)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.failed {
		return
	}
	_, err = j.w.Write(line)
	if err == nil {
		err = j.w.WriteByte('\n')
	}
	if err == nil && kind == KindFailure {
		// Failures are the events a post-mortem cannot afford to lose to a
		// subsequent crash; they are rare, so flushing each one is free.
		err = j.w.Flush()
	}
	if err != nil {
		// Journaling must never take the flow down: log once and go quiet.
		j.failed = true
		Log().Errorf("obs: journal: write failed, disabling: %v", err)
	}
}

func cloneAttrs(attrs map[string]string) map[string]string {
	out := make(map[string]string, len(attrs)+1)
	for k, v := range attrs {
		out[k] = v
	}
	return out
}

// Sync flushes buffered events to the underlying sink. Safe to call
// repeatedly and on nil.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.w.Flush()
}

// Close flushes and closes the journal; later events are dropped. Safe to
// call repeatedly and on nil.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.w.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadJournal decodes a JSONL journal stream. A malformed final line — the
// torn write of a crashed or killed process — is tolerated and dropped;
// malformed lines in the middle of the stream are an error.
func ReadJournal(r io.Reader) ([]Event, error) {
	return readJSONL[Event](r, "journal")
}

// ReadJournalFile reads a journal from disk via ReadJournal.
func ReadJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}
