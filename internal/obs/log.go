package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// LogLevel orders diagnostic severity.
type LogLevel int32

// Levels, least to most severe.
const (
	LogDebug LogLevel = iota
	LogInfo
	LogWarn
	LogError
)

func (l LogLevel) String() string {
	switch l {
	case LogDebug:
		return "DEBUG"
	case LogInfo:
		return "INFO"
	case LogWarn:
		return "WARN"
	default:
		return "ERROR"
	}
}

// Logger is a minimal leveled logger for library diagnostics, so internal
// packages never write to stderr directly. The default logger writes
// warnings and errors to stderr; CLIs raise or lower the level with
// -loglevel.
type Logger struct {
	level atomic.Int32

	mu sync.Mutex
	w  io.Writer
}

var defaultLogger = func() *Logger {
	l := &Logger{w: os.Stderr}
	l.level.Store(int32(LogWarn))
	return l
}()

// Log returns the process-global logger.
func Log() *Logger { return defaultLogger }

// SetLogLevel sets the global logger's minimum level.
func SetLogLevel(level LogLevel) { defaultLogger.level.Store(int32(level)) }

// SetLogOutput redirects the global logger (e.g. into a test buffer).
func SetLogOutput(w io.Writer) {
	defaultLogger.mu.Lock()
	defaultLogger.w = w
	defaultLogger.mu.Unlock()
}

// ParseLogLevel maps a flag string onto a level.
func ParseLogLevel(s string) (LogLevel, error) {
	switch s {
	case "debug":
		return LogDebug, nil
	case "info":
		return LogInfo, nil
	case "warn":
		return LogWarn, nil
	case "error":
		return LogError, nil
	}
	return LogWarn, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

func (l *Logger) logf(level LogLevel, format string, args ...any) {
	if l == nil || LogLevel(l.level.Load()) > level {
		return
	}
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s %-5s %s\n", time.Now().Format("15:04:05.000"), level, msg)
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LogDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LogInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LogWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LogError, format, args...) }

// Emitf writes a line tagged with the given level regardless of the
// configured minimum. It exists for explicitly requested diagnostics —
// env-var opt-ins like SPICE_DEBUG — so libraries can honor them locally
// without mutating the global log level out from under the user's
// -loglevel choice.
func (l *Logger) Emitf(level LogLevel, format string, args ...any) {
	if l == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s %-5s %s\n", time.Now().Format("15:04:05.000"), level, msg)
}

// DebugEnabled reports whether debug logs are being emitted, for call
// sites that would otherwise pay to format large values.
func (l *Logger) DebugEnabled() bool {
	return l != nil && LogLevel(l.level.Load()) <= LogDebug
}
