package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// CostLabelKey is the pprof goroutine label under which cost-attributed
// spans publish their tree path. Worker goroutines spawned inside a span
// inherit the label, so CPU profile samples stay sliceable by flow stage
// even deep inside the charlib/cec/gsim worker pools.
const CostLabelKey = "span"

// UnattributedPath is the pseudo-root that absorbs CPU profile samples
// carrying no span label (runtime background work, code outside any span).
const UnattributedPath = "(unattributed)"

// costCapture is the process-global cost-attribution state: a CPU profile
// accumulating into memory, plus a path-keyed table that ended spans fold
// their boundary deltas into. The table — not the tracer — is the source
// of truth for the report, so per-rep tracer resets (cryobench) cannot
// lose earlier repetitions' costs.
type costCapture struct {
	startTime time.Time
	startCPU  float64
	profiling bool // a CPU profile is running into prof

	mu         sync.Mutex
	prof       bytes.Buffer
	table      map[string]*costAgg
	finalized  bool
	cpuByPath  map[string]int64 // self CPU ns per span path, from the profile
	cpuTotalNs int64            // all profile samples, labeled or not
	window     time.Duration
	procCPU    float64
}

// costAgg accumulates the boundary deltas of every span instance sharing
// one tree path.
type costAgg struct {
	count      int64
	wall       time.Duration
	allocBytes int64
	allocObjs  int64
	gcCPUSec   float64
	counters   map[string]int64
}

var globalCost atomic.Pointer[costCapture]

// EnableCost turns on span-scoped cost attribution (keeping the current
// capture if already enabled). It implies metrics and tracing — deltas are
// meaningless without a registry, paths without spans — and starts an
// in-process CPU profile whose samples are later sliced by span label. If
// another CPU profile is already running (e.g. someone is fetching
// /debug/pprof/profile), attribution degrades to wall/alloc/counter deltas
// with a warning instead of failing.
func EnableCost() {
	if globalCost.Load() != nil {
		return
	}
	EnableMetrics()
	EnableTracing()
	cc := &costCapture{
		startTime: time.Now(),
		startCPU:  processCPUSeconds(),
		table:     map[string]*costAgg{},
	}
	if err := pprof.StartCPUProfile(&cc.prof); err != nil {
		Log().Warnf("obs: cost: CPU profile unavailable (%v); cost tree will carry no CPU columns", err)
	} else {
		cc.profiling = true
	}
	if !globalCost.CompareAndSwap(nil, cc) && cc.profiling {
		pprof.StopCPUProfile() // lost the race; release the profiler
	}
}

// CostEnabled reports whether cost attribution is capturing.
func CostEnabled() bool { return globalCost.Load() != nil }

// DisableCost stops the capture and discards the accumulated table (tests).
func DisableCost() {
	cc := globalCost.Swap(nil)
	if cc == nil {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.profiling && !cc.finalized {
		pprof.StopCPUProfile()
		cc.profiling = false
	}
}

// FinalizeCost stops the CPU profile and slices its samples by span label,
// fixing the report's CPU columns and window. Idempotent; called by the
// flag Flush before the cost report, history record, and journal events
// are produced. Capture of wall/alloc/counter deltas continues for spans
// still running, but CPU attribution is frozen at this point.
func FinalizeCost() {
	cc := globalCost.Load()
	if cc == nil {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.finalized {
		return
	}
	cc.finalized = true
	cc.window = time.Since(cc.startTime)
	cc.procCPU = processCPUSeconds() - cc.startCPU
	if !cc.profiling {
		return
	}
	pprof.StopCPUProfile()
	cc.profiling = false
	by, total, err := profileCPUByLabel(cc.prof.Bytes(), CostLabelKey)
	if err != nil {
		Log().Errorf("obs: cost: parsing CPU profile: %v", err)
	} else {
		cc.cpuByPath = by
		cc.cpuTotalNs = total
	}
	cc.prof.Reset()
}

// costStart is the boundary snapshot a span takes at Start while cost
// attribution is on; End diffs a fresh snapshot against it.
type costStart struct {
	allocBytes int64
	allocObjs  int64
	gcCPUSec   float64
	counters   map[string]int64
}

func takeCostStart() *costStart {
	cs := &costStart{}
	cs.allocBytes, cs.allocObjs, cs.gcCPUSec = readAllocCost()
	if r := Metrics(); r != nil {
		cs.counters = r.CounterValues()
	}
	return cs
}

// readAllocCost reads cumulative allocation volume and GC CPU time from
// runtime/metrics. These are process-wide monotonic totals; a span's delta
// therefore includes whatever ran concurrently with it (documented caveat
// — see docs/OBSERVABILITY.md).
func readAllocCost() (allocBytes, allocObjs int64, gcCPUSec float64) {
	s := []metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
		{Name: "/cpu/classes/gc/total:cpu-seconds"},
	}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		allocBytes = int64(s[0].Value.Uint64())
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		allocObjs = int64(s[1].Value.Uint64())
	}
	if s[2].Value.Kind() == metrics.KindFloat64 {
		gcCPUSec = s[2].Value.Float64()
	}
	return allocBytes, allocObjs, gcCPUSec
}

// foldCost folds one ended span's boundary deltas into the global table.
func foldCost(path string, wall time.Duration, start *costStart) {
	cc := globalCost.Load()
	if cc == nil || start == nil || path == "" {
		return
	}
	end := takeCostStart()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	foldDelta(cc.table, path, wall, start, end)
}

func foldDelta(table map[string]*costAgg, path string, wall time.Duration, start, end *costStart) {
	a := table[path]
	if a == nil {
		a = &costAgg{counters: map[string]int64{}}
		table[path] = a
	}
	a.count++
	a.wall += wall
	a.allocBytes += end.allocBytes - start.allocBytes
	a.allocObjs += end.allocObjs - start.allocObjs
	a.gcCPUSec += end.gcCPUSec - start.gcCPUSec
	for name, v := range end.counters {
		if d := v - start.counters[name]; d != 0 {
			a.counters[name] += d
		}
	}
}

// CostNode is one span path in the cost tree. Totals (CPUSec, AllocBytes,
// Counters, ...) cover the node and its whole subtree; the Self* fields are
// child-exclusive. CPU self cost is measured directly (profile samples
// labeled exactly this path) and totals are summed upward; every other
// dimension is measured as a boundary delta at the span (so the total is
// exact) and self is derived by subtracting the children, clamped at zero.
type CostNode struct {
	Name string `json:"name"`
	Path string `json:"path"`
	// Count is how many span instances folded into this path.
	Count            int64            `json:"count,omitempty"`
	WallSec          float64          `json:"wall_seconds,omitempty"`
	CPUSec           float64          `json:"cpu_seconds,omitempty"`
	SelfCPUSec       float64          `json:"self_cpu_seconds,omitempty"`
	AllocBytes       int64            `json:"alloc_bytes,omitempty"`
	SelfAllocBytes   int64            `json:"self_alloc_bytes,omitempty"`
	AllocObjects     int64            `json:"alloc_objects,omitempty"`
	SelfAllocObjects int64            `json:"self_alloc_objects,omitempty"`
	GCCPUSec         float64          `json:"gc_cpu_seconds,omitempty"`
	SelfGCCPUSec     float64          `json:"self_gc_cpu_seconds,omitempty"`
	Counters         map[string]int64 `json:"counters,omitempty"`
	SelfCounters     map[string]int64 `json:"self_counters,omitempty"`
	Children         []*CostNode      `json:"children,omitempty"`
}

// CostReport is the rendered cost tree plus the process-level totals the
// attribution is checked against.
type CostReport struct {
	WindowSec float64 `json:"window_seconds"`
	// ProcessCPUSec is getrusage user+system CPU over the capture window —
	// the ground truth the attributed tree should approach.
	ProcessCPUSec float64 `json:"process_cpu_seconds"`
	// ProfiledCPUSec sums every CPU profile sample, labeled or not.
	ProfiledCPUSec float64 `json:"profiled_cpu_seconds"`
	// CPUAttributed is false when the CPU profile could not run (another
	// profiler held the lock) or has not been finalized yet (/costs during
	// the run): CPU columns are absent, the other dimensions still stand.
	CPUAttributed bool        `json:"cpu_attributed"`
	Roots         []*CostNode `json:"roots"`
}

// BuildCostReport assembles the cost tree from the folded table (nil when
// cost attribution is off). includeLive also folds still-open spans'
// deltas in provisionally — flush and the /costs endpoint want the tree to
// cover the root span even though it only ends at exit.
func BuildCostReport(includeLive bool) *CostReport {
	cc := globalCost.Load()
	if cc == nil {
		return nil
	}
	cc.mu.Lock()
	table := make(map[string]*costAgg, len(cc.table))
	for k, v := range cc.table {
		cp := *v
		cp.counters = make(map[string]int64, len(v.counters))
		for n, c := range v.counters {
			cp.counters[n] = c
		}
		table[k] = &cp
	}
	cpuByPath := cc.cpuByPath
	cpuTotalNs := cc.cpuTotalNs
	finalized := cc.finalized
	window := cc.window
	procCPU := cc.procCPU
	cc.mu.Unlock()
	if !finalized {
		window = time.Since(cc.startTime)
		procCPU = processCPUSeconds() - cc.startCPU
	}
	if includeLive {
		foldOpenSpans(table)
	}
	rep := &CostReport{
		WindowSec:      round6(window.Seconds()),
		ProcessCPUSec:  round6(procCPU),
		ProfiledCPUSec: round6(float64(cpuTotalNs) / 1e9),
		CPUAttributed:  cpuByPath != nil,
		Roots:          buildCostTree(table, cpuByPath, cpuTotalNs),
	}
	return rep
}

// foldOpenSpans folds every still-open cost-tracked span's current deltas
// into the (caller-local) table. A span that ends concurrently is either
// seen as ended here (its fold raced into the global table, possibly after
// our copy — at worst this snapshot misses it) or folded provisionally —
// never both, since End clears the snapshot under the span lock.
func foldOpenSpans(table map[string]*costAgg) {
	t := Tracing()
	if t == nil {
		return
	}
	var end *costStart
	var walk func(s *Span)
	walk = func(s *Span) {
		s.mu.Lock()
		start := s.cost
		path := s.path
		elapsed := time.Since(s.start)
		open := !s.ended && start != nil && path != ""
		s.mu.Unlock()
		if open {
			if end == nil {
				end = takeCostStart()
			}
			foldDelta(table, path, elapsed, start, end)
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
}

// buildCostTree turns the flat path table and the profile's per-path CPU
// into the linked, rolled-up, deterministically sorted tree.
func buildCostTree(table map[string]*costAgg, cpuByPath map[string]int64, cpuTotalNs int64) []*CostNode {
	nodes := map[string]*CostNode{}
	var ensure func(path string) *CostNode
	ensure = func(path string) *CostNode {
		if n := nodes[path]; n != nil {
			return n
		}
		n := &CostNode{Path: path, Name: path}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			n.Name = path[i+1:]
			p := ensure(path[:i])
			p.Children = append(p.Children, n)
		}
		nodes[path] = n
		return n
	}
	for path, a := range table {
		n := ensure(path)
		n.Count = a.count
		n.WallSec = round6(a.wall.Seconds())
		n.AllocBytes = a.allocBytes
		n.AllocObjects = a.allocObjs
		n.GCCPUSec = round6(a.gcCPUSec)
		if len(a.counters) > 0 {
			n.Counters = make(map[string]int64, len(a.counters))
			for k, v := range a.counters {
				n.Counters[k] = v
			}
		}
	}
	var labeledNs int64
	for path, ns := range cpuByPath {
		n := ensure(path)
		n.SelfCPUSec = round6(float64(ns) / 1e9)
		labeledNs += ns
	}
	if un := cpuTotalNs - labeledNs; un > 0 {
		ensure(UnattributedPath).SelfCPUSec = round6(float64(un) / 1e9)
	}

	var roots []*CostNode
	for path, n := range nodes {
		if !strings.Contains(path, "/") {
			roots = append(roots, n)
		}
	}
	for _, r := range roots {
		rollupCost(r)
	}
	sortCostNodes(roots)
	return roots
}

// rollupCost computes subtree totals and child-exclusive self costs in
// post-order. A path that never folded a boundary delta of its own (e.g.
// its span is still open and live folding was off) inherits its children's
// sums so the column stays meaningful.
func rollupCost(n *CostNode) {
	var cpu, wall, gc float64
	var bytes, objs int64
	chCounters := map[string]int64{}
	for _, c := range n.Children {
		rollupCost(c)
		cpu += c.CPUSec
		wall += c.WallSec
		gc += c.GCCPUSec
		bytes += c.AllocBytes
		objs += c.AllocObjects
		for k, v := range c.Counters {
			chCounters[k] += v
		}
	}
	n.CPUSec = round6(n.SelfCPUSec + cpu)
	if n.Count == 0 {
		n.WallSec = round6(wall)
		n.GCCPUSec = round6(gc)
		n.AllocBytes = bytes
		n.AllocObjects = objs
		if len(chCounters) > 0 {
			n.Counters = chCounters
		}
		return
	}
	n.SelfAllocBytes = clampPos(n.AllocBytes - bytes)
	n.SelfAllocObjects = clampPos(n.AllocObjects - objs)
	if d := n.GCCPUSec - gc; d > 0 {
		n.SelfGCCPUSec = round6(d)
	}
	for k, v := range n.Counters {
		if d := v - chCounters[k]; d > 0 {
			if n.SelfCounters == nil {
				n.SelfCounters = map[string]int64{}
			}
			n.SelfCounters[k] = d
		}
	}
}

func clampPos(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// sortCostNodes orders siblings hottest-first: by self CPU, then total
// CPU, then wall, then name — deterministic for goldens either way.
func sortCostNodes(ns []*CostNode) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i], ns[j]
		if a.SelfCPUSec != b.SelfCPUSec {
			return a.SelfCPUSec > b.SelfCPUSec
		}
		if a.CPUSec != b.CPUSec {
			return a.CPUSec > b.CPUSec
		}
		if a.WallSec != b.WallSec {
			return a.WallSec > b.WallSec
		}
		return a.Path < b.Path
	})
	for _, n := range ns {
		sortCostNodes(n.Children)
	}
}

// DefaultCostCounterGlobs selects the engine counters the text/markdown
// renderers show per node when the caller names none.
var DefaultCostCounterGlobs = []string{"spice.solver.*", "spice.newton.*", "sat.*", "charlib.cache.*"}

// CostRenderOptions tunes the text/markdown renderers.
type CostRenderOptions struct {
	// CounterGlobs selects which self-counter deltas appear per node ('*'
	// crosses separators, like trend globs). Nil means
	// DefaultCostCounterGlobs; an explicit empty slice hides counters.
	CounterGlobs []string
	// MaxCounters caps the counters shown per node (default 3).
	MaxCounters int
}

func (o CostRenderOptions) globs() []string {
	if o.CounterGlobs == nil {
		return DefaultCostCounterGlobs
	}
	return o.CounterGlobs
}

func (o CostRenderOptions) maxCounters() int {
	if o.MaxCounters <= 0 {
		return 3
	}
	return o.MaxCounters
}

// WriteText renders the report as an indented cost tree sorted by self
// CPU, one row per span path, with per-node engine-counter deltas.
func (r *CostReport) WriteText(w io.Writer, opts CostRenderOptions) error {
	ew := &costErrWriter{w: w}
	fmt.Fprintf(ew, "cost attribution: window %.3fs, process CPU %.3fs", r.WindowSec, r.ProcessCPUSec)
	if r.CPUAttributed {
		fmt.Fprintf(ew, ", profiled CPU %.3fs", r.ProfiledCPUSec)
	} else {
		fmt.Fprintf(ew, " (CPU columns unavailable)")
	}
	fmt.Fprintln(ew)
	fmt.Fprintln(ew)

	type row struct {
		depth int
		n     *CostNode
	}
	var rows []row
	var flatten func(n *CostNode, depth int)
	flatten = func(n *CostNode, depth int) {
		rows = append(rows, row{depth, n})
		for _, c := range n.Children {
			flatten(c, depth+1)
		}
	}
	for _, n := range r.Roots {
		flatten(n, 0)
	}
	nameW := len("span")
	for _, rw := range rows {
		if l := 2*rw.depth + len(rw.n.Name); l > nameW {
			nameW = l
		}
	}
	fmt.Fprintf(ew, "%-*s  %6s  %9s  %9s  %9s  %9s  %10s  counters\n",
		nameW, "span", "count", "self-cpu", "cpu", "wall", "gc-cpu", "allocs")
	for _, rw := range rows {
		n := rw.n
		fmt.Fprintf(ew, "%-*s  %6s  %9s  %9s  %9s  %9s  %10s  %s\n",
			nameW, strings.Repeat("  ", rw.depth)+n.Name,
			zeroDash(n.Count),
			costSeconds(n.SelfCPUSec, r.CPUAttributed),
			costSeconds(n.CPUSec, r.CPUAttributed),
			costSeconds(n.WallSec, true),
			costSeconds(n.GCCPUSec, true),
			humanBytes(n.AllocBytes),
			formatCounters(n.SelfCounters, opts))
	}
	return ew.err
}

// WriteMarkdown renders the report as a markdown table (depth shown by
// indentation inside the span column).
func (r *CostReport) WriteMarkdown(w io.Writer, opts CostRenderOptions) error {
	ew := &costErrWriter{w: w}
	fmt.Fprintln(ew, "## Cost attribution")
	fmt.Fprintln(ew)
	fmt.Fprintf(ew, "window %.3fs · process CPU %.3fs · profiled CPU %.3fs\n", r.WindowSec, r.ProcessCPUSec, r.ProfiledCPUSec)
	fmt.Fprintln(ew)
	fmt.Fprintln(ew, "| span | count | self cpu | cpu | wall | gc cpu | allocs | counters |")
	fmt.Fprintln(ew, "|---|---:|---:|---:|---:|---:|---:|---|")
	var walk func(n *CostNode, depth int)
	walk = func(n *CostNode, depth int) {
		fmt.Fprintf(ew, "| %s%s | %s | %s | %s | %s | %s | %s | %s |\n",
			strings.Repeat("&nbsp;&nbsp;", depth), n.Name,
			zeroDash(n.Count),
			costSeconds(n.SelfCPUSec, r.CPUAttributed),
			costSeconds(n.CPUSec, r.CPUAttributed),
			costSeconds(n.WallSec, true),
			costSeconds(n.GCCPUSec, true),
			humanBytes(n.AllocBytes),
			formatCounters(n.SelfCounters, opts))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, n := range r.Roots {
		walk(n, 0)
	}
	return ew.err
}

// WriteJSON emits the full report, tree and all.
func (r *CostReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func zeroDash(v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func costSeconds(v float64, avail bool) string {
	if !avail {
		return "-"
	}
	return fmt.Sprintf("%.3fs", v)
}

// humanBytes renders a byte count with a binary-prefix unit.
func humanBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// formatCounters renders the top self-counter deltas matching the options'
// globs, largest first, as "name +delta" pairs.
func formatCounters(counters map[string]int64, opts CostRenderOptions) string {
	if len(counters) == 0 {
		return ""
	}
	type kv struct {
		k string
		v int64
	}
	var sel []kv
	globs := opts.globs()
	for k, v := range counters {
		for _, g := range globs {
			if costGlobMatch(g, k) {
				sel = append(sel, kv{k, v})
				break
			}
		}
	}
	if len(sel) == 0 {
		return ""
	}
	sort.Slice(sel, func(i, j int) bool {
		if sel[i].v != sel[j].v {
			return sel[i].v > sel[j].v
		}
		return sel[i].k < sel[j].k
	})
	if max := opts.maxCounters(); len(sel) > max {
		sel = sel[:max]
	}
	parts := make([]string, len(sel))
	for i, s := range sel {
		parts[i] = fmt.Sprintf("%s +%d", s.k, s.v)
	}
	return strings.Join(parts, ", ")
}

// costGlobMatch mirrors the trend glob semantics: '*' matches any run of
// characters including separators, anchored at both ends. (Duplicated from
// internal/forensics, which imports obs and so cannot be imported back.)
func costGlobMatch(pattern, name string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	for _, p := range parts[1 : len(parts)-1] {
		i := strings.Index(name, p)
		if i < 0 {
			return false
		}
		name = name[i+len(p):]
	}
	return strings.HasSuffix(name, parts[len(parts)-1])
}

// JournalCost emits the report into the journal as typed cost events: one
// summary event (report totals in attrs, no detail) followed by one event
// per node in preorder, each carrying the node sans children as its detail
// payload. cryoobs cost relinks the tree from the node paths.
func (r *CostReport) JournalCost(j *Journal) {
	if j == nil || r == nil {
		return
	}
	n := 0
	var count func(ns []*CostNode)
	count = func(ns []*CostNode) {
		for _, c := range ns {
			n++
			count(c.Children)
		}
	}
	count(r.Roots)
	j.Event(KindCost, "", "cost report", map[string]string{
		"window_seconds":       fmt.Sprintf("%g", r.WindowSec),
		"process_cpu_seconds":  fmt.Sprintf("%g", r.ProcessCPUSec),
		"profiled_cpu_seconds": fmt.Sprintf("%g", r.ProfiledCPUSec),
		"cpu_attributed":       fmt.Sprintf("%t", r.CPUAttributed),
		"nodes":                fmt.Sprintf("%d", n),
	})
	var walk func(node *CostNode)
	walk = func(node *CostNode) {
		flat := *node
		flat.Children = nil
		j.EventDetail(KindCost, node.Name, node.Path, nil, &flat)
		for _, c := range node.Children {
			walk(c)
		}
	}
	for _, root := range r.Roots {
		walk(root)
	}
}

// StageCost is the per-stage cost rollup appended to -history records: the
// child-exclusive costs of every node sharing one span name, summed. Self
// costs (not totals) keep the column additive — nested stages never double
// count — so cryoobs trend can flag e.g. allocs-per-stage doubling even
// when wall time hides inside its noise band.
type StageCost struct {
	SelfCPUSec       float64 `json:"self_cpu_seconds,omitempty"`
	WallSec          float64 `json:"wall_seconds,omitempty"`
	SelfAllocBytes   int64   `json:"self_alloc_bytes,omitempty"`
	SelfAllocObjects int64   `json:"self_alloc_objects,omitempty"`
	GCCPUSec         float64 `json:"gc_cpu_seconds,omitempty"`
}

// StageCosts aggregates the tree by span name.
func (r *CostReport) StageCosts() map[string]StageCost {
	if r == nil {
		return nil
	}
	out := map[string]StageCost{}
	var walk func(n *CostNode)
	walk = func(n *CostNode) {
		c := out[n.Name]
		c.SelfCPUSec = round6(c.SelfCPUSec + n.SelfCPUSec)
		c.WallSec = round6(c.WallSec + n.WallSec)
		c.SelfAllocBytes += n.SelfAllocBytes
		c.SelfAllocObjects += n.SelfAllocObjects
		c.GCCPUSec = round6(c.GCCPUSec + n.SelfGCCPUSec)
		out[n.Name] = c
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, n := range r.Roots {
		walk(n)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// costErrWriter latches the first write error so renderers can check once.
type costErrWriter struct {
	w   io.Writer
	err error
}

func (e *costErrWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
