package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// HistogramSnapshot is the serializable state of one Histogram. Buckets is
// sparse (log-bucket index -> count), so small histograms stay small on
// disk; min/max are omitted from JSON when the histogram is empty (the
// in-memory sentinels are ±Inf, which JSON cannot carry).
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min,omitempty"`
	Max     float64       `json:"max,omitempty"`
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a Registry, suitable for JSON
// persistence, cross-run diffing, and restoring into a fresh registry.
// Tools that want to ingest another run's engine counters (cryobench, say)
// read the JSON back with ReadSnapshot and either Diff or Restore it.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value. A nil registry yields an
// empty (but usable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		if hs.Count > 0 {
			hs.Min, hs.Max = h.Min(), h.Max()
			hs.Buckets = map[int]int64{}
			for i := range h.buckets {
				if c := h.buckets[i].Load(); c != 0 {
					hs.Buckets[i] = c
				}
			}
		}
		s.Histograms[k.(string)] = hs
		return true
	})
	return s
}

// Restore loads a snapshot into the registry, overwriting any metric the
// snapshot names (metrics absent from the snapshot are left alone). The
// histogram restore is exact: bucket contents, count, sum, min, and max all
// round-trip. A nil registry ignores the call.
func (r *Registry) Restore(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	for name, v := range s.Counters {
		c := r.Counter(name)
		c.v.Store(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Histograms {
		h := r.Histogram(name)
		h.count.Store(hs.Count)
		h.sumBits.Store(math.Float64bits(hs.Sum))
		if hs.Count > 0 {
			h.minBits.Store(math.Float64bits(hs.Min))
			h.maxBits.Store(math.Float64bits(hs.Max))
		} else {
			h.minBits.Store(math.Float64bits(math.Inf(1)))
			h.maxBits.Store(math.Float64bits(math.Inf(-1)))
		}
		for i := range h.buckets {
			h.buckets[i].Store(hs.Buckets[i])
		}
	}
}

// Diff returns the change from prev to s: counters and histogram
// counts/sums/buckets are subtracted, gauges keep s's (latest) value.
// Metrics that only exist in prev are dropped; metrics new in s keep their
// full value. Min/max of differenced histograms are taken from s, the best
// available bound.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	if prev == nil {
		return s
	}
	out := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, hs := range s.Histograms {
		ps := prev.Histograms[name]
		d := HistogramSnapshot{Count: hs.Count - ps.Count, Sum: hs.Sum - ps.Sum}
		if d.Count > 0 {
			d.Min, d.Max = hs.Min, hs.Max
			d.Buckets = map[int]int64{}
			for i, c := range hs.Buckets {
				if dc := c - ps.Buckets[i]; dc != 0 {
					d.Buckets[i] = dc
				}
			}
		}
		out.Histograms[name] = d
	}
	return out
}

// WriteJSON serializes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{}
	if err := json.NewDecoder(r).Decode(s); err != nil {
		return nil, fmt.Errorf("obs: parsing snapshot: %w", err)
	}
	return s, nil
}
