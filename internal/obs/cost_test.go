package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// resetCostState tears down every subsystem a cost test may have enabled.
func resetCostState() {
	DisableCost()
	DisableTracing()
	DisableMetrics()
}

// burnCPU spins for roughly d so the 100 Hz CPU profiler can land samples
// on the calling goroutine's current labels.
func burnCPU(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 10000; i++ {
			x = x*1.000001 + 1
		}
	}
	_ = x
}

// TestCostAttribution drives the whole capture end to end: nested spans, a
// worker goroutine spawned inside a child span (label inheritance), engine
// counters bumped inside one child — then checks the tree shape, the
// counter deltas landing on the right subtree and not its sibling, and
// (when the profiler sampled at all) CPU landing under the labeled path.
func TestCostAttribution(t *testing.T) {
	resetCostState()
	defer resetCostState()
	EnableCost()
	if !CostEnabled() {
		t.Fatal("EnableCost did not enable cost attribution")
	}

	ctx, root := Start(context.Background(), "flow")
	_, char := Start(ctx, "charlib")
	C("spice.solver.factor").Add(104)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // inherits charlib's goroutine labels
		defer wg.Done()
		burnCPU(150 * time.Millisecond)
	}()
	wg.Wait()
	char.End()
	_, sib := Start(ctx, "sibling")
	sib.End()
	root.End()

	FinalizeCost()
	rep := BuildCostReport(false)
	if rep == nil {
		t.Fatal("BuildCostReport returned nil while cost is enabled")
	}
	if len(rep.Roots) == 0 {
		t.Fatal("cost report has no roots")
	}
	var flow *CostNode
	for _, r := range rep.Roots {
		if r.Name == "flow" {
			flow = r
		}
	}
	if flow == nil {
		t.Fatalf("no 'flow' root in %+v", rep.Roots)
	}
	var charNode, sibNode *CostNode
	for _, c := range flow.Children {
		switch c.Name {
		case "charlib":
			charNode = c
		case "sibling":
			sibNode = c
		}
	}
	if charNode == nil || sibNode == nil {
		t.Fatalf("flow children missing: %+v", flow.Children)
	}

	// Counter deltas must land on the charlib subtree, not its sibling.
	if got := charNode.Counters["spice.solver.factor"]; got != 104 {
		t.Errorf("charlib spice.solver.factor = %d, want 104", got)
	}
	if got := sibNode.Counters["spice.solver.factor"]; got != 0 {
		t.Errorf("sibling stole spice.solver.factor = %d, want 0", got)
	}
	if got := flow.Counters["spice.solver.factor"]; got != 104 {
		t.Errorf("flow rollup spice.solver.factor = %d, want 104", got)
	}
	// flow itself incremented nothing: its self counter must be empty.
	if got := flow.SelfCounters["spice.solver.factor"]; got != 0 {
		t.Errorf("flow self counter = %d, want 0", got)
	}
	if charNode.WallSec < 0.1 {
		t.Errorf("charlib wall = %gs, want >= 0.1s", charNode.WallSec)
	}
	if flow.WallSec < charNode.WallSec {
		t.Errorf("flow wall %g < charlib wall %g", flow.WallSec, charNode.WallSec)
	}

	if rep.ProfiledCPUSec == 0 {
		t.Log("profiler landed no samples; skipping CPU attribution checks")
		return
	}
	if !rep.CPUAttributed {
		t.Fatal("profile ran but CPUAttributed is false")
	}
	// The worker goroutine inherited flow/charlib labels, so the burn must
	// be attributed under charlib, and the tree total must carry most of the
	// profiled CPU (the acceptance bound is 10% on a real flow; here we only
	// require the burn to dominate).
	if charNode.CPUSec < flow.CPUSec/2 {
		t.Errorf("charlib CPU %gs < half of flow CPU %gs", charNode.CPUSec, flow.CPUSec)
	}
	if flow.CPUSec <= 0 {
		t.Errorf("flow total CPU = %g, want > 0", flow.CPUSec)
	}
	if rep.ProcessCPUSec <= 0 {
		t.Errorf("process CPU = %g, want > 0", rep.ProcessCPUSec)
	}
}

// TestCostSurvivesTracerReset pins the fold-at-End design: cryobench swaps
// tracers per repetition, and costs folded before the swap must still be in
// the report.
func TestCostSurvivesTracerReset(t *testing.T) {
	resetCostState()
	defer resetCostState()
	EnableCost()

	_, s1 := Start(context.Background(), "rep")
	s1.End()
	ResetTracing()
	_, s2 := Start(context.Background(), "rep")
	s2.End()

	rep := BuildCostReport(false)
	var node *CostNode
	for _, r := range rep.Roots {
		if r.Path == "rep" {
			node = r
		}
	}
	if node == nil {
		t.Fatalf("no 'rep' root: %+v", rep.Roots)
	}
	if node.Count != 2 {
		t.Errorf("rep count = %d, want 2 (fold must survive ResetTracing)", node.Count)
	}
}

// TestCostIncludeLive: an open span only appears when live folding is
// requested (the /costs endpoint and flush want provisional numbers).
func TestCostIncludeLive(t *testing.T) {
	resetCostState()
	defer resetCostState()
	EnableCost()

	_, open := Start(context.Background(), "live.root")
	defer open.End()

	rep := BuildCostReport(false)
	for _, r := range rep.Roots {
		if r.Path == "live.root" {
			t.Errorf("open span folded without includeLive: %+v", r)
		}
	}
	rep = BuildCostReport(true)
	found := false
	for _, r := range rep.Roots {
		if r.Path == "live.root" {
			found = true
			if r.Count != 1 {
				t.Errorf("live fold count = %d, want 1", r.Count)
			}
		}
	}
	if !found {
		t.Error("includeLive did not fold the open span")
	}
}

// TestStageCosts checks the per-name history rollup stays additive (self
// costs only) and keys by name, not path.
func TestStageCosts(t *testing.T) {
	rep := &CostReport{Roots: []*CostNode{{
		Name: "flow", Path: "flow", Count: 1, SelfCPUSec: 0.5, WallSec: 2,
		Children: []*CostNode{
			{Name: "stage", Path: "flow/stage", Count: 3, SelfCPUSec: 1, WallSec: 1, SelfAllocBytes: 100},
			{Name: "stage", Path: "flow/other/stage", Count: 1, SelfCPUSec: 0.25, WallSec: 0.5, SelfAllocBytes: 50},
		},
	}}}
	sc := rep.StageCosts()
	if got := sc["stage"]; got.SelfCPUSec != 1.25 || got.SelfAllocBytes != 150 || got.WallSec != 1.5 {
		t.Errorf("stage cost = %+v, want self cpu 1.25, bytes 150, wall 1.5", got)
	}
	if got := sc["flow"]; got.SelfCPUSec != 0.5 {
		t.Errorf("flow cost = %+v", got)
	}
}

// TestCostFlagLifecycle drives the -cost flag end to end: Activate enables
// capture, Flush finalizes, writes the report file, emits journal cost
// events exactly once, and stamps stage costs + peak RSS + GC pause into
// the history record.
func TestCostFlagLifecycle(t *testing.T) {
	resetCostState()
	defer resetCostState()
	var sink journalSink
	prev := SetJournal(NewJournal(&sink, "r-cost"))
	defer func() { SetJournal(prev).Close() }()

	dir := t.TempDir()
	costPath := filepath.Join(dir, "cost.txt")
	histPath := filepath.Join(dir, "history.jsonl")
	f := &Flags{CostPath: costPath, HistoryPath: histPath}
	flush, err := f.Activate()
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	if !CostEnabled() || !MetricsEnabled() || Tracing() == nil {
		t.Fatal("-cost must enable cost, metrics, and tracing")
	}

	ctx, root := Start(context.Background(), "lifecycle")
	_, child := Start(ctx, "lifecycle.child")
	C("lifecycle.counter").Add(3)
	child.End()
	root.End()

	flush()
	flush() // must not double-journal

	data, err := os.ReadFile(costPath)
	if err != nil {
		t.Fatalf("cost report file: %v", err)
	}
	if !strings.Contains(string(data), "lifecycle.child") {
		t.Errorf("cost report missing span row:\n%s", data)
	}

	J().Sync()
	evs, err := ReadJournal(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	var summaries, nodes int
	for _, e := range evs {
		if e.Kind != KindCost {
			continue
		}
		if len(e.Detail) == 0 {
			summaries++
		} else {
			nodes++
		}
	}
	if summaries != 1 {
		t.Errorf("got %d cost summary events after double flush, want 1", summaries)
	}
	if nodes < 2 {
		t.Errorf("got %d cost node events, want >= 2 (lifecycle + child)", nodes)
	}

	recs, err := ReadHistoryFile(histPath)
	if err != nil || len(recs) != 1 {
		t.Fatalf("history: %v (%d records)", err, len(recs))
	}
	rec := recs[0]
	if _, ok := rec.Costs["lifecycle.child"]; !ok {
		t.Errorf("history record missing stage cost for lifecycle.child: %+v", rec.Costs)
	}
	if rec.PeakRSSBytes == 0 {
		t.Errorf("history record missing peak RSS")
	}
	if rec.GCPauseTotalSec < 0 {
		t.Errorf("negative GC pause total: %g", rec.GCPauseTotalSec)
	}
}

// TestCostRenderers smoke-tests the three renderers on a synthetic tree,
// including counter-glob filtering.
func TestCostRenderers(t *testing.T) {
	rep := &CostReport{
		WindowSec: 1, ProcessCPUSec: 0.8, ProfiledCPUSec: 0.7, CPUAttributed: true,
		Roots: []*CostNode{{
			Name: "flow", Path: "flow", Count: 1, WallSec: 1, CPUSec: 0.7, SelfCPUSec: 0.1,
			AllocBytes: 4096,
			Children: []*CostNode{{
				Name: "spice", Path: "flow/spice", Count: 9, WallSec: 0.9, CPUSec: 0.6, SelfCPUSec: 0.6,
				SelfCounters: map[string]int64{"spice.solver.factor": 42, "unrelated.counter": 7},
			}},
		}},
	}
	var text strings.Builder
	if err := rep.WriteText(&text, CostRenderOptions{}); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(text.String(), "spice.solver.factor +42") {
		t.Errorf("text missing engine counter:\n%s", text.String())
	}
	if strings.Contains(text.String(), "unrelated.counter") {
		t.Errorf("default globs leaked a non-engine counter:\n%s", text.String())
	}
	var md strings.Builder
	if err := rep.WriteMarkdown(&md, CostRenderOptions{CounterGlobs: []string{"*"}}); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	if !strings.Contains(md.String(), "| span |") || !strings.Contains(md.String(), "unrelated.counter +7") {
		t.Errorf("markdown table malformed:\n%s", md.String())
	}
	var js strings.Builder
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back CostReport
	if err := json.Unmarshal([]byte(js.String()), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back.Roots) != 1 || back.Roots[0].Children[0].Path != "flow/spice" {
		t.Errorf("JSON round trip lost tree shape: %+v", back.Roots)
	}
}

// TestQuantileEdgeCases pins Histogram.Quantile's boundary behavior: empty
// histogram, single observation, and the q=0 / q=1 extremes.
func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge")
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile(0.5) = %g, want 0", got)
	}
	h.Observe(3.25)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 3.25 {
			t.Errorf("single-obs Quantile(%g) = %g, want 3.25", q, got)
		}
	}
	h.Observe(1.5)
	h.Observe(9)
	if got := h.Quantile(0); got != 1.5 {
		t.Errorf("Quantile(0) = %g, want min 1.5", got)
	}
	if got := h.Quantile(-0.3); got != 1.5 {
		t.Errorf("Quantile(-0.3) = %g, want min 1.5", got)
	}
	if got := h.Quantile(1); got != 9 {
		t.Errorf("Quantile(1) = %g, want max 9", got)
	}
	if got := h.Quantile(2); got != 9 {
		t.Errorf("Quantile(2) = %g, want max 9", got)
	}
	if got := h.Quantile(0.5); got < 1.5 || got > 9 {
		t.Errorf("Quantile(0.5) = %g, outside observed range", got)
	}
}

// TestConcurrentCostExport serves /spans and /costs from the live mux while
// spans (with cost capture on) start and end concurrently; run under -race.
// Correctness is "no race, no panic, valid JSON with enabled=true".
func TestConcurrentCostExport(t *testing.T) {
	resetCostState()
	defer resetCostState()
	EnableCost()
	mux := obsMux()

	done := make(chan struct{})
	var exportWg sync.WaitGroup
	exportWg.Add(1)
	go func() {
		defer exportWg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			rw := httptest.NewRecorder()
			mux.ServeHTTP(rw, httptest.NewRequest("GET", "/costs", nil))
			var payload struct {
				Enabled bool        `json:"enabled"`
				Report  *CostReport `json:"report"`
			}
			if err := json.Unmarshal(rw.Body.Bytes(), &payload); err != nil {
				t.Errorf("/costs not valid JSON: %v\n%s", err, rw.Body.String())
				return
			}
			if !payload.Enabled || payload.Report == nil {
				t.Error("/costs reports disabled while cost capture is on")
				return
			}
			rw = httptest.NewRecorder()
			mux.ServeHTTP(rw, httptest.NewRequest("GET", "/spans", nil))
		}
	}()

	var spanWg sync.WaitGroup
	for w := 0; w < 4; w++ {
		spanWg.Add(1)
		go func(w int) {
			defer spanWg.Done()
			for i := 0; i < 50; i++ {
				ctx, outer := Start(context.Background(), "cost.outer")
				_, inner := Start(ctx, "cost.inner")
				C("cost.test.counter").Inc()
				inner.End()
				outer.End()
			}
		}(w)
	}
	spanWg.Wait()
	close(done)
	exportWg.Wait()

	rep := BuildCostReport(true)
	var outer *CostNode
	for _, r := range rep.Roots {
		if r.Path == "cost.outer" {
			outer = r
		}
	}
	if outer == nil || outer.Count != 200 {
		t.Fatalf("cost.outer fold incomplete: %+v", outer)
	}
	if len(outer.Children) != 1 || outer.Children[0].Count != 200 {
		t.Errorf("cost.inner fold incomplete: %+v", outer.Children)
	}
	if got := outer.Counters["cost.test.counter"]; got != 200 {
		t.Errorf("rolled-up counter = %d, want 200", got)
	}
}

// TestSpanPathLateEnable: spans opened before cost capture came on still
// produce correctly nested paths for their descendants.
func TestSpanPathLateEnable(t *testing.T) {
	resetCostState()
	defer resetCostState()
	EnableTracing()
	ctx, outer := Start(context.Background(), "early")
	defer outer.End()
	EnableCost()
	_, inner := Start(ctx, "late")
	if inner.path != "early/late" {
		t.Errorf("late-enable path = %q, want early/late", inner.path)
	}
	inner.End()
}
