package epfl

import "repro/internal/aig"

// Control-class benchmarks. The original EPFL control circuits come from
// real IP (I2C, memory controller, router, arbiter...); the generators here
// synthesize control logic of the same flavor and comparable structure —
// priority chains, decoders, round-robin masking, next-state functions —
// at reduced size.

// buildArbiter: round-robin arbiter over 64 requestors: a 6-bit rotating
// pointer masks the request vector; the highest-priority masked (or, if
// none, unmasked) request wins. One-hot grant outputs.
func buildArbiter() *aig.AIG {
	g := aig.New("arbiter")
	const n = 64
	req := inputWord(g, "req", n)
	ptr := inputWord(g, "ptr", 6)
	// thermometer mask: mask[i] = (i >= ptr).
	mask := make(Word, n)
	for i := 0; i < n; i++ {
		mask[i] = ge(g, constWord(6, uint64(i)), ptr)
	}
	masked := make(Word, n)
	for i := range masked {
		masked[i] = g.And(req[i], mask[i])
	}
	grantM := priorityOneHot(g, masked)
	grantU := priorityOneHot(g, req)
	anyMasked := g.Ors(masked...)
	grant := muxWords(g, anyMasked, grantM, grantU)
	outputWord(g, "gnt", grant)
	g.AddPO(g.Ors(req...), "busy")
	return g
}

// priorityOneHot returns the one-hot vector of the lowest-index set bit.
func priorityOneHot(g *aig.AIG, req Word) Word {
	out := make(Word, len(req))
	noneBefore := aig.True
	for i := range req {
		out[i] = g.And(req[i], noneBefore)
		noneBefore = g.And(noneBefore, req[i].Not())
	}
	return out
}

// buildCavlc: CAVLC-flavored coefficient-token encoder: counts of total
// coefficients and trailing ones select a variable-length code via nested
// range comparisons (the original decodes H.264 CAVLC tables).
func buildCavlc() *aig.AIG {
	g := aig.New("cavlc")
	total := inputWord(g, "tc", 5) // total coefficients 0..16
	ones := inputWord(g, "t1", 2)  // trailing ones 0..3
	nc := inputWord(g, "nc", 3)    // context
	// Code length: base from total-coeff ranges, adjusted by context and
	// trailing ones (piecewise function realized with comparators).
	len1 := ge(g, total, constWord(5, 3))
	len2 := ge(g, total, constWord(5, 6))
	len3 := ge(g, total, constWord(5, 11))
	ctxBig := ge(g, nc, constWord(3, 4))
	base := constWord(5, 1)
	base = muxWords(g, len1, constWord(5, 6), base)
	base = muxWords(g, len2, constWord(5, 9), base)
	base = muxWords(g, len3, constWord(5, 13), base)
	adj, _ := subWords(g, base, padWord(ones, 5))
	length := muxWords(g, ctxBig, constWord(5, 6), adj)
	// Code value: arithmetic mix of the fields.
	t16 := mulWords(g, padWord(total, 5), constWord(5, 2))
	code, _ := addWords(g, padWord(t16[:8], 8), padWord(ones, 8), aig.False)
	code = barrelShiftLeft(g, code, padWord(nc, 2))
	outputWord(g, "len", length)
	outputWord(g, "code", code)
	return g
}

// buildCtrl: instruction-decode control block: a 7-bit opcode drives 26
// control outputs through shared decode logic (mirrors the original's
// opcode-decoder role).
func buildCtrl() *aig.AIG {
	g := aig.New("ctrl")
	op := inputWord(g, "op", 7)
	// Decode classes.
	isLoad := matchPattern(g, op, 0b0000011, 0b1111111)
	isStore := matchPattern(g, op, 0b0100011, 0b1111111)
	isALU := matchPattern(g, op, 0b0110011, 0b1011111)
	isImm := matchPattern(g, op, 0b0010011, 0b1111111)
	isBranch := matchPattern(g, op, 0b1100011, 0b1111111)
	isJump := matchPattern(g, op, 0b1101111, 0b1101111)
	outs := []aig.Lit{
		isLoad, isStore, isALU, isImm, isBranch, isJump,
		g.Or(isLoad, isImm), g.Or(isALU, isImm),
		g.And(isBranch.Not(), isJump.Not()),
		g.Ors(isLoad, isStore),
		g.And(isALU, op[5]), g.And(isALU, op[6].Not()),
	}
	for i, o := range outs {
		g.AddPO(o, "c"+itoa(i))
	}
	// Write-enable vector: 14 registers gated by decode.
	for i := 0; i < 14; i++ {
		en := g.And(g.Or(isALU, isLoad), g.Xor(op[i%7], op[(i+3)%7]))
		g.AddPO(en, "we"+itoa(i))
	}
	return g
}

func matchPattern(g *aig.AIG, w Word, val, mask uint64) aig.Lit {
	m := aig.True
	for i := range w {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		bit := w[i]
		if val&(1<<uint(i)) == 0 {
			bit = bit.Not()
		}
		m = g.And(m, bit)
	}
	return m
}

// buildDec: 8-to-256 decoder with two-level predecode, the same function
// as EPFL's dec.
func buildDec() *aig.AIG {
	g := aig.New("dec")
	a := inputWord(g, "a", 8)
	lo := decode4(g, a[:4])
	hi := decode4(g, a[4:])
	for i := 0; i < 256; i++ {
		g.AddPO(g.And(lo[i&15], hi[i>>4]), "d"+itoa(i))
	}
	return g
}

func decode4(g *aig.AIG, a Word) []aig.Lit {
	out := make([]aig.Lit, 16)
	for i := range out {
		bits := make([]aig.Lit, 4)
		for k := 0; k < 4; k++ {
			bits[k] = a[k]
			if i&(1<<uint(k)) == 0 {
				bits[k] = bits[k].Not()
			}
		}
		out[i] = g.Ands(bits...)
	}
	return out
}

// buildI2c: I2C-controller-flavored next-state/status logic: command
// decode, bit counter increment, shift-register step, and status flags as
// pure combinational next-state functions.
func buildI2c() *aig.AIG {
	g := aig.New("i2c")
	cmd := inputWord(g, "cmd", 4)
	state := inputWord(g, "st", 5)
	cnt := inputWord(g, "cnt", 4)
	shreg := inputWord(g, "sh", 8)
	sdaIn := g.AddPI("sda")
	sclIn := g.AddPI("scl")

	isStart := matchPattern(g, cmd, 0b0001, 0b1111)
	isStop := matchPattern(g, cmd, 0b0010, 0b1111)
	isRead := matchPattern(g, cmd, 0b0100, 0b1111)
	isWrite := matchPattern(g, cmd, 0b1000, 0b1111)

	idle := equalWords(g, state, constWord(5, 0))
	// Next state: priority network over command/state/counter.
	cntDone := equalWords(g, cnt, constWord(4, 8))
	next := muxWords(g, isStart, constWord(5, 1), state)
	next = muxWords(g, g.And(isWrite, idle.Not()), constWord(5, 9), next)
	next = muxWords(g, g.And(isRead, idle.Not()), constWord(5, 17), next)
	next = muxWords(g, g.And(cntDone, isStop), constWord(5, 0), next)
	// Counter increment when clock high and not idle.
	inc, _ := addWords(g, cnt, constWord(4, 1), aig.False)
	nCnt := muxWords(g, g.And(sclIn, idle.Not()), inc, cnt)
	// Shift register: shift in SDA on reads, hold otherwise.
	shifted := make(Word, 8)
	shifted[0] = sdaIn
	for k := 1; k < 8; k++ {
		shifted[k] = shreg[k-1]
	}
	nSh := muxWords(g, isRead, shifted, shreg)
	outputWord(g, "nst", next)
	outputWord(g, "ncnt", nCnt)
	outputWord(g, "nsh", nSh)
	g.AddPO(g.And(cntDone, sclIn), "ack")
	g.AddPO(g.Ors(isStart, isStop, isRead, isWrite), "active")
	return g
}

// buildInt2float: converts a 12-bit unsigned integer to an 8-bit float
// (4-bit exponent, 4-bit mantissa) with truncation — the same conversion
// job as EPFL's int2float (which is 11-bit to 7-bit).
func buildInt2float() *aig.AIG {
	g := aig.New("int2float")
	const n = 12
	x := inputWord(g, "x", n)
	// Leading-one position.
	pos := constWord(4, 0)
	found := aig.False
	for i := n - 1; i >= 0; i-- {
		hit := g.And(x[i], found.Not())
		pos = muxWords(g, hit, constWord(4, uint64(i)), pos)
		found = g.Or(found, x[i])
	}
	// Mantissa: the 4 bits below the leading one, via left-normalization.
	shAmt, _ := subWords(g, constWord(4, n-1), pos)
	norm := barrelShiftLeft(g, x, shAmt)
	mant := norm[n-5 : n-1]
	// Exponent = pos (zero when input is zero).
	exp := muxWords(g, found, pos, constWord(4, 0))
	outputWord(g, "exp", exp)
	for i, m := range mant {
		g.AddPO(g.And(m, found), "man["+itoa(i)+"]")
	}
	return g
}

// buildMemCtrl: memory-controller-flavored logic: bank address decode, FIFO
// occupancy compare, refresh urgency priority, and a command mux over four
// banks with queued requests (the original is a full DDR controller's
// combinational core).
func buildMemCtrl() *aig.AIG {
	g := aig.New("mem_ctrl")
	const banks = 8
	addr := inputWord(g, "addr", 16)
	refCnt := inputWord(g, "ref", 8)
	var reqs []Word
	var occ []Word
	for b := 0; b < banks; b++ {
		reqs = append(reqs, inputWord(g, "q"+itoa(b), 6))
		occ = append(occ, inputWord(g, "o"+itoa(b), 4))
	}
	rowOpen := inputWord(g, "row", banks)

	bankSel := decodeBits(g, addr[13:16])
	refUrgent := ge(g, refCnt, constWord(8, 200))
	// Per-bank: ready when queue nonempty and occupancy below threshold.
	ready := make(Word, banks)
	for b := 0; b < banks; b++ {
		nonEmpty := equalWords(g, reqs[b], constWord(6, 0)).Not()
		room := ge(g, constWord(4, 12), occ[b])
		ready[b] = g.Ands(nonEmpty, room, refUrgent.Not())
	}
	grant := priorityOneHot(g, ready)
	// Command: activate if row closed, read/write if open.
	var rowHit aig.Lit = aig.False
	for b := 0; b < banks; b++ {
		rowHit = g.Or(rowHit, g.And(grant[b], rowOpen[b]))
	}
	// Selected queue depth.
	depth := onehotMux(g, grant, reqs)
	outputWord(g, "gnt", grant)
	outputWord(g, "depth", depth)
	outputWord(g, "bsel", bankSel)
	g.AddPO(rowHit, "rowhit")
	g.AddPO(refUrgent, "refresh")
	g.AddPO(g.Ors(ready...), "anyreq")
	return g
}

func decodeBits(g *aig.AIG, a Word) Word {
	n := 1 << uint(len(a))
	out := make(Word, n)
	for i := 0; i < n; i++ {
		bits := make([]aig.Lit, len(a))
		for k := range a {
			bits[k] = a[k]
			if i&(1<<uint(k)) == 0 {
				bits[k] = bits[k].Not()
			}
		}
		out[i] = g.Ands(bits...)
	}
	return out
}

// buildPriority: 128-bit priority encoder producing the index of the
// highest-priority request plus a valid flag (EPFL priority is 128-bit).
func buildPriority() *aig.AIG { return buildPriorityN(128) }

func buildPriorityN(n int) *aig.AIG {
	g := aig.New("priority")
	idxBits := 1
	for (1 << uint(idxBits)) < n {
		idxBits++
	}
	req := inputWord(g, "req", n)
	idx := constWord(idxBits, 0)
	found := aig.False
	for i := n - 1; i >= 0; i-- {
		hit := g.And(req[i], found.Not())
		idx = muxWords(g, hit, constWord(idxBits, uint64(i)), idx)
		found = g.Or(found, req[i])
	}
	outputWord(g, "idx", idx)
	g.AddPO(found, "valid")
	return g
}

// buildRouter: XY mesh-router route computation plus output-port
// arbitration for five input ports (the original is a NoC router's
// combinational core).
func buildRouter() *aig.AIG {
	g := aig.New("router")
	myX := inputWord(g, "mx", 4)
	myY := inputWord(g, "my", 4)
	dstX := inputWord(g, "dx", 4)
	dstY := inputWord(g, "dy", 4)
	req := inputWord(g, "req", 5)
	xEq := equalWords(g, myX, dstX)
	yEq := equalWords(g, myY, dstY)
	xLess := ge(g, dstX, myX)
	yLess := ge(g, dstY, myY)
	// XY routing: go X first, then Y, else local.
	east := g.And(xEq.Not(), xLess)
	west := g.And(xEq.Not(), xLess.Not())
	north := g.Ands(xEq, yEq.Not(), yLess)
	south := g.Ands(xEq, yEq.Not(), yLess.Not())
	local := g.And(xEq, yEq)
	route := Word{east, west, north, south, local}
	grant := priorityOneHot(g, req)
	out := make(Word, 5)
	for i := range out {
		out[i] = g.And(route[i], g.Ors(grant...))
	}
	outputWord(g, "port", out)
	outputWord(g, "gnt", grant)
	return g
}

// buildVoter: majority voter over 101 inputs via a popcount tree and a
// threshold comparison (EPFL voter has 1001 inputs).
func buildVoter() *aig.AIG { return buildVoterN(101) }

func buildVoterN(n int) *aig.AIG {
	g := aig.New("voter")
	in := inputWord(g, "v", n)
	count := popcountWord(g, in)
	g.AddPO(ge(g, count, constWord(len(count), uint64((n+1)/2))), "maj")
	return g
}
