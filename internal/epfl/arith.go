package epfl

import "repro/internal/aig"

// Arithmetic-class benchmarks. Widths are scaled down from the original
// suite (which e.g. uses 128-bit adders and 64x64 multipliers) to keep the
// end-to-end SPICE-characterized flow tractable on one machine; the
// structure (ripple/array/shift/CORDIC) matches the originals' intent.

// buildAdder: 128-bit ripple-carry adder (same width as EPFL's adder).
func buildAdder() *aig.AIG { return buildAdderN(128) }

func buildAdderN(n int) *aig.AIG {
	g := aig.New("adder")
	a := inputWord(g, "a", n)
	b := inputWord(g, "b", n)
	sum, carry := addWords(g, a, b, aig.False)
	outputWord(g, "f", sum)
	g.AddPO(carry, "cout")
	return g
}

// buildBar: 64-bit barrel shifter with a 6-bit shift amount (EPFL bar is
// 128-bit/7-bit).
func buildBar() *aig.AIG { return buildBarN(64, 6) }

func buildBarN(w, shBits int) *aig.AIG {
	g := aig.New("bar")
	data := inputWord(g, "d", w)
	sh := inputWord(g, "s", shBits)
	out := barrelShiftRight(g, data, sh)
	outputWord(g, "q", out)
	return g
}

// buildDiv: 16/16-bit restoring divider producing quotient and remainder
// (EPFL div is 64-bit).
func buildDiv() *aig.AIG {
	g := aig.New("div")
	const n = 16
	num := inputWord(g, "n", n)
	den := inputWord(g, "d", n)
	rem := constWord(n+1, 0)
	quo := make(Word, n)
	denExt := padWord(den, n+1)
	for i := n - 1; i >= 0; i-- {
		// Shift remainder left, bring in next numerator bit.
		shifted := make(Word, n+1)
		shifted[0] = num[i]
		for k := 1; k <= n; k++ {
			shifted[k] = rem[k-1]
		}
		diff, fits := subWords(g, shifted, denExt)
		quo[i] = fits
		rem = muxWords(g, fits, diff, shifted)
	}
	outputWord(g, "q", quo)
	outputWord(g, "r", rem[:n])
	return g
}

// buildHyp: hypotenuse sqrt(a^2+b^2) over 12-bit inputs (EPFL hyp is
// 128-bit).
func buildHyp() *aig.AIG {
	g := aig.New("hyp")
	const n = 12
	a := inputWord(g, "a", n)
	b := inputWord(g, "b", n)
	a2 := mulWords(g, a, a)
	b2 := mulWords(g, b, b)
	sum, c := addWords(g, a2, b2, aig.False)
	sum = append(sum, c)                    // 2n+1 bits
	root := isqrt(g, padWord(sum, 2*(n+1))) // n+1 result bits
	outputWord(g, "h", root)
	return g
}

// isqrt computes the integer square root of a 2m-bit word, returning m
// bits, via the non-restoring digit recurrence.
func isqrt(g *aig.AIG, x Word) Word {
	m := len(x) / 2
	root := constWord(m, 0)
	rem := constWord(2*m, 0)
	for i := m - 1; i >= 0; i-- {
		// rem = rem<<2 | next two bits of x.
		shifted := make(Word, 2*m)
		shifted[0] = x[2*i]
		shifted[1] = x[2*i+1]
		for k := 2; k < 2*m; k++ {
			shifted[k] = rem[k-2]
		}
		// trial = (root << 2) | 01  at scale: candidate subtrahend 4*root+1
		trial := make(Word, 2*m)
		trial[0] = aig.True
		trial[1] = aig.False
		for k := 2; k < 2*m; k++ {
			if k-2 < m {
				trial[k] = root[k-2]
			} else {
				trial[k] = aig.False
			}
		}
		diff, fits := subWords(g, shifted, trial)
		rem = muxWords(g, fits, diff, shifted)
		// root = root<<1 | fits.
		nr := make(Word, m)
		nr[0] = fits
		for k := 1; k < m; k++ {
			nr[k] = root[k-1]
		}
		root = nr
	}
	return root
}

// buildLog2: integer+fractional base-2 logarithm of a 32-bit input: a
// leading-one detector gives the integer part, a barrel normalizer the
// fraction (EPFL log2 is a 32-bit full-precision design).
func buildLog2() *aig.AIG {
	g := aig.New("log2")
	const n = 32
	x := inputWord(g, "x", n)
	// Leading-one position: priority scan from the top.
	pos := constWord(6, 0)
	found := aig.False
	for i := n - 1; i >= 0; i-- {
		hit := g.And(x[i], found.Not())
		pos = muxWords(g, hit, constWord(6, uint64(i)), pos)
		found = g.Or(found, x[i])
	}
	// Normalize: shift left so the leading one reaches bit n-1, then the
	// next bits form the mantissa/fraction.
	inv := make(Word, 6)
	shiftAmt := constWord(6, uint64(n-1))
	var borrow aig.Lit
	invW, _ := subWords(g, shiftAmt, pos)
	_ = borrow
	copy(inv, invW)
	norm := barrelShiftLeft(g, x, inv)
	frac := norm[n-9 : n-1] // 8 fraction bits below the leading one
	outputWord(g, "int", pos)
	outputWord(g, "frac", frac)
	g.AddPO(found, "valid")
	return g
}

// buildMax: maximum of four 32-bit words plus the argmax index (EPFL max
// compares 128-bit words).
func buildMax() *aig.AIG {
	g := aig.New("max")
	const n = 32
	words := make([]Word, 4)
	for i := range words {
		words[i] = inputWord(g, "w"+itoa(i), n)
	}
	ge01 := ge(g, words[0], words[1])
	m01 := muxWords(g, ge01, words[0], words[1])
	ge23 := ge(g, words[2], words[3])
	m23 := muxWords(g, ge23, words[2], words[3])
	geF := ge(g, m01, m23)
	mx := muxWords(g, geF, m01, m23)
	outputWord(g, "max", mx)
	// argmax: 2-bit index.
	idx0 := g.Mux(geF, ge01.Not(), ge23.Not())
	idx1 := geF.Not()
	g.AddPO(idx0, "idx[0]")
	g.AddPO(idx1, "idx[1]")
	return g
}

// buildMultiplier: 16x16 array multiplier (EPFL multiplier is 64x64).
func buildMultiplier() *aig.AIG { return buildMultiplierN(16) }

func buildMultiplierN(n int) *aig.AIG {
	g := aig.New("multiplier")
	a := inputWord(g, "a", n)
	b := inputWord(g, "b", n)
	p := mulWords(g, a, b)
	outputWord(g, "p", p)
	return g
}

// cordicAtan are atan(2^-i) angles in 16-bit fixed point with 14 fraction
// bits (units: radians).
var cordicAtan = []uint64{
	12868, 7596, 4014, 2037, 1023, 512, 256, 128, 64, 32, 16, 8,
}

// buildSin: CORDIC sine of a 14-bit angle in [0, 1) rad (14 fraction
// bits), 18-bit fixed-point datapath, 12 iterations (EPFL sin is a 24-bit
// design).
func buildSin() *aig.AIG {
	g := aig.New("sin")
	const w = 18 // datapath width (two's complement)
	angle := inputWord(g, "a", 14)
	z := padWord(angle, w) // angle accumulator, 14 fraction bits
	// Start vector: x = K (CORDIC gain compensation), y = 0.
	// K = 0.607252935 * 2^14 = 9949.
	x := constWord(w, 9949)
	y := constWord(w, 0)
	for i := 0; i < 12; i++ {
		// d = sign of z (MSB: 1 means negative in two's complement).
		neg := z[w-1]
		xs := shiftRightArith(x, i)
		ys := shiftRightArith(y, i)
		xAdd, _ := addWords(g, x, ys, aig.False)
		xSub, _ := subWords(g, x, ys)
		yAdd, _ := addWords(g, y, xs, aig.False)
		ySub, _ := subWords(g, y, xs)
		zAdd, _ := addWords(g, z, constWord(w, cordicAtan[i]), aig.False)
		zSub, _ := subWords(g, z, constWord(w, cordicAtan[i]))
		x = muxWords(g, neg, xAdd, xSub)
		y = muxWords(g, neg, ySub, yAdd)
		z = muxWords(g, neg, zAdd, zSub)
	}
	outputWord(g, "sin", y[:16])
	return g
}

// buildSqrt: integer square root of a 24-bit input (EPFL sqrt is 128-bit).
func buildSqrt() *aig.AIG { return buildSqrtN(24) }

func buildSqrtN(bits int) *aig.AIG {
	g := aig.New("sqrt")
	x := inputWord(g, "x", bits)
	outputWord(g, "r", isqrt(g, x))
	return g
}

// buildSquare: 16-bit squarer (EPFL square is 64-bit).
func buildSquare() *aig.AIG { return buildSquareN(16) }

func buildSquareN(n int) *aig.AIG {
	g := aig.New("square")
	a := inputWord(g, "a", n)
	outputWord(g, "s", mulWords(g, a, a))
	return g
}
