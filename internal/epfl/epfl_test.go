package epfl

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/aig"
)

// evalBus drives named buses ("a" -> value) and returns output buses
// collected by prefix.
func evalBus(t *testing.T, g *aig.AIG, in map[string]uint64) map[string]uint64 {
	t.Helper()
	bits := make([]bool, g.NumPIs())
	for i := 0; i < g.NumPIs(); i++ {
		name := g.PIName(i)
		base, idx := splitBus(name)
		v, ok := in[base]
		if !ok {
			continue
		}
		bits[i] = v&(1<<uint(idx)) != 0
	}
	outBits := g.Eval(bits)
	out := make(map[string]uint64)
	for i := 0; i < g.NumPOs(); i++ {
		base, idx := splitBus(g.POName(i))
		if outBits[i] {
			out[base] |= 1 << uint(idx)
		}
	}
	return out
}

func splitBus(name string) (string, int) {
	i := strings.IndexByte(name, '[')
	if i < 0 {
		return name, 0
	}
	idx := 0
	for _, c := range name[i+1 : len(name)-1] {
		idx = idx*10 + int(c-'0')
	}
	return name[:i], idx
}

func TestSuiteComplete(t *testing.T) {
	gens := Suite()
	if len(gens) != 20 {
		t.Fatalf("suite has %d circuits, want 20", len(gens))
	}
	var arith, ctrl int
	for _, gen := range gens {
		switch gen.Class {
		case Arithmetic:
			arith++
		case Control:
			ctrl++
		}
	}
	if arith != 10 || ctrl != 10 {
		t.Errorf("split %d/%d, want 10/10", arith, ctrl)
	}
	if _, err := Build("adder"); err != nil {
		t.Error(err)
	}
	if _, err := Build("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCircuitSizes(t *testing.T) {
	for _, gen := range Suite() {
		g := gen.Build()
		n := g.NumNodes()
		if n < 50 {
			t.Errorf("%s: only %d AIG nodes — too trivial for a benchmark", gen.Name, n)
		}
		if n > 60000 {
			t.Errorf("%s: %d AIG nodes — exceeds the scaled budget", gen.Name, n)
		}
		if g.NumPOs() == 0 || g.NumPIs() == 0 {
			t.Errorf("%s: %d PIs / %d POs", gen.Name, g.NumPIs(), g.NumPOs())
		}
	}
}

func TestAdder(t *testing.T) {
	g := buildAdder()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		a := rng.Uint64() >> 1 // keep within 63 bits to check the carry chain
		b := rng.Uint64() >> 1
		out := evalBus(t, g, map[string]uint64{"a": a, "b": b})
		if out["f"] != a+b {
			t.Fatalf("adder(%d,%d) = %d, want %d", a, b, out["f"], a+b)
		}
	}
	// Carry propagation across the low 64 bits.
	out := evalBus(t, g, map[string]uint64{"a": ^uint64(0), "b": 1})
	if out["f"] != 0 {
		t.Errorf("low sum = %d, want 0 (carry out of word)", out["f"])
	}
}

func TestBarrelShifter(t *testing.T) {
	g := buildBar()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		d := rng.Uint64()
		s := uint64(rng.Intn(64))
		out := evalBus(t, g, map[string]uint64{"d": d, "s": s})
		if out["q"] != d>>s {
			t.Fatalf("bar(%x >> %d) = %x, want %x", d, s, out["q"], d>>s)
		}
	}
}

func TestDivider(t *testing.T) {
	g := buildDiv()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		n := uint64(rng.Intn(1 << 16))
		d := uint64(1 + rng.Intn(1<<16-1))
		out := evalBus(t, g, map[string]uint64{"n": n, "d": d})
		if out["q"] != n/d || out["r"] != n%d {
			t.Fatalf("div(%d,%d) = q%d r%d, want q%d r%d", n, d, out["q"], out["r"], n/d, n%d)
		}
	}
}

func TestSqrt(t *testing.T) {
	g := buildSqrt()
	rng := rand.New(rand.NewSource(4))
	check := func(x uint64) {
		out := evalBus(t, g, map[string]uint64{"x": x})
		want := uint64(math.Sqrt(float64(x)))
		for (want+1)*(want+1) <= x {
			want++
		}
		for want*want > x {
			want--
		}
		if out["r"] != want {
			t.Fatalf("sqrt(%d) = %d, want %d", x, out["r"], want)
		}
	}
	for i := 0; i < 30; i++ {
		check(uint64(rng.Intn(1 << 24)))
	}
	check(0)
	check(1<<24 - 1)
}

func TestHyp(t *testing.T) {
	g := buildHyp()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		a := uint64(rng.Intn(1 << 12))
		b := uint64(rng.Intn(1 << 12))
		out := evalBus(t, g, map[string]uint64{"a": a, "b": b})
		sum := a*a + b*b
		want := uint64(math.Sqrt(float64(sum)))
		for (want+1)*(want+1) <= sum {
			want++
		}
		for want*want > sum {
			want--
		}
		if out["h"] != want {
			t.Fatalf("hyp(%d,%d) = %d, want %d", a, b, out["h"], want)
		}
	}
}

func TestMultiplierAndSquare(t *testing.T) {
	gm := buildMultiplier()
	gs := buildSquare()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		a := uint64(rng.Intn(1 << 16))
		b := uint64(rng.Intn(1 << 16))
		out := evalBus(t, gm, map[string]uint64{"a": a, "b": b})
		if out["p"] != a*b {
			t.Fatalf("mult(%d,%d) = %d, want %d", a, b, out["p"], a*b)
		}
		sq := evalBus(t, gs, map[string]uint64{"a": a})
		if sq["s"] != a*a {
			t.Fatalf("square(%d) = %d, want %d", a, sq["s"], a*a)
		}
	}
}

func TestMax(t *testing.T) {
	g := buildMax()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		w := []uint64{
			uint64(rng.Uint32()), uint64(rng.Uint32()),
			uint64(rng.Uint32()), uint64(rng.Uint32()),
		}
		out := evalBus(t, g, map[string]uint64{"w0": w[0], "w1": w[1], "w2": w[2], "w3": w[3]})
		want := w[0]
		wantIdx := 0
		for k, v := range w {
			if v > want {
				want, wantIdx = v, k
			}
		}
		if out["max"] != want {
			t.Fatalf("max(%v) = %d, want %d", w, out["max"], want)
		}
		if w[wantIdx] != w[out["idx"]] {
			t.Fatalf("argmax(%v) = %d (value %d), want value %d", w, out["idx"], w[out["idx"]], want)
		}
	}
}

func TestLog2(t *testing.T) {
	g := buildLog2()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 40; i++ {
		x := uint64(rng.Uint32())
		if x == 0 {
			continue
		}
		out := evalBus(t, g, map[string]uint64{"x": x})
		wantInt := uint64(63 - leadingZeros64(x) - 32)
		wantInt = uint64(intLog2(x))
		if out["int"] != wantInt {
			t.Fatalf("log2(%d).int = %d, want %d", x, out["int"], wantInt)
		}
		if out["valid"] != 1 {
			t.Fatalf("valid = %d", out["valid"])
		}
		// Fraction: top 8 bits after the leading one.
		shift := 31 - intLog2(x)
		norm := (x << uint(shift)) & 0xFFFFFFFF
		wantFrac := (norm >> 23) & 0xFF
		if out["frac"] != wantFrac {
			t.Fatalf("log2(%d).frac = %x, want %x", x, out["frac"], wantFrac)
		}
	}
	out := evalBus(t, g, map[string]uint64{"x": 0})
	if out["valid"] != 0 {
		t.Error("log2(0) should be invalid")
	}
}

func intLog2(x uint64) int {
	n := -1
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

func leadingZeros64(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

func TestSinCORDIC(t *testing.T) {
	g := buildSin()
	for _, a := range []uint64{0, 100, 1000, 4000, 8000, 12000, 16000} {
		out := evalBus(t, g, map[string]uint64{"a": a})
		angle := float64(a) / 16384.0
		want := math.Sin(angle) * 16384.0
		if math.Abs(float64(out["sin"])-want) > 24 {
			t.Errorf("sin(%v rad) = %d, want ~%.0f", angle, out["sin"], want)
		}
	}
}

func TestVoter(t *testing.T) {
	g := buildVoter()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		bits := make([]bool, g.NumPIs())
		ones := 0
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
			if bits[i] {
				ones++
			}
		}
		out := g.Eval(bits)
		want := ones >= 51
		if out[0] != want {
			t.Fatalf("voter with %d ones = %v, want %v", ones, out[0], want)
		}
	}
	// Edge: exactly at the threshold.
	bits := make([]bool, g.NumPIs())
	for i := 0; i < 51; i++ {
		bits[i] = true
	}
	if out := g.Eval(bits); !out[0] {
		t.Error("51 of 101 must be a majority")
	}
	bits[50] = false
	if out := g.Eval(bits); out[0] {
		t.Error("50 of 101 must not be a majority")
	}
}

func TestDecoderOneHot(t *testing.T) {
	g := buildDec()
	for _, a := range []uint64{0, 1, 37, 128, 255} {
		out := evalBus(t, g, map[string]uint64{"a": a})
		for i := 0; i < 256; i++ {
			want := uint64(0)
			if uint64(i) == a {
				want = 1
			}
			if out["d"+itoa(i)] != want {
				t.Fatalf("dec(%d): output d%d = %d", a, i, out["d"+itoa(i)])
			}
		}
	}
}

func TestPriorityEncoder(t *testing.T) {
	g := buildPriority()
	check := func(lo, hi uint64) {
		out := evalBus(t, g, map[string]uint64{"req": lo | hi<<63})
		// The encoder reports the highest-priority (highest-index) request
		// within the low 64 bits here (tests keep hi = 0).
		want := uint64(intLog2(lo))
		if lo == 0 {
			if out["valid"] != 0 {
				t.Fatalf("valid on empty request")
			}
			return
		}
		if out["valid"] != 1 || out["idx"] != want {
			t.Fatalf("priority(%x) = idx %d valid %d, want %d", lo, out["idx"], out["valid"], want)
		}
	}
	check(0, 0)
	check(1, 0)
	check(0x8000000000000000>>1, 0)
	check(0b1010100, 0)
}

func TestInt2Float(t *testing.T) {
	g := buildInt2float()
	cases := map[uint64][2]uint64{
		0:    {0, 0},
		1:    {0, 0},
		2:    {1, 0},
		3:    {1, 8},  // 1.1000 -> mant 1000
		1000: {9, 15}, // 1111101000 -> top 4 after lead = 1111
		4095: {11, 15},
	}
	for x, want := range cases {
		out := evalBus(t, g, map[string]uint64{"x": x})
		if out["exp"] != want[0] || out["man"] != want[1] {
			t.Errorf("int2float(%d) = exp %d man %d, want exp %d man %d",
				x, out["exp"], out["man"], want[0], want[1])
		}
	}
}

func TestArbiter(t *testing.T) {
	g := buildArbiter()
	// Request 3 and 40, pointer at 10: grant must go to 40 (lowest masked
	// at/above the pointer).
	out := evalBus(t, g, map[string]uint64{"req": 1<<3 | 1<<40, "ptr": 10})
	if out["gnt"] != 1<<40 {
		t.Errorf("grant = %x, want bit 40", out["gnt"])
	}
	// Pointer above all requests: wrap to the lowest request.
	out = evalBus(t, g, map[string]uint64{"req": 1<<3 | 1<<40, "ptr": 50})
	if out["gnt"] != 1<<3 {
		t.Errorf("wrapped grant = %x, want bit 3", out["gnt"])
	}
	// No requests: no grant, not busy.
	out = evalBus(t, g, map[string]uint64{"req": 0, "ptr": 0})
	if out["gnt"] != 0 || out["busy"] != 0 {
		t.Errorf("idle arbiter: gnt=%x busy=%d", out["gnt"], out["busy"])
	}
}

func TestRouter(t *testing.T) {
	g := buildRouter()
	// Destination east of us: port[0].
	out := evalBus(t, g, map[string]uint64{"mx": 2, "my": 2, "dx": 5, "dy": 2, "req": 1})
	if out["port"] != 1 {
		t.Errorf("east route: port=%b", out["port"])
	}
	// Same x, destination north: port[2].
	out = evalBus(t, g, map[string]uint64{"mx": 2, "my": 2, "dx": 2, "dy": 7, "req": 1})
	if out["port"] != 1<<2 {
		t.Errorf("north route: port=%b", out["port"])
	}
	// Local delivery: port[4].
	out = evalBus(t, g, map[string]uint64{"mx": 3, "my": 3, "dx": 3, "dy": 3, "req": 1})
	if out["port"] != 1<<4 {
		t.Errorf("local route: port=%b", out["port"])
	}
	// No request: no port asserted.
	out = evalBus(t, g, map[string]uint64{"mx": 2, "my": 2, "dx": 5, "dy": 2, "req": 0})
	if out["port"] != 0 {
		t.Errorf("no-request route: port=%b", out["port"])
	}
}

func TestI2CSpotChecks(t *testing.T) {
	g := buildI2c()
	// Start command from idle enters state 1.
	out := evalBus(t, g, map[string]uint64{"cmd": 1, "st": 0, "cnt": 0, "sh": 0})
	if out["nst"] != 1 {
		t.Errorf("start: nst=%d", out["nst"])
	}
	if out["active"] != 1 {
		t.Errorf("start not active")
	}
	// Counter increments when scl high and not idle.
	out = evalBus(t, g, map[string]uint64{"cmd": 0, "st": 2, "cnt": 3, "sh": 0, "scl": 1})
	if out["ncnt"] != 4 {
		t.Errorf("ncnt=%d, want 4", out["ncnt"])
	}
	// Read shifts SDA into the shift register.
	out = evalBus(t, g, map[string]uint64{"cmd": 4, "st": 2, "cnt": 0, "sh": 0b1010, "sda": 1})
	if out["nsh"] != 0b10101 {
		t.Errorf("nsh=%b, want 10101", out["nsh"])
	}
}

func TestMemCtrlSpotChecks(t *testing.T) {
	g := buildMemCtrl()
	in := map[string]uint64{
		"addr": 0xA000, "ref": 0,
		"q0": 0, "q1": 5, "q2": 0, "q3": 9,
		"o0": 0, "o1": 3, "o2": 0, "o3": 15,
		"row": 0b0010,
	}
	out := evalBus(t, g, in)
	// Bank 1 has requests and room; bank 3 is over occupancy.
	if out["gnt"] != 1<<1 {
		t.Errorf("grant = %b, want bank 1", out["gnt"])
	}
	if out["rowhit"] != 1 {
		t.Errorf("rowhit = %d (bank 1 row open)", out["rowhit"])
	}
	if out["depth"] != 5 {
		t.Errorf("depth = %d, want 5", out["depth"])
	}
	// Refresh urgency blocks grants.
	in["ref"] = 255
	out = evalBus(t, g, in)
	if out["gnt"] != 0 || out["refresh"] != 1 {
		t.Errorf("refresh block: gnt=%b refresh=%d", out["gnt"], out["refresh"])
	}
}

func TestCtrlAndCavlcShape(t *testing.T) {
	gc := buildCtrl()
	if gc.NumPOs() != 26 {
		t.Errorf("ctrl outputs = %d, want 26", gc.NumPOs())
	}
	// Load opcode asserts c0 and not c1.
	out := evalBus(t, gc, map[string]uint64{"op": 0b0000011})
	if out["c0"] != 1 || out["c1"] != 0 {
		t.Errorf("ctrl decode: %v", out)
	}
	gv := buildCavlc()
	// More coefficients produce longer codes.
	short := evalBus(t, gv, map[string]uint64{"tc": 1, "t1": 0, "nc": 0})
	long := evalBus(t, gv, map[string]uint64{"tc": 14, "t1": 0, "nc": 0})
	if long["len"] <= short["len"] {
		t.Errorf("cavlc length not increasing: %d vs %d", short["len"], long["len"])
	}
}

func TestQuickAdderProperty(t *testing.T) {
	g := buildAdder()
	f := func(a, b uint64) bool {
		a >>= 1
		b >>= 1
		out := evalBus(t, g, map[string]uint64{"a": a, "b": b})
		return out["f"] == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickMultiplierProperty(t *testing.T) {
	g := buildMultiplier()
	f := func(a, b uint16) bool {
		out := evalBus(t, g, map[string]uint64{"a": uint64(a), "b": uint64(b)})
		return out["p"] == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickBarProperty(t *testing.T) {
	g := buildBar()
	f := func(d uint64, s uint8) bool {
		sh := uint64(s) & 63
		out := evalBus(t, g, map[string]uint64{"d": d, "s": sh})
		return out["q"] == d>>sh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	// Generators must be reproducible: identical structure on every call.
	for _, gen := range Suite() {
		a := gen.Build()
		b := gen.Build()
		if a.NumNodes() != b.NumNodes() || a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
			t.Errorf("%s: non-deterministic generation", gen.Name)
		}
	}
}

func TestBuildScaled(t *testing.T) {
	for _, name := range []string{"adder", "bar", "multiplier", "square", "sqrt", "priority", "voter"} {
		small, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		big, err := BuildScaled(name)
		if err != nil {
			t.Fatal(err)
		}
		if big.NumNodes() <= small.NumNodes() {
			t.Errorf("%s: scaled build not larger (%d vs %d)", name, big.NumNodes(), small.NumNodes())
		}
	}
	// Unscaled circuits fall back to the default build.
	a, _ := BuildScaled("router")
	b, _ := Build("router")
	if a.NumNodes() != b.NumNodes() {
		t.Error("router should be unchanged by BuildScaled")
	}
	if _, err := BuildScaled("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestScaledAdderCorrect(t *testing.T) {
	g, err := BuildScaled("adder")
	if err != nil {
		t.Fatal(err)
	}
	out := evalBus(t, g, map[string]uint64{"a": 123456789, "b": 987654321})
	if out["f"] != 123456789+987654321 {
		t.Errorf("scaled adder sum = %d", out["f"])
	}
}

func TestScaledVoterCorrect(t *testing.T) {
	g, err := BuildScaled("voter")
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]bool, g.NumPIs())
	for i := 0; i < 151; i++ {
		bits[i] = true
	}
	if out := g.Eval(bits); !out[0] {
		t.Error("151 of 301 must be a majority")
	}
	bits[0] = false
	if out := g.Eval(bits); out[0] {
		t.Error("150 of 301 must not be a majority")
	}
}
