package epfl

import (
	"fmt"

	"repro/internal/aig"
)

// Class labels the two halves of the suite.
type Class string

// Benchmark classes, matching the EPFL suite's split.
const (
	Arithmetic Class = "arithmetic"
	Control    Class = "control"
)

// Generator describes one benchmark circuit.
type Generator struct {
	Name  string
	Class Class
	Build func() *aig.AIG
}

// Suite returns all twenty EPFL benchmark generators in the paper's order:
// ten arithmetic, ten control.
func Suite() []Generator {
	return []Generator{
		{"adder", Arithmetic, buildAdder},
		{"bar", Arithmetic, buildBar},
		{"div", Arithmetic, buildDiv},
		{"hyp", Arithmetic, buildHyp},
		{"log2", Arithmetic, buildLog2},
		{"max", Arithmetic, buildMax},
		{"multiplier", Arithmetic, buildMultiplier},
		{"sin", Arithmetic, buildSin},
		{"sqrt", Arithmetic, buildSqrt},
		{"square", Arithmetic, buildSquare},
		{"arbiter", Control, buildArbiter},
		{"cavlc", Control, buildCavlc},
		{"ctrl", Control, buildCtrl},
		{"dec", Control, buildDec},
		{"i2c", Control, buildI2c},
		{"int2float", Control, buildInt2float},
		{"mem_ctrl", Control, buildMemCtrl},
		{"priority", Control, buildPriority},
		{"router", Control, buildRouter},
		{"voter", Control, buildVoter},
	}
}

// BuildScaled generates the named benchmark at a larger width for the
// generators that support scaling (adder, bar, multiplier, square, sqrt,
// priority, voter get ~2x the default width, approaching the original
// suite's sizes); the remaining circuits fall back to their default build.
func BuildScaled(name string) (*aig.AIG, error) {
	switch name {
	case "adder":
		return buildAdderN(256), nil
	case "bar":
		return buildBarN(128, 7), nil
	case "multiplier":
		return buildMultiplierN(32), nil
	case "square":
		return buildSquareN(32), nil
	case "sqrt":
		return buildSqrtN(48), nil
	case "priority":
		return buildPriorityN(256), nil
	case "voter":
		return buildVoterN(301), nil
	}
	return Build(name)
}

// Build generates the named benchmark.
func Build(name string) (*aig.AIG, error) {
	for _, gen := range Suite() {
		if gen.Name == name {
			return gen.Build(), nil
		}
	}
	return nil, fmt.Errorf("epfl: unknown benchmark %q", name)
}

// Names lists the benchmark names in suite order.
func Names() []string {
	gens := Suite()
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.Name
	}
	return out
}
