// Package epfl provides structural generators for the EPFL combinational
// benchmark suite — the workload set of the paper's evaluation (Fig. 2c and
// Fig. 3). The original suite ships as Verilog/AIGER artifacts; here every
// circuit is generated from scratch at reduced-but-faithful bit widths, with
// the same names, the same arithmetic/control split, and the same functional
// intent (documented per generator). Scaling is recorded in DESIGN.md.
package epfl

import "repro/internal/aig"

// Word is a little-endian bit vector of AIG literals.
type Word []aig.Lit

// inputWord creates named PI bits: name[0..n-1].
func inputWord(g *aig.AIG, name string, n int) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = g.AddPI(name + "[" + itoa(i) + "]")
	}
	return w
}

func outputWord(g *aig.AIG, name string, w Word) {
	for i, b := range w {
		g.AddPO(b, name+"["+itoa(i)+"]")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// constWord returns an n-bit constant.
func constWord(n int, val uint64) Word {
	w := make(Word, n)
	for i := range w {
		if val&(1<<uint(i)) != 0 {
			w[i] = aig.True
		} else {
			w[i] = aig.False
		}
	}
	return w
}

// fullAdder returns (sum, carry) of three bits.
func fullAdder(g *aig.AIG, a, b, c aig.Lit) (sum, carry aig.Lit) {
	axb := g.Xor(a, b)
	sum = g.Xor(axb, c)
	carry = g.Or(g.And(a, b), g.And(axb, c))
	return sum, carry
}

// addWords returns a+b (+cin) with the final carry, ripple style.
func addWords(g *aig.AIG, a, b Word, cin aig.Lit) (Word, aig.Lit) {
	n := len(a)
	out := make(Word, n)
	c := cin
	for i := 0; i < n; i++ {
		bb := aig.False
		if i < len(b) {
			bb = b[i]
		}
		out[i], c = fullAdder(g, a[i], bb, c)
	}
	return out, c
}

// subWords returns a-b and the borrow-free flag (1 when a >= b).
func subWords(g *aig.AIG, a, b Word) (Word, aig.Lit) {
	nb := make(Word, len(a))
	for i := range nb {
		if i < len(b) {
			nb[i] = b[i].Not()
		} else {
			nb[i] = aig.True
		}
	}
	diff, carry := addWords(g, a, nb, aig.True)
	return diff, carry
}

// muxWords returns s ? t : e bitwise.
func muxWords(g *aig.AIG, s aig.Lit, t, e Word) Word {
	out := make(Word, len(e))
	for i := range out {
		tb := aig.False
		if i < len(t) {
			tb = t[i]
		}
		out[i] = g.Mux(s, tb, e[i])
	}
	return out
}

// shiftLeftConst shifts in zeros.
func shiftLeftConst(w Word, k int) Word {
	out := make(Word, len(w))
	for i := range out {
		if i >= k {
			out[i] = w[i-k]
		} else {
			out[i] = aig.False
		}
	}
	return out
}

// shiftRightArith shifts right replicating the sign bit (two's-complement
// arithmetic shift).
func shiftRightArith(w Word, k int) Word {
	out := make(Word, len(w))
	sign := w[len(w)-1]
	for i := range out {
		if i+k < len(w) {
			out[i] = w[i+k]
		} else {
			out[i] = sign
		}
	}
	return out
}

// shiftRightConst shifts in zeros.
func shiftRightConst(w Word, k int) Word {
	out := make(Word, len(w))
	for i := range out {
		if i+k < len(w) {
			out[i] = w[i+k]
		} else {
			out[i] = aig.False
		}
	}
	return out
}

// barrelShiftRight performs a variable logical right shift by the binary
// amount in sh.
func barrelShiftRight(g *aig.AIG, w Word, sh Word) Word {
	cur := w
	for k, s := range sh {
		cur = muxWords(g, s, shiftRightConst(cur, 1<<uint(k)), cur)
	}
	return cur
}

// barrelShiftLeft performs a variable logical left shift.
func barrelShiftLeft(g *aig.AIG, w Word, sh Word) Word {
	cur := w
	for k, s := range sh {
		cur = muxWords(g, s, shiftLeftConst(cur, 1<<uint(k)), cur)
	}
	return cur
}

// ge returns the literal a >= b (unsigned).
func ge(g *aig.AIG, a, b Word) aig.Lit {
	_, ok := subWords(g, a, b)
	return ok
}

// equalWords returns bitwise equality of two words.
func equalWords(g *aig.AIG, a, b Word) aig.Lit {
	eq := aig.True
	for i := range a {
		bb := aig.False
		if i < len(b) {
			bb = b[i]
		}
		eq = g.And(eq, g.Xor(a[i], bb).Not())
	}
	return eq
}

// mulWords returns the 2n-bit product of two n-bit words (array
// multiplier: AND partial products + ripple accumulation).
func mulWords(g *aig.AIG, a, b Word) Word {
	n := len(a)
	acc := make(Word, n+len(b))
	for i := range acc {
		acc[i] = aig.False
	}
	for j := range b {
		pp := make(Word, len(acc))
		for i := range pp {
			pp[i] = aig.False
		}
		for i := range a {
			pp[i+j] = g.And(a[i], b[j])
		}
		acc, _ = addWords(g, acc, pp, aig.False)
	}
	return acc
}

// popcountWord counts set bits via a full-adder reduction tree followed by
// ripple addition.
func popcountWord(g *aig.AIG, bits Word) Word {
	// Reduce in ternary groups using full adders (carry-save), then sum.
	width := 1
	for (1 << uint(width)) <= len(bits) {
		width++
	}
	words := make([]Word, len(bits))
	for i, b := range bits {
		words[i] = Word{b}
	}
	for len(words) > 1 {
		var next []Word
		for i := 0; i+1 < len(words); i += 2 {
			sum, _ := addWords(g, padWord(words[i], width), padWord(words[i+1], width), aig.False)
			next = append(next, sum)
		}
		if len(words)%2 == 1 {
			next = append(next, words[len(words)-1])
		}
		words = next
	}
	return padWord(words[0], width)
}

func padWord(w Word, n int) Word {
	if len(w) >= n {
		return w[:n]
	}
	out := make(Word, n)
	copy(out, w)
	for i := len(w); i < n; i++ {
		out[i] = aig.False
	}
	return out
}

// onehotMux selects data[i] when sel[i] is high (one-hot select).
func onehotMux(g *aig.AIG, sel []aig.Lit, data []Word) Word {
	out := make(Word, len(data[0]))
	for b := range out {
		var terms []aig.Lit
		for i := range sel {
			terms = append(terms, g.And(sel[i], data[i][b]))
		}
		out[b] = g.Ors(terms...)
	}
	return out
}
