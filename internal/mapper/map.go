package mapper

import (
	"context"
	"fmt"
	"math"

	"repro/internal/aig"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// CostMode selects the priority list used to rank candidate matches.
type CostMode int

// The three mapping scenarios evaluated in the paper (Section V-B).
const (
	// Baseline is the state-of-the-art power-aware mapping: network size
	// (area) remains the primary objective, delay second, with power as the
	// final tie-breaker — mirroring how ABC "refuses to give up on network
	// size as its main optimization target".
	Baseline CostMode = iota
	// PowerAreaDelay is the proposed cryogenic-aware priority list
	// power -> area -> delay.
	PowerAreaDelay
	// PowerDelayArea is the proposed cryogenic-aware priority list
	// power -> delay -> area.
	PowerDelayArea
)

// String names the mode as in the paper.
func (m CostMode) String() string {
	switch m {
	case PowerAreaDelay:
		return "p->a->d"
	case PowerDelayArea:
		return "p->d->a"
	default:
		return "baseline"
	}
}

// Options configures a mapping run.
type Options struct {
	Mode    CostMode
	K       int     // cut size (default 5)
	MaxCuts int     // priority cuts per node (default 8)
	Vdd     float64 // supply for switching-cost estimation (default library Vdd)
	// ClockPeriod converts leakage power to per-cycle energy in the power
	// cost (default 1 ns).
	ClockPeriod float64
	// Passes is the number of forward mapping passes; passes after the
	// first re-estimate area/power flow from the previous cover's actual
	// fanout counts (standard area-recovery refinement). Default 2.
	Passes int
}

// epsilon tolerance when comparing priority-cost components: within eps the
// components are considered tied and the next priority decides.
const costEps = 0.06

type implChoice struct {
	match *Match
	cut   aig.Cut
	area  float64
	delay float64
	power float64
	valid bool
}

// Map covers the AIG with library cells under the selected cost-priority
// mode and returns the mapped netlist. Primary outputs are aliased onto
// their driver nets (inverters are materialized where a complemented signal
// is required).
func Map(ctx context.Context, g *aig.AIG, ml *MatchLibrary, opt Options) (*netlist.Netlist, error) {
	_, span := obs.Start(ctx, "mapper.map")
	span.SetAttr("design", g.Name)
	span.SetAttr("mode", opt.Mode.String())
	defer span.End()
	obs.C("mapper.runs").Inc()
	if opt.K == 0 {
		opt.K = 5
	}
	if opt.MaxCuts == 0 {
		opt.MaxCuts = 8
	}
	if opt.Vdd == 0 {
		opt.Vdd = ml.Lib.Vdd
	}
	if opt.ClockPeriod == 0 {
		opt.ClockPeriod = 1e-9
	}
	if opt.K > 6 {
		return nil, fmt.Errorf("mapper: cut size %d exceeds 6", opt.K)
	}
	if opt.Passes == 0 {
		opt.Passes = 2
	}
	cuts := g.EnumerateCuts(opt.K, opt.MaxCuts)
	refs := g.FanoutCounts()
	act := g.Activities()

	inv := ml.Inv
	invEnergyAt := func(a float64) float64 {
		return a*inv.Energy + inv.Leakage*opt.ClockPeriod + a*0.5*opt.Vdd*opt.Vdd*inv.InCaps[0]
	}

	var best []implChoice
	for pass := 0; pass < opt.Passes; pass++ {
		if pass > 0 {
			// Refinement: re-estimate flows with the previous cover's
			// actual reference counts, so shared logic is priced correctly.
			refs = coverRefs(g, best)
		}
		best = mapPass(g, ml, opt, cuts, refs, act, invEnergyAt)
		obs.C("mapper.passes").Inc()
	}
	nl, err := extract(g, ml, best, opt)
	if err == nil {
		obs.C("mapper.gates_emitted").Add(int64(nl.NumGates()))
		span.SetAttr("gates", nl.NumGates())
		span.SetAttr("area", nl.Area())
	}
	return nl, err
}

// coverRefs counts, per variable, how many chosen cuts (plus primary
// outputs) reference it in the current cover.
func coverRefs(g *aig.AIG, best []implChoice) []int {
	refs := make([]int, g.NumVars())
	visited := make([]bool, g.NumVars())
	var visit func(v int)
	visit = func(v int) {
		if v == 0 || g.IsPI(v) || visited[v] {
			return
		}
		visited[v] = true
		for _, leaf := range best[v].cut.Leaves {
			refs[leaf]++
			visit(leaf)
		}
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		if po.Var() != 0 {
			refs[po.Var()]++
			visit(po.Var())
		}
	}
	return refs
}

// mapPass runs one forward best-match pass under the given reference
// counts.
func mapPass(g *aig.AIG, ml *MatchLibrary, opt Options, cuts [][]aig.Cut, refs []int, act []float64, invEnergyAt func(float64) float64) []implChoice {
	inv := ml.Inv
	best := make([]implChoice, g.NumVars())
	for v := 1; v <= g.NumPIs(); v++ {
		best[v] = implChoice{valid: true}
	}
	for v := g.NumPIs() + 1; v < g.NumVars(); v++ {
		var bc implChoice
		for _, cut := range cuts[v] {
			n := len(cut.Leaves)
			if n < 1 || n > 6 {
				continue
			}
			if n == 1 && cut.Leaves[0] == v {
				continue // trivial cut
			}
			tt := g.CutTruth(aig.MakeLit(v, false), cut.Leaves)
			for _, m := range ml.MatchesFor(tt, n) {
				cand := implChoice{match: m, cut: cut, valid: true}
				cand.area = m.Area
				cand.delay = m.Delay
				// Power: internal energy weighted by this node's switching
				// activity, leakage integrated over a clock period, and the
				// switching energy of charging the cell's input pins.
				cand.power = act[v]*m.Energy + m.Leakage*opt.ClockPeriod
				for i, leaf := range m.PinToLeaf {
					cand.power += act[cut.Leaves[leaf]] * 0.5 * opt.Vdd * opt.Vdd * m.InCaps[i]
				}
				if m.OutNeg {
					cand.area += inv.Area
					cand.delay += inv.Delay
					cand.power += invEnergyAt(act[v])
				}
				var worstLeaf float64
				for _, leaf := range cut.Leaves {
					lb := best[leaf]
					if !lb.valid {
						cand.valid = false
						break
					}
					r := refs[leaf]
					if r < 1 {
						r = 1
					}
					cand.area += lb.area / float64(r)
					cand.power += lb.power / float64(r)
					if lb.delay > worstLeaf {
						worstLeaf = lb.delay
					}
				}
				if !cand.valid {
					continue
				}
				cand.delay += worstLeaf
				if !bc.valid || better(cand, bc, opt.Mode) {
					bc = cand
				}
			}
		}
		best[v] = bc
	}
	return best
}

// better compares two candidates under the mode's priority list.
func better(a, b implChoice, mode CostMode) bool {
	var ka, kb [3]float64
	switch mode {
	case PowerAreaDelay:
		ka = [3]float64{a.power, a.area, a.delay}
		kb = [3]float64{b.power, b.area, b.delay}
	case PowerDelayArea:
		ka = [3]float64{a.power, a.delay, a.area}
		kb = [3]float64{b.power, b.delay, b.area}
	default:
		ka = [3]float64{a.area, a.delay, a.power}
		kb = [3]float64{b.area, b.delay, b.power}
	}
	for i := 0; i < 3; i++ {
		lo, hi := ka[i], kb[i]
		scale := math.Max(math.Abs(lo), math.Abs(hi))
		if scale > 0 && math.Abs(lo-hi) > costEps*scale {
			return lo < hi
		}
	}
	return false
}

// extract performs the backward covering pass and materializes the netlist.
func extract(g *aig.AIG, ml *MatchLibrary, best []implChoice, opt Options) (*netlist.Netlist, error) {
	type need struct{ pos, neg bool }
	needs := make([]need, g.NumVars())
	visited := make([]bool, g.NumVars())

	var visitErr error
	var visit func(v int)
	visit = func(v int) {
		if v == 0 || g.IsPI(v) || visited[v] {
			return
		}
		if !best[v].valid {
			visitErr = fmt.Errorf("mapper: no match for node %d (function not in library)", v)
			return
		}
		visited[v] = true
		for _, leaf := range best[v].cut.Leaves {
			if leaf != v {
				visit(leaf)
				needs[leaf].pos = true
			}
		}
	}
	needConst0, needConst1 := false, false
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		if po.Var() == 0 {
			if po.IsCompl() {
				needConst1 = true
			} else {
				needConst0 = true
			}
			continue
		}
		visit(po.Var())
		if po.IsCompl() {
			needs[po.Var()].neg = true
		} else if !g.IsPI(po.Var()) {
			needs[po.Var()].pos = true
		}
	}
	if visitErr != nil {
		return nil, visitErr
	}

	nl := netlist.New(g.Name, ml.Cells)
	for i := 0; i < g.NumPIs(); i++ {
		nl.Inputs = append(nl.Inputs, g.PIName(i))
	}
	netOf := func(v int) string {
		if g.IsPI(v) {
			return g.PIName(v - 1)
		}
		return fmt.Sprintf("n%d", v)
	}
	invNet := func(v int) string { return netOf(v) + "_inv" }

	// Constant nets: realized by tying all inputs of a cell whose function
	// is constant on the all-equal rows (e.g. XOR2(a,a) = 0) to a PI.
	if needConst0 || needConst1 {
		if g.NumPIs() == 0 {
			return nil, fmt.Errorf("mapper: constant output in a circuit without inputs")
		}
		anyPI := g.PIName(0)
		mkConst := func(want bool, net string) error {
			cell := constCell(ml, want)
			if cell == nil {
				return fmt.Errorf("mapper: library cannot realize constant %v", want)
			}
			pins := make([]string, len(cell.Cell.Inputs))
			for i := range pins {
				pins[i] = anyPI
			}
			return nl.AddGate(cell.Lib.Name, pins, net)
		}
		if needConst0 {
			if err := mkConst(false, "const0"); err != nil {
				return nil, err
			}
		}
		if needConst1 {
			if err := mkConst(true, "const1"); err != nil {
				return nil, err
			}
		}
	}

	for v := g.NumPIs() + 1; v < g.NumVars(); v++ {
		if !visited[v] {
			continue
		}
		bc := best[v]
		m := bc.match
		pins := make([]string, len(m.PinToLeaf))
		for pinIdx, leafIdx := range m.PinToLeaf {
			pins[pinIdx] = netOf(bc.cut.Leaves[leafIdx])
		}
		out := netOf(v)
		if m.OutNeg {
			// The cell realizes the complement: its raw output is the
			// inverted net; an inverter restores the positive phase when
			// needed.
			raw := invNet(v)
			if err := nl.AddGate(m.Lib.Name, pins, raw); err != nil {
				return nil, err
			}
			needs[v].neg = false // complement available for free
			if needs[v].pos {
				if err := nl.AddGate(ml.Inv.Lib.Name, []string{raw}, out); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := nl.AddGate(m.Lib.Name, pins, out); err != nil {
			return nil, err
		}
	}
	// Inverters for complemented uses (POs, OutNeg already handled).
	for v := 1; v < g.NumVars(); v++ {
		if !needs[v].neg {
			continue
		}
		if !g.IsPI(v) && !visited[v] {
			return nil, fmt.Errorf("mapper: internal error: inverted use of unmapped node %d", v)
		}
		if err := nl.AddGate(ml.Inv.Lib.Name, []string{netOf(v)}, invNet(v)); err != nil {
			return nil, err
		}
	}
	// Primary outputs alias their driver nets.
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		name := g.POName(i)
		var net string
		switch {
		case po.Var() == 0 && po.IsCompl():
			net = "const1"
		case po.Var() == 0:
			net = "const0"
		case po.IsCompl():
			net = invNet(po.Var())
		default:
			net = netOf(po.Var())
		}
		nl.Outputs = append(nl.Outputs, name)
		nl.Aliases[name] = net
	}
	return nl, nil
}

// constCell finds a combinational match cell whose output is the requested
// constant when all inputs are tied together (rows 00..0 and 11..1 equal).
// Candidates are ranked by area then name: map iteration order must never
// leak into the chosen cover (the QoR flight recorder diffs runs exactly).
func constCell(ml *MatchLibrary, want bool) *Match {
	var best *Match
	for _, byTT := range ml.byCanon {
		for _, ms := range byTT {
			for _, m := range ms {
				tt, ok := m.Cell.Truth(m.Cell.Outputs[0])
				if !ok {
					continue
				}
				n := len(m.Cell.Inputs)
				lo := tt&1 != 0
				hi := tt&(1<<uint(1<<uint(n)-1)) != 0
				if lo != hi || lo != want {
					continue
				}
				if best == nil || m.Area < best.Area ||
					(m.Area == best.Area && m.Lib.Name < best.Lib.Name) {
					best = m
				}
			}
		}
	}
	return best
}
