package mapper

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/netlist"
	"repro/internal/pdk"
	"repro/internal/testlib"
)

var catalog = pdk.Catalog()

func buildML(t *testing.T, tempK float64) *MatchLibrary {
	t.Helper()
	lib, used := testlib.Build(catalog, testlib.Names(), tempK)
	ml, err := BuildMatchLibrary(lib, used, 6)
	if err != nil {
		t.Fatal(err)
	}
	return ml
}

func TestBuildMatchLibrary(t *testing.T) {
	ml := buildML(t, 300)
	if ml.Inv == nil || ml.Inv.Cell.Base != "INV" {
		t.Fatal("no inverter match")
	}
	// NAND2 function must be matchable.
	nand2 := pdk.FindCell(catalog, "NAND2x1")
	tt, _ := nand2.Truth("Y")
	matches := ml.MatchesFor(tt, 2)
	if len(matches) == 0 {
		t.Fatal("NAND2 function unmatched")
	}
	foundDirect := false
	for _, m := range matches {
		if m.Cell.Base == "NAND2" && !m.OutNeg {
			foundDirect = true
		}
		if m.Cell.Base == "AND2" && !m.OutNeg {
			t.Error("AND2 cannot directly realize NAND2")
		}
	}
	if !foundDirect {
		t.Error("no direct NAND2 match for the NAND2 function")
	}
}

func TestMatchBindingCorrectness(t *testing.T) {
	// For a non-symmetric function (AOI21: !(A&B | C)), the pin binding
	// must wire the right leaves. Verify by evaluating the cell truth table
	// under the binding for every cut-leaf assignment and permuted variant.
	ml := buildML(t, 300)
	aoi := pdk.FindCell(catalog, "AOI21x1")
	base, _ := aoi.Truth("Y")
	// Permute the cut function: f(c,a,b) = !(c&a | b) etc. Build variants
	// by swapping truth-table variables.
	variants := []uint64{base}
	v1 := base
	v1 = swapTT(v1, 0) // swap A,B
	variants = append(variants, v1)
	v2 := swapTT(swapTT(base, 1), 0)
	variants = append(variants, v2)
	for vi, tt := range variants {
		matches := ml.MatchesFor(tt&aig.Truth6Mask(3), 3)
		if len(matches) == 0 {
			t.Fatalf("variant %d unmatched", vi)
		}
		m := matches[0]
		cellTT, _ := m.Cell.Truth(m.Cell.Outputs[0])
		for leafAssign := 0; leafAssign < 8; leafAssign++ {
			// Cell input pin i reads leaf PinToLeaf[i].
			cellRow := 0
			for pin := range m.Cell.Inputs {
				if leafAssign&(1<<uint(m.PinToLeaf[pin])) != 0 {
					cellRow |= 1 << uint(pin)
				}
			}
			got := cellTT&(1<<uint(cellRow)) != 0
			if m.OutNeg {
				got = !got
			}
			want := tt&(1<<uint(leafAssign)) != 0
			if got != want {
				t.Fatalf("variant %d: binding wrong at assign %b: got %v want %v", vi, leafAssign, got, want)
			}
		}
	}
}

func swapTT(tt uint64, i int) uint64 {
	// adjacent-variable swap re-exported via aig would be internal; do it
	// manually for vars i,i+1 over 3 vars.
	var out uint64
	for row := 0; row < 8; row++ {
		bi := (row >> uint(i)) & 1
		bj := (row >> uint(i+1)) & 1
		swapped := row&^(1<<uint(i))&^(1<<uint(i+1)) | bi<<uint(i+1) | bj<<uint(i)
		if tt&(1<<uint(swapped)) != 0 {
			out |= 1 << uint(row)
		}
	}
	return out
}

func randomAIG(seed int64, nPI, nNodes, nPO int) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New("rand")
	lits := make([]aig.Lit, 0, nPI+nNodes)
	for i := 0; i < nPI; i++ {
		lits = append(lits, g.AddPI(piName(i)))
	}
	for i := 0; i < nNodes; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < nPO; i++ {
		g.AddPO(lits[len(lits)-1-i].NotIf(rng.Intn(2) == 0), poName(i))
	}
	return g
}

func piName(i int) string { return "pi" + string(rune('a'+i)) }
func poName(i int) string { return "po" + string(rune('a'+i)) }

// verifyMapped checks the netlist realizes the AIG on 6*64 random vectors
// (exhaustive for <= 6 inputs).
func verifyMapped(t *testing.T, g *aig.AIG, nl *netlist.Netlist) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 6; round++ {
		words := make([]uint64, g.NumPIs())
		in := make(map[string]uint64, g.NumPIs())
		for i := range words {
			words[i] = rng.Uint64()
			if round == 0 && g.NumPIs() <= 6 {
				words[i] = aig.Truth6Var(i) // exhaustive patterns
			}
			in[g.PIName(i)] = words[i]
		}
		vals := g.SimWords(words)
		netVals, err := nl.SimulateWords(in)
		if err != nil {
			t.Fatalf("netlist sim: %v", err)
		}
		for i := 0; i < g.NumPOs(); i++ {
			want := aig.EvalLit(vals, g.PO(i))
			got, ok := netVals[nl.Resolve(g.POName(i))]
			if !ok {
				t.Fatalf("output %s undriven", g.POName(i))
			}
			if got != want {
				t.Fatalf("round %d output %s: netlist %x != aig %x", round, g.POName(i), got, want)
			}
		}
	}
}

func TestMapFunctionalAllModes(t *testing.T) {
	ml := buildML(t, 300)
	for _, mode := range []CostMode{Baseline, PowerAreaDelay, PowerDelayArea} {
		for seed := int64(1); seed <= 10; seed++ {
			g := randomAIG(seed, 6, 70, 5)
			nl, err := Map(context.Background(), g, ml, Options{Mode: mode})
			if err != nil {
				t.Fatalf("mode %v seed %d: %v", mode, seed, err)
			}
			if nl.NumGates() == 0 {
				t.Fatalf("mode %v seed %d: empty netlist", mode, seed)
			}
			verifyMapped(t, g, nl)
		}
	}
}

func TestMapHandlesPIAndInvertedPOs(t *testing.T) {
	ml := buildML(t, 300)
	g := aig.New("edge")
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b)
	g.AddPO(a, "pass")      // PO = PI
	g.AddPO(a.Not(), "inv") // PO = !PI
	g.AddPO(x, "and")
	g.AddPO(x.Not(), "nand")
	nl, err := Map(context.Background(), g, ml, Options{Mode: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	verifyMapped(t, g, nl)
}

func TestMapSharedDriverPOs(t *testing.T) {
	ml := buildML(t, 300)
	g := aig.New("shared")
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.Or(a, b)
	g.AddPO(x, "o1")
	g.AddPO(x, "o2")
	g.AddPO(x.Not(), "o3")
	nl, err := Map(context.Background(), g, ml, Options{Mode: PowerDelayArea})
	if err != nil {
		t.Fatal(err)
	}
	verifyMapped(t, g, nl)
}

func TestModeChangesCostRanking(t *testing.T) {
	// The three priority lists must be able to disagree: construct
	// candidates where power and area rank differently.
	a := implChoice{area: 10, delay: 5e-12, power: 1e-15, valid: true}
	b := implChoice{area: 5, delay: 5e-12, power: 2e-15, valid: true}
	if better(a, b, Baseline) {
		t.Error("baseline must prefer the smaller-area candidate")
	}
	if !better(a, b, PowerAreaDelay) || !better(a, b, PowerDelayArea) {
		t.Error("power-first modes must prefer the lower-power candidate")
	}
	// Tie on power within epsilon: area breaks it for p->a->d.
	c := implChoice{area: 4, delay: 9e-12, power: 1.001e-15, valid: true}
	d := implChoice{area: 6, delay: 1e-12, power: 1.000e-15, valid: true}
	if !better(c, d, PowerAreaDelay) {
		t.Error("p->a->d should fall through to area on a power tie")
	}
	if better(c, d, PowerDelayArea) {
		t.Error("p->d->a should fall through to delay on a power tie")
	}
}

func TestMapVerilogExport(t *testing.T) {
	ml := buildML(t, 300)
	g := randomAIG(4, 5, 30, 3)
	nl, err := Map(context.Background(), g, ml, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb stringsBuilder
	if err := nl.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	for _, frag := range []string{"module rand", "endmodule", "assign"} {
		if !contains(s, frag) {
			t.Errorf("verilog missing %q", frag)
		}
	}
}

type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *stringsBuilder) String() string              { return string(s.b) }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRefinementPassesDoNotHurt(t *testing.T) {
	ml := buildML(t, 300)
	for seed := int64(1); seed <= 5; seed++ {
		g := randomAIG(seed, 6, 80, 5)
		one, err := Map(context.Background(), g, ml, Options{Mode: Baseline, Passes: 1})
		if err != nil {
			t.Fatal(err)
		}
		two, err := Map(context.Background(), g, ml, Options{Mode: Baseline, Passes: 2})
		if err != nil {
			t.Fatal(err)
		}
		verifyMapped(t, g, two)
		// Area-recovery refinement should not increase area noticeably.
		if two.Area() > one.Area()*1.1 {
			t.Errorf("seed %d: refinement grew area %v -> %v", seed, one.Area(), two.Area())
		}
	}
}
