// Package mapper implements cut-based standard-cell technology mapping with
// configurable cost-priority lists. This is where the paper's core
// contribution lives: the conventional mapper refuses to give up network
// size as its primary objective, while the cryogenic-aware variants promote
// power to the top of the priority list — power->area->delay and
// power->delay->area (Section IV-B).
package mapper

import (
	"fmt"

	"repro/internal/aig"
	"repro/internal/liberty"
	"repro/internal/pdk"
)

// Match binds a library cell to a cut function: cell input pin i connects to
// cut leaf PinToLeaf[i]; when OutNeg is set the cell realizes the complement
// of the cut function.
type Match struct {
	Cell      *pdk.Cell
	Lib       *liberty.Cell
	PinToLeaf []int
	OutNeg    bool

	// Pre-extracted nominal costs for ranking (SI units).
	Area    float64
	Delay   float64 // worst mid-grid arc delay
	Energy  float64 // average per-event internal energy at mid grid
	Leakage float64
	InCaps  []float64 // input pin capacitance per cell input

	// Canonicalization of the cell's own function, used to compose pin
	// bindings for a concrete cut.
	cellPerm []int
	cellNeg  bool
}

// MatchLibrary indexes the single-output combinational cells of a liberty
// library by the P-canonical form of their functions.
type MatchLibrary struct {
	Lib   *liberty.Library
	Cells []*pdk.Cell // the PDK catalog the liberty cells were built from
	// byCanon[n] maps canonical tables of n-input functions to matches.
	byCanon map[int]map[uint64][]*Match
	// Inv is the cheapest inverter, used for phase repair.
	Inv *Match
}

// BuildMatchLibrary prepares the match index from a characterized liberty
// library and its PDK cell definitions (joined by cell name). Only
// single-output combinational cells with at most maxK inputs participate.
func BuildMatchLibrary(lib *liberty.Library, cells []*pdk.Cell, maxK int) (*MatchLibrary, error) {
	ml := &MatchLibrary{Lib: lib, Cells: cells, byCanon: make(map[int]map[uint64][]*Match)}
	for _, lc := range lib.Cells {
		if lc.Sequential {
			continue
		}
		cell := pdk.FindCell(cells, lc.Name)
		if cell == nil || len(cell.Outputs) != 1 || cell.Seq {
			continue
		}
		n := len(cell.Inputs)
		if n == 0 || n > maxK || n > 6 {
			continue
		}
		tt, ok := cell.Truth(cell.Outputs[0])
		if !ok {
			continue
		}
		// Skip cells with redundant inputs: their support must be full for
		// a clean pin binding.
		if aig.TruthSupport(tt, n) != uint32(1<<uint(n))-1 {
			continue
		}
		m, err := newMatch(cell, lc, tt, n)
		if err != nil {
			return nil, err
		}
		canon, perm, outNeg := aig.CanonPP(tt, n)
		m.cellPerm = perm
		m.cellNeg = outNeg
		if ml.byCanon[n] == nil {
			ml.byCanon[n] = make(map[uint64][]*Match)
		}
		ml.byCanon[n][canon] = append(ml.byCanon[n][canon], m)
		if cell.Base == "INV" && (ml.Inv == nil || m.Area < ml.Inv.Area) {
			inv := *m
			inv.PinToLeaf = []int{0}
			ml.Inv = &inv
		}
	}
	if ml.Inv == nil {
		return nil, fmt.Errorf("mapper: library has no inverter")
	}
	if len(ml.byCanon) == 0 {
		return nil, fmt.Errorf("mapper: no matchable cells in library %s", lib.Name)
	}
	return ml, nil
}

func newMatch(cell *pdk.Cell, lc *liberty.Cell, tt uint64, n int) (*Match, error) {
	m := &Match{Cell: cell, Lib: lc, Area: lc.Area, Leakage: lc.LeakagePower}
	out := lc.Outputs()
	if len(out) != 1 {
		return nil, fmt.Errorf("mapper: cell %s must have one output", lc.Name)
	}
	var worstDelay, sumEnergy float64
	arcs := 0
	for _, in := range cell.Inputs {
		tm := lc.Timing(out[0].Name, in)
		pw := lc.Power(out[0].Name, in)
		if tm == nil || pw == nil {
			return nil, fmt.Errorf("mapper: cell %s missing arc %s", lc.Name, in)
		}
		slew, load := midPoint(tm.CellRise)
		d := tm.CellRise.Lookup(slew, load)
		if f := tm.CellFall.Lookup(slew, load); f > d {
			d = f
		}
		if d > worstDelay {
			worstDelay = d
		}
		sumEnergy += 0.5 * (pw.RisePower.Lookup(slew, load) + pw.FallPower.Lookup(slew, load))
		arcs++
		pin := lc.FindPin(in)
		if pin == nil {
			return nil, fmt.Errorf("mapper: cell %s missing pin %s", lc.Name, in)
		}
		m.InCaps = append(m.InCaps, pin.Cap)
	}
	m.Delay = worstDelay
	if arcs > 0 {
		m.Energy = sumEnergy / float64(arcs)
	}
	return m, nil
}

func midPoint(t *liberty.Table) (slew, load float64) {
	return t.Index1[len(t.Index1)/2], t.Index2[len(t.Index2)/2]
}

// MatchesFor returns the library matches for a cut function over n leaves,
// with pin bindings composed for this specific truth table. Results are
// cached by the caller if needed.
func (ml *MatchLibrary) MatchesFor(tt uint64, n int) []*Match {
	byN := ml.byCanon[n]
	if byN == nil {
		return nil
	}
	canon, cutPerm, cutNeg := aig.CanonPP(tt, n)
	raw := byN[canon]
	if len(raw) == 0 {
		return nil
	}
	out := make([]*Match, 0, len(raw))
	for _, m := range raw {
		// canon(y) = cut^cutNeg with leaf cutPerm[i] at position i
		//          = cell^cellNeg with pin cellPerm[i] at position i.
		// So cell pin cellPerm[i] binds to cut leaf cutPerm[i].
		bound := *m
		bound.PinToLeaf = make([]int, n)
		for i := 0; i < n; i++ {
			bound.PinToLeaf[m.cellPerm[i]] = cutPerm[i]
		}
		bound.OutNeg = m.cellNeg != cutNeg
		out = append(out, &bound)
	}
	return out
}
