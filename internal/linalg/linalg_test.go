package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	m := NewMatrix(3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	x, err := SolveSystem(m, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	if MaxAbsDiff(x, want) > 1e-12 {
		t.Errorf("x = %v, want %v", x, want)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	m := NewMatrix(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := SolveSystem(m, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestPivotingRequired(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	m := NewMatrix(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := SolveSystem(m, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSingularDetected(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := Factor(m); err != ErrSingular {
		t.Errorf("Factor(singular) err = %v, want ErrSingular", err)
	}
}

func TestFactorReuse(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 4)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	x1 := f.Solve([]float64{1, 0})
	x2 := f.Solve([]float64{0, 1})
	// Check A*x = b for both.
	check := func(x, b []float64) {
		for i := 0; i < 2; i++ {
			got := m.At(i, 0)*x[0] + m.At(i, 1)*x[1]
			if math.Abs(got-b[i]) > 1e-12 {
				t.Errorf("residual row %d: %v vs %v", i, got, b[i])
			}
		}
	}
	check(x1, []float64{1, 0})
	check(x2, []float64{0, 1})
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with the original")
	}
}

func TestQuickRandomSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
			m.Add(i, i, float64(n)) // diagonal dominance -> well conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSystem(m, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += m.At(i, j) * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
