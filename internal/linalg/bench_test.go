package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmark sizes span the characterization workloads: 8 is a small
// combinational cell, 32 a flop with scan, 128 a stitched multi-cell DUT.
var benchSizes = []int{8, 32, 128}

// BenchmarkFactor compares the cost of a dense O(n^3) factorization against
// a fresh sparse symbolic+numeric factorization and a pattern-reusing
// numeric refactorization — the per-Newton-iteration costs of the three
// solver strategies.
func BenchmarkFactor(b *testing.B) {
	for _, n := range benchSizes {
		rng := rand.New(rand.NewSource(int64(n)))
		m, s := randomSystem(rng, n, 3)
		b.Run(fmt.Sprintf("dense/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Factor(m.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Factor(0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse-refactor/n=%d", n), func(b *testing.B) {
			lu, err := s.Factor(0.1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := lu.Refactor(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolve measures the triangular-solve cost given an existing
// factorization (the steady-state per-iteration work once the symbolic
// analysis is amortized away).
func BenchmarkSolve(b *testing.B) {
	for _, n := range benchSizes {
		rng := rand.New(rand.NewSource(int64(n)))
		m, s := randomSystem(rng, n, 3)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		b.Run(fmt.Sprintf("dense/n=%d", n), func(b *testing.B) {
			f, err := Factor(m.Clone())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Solve(rhs)
			}
		})
		b.Run(fmt.Sprintf("sparse/n=%d", n), func(b *testing.B) {
			lu, err := s.Factor(0.1)
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lu.SolveInto(x, rhs)
			}
		})
	}
}
