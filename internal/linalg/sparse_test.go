package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSystem builds a random diagonally-loaded sparse system with ~extra
// off-diagonal entries per row, mirroring MNA structure (symmetric pattern,
// unsymmetric values), as both a dense Matrix and a compiled Sparse.
func randomSystem(rng *rand.Rand, n, extra int) (*Matrix, *Sparse) {
	type entry struct{ i, j int }
	seen := map[entry]bool{}
	p := NewPattern(n)
	for i := 0; i < n; i++ {
		p.Add(i, i)
		seen[entry{i, i}] = true
	}
	for k := 0; k < n*extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		// Symmetric pattern, like conductance stamps.
		for _, e := range []entry{{i, j}, {j, i}} {
			if !seen[e] {
				seen[e] = true
				p.Add(e.i, e.j)
			}
		}
	}
	s := p.Compile()
	m := NewMatrix(n)
	fill := func() {
		s.Zero()
		m.Zero()
		for j := 0; j < n; j++ {
			for q := s.ColPtr[j]; q < s.ColPtr[j+1]; q++ {
				i := int(s.Rows[q])
				v := rng.NormFloat64()
				if i == j {
					v += float64(extra) + 2 // keep it comfortably nonsingular
				}
				s.Vals[q] = v
				m.Set(i, j, v)
			}
		}
	}
	fill()
	return m, s
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSparseVsDenseSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8, 13, 21, 34, 55} {
		for trial := 0; trial < 5; trial++ {
			m, s := randomSystem(rng, n, 3)
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			want, err := SolveSystem(m, b)
			if err != nil {
				t.Fatalf("n=%d dense: %v", n, err)
			}
			lu, err := s.Factor(0.1)
			if err != nil {
				t.Fatalf("n=%d sparse factor: %v", n, err)
			}
			got := make([]float64, n)
			lu.SolveInto(got, b)
			if d := maxDiff(got, want); d > 1e-9 {
				t.Errorf("n=%d trial=%d sparse/dense mismatch: %g", n, trial, d)
			}
		}
	}
}

func TestSparseRefactorMatchesFreshFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	m, s := randomSystem(rng, n, 4)
	lu, err := s.Factor(0.1)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	got := make([]float64, n)
	// Perturb the values (same pattern) repeatedly and refactor in place;
	// the solutions must track a dense solve of the same system.
	for round := 0; round < 10; round++ {
		for j := 0; j < n; j++ {
			for q := s.ColPtr[j]; q < s.ColPtr[j+1]; q++ {
				i := int(s.Rows[q])
				v := s.Vals[q] * (1 + 0.1*rng.NormFloat64())
				s.Vals[q] = v
				m.Set(i, j, v)
			}
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		if err := lu.Refactor(); err != nil {
			t.Fatalf("round %d: refactor: %v", round, err)
		}
		lu.SolveInto(got, b)
		want, err := SolveSystem(m, b)
		if err != nil {
			t.Fatalf("round %d: dense: %v", round, err)
		}
		if d := maxDiff(got, want); d > 1e-8 {
			t.Errorf("round %d: refactor solution off by %g", round, d)
		}
	}
}

func TestSparsePermutationHeavy(t *testing.T) {
	// A cyclic permutation-like system with zero diagonal forces real
	// pivoting: x[i] coupled only off-diagonal.
	n := 9
	p := NewPattern(n)
	for i := 0; i < n; i++ {
		p.Add(i, (i+1)%n)
		p.Add((i+1)%n, i)
	}
	s := p.Compile()
	m := NewMatrix(n)
	rng := rand.New(rand.NewSource(3))
	for j := 0; j < n; j++ {
		for q := s.ColPtr[j]; q < s.ColPtr[j+1]; q++ {
			v := 1 + rng.Float64()
			s.Vals[q] = v
			m.Set(int(s.Rows[q]), j, v)
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	want, err := SolveSystem(m, b)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := s.Factor(0.1)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	lu.SolveInto(got, b)
	if d := maxDiff(got, want); d > 1e-9 {
		t.Errorf("mismatch %g", d)
	}
}

func TestSparseSingular(t *testing.T) {
	p := NewPattern(3)
	for i := 0; i < 3; i++ {
		p.Add(i, i)
	}
	p.Add(0, 1)
	s := p.Compile()
	// Row 2 (and column 2) entirely zero.
	s.Vals[s.Slot(0, 0)] = 1
	s.Vals[s.Slot(1, 1)] = 1
	if _, err := s.Factor(0.1); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSparseRefactorDrift(t *testing.T) {
	// Factor with a dominant diagonal, then collapse the pivot that was
	// chosen so the frozen order becomes unstable; Refactor must refuse
	// rather than return garbage, and a fresh Factor must recover.
	p := NewPattern(2)
	p.Add(0, 0)
	p.Add(1, 0)
	p.Add(0, 1)
	p.Add(1, 1)
	s := p.Compile()
	set := func(a, b, c, d float64) {
		s.Vals[s.Slot(0, 0)] = a
		s.Vals[s.Slot(0, 1)] = b
		s.Vals[s.Slot(1, 0)] = c
		s.Vals[s.Slot(1, 1)] = d
	}
	set(1, 1, 1, 2)
	lu, err := s.Factor(0.1)
	if err != nil {
		t.Fatal(err)
	}
	set(1e-14, 1, 1, 2) // the (0,0) pivot candidate vanishes
	if err := lu.Refactor(); err != ErrPivotDrift {
		t.Fatalf("want ErrPivotDrift, got %v", err)
	}
	lu2, err := s.Factor(0.1)
	if err != nil {
		t.Fatalf("fresh factor after drift: %v", err)
	}
	bvec := []float64{1, 1}
	got := make([]float64, 2)
	lu2.SolveInto(got, bvec)
	m := NewMatrix(2)
	m.Set(0, 0, 1e-14)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	want, err := SolveSystem(m, bvec)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(got, want); d > 1e-9 {
		t.Errorf("post-drift solve off by %g", d)
	}
}

func TestSparseSlotAndMulVec(t *testing.T) {
	p := NewPattern(3)
	p.Add(0, 0)
	p.Add(0, 0) // duplicate collapses
	p.Add(2, 0)
	p.Add(1, 1)
	p.Add(0, 2)
	p.Add(2, 2)
	s := p.Compile()
	if s.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", s.NNZ())
	}
	if s.Slot(1, 0) != -1 || s.Slot(2, 1) != -1 {
		t.Error("phantom slots")
	}
	s.Add(0, 0, 2)
	s.Add(2, 0, 3)
	s.Add(1, 1, 4)
	s.Add(0, 2, 5)
	s.Add(2, 2, 6)
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	s.MulVecInto(dst, x)
	want := []float64{2*1 + 5*3, 4 * 2, 3*1 + 6*3}
	if d := maxDiff(dst, want); d != 0 {
		t.Errorf("matvec = %v, want %v", dst, want)
	}
	// Dense counterpart.
	m := NewMatrix(3)
	m.Set(0, 0, 2)
	m.Set(2, 0, 3)
	m.Set(1, 1, 4)
	m.Set(0, 2, 5)
	m.Set(2, 2, 6)
	m.MulVecInto(dst, x)
	if d := maxDiff(dst, want); d != 0 {
		t.Errorf("dense matvec = %v, want %v", dst, want)
	}
}

func TestSparseFillInReported(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, s := randomSystem(rng, 30, 3)
	lu, err := s.Factor(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if lu.FillIn() < 0 {
		t.Errorf("negative fill-in %d", lu.FillIn())
	}
}
