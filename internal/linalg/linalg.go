// Package linalg provides the dense linear algebra needed by the SPICE
// engine: LU factorization with partial pivoting and triangular solves.
// Standard-cell circuits have a few dozen unknowns, so a dense solver is the
// right tool.
package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when factorization encounters an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N int
	A []float64
}

// NewMatrix returns a zeroed n x n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, A: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set sets element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.A[i*m.N+j] += v }

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.A, m.A)
	return c
}

// LU holds an LU factorization with its pivot permutation.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// Factor computes the LU factorization of m with partial pivoting. m is not
// modified.
func Factor(m *Matrix) (*LU, error) {
	n := m.N
	f := &LU{n: n, lu: append([]float64(nil), m.A...), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	a := f.lu
	for k := 0; k < n; k++ {
		// Pivot search.
		p := k
		max := math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > max {
				max, p = v, i
			}
		}
		if max < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] / pivot
			a[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A*x = b for x using the factorization. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (unit lower triangular).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// SolveSystem factors m and solves m*x = b in one call.
func SolveSystem(m *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(m)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// MaxAbsDiff returns the infinity-norm distance between two vectors of equal
// length.
func MaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
