// Sparse linear algebra for the SPICE engine: compressed-sparse-column
// matrices with a frozen pattern, Gilbert-Peierls LU factorization with
// threshold partial pivoting (Markowitz tie-breaks), and symbolic
// factorization that is computed once per sparsity pattern and reused across
// numeric refactorizations. MNA systems are >90% structurally zero even for
// small cells, and the pattern is fixed per circuit topology, so the
// characterization inner loop pays only for the nonzeros.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrPivotDrift is returned by Refactor when a pivot chosen during the
// original factorization has become numerically unacceptable for the current
// values. The caller should re-run Factor to pick a fresh pivot order.
var ErrPivotDrift = errors.New("linalg: pivot drifted; refactorization needs fresh pivot order")

// Pattern accumulates the sparsity pattern of a square matrix before it is
// frozen into a Sparse. Duplicate Add calls are deduplicated at Compile.
type Pattern struct {
	n    int
	cols [][]int32
}

// NewPattern returns an empty n x n pattern.
func NewPattern(n int) *Pattern {
	return &Pattern{n: n, cols: make([][]int32, n)}
}

// Add records that entry (i, j) may be nonzero.
func (p *Pattern) Add(i, j int) {
	p.cols[j] = append(p.cols[j], int32(i))
}

// Compile freezes the pattern into a zero-valued Sparse matrix with sorted,
// deduplicated columns. Every structural diagonal entry callers rely on must
// have been Added; Compile does not insert any.
func (p *Pattern) Compile() *Sparse {
	s := &Sparse{N: p.n, ColPtr: make([]int32, p.n+1)}
	for j, col := range p.cols {
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		prev := int32(-1)
		for _, r := range col {
			if r != prev {
				s.Rows = append(s.Rows, r)
				prev = r
			}
		}
		s.ColPtr[j+1] = int32(len(s.Rows))
	}
	s.Vals = make([]float64, len(s.Rows))
	return s
}

// Sparse is a square sparse matrix in compressed-sparse-column form with a
// frozen pattern: ColPtr/Rows never change after Compile, so stamping writes
// through stable slot indices into Vals and factorizations can cache their
// symbolic analysis against the pattern.
type Sparse struct {
	N      int
	ColPtr []int32 // len N+1; column j occupies [ColPtr[j], ColPtr[j+1])
	Rows   []int32 // row index per entry, sorted within each column
	Vals   []float64
}

// NNZ returns the number of structural nonzeros.
func (s *Sparse) NNZ() int { return len(s.Rows) }

// Zero clears all values, keeping the pattern.
func (s *Sparse) Zero() {
	for i := range s.Vals {
		s.Vals[i] = 0
	}
}

// Slot returns the index into Vals of entry (i, j), or -1 when (i, j) is not
// in the pattern. Columns are sorted, so the lookup is a binary search over
// the handful of entries in column j.
func (s *Sparse) Slot(i, j int) int {
	lo, hi := s.ColPtr[j], s.ColPtr[j+1]
	r := int32(i)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Rows[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.ColPtr[j+1] && s.Rows[lo] == r {
		return int(lo)
	}
	return -1
}

// Add adds v to entry (i, j), which must be in the pattern: the pattern is
// discovered from the exact same stamp calls, so a miss is a programming
// error, not a data error.
func (s *Sparse) Add(i, j int, v float64) {
	slot := s.Slot(i, j)
	if slot < 0 {
		panic(fmt.Sprintf("linalg: entry (%d,%d) not in sparsity pattern", i, j))
	}
	s.Vals[slot] += v
}

// At returns entry (i, j), zero when outside the pattern.
func (s *Sparse) At(i, j int) float64 {
	if slot := s.Slot(i, j); slot >= 0 {
		return s.Vals[slot]
	}
	return 0
}

// MulVecInto computes dst = S*x without allocating.
func (s *Sparse) MulVecInto(dst, x []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < s.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			dst[s.Rows[p]] += s.Vals[p] * xj
		}
	}
}

// SparseLU is an LU factorization of a Sparse matrix: PA = LU with L unit
// lower triangular and U upper triangular, both column-compressed in pivot
// order. The symbolic structure (pivot order, fill pattern, update schedule)
// is computed once by Factor; Refactor redoes only the numeric work, in
// place, with zero allocations — the SPICE Newton loop's steady state.
type SparseLU struct {
	a   *Sparse
	n   int
	tol float64

	perm   []int32 // perm[k] = original row sitting at pivot position k
	rowPos []int32 // rowPos[orig] = pivot position (inverse of perm)

	// L: column k holds entries at pivot positions > k (unit diagonal
	// implicit). U: column k holds entries at pivot positions < k in
	// increasing order, then the diagonal (position k) last — the order the
	// refactorization replay and the triangular solves need.
	lp, li []int32
	lx     []float64
	up, ui []int32
	ux     []float64

	work []float64 // dense accumulator, kept all-zero between uses
}

// minPivot is the hard floor below which a pivot counts as singular.
const minPivot = 1e-300

// driftTol is the Refactor stability bound: a replayed pivot smaller than
// driftTol times the largest candidate magnitude in its column means the
// frozen pivot order is no longer numerically viable.
const driftTol = 1e-5

// Factor computes an LU factorization of s using Gilbert-Peierls sparse LU
// with threshold partial pivoting: any row whose magnitude is within tol of
// the column maximum is an acceptable pivot, and among acceptable rows the
// one with the lowest static Markowitz count (fewest nonzeros in its row of
// s) is chosen to limit fill-in. tol in (0, 1]; tol = 1 is classic partial
// pivoting, smaller values trade growth for sparsity.
func (s *Sparse) Factor(tol float64) (*SparseLU, error) {
	if tol <= 0 || tol > 1 {
		tol = 0.1
	}
	n := s.N
	lu := &SparseLU{
		a: s, n: n, tol: tol,
		perm:   make([]int32, n),
		rowPos: make([]int32, n),
		lp:     make([]int32, n+1),
		up:     make([]int32, n+1),
		work:   make([]float64, n),
	}
	// Static Markowitz tie-break counts: nonzeros per row of A.
	rowCount := make([]int32, n)
	for _, r := range s.Rows {
		rowCount[r]++
	}
	pinv := lu.rowPos
	for i := range pinv {
		pinv[i] = -1
	}
	x := lu.work
	pattern := make([]int32, n) // reach of A(:,k), topological order in [top, n)
	stack := make([]int32, n)   // DFS node stack
	pstack := make([]int32, n)  // DFS child-pointer stack
	visited := make([]int32, n) // visited[i] == k marks i reached for column k
	for i := range visited {
		visited[i] = -1
	}
	est := 4 * s.NNZ()
	lu.li = make([]int32, 0, est)
	lu.lx = make([]float64, 0, est)
	lu.ui = make([]int32, 0, est)
	lu.ux = make([]float64, 0, est)

	for k := 0; k < n; k++ {
		// Symbolic: depth-first reach of A(:,k) through the columns of L
		// built so far. During factorization L rows are original indices;
		// a node's children exist only once the node has been pivoted.
		top := n
		for p := s.ColPtr[k]; p < s.ColPtr[k+1]; p++ {
			r := s.Rows[p]
			if visited[r] == int32(k) {
				continue
			}
			head := 0
			stack[0] = r
			pstack[0] = 0
			visited[r] = int32(k)
			for head >= 0 {
				node := stack[head]
				var child int32 = -1
				if pk := pinv[node]; pk >= 0 {
					for q := lu.lp[pk] + pstack[head]; q < lu.lp[pk+1]; q++ {
						c := lu.li[q]
						pstack[head]++
						if visited[c] != int32(k) {
							child = c
							break
						}
					}
				}
				if child >= 0 {
					head++
					stack[head] = child
					pstack[head] = 0
					visited[child] = int32(k)
					continue
				}
				head--
				top--
				pattern[top] = node
			}
		}
		// Numeric: sparse triangular solve x = L \ A(:,k) over the reach.
		for t := top; t < n; t++ {
			x[pattern[t]] = 0
		}
		for p := s.ColPtr[k]; p < s.ColPtr[k+1]; p++ {
			x[s.Rows[p]] = s.Vals[p]
		}
		for t := top; t < n; t++ {
			node := pattern[t]
			pk := pinv[node]
			if pk < 0 {
				continue
			}
			xn := x[node]
			if xn == 0 {
				continue
			}
			for q := lu.lp[pk]; q < lu.lp[pk+1]; q++ {
				x[lu.li[q]] -= lu.lx[q] * xn
			}
		}
		// Pivot: among not-yet-pivotal rows within tol of the column max,
		// take the sparsest row (static Markowitz count); break ties toward
		// larger magnitude, then smaller row index, for determinism.
		var cmax float64
		for t := top; t < n; t++ {
			node := pattern[t]
			if pinv[node] < 0 {
				if a := math.Abs(x[node]); a > cmax {
					cmax = a
				}
			}
		}
		if cmax < minPivot {
			lu.clearColumn(pattern, top)
			return nil, ErrSingular
		}
		var pivRow int32 = -1
		var pivAbs float64
		for t := top; t < n; t++ {
			node := pattern[t]
			if pinv[node] >= 0 {
				continue
			}
			a := math.Abs(x[node])
			if a < tol*cmax {
				continue
			}
			if pivRow < 0 ||
				rowCount[node] < rowCount[pivRow] ||
				(rowCount[node] == rowCount[pivRow] && (a > pivAbs || (a == pivAbs && node < pivRow))) {
				pivRow, pivAbs = node, a
			}
		}
		pivot := x[pivRow]
		// Emit U column k: pivotal entries sorted by pivot position, then
		// the diagonal. The sort runs once per pattern, never in Refactor.
		ustart := len(lu.ui)
		for t := top; t < n; t++ {
			node := pattern[t]
			if pk := pinv[node]; pk >= 0 {
				lu.ui = append(lu.ui, pk)
				lu.ux = append(lu.ux, x[node])
			}
		}
		sortPairs(lu.ui[ustart:], lu.ux[ustart:])
		lu.ui = append(lu.ui, int32(k))
		lu.ux = append(lu.ux, pivot)
		lu.up[k+1] = int32(len(lu.ui))
		// Emit L column k (original row indices for now; remapped below).
		for t := top; t < n; t++ {
			node := pattern[t]
			if pinv[node] < 0 && node != pivRow {
				lu.li = append(lu.li, node)
				lu.lx = append(lu.lx, x[node]/pivot)
			}
		}
		lu.lp[k+1] = int32(len(lu.li))
		pinv[pivRow] = int32(k)
		lu.clearColumn(pattern, top)
	}
	// All rows are pivotal now: remap L's row indices into pivot positions
	// so Refactor and SolveInto run entirely in permuted space.
	for p := range lu.li {
		lu.li[p] = pinv[lu.li[p]]
	}
	for i, k := range pinv {
		lu.perm[k] = int32(i)
	}
	return lu, nil
}

// clearColumn restores the all-zero work-array invariant after a column.
func (lu *SparseLU) clearColumn(pattern []int32, top int) {
	for t := top; t < lu.n; t++ {
		lu.work[pattern[t]] = 0
	}
}

// sortPairs sorts keys ascending, permuting vals alongside. Columns hold a
// handful of entries, so insertion sort beats anything allocating.
func sortPairs(keys []int32, vals []float64) {
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1], vals[j+1] = keys[j], vals[j]
			j--
		}
		keys[j+1], vals[j+1] = k, v
	}
}

// Refactor recomputes the numeric factorization for the current values of
// the matrix it was factored from, reusing the symbolic analysis: pivot
// order, fill pattern, and update schedule are replayed as recorded, with no
// allocation and no search. It fails with ErrPivotDrift when a frozen pivot
// has become too small relative to its column, and ErrSingular when a column
// vanishes outright; on failure the caller re-Factors for a fresh pivot
// order.
func (lu *SparseLU) Refactor() error {
	a := lu.a
	x := lu.work
	// Hoist the index/value arrays: the compiler cannot prove lu's fields
	// don't alias the x writes, so field accesses inside the elimination
	// loop would reload through the pointer every iteration.
	up, ui, ux := lu.up, lu.ui, lu.ux
	lp, li, lx := lu.lp, lu.li, lu.lx
	rowPos := lu.rowPos
	for k := 0; k < lu.n; k++ {
		// Scatter A(:,k) into pivot-position space. The fill positions of
		// this column are already zero (all-zero work invariant).
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			x[rowPos[a.Rows[p]]] = a.Vals[p]
		}
		// Replay the eliminations in increasing pivot-position order.
		ud := up[k+1] - 1 // diagonal entry, stored last
		for t := up[k]; t < ud; t++ {
			pos := ui[t]
			ukj := x[pos]
			ux[t] = ukj
			if ukj == 0 {
				continue
			}
			for q := lp[pos]; q < lp[pos+1]; q++ {
				x[li[q]] -= lx[q] * ukj
			}
		}
		pivot := x[int32(k)]
		ux[ud] = pivot
		// Stability: compare the replayed pivot against the candidates
		// partial pivoting would choose among (the L positions + diagonal).
		cmax := math.Abs(pivot)
		for q := lp[k]; q < lp[k+1]; q++ {
			if a := math.Abs(x[li[q]]); a > cmax {
				cmax = a
			}
		}
		bad := math.Abs(pivot) < minPivot || math.Abs(pivot) < driftTol*cmax
		if bad {
			// Restore the work invariant before reporting.
			x[int32(k)] = 0
			for t := up[k]; t < ud; t++ {
				x[ui[t]] = 0
			}
			for q := lp[k]; q < lp[k+1]; q++ {
				x[li[q]] = 0
			}
			if cmax < minPivot {
				return ErrSingular
			}
			return ErrPivotDrift
		}
		for q := lp[k]; q < lp[k+1]; q++ {
			lx[q] = x[li[q]] / pivot
			x[li[q]] = 0
		}
		for t := up[k]; t <= ud; t++ {
			x[ui[t]] = 0
		}
	}
	return nil
}

// SolveInto solves A*x = b using the factorization, writing the solution
// into x without allocating. x and b must have length N and must not alias.
func (lu *SparseLU) SolveInto(x, b []float64) {
	up, ui, ux := lu.up, lu.ui, lu.ux
	lp, li, lx := lu.lp, lu.li, lu.lx
	// Permute: (PA)x = Pb.
	for k := 0; k < lu.n; k++ {
		x[k] = b[lu.perm[k]]
	}
	// Forward solve L y = Pb (unit diagonal, column-major).
	for k := 0; k < lu.n; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		for q := lp[k]; q < lp[k+1]; q++ {
			x[li[q]] -= lx[q] * xk
		}
	}
	// Back solve U x = y (diagonal stored last per column).
	for k := lu.n - 1; k >= 0; k-- {
		ud := up[k+1] - 1
		xk := x[k] / ux[ud]
		x[k] = xk
		if xk == 0 {
			continue
		}
		for t := up[k]; t < ud; t++ {
			x[ui[t]] -= ux[t] * xk
		}
	}
}

// FillIn returns the number of entries in L and U (excluding L's implicit
// unit diagonal) beyond the nonzeros of the factored matrix — the fill the
// pivot ordering admitted.
func (lu *SparseLU) FillIn() int {
	return len(lu.li) + len(lu.ui) - lu.a.NNZ()
}

// MulVecInto computes dst = M*x without allocating (dense counterpart of
// Sparse.MulVecInto, used by the residual scan on the dense solver path).
func (m *Matrix) MulVecInto(dst, x []float64) {
	n := m.N
	for i := 0; i < n; i++ {
		row := m.A[i*n : (i+1)*n]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}
