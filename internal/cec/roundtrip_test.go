package cec_test

import (
	"bytes"
	"testing"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/epfl"
)

// TestAIGERRoundTripProvenEquivalent strengthens the writer/reader contract
// from "same node counts" to a formal proof: for several EPFL generators,
// write→read in both AIGER encodings and prove the result equivalent to the
// original with the sweeping engine.
func TestAIGERRoundTripProvenEquivalent(t *testing.T) {
	for _, name := range []string{"ctrl", "int2float", "dec", "priority", "router"} {
		g, err := epfl.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, enc := range []struct {
			kind  string
			write func(*aig.AIG, *bytes.Buffer) error
			read  func(*bytes.Buffer) (*aig.AIG, error)
		}{
			{"ascii",
				func(g *aig.AIG, b *bytes.Buffer) error { return g.WriteAIGER(b) },
				func(b *bytes.Buffer) (*aig.AIG, error) { return aig.ReadAIGER(b) }},
			{"binary",
				func(g *aig.AIG, b *bytes.Buffer) error { return g.WriteAIGERBinary(b) },
				func(b *bytes.Buffer) (*aig.AIG, error) { return aig.ReadAIGERBinary(b) }},
		} {
			var buf bytes.Buffer
			if err := enc.write(g, &buf); err != nil {
				t.Fatalf("%s %s write: %v", name, enc.kind, err)
			}
			back, err := enc.read(&buf)
			if err != nil {
				t.Fatalf("%s %s read: %v", name, enc.kind, err)
			}
			v := cec.Check(ctx, g, back, cec.Options{Seed: 11})
			if v.Status != cec.Equal {
				t.Errorf("%s %s round trip: %v (failing %q cex %q)",
					name, enc.kind, v.Status, v.FailingOutput, v.CexString())
			}
		}
	}
}
