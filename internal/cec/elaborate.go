package cec

import (
	"fmt"

	"repro/internal/aig"
	"repro/internal/netlist"
)

// Elaborate rebuilds a technology-mapped netlist as an AIG: every cell
// instance's boolean function is recovered from its PDK truth table (the
// same table the mapper's cut matching used) and expanded into AND/INV
// logic by Shannon decomposition, with structural hashing collapsing the
// shared structure. PI and PO names follow the netlist's port lists, so the
// result can be Check-ed directly against the synthesis flow's golden or
// optimized AIG. Constant ties (1'b0 / 1'b1) elaborate to the AIG's
// constant literals.
func Elaborate(nl *netlist.Netlist) (*aig.AIG, error) {
	g := aig.New(nl.Name)
	lits := make(map[string]aig.Lit, len(nl.Inputs)+len(nl.Gates)+2)
	lits[netlist.Const0] = aig.False
	lits[netlist.Const1] = aig.True
	for _, in := range nl.Inputs {
		if _, dup := lits[in]; dup {
			return nil, fmt.Errorf("cec: duplicate input %q", in)
		}
		lits[in] = g.AddPI(in)
	}
	for _, gate := range nl.Gates {
		def := nl.Cell(gate.Cell)
		if def == nil {
			return nil, fmt.Errorf("cec: gate %s: unknown cell %q", gate.Name, gate.Cell)
		}
		if len(def.Outputs) != 1 {
			return nil, fmt.Errorf("cec: gate %s: cell %s is not single-output", gate.Name, gate.Cell)
		}
		tt, ok := def.Truth(def.Outputs[0])
		if !ok {
			return nil, fmt.Errorf("cec: gate %s: cell %s has no truth table (sequential or >6 inputs)", gate.Name, gate.Cell)
		}
		ins := make([]aig.Lit, len(gate.Inputs))
		for i, net := range gate.Inputs {
			l, ok := lits[net]
			if !ok {
				return nil, fmt.Errorf("cec: gate %s: net %q used before driven", gate.Name, net)
			}
			ins[i] = l
		}
		if _, dup := lits[gate.Output]; dup {
			return nil, fmt.Errorf("cec: gate %s: net %q driven twice", gate.Name, gate.Output)
		}
		lits[gate.Output] = buildTruth(g, tt, ins)
	}
	for _, o := range nl.Outputs {
		drv := nl.Resolve(o)
		l, ok := lits[drv]
		if !ok {
			return nil, fmt.Errorf("cec: output %q resolves to undriven net %q", o, drv)
		}
		g.AddPO(l, o)
	}
	return g, nil
}

// buildTruth synthesizes the function given by truth table tt over the
// fanin literals ins (bit i of the row index is ins[i]) by recursive
// Shannon cofactoring on the highest input. The AIG's structural hashing
// and constant propagation keep the expansion compact.
func buildTruth(g *aig.AIG, tt uint64, ins []aig.Lit) aig.Lit {
	n := len(ins)
	if n == 0 {
		if tt&1 != 0 {
			return aig.True
		}
		return aig.False
	}
	rows := 1 << uint(n)
	if rows < 64 {
		tt &= 1<<uint(rows) - 1
	}
	switch tt {
	case 0:
		return aig.False
	case allOnes(rows):
		return aig.True
	}
	half := rows / 2
	loMask := allOnes(half)
	lo := buildTruth(g, tt&loMask, ins[:n-1])               // ins[n-1] = 0 cofactor
	hi := buildTruth(g, (tt>>uint(half))&loMask, ins[:n-1]) // ins[n-1] = 1 cofactor
	return g.Mux(ins[n-1], hi, lo)
}

// allOnes returns a mask of the given number of low bits (64 -> all bits).
func allOnes(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}
