package cec_test

import (
	"strings"
	"testing"

	"repro/internal/cec"
	"repro/internal/epfl"
	"repro/internal/mapper"
	"repro/internal/netlist"
	"repro/internal/pdk"
	"repro/internal/testlib"
)

var catalog = pdk.Catalog()

func buildML(t *testing.T) *mapper.MatchLibrary {
	t.Helper()
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	ml, err := mapper.BuildMatchLibrary(lib, used, 6)
	if err != nil {
		t.Fatal(err)
	}
	return ml
}

// TestElaborateMappedEqualsSource: map small EPFL circuits, elaborate the
// netlist back to an AIG, and prove it equivalent to the source.
func TestElaborateMappedEqualsSource(t *testing.T) {
	ml := buildML(t)
	for _, name := range []string{"ctrl", "int2float", "dec"} {
		g, err := epfl.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		nl, err := mapper.Map(ctx, g, ml, mapper.Options{K: 5})
		if err != nil {
			t.Fatalf("%s: map: %v", name, err)
		}
		back, err := cec.Elaborate(nl)
		if err != nil {
			t.Fatalf("%s: elaborate: %v", name, err)
		}
		v := cec.Check(ctx, g, back, cec.Options{Seed: 5})
		if v.Status != cec.Equal {
			t.Errorf("%s: mapped netlist not equivalent: %v (failing %q cex %q)",
				name, v.Status, v.FailingOutput, v.CexString())
		}
	}
}

// TestElaborateVerilogRoundTrip: the full signoff data path — map, write
// structural Verilog, read it back, elaborate, prove equivalence.
func TestElaborateVerilogRoundTrip(t *testing.T) {
	ml := buildML(t)
	g, err := epfl.Build("int2float")
	if err != nil {
		t.Fatal(err)
	}
	nl, err := mapper.Map(ctx, g, ml, mapper.Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := nl.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := netlist.ReadVerilog(strings.NewReader(sb.String()), catalog)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := cec.Elaborate(back)
	if err != nil {
		t.Fatal(err)
	}
	v := cec.Check(ctx, g, rebuilt, cec.Options{Seed: 5})
	if v.Status != cec.Equal {
		t.Errorf("verilog round trip not equivalent: %v (failing %q cex %q)",
			v.Status, v.FailingOutput, v.CexString())
	}
}

// TestElaborateConstantTies: constant literals on gate pins and in assigns
// elaborate to AIG constants.
func TestElaborateConstantTies(t *testing.T) {
	nl := netlist.New("consts", catalog)
	nl.Inputs = []string{"a"}
	if err := nl.AddGate("NAND2x1", []string{"a", netlist.Const1}, "n1"); err != nil {
		t.Fatal(err)
	}
	nl.Outputs = []string{"y", "z"}
	nl.Aliases["y"] = "n1"
	nl.Aliases["z"] = netlist.Const0
	g, err := cec.Elaborate(nl)
	if err != nil {
		t.Fatal(err)
	}
	// y = NAND(a, 1) = !a; z = 0.
	for _, a := range []bool{false, true} {
		out := g.Eval([]bool{a})
		if out[0] != !a || out[1] != false {
			t.Errorf("a=%v: got y=%v z=%v", a, out[0], out[1])
		}
	}
}

// TestElaborateErrors: broken netlists surface descriptive errors.
func TestElaborateErrors(t *testing.T) {
	nl := netlist.New("bad", catalog)
	nl.Inputs = []string{"a"}
	if err := nl.AddGate("INVx1", []string{"ghost"}, "n1"); err != nil {
		t.Fatal(err)
	}
	nl.Outputs = []string{"y"}
	nl.Aliases["y"] = "n1"
	if _, err := cec.Elaborate(nl); err == nil || !strings.Contains(err.Error(), "used before driven") {
		t.Errorf("undriven input not reported: %v", err)
	}
}
