package cec

import (
	"context"
	"hash/fnv"
	"math/rand"

	"repro/internal/aig"
	"repro/internal/obs"
	"repro/internal/sat"
)

// proveResult is the outcome of one SAT equivalence query.
type proveResult int

const (
	proven    proveResult = iota // UNSAT both directions: functionally equal
	refuted                      // SAT: a distinguishing input pattern exists
	undecided                    // conflict budget exhausted
)

// sweeper is the simulation-guided SAT-sweeping engine. It processes the
// joint miter graph m in topological order and maintains a reduced
// ("fraiged") graph red in which every proven-equivalent node class is
// represented once: lift maps each m variable to its literal in red.
//
// Candidate classes come from bit-parallel random simulation: nodes whose
// signatures agree (up to complement) are candidates, and an incremental
// SAT solver over red proves or refutes each candidate merge. Refuted
// candidates yield a counterexample pattern that is simulated back through
// m to split every class it distinguishes — the classic cex-feedback loop,
// run to fixpoint because each refinement strictly refines the partition.
type sweeper struct {
	m   *aig.AIG
	opt Options
	rng *rand.Rand

	sig    [][]uint64 // m variable -> simulation signature words
	nWords int

	red  *aig.AIG
	lift []aig.Lit // m variable -> literal in red

	pool    []int            // processed, unmerged m variables (class reps)
	classes map[uint64][]int // normalized signature hash -> pool members

	solver *sat.Solver
	cnf    *aig.CNFBuilder
	piSat  []int // SAT variable of each primary input (model extraction)

	stats *Stats
}

func newSweeper(m *aig.AIG, opt Options, stats *Stats) *sweeper {
	s := &sweeper{
		m:       m,
		opt:     opt,
		rng:     rand.New(rand.NewSource(opt.Seed)),
		sig:     make([][]uint64, m.NumVars()),
		classes: make(map[uint64][]int),
		stats:   stats,
	}
	stats.MiterNodes = m.NumNodes()

	// Initial random simulation: opt.SimWords words of 64 patterns each.
	in := make([]uint64, m.NumPIs())
	for w := 0; w < opt.SimWords; w++ {
		for i := range in {
			in[i] = s.rng.Uint64()
		}
		vals := m.SimWords(in)
		for v := range vals {
			s.sig[v] = append(s.sig[v], vals[v])
		}
	}
	s.nWords = opt.SimWords
	stats.SimPatterns = 64 * opt.SimWords

	// Reduced graph and the incremental solver over it.
	s.red = aig.New(m.Name + "_red")
	s.lift = make([]aig.Lit, m.NumVars())
	s.lift[0] = aig.False
	for i := 0; i < m.NumPIs(); i++ {
		s.lift[i+1] = s.red.AddPI(m.PIName(i))
	}
	s.solver = sat.New(0)
	s.cnf = aig.NewCNFBuilder(s.red, s.solver)
	s.piSat = make([]int, m.NumPIs())
	for i := range s.piSat {
		s.piSat[i] = s.cnf.SatVar(i + 1)
	}

	// The constant and the PIs seed the classes, so constant nodes and
	// input-equivalent nodes can merge onto them.
	s.register(0)
	for i := 1; i <= m.NumPIs(); i++ {
		s.register(i)
	}
	return s
}

// sweep runs the engine over every AND node of the miter.
func (s *sweeper) sweep(ctx context.Context) {
	_, span := obs.Start(ctx, "cec.sweep")
	defer span.End()
	first := s.m.NumPIs() + 1
	nodes := obs.Progress("cec.sweep", int64(s.m.NumVars()-first))
	defer nodes.Finish()
	for v := first; v < s.m.NumVars(); v++ {
		f0, f1 := s.m.Fanins(v)
		a := s.lift[f0.Var()].NotIf(f0.IsCompl())
		b := s.lift[f1.Var()].NotIf(f1.IsCompl())
		s.lift[v] = s.red.And(a, b)
		s.mergeOrRegister(v)
		nodes.Inc()
	}
	s.stats.ReducedNodes = s.red.NumNodes()
	span.SetAttr("miter_nodes", s.stats.MiterNodes)
	span.SetAttr("reduced_nodes", s.stats.ReducedNodes)
	span.SetAttr("refinements", s.stats.Refinements)
}

// liftLit maps an m literal into the reduced graph.
func (s *sweeper) liftLit(l aig.Lit) aig.Lit {
	return s.lift[l.Var()].NotIf(l.IsCompl())
}

// mergeOrRegister tries to merge node v onto a sim-compatible class
// representative; failing that, v becomes a representative itself.
func (s *sweeper) mergeOrRegister(v int) {
	var tried map[int]bool
	skip := func(u int) {
		if tried == nil {
			tried = make(map[int]bool)
		}
		tried[u] = true
	}
	for {
		u, phase, ok := s.candidate(v, tried)
		if !ok {
			s.register(v)
			return
		}
		target := s.lift[u].NotIf(phase)
		if target == s.lift[v] {
			// Structural hashing already merged them in the reduced graph.
			s.stats.StructMerges++
			return
		}
		res, cex := s.prove(s.lift[v], target, s.opt.ClassBudget)
		switch res {
		case proven:
			s.lift[v] = target
			s.stats.SATMerges++
			obs.C("cec.merges").Inc()
			return
		case refuted:
			if s.stats.Refinements < s.opt.MaxRefinements {
				// The counterexample pattern splits this class (and any
				// other class it happens to distinguish); re-lookup.
				s.refine(cex)
			} else {
				skip(u)
			}
		default: // undecided: leave v distinct from u, try other members
			skip(u)
		}
	}
}

// candidate returns a pool member whose signature matches v's up to
// complement (phase reports the complement), skipping tried ones.
func (s *sweeper) candidate(v int, tried map[int]bool) (u int, phase, ok bool) {
	for _, u := range s.classes[s.key(v)] {
		if tried[u] {
			continue
		}
		if ph, ok := s.sigEqual(u, v); ok {
			return u, ph, true
		}
	}
	return 0, false, false
}

// register adds v to the representative pool and the class index.
func (s *sweeper) register(v int) {
	k := s.key(v)
	s.classes[k] = append(s.classes[k], v)
	s.pool = append(s.pool, v)
}

// key hashes v's phase-normalized signature: signatures are complemented
// so that the very first simulated pattern evaluates to 0, which puts a
// node and its complement into the same class.
func (s *sweeper) key(v int) uint64 {
	h := fnv.New64a()
	var compl uint64
	if len(s.sig[v]) > 0 && s.sig[v][0]&1 != 0 {
		compl = ^uint64(0)
	}
	var buf [8]byte
	for _, w := range s.sig[v] {
		w ^= compl
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// sigEqual compares full signatures: equal (phase false), complementary
// (phase true), or neither.
func (s *sweeper) sigEqual(u, v int) (phase, ok bool) {
	su, sv := s.sig[u], s.sig[v]
	if len(su) != len(sv) || len(su) == 0 {
		return false, false
	}
	if su[0] == sv[0] {
		for i := range su {
			if su[i] != sv[i] {
				return false, false
			}
		}
		return false, true
	}
	for i := range su {
		if su[i] != ^sv[i] {
			return false, false
		}
	}
	return true, true
}

// prove runs the incremental two-sided miter query x ≡ y on the shared
// solver: encode both cones (lazily, once) and check satisfiability of
// (x & !y) then (!x & y) under assumptions. On refuted, the returned slice
// is the distinguishing primary-input assignment.
func (s *sweeper) prove(x, y aig.Lit, budget int64) (proveResult, []bool) {
	lx := s.cnf.SatLit(x)
	ly := s.cnf.SatLit(y)
	s.solver.ConflictBudget = budget
	s.stats.SATCalls++
	obs.C("cec.sat_calls").Inc()
	switch s.solver.Solve(lx, ly.Not()) {
	case sat.Sat:
		s.stats.Cex++
		obs.C("cec.cex").Inc()
		return refuted, s.model()
	case sat.Unknown:
		s.stats.SATTimeouts++
		return undecided, nil
	}
	s.stats.SATCalls++
	obs.C("cec.sat_calls").Inc()
	switch s.solver.Solve(lx.Not(), ly) {
	case sat.Sat:
		s.stats.Cex++
		obs.C("cec.cex").Inc()
		return refuted, s.model()
	case sat.Unknown:
		s.stats.SATTimeouts++
		return undecided, nil
	}
	return proven, nil
}

// model extracts the primary-input assignment from the solver's model.
// Must be called immediately after a Sat result (before new clauses).
func (s *sweeper) model() []bool {
	cex := make([]bool, len(s.piSat))
	for i, sv := range s.piSat {
		cex[i] = s.solver.Value(sv)
	}
	return cex
}

// refine simulates one more word of patterns seeded with the
// counterexample (bit 0 exactly, bits 1..63 random perturbations of it)
// and rebuilds the class index, splitting every class the new word
// distinguishes.
func (s *sweeper) refine(cex []bool) {
	s.stats.Refinements++
	obs.C("cec.classes_refined").Inc()
	in := make([]uint64, s.m.NumPIs())
	for i := range in {
		var base uint64
		if cex[i] {
			base = ^uint64(0)
		}
		// ~1/8 of the neighbouring patterns flip each input; bit 0 stays
		// the exact counterexample.
		mask := s.rng.Uint64() & s.rng.Uint64() & s.rng.Uint64() &^ 1
		in[i] = base ^ mask
	}
	vals := s.m.SimWords(in)
	for v := range vals {
		s.sig[v] = append(s.sig[v], vals[v])
	}
	s.nWords++
	s.stats.SimPatterns += 64
	s.classes = make(map[uint64][]int, len(s.pool))
	for _, u := range s.pool {
		k := s.key(u)
		s.classes[k] = append(s.classes[k], u)
	}
}
