// Package cec is the combinational equivalence-checking subsystem of the
// flow — the signoff tool that proves (or refutes, with a concrete input
// vector) that two circuit representations compute the same function. It
// plays the role of ABC's `cec` command for the reproduced pipeline:
//
//   - a netlist→AIG elaborator (Elaborate) recovers each PDK cell's boolean
//     function from its truth table and rebuilds a mapped netlist as an AIG,
//     so golden-RTL AIG, optimized AIG, and mapped netlist can all be
//     compared in one representation;
//   - a simulation-guided SAT-sweeping engine (sweep.go): 64-bit random
//     simulation partitions the joint miter's nodes into candidate
//     equivalence classes, then incremental SAT miters over internal/sat
//     prove or refute each candidate, with counterexamples fed back to
//     refine the classes until fixpoint;
//   - a parallel per-output miter fallback (miter.go) with a worker pool and
//     per-output conflict budgets for the outputs sweeping leaves open.
//
// Check returns a structured Verdict: EQUAL, NOT-EQUAL with a primary-input
// counterexample vector, or UNDECIDED naming the outputs whose proofs
// exhausted their budgets. aig.Equivalent delegates here whenever this
// package is linked in (see the package-init registration at the bottom).
package cec

import (
	"context"
	"fmt"

	"repro/internal/aig"
	"repro/internal/obs"
)

// Status is the overall outcome of an equivalence check.
type Status int

// Verdict statuses.
const (
	// Equal: every output pair was proven functionally identical.
	Equal Status = iota
	// NotEqual: a concrete input vector distinguishes the circuits.
	NotEqual
	// Undecided: no difference was found, but at least one output proof
	// exhausted its conflict budget.
	Undecided
)

// String names the status the way the CLI prints it.
func (s Status) String() string {
	switch s {
	case Equal:
		return "EQUAL"
	case NotEqual:
		return "NOT-EQUAL"
	default:
		return "UNDECIDED"
	}
}

// Stats instruments one check: how the sweeping engine earned its verdict.
type Stats struct {
	MiterNodes   int // AND nodes of the joint miter
	ReducedNodes int // AND nodes after sweeping merged equivalences
	SimPatterns  int // simulation patterns applied (initial + refinement)
	Refinements  int // counterexample-driven class refinements
	StructMerges int // nodes merged purely by hashing into the reduced graph
	SATMerges    int // nodes merged by a SAT proof
	SATCalls     int
	SATTimeouts  int // queries that exhausted their conflict budget
	Cex          int // satisfiable queries (distinguishing patterns found)
	FallbackRuns int // outputs sent to the parallel miter fallback
}

// Verdict is the structured result of an equivalence check.
type Verdict struct {
	Status Status
	// Reason explains a NotEqual verdict that was decided structurally
	// (mismatched interface) rather than by a counterexample.
	Reason string

	// For NotEqual with a counterexample: the failing output's name, the
	// PI names, and the distinguishing assignment (aligned with Inputs).
	FailingOutput  string
	Inputs         []string
	Counterexample []bool
	OutA, OutB     bool // the two circuits' values on FailingOutput under the cex

	// For Undecided: the outputs whose proofs ran out of budget.
	UndecidedOutputs []string

	Stats Stats
}

// CexString renders the counterexample as name=value pairs.
func (v *Verdict) CexString() string {
	if v.Counterexample == nil {
		return ""
	}
	s := ""
	for i, name := range v.Inputs {
		if i > 0 {
			s += " "
		}
		bit := "0"
		if v.Counterexample[i] {
			bit = "1"
		}
		s += name + "=" + bit
	}
	return s
}

// Options tunes the checker. The zero value picks sensible defaults.
type Options struct {
	// SimWords is the number of 64-pattern random simulation words used to
	// seed the candidate equivalence classes (default 8 → 512 patterns).
	SimWords int
	// MaxRefinements caps counterexample-driven class refinements
	// (default 128); past the cap, refuted candidates are simply skipped.
	MaxRefinements int
	// ClassBudget is the conflict budget for each sweeping proof attempt
	// between internal nodes (default 1000). Small by design: cheap proofs
	// merge most of the graph, the output budget finishes the job.
	ClassBudget int64
	// OutputBudget is the conflict budget for each primary-output proof on
	// the swept graph (default 200000).
	OutputBudget int64
	// FallbackBudget is the conflict budget for the fresh-solver per-output
	// miter fallback (default 2x OutputBudget).
	FallbackBudget int64
	// Workers bounds the fallback worker pool (default GOMAXPROCS).
	Workers int
	// Seed drives the random simulation (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.SimWords <= 0 {
		o.SimWords = 8
	}
	if o.MaxRefinements <= 0 {
		o.MaxRefinements = 128
	}
	if o.ClassBudget == 0 {
		o.ClassBudget = 1000
	}
	if o.OutputBudget == 0 {
		o.OutputBudget = 200000
	}
	if o.FallbackBudget == 0 {
		o.FallbackBudget = 2 * o.OutputBudget
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Check decides combinational equivalence of two AIGs. Primary inputs and
// outputs are paired by name when both sides carry matching unique name
// sets (the elaborator and the synthesis flow preserve names); otherwise
// pairing is positional. A PI/PO interface mismatch yields NotEqual with
// Reason set and no counterexample.
func Check(ctx context.Context, a, b *aig.AIG, opt Options) *Verdict {
	opt = opt.withDefaults()
	// Rebind ctx so the sweep/fallback spans (and their worker goroutines'
	// cost labels) nest under cec.check instead of its parent.
	ctx, span := obs.Start(ctx, "cec.check")
	span.SetAttr("a", a.Name)
	span.SetAttr("b", b.Name)
	defer span.End()

	if a.NumPIs() != b.NumPIs() {
		return &Verdict{Status: NotEqual, Reason: fmt.Sprintf(
			"input count mismatch: %d vs %d", a.NumPIs(), b.NumPIs())}
	}
	if a.NumPOs() != b.NumPOs() {
		return &Verdict{Status: NotEqual, Reason: fmt.Sprintf(
			"output count mismatch: %d vs %d", a.NumPOs(), b.NumPOs())}
	}

	piPerm := matchNames(piNames(a), piNames(b)) // b PI index -> a PI index
	poPerm := matchNames(poNames(a), poNames(b)) // b PO index -> a PO index

	// Joint specimen: both circuits over shared PIs (in a's order).
	m := aig.New("miter")
	pis := make([]aig.Lit, a.NumPIs())
	for i := range pis {
		pis[i] = m.AddPI(a.PIName(i))
	}
	bPIs := pis
	if piPerm != nil {
		bPIs = make([]aig.Lit, len(pis))
		for bi, ai := range piPerm {
			bPIs[bi] = pis[ai]
		}
	}
	outsA := appendInto(a, m, pis)
	outsBRaw := appendInto(b, m, bPIs)
	outsB := outsBRaw
	if poPerm != nil {
		outsB = make([]aig.Lit, len(outsBRaw))
		for bi, ai := range poPerm {
			outsB[ai] = outsBRaw[bi]
		}
	}

	v := runCheck(ctx, m, outsA, outsB, a, opt)

	// Re-express the counterexample on b's own input order for validation
	// and fill the two circuits' output values.
	if v.Status == NotEqual && v.Counterexample != nil {
		poIdx := poIndexByName(a, v.FailingOutput)
		v.OutA = a.Eval(v.Counterexample)[poIdx]
		bIn := v.Counterexample
		bPOIdx := poIdx
		if piPerm != nil {
			bIn = make([]bool, len(v.Counterexample))
			for bi, ai := range piPerm {
				bIn[bi] = v.Counterexample[ai]
			}
		}
		if poPerm != nil {
			for bi, ai := range poPerm {
				if ai == poIdx {
					bPOIdx = bi
				}
			}
		}
		v.OutB = b.Eval(bIn)[bPOIdx]
	}
	span.SetAttr("status", v.Status.String())
	span.SetAttr("sat_calls", v.Stats.SATCalls)
	return v
}

// CheckAIGs is the aig.Equivalent-shaped entry point: the budget becomes
// the per-output budget, with proportionate sweeping budgets.
func CheckAIGs(a, b *aig.AIG, budget int64) (equal, proven bool) {
	opt := Options{OutputBudget: budget, FallbackBudget: budget}
	if budget > 0 && budget < 1000 {
		opt.ClassBudget = budget
	}
	v := Check(context.Background(), a, b, opt)
	switch v.Status {
	case Equal:
		return true, true
	case NotEqual:
		return false, true
	default:
		return false, false
	}
}

func piNames(g *aig.AIG) []string {
	out := make([]string, g.NumPIs())
	for i := range out {
		out[i] = g.PIName(i)
	}
	return out
}

func poNames(g *aig.AIG) []string {
	out := make([]string, g.NumPOs())
	for i := range out {
		out[i] = g.POName(i)
	}
	return out
}

func poIndexByName(g *aig.AIG, name string) int {
	for i := 0; i < g.NumPOs(); i++ {
		if g.POName(i) == name {
			return i
		}
	}
	return 0
}

// matchNames returns perm with perm[bIdx] = aIdx when the two name lists
// are permutations of each other with unique entries, or nil to signal
// positional pairing. An identity permutation also returns nil.
func matchNames(aNames, bNames []string) []int {
	idx := make(map[string]int, len(aNames))
	for i, n := range aNames {
		if _, dup := idx[n]; dup {
			return nil
		}
		idx[n] = i
	}
	perm := make([]int, len(bNames))
	identity := true
	seen := make(map[string]bool, len(bNames))
	for bi, n := range bNames {
		ai, ok := idx[n]
		if !ok || seen[n] {
			return nil
		}
		seen[n] = true
		perm[bi] = ai
		if ai != bi {
			identity = false
		}
	}
	if identity {
		return nil
	}
	return perm
}

// appendInto replicates src's logic into dst over the provided PI literals
// and returns dst literals for src's POs.
func appendInto(src, dst *aig.AIG, pis []aig.Lit) []aig.Lit {
	m := make([]aig.Lit, src.NumVars())
	m[0] = aig.False
	for i := 0; i < src.NumPIs(); i++ {
		m[i+1] = pis[i]
	}
	for v := src.NumPIs() + 1; v < src.NumVars(); v++ {
		f0, f1 := src.Fanins(v)
		a := m[f0.Var()].NotIf(f0.IsCompl())
		b := m[f1.Var()].NotIf(f1.IsCompl())
		m[v] = dst.And(a, b)
	}
	out := make([]aig.Lit, src.NumPOs())
	for i := 0; i < src.NumPOs(); i++ {
		po := src.PO(i)
		out[i] = m[po.Var()].NotIf(po.IsCompl())
	}
	return out
}

// Registration: any binary that links this package upgrades aig.Equivalent
// from the plain per-output miter to the sweeping engine.
func init() {
	aig.RegisterEquivalenceEngine(CheckAIGs)
}
