package cec_test

import (
	"context"
	"testing"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/epfl"
)

var ctx = context.Background()

// optimize runs a c2rs-style pass chain, giving a structurally different
// but functionally identical AIG.
func optimize(g *aig.AIG) *aig.AIG {
	return g.Balance().
		Resub(aig.DefaultResubOptions()).
		Rewrite(false).
		Refactor().
		Balance().
		Rewrite(true).
		Balance()
}

// mutate rebuilds g with one AND-input polarity flipped at the given
// variable — the classic seeded fault for validating a checker.
func mutate(g *aig.AIG, target int) *aig.AIG {
	out := aig.New(g.Name + "_mut")
	m := make([]aig.Lit, g.NumVars())
	m[0] = aig.False
	for i := 0; i < g.NumPIs(); i++ {
		m[i+1] = out.AddPI(g.PIName(i))
	}
	for v := g.NumPIs() + 1; v < g.NumVars(); v++ {
		f0, f1 := g.Fanins(v)
		a := m[f0.Var()].NotIf(f0.IsCompl())
		b := m[f1.Var()].NotIf(f1.IsCompl())
		if v == target {
			a = a.Not()
		}
		m[v] = out.And(a, b)
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		out.AddPO(m[po.Var()].NotIf(po.IsCompl()), g.POName(i))
	}
	return out
}

func TestOptimizedCircuitsEqual(t *testing.T) {
	for _, name := range []string{"ctrl", "int2float", "dec", "cavlc", "router"} {
		g, err := epfl.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		v := cec.Check(ctx, g, optimize(g), cec.Options{Seed: 7})
		if v.Status != cec.Equal {
			t.Errorf("%s: %v (reason %q, failing %q cex %q)",
				name, v.Status, v.Reason, v.FailingOutput, v.CexString())
		}
		if v.Stats.MiterNodes == 0 || v.Stats.SimPatterns == 0 {
			t.Errorf("%s: stats not populated: %+v", name, v.Stats)
		}
	}
}

// TestSeededMutation is the checker's own signoff: flip one AND input
// polarity in an optimized EPFL AIG and demand NOT-EQUAL with a concrete
// counterexample that aig.Eval confirms distinguishes the two circuits.
func TestSeededMutation(t *testing.T) {
	for _, name := range []string{"int2float", "ctrl"} {
		g, err := epfl.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		opt := optimize(g)
		// Fault site: the driver of the first primary output that is an
		// AND node (always exists in these benchmarks after optimization).
		target := -1
		for i := 0; i < opt.NumPOs(); i++ {
			if v := opt.PO(i).Var(); opt.IsAnd(v) {
				target = v
				break
			}
		}
		if target < 0 {
			t.Fatalf("%s: no AND-driven output to mutate", name)
		}
		mut := mutate(opt, target)
		v := cec.Check(ctx, opt, mut, cec.Options{Seed: 3})
		if v.Status != cec.NotEqual {
			t.Fatalf("%s: mutation not caught: %v", name, v.Status)
		}
		if v.Counterexample == nil || v.FailingOutput == "" {
			t.Fatalf("%s: NOT-EQUAL verdict without counterexample: %+v", name, v)
		}
		// Replay the counterexample through both circuits independently.
		poIdx := -1
		for i := 0; i < opt.NumPOs(); i++ {
			if opt.POName(i) == v.FailingOutput {
				poIdx = i
				break
			}
		}
		if poIdx < 0 {
			t.Fatalf("%s: failing output %q not found", name, v.FailingOutput)
		}
		a := opt.Eval(v.Counterexample)[poIdx]
		b := mut.Eval(v.Counterexample)[poIdx]
		if a == b {
			t.Fatalf("%s: counterexample %s does not distinguish output %s",
				name, v.CexString(), v.FailingOutput)
		}
		if v.OutA != a || v.OutB != b {
			t.Errorf("%s: verdict output values (%v,%v) disagree with Eval (%v,%v)",
				name, v.OutA, v.OutB, a, b)
		}
	}
}

func TestInterfaceMismatch(t *testing.T) {
	a := aig.New("a")
	x := a.AddPI("x")
	a.AddPO(x, "y")
	b := aig.New("b")
	x0 := b.AddPI("x0")
	x1 := b.AddPI("x1")
	b.AddPO(b.And(x0, x1), "y")
	v := cec.Check(ctx, a, b, cec.Options{})
	if v.Status != cec.NotEqual || v.Reason == "" {
		t.Errorf("PI mismatch: %v reason=%q", v.Status, v.Reason)
	}
}

func TestComplementedOutput(t *testing.T) {
	a := aig.New("a")
	x := a.AddPI("x")
	a.AddPO(x, "y")
	b := aig.New("b")
	xb := b.AddPI("x")
	b.AddPO(xb.Not(), "y")
	v := cec.Check(ctx, a, b, cec.Options{})
	if v.Status != cec.NotEqual {
		t.Fatalf("inverter not caught: %v", v.Status)
	}
	if got := a.Eval(v.Counterexample)[0]; got == b.Eval(v.Counterexample)[0] {
		t.Error("counterexample does not distinguish")
	}
}

// TestNameAlignment: same function, primary inputs listed in a different
// order but with matching names, must be paired by name.
func TestNameAlignment(t *testing.T) {
	a := aig.New("a")
	p := a.AddPI("p")
	q := a.AddPI("q")
	a.AddPO(a.And(p, q.Not()), "y")
	b := aig.New("b")
	qb := b.AddPI("q")
	pb := b.AddPI("p")
	b.AddPO(b.And(pb, qb.Not()), "y")
	v := cec.Check(ctx, a, b, cec.Options{})
	if v.Status != cec.Equal {
		t.Errorf("name-aligned check failed: %v (cex %s)", v.Status, v.CexString())
	}
}

// TestEquivalentShim: with this package linked, aig.Equivalent must route
// through the sweeping engine and still honor its (equal, proven) contract.
func TestEquivalentShim(t *testing.T) {
	g, err := epfl.Build("dec")
	if err != nil {
		t.Fatal(err)
	}
	opt := optimize(g)
	if eq, proven := aig.Equivalent(g, opt, 100000); !eq || !proven {
		t.Errorf("Equivalent(g, optimized) = %v, %v", eq, proven)
	}
	target := -1
	for i := 0; i < opt.NumPOs(); i++ {
		if v := opt.PO(i).Var(); opt.IsAnd(v) {
			target = v
			break
		}
	}
	if target < 0 {
		t.Skip("no AND-driven output")
	}
	if eq, proven := aig.Equivalent(opt, mutate(opt, target), 100000); eq || !proven {
		t.Errorf("Equivalent(opt, mutated) = %v, %v", eq, proven)
	}
}

// TestConstantOutputs: circuits whose outputs collapse to constants.
func TestConstantOutputs(t *testing.T) {
	a := aig.New("a")
	x := a.AddPI("x")
	a.AddPO(a.And(x, x.Not()), "zero") // structurally False
	b := aig.New("b")
	b.AddPI("x")
	b.AddPO(aig.False, "zero")
	v := cec.Check(ctx, a, b, cec.Options{})
	if v.Status != cec.Equal {
		t.Errorf("constant outputs: %v", v.Status)
	}
}
