package cec

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/aig"
	"repro/internal/obs"
	"repro/internal/sat"
)

// runCheck drives the engine over a prepared joint miter: sweep first, then
// per-output proofs on the swept graph with the shared incremental solver,
// and finally the parallel fresh-solver fallback for outputs whose proofs
// timed out. golden supplies PI/PO names for the verdict.
func runCheck(ctx context.Context, m *aig.AIG, outsA, outsB []aig.Lit, golden *aig.AIG, opt Options) *Verdict {
	v := &Verdict{Status: Equal, Inputs: piNames(golden)}
	sw := newSweeper(m, opt, &v.Stats)
	sw.sweep(ctx)

	var pending []int
	for i := range outsA {
		la, lb := sw.liftLit(outsA[i]), sw.liftLit(outsB[i])
		if la == lb {
			continue // merged during sweeping: proven equal
		}
		res, cex := sw.prove(la, lb, opt.OutputBudget)
		switch res {
		case proven:
		case refuted:
			v.Status = NotEqual
			v.FailingOutput = golden.POName(i)
			v.Counterexample = cex
			return v
		default:
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return v
	}

	// Fallback: per-output miters with fresh solvers and a bigger budget,
	// spread over a worker pool. Each worker encodes only the two cones of
	// its output pair, so hard outputs don't serialize behind each other.
	outcomes := parallelMiter(ctx, sw, pending, outsA, outsB, opt, &v.Stats)
	for _, i := range pending {
		oc := outcomes[i]
		if oc.res == refuted {
			v.Status = NotEqual
			v.FailingOutput = golden.POName(i)
			v.Counterexample = oc.cex
			v.UndecidedOutputs = nil
			return v
		}
		if oc.res == undecided {
			v.Status = Undecided
			v.UndecidedOutputs = append(v.UndecidedOutputs, golden.POName(i))
		}
	}
	return v
}

type outcome struct {
	res      proveResult
	cex      []bool
	satCalls int
	timeouts int
	cexSeen  int
}

// parallelMiter proves the pending output pairs on the reduced graph, one
// fresh solver per output, opt.Workers at a time.
func parallelMiter(ctx context.Context, sw *sweeper, pending []int, outsA, outsB []aig.Lit, opt Options, stats *Stats) map[int]outcome {
	_, span := obs.Start(ctx, "cec.fallback")
	defer span.End()
	span.SetAttr("outputs", len(pending))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	obs.C("cec.fallback_outputs").Add(int64(len(pending)))

	red := sw.red // read-only from here on: safe to share across workers
	jobs := make(chan int)
	results := make([]outcome, len(pending))
	slot := make(map[int]int, len(pending)) // output index -> results slot
	for si, i := range pending {
		slot[i] = si
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[slot[i]] = proveFresh(red, sw.liftLit(outsA[i]), sw.liftLit(outsB[i]), opt.FallbackBudget)
			}
		}()
	}
	for _, i := range pending {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	out := make(map[int]outcome, len(pending))
	for si, i := range pending {
		oc := results[si]
		stats.SATCalls += oc.satCalls
		stats.SATTimeouts += oc.timeouts
		stats.Cex += oc.cexSeen
		stats.FallbackRuns++
		obs.C("cec.sat_calls").Add(int64(oc.satCalls))
		out[i] = oc
	}
	return out
}

// proveFresh checks x ≡ y over g with a dedicated solver and budget,
// returning the outcome plus the counterexample PI assignment on refuted.
func proveFresh(g *aig.AIG, x, y aig.Lit, budget int64) outcome {
	var oc outcome
	s := sat.New(0)
	cnf := aig.NewCNFBuilder(g, s)
	piSat := make([]int, g.NumPIs())
	for i := range piSat {
		piSat[i] = cnf.SatVar(i + 1)
	}
	lx := cnf.SatLit(x)
	ly := cnf.SatLit(y)
	s.ConflictBudget = budget
	model := func() []bool {
		cex := make([]bool, len(piSat))
		for i, sv := range piSat {
			cex[i] = s.Value(sv)
		}
		return cex
	}
	oc.satCalls++
	switch s.Solve(lx, ly.Not()) {
	case sat.Sat:
		oc.res, oc.cex = refuted, model()
		oc.cexSeen++
		return oc
	case sat.Unknown:
		oc.res = undecided
		oc.timeouts++
		return oc
	}
	oc.satCalls++
	switch s.Solve(lx.Not(), ly) {
	case sat.Sat:
		oc.res, oc.cex = refuted, model()
		oc.cexSeen++
		return oc
	case sat.Unknown:
		oc.res = undecided
		oc.timeouts++
		return oc
	}
	oc.res = proven
	return oc
}
