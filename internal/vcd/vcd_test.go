package vcd

import (
	"bytes"
	"strings"
	"testing"
)

func TestScalarDump(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Date("today")
	w.Version("gsim test")
	w.Timescale("1fs")
	w.Scope("top")
	a := w.Wire("a")
	b := w.Wire("b two") // whitespace sanitized
	w.EndHeader()

	w.Time(0)
	w.SetScalar(a, ScalarX)
	w.SetScalar(b, Scalar0)
	w.Time(10)
	w.SetScalar(a, Scalar1)
	w.SetScalar(b, Scalar0) // repeat: elided
	w.Time(20)              // quiet: no timestamp
	w.Time(30)
	w.SetScalar(a, Scalar0)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got := buf.String()
	want := strings.Join([]string{
		"$date today $end",
		"$version gsim test $end",
		"$timescale 1fs $end",
		"$scope module top $end",
		"$var wire 1 ! a $end",
		"$var wire 1 \" b_two $end",
		"$upscope $end",
		"$enddefinitions $end",
		"#0",
		"$dumpvars",
		"x!",
		"0\"",
		"$end",
		"#10",
		"1!",
		"#30",
		"0!",
		"",
	}, "\n")
	if got != want {
		t.Errorf("scalar dump mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRealAndScalarMix(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Timescale("1fs")
	w.Scope("mix")
	r := w.Real("v")
	s := w.Wire("d")
	w.EndHeader()
	w.Time(0)
	w.SetReal(r, 0.5)
	w.SetScalar(s, Scalar1)
	w.Time(5)
	w.SetReal(r, 0.5) // elided
	w.SetScalar(s, Scalar0)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := buf.String()
	for _, want := range []string{
		"$var real 64 ! v $end",
		"$var wire 1 \" d $end",
		"r0.5 !\n",
		"1\"\n",
		"#5\n0\"\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("dump missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "r0.5 !") != 1 {
		t.Errorf("repeated real value not elided:\n%s", got)
	}
}

// TestDumpvarsClosedWithoutSecondTimestamp: a single-timestamp dump must
// still close its $dumpvars block at Close.
func TestDumpvarsClosedWithoutSecondTimestamp(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Timescale("1fs")
	w.Scope("one")
	a := w.Wire("a")
	w.EndHeader()
	w.Time(0)
	w.SetScalar(a, Scalar1)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !strings.HasSuffix(buf.String(), "$dumpvars\n1!\n$end\n") {
		t.Errorf("dumpvars block not closed:\n%s", buf.String())
	}
}

func TestCode(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := Code(i)
		if seen[c] {
			t.Fatalf("Code collision at %d: %q", i, c)
		}
		seen[c] = true
		for j := 0; j < len(c); j++ {
			if c[j] < 33 || c[j] > 126 {
				t.Fatalf("Code(%d) has non-printable byte %d", i, c[j])
			}
		}
	}
}

func TestIdent(t *testing.T) {
	if got := Ident("a b\tc"); got != "a_b_c" {
		t.Errorf("Ident sanitization: got %q", got)
	}
	if got := Ident(""); got != "top" {
		t.Errorf("Ident empty: got %q", got)
	}
}

// errSink fails after n bytes to exercise error latching.
type errSink struct{ n int }

func (e *errSink) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errWrite
	}
	e.n -= len(p)
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink full" }

func TestErrorLatched(t *testing.T) {
	w := NewWriter(&errSink{n: 10})
	w.Timescale("1fs")
	w.Scope("x")
	a := w.Wire("a")
	w.EndHeader()
	w.Time(0)
	w.SetScalar(a, Scalar1)
	if err := w.Close(); err == nil {
		t.Fatal("write error not surfaced")
	}
	if w.Err() == nil {
		t.Fatal("Err() did not latch")
	}
}
