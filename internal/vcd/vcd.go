// Package vcd is the shared Value Change Dump (IEEE 1364) encoder used by
// every waveform producer in the flow: internal/spice dumps analog node
// voltages as `real` variables, internal/gsim dumps logic values as 1-bit
// `wire` variables (0/1/x/z). One writer means one set of framing rules —
// identifier-code allocation, timestamp elision, the $dumpvars block — so
// the two simulators' dumps open identically in GTKWave and friends.
//
// The encoder is deliberately low-level and deterministic:
//
//   - variables are declared in order; the i-th declaration gets the i-th
//     base-94 printable identifier code ('!', '"', ... as VCD tools expect);
//   - timestamps are lazy: Time(t) only records the pending time, and the
//     `#t` line is emitted when the first value change at that time arrives,
//     so quiet sample points leave no trace in the file;
//   - repeated values are elided per VCD convention (the first write of a
//     variable is always emitted, so the $dumpvars block is complete);
//   - the first emitted timestamp opens a `$dumpvars` block that is closed
//     with `$end` at the next timestamp (or at Close).
//
// Write errors are latched: the first error stops all output and is
// returned by Err/Close, keeping dump loops linear.
package vcd

import (
	"fmt"
	"io"
)

// Var identifies a declared VCD variable.
type Var int

// Scalar logic values accepted by SetScalar.
const (
	Scalar0 byte = '0'
	Scalar1 byte = '1'
	ScalarX byte = 'x'
	ScalarZ byte = 'z'
)

// varState tracks one declared variable's emission state.
type varState struct {
	code    string // base-94 identifier code
	isReal  bool
	lastR   float64
	lastS   byte
	written bool // first write always emitted
}

// Writer streams one VCD file.
type Writer struct {
	w   io.Writer
	err error

	vars        []varState
	headerDone  bool
	started     bool  // first timestamp emitted
	dumpOpen    bool  // inside the initial $dumpvars block
	pending     int64 // timestamp awaiting its first value change
	havePending bool
	lastStamped int64
}

// NewWriter wraps out. The caller declares the header (Date/Version/
// Timescale/Scope/variables/EndHeader), then alternates Time and Set calls,
// and finishes with Close.
func NewWriter(out io.Writer) *Writer { return &Writer{w: out} }

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

// Date emits the $date header line; empty date emits nothing.
func (w *Writer) Date(date string) {
	if date != "" {
		w.printf("$date %s $end\n", date)
	}
}

// Version emits the $version header line; empty version emits nothing.
func (w *Writer) Version(version string) {
	if version != "" {
		w.printf("$version %s $end\n", version)
	}
}

// Timescale emits the $timescale header line (e.g. "1fs").
func (w *Writer) Timescale(scale string) {
	w.printf("$timescale %s $end\n", scale)
}

// Scope opens a module scope.
func (w *Writer) Scope(module string) {
	w.printf("$scope module %s $end\n", Ident(module))
}

// Real declares a 64-bit real variable and returns its handle.
func (w *Writer) Real(name string) Var {
	v := Var(len(w.vars))
	w.vars = append(w.vars, varState{code: Code(int(v)), isReal: true})
	w.printf("$var real 64 %s %s $end\n", w.vars[v].code, Ident(name))
	return v
}

// Wire declares a 1-bit scalar wire variable and returns its handle.
func (w *Writer) Wire(name string) Var {
	v := Var(len(w.vars))
	w.vars = append(w.vars, varState{code: Code(int(v))})
	w.printf("$var wire 1 %s %s $end\n", w.vars[v].code, Ident(name))
	return v
}

// EndHeader closes the scope and the definitions section.
func (w *Writer) EndHeader() {
	w.printf("$upscope $end\n$enddefinitions $end\n")
	w.headerDone = true
}

// Time declares the timestamp for subsequent value changes. The `#t` line
// is only written when a value change actually follows (VCD files elide
// quiet sample points). Timestamps must be non-decreasing.
func (w *Writer) Time(t int64) {
	w.pending = t
	w.havePending = true
}

// stamp flushes the pending timestamp ahead of a value change.
func (w *Writer) stamp() {
	if !w.havePending {
		return
	}
	if w.dumpOpen {
		w.printf("$end\n")
		w.dumpOpen = false
	}
	w.printf("#%d\n", w.pending)
	if !w.started {
		w.printf("$dumpvars\n")
		w.started = true
		w.dumpOpen = true
	}
	w.lastStamped = w.pending
	w.havePending = false
}

// SetReal records a real variable's value at the current time, eliding
// repeats after the first write.
func (w *Writer) SetReal(v Var, x float64) {
	st := &w.vars[v]
	if st.written && x == st.lastR {
		return
	}
	w.stamp()
	w.printf("r%.9g %s\n", x, st.code)
	st.lastR = x
	st.written = true
}

// SetScalar records a 1-bit variable's value ('0', '1', 'x', or 'z') at the
// current time, eliding repeats after the first write.
func (w *Writer) SetScalar(v Var, val byte) {
	st := &w.vars[v]
	if st.written && val == st.lastS {
		return
	}
	w.stamp()
	w.printf("%c%s\n", val, st.code)
	st.lastS = val
	st.written = true
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Close finishes the stream (closing an open $dumpvars block) and returns
// the first write error. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.dumpOpen {
		w.printf("$end\n")
		w.dumpOpen = false
	}
	return w.err
}

// Code yields the compact printable-ASCII identifier code for variable i
// (the '!'..'~' base-94 encoding VCD tools expect).
func Code(i int) string {
	const lo, n = 33, 94 // '!' through '~'
	code := []byte{byte(lo + i%n)}
	for i /= n; i > 0; i /= n {
		code = append(code, byte(lo+i%n))
	}
	return string(code)
}

// Ident sanitizes a name into a VCD identifier (no whitespace).
func Ident(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == 0x7f {
			c = '_'
		}
		out[i] = c
	}
	if len(out) == 0 {
		return "top"
	}
	return string(out)
}
