// Package charlib characterizes standard cells into liberty libraries by
// driving the SPICE engine, substituting for the paper's Synopsys
// SiliconSmart flow. Every cell is measured on a 7x7 grid of input signal
// slews and output load capacitances (the paper's setup), extracting
// propagation delays, output transitions, per-event switching/internal
// energy, and state-averaged leakage power.
package charlib

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/liberty"
	"repro/internal/obs"
	"repro/internal/pdk"
	"repro/internal/spice"
)

// Config controls one characterization corner.
type Config struct {
	Vdd     float64   // supply voltage (V)
	TempK   float64   // temperature (K)
	Slews   []float64 // input transition times (full-swing equivalent, s)
	Loads   []float64 // output load capacitances (F)
	Workers int       // parallel cell workers; 0 = GOMAXPROCS

	// NewtonIterLimit caps SPICE Newton iterations per solve (0 = solver
	// default). Forensics/debug knob: a tiny cap forces nonconvergence so
	// the diagnosis pipeline can be exercised end to end.
	NewtonIterLimit int
	// SkipLeakage skips the 2^n static-power sweep — useful when debugging
	// a single failing arc without paying for the leakage enumeration.
	SkipLeakage bool
}

// DefaultConfig returns the paper's 7x7 characterization grid at the given
// temperature.
func DefaultConfig(tempK float64) Config {
	return Config{
		Vdd:   0.7,
		TempK: tempK,
		Slews: geometric(2.5e-12, 2, 7), // 2.5 ps .. 160 ps
		Loads: geometric(0.2e-15, 2, 7), // 0.2 fF .. 12.8 fF
	}
}

// QuickConfig returns a reduced 3x3 grid for fast unit tests.
func QuickConfig(tempK float64) Config {
	return Config{
		Vdd:   0.7,
		TempK: tempK,
		Slews: []float64{5e-12, 20e-12, 80e-12},
		Loads: []float64{0.4e-15, 1.6e-15, 6.4e-15},
	}
}

func geometric(start, ratio float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

// workersOf resolves the configured worker count.
func workersOf(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CharacterizeCell measures one cell and returns its liberty view. The
// context carries the parent observability span, if any.
func CharacterizeCell(ctx context.Context, cell *pdk.Cell, cfg Config) (*liberty.Cell, error) {
	return characterizeCell(ctx, cell, cfg, make(chan struct{}, workersOf(cfg)))
}

// characterizeCell measures one cell on a caller-provided bounded worker
// pool, so a library run shares one pool across all its cells.
func characterizeCell(ctx context.Context, cell *pdk.Cell, cfg Config, work chan struct{}) (*liberty.Cell, error) {
	ctx, span := obs.Start(ctx, "charlib.cell")
	span.SetAttr("cell", cell.Name)
	defer span.End()
	t0 := time.Now()
	ch := &charer{cfg: cfg, work: work}
	lc, err := ch.cell(ctx, cell)
	obs.C("charlib.cells").Inc()
	obs.H("charlib.cell.seconds").Observe(time.Since(t0).Seconds())
	return lc, err
}

// CharacterizeLibrary measures all cells (in parallel) and assembles the
// library. progress, when non-nil, is called after each finished cell.
//
// Two levels of bounded concurrency share one budget: up to Workers cells
// are in flight, and their measurement units (grid rows, leakage states)
// drain through one shared Workers-slot pool — so a single big cell keeps
// every worker busy instead of serializing a corner, and a swarm of small
// cells cannot oversubscribe the host.
func CharacterizeLibrary(ctx context.Context, name string, cells []*pdk.Cell, cfg Config, progress func(done, total int)) (*liberty.Library, error) {
	ctx, span := obs.Start(ctx, "charlib.library")
	span.SetAttr("library", name)
	span.SetAttr("temp_k", cfg.TempK)
	span.SetAttr("cells", len(cells))
	defer span.End()
	workers := workersOf(cfg)
	lib := &liberty.Library{Name: name, TempK: cfg.TempK, Vdd: cfg.Vdd}
	results := make([]*liberty.Cell, len(cells))
	errs := make([]error, len(cells))
	cellsTask := obs.Progress("charlib.cells", int64(len(cells)))
	arcsTask := obs.Progress("charlib.arcs", 0)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	sem := make(chan struct{}, workers)
	work := make(chan struct{}, workers)
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c *pdk.Cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			lc, err := characterizeCell(ctx, c, cfg, work)
			results[i], errs[i] = lc, err
			cellsTask.Inc()
			if progress != nil {
				mu.Lock()
				done++
				progress(done, len(cells))
				mu.Unlock()
			}
		}(i, c)
	}
	wg.Wait()
	cellsTask.Finish()
	arcsTask.Finish()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("charlib: cell %s: %w", cells[i].Name, err)
		}
		lib.Cells = append(lib.Cells, results[i])
	}
	return lib, nil
}

type charer struct {
	cfg Config
	// work is the shared bounded worker pool. Tokens are held only by leaf
	// measurement units (a grid row's transient chain, one leakage state),
	// never by anything that spawns more work — so the pool cannot
	// deadlock however deep the fan-out nests.
	work chan struct{}
}

// acquire takes a worker slot; release returns it.
func (ch *charer) acquire() {
	if ch.work != nil {
		ch.work <- struct{}{}
	}
}

func (ch *charer) release() {
	if ch.work != nil {
		<-ch.work
	}
}

// newCircuit builds an empty circuit at the corner temperature with the
// configured Newton iteration budget applied.
func (ch *charer) newCircuit() *spice.Circuit {
	c := spice.New(ch.cfg.TempK)
	c.MaxIter = ch.cfg.NewtonIterLimit
	return c
}

// journalFailure records a characterization failure in the run journal:
// the failing (cell, arc, slew, load, temperature) point, plus the SPICE
// convergence diagnosis when the error carries one — instead of letting
// the forensic context die inside the error string.
func (ch *charer) journalFailure(cell *pdk.Cell, arc string, slew, load float64, err error) {
	obs.C("charlib.failures").Inc()
	j := obs.J()
	if j == nil {
		return
	}
	attrs := map[string]string{
		"cell":   cell.Name,
		"arc":    arc,
		"temp_k": strconv.FormatFloat(ch.cfg.TempK, 'g', -1, 64),
	}
	if slew > 0 || load > 0 {
		attrs["slew"] = strconv.FormatFloat(slew, 'g', 6, 64)
		attrs["load"] = strconv.FormatFloat(load, 'g', 6, 64)
	}
	var detail any
	if ce := spice.AsConvergenceError(err); ce != nil {
		attrs["worst_node"] = ce.Diag.WorstNode
		attrs["phase"] = ce.Diag.Phase
		if len(ce.Diag.Devices) > 0 {
			attrs["worst_device"] = ce.Diag.Devices[0].Device
		}
		detail = ce.Diag
	}
	j.Failure("charlib.arc", err.Error(), attrs, detail)
}

// arcResult carries one finished timing arc back to the assembly step.
type arcResult struct {
	tm  *liberty.Timing
	pw  *liberty.InternalPower
	err error
}

// cell measures every arc of the cell concurrently (each arc's grid rows
// drain through the shared worker pool) and assembles the liberty view in
// deterministic pin/arc order, independent of completion order. ctx carries
// the cell span: each arc and the leakage sweep open child spans on their
// worker goroutines, so cost attribution sees per-arc paths instead of one
// opaque cell.
func (ch *charer) cell(ctx context.Context, cell *pdk.Cell) (*liberty.Cell, error) {
	// The arc task is shared across all cells of the library run; each cell
	// grows its total as it plans arcs (incremental discovery), so the
	// percentage stays honest while the plan is still unfolding.
	arcsTask := obs.Progress("charlib.arcs", 0)
	lc := &liberty.Cell{
		Name:       cell.Name,
		Area:       cell.Area(),
		Sequential: cell.Seq,
		ClockPin:   cell.Clock,
	}
	var wg sync.WaitGroup
	var leak float64
	var leakErr error
	if !ch.cfg.SkipLeakage {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, lspan := obs.Start(ctx, "charlib.leakage")
			defer lspan.End()
			leak, leakErr = ch.leakage(cell)
		}()
	}

	for _, in := range cell.Inputs {
		lc.Pins = append(lc.Pins, &liberty.Pin{
			Name:      in,
			Direction: "input",
			Cap:       cell.InputCap(in, ch.cfg.TempK),
		})
	}
	// One result slot per (output pin, arc), filled concurrently.
	type pinArcs struct {
		pin  *liberty.Pin
		ins  []string // related input per arc ("" for the clock arc)
		res  []arcResult
		seqQ bool
	}
	var plan []*pinArcs
	for _, out := range cell.Outputs {
		pa := &pinArcs{
			pin: &liberty.Pin{
				Name:      out,
				Direction: "output",
				Function:  functionString(cell, out),
			},
			seqQ: cell.Seq,
		}
		if cell.Seq {
			pa.ins = []string{cell.Clock}
			pa.res = make([]arcResult, 1)
			arcsTask.AddTotal(1)
			wg.Add(1)
			go func(out string, slot *arcResult) {
				defer wg.Done()
				_, aspan := obs.Start(ctx, "charlib.arc")
				if aspan != nil {
					aspan.SetAttr("arc", "clk->"+out)
				}
				defer aspan.End()
				t0 := time.Now()
				slot.tm, slot.pw, slot.err = ch.clockArc(cell, out)
				arcsTask.Inc()
				if slot.err == nil {
					obs.C("charlib.arcs").Inc()
					obs.H("charlib.arc.seconds").Observe(time.Since(t0).Seconds())
				}
			}(out, &pa.res[0])
		} else {
			type combSpec struct {
				in     string
				vec    int
				o0, o1 bool
			}
			var specs []combSpec
			for _, in := range cell.Inputs {
				vec, o0, o1, ok := sensitizingVector(cell, in, out)
				if !ok {
					continue
				}
				specs = append(specs, combSpec{in, vec, o0, o1})
				pa.ins = append(pa.ins, in)
			}
			pa.res = make([]arcResult, len(specs))
			arcsTask.AddTotal(int64(len(specs)))
			for ai, sp := range specs {
				wg.Add(1)
				go func(sp combSpec, out string, slot *arcResult) {
					defer wg.Done()
					_, aspan := obs.Start(ctx, "charlib.arc")
					if aspan != nil {
						aspan.SetAttr("arc", sp.in+"->"+out)
					}
					defer aspan.End()
					t0 := time.Now()
					slot.tm, slot.pw, slot.err = ch.combArc(cell, sp.in, out, sp.vec, sp.o0, sp.o1)
					arcsTask.Inc()
					if slot.err == nil {
						obs.C("charlib.arcs").Inc()
						obs.H("charlib.arc.seconds").Observe(time.Since(t0).Seconds())
						slot.tm.Sense = senseOf(cell, sp.in, out)
					}
				}(sp, out, &pa.res[ai])
			}
		}
		plan = append(plan, pa)
	}
	wg.Wait()

	// Deterministic error precedence matches the old sequential order:
	// leakage first, then outputs in order, arcs in input order.
	if leakErr != nil {
		ch.journalFailure(cell, "leakage", 0, 0, leakErr)
		return nil, fmt.Errorf("leakage: %w", leakErr)
	}
	lc.LeakagePower = leak
	for _, pa := range plan {
		for ai, r := range pa.res {
			if r.err != nil {
				if pa.seqQ {
					return nil, fmt.Errorf("clk->%s: %w", pa.pin.Name, r.err)
				}
				return nil, fmt.Errorf("%s->%s: %w", pa.ins[ai], pa.pin.Name, r.err)
			}
			pa.pin.Timings = append(pa.pin.Timings, r.tm)
			pa.pin.Powers = append(pa.pin.Powers, r.pw)
		}
		lc.Pins = append(lc.Pins, pa.pin)
	}
	return lc, nil
}

// sensitizingVector finds an assignment of the side inputs under which the
// output depends on pin "in". It returns the vector (as a bitmask over the
// cell's input order, with the target pin's bit meaningless), the output
// value with in=0 and with in=1, and whether sensitization exists.
func sensitizingVector(cell *pdk.Cell, in, out string) (vec int, o0, o1 bool, ok bool) {
	tt, has := cell.Truth(out)
	if !has {
		return 0, false, false, false
	}
	pos := pinIndex(cell, in)
	n := len(cell.Inputs)
	for v := 0; v < 1<<uint(n); v++ {
		if v&(1<<uint(pos)) != 0 {
			continue // enumerate with target bit 0
		}
		lo := tt&(1<<uint(v)) != 0
		hi := tt&(1<<uint(v|1<<uint(pos))) != 0
		if lo != hi {
			return v, lo, hi, true
		}
	}
	return 0, false, false, false
}

// senseOf classifies the arc's unateness across all sensitizing vectors.
func senseOf(cell *pdk.Cell, in, out string) string {
	tt, has := cell.Truth(out)
	if !has {
		return liberty.SenseNonUnate
	}
	pos := pinIndex(cell, in)
	n := len(cell.Inputs)
	posU, negU := false, false
	for v := 0; v < 1<<uint(n); v++ {
		if v&(1<<uint(pos)) != 0 {
			continue
		}
		lo := tt&(1<<uint(v)) != 0
		hi := tt&(1<<uint(v|1<<uint(pos))) != 0
		if !lo && hi {
			posU = true
		}
		if lo && !hi {
			negU = true
		}
	}
	switch {
	case posU && negU:
		return liberty.SenseNonUnate
	case negU:
		return liberty.SenseNegative
	default:
		return liberty.SensePositive
	}
}

func pinIndex(cell *pdk.Cell, pin string) int {
	for i, p := range cell.Inputs {
		if p == pin {
			return i
		}
	}
	return -1
}

// functionString renders the output's truth table as a liberty
// sum-of-products expression.
func functionString(cell *pdk.Cell, out string) string {
	tt, ok := cell.Truth(out)
	if !ok {
		if cell.Seq {
			return "IQ"
		}
		return ""
	}
	n := len(cell.Inputs)
	if tt == 0 {
		return "0"
	}
	full := uint64(1)<<uint(1<<uint(n)) - 1
	if n == 6 {
		full = ^uint64(0)
	}
	if tt == full {
		return "1"
	}
	terms := ""
	for v := 0; v < 1<<uint(n); v++ {
		if tt&(1<<uint(v)) == 0 {
			continue
		}
		term := ""
		for i := 0; i < n; i++ {
			if term != "" {
				term += "*"
			}
			if v&(1<<uint(i)) == 0 {
				term += "!" + cell.Inputs[i]
			} else {
				term += cell.Inputs[i]
			}
		}
		if terms != "" {
			terms += " + "
		}
		terms += "(" + term + ")"
	}
	return terms
}

// leakage returns the state-averaged static power of the cell. The 2^n
// input states are independent operating-point problems, so they drain
// through the shared worker pool; the average is summed in state order to
// keep the result bit-identical to a sequential sweep.
func (ch *charer) leakage(cell *pdk.Cell) (float64, error) {
	n := len(cell.Inputs)
	if n > 6 {
		return 0, fmt.Errorf("too many inputs")
	}
	count := 1 << uint(n)
	powers := make([]float64, count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	for v := 0; v < count; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			ch.acquire()
			defer ch.release()
			powers[v], errs[v] = ch.staticPower(cell, v)
		}(v)
	}
	wg.Wait()
	var sum float64
	for v := 0; v < count; v++ {
		if errs[v] != nil {
			return 0, errs[v]
		}
		sum += powers[v]
	}
	return sum / float64(count), nil
}

// staticPower computes Vdd * Isupply at one input state. Sequential cells
// contain bistable feedback loops whose symmetric (metastable) DC solution
// would report massive short-circuit current; a femto-scale pulldown on the
// state nodes first steers Newton onto a stable digital branch, and the
// operating point is then re-solved without the aid.
func (ch *charer) staticPower(cell *pdk.Cell, vec int) (float64, error) {
	c := ch.newCircuit()
	vddN := c.Node("vdd")
	br := c.AddVSource(vddN, spice.Ground, spice.DC(ch.cfg.Vdd))
	pins := map[string]spice.NodeID{}
	for i, in := range cell.Inputs {
		node := c.Node("in_" + in)
		pins[in] = node
		v := 0.0
		if vec&(1<<uint(i)) != 0 {
			v = ch.cfg.Vdd
		}
		c.AddVSource(node, spice.Ground, spice.DC(v))
	}
	for _, out := range cell.Outputs {
		pins[out] = c.Node("out_" + out)
	}
	if err := cell.Build(c, "dut", pins, vddN); err != nil {
		return 0, err
	}
	if !cell.Seq {
		x, err := c.OpPoint()
		if err != nil {
			return 0, err
		}
		return ch.cfg.Vdd * math.Abs(x[c.NumNodes()+br]), nil
	}
	// Symmetry breaker on the latch state nodes (created by the sequential
	// cell generators): a hard clamp to ground, enabled for the first solve
	// only, forces each feedback loop onto a definite digital branch.
	aidOn := true
	aid := func(float64) float64 {
		if aidOn {
			return 0.05 // 20 Ohm: overpowers any cell pull-up at any drive
		}
		return 0
	}
	for _, state := range []string{"mi", "si", "li"} {
		if id, ok := c.LookupNode("dut." + state); ok {
			c.AddClamp(id, 0, aid)
		}
	}
	seed, err := c.OpPoint()
	if err != nil {
		return 0, err
	}
	aidOn = false
	x, err := c.OpPointFrom(seed)
	if err != nil {
		return 0, err
	}
	return ch.cfg.Vdd * math.Abs(x[c.NumNodes()+br]), nil
}
