package charlib

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/liberty"
	"repro/internal/pdk"
)

var catalog = pdk.Catalog()

func cellByName(t *testing.T, name string) *pdk.Cell {
	t.Helper()
	c := pdk.FindCell(catalog, name)
	if c == nil {
		t.Fatalf("cell %s not in catalog", name)
	}
	return c
}

func TestSensitizingVectorNAND2(t *testing.T) {
	cell := cellByName(t, "NAND2x1")
	vec, o0, o1, ok := sensitizingVector(cell, "A", "Y")
	if !ok {
		t.Fatal("NAND2 input A not sensitizable")
	}
	// B must be 1 for A to control the output; with A=0 out=1, A=1 out=0.
	if vec&(1<<1) == 0 {
		t.Errorf("sensitizing vector %b should set B=1", vec)
	}
	if !o0 || o1 {
		t.Errorf("NAND2: o0=%v o1=%v, want true/false", o0, o1)
	}
}

func TestSenseClassification(t *testing.T) {
	cases := map[[2]string]string{
		{"AND2x1", "A"}:  liberty.SensePositive,
		{"NAND2x1", "A"}: liberty.SenseNegative,
		{"XOR2x1", "A"}:  liberty.SenseNonUnate,
		{"MUX2x1", "S"}:  liberty.SenseNonUnate,
		{"AOI21x1", "C"}: liberty.SenseNegative,
	}
	for key, want := range cases {
		cell := cellByName(t, key[0])
		if got := senseOf(cell, key[1], "Y"); got != want {
			t.Errorf("%s pin %s: sense %s, want %s", key[0], key[1], got, want)
		}
	}
}

func TestFunctionString(t *testing.T) {
	inv := cellByName(t, "INVx1")
	if s := functionString(inv, "Y"); s != "(!A)" {
		t.Errorf("INV function = %q", s)
	}
	and := cellByName(t, "AND2x1")
	if s := functionString(and, "Y"); s != "(A*B)" {
		t.Errorf("AND2 function = %q", s)
	}
}

func TestCharacterizeInverterRoom(t *testing.T) {
	lc := mustChar(t, "INVx1", 300)
	y := lc.FindPin("Y")
	if y == nil || len(y.Timings) != 1 {
		t.Fatalf("INV output arcs: %+v", y)
	}
	tm := y.Timings[0]
	if tm.Sense != liberty.SenseNegative {
		t.Errorf("INV sense = %s", tm.Sense)
	}
	// Delay must increase with load at fixed slew and be positive.
	for i := range tm.CellRise.Index1 {
		prev := -1.0
		for j := range tm.CellRise.Index2 {
			v := tm.CellRise.Values[i][j]
			if v <= 0 {
				t.Errorf("cell_rise[%d][%d] = %v, want > 0", i, j, v)
			}
			if v < prev {
				t.Errorf("cell_rise not monotone in load at slew %d", i)
			}
			prev = v
		}
	}
	// Output transition increases with load.
	tr := tm.RiseTrans
	for i := range tr.Index1 {
		if tr.Values[i][len(tr.Index2)-1] <= tr.Values[i][0] {
			t.Errorf("rise_transition not increasing with load at slew row %d", i)
		}
	}
	// Plausible magnitudes: ps-scale delays.
	mid := tm.CellRise.Values[1][1]
	if mid < 0.2e-12 || mid > 200e-12 {
		t.Errorf("mid-grid INV delay %v s implausible", mid)
	}
	if lc.LeakagePower <= 0 {
		t.Errorf("leakage = %v", lc.LeakagePower)
	}
	pw := y.Powers[0]
	if pw.RisePower.Values[1][1] <= 0 || pw.FallPower.Values[1][1] <= 0 {
		t.Errorf("internal energies must be positive: %v %v",
			pw.RisePower.Values[1][1], pw.FallPower.Values[1][1])
	}
	a := lc.FindPin("A")
	if a == nil || a.Cap <= 0 {
		t.Errorf("input pin cap: %+v", a)
	}
}

func TestCryoVsRoomTrends(t *testing.T) {
	room := mustChar(t, "INVx2", 300)
	cryo := mustChar(t, "INVx2", 10)
	// Paper Fig 2(c): leakage drops by orders of magnitude.
	if r := room.LeakagePower / cryo.LeakagePower; r < 50 {
		t.Errorf("leakage ratio 300K/10K = %v, want >= 50", r)
	}
	// Paper Fig 2(a): delay marginally impacted.
	dr := room.FindPin("Y").Timings[0].CellRise.Values[1][1]
	dc := cryo.FindPin("Y").Timings[0].CellRise.Values[1][1]
	if ratio := dc / dr; ratio < 0.5 || ratio > 1.6 {
		t.Errorf("delay ratio 10K/300K = %v, want near 1", ratio)
	}
	// Paper Fig 2(b): switching (internal) energy slightly lower at 10 K.
	er := room.FindPin("Y").Powers[0].RisePower.Values[1][1]
	ec := cryo.FindPin("Y").Powers[0].RisePower.Values[1][1]
	if ec > er*1.15 {
		t.Errorf("10K rise energy %v should not exceed 300K %v by >15%%", ec, er)
	}
}

func TestCharacterizeNAND2BothArcs(t *testing.T) {
	lc := mustChar(t, "NAND2x1", 300)
	y := lc.FindPin("Y")
	if len(y.Timings) != 2 {
		t.Fatalf("NAND2 has %d arcs, want 2", len(y.Timings))
	}
	related := map[string]bool{}
	for _, tm := range y.Timings {
		related[tm.RelatedPin] = true
		if tm.Sense != liberty.SenseNegative {
			t.Errorf("NAND2 arc %s sense %s", tm.RelatedPin, tm.Sense)
		}
	}
	if !related["A"] || !related["B"] {
		t.Errorf("arcs found: %v", related)
	}
}

func TestCharacterizeXORNonUnate(t *testing.T) {
	lc := mustChar(t, "XOR2x1", 300)
	y := lc.FindPin("Y")
	for _, tm := range y.Timings {
		if tm.Sense != liberty.SenseNonUnate {
			t.Errorf("XOR2 arc %s sense = %s", tm.RelatedPin, tm.Sense)
		}
		if tm.CellRise.Values[1][1] <= 0 || tm.CellFall.Values[1][1] <= 0 {
			t.Errorf("XOR2 arc %s has non-positive delay", tm.RelatedPin)
		}
	}
}

func TestCharacterizeDFF(t *testing.T) {
	lc := mustChar(t, "DFFx1", 300)
	if !lc.Sequential || lc.ClockPin != "CLK" {
		t.Fatalf("DFF metadata: %+v", lc)
	}
	q := lc.FindPin("Q")
	if q == nil || len(q.Timings) != 1 {
		t.Fatalf("DFF Q arcs: %+v", q)
	}
	tm := q.Timings[0]
	if tm.Type != "rising_edge" || tm.RelatedPin != "CLK" {
		t.Errorf("DFF arc: type=%s related=%s", tm.Type, tm.RelatedPin)
	}
	if tm.CellRise.Values[1][1] <= 0 || tm.CellFall.Values[1][1] <= 0 {
		t.Errorf("DFF clk->q delays: %v %v", tm.CellRise.Values[1][1], tm.CellFall.Values[1][1])
	}
}

func TestCharacterizeLibrarySubsetAndCache(t *testing.T) {
	subset := []*pdk.Cell{
		pdk.FindCell(catalog, "INVx1"),
		pdk.FindCell(catalog, "NAND2x1"),
		pdk.FindCell(catalog, "NOR2x1"),
	}
	cfg := QuickConfig(300)
	dir := t.TempDir()
	path := filepath.Join(dir, "subset.lib")
	lib, err := CharacterizeLibraryCached(context.Background(), path, "subset300", subset, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) != 3 {
		t.Fatalf("library has %d cells", len(lib.Cells))
	}
	if err := lib.Validate(); err != nil {
		t.Errorf("characterized library invalid: %v", err)
	}
	info1, err := os.Stat(path)
	if err != nil {
		t.Fatalf("cache file not written: %v", err)
	}
	// Second call must hit the cache (file unchanged).
	lib2, err := CharacterizeLibraryCached(context.Background(), path, "subset300", subset, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	info2, _ := os.Stat(path)
	if !info2.ModTime().Equal(info1.ModTime()) {
		t.Error("cache was regenerated on second call")
	}
	if len(lib2.Cells) != 3 {
		t.Errorf("cached library has %d cells", len(lib2.Cells))
	}
	// Parsed-back tables agree with fresh ones at a mid point.
	d1 := lib.FindCell("INVx1").Timing("Y", "A").CellRise.Lookup(20e-12, 1.6e-15)
	d2 := lib2.FindCell("INVx1").Timing("Y", "A").CellRise.Lookup(20e-12, 1.6e-15)
	if math.Abs(d1-d2)/d1 > 1e-3 {
		t.Errorf("cache round trip delay %v vs %v", d2, d1)
	}
}

func mustChar(t *testing.T, name string, temp float64) *liberty.Cell {
	t.Helper()
	cell := cellByName(t, name)
	lc, err := CharacterizeCell(context.Background(), cell, QuickConfig(temp))
	if err != nil {
		t.Fatalf("characterize %s at %gK: %v", name, temp, err)
	}
	return lc
}

func TestSequentialLeakageNotMetastable(t *testing.T) {
	// Bistable feedback loops must not be characterized at their metastable
	// (mid-rail, high short-circuit-current) operating point.
	ch := &charer{cfg: QuickConfig(300)}
	for _, name := range []string{"DFFx1", "DLATCHx1", "SDFFx1"} {
		cell := cellByName(t, name)
		p, err := ch.leakage(cell)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p > 1e-6 {
			t.Errorf("%s leakage %.3g W: metastable operating point", name, p)
		}
		if p <= 0 {
			t.Errorf("%s leakage %.3g W: non-positive", name, p)
		}
	}
}
