package charlib

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/liberty"
	"repro/internal/pdk"
)

// CharacterizeLibraryCached characterizes the library unless a liberty file
// at path already holds a matching corner (same temperature and cell
// count), in which case the cached file is parsed and returned. Freshly
// characterized results are written to path.
func CharacterizeLibraryCached(path, name string, cells []*pdk.Cell, cfg Config, progress func(done, total int)) (*liberty.Library, error) {
	if f, err := os.Open(path); err == nil {
		lib, perr := liberty.Parse(f)
		f.Close()
		if perr == nil && lib.TempK == cfg.TempK && len(lib.Cells) == len(cells) {
			return lib, nil
		}
		// Stale or corrupt cache: fall through and regenerate.
	}
	lib, err := CharacterizeLibrary(name, cells, cfg, progress)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	if err := lib.Write(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	return lib, nil
}

// DefaultCachePath returns the canonical on-disk location for a
// characterized corner, rooted at dir.
func DefaultCachePath(dir string, tempK float64, n int) string {
	return filepath.Join(dir, fmt.Sprintf("cryolib_%gK_%dcells.lib", tempK, n))
}
