package charlib

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/liberty"
	"repro/internal/obs"
	"repro/internal/pdk"
)

// CacheKey fingerprints one characterization request: the full Config (Vdd,
// temperature, slew and load grids — everything except the worker count,
// which cannot change results) plus the complete cell list (names, drives,
// pin lists, stage networks, truth tables, areas, sequential metadata). Any
// change to either yields a different key, so a cached liberty file can
// never be silently reused for a different corner or library revision.
func CacheKey(cells []*pdk.Cell, cfg Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|vdd=%.17g|temp=%.17g|slews=%v|loads=%v\n", cfg.Vdd, cfg.TempK, cfg.Slews, cfg.Loads)
	// Forensics knobs change results, so they must key the cache — but only
	// when set, so existing cached corners keep their keys.
	if cfg.NewtonIterLimit != 0 || cfg.SkipLeakage {
		fmt.Fprintf(h, "iterlimit=%d|skipleak=%t\n", cfg.NewtonIterLimit, cfg.SkipLeakage)
	}
	for _, c := range cells {
		fmt.Fprintf(h, "cell=%s|base=%s|drive=%d|in=%s|out=%s|area=%.17g|seq=%t|clock=%s|edge=%t|flop=%t\n",
			c.Name, c.Base, c.Drive, strings.Join(c.Inputs, ","), strings.Join(c.Outputs, ","),
			c.Area(), c.Seq, c.Clock, c.Edge, c.IsFlop)
		for _, st := range c.Stages {
			if st.Tri != nil {
				fmt.Fprintf(h, "  stage=%s|tri=%s,%s,%s\n", st.Out, st.Tri.In, st.Tri.EnN, st.Tri.EnP)
			} else if st.F != nil {
				fmt.Fprintf(h, "  stage=%s|f=%s\n", st.Out, st.F.String())
			}
		}
		for _, out := range c.Outputs {
			if tt, ok := c.Truth(out); ok {
				fmt.Fprintf(h, "  truth=%s|%016x\n", out, tt)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// metaPath is the sidecar file that records the cache key of a
// characterized liberty file.
func metaPath(path string) string { return path + ".meta" }

// CharacterizeLibraryCached characterizes the library unless a liberty file
// at path already holds a matching corner — validated against the SHA-256
// cache key of the full Config and cell list, not just temperature and cell
// count — in which case the cached file is parsed and returned. Freshly
// characterized results are written to path with the key in a sidecar
// path.meta file. Cache hits and misses are recorded in the
// charlib.cache.hits / charlib.cache.misses counters.
func CharacterizeLibraryCached(ctx context.Context, path, name string, cells []*pdk.Cell, cfg Config, progress func(done, total int)) (*liberty.Library, error) {
	key := CacheKey(cells, cfg)
	if lib := readCache(path, key, cfg, len(cells)); lib != nil {
		obs.C("charlib.cache.hits").Inc()
		return lib, nil
	}
	obs.C("charlib.cache.misses").Inc()
	lib, err := CharacterizeLibrary(ctx, name, cells, cfg, progress)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	if err := lib.Write(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	if err := os.WriteFile(metaPath(path), []byte(key+"\n"), 0o644); err != nil {
		return nil, err
	}
	obs.J().Artifact("charlib.cache", path)
	return lib, nil
}

// readCache returns the cached library when both the sidecar key and the
// parsed file agree with the request, nil otherwise (stale, corrupt, or
// absent caches all fall through to regeneration).
func readCache(path, key string, cfg Config, nCells int) *liberty.Library {
	meta, err := os.ReadFile(metaPath(path))
	if err != nil {
		return nil
	}
	if strings.TrimSpace(string(meta)) != key {
		obs.Log().Infof("charlib: cache %s is stale (config or cell list changed), re-characterizing", path)
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	lib, err := liberty.Parse(f)
	if err != nil {
		obs.Log().Warnf("charlib: cache %s is corrupt (%v), re-characterizing", path, err)
		return nil
	}
	// Defense in depth: the sidecar could have survived a liberty rewrite.
	if lib.TempK != cfg.TempK || len(lib.Cells) != nCells {
		obs.Log().Warnf("charlib: cache %s does not match its sidecar key, re-characterizing", path)
		return nil
	}
	return lib
}

// DefaultCachePath returns the canonical on-disk location for a
// characterized corner, rooted at dir.
func DefaultCachePath(dir string, tempK float64, n int) string {
	return filepath.Join(dir, fmt.Sprintf("cryolib_%gK_%dcells.lib", tempK, n))
}
