package charlib

import (
	"fmt"

	"repro/internal/liberty"
	"repro/internal/pdk"
	"repro/internal/spice"
)

// MeasureSetupHold extracts the setup and hold times of an edge-triggered
// flop by bisection at the mid slew point: the data transition is moved
// toward (setup) or away from (hold) the active clock edge until capture
// fails; the constraint is the last passing margin. Results are in seconds.
//
// This is the constraint-characterization half of a SiliconSmart flow; it
// is opt-in because it costs ~10 transients per cell.
func MeasureSetupHold(cell *pdk.Cell, cfg Config) (setup, hold float64, err error) {
	if !cell.Seq || !cell.IsFlop {
		return 0, 0, fmt.Errorf("charlib: %s is not an edge-triggered flop", cell.Name)
	}
	slew := cfg.Slews[len(cfg.Slews)/2]
	load := cfg.Loads[len(cfg.Loads)/2]
	ch := &charer{cfg: cfg}

	// Setup: largest data-before-edge margin that fails, bisected against
	// the smallest that passes.
	pass := 120e-12 // assumed-safe setup margin
	ok, err := ch.captures(cell, pass, slew, load)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, 0, fmt.Errorf("charlib: %s does not capture even with %g s setup", cell.Name, pass)
	}
	fail := -20e-12 // data after the edge must fail
	if ok, err = ch.captures(cell, fail, slew, load); err != nil {
		return 0, 0, err
	} else if ok {
		// Degenerate but possible with reconvergent stimuli; report zero.
		return 0, 0, nil
	}
	for i := 0; i < 9; i++ {
		mid := 0.5 * (pass + fail)
		ok, err := ch.captures(cell, mid, slew, load)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			pass = mid
		} else {
			fail = mid
		}
	}
	setup = pass

	// Hold: with the data launched well before the edge, find how soon
	// after the edge it may be withdrawn. Margin here is the withdraw time
	// relative to the edge (positive = after the edge).
	passH := 120e-12
	okH, err := ch.holds(cell, passH, slew, load)
	if err != nil {
		return 0, 0, err
	}
	if !okH {
		return setup, 0, fmt.Errorf("charlib: %s loses data even with %g s hold", cell.Name, passH)
	}
	failH := -60e-12
	if okH, err = ch.holds(cell, failH, slew, load); err != nil {
		return setup, 0, err
	} else if okH {
		return setup, failH, nil // hold constraint below the probe range
	}
	for i := 0; i < 9; i++ {
		mid := 0.5 * (passH + failH)
		ok, err := ch.holds(cell, mid, slew, load)
		if err != nil {
			return setup, 0, err
		}
		if ok {
			passH = mid
		} else {
			failH = mid
		}
	}
	return setup, passH, nil
}

// captures runs one setup trial: the D rise crosses 50%% exactly `margin`
// before the clock's 50%% crossing; returns whether Q captured the 1.
func (ch *charer) captures(cell *pdk.Cell, margin, slew, load float64) (bool, error) {
	wfQ, edgeRef, period, err := ch.runConstraint(cell, slew, load, func(edgeRef float64) spice.SourceFn {
		vdd := ch.cfg.Vdd
		tD := edgeRef - margin // D 50% crossing
		return spice.PWL([2]float64{0, 0}, [2]float64{tD - slew/2, 0}, [2]float64{tD + slew/2, vdd})
	})
	if err != nil {
		return false, err
	}
	return sampleAfter(wfQ.wf, wfQ.out, edgeRef+period/2.2) > 0.9*ch.cfg.Vdd, nil
}

// holds runs one hold trial: D is high long before the edge and its fall
// crosses 50%% exactly `margin` after the clock's 50%% crossing; returns
// whether Q kept the 1.
func (ch *charer) holds(cell *pdk.Cell, margin, slew, load float64) (bool, error) {
	wfQ, edgeRef, period, err := ch.runConstraint(cell, slew, load, func(edgeRef float64) spice.SourceFn {
		vdd := ch.cfg.Vdd
		tD := edgeRef + margin // D-fall 50% crossing
		return spice.PWL([2]float64{0, 0},
			[2]float64{edgeRef - 150e-12, 0}, [2]float64{edgeRef - 150e-12 + slew, vdd},
			[2]float64{tD - slew/2, vdd}, [2]float64{tD + slew/2, 0})
	})
	if err != nil {
		return false, err
	}
	return sampleAfter(wfQ.wf, wfQ.out, edgeRef+period/2.2) > 0.9*ch.cfg.Vdd, nil
}

// runConstraint builds a single-edge capture testbench: CLK makes one
// active transition whose 50% crossing sits at a fixed reference time;
// mkD supplies the data stimulus relative to that reference.
func (ch *charer) runConstraint(cell *pdk.Cell, slew, load float64,
	mkD func(edgeRef float64) spice.SourceFn) (*arcWaveform, float64, float64, error) {
	cfg := ch.cfg
	c := spice.New(cfg.TempK)
	vddN := c.Node("vdd")
	c.AddVSource(vddN, spice.Ground, spice.DC(cfg.Vdd))
	period := 500e-12
	edge := 300e-12          // clock ramp start
	edgeRef := edge + slew/2 // clock 50% crossing
	hi, lo := cfg.Vdd, 0.0
	if !cell.Edge {
		hi, lo = 0.0, cfg.Vdd
	}
	pins := map[string]spice.NodeID{}
	dFn := mkD(edgeRef)
	for _, p := range cell.Inputs {
		node := c.Node("in_" + p)
		pins[p] = node
		switch p {
		case cell.Clock:
			c.AddVSource(node, spice.Ground, spice.PWL(
				[2]float64{0, lo}, [2]float64{edge, lo}, [2]float64{edge + slew, hi}))
		case "D":
			c.AddVSource(node, spice.Ground, dFn)
		case "RN", "SN":
			c.AddVSource(node, spice.Ground, spice.DC(cfg.Vdd))
		case "SI", "SE":
			c.AddVSource(node, spice.Ground, spice.DC(0))
		default:
			c.AddVSource(node, spice.Ground, spice.DC(0))
		}
	}
	for _, o := range cell.Outputs {
		n := c.Node("out_" + o)
		pins[o] = n
		c.AddCapacitor(n, spice.Ground, load)
	}
	if err := cell.Build(c, "ff", pins, vddN); err != nil {
		return nil, 0, 0, err
	}
	tstop := edge + period
	wf, err := c.Transient(tstop, tstop/1600)
	if err != nil {
		return nil, 0, 0, err
	}
	return &arcWaveform{wf: wf, out: wf.V("out_" + cell.Outputs[0])}, edgeRef, period, nil
}

func sampleAfter(wf *spice.Waveform, sig []float64, t float64) float64 {
	idx := 0
	for i, tt := range wf.Time {
		if tt <= t {
			idx = i
		}
	}
	return sig[idx]
}

// AttachConstraints measures setup/hold for a flop and attaches them to its
// liberty cell as scalar constraint arcs on the data pin.
func AttachConstraints(lc *liberty.Cell, cell *pdk.Cell, cfg Config) error {
	setup, hold, err := MeasureSetupHold(cell, cfg)
	if err != nil {
		return err
	}
	d := lc.FindPin("D")
	if d == nil {
		return fmt.Errorf("charlib: %s has no D pin", lc.Name)
	}
	scalar := func(v float64) *liberty.Table {
		t := liberty.NewTable([]float64{cfg.Slews[len(cfg.Slews)/2]}, []float64{cfg.Loads[len(cfg.Loads)/2]})
		t.Values[0][0] = v
		return t
	}
	edgeType := "setup_rising"
	holdType := "hold_rising"
	if !cell.Edge {
		edgeType, holdType = "setup_falling", "hold_falling"
	}
	d.Timings = append(d.Timings,
		&liberty.Timing{RelatedPin: cell.Clock, Type: edgeType, CellRise: scalar(setup), CellFall: scalar(setup)},
		&liberty.Timing{RelatedPin: cell.Clock, Type: holdType, CellRise: scalar(hold), CellFall: scalar(hold)},
	)
	return nil
}
