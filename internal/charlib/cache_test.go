package charlib

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/pdk"
)

func TestCacheKeySensitivity(t *testing.T) {
	subset := []*pdk.Cell{
		pdk.FindCell(catalog, "INVx1"),
		pdk.FindCell(catalog, "NAND2x1"),
	}
	cfg := QuickConfig(300)
	base := CacheKey(subset, cfg)

	if CacheKey(subset, cfg) != base {
		t.Error("cache key is not deterministic")
	}

	vdd := cfg
	vdd.Vdd *= 1.1
	if CacheKey(subset, vdd) == base {
		t.Error("Vdd change did not change the cache key")
	}

	temp := cfg
	temp.TempK = 10
	if CacheKey(subset, temp) == base {
		t.Error("temperature change did not change the cache key")
	}

	grid := cfg
	grid.Slews = append(append([]float64(nil), cfg.Slews...), 99e-12)
	if CacheKey(subset, grid) == base {
		t.Error("slew-grid change did not change the cache key")
	}

	loads := cfg
	loads.Loads = append(append([]float64(nil), cfg.Loads...), 9e-15)
	if CacheKey(subset, loads) == base {
		t.Error("load-grid change did not change the cache key")
	}

	// Same length, same temperature, different cells: only the fingerprint
	// can tell these apart (the old count+temperature check could not).
	other := []*pdk.Cell{
		pdk.FindCell(catalog, "INVx1"),
		pdk.FindCell(catalog, "NOR2x1"),
	}
	if CacheKey(other, cfg) == base {
		t.Error("cell-list change did not change the cache key")
	}

	// Worker count is excluded: it cannot change characterization results.
	workers := cfg
	workers.Workers = cfg.Workers + 3
	if CacheKey(subset, workers) != base {
		t.Error("worker count leaked into the cache key")
	}
}

func TestCacheMissOnConfigChange(t *testing.T) {
	obs.EnableMetrics()
	hits := obs.C("charlib.cache.hits")
	misses := obs.C("charlib.cache.misses")
	hits0, misses0 := hits.Value(), misses.Value()

	subset := []*pdk.Cell{pdk.FindCell(catalog, "INVx1")}
	cfg := QuickConfig(300)
	dir := t.TempDir()
	path := filepath.Join(dir, "inv.lib")
	ctx := context.Background()

	if _, err := CharacterizeLibraryCached(ctx, path, "inv300", subset, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if got := misses.Value() - misses0; got != 1 {
		t.Fatalf("first characterization recorded %d misses, want 1", got)
	}
	if _, err := os.Stat(metaPath(path)); err != nil {
		t.Fatalf("sidecar key file not written: %v", err)
	}

	if _, err := CharacterizeLibraryCached(ctx, path, "inv300", subset, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if got := hits.Value() - hits0; got != 1 {
		t.Fatalf("identical request recorded %d hits, want 1", got)
	}

	// A changed supply voltage must invalidate the cache even though the
	// temperature and cell count still match the liberty file.
	changed := cfg
	changed.Vdd *= 1.05
	lib, err := CharacterizeLibraryCached(ctx, path, "inv300", subset, changed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := misses.Value() - misses0; got != 2 {
		t.Fatalf("Vdd change recorded %d misses, want 2", got)
	}
	if lib.Vdd != changed.Vdd {
		t.Errorf("regenerated library has Vdd %g, want %g", lib.Vdd, changed.Vdd)
	}

	// The sidecar now holds the new key, so repeating the changed request
	// hits, and the original request misses again.
	if _, err := CharacterizeLibraryCached(ctx, path, "inv300", subset, changed, nil); err != nil {
		t.Fatal(err)
	}
	if got := hits.Value() - hits0; got != 2 {
		t.Fatalf("repeated changed request recorded %d hits, want 2", got)
	}
	if _, err := CharacterizeLibraryCached(ctx, path, "inv300", subset, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if got := misses.Value() - misses0; got != 3 {
		t.Fatalf("reverted request recorded %d misses, want 3", got)
	}
}

func TestCacheMissOnMissingSidecar(t *testing.T) {
	obs.EnableMetrics()
	misses := obs.C("charlib.cache.misses")
	misses0 := misses.Value()

	subset := []*pdk.Cell{pdk.FindCell(catalog, "INVx1")}
	cfg := QuickConfig(300)
	dir := t.TempDir()
	path := filepath.Join(dir, "inv.lib")
	ctx := context.Background()

	if _, err := CharacterizeLibraryCached(ctx, path, "inv300", subset, cfg, nil); err != nil {
		t.Fatal(err)
	}
	// A liberty file without its sidecar (e.g. written by an older version
	// with the weak count+temperature check) must not be trusted.
	if err := os.Remove(metaPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, err := CharacterizeLibraryCached(ctx, path, "inv300", subset, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if got := misses.Value() - misses0; got != 2 {
		t.Fatalf("missing sidecar recorded %d misses, want 2", got)
	}
}
