package charlib

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/liberty"
	"repro/internal/pdk"
	"repro/internal/spice"
)

// arcWaveform is the result of one measurement transient.
type arcWaveform struct {
	wf     *spice.Waveform
	in     []float64 // stimulated input waveform
	out    []float64 // measured output waveform
	energy float64   // total supply energy over the event window (J)
	op     []float64 // t=0 operating point: the next grid point's warm start
}

// combArc measures the full NLDM grid for one input->output arc of a
// combinational cell, returning the timing and internal-power groups.
//
// Grid rows (fixed slew, sweeping load) run concurrently on the shared
// worker pool. Within a row each solve is warm-started from the previous
// load point's operating point — neighboring points differ only in load
// capacitance, which is invisible at DC, so the seed is essentially exact
// and Newton skips the gmin ladder. Each row chains deterministically, so
// results are bit-identical to a sequential sweep.
func (ch *charer) combArc(cell *pdk.Cell, in, out string, vec int, o0, o1 bool) (*liberty.Timing, *liberty.InternalPower, error) {
	cfg := ch.cfg
	tm := &liberty.Timing{
		RelatedPin: in,
		CellRise:   liberty.NewTable(cfg.Slews, cfg.Loads),
		CellFall:   liberty.NewTable(cfg.Slews, cfg.Loads),
		RiseTrans:  liberty.NewTable(cfg.Slews, cfg.Loads),
		FallTrans:  liberty.NewTable(cfg.Slews, cfg.Loads),
	}
	pw := &liberty.InternalPower{
		RelatedPin: in,
		RisePower:  liberty.NewTable(cfg.Slews, cfg.Loads),
		FallPower:  liberty.NewTable(cfg.Slews, cfg.Loads),
	}
	arc := in + "->" + out
	errs := make([]error, len(cfg.Slews))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i, slew := range cfg.Slews {
		wg.Add(1)
		go func(i int, slew float64) {
			defer wg.Done()
			ch.acquire()
			defer ch.release()
			var warmRise, warmFall []float64
			for j, load := range cfg.Loads {
				if failed.Load() {
					return
				}
				rise, err := ch.runComb(cell, in, out, vec, true, slew, load, warmRise)
				if err != nil {
					ch.journalFailure(cell, arc, slew, load, err)
					errs[i] = fmt.Errorf("slew=%g load=%g rise: %w", slew, load, err)
					failed.Store(true)
					return
				}
				warmRise = rise.op
				fall, err := ch.runComb(cell, in, out, vec, false, slew, load, warmFall)
				if err != nil {
					ch.journalFailure(cell, arc, slew, load, err)
					errs[i] = fmt.Errorf("slew=%g load=%g fall: %w", slew, load, err)
					failed.Store(true)
					return
				}
				warmFall = fall.op
				// Input rising waveform produces output rise when o1 is true
				// (positive behavior at this vector); otherwise output falls.
				outRiseWf, outFallWf := rise, fall
				if !o1 {
					outRiseWf, outFallWf = fall, rise
				}
				dRise, trRise, err := measureDelay(outRiseWf, cfg.Vdd, true)
				if err != nil {
					ch.journalFailure(cell, arc, slew, load, err)
					errs[i] = fmt.Errorf("slew=%g load=%g output-rise: %w", slew, load, err)
					failed.Store(true)
					return
				}
				dFall, trFall, err := measureDelay(outFallWf, cfg.Vdd, false)
				if err != nil {
					ch.journalFailure(cell, arc, slew, load, err)
					errs[i] = fmt.Errorf("slew=%g load=%g output-fall: %w", slew, load, err)
					failed.Store(true)
					return
				}
				tm.CellRise.Values[i][j] = dRise
				tm.RiseTrans.Values[i][j] = trRise
				tm.CellFall.Values[i][j] = dFall
				tm.FallTrans.Values[i][j] = trFall
				// Internal energy: the supply delivers Cload*Vdd^2 to charge the
				// load on output-rise events; everything beyond that is internal
				// (short-circuit + internal node) energy. On output-fall events
				// the load discharges through the pull-down, so the entire
				// supply draw is internal.
				eRise := outRiseWf.energy - load*cfg.Vdd*cfg.Vdd
				if eRise < 0 {
					eRise = 0
				}
				eFall := outFallWf.energy
				if eFall < 0 {
					eFall = 0
				}
				pw.RisePower.Values[i][j] = eRise
				pw.FallPower.Values[i][j] = eFall
			}
		}(i, slew)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return tm, pw, nil
}

// runComb builds and simulates one combinational measurement: the target
// input ramps (rising or falling) while side inputs hold the sensitizing
// vector. warm, when non-nil, seeds the initial operating-point solve from
// the previous load point on the same grid row (see TransientFrom).
func (ch *charer) runComb(cell *pdk.Cell, in, out string, vec int, inputRises bool, slew, load float64, warm []float64) (*arcWaveform, error) {
	cfg := ch.cfg
	c := ch.newCircuit()
	vddN := c.Node("vdd")
	supply := spice.DC(cfg.Vdd)
	br := c.AddVSource(vddN, spice.Ground, supply)
	pins := map[string]spice.NodeID{}
	t0 := 20e-12
	ramp := slew
	v0, v1 := 0.0, cfg.Vdd
	if !inputRises {
		v0, v1 = cfg.Vdd, 0.0
	}
	for i, p := range cell.Inputs {
		node := c.Node("in_" + p)
		pins[p] = node
		if p == in {
			c.AddVSource(node, spice.Ground, spice.PWL(
				[2]float64{0, v0}, [2]float64{t0, v0}, [2]float64{t0 + ramp, v1},
			))
			continue
		}
		v := 0.0
		if vec&(1<<uint(i)) != 0 {
			v = cfg.Vdd
		}
		c.AddVSource(node, spice.Ground, spice.DC(v))
	}
	for _, o := range cell.Outputs {
		n := c.Node("out_" + o)
		pins[o] = n
		if o == out {
			c.AddCapacitor(n, spice.Ground, load)
		} else {
			c.AddCapacitor(n, spice.Ground, 0.4e-15) // nominal side load
		}
	}
	if err := cell.Build(c, "dut", pins, vddN); err != nil {
		return nil, err
	}
	tstop := t0 + ramp + 250e-12
	for attempt := 0; ; attempt++ {
		dt := tstop / 600
		wf, err := c.TransientFrom(warm, tstop, dt)
		if err != nil {
			return nil, err
		}
		outV := wf.V("out_" + out)
		final := wf.Final(outV)
		settled := final < 0.05*cfg.Vdd || final > 0.95*cfg.Vdd
		if settled || attempt >= 2 {
			if !settled {
				return nil, fmt.Errorf("output did not settle (%.3f V after %.3g s)", final, tstop)
			}
			return &arcWaveform{
				wf:     wf,
				in:     wf.V("in_" + in),
				out:    outV,
				energy: wf.SupplyEnergy(br, supply),
				op:     wf.InitialOp(),
			}, nil
		}
		tstop *= 2
	}
}

// measureDelay extracts the 50%-50% propagation delay and the full-swing
// equivalent output transition ((t80-t20)/0.6) from a measurement waveform.
// rising reports the expected output direction.
func measureDelay(a *arcWaveform, vdd float64, rising bool) (delay, trans float64, err error) {
	half := vdd / 2
	// The input may rise or fall; find its 50% crossing in either direction.
	tIn, ok := a.wf.CrossTime(a.in, half, true, 0)
	if !ok {
		tIn, ok = a.wf.CrossTime(a.in, half, false, 0)
	}
	if !ok {
		return 0, 0, fmt.Errorf("input crossing not found")
	}
	tOut, ok := a.wf.CrossTime(a.out, half, rising, 0)
	if !ok {
		return 0, 0, fmt.Errorf("output crossing not found (rising=%v)", rising)
	}
	tr, ok := a.wf.TransitionTime(a.out, 0.2*vdd, 0.8*vdd, rising, 0)
	if !ok {
		return 0, 0, fmt.Errorf("output transition not found")
	}
	d := tOut - tIn
	if d < 0 {
		d = 0 // ultra-fast cells can cross before the input midpoint
	}
	return d, tr / 0.6, nil
}

// clockArc measures the CLK->Q arc of a sequential cell: Q rise is captured
// at the second clock edge (D=1), Q fall at the third (D=0).
func (ch *charer) clockArc(cell *pdk.Cell, out string) (*liberty.Timing, *liberty.InternalPower, error) {
	cfg := ch.cfg
	edgeType := "rising_edge"
	if !cell.Edge {
		edgeType = "falling_edge"
	}
	tm := &liberty.Timing{
		RelatedPin: cell.Clock,
		Sense:      liberty.SenseNonUnate,
		Type:       edgeType,
		CellRise:   liberty.NewTable(cfg.Slews, cfg.Loads),
		CellFall:   liberty.NewTable(cfg.Slews, cfg.Loads),
		RiseTrans:  liberty.NewTable(cfg.Slews, cfg.Loads),
		FallTrans:  liberty.NewTable(cfg.Slews, cfg.Loads),
	}
	pw := &liberty.InternalPower{
		RelatedPin: cell.Clock,
		RisePower:  liberty.NewTable(cfg.Slews, cfg.Loads),
		FallPower:  liberty.NewTable(cfg.Slews, cfg.Loads),
	}
	errs := make([]error, len(cfg.Slews))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i, slew := range cfg.Slews {
		wg.Add(1)
		go func(i int, slew float64) {
			defer wg.Done()
			ch.acquire()
			defer ch.release()
			var warm []float64
			for j, load := range cfg.Loads {
				if failed.Load() {
					return
				}
				res, err := ch.runClock(cell, out, slew, load, warm)
				if err != nil {
					ch.journalFailure(cell, cell.Clock+"->"+out, slew, load, err)
					errs[i] = fmt.Errorf("slew=%g load=%g: %w", slew, load, err)
					failed.Store(true)
					return
				}
				warm = res.op
				tm.CellRise.Values[i][j] = res.dRise
				tm.CellFall.Values[i][j] = res.dFall
				tm.RiseTrans.Values[i][j] = res.trRise
				tm.FallTrans.Values[i][j] = res.trFall
				pw.RisePower.Values[i][j] = res.eRise
				pw.FallPower.Values[i][j] = res.eFall
			}
		}(i, slew)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return tm, pw, nil
}

type clockResult struct {
	dRise, dFall, trRise, trFall, eRise, eFall float64
	op                                         []float64
}

// runClock simulates a 3-edge capture sequence and extracts CLK->Q metrics
// at the 2nd (Q rise) and 3rd (Q fall) active edges. warm seeds the initial
// operating point from the previous load point on the same slew row.
func (ch *charer) runClock(cell *pdk.Cell, out string, slew, load float64, warm []float64) (*clockResult, error) {
	cfg := ch.cfg
	c := ch.newCircuit()
	vddN := c.Node("vdd")
	supply := spice.DC(cfg.Vdd)
	br := c.AddVSource(vddN, spice.Ground, supply)
	pins := map[string]spice.NodeID{}

	period := 500e-12 + 8*slew
	ramp := slew
	hi, lo := cfg.Vdd, 0.0
	if !cell.Edge {
		// Negative-edge flops and transparent-low latches: invert the
		// clock polarity so the capture/opening event is the monitored
		// edge.
		hi, lo = 0.0, cfg.Vdd
	}
	// Clock: low phase then three active pulses.
	var clkPts [][2]float64
	clkPts = append(clkPts, [2]float64{0, lo})
	for k := 0; k < 3; k++ {
		rise := float64(k+1) * period
		fallT := rise + period/2
		clkPts = append(clkPts,
			[2]float64{rise, lo}, [2]float64{rise + ramp, hi},
			[2]float64{fallT, hi}, [2]float64{fallT + ramp, lo},
		)
	}
	edge2 := 2 * period
	edge3 := 3 * period

	for _, p := range cell.Inputs {
		node := c.Node("in_" + p)
		pins[p] = node
		switch p {
		case cell.Clock:
			c.AddVSource(node, spice.Ground, spice.PWL(clkPts...))
		case "D":
			// 0 for the 1st capture, 1 before the 2nd, 0 before the 3rd.
			c.AddVSource(node, spice.Ground, spice.PWL(
				[2]float64{0, 0},
				[2]float64{edge2 - period/3, 0}, [2]float64{edge2 - period/3 + 10e-12, cfg.Vdd},
				[2]float64{edge3 - period/3, cfg.Vdd}, [2]float64{edge3 - period/3 + 10e-12, 0},
			))
		case "RN", "SN":
			c.AddVSource(node, spice.Ground, spice.DC(cfg.Vdd)) // inactive
		case "SI", "SE":
			c.AddVSource(node, spice.Ground, spice.DC(0))
		case "EN":
			c.AddVSource(node, spice.Ground, spice.DC(cfg.Vdd))
		default:
			c.AddVSource(node, spice.Ground, spice.DC(0))
		}
	}
	for _, o := range cell.Outputs {
		n := c.Node("out_" + o)
		pins[o] = n
		cl := 0.4e-15
		if o == out {
			cl = load
		}
		c.AddCapacitor(n, spice.Ground, cl)
	}
	if err := cell.Build(c, "ff", pins, vddN); err != nil {
		return nil, err
	}
	tstop := 3*period + period
	wf, err := c.TransientFrom(warm, tstop, tstop/2400)
	if err != nil {
		return nil, err
	}
	clk := wf.V("in_" + cell.Clock)
	q := wf.V("out_" + out)
	half := cfg.Vdd / 2
	activeRising := cell.Edge

	clkEdge2, ok := wf.CrossTime(clk, half, activeRising, edge2-10e-12)
	if !ok {
		return nil, fmt.Errorf("2nd clock edge not found")
	}
	qRise, ok := wf.CrossTime(q, half, true, clkEdge2)
	if !ok {
		return nil, fmt.Errorf("Q rise not found")
	}
	trRise, ok := wf.TransitionTime(q, 0.2*cfg.Vdd, 0.8*cfg.Vdd, true, clkEdge2)
	if !ok {
		return nil, fmt.Errorf("Q rise transition not found")
	}
	clkEdge3, ok := wf.CrossTime(clk, half, activeRising, edge3-10e-12)
	if !ok {
		return nil, fmt.Errorf("3rd clock edge not found")
	}
	qFall, ok := wf.CrossTime(q, half, false, clkEdge3)
	if !ok {
		return nil, fmt.Errorf("Q fall not found")
	}
	trFall, ok := wf.TransitionTime(q, 0.2*cfg.Vdd, 0.8*cfg.Vdd, false, clkEdge3)
	if !ok {
		return nil, fmt.Errorf("Q fall transition not found")
	}

	// Per-edge energy: integrate the supply over each capture window.
	cur := wf.BranchCurrent(br)
	window := func(t0, t1 float64) float64 {
		var e float64
		for i := 1; i < len(wf.Time); i++ {
			if wf.Time[i] < t0 || wf.Time[i-1] > t1 {
				continue
			}
			dt := wf.Time[i] - wf.Time[i-1]
			e += 0.5 * (-cur[i-1] - cur[i]) * cfg.Vdd * dt
		}
		return e
	}
	eRise := window(clkEdge2-20e-12, clkEdge2+period/2) - load*cfg.Vdd*cfg.Vdd
	if eRise < 0 {
		eRise = 0
	}
	eFall := window(clkEdge3-20e-12, clkEdge3+period/2)
	if eFall < 0 {
		eFall = 0
	}
	return &clockResult{
		dRise: qRise - clkEdge2, dFall: qFall - clkEdge3,
		trRise: trRise / 0.6, trFall: trFall / 0.6,
		eRise: eRise, eFall: eFall,
		op: wf.InitialOp(),
	}, nil
}
