package charlib

import (
	"context"
	"testing"
)

func TestSetupHoldDFF(t *testing.T) {
	cell := cellByName(t, "DFFx1")
	cfg := QuickConfig(300)
	setup, hold, err := MeasureSetupHold(cell, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("DFFx1 @300K: setup %.2f ps, hold %.2f ps", setup*1e12, hold*1e12)
	// Setup must be a positive, picosecond-scale window.
	if setup <= 0 || setup > 100e-12 {
		t.Errorf("setup = %v s implausible", setup)
	}
	// Hold can be negative (data may be withdrawn at/before the edge for
	// master-slave flops) but must be bounded.
	if hold > 60e-12 || hold < -60e-12 {
		t.Errorf("hold = %v s implausible", hold)
	}
	if setup <= hold {
		t.Errorf("setup (%v) must exceed hold (%v)", setup, hold)
	}
}

func TestSetupHoldRejectsCombinational(t *testing.T) {
	cell := cellByName(t, "NAND2x1")
	if _, _, err := MeasureSetupHold(cell, QuickConfig(300)); err == nil {
		t.Error("combinational cell accepted for constraint measurement")
	}
	latch := cellByName(t, "DLATCHx1")
	if _, _, err := MeasureSetupHold(latch, QuickConfig(300)); err == nil {
		t.Error("latch accepted for flop constraint measurement")
	}
}

func TestAttachConstraints(t *testing.T) {
	cell := cellByName(t, "DFFx1")
	cfg := QuickConfig(300)
	lc, err := CharacterizeCell(context.Background(), cell, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachConstraints(lc, cell, cfg); err != nil {
		t.Fatal(err)
	}
	d := lc.FindPin("D")
	var setupArc, holdArc bool
	for _, tm := range d.Timings {
		switch tm.Type {
		case "setup_rising":
			setupArc = true
			if tm.CellRise.Values[0][0] <= 0 {
				t.Error("setup arc non-positive")
			}
		case "hold_rising":
			holdArc = true
		}
	}
	if !setupArc || !holdArc {
		t.Errorf("constraint arcs missing: setup=%v hold=%v", setupArc, holdArc)
	}
}
