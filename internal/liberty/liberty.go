// Package liberty implements the industry-standard "liberty" (.lib) cell
// library format: the data model, an NLDM table-lookup engine with bilinear
// interpolation, a writer, and a parser. The characterized cryogenic-aware
// libraries produced by internal/charlib are emitted in this format so that
// — exactly as the paper stresses — they stay compatible with standard EDA
// tool flows.
package liberty

import (
	"fmt"
	"sort"
)

// Library is one characterized cell library at a single operating corner.
type Library struct {
	Name  string
	TempK float64 // characterization temperature (K)
	Vdd   float64 // supply voltage (V)
	Cells []*Cell
}

// Cell is one library cell.
type Cell struct {
	Name         string
	Area         float64
	LeakagePower float64 // average state leakage in watts
	Pins         []*Pin
	Sequential   bool
	ClockPin     string
}

// Pin is a cell port with its timing and power data.
type Pin struct {
	Name      string
	Direction string  // "input" or "output"
	Cap       float64 // input capacitance in farads (inputs only)
	Function  string  // boolean function (outputs only), liberty syntax
	Timings   []*Timing
	Powers    []*InternalPower
}

// TimingSense values follow liberty semantics.
const (
	SensePositive = "positive_unate"
	SenseNegative = "negative_unate"
	SenseNonUnate = "non_unate"
)

// Timing is one timing arc from RelatedPin to the owning output pin.
type Timing struct {
	RelatedPin string
	Sense      string
	Type       string // "" (combinational) or "rising_edge" / "falling_edge"
	CellRise   *Table // delay to output rise (s)
	CellFall   *Table // delay to output fall (s)
	RiseTrans  *Table // output rise transition (s)
	FallTrans  *Table // output fall transition (s)
}

// InternalPower is the per-arc internal energy table (J per switching
// event), indexed like the delay tables.
type InternalPower struct {
	RelatedPin string
	RisePower  *Table // energy for output-rise events (J)
	FallPower  *Table // energy for output-fall events (J)
}

// Table is a 2-D NLDM lookup table: Index1 = input transition (s),
// Index2 = output load (F), Values[i][j] in SI units.
type Table struct {
	Index1 []float64
	Index2 []float64
	Values [][]float64
}

// NewTable allocates a table with the given axes.
func NewTable(index1, index2 []float64) *Table {
	v := make([][]float64, len(index1))
	for i := range v {
		v[i] = make([]float64, len(index2))
	}
	return &Table{
		Index1: append([]float64(nil), index1...),
		Index2: append([]float64(nil), index2...),
		Values: v,
	}
}

// locate finds the interpolation cell for x on a sorted axis, returning the
// lower index and the (possibly extrapolating) fraction.
func locate(axis []float64, x float64) (int, float64) {
	n := len(axis)
	if n == 1 {
		return 0, 0
	}
	i := sort.SearchFloat64s(axis, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	lo, hi := axis[i-1], axis[i]
	if hi == lo {
		return i - 1, 0
	}
	return i - 1, (x - lo) / (hi - lo)
}

// Lookup evaluates the table at (slew, load) with bilinear interpolation and
// linear extrapolation outside the characterized grid.
func (t *Table) Lookup(slew, load float64) float64 {
	i, fi := locate(t.Index1, slew)
	j, fj := locate(t.Index2, load)
	if len(t.Index1) == 1 && len(t.Index2) == 1 {
		return t.Values[0][0]
	}
	if len(t.Index1) == 1 {
		return t.Values[0][j]*(1-fj) + t.Values[0][j+1]*fj
	}
	if len(t.Index2) == 1 {
		return t.Values[i][0]*(1-fi) + t.Values[i+1][0]*fi
	}
	v00 := t.Values[i][j]
	v01 := t.Values[i][j+1]
	v10 := t.Values[i+1][j]
	v11 := t.Values[i+1][j+1]
	return v00*(1-fi)*(1-fj) + v01*(1-fi)*fj + v10*fi*(1-fj) + v11*fi*fj
}

// FindCell returns the named cell or nil.
func (l *Library) FindCell(name string) *Cell {
	for _, c := range l.Cells {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// FindPin returns the named pin or nil.
func (c *Cell) FindPin(name string) *Pin {
	for _, p := range c.Pins {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Inputs returns the cell's input pins in declaration order.
func (c *Cell) Inputs() []*Pin {
	var out []*Pin
	for _, p := range c.Pins {
		if p.Direction == "input" {
			out = append(out, p)
		}
	}
	return out
}

// Outputs returns the cell's output pins in declaration order.
func (c *Cell) Outputs() []*Pin {
	var out []*Pin
	for _, p := range c.Pins {
		if p.Direction == "output" {
			out = append(out, p)
		}
	}
	return out
}

// Timing returns the timing arc on output pin "out" related to input "in",
// or nil.
func (c *Cell) Timing(out, in string) *Timing {
	p := c.FindPin(out)
	if p == nil {
		return nil
	}
	for _, tm := range p.Timings {
		if tm.RelatedPin == in {
			return tm
		}
	}
	return nil
}

// Power returns the internal-power group on output "out" related to "in".
func (c *Cell) Power(out, in string) *InternalPower {
	p := c.FindPin(out)
	if p == nil {
		return nil
	}
	for _, pw := range p.Powers {
		if pw.RelatedPin == in {
			return pw
		}
	}
	return nil
}

// Validate performs structural sanity checks and returns the first problem
// found, or nil.
func (l *Library) Validate() error {
	if len(l.Cells) == 0 {
		return fmt.Errorf("liberty: library %s has no cells", l.Name)
	}
	for _, c := range l.Cells {
		outs := c.Outputs()
		if len(outs) == 0 {
			return fmt.Errorf("liberty: cell %s has no outputs", c.Name)
		}
		for _, o := range outs {
			for _, tm := range o.Timings {
				if c.FindPin(tm.RelatedPin) == nil {
					return fmt.Errorf("liberty: cell %s: arc from unknown pin %s", c.Name, tm.RelatedPin)
				}
				for _, tb := range []*Table{tm.CellRise, tm.CellFall, tm.RiseTrans, tm.FallTrans} {
					if tb == nil {
						continue
					}
					for _, row := range tb.Values {
						for _, v := range row {
							if v < 0 {
								return fmt.Errorf("liberty: cell %s: negative table entry %g", c.Name, v)
							}
						}
					}
				}
			}
		}
	}
	return nil
}
