package liberty

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func sampleTable() *Table {
	t := NewTable([]float64{10e-12, 20e-12, 40e-12}, []float64{1e-15, 2e-15})
	for i := range t.Index1 {
		for j := range t.Index2 {
			// delay = 1ps + slew/10 + load * 1ps/fF
			t.Values[i][j] = 1e-12 + t.Index1[i]/10 + t.Index2[j]*1e3
		}
	}
	return t
}

func sampleLibrary() *Library {
	tbl := sampleTable()
	pw := NewTable(tbl.Index1, tbl.Index2)
	for i := range pw.Values {
		for j := range pw.Values[i] {
			pw.Values[i][j] = 1e-16 * float64(i+j+1)
		}
	}
	return &Library{
		Name:  "cryo10k",
		TempK: 10,
		Vdd:   0.7,
		Cells: []*Cell{
			{
				Name:         "INVx1",
				Area:         6,
				LeakagePower: 3.2e-12,
				Pins: []*Pin{
					{Name: "A", Direction: "input", Cap: 0.45e-15},
					{
						Name: "Y", Direction: "output", Function: "(!A)",
						Timings: []*Timing{{
							RelatedPin: "A", Sense: SenseNegative,
							CellRise: tbl, CellFall: tbl, RiseTrans: tbl, FallTrans: tbl,
						}},
						Powers: []*InternalPower{{RelatedPin: "A", RisePower: pw, FallPower: pw}},
					},
				},
			},
			{
				Name: "DFFx1", Area: 20, LeakagePower: 9e-12,
				Sequential: true, ClockPin: "CLK",
				Pins: []*Pin{
					{Name: "D", Direction: "input", Cap: 0.5e-15},
					{Name: "CLK", Direction: "input", Cap: 0.6e-15},
					{
						Name: "Q", Direction: "output",
						Timings: []*Timing{{
							RelatedPin: "CLK", Sense: SenseNonUnate, Type: "rising_edge",
							CellRise: tbl, CellFall: tbl, RiseTrans: tbl, FallTrans: tbl,
						}},
					},
				},
			},
		},
	}
}

func TestLookupExactGridPoints(t *testing.T) {
	tbl := sampleTable()
	for i, s := range tbl.Index1 {
		for j, l := range tbl.Index2 {
			if got := tbl.Lookup(s, l); math.Abs(got-tbl.Values[i][j]) > 1e-18 {
				t.Errorf("Lookup(%g,%g) = %g, want %g", s, l, got, tbl.Values[i][j])
			}
		}
	}
}

func TestLookupInterpolation(t *testing.T) {
	tbl := sampleTable()
	// The sample table is affine in both axes, so interpolation must be
	// exact everywhere, including extrapolation.
	f := func(sRaw, lRaw uint8) bool {
		s := 5e-12 + float64(sRaw)/255*50e-12
		l := 0.5e-15 + float64(lRaw)/255*3e-15
		want := 1e-12 + s/10 + l*1e3
		return math.Abs(tbl.Lookup(s, l)-want) < 1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLookupSinglePointAxes(t *testing.T) {
	tbl := NewTable([]float64{1e-12}, []float64{1e-15})
	tbl.Values[0][0] = 42e-12
	if got := tbl.Lookup(9e-12, 9e-15); got != 42e-12 {
		t.Errorf("degenerate table lookup = %v", got)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse back: %v\n---\n%s", err, buf.String()[:min(2000, buf.Len())])
	}
	if got.Name != lib.Name || got.TempK != lib.TempK || got.Vdd != lib.Vdd {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(got.Cells))
	}
	inv := got.FindCell("INVx1")
	if inv == nil {
		t.Fatal("INVx1 missing after round trip")
	}
	if math.Abs(inv.LeakagePower-3.2e-12)/3.2e-12 > 1e-5 {
		t.Errorf("leakage %v, want 3.2e-12", inv.LeakagePower)
	}
	a := inv.FindPin("A")
	if a == nil || math.Abs(a.Cap-0.45e-15)/0.45e-15 > 1e-5 {
		t.Errorf("pin A cap: %+v", a)
	}
	tm := inv.Timing("Y", "A")
	if tm == nil {
		t.Fatal("timing arc Y<-A missing")
	}
	if tm.Sense != SenseNegative {
		t.Errorf("sense = %q", tm.Sense)
	}
	// Table round trip within unit-quantization error.
	orig := sampleTable()
	for _, s := range []float64{10e-12, 25e-12, 40e-12} {
		for _, l := range []float64{1e-15, 1.7e-15} {
			w, g := orig.Lookup(s, l), tm.CellRise.Lookup(s, l)
			if math.Abs(w-g)/w > 1e-4 {
				t.Errorf("table(%g,%g): %g vs %g", s, l, w, g)
			}
		}
	}
	pw := inv.Power("Y", "A")
	if pw == nil || pw.RisePower == nil {
		t.Fatal("internal power missing")
	}
	if v := pw.RisePower.Values[0][0]; math.Abs(v-1e-16)/1e-16 > 1e-4 {
		t.Errorf("power value %v, want 1e-16", v)
	}
	dff := got.FindCell("DFFx1")
	if dff == nil || !dff.Sequential || dff.ClockPin != "CLK" {
		t.Errorf("DFF sequential info lost: %+v", dff)
	}
	if tq := dff.Timing("Q", "CLK"); tq == nil || tq.Type != "rising_edge" {
		t.Errorf("DFF CLK->Q arc: %+v", tq)
	}
}

func TestValidate(t *testing.T) {
	lib := sampleLibrary()
	if err := lib.Validate(); err != nil {
		t.Errorf("valid library rejected: %v", err)
	}
	empty := &Library{Name: "x"}
	if err := empty.Validate(); err == nil {
		t.Error("empty library accepted")
	}
	bad := sampleLibrary()
	bad.Cells[0].Pins[1].Timings[0].RelatedPin = "NOPE"
	if err := bad.Validate(); err == nil {
		t.Error("dangling related_pin accepted")
	}
	neg := sampleLibrary()
	neg.Cells[0].Pins[1].Timings[0].CellRise.Values[0][0] = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"",
		"cell (X) { }",
		"library (a) { cell (b) { pin (Y) { timing () { cell_rise (t) { index_1 (\"1\"); index_2 (\"1\"); values (\"1, 2\"); } } } } }",
	} {
		if _, err := Parse(bytes.NewReader([]byte(src))); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestHelpers(t *testing.T) {
	lib := sampleLibrary()
	inv := lib.FindCell("INVx1")
	if len(inv.Inputs()) != 1 || len(inv.Outputs()) != 1 {
		t.Error("Inputs/Outputs classification wrong")
	}
	if lib.FindCell("NOPE") != nil || inv.FindPin("NOPE") != nil {
		t.Error("Find* should return nil for unknown names")
	}
	if inv.Timing("Y", "NOPE") != nil || inv.Power("NOPE", "A") != nil {
		t.Error("Timing/Power should return nil when missing")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestQuickLookupWithinTableRange(t *testing.T) {
	// For a table with monotone values, interpolated lookups inside the
	// grid must stay within the table's min/max.
	tbl := sampleTable()
	lo, hi := tbl.Values[0][0], tbl.Values[len(tbl.Index1)-1][len(tbl.Index2)-1]
	f := func(sRaw, lRaw uint8) bool {
		s := tbl.Index1[0] + float64(sRaw)/255*(tbl.Index1[len(tbl.Index1)-1]-tbl.Index1[0])
		l := tbl.Index2[0] + float64(lRaw)/255*(tbl.Index2[len(tbl.Index2)-1]-tbl.Index2[0])
		v := tbl.Lookup(s, l)
		return v >= lo-1e-18 && v <= hi+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWriterDeterministic(t *testing.T) {
	lib := sampleLibrary()
	var a, b bytes.Buffer
	if err := lib.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := lib.Write(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("liberty writer is not deterministic")
	}
}
