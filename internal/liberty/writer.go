package liberty

import (
	"fmt"
	"io"
	"strings"
)

// Unit conventions for emitted libraries: time in ps, capacitance in fF,
// leakage power in pW, internal (per-event) energy in fJ, voltage in V.
const (
	timeScale    = 1e12 // s  -> ps
	capScale     = 1e15 // F  -> fF
	leakScale    = 1e12 // W  -> pW
	energyScale  = 1e15 // J  -> fJ
	timeUnitStr  = "1ps"
	leakUnitStr  = "1pW"
	pullResUnits = "1kohm"
)

// Write emits the library in liberty syntax.
func (l *Library) Write(w io.Writer) error {
	b := &strings.Builder{}
	fmt.Fprintf(b, "library (%s) {\n", l.Name)
	fmt.Fprintf(b, "  comment : \"cryogenic-aware characterized library, T=%gK\";\n", l.TempK)
	fmt.Fprintf(b, "  delay_model : table_lookup;\n")
	fmt.Fprintf(b, "  time_unit : \"%s\";\n", timeUnitStr)
	fmt.Fprintf(b, "  voltage_unit : \"1V\";\n")
	fmt.Fprintf(b, "  current_unit : \"1uA\";\n")
	fmt.Fprintf(b, "  leakage_power_unit : \"%s\";\n", leakUnitStr)
	fmt.Fprintf(b, "  pulling_resistance_unit : \"%s\";\n", pullResUnits)
	fmt.Fprintf(b, "  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(b, "  nom_temperature : %g;\n", l.TempK)
	fmt.Fprintf(b, "  nom_voltage : %g;\n", l.Vdd)
	fmt.Fprintf(b, "  operating_conditions (typical) {\n")
	fmt.Fprintf(b, "    temperature : %g;\n", l.TempK)
	fmt.Fprintf(b, "    voltage : %g;\n", l.Vdd)
	fmt.Fprintf(b, "  }\n")
	for _, c := range l.Cells {
		writeCell(b, c)
	}
	fmt.Fprintf(b, "}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeCell(b *strings.Builder, c *Cell) {
	fmt.Fprintf(b, "  cell (%s) {\n", c.Name)
	fmt.Fprintf(b, "    area : %.4f;\n", c.Area)
	fmt.Fprintf(b, "    cell_leakage_power : %.6g;\n", c.LeakagePower*leakScale)
	if c.Sequential {
		fmt.Fprintf(b, "    ff (IQ, IQN) {\n")
		fmt.Fprintf(b, "      clocked_on : \"%s\";\n", c.ClockPin)
		fmt.Fprintf(b, "      next_state : \"D\";\n")
		fmt.Fprintf(b, "    }\n")
	}
	for _, p := range c.Pins {
		writePin(b, p)
	}
	fmt.Fprintf(b, "  }\n")
}

func writePin(b *strings.Builder, p *Pin) {
	fmt.Fprintf(b, "    pin (%s) {\n", p.Name)
	fmt.Fprintf(b, "      direction : %s;\n", p.Direction)
	if p.Direction == "input" {
		fmt.Fprintf(b, "      capacitance : %.6g;\n", p.Cap*capScale)
	}
	if p.Function != "" {
		fmt.Fprintf(b, "      function : \"%s\";\n", p.Function)
	}
	for _, tm := range p.Timings {
		fmt.Fprintf(b, "      timing () {\n")
		fmt.Fprintf(b, "        related_pin : \"%s\";\n", tm.RelatedPin)
		if tm.Sense != "" {
			fmt.Fprintf(b, "        timing_sense : %s;\n", tm.Sense)
		}
		if tm.Type != "" {
			fmt.Fprintf(b, "        timing_type : %s;\n", tm.Type)
		}
		writeTable(b, "cell_rise", tm.CellRise, timeScale)
		writeTable(b, "cell_fall", tm.CellFall, timeScale)
		writeTable(b, "rise_transition", tm.RiseTrans, timeScale)
		writeTable(b, "fall_transition", tm.FallTrans, timeScale)
		fmt.Fprintf(b, "      }\n")
	}
	for _, pw := range p.Powers {
		fmt.Fprintf(b, "      internal_power () {\n")
		fmt.Fprintf(b, "        related_pin : \"%s\";\n", pw.RelatedPin)
		writeTable(b, "rise_power", pw.RisePower, energyScale)
		writeTable(b, "fall_power", pw.FallPower, energyScale)
		fmt.Fprintf(b, "      }\n")
	}
	fmt.Fprintf(b, "    }\n")
}

func writeTable(b *strings.Builder, kind string, t *Table, scale float64) {
	if t == nil {
		return
	}
	fmt.Fprintf(b, "        %s (tbl_%dx%d) {\n", kind, len(t.Index1), len(t.Index2))
	fmt.Fprintf(b, "          index_1 (\"%s\");\n", joinScaled(t.Index1, timeScale))
	fmt.Fprintf(b, "          index_2 (\"%s\");\n", joinScaled(t.Index2, capScale))
	fmt.Fprintf(b, "          values ( \\\n")
	for i, row := range t.Values {
		sep := ", \\"
		if i == len(t.Values)-1 {
			sep = " \\"
		}
		fmt.Fprintf(b, "            \"%s\"%s\n", joinScaled(row, scale), sep)
	}
	fmt.Fprintf(b, "          );\n")
	fmt.Fprintf(b, "        }\n")
}

func joinScaled(vals []float64, scale float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%.6g", v*scale)
	}
	return strings.Join(parts, ", ")
}
