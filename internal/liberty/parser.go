package liberty

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a liberty file written in the subset emitted by Write (which
// covers the common structure of industrial libraries: nested groups,
// simple attributes, and NLDM value tables). All quantities are converted
// back to SI units.
func Parse(r io.Reader) (*Library, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &parser{src: string(data)}
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	if g.name != "library" {
		return nil, fmt.Errorf("liberty: top-level group is %q, want library", g.name)
	}
	return buildLibrary(g)
}

// group is a parsed liberty group: name (args) { attrs; subgroups }.
type group struct {
	name   string
	args   []string
	attrs  map[string][]string // attribute name -> values (complex attrs keep all)
	groups []*group
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\\':
			p.pos++
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '*':
			end := strings.Index(p.src[p.pos+2:], "*/")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 4
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/':
			end := strings.IndexByte(p.src[p.pos:], '\n')
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 1
		default:
			return
		}
	}
}

func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.' || c == '-' || c == '+' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

// value reads one attribute value: quoted string or bare token.
func (p *parser) value() (string, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return "", io.ErrUnexpectedEOF
	}
	if p.src[p.pos] == '"' {
		end := strings.IndexByte(p.src[p.pos+1:], '"')
		if end < 0 {
			return "", fmt.Errorf("liberty: unterminated string at %d", p.pos)
		}
		v := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return v, nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ';' || c == ')' || c == ',' || c == '\n' || c == '{' {
			break
		}
		p.pos++
	}
	return strings.TrimSpace(p.src[start:p.pos]), nil
}

// parseGroup parses "name (args) { body }".
func (p *parser) parseGroup() (*group, error) {
	p.skipWS()
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("liberty: expected group name at offset %d", p.pos)
	}
	p.skipWS()
	g := &group{name: name, attrs: map[string][]string{}}
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, fmt.Errorf("liberty: expected ( after %s", name)
	}
	p.pos++
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil, io.ErrUnexpectedEOF
		}
		if p.src[p.pos] == ')' {
			p.pos++
			break
		}
		if p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		g.args = append(g.args, v)
	}
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != '{' {
		return nil, fmt.Errorf("liberty: expected { after %s(...)", name)
	}
	p.pos++
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil, io.ErrUnexpectedEOF
		}
		if p.src[p.pos] == '}' {
			p.pos++
			return g, nil
		}
		if err := p.parseStatement(g); err != nil {
			return nil, err
		}
	}
}

// parseStatement parses either an attribute "name : value;" or a complex
// attribute "name (v, v, ...);" or a subgroup.
func (p *parser) parseStatement(g *group) error {
	p.skipWS()
	mark := p.pos
	name := p.ident()
	if name == "" {
		return fmt.Errorf("liberty: expected statement at offset %d", p.pos)
	}
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == ':' {
		p.pos++
		v, err := p.value()
		if err != nil {
			return err
		}
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == ';' {
			p.pos++
		}
		g.attrs[name] = append(g.attrs[name], v)
		return nil
	}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		// Look ahead: group (has '{' after ')') or complex attribute.
		save := p.pos
		depth := 0
		i := p.pos
		for ; i < len(p.src); i++ {
			if p.src[i] == '(' {
				depth++
			} else if p.src[i] == ')' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		j := i + 1
		for j < len(p.src) && (p.src[j] == ' ' || p.src[j] == '\t' || p.src[j] == '\n' || p.src[j] == '\r' || p.src[j] == '\\') {
			j++
		}
		if j < len(p.src) && p.src[j] == '{' {
			p.pos = mark
			sub, err := p.parseGroup()
			if err != nil {
				return err
			}
			g.groups = append(g.groups, sub)
			return nil
		}
		// Complex attribute: collect all comma-separated values.
		p.pos = save + 1
		var vals []string
		for {
			p.skipWS()
			if p.pos >= len(p.src) {
				return io.ErrUnexpectedEOF
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			v, err := p.value()
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == ';' {
			p.pos++
		}
		g.attrs[name] = append(g.attrs[name], vals...)
		return nil
	}
	return fmt.Errorf("liberty: malformed statement %q at offset %d", name, mark)
}

func (g *group) attr(name string) string {
	if vs := g.attrs[name]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

func (g *group) attrFloat(name string, def float64) float64 {
	s := g.attr(name)
	if s == "" {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return def
	}
	return v
}

func parseFloatList(s string) ([]float64, error) {
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("liberty: bad number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func buildTable(g *group, valueScale float64) (*Table, error) {
	idx1, err := parseFloatList(g.attr("index_1"))
	if err != nil {
		return nil, err
	}
	idx2, err := parseFloatList(g.attr("index_2"))
	if err != nil {
		return nil, err
	}
	for i := range idx1 {
		idx1[i] /= timeScale
	}
	for i := range idx2 {
		idx2[i] /= capScale
	}
	rows := g.attrs["values"]
	if len(rows) != len(idx1) {
		return nil, fmt.Errorf("liberty: table has %d rows, want %d", len(rows), len(idx1))
	}
	t := NewTable(idx1, idx2)
	for i, row := range rows {
		vals, err := parseFloatList(row)
		if err != nil {
			return nil, err
		}
		if len(vals) != len(idx2) {
			return nil, fmt.Errorf("liberty: row %d has %d values, want %d", i, len(vals), len(idx2))
		}
		for j, v := range vals {
			t.Values[i][j] = v / valueScale
		}
	}
	return t, nil
}

func buildLibrary(g *group) (*Library, error) {
	lib := &Library{
		Name:  first(g.args),
		TempK: g.attrFloat("nom_temperature", 300),
		Vdd:   g.attrFloat("nom_voltage", 0.7),
	}
	for _, cg := range g.groups {
		if cg.name != "cell" {
			continue
		}
		c := &Cell{
			Name:         first(cg.args),
			Area:         cg.attrFloat("area", 0),
			LeakagePower: cg.attrFloat("cell_leakage_power", 0) / leakScale,
		}
		for _, sub := range cg.groups {
			switch sub.name {
			case "ff":
				c.Sequential = true
				c.ClockPin = strings.Trim(sub.attr("clocked_on"), "\"")
			case "pin":
				p, err := buildPin(sub)
				if err != nil {
					return nil, fmt.Errorf("cell %s: %w", c.Name, err)
				}
				c.Pins = append(c.Pins, p)
			}
		}
		lib.Cells = append(lib.Cells, c)
	}
	return lib, nil
}

func buildPin(g *group) (*Pin, error) {
	p := &Pin{
		Name:      first(g.args),
		Direction: g.attr("direction"),
		Cap:       g.attrFloat("capacitance", 0) / capScale,
		Function:  g.attr("function"),
	}
	for _, sub := range g.groups {
		switch sub.name {
		case "timing":
			tm := &Timing{
				RelatedPin: sub.attr("related_pin"),
				Sense:      sub.attr("timing_sense"),
				Type:       sub.attr("timing_type"),
			}
			var err error
			for _, tg := range sub.groups {
				var dst **Table
				switch tg.name {
				case "cell_rise":
					dst = &tm.CellRise
				case "cell_fall":
					dst = &tm.CellFall
				case "rise_transition":
					dst = &tm.RiseTrans
				case "fall_transition":
					dst = &tm.FallTrans
				default:
					continue
				}
				*dst, err = buildTable(tg, timeScale)
				if err != nil {
					return nil, err
				}
			}
			p.Timings = append(p.Timings, tm)
		case "internal_power":
			pw := &InternalPower{RelatedPin: sub.attr("related_pin")}
			var err error
			for _, tg := range sub.groups {
				var dst **Table
				switch tg.name {
				case "rise_power":
					dst = &pw.RisePower
				case "fall_power":
					dst = &pw.FallPower
				default:
					continue
				}
				*dst, err = buildTable(tg, energyScale)
				if err != nil {
					return nil, err
				}
			}
			p.Powers = append(p.Powers, pw)
		}
	}
	return p, nil
}

func first(ss []string) string {
	if len(ss) == 0 {
		return ""
	}
	return ss[0]
}
