// Package qor is the flow's QoR flight recorder: it runs the full
// synthesis → mapping → STA → power pipeline over an EPFL benchmark
// profile with repetitions, records quality-of-results and runtime/engine
// metrics into a versioned JSON baseline (the BENCH_*.json trajectory
// files), and diffs runs against a stored baseline with noise-aware
// thresholds — QoR metrics compared exactly, runtime metrics against
// median ± IQR with a relative tolerance. cmd/cryobench is the CLI.
package qor

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// SchemaVersion is the baseline file format version. Any change to the
// JSON shape (renamed/added/removed fields, changed units) must bump this;
// ReadBaseline refuses mismatched versions loudly rather than diffing
// garbage, and the golden-file test pins the serialized form.
//
// v2 added per-corner critical-path provenance (Corner.Paths) and the
// power-by-cell-class breakdown (Corner.PowerByClass) — the records
// internal/explain attributes QoR deltas with.
const SchemaVersion = 2

// VersionError is the typed schema-version mismatch ReadBaseline returns;
// callers gate on it with errors.As.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("qor: baseline schema version %d does not match this binary's version %d; re-record the baseline",
		e.Got, e.Want)
}

// Stat summarizes repeated noisy samples of one quantity. Median and IQR
// (interquartile range) drive the noise-aware diff; min/max/n are kept for
// the reports.
type Stat struct {
	N      int     `json:"n"`
	Median float64 `json:"median"`
	IQR    float64 `json:"iqr"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// NewStat computes the summary of samples (order-insensitive). An empty
// slice yields the zero Stat.
func NewStat(samples []float64) Stat {
	if len(samples) == 0 {
		return Stat{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		// Linear interpolation between closest ranks.
		r := p * float64(len(s)-1)
		lo := int(math.Floor(r))
		hi := int(math.Ceil(r))
		if lo == hi {
			return s[lo]
		}
		frac := r - float64(lo)
		return s[lo] + (s[hi]-s[lo])*frac
	}
	return Stat{
		N:      len(s),
		Median: q(0.5),
		IQR:    q(0.75) - q(0.25),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
}

// Corner is the QoR of one (circuit, scenario) at one temperature corner.
// All fields are deterministic given the seed, so the diff compares them
// exactly.
type Corner struct {
	TempK       float64 `json:"temp_k"`
	Gates       int     `json:"gates"`
	Area        float64 `json:"area"`
	CriticalSec float64 `json:"critical_delay_seconds"`
	// WNSSec/TNSSec are worst / total negative slack against the
	// baseline's reference clock (negative = violated).
	WNSSec   float64 `json:"wns_seconds"`
	TNSSec   float64 `json:"tns_seconds"`
	LeakageW float64 `json:"leakage_w"`
	DynamicW float64 `json:"dynamic_w"`
	TotalW   float64 `json:"total_w"`
	// Paths records the top-K critical endpoint paths with per-arc
	// provenance — the substrate internal/explain attributes WNS/TNS
	// deltas over.
	Paths []PathRecord `json:"paths,omitempty"`
	// PowerByClass is the compact power breakdown by library cell
	// (leakage/internal/switching per cell class).
	PowerByClass []ClassPower `json:"power_by_class,omitempty"`
}

// ArcRecord is one hop of a recorded critical path: the liberty arc that
// propagated the worst arrival onto ToNet (sta.PathArc, persisted).
type ArcRecord struct {
	FromNet string `json:"from_net,omitempty"`
	ToNet   string `json:"to_net"`
	Gate    string `json:"gate,omitempty"` // empty at the launch point
	Cell    string `json:"cell,omitempty"`
	Pin     string `json:"pin,omitempty"` // input pin FromNet enters through
	// DelaySec is the incremental arc delay; ArrivalSec the cumulative
	// arrival at ToNet; SlewSec/LoadF the operating point there.
	DelaySec   float64 `json:"delay_seconds"`
	ArrivalSec float64 `json:"arrival_seconds"`
	SlewSec    float64 `json:"slew_seconds"`
	LoadF      float64 `json:"load_f"`
}

// PathRecord is one endpoint's worst timing path, launch point first.
type PathRecord struct {
	Endpoint   string      `json:"endpoint"`
	ArrivalSec float64     `json:"arrival_seconds"`
	SlackSec   float64     `json:"slack_seconds"`
	Arcs       []ArcRecord `json:"arcs,omitempty"`
}

// ClassPower is the power attributed to all instances of one library cell.
type ClassPower struct {
	Cell       string  `json:"cell"`
	Count      int     `json:"count"`
	LeakageW   float64 `json:"leakage_w"`
	InternalW  float64 `json:"internal_w"`
	SwitchingW float64 `json:"switching_w"`
}

// Circuit records one (circuit, scenario) cell of the benchmark matrix:
// exact QoR per corner plus runtime stats across repetitions.
type Circuit struct {
	Name     string `json:"circuit"`
	Scenario string `json:"scenario"`
	// AIG trajectory through the technology-independent stages.
	AIGNodesIn  int `json:"aig_nodes_in"`
	AIGNodesOpt int `json:"aig_nodes_opt"`
	AIGDepthOpt int `json:"aig_depth_opt"`
	// Deterministic is false when repetitions disagreed on QoR — a red
	// flag on its own, surfaced by the diff.
	Deterministic bool     `json:"deterministic"`
	Corners       []Corner `json:"corners"`
	// StageSeconds holds per-repetition wall time by span name (from the
	// obs tracer), plus the synthetic "rep.wall" whole-repetition sample.
	StageSeconds map[string]Stat `json:"stage_seconds,omitempty"`
}

// Baseline is one recorded benchmark run — the unit stored in
// BENCH_<timestamp>.json files and committed reference baselines.
type Baseline struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	Profile       string `json:"profile"`
	Repeat        int    `json:"repeat"`
	Seed          int64  `json:"seed"`
	// ClockSec is the reference clock used for WNS/TNS normalization.
	ClockSec  float64 `json:"reference_clock_seconds"`
	Testlib   bool    `json:"testlib"`
	CreatedAt string  `json:"created_at,omitempty"`
	GoOSArch  string  `json:"goosarch,omitempty"`
	// Circuits is sorted by (circuit, scenario).
	Circuits []Circuit `json:"circuits"`
	// Engine holds per-repetition deltas of the obs engine counters
	// (Newton iterations, SAT conflicts, cache hits, ...), summed over the
	// whole profile per repetition.
	Engine map[string]Stat `json:"engine,omitempty"`
}

// WriteJSON serializes the baseline (indented, trailing newline).
func (b *Baseline) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile writes the baseline to path.
func (b *Baseline) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBaseline parses a baseline and enforces the schema version: a
// mismatch is a hard error naming both versions, never a silent best-effort
// decode.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{}
	if err := json.NewDecoder(r).Decode(b); err != nil {
		return nil, fmt.Errorf("qor: parsing baseline: %w", err)
	}
	if b.SchemaVersion != SchemaVersion {
		return nil, &VersionError{Got: b.SchemaVersion, Want: SchemaVersion}
	}
	return b, nil
}

// ReadBaselineFile reads and validates the baseline at path.
func ReadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := ReadBaseline(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// key identifies a circuit record inside a baseline.
func (c *Circuit) key() string { return c.Name + "/" + c.Scenario }

// FlatMetrics flattens the baseline's QoR into dotted scalar metrics
// ("qor.<circuit>/<scenario>@<temp>K.area", ".wns_seconds", ...), the shape
// the obs metrics history stores so cryoobs trend can glob and chart them
// next to engine counters and stage wall times.
func (b *Baseline) FlatMetrics() map[string]float64 {
	out := map[string]float64{}
	for i := range b.Circuits {
		c := &b.Circuits[i]
		out["qor."+c.key()+".aig_nodes_opt"] = float64(c.AIGNodesOpt)
		out["qor."+c.key()+".aig_depth_opt"] = float64(c.AIGDepthOpt)
		for j := range c.Corners {
			k := &c.Corners[j]
			p := fmt.Sprintf("qor.%s@%gK.", c.key(), k.TempK)
			out[p+"gates"] = float64(k.Gates)
			out[p+"area"] = k.Area
			out[p+"critical_delay_seconds"] = k.CriticalSec
			out[p+"wns_seconds"] = k.WNSSec
			out[p+"tns_seconds"] = k.TNSSec
			out[p+"leakage_w"] = k.LeakageW
			out[p+"dynamic_w"] = k.DynamicW
			out[p+"total_w"] = k.TotalW
		}
	}
	return out
}
