package qor

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestNewStat(t *testing.T) {
	s := NewStat([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("stat basics wrong: %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median = %g, want 2.5", s.Median)
	}
	// q25 = 1.75, q75 = 3.25 with linear interpolation.
	if math.Abs(s.IQR-1.5) > 1e-12 {
		t.Errorf("IQR = %g, want 1.5", s.IQR)
	}
	if z := NewStat(nil); z.N != 0 {
		t.Errorf("empty stat: %+v", z)
	}
}

// twoBaselines builds a matched (base, cur) pair for diff tests.
func twoBaselines() (*Baseline, *Baseline) {
	mk := func() *Baseline {
		return &Baseline{
			SchemaVersion: SchemaVersion,
			Tool:          "cryobench",
			Profile:       "smoke",
			Repeat:        2,
			Seed:          1,
			ClockSec:      1e-9,
			Testlib:       true,
			Circuits: []Circuit{{
				Name: "ctrl", Scenario: "baseline",
				AIGNodesIn: 120, AIGNodesOpt: 90, AIGDepthOpt: 9,
				Deterministic: true,
				Corners: []Corner{
					{TempK: 300, Gates: 40, Area: 80, CriticalSec: 3e-10,
						WNSSec: 7e-10, TNSSec: 0, LeakageW: 1e-8, DynamicW: 2e-6, TotalW: 2.01e-6},
					{TempK: 10, Gates: 40, Area: 80, CriticalSec: 2.5e-10,
						WNSSec: 7.5e-10, TNSSec: 0, LeakageW: 1e-12, DynamicW: 1.8e-6, TotalW: 1.8e-6},
				},
				StageSeconds: map[string]Stat{
					"synth.synthesize": {N: 2, Median: 0.5, IQR: 0.02, Min: 0.49, Max: 0.52},
					"rep.wall":         {N: 2, Median: 0.8, IQR: 0.02, Min: 0.79, Max: 0.81},
				},
			}},
			Engine: map[string]Stat{
				"sat.conflicts": {N: 2, Median: 1000, IQR: 0, Min: 1000, Max: 1000},
			},
		}
	}
	return mk(), mk()
}

func TestDiffClean(t *testing.T) {
	base, cur := twoBaselines()
	rep := Diff(base, cur, DefaultThresholds())
	if rep.QoRRegressions != 0 || rep.RuntimeRegressions != 0 {
		t.Fatalf("clean diff reported regressions: %+v", rep)
	}
	if rep.Failed(true) {
		t.Errorf("clean diff failed")
	}
}

func TestDiffInjectedWNSRegression(t *testing.T) {
	base, cur := twoBaselines()
	// Inject a WNS degradation at the 10 K corner: slack shrinks by 50 ps.
	cur.Circuits[0].Corners[1].WNSSec -= 50e-12
	rep := Diff(base, cur, DefaultThresholds())
	if rep.QoRRegressions != 1 {
		t.Fatalf("want exactly 1 QoR regression, got %d", rep.QoRRegressions)
	}
	if !rep.Failed(false) {
		t.Errorf("WNS regression must fail the gate")
	}
	var buf bytes.Buffer
	if err := rep.WriteTable(&buf, false); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "wns_seconds") || !strings.Contains(out, "REGRESSED") {
		t.Errorf("table does not name the regression:\n%s", out)
	}
	buf.Reset()
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	if !strings.Contains(buf.String(), "**REGRESSED**") {
		t.Errorf("markdown does not flag the regression:\n%s", buf.String())
	}
}

func TestDiffImprovementIsNotFailure(t *testing.T) {
	base, cur := twoBaselines()
	cur.Circuits[0].Corners[0].TotalW *= 0.9 // power got better
	rep := Diff(base, cur, DefaultThresholds())
	if rep.QoRRegressions != 0 {
		t.Fatalf("improvement counted as regression")
	}
	found := false
	for _, e := range rep.Entries {
		if e.Metric == "total_w" && e.Verdict == Improved {
			found = true
		}
	}
	if !found {
		t.Errorf("improvement not classified as Improved")
	}
}

func TestDiffRuntimeNoiseAware(t *testing.T) {
	th := DefaultThresholds()

	// Within the relative band: ignored.
	base, cur := twoBaselines()
	cur.Circuits[0].StageSeconds["synth.synthesize"] = Stat{N: 2, Median: 0.55, IQR: 0.02, Min: 0.54, Max: 0.56}
	if rep := Diff(base, cur, th); rep.RuntimeRegressions != 0 {
		t.Errorf("10%% runtime shift flagged despite 30%% tolerance")
	}

	// Big shift but huge IQR (noisy machine): still ignored.
	base, cur = twoBaselines()
	cur.Circuits[0].StageSeconds["synth.synthesize"] = Stat{N: 2, Median: 0.9, IQR: 0.5, Min: 0.5, Max: 1.4}
	if rep := Diff(base, cur, th); rep.RuntimeRegressions != 0 {
		t.Errorf("noisy runtime shift flagged despite IQR band")
	}

	// Big, tight shift: flagged as runtime regression — soft by default,
	// hard only under strictRuntime.
	base, cur = twoBaselines()
	cur.Circuits[0].StageSeconds["synth.synthesize"] = Stat{N: 2, Median: 0.9, IQR: 0.02, Min: 0.89, Max: 0.91}
	rep := Diff(base, cur, th)
	if rep.RuntimeRegressions != 1 {
		t.Fatalf("tight 80%% runtime shift not flagged: %+v", rep.Entries)
	}
	if rep.Failed(false) {
		t.Errorf("runtime regression must not fail the default gate")
	}
	if !rep.Failed(true) {
		t.Errorf("runtime regression must fail under -strict-runtime")
	}
}

func TestDiffEngineCounters(t *testing.T) {
	base, cur := twoBaselines()
	cur.Engine["sat.conflicts"] = Stat{N: 2, Median: 2000, IQR: 0, Min: 2000, Max: 2000}
	rep := Diff(base, cur, DefaultThresholds())
	if rep.RuntimeRegressions != 1 {
		t.Errorf("doubled SAT conflicts not flagged: %+v", rep.Entries)
	}
}

func TestDiffDroppedCircuitIsHardFailure(t *testing.T) {
	base, cur := twoBaselines()
	cur.Circuits = nil
	rep := Diff(base, cur, DefaultThresholds())
	if rep.QoRRegressions == 0 || !rep.Failed(false) {
		t.Errorf("dropped circuit did not fail the gate")
	}
}

func TestDiffDroppedCornerIsHardFailure(t *testing.T) {
	base, cur := twoBaselines()
	// The 10 K corner vanishes from the current run: lost coverage.
	cur.Circuits[0].Corners = cur.Circuits[0].Corners[:1]
	rep := Diff(base, cur, DefaultThresholds())
	if rep.QoRRegressions == 0 || !rep.Failed(false) {
		t.Fatalf("dropped corner did not fail the gate: %+v", rep)
	}
	found := false
	for _, e := range rep.Entries {
		if e.Metric == "corner" && e.Verdict == Missing && strings.Contains(e.Key, "@10K") {
			found = true
		}
	}
	if !found {
		t.Errorf("dropped corner not reported as Missing: %+v", rep.Entries)
	}
}

func TestDiffNewCornerIsNotFailure(t *testing.T) {
	base, cur := twoBaselines()
	base.Circuits[0].Corners = base.Circuits[0].Corners[:1]
	rep := Diff(base, cur, DefaultThresholds())
	if rep.QoRRegressions != 0 {
		t.Errorf("new corner counted as regression: %+v", rep.Entries)
	}
}

func TestDiffZeroRepStatsDoNotPanic(t *testing.T) {
	base, cur := twoBaselines()
	// A run that recorded no samples for a stage or counter must diff
	// cleanly, not panic or divide by zero.
	cur.Circuits[0].StageSeconds["synth.synthesize"] = Stat{}
	cur.Engine["sat.conflicts"] = Stat{}
	base.Engine["empty.counter"] = Stat{}
	cur.Engine["empty.counter"] = Stat{}
	rep := Diff(base, cur, DefaultThresholds())
	for _, e := range rep.Entries {
		if math.IsNaN(e.Base) || math.IsNaN(e.Cur) || math.IsNaN(e.RelDelta()) {
			t.Errorf("NaN in diff entry: %+v", e)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteTable(&buf, true); err != nil {
		t.Fatalf("WriteTable with zero-rep stats: %v", err)
	}
}

func TestVersionErrorIsTyped(t *testing.T) {
	b, _ := twoBaselines()
	b.SchemaVersion = SchemaVersion + 7
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBaseline(&buf)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VersionError, got %T: %v", err, err)
	}
	if ve.Got != SchemaVersion+7 || ve.Want != SchemaVersion {
		t.Errorf("VersionError fields wrong: %+v", ve)
	}
}

func TestDiffNondeterminismFails(t *testing.T) {
	base, cur := twoBaselines()
	cur.Circuits[0].Deterministic = false
	rep := Diff(base, cur, DefaultThresholds())
	if !rep.Failed(false) {
		t.Errorf("nondeterministic run did not fail the gate")
	}
}

func TestProfiles(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := FindProfile(name)
		if err != nil {
			t.Fatalf("FindProfile(%s): %v", name, err)
		}
		if len(p.Circuits) == 0 || len(p.Scenarios) == 0 || len(p.Corners) == 0 {
			t.Errorf("profile %s is degenerate: %+v", name, p)
		}
	}
	if _, err := FindProfile("nope"); err == nil {
		t.Errorf("unknown profile did not error")
	}
}

// TestRunSmokeSingle executes the real harness end to end on the smallest
// circuit with the synthetic library: schema shape, determinism flag, stage
// stats, engine counters, and a self-diff that must be clean.
func TestRunSmokeSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow harness run")
	}
	prof := Profile{
		Name:      "unit",
		Circuits:  []string{"ctrl"},
		Scenarios: []synth.Scenario{synth.BaselinePowerAware},
		Corners:   []float64{300, 10},
		Repeat:    2,
	}
	b, err := Run(context.Background(), RunOptions{Profile: prof, UseTestlib: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b.SchemaVersion != SchemaVersion || b.Tool != "cryobench" {
		t.Errorf("header wrong: %+v", b)
	}
	if len(b.Circuits) != 1 {
		t.Fatalf("want 1 circuit record, got %d", len(b.Circuits))
	}
	c := b.Circuits[0]
	if !c.Deterministic {
		t.Errorf("seeded flow flagged nondeterministic")
	}
	if len(c.Corners) != 2 || c.Corners[0].Gates == 0 || c.Corners[1].TotalW <= 0 {
		t.Errorf("corner QoR not populated: %+v", c.Corners)
	}
	if c.Corners[0].LeakageW <= c.Corners[1].LeakageW {
		t.Errorf("cryogenic leakage (%g) not below 300K leakage (%g)",
			c.Corners[1].LeakageW, c.Corners[0].LeakageW)
	}
	if _, ok := c.StageSeconds["synth.synthesize"]; !ok {
		t.Errorf("stage seconds missing synth.synthesize: %v", c.StageSeconds)
	}
	if st, ok := c.StageSeconds["rep.wall"]; !ok || st.N != 2 {
		t.Errorf("rep.wall stat missing or wrong n: %+v", st)
	}
	// v2 provenance: each corner must carry critical paths (with named
	// cells and arcs) and a power breakdown by cell class.
	for _, corner := range c.Corners {
		if len(corner.Paths) == 0 {
			t.Fatalf("@%gK: no path provenance recorded", corner.TempK)
		}
		p := corner.Paths[0]
		if p.Endpoint == "" || len(p.Arcs) == 0 {
			t.Errorf("@%gK: degenerate path record: %+v", corner.TempK, p)
		}
		for i, a := range p.Arcs {
			if a.ToNet == "" {
				t.Errorf("@%gK: arc without net: %+v", corner.TempK, a)
			}
			// The first arc is the launch point (a primary input): no
			// gate, zero delay. Every later arc traverses a mapped cell.
			if i > 0 && (a.Cell == "" || a.DelaySec <= 0) {
				t.Errorf("@%gK: degenerate arc record: %+v", corner.TempK, a)
			}
		}
		if len(corner.PowerByClass) == 0 {
			t.Errorf("@%gK: no power-by-class breakdown", corner.TempK)
		}
		var sum float64
		for _, cp := range corner.PowerByClass {
			if cp.Cell == "" || (cp.Count <= 0 && cp.Cell != InputNetsClass) {
				t.Errorf("@%gK: degenerate class power: %+v", corner.TempK, cp)
			}
			sum += cp.LeakageW + cp.InternalW + cp.SwitchingW
		}
		if rel := math.Abs(sum-corner.TotalW) / corner.TotalW; rel > 1e-9 {
			t.Errorf("@%gK: power classes sum to %g, corner total %g (rel err %g)",
				corner.TempK, sum, corner.TotalW, rel)
		}
	}

	// JSON round trip.
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	// Self-diff must be perfectly clean on QoR.
	rep := Diff(back, b, DefaultThresholds())
	if rep.QoRRegressions != 0 || rep.Failed(false) {
		var tbl bytes.Buffer
		rep.WriteTable(&tbl, true)
		t.Errorf("self-diff not clean:\n%s", tbl.String())
	}
}
