package qor

import (
	"context"
	"fmt"

	"repro/internal/aig"
	"repro/internal/gsim"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// SignoffVectors is the random-vector count of the functional signoff each
// mapped corner netlist gets before its QoR numbers are recorded.
const SignoffVectors = 256

// signoffFunctional cross-checks the mapped netlist against the source AIG
// with an engine independent of the synthesis pipeline's own SAT-based
// verification: the gate-level simulator runs seeded random vectors through
// the netlist and the AIG's word-parallel evaluator must agree on every
// output bit. Any divergence is a hard flow error — QoR numbers measured on
// a functionally wrong netlist are worse than no numbers.
func signoffFunctional(ctx context.Context, g *aig.AIG, nl *netlist.Netlist, seed int64) error {
	ctx, span := obs.Start(ctx, "qor.signoff")
	span.SetAttr("design", nl.Name)
	defer span.End()

	m, err := gsim.Compile(nl)
	if err != nil {
		return fmt.Errorf("signoff: %w", err)
	}
	vectors := m.RandomVectors(SignoffVectors, seed)
	res, err := gsim.NewLevelized(m).Run(ctx, vectors)
	if err != nil {
		return fmt.Errorf("signoff: %w", err)
	}

	// Pair the AIG interface with the netlist's by name.
	piPos := make([]int, g.NumPIs())
	for i := 0; i < g.NumPIs(); i++ {
		pos := -1
		for j, name := range m.InputNames {
			if name == g.PIName(i) {
				pos = j
				break
			}
		}
		if pos < 0 {
			return fmt.Errorf("signoff: AIG input %q missing from netlist", g.PIName(i))
		}
		piPos[i] = pos
	}
	poIdx := make([]int, 0, g.NumPOs())
	poOut := make([]int, 0, g.NumPOs())
	for i := 0; i < g.NumPOs(); i++ {
		pos := -1
		for o, name := range m.OutputNames {
			if name == g.POName(i) {
				pos = o
				break
			}
		}
		if pos < 0 {
			return fmt.Errorf("signoff: AIG output %q missing from netlist", g.POName(i))
		}
		poIdx = append(poIdx, i)
		poOut = append(poOut, pos)
	}

	words := make([]uint64, g.NumPIs())
	for base := 0; base < len(vectors); base += 64 {
		chunk := len(vectors) - base
		if chunk > 64 {
			chunk = 64
		}
		for i := range words {
			var w uint64
			for b := 0; b < chunk; b++ {
				if vectors[base+b][piPos[i]] {
					w |= 1 << uint(b)
				}
			}
			words[i] = w
		}
		vals := g.SimWords(words)
		for k, i := range poIdx {
			ref := aig.EvalLit(vals, g.PO(i))
			for b := 0; b < chunk; b++ {
				if (ref&(1<<uint(b)) != 0) != res.OutputBits[base+b][poOut[k]] {
					obs.C("qor.signoff.failures").Inc()
					obs.J().Event(obs.KindSignoff, "qor.signoff", "functional mismatch",
						map[string]string{
							"design": nl.Name,
							"output": g.POName(i),
							"vector": fmt.Sprint(base + b),
						})
					return fmt.Errorf("signoff: output %s diverges from AIG on vector %d (%d vectors, seed %d)",
						g.POName(i), base+b, len(vectors), seed)
				}
			}
		}
	}
	obs.C("qor.signoff.passes").Inc()
	obs.J().Event(obs.KindSignoff, "qor.signoff", "gate-level simulation matches AIG",
		map[string]string{
			"design":  nl.Name,
			"vectors": fmt.Sprint(len(vectors)),
			"seed":    fmt.Sprint(seed),
		})
	return nil
}
