package qor

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// sortedEntries orders rows worst-first (regressions on top), then by key
// and metric for stable output.
func (r *Report) sortedEntries() []Entry {
	es := append([]Entry(nil), r.Entries...)
	rank := func(v Verdict) int {
		switch v {
		case Regressed:
			return 0
		case Missing:
			return 1
		case New:
			return 2
		case Improved:
			return 3
		default:
			return 4
		}
	}
	sort.SliceStable(es, func(i, j int) bool {
		if a, b := rank(es[i].Verdict), rank(es[j].Verdict); a != b {
			return a < b
		}
		if es[i].Key != es[j].Key {
			return es[i].Key < es[j].Key
		}
		return es[i].Metric < es[j].Metric
	})
	return es
}

// WriteTable renders the human console report. With verbose false, rows
// whose verdict is OK are summarized rather than listed.
func (r *Report) WriteTable(w io.Writer, verbose bool) error {
	if _, err := fmt.Fprintf(w, "QoR diff: %s  vs  %s\n", r.CurLabel, r.BaseLabel); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-34s %-28s %-8s %14s %14s %9s  %s\n",
		"target", "metric", "kind", "base", "current", "delta%", "verdict")
	ok := 0
	for _, e := range r.sortedEntries() {
		if e.Verdict == OK && !verbose {
			ok++
			continue
		}
		note := e.Note
		if note != "" {
			note = "  (" + note + ")"
		}
		fmt.Fprintf(w, "%-34s %-28s %-8s %14.6g %14.6g %+8.2f%%  %s%s\n",
			e.Key, e.Metric, e.Kind, e.Base, e.Cur, e.RelDelta()*100, e.Verdict, note)
	}
	if ok > 0 {
		fmt.Fprintf(w, "... and %d metrics unchanged (ok)\n", ok)
	}
	for _, k := range r.NonDeterministic {
		fmt.Fprintf(w, "WARNING: %s produced different QoR across repetitions (nondeterministic flow)\n", k)
	}
	_, err := fmt.Fprintf(w, "summary: %d QoR regressions, %d runtime/engine regressions, %d rows\n",
		r.QoRRegressions, r.RuntimeRegressions, len(r.Entries))
	return err
}

// WriteMarkdown renders the report as a markdown document (the CI
// artifact).
func (r *Report) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# QoR regression report\n\n")
	fmt.Fprintf(w, "- current: `%s`\n- baseline: `%s`\n", r.CurLabel, r.BaseLabel)
	fmt.Fprintf(w, "- **%d QoR regressions**, %d runtime/engine regressions, %d metrics compared\n\n",
		r.QoRRegressions, r.RuntimeRegressions, len(r.Entries))
	if len(r.NonDeterministic) > 0 {
		fmt.Fprintf(w, "> ⚠️ nondeterministic QoR across repetitions: %s\n\n",
			strings.Join(r.NonDeterministic, ", "))
	}
	interesting := 0
	for _, e := range r.Entries {
		if e.Verdict != OK {
			interesting++
		}
	}
	if interesting == 0 {
		_, err := fmt.Fprintf(w, "No changes beyond noise thresholds. ✅\n")
		return err
	}
	fmt.Fprintf(w, "| target | metric | kind | base | current | delta | verdict |\n")
	fmt.Fprintf(w, "|---|---|---|---:|---:|---:|---|\n")
	for _, e := range r.sortedEntries() {
		if e.Verdict == OK {
			continue
		}
		verdict := e.Verdict.String()
		if e.Verdict == Regressed {
			verdict = "**" + verdict + "**"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %.6g | %.6g | %+.2f%% | %s |\n",
			e.Key, e.Metric, e.Kind, e.Base, e.Cur, e.RelDelta()*100, verdict)
	}
	_, err := fmt.Fprintf(w, "\n%d unchanged metrics omitted.\n", len(r.Entries)-interesting)
	return err
}

// WriteBaselineSummary prints the one-run QoR table (no diff): per
// circuit/scenario/corner gates, area, WNS, power, and the slowest stages.
func WriteBaselineSummary(w io.Writer, b *Baseline) error {
	fmt.Fprintf(w, "cryobench %s: %d circuits x %d reps (seed %d, clock %.3g s, testlib=%v)\n",
		b.Profile, len(b.Circuits), b.Repeat, b.Seed, b.ClockSec, b.Testlib)
	fmt.Fprintf(w, "%-12s %-10s %7s | %6s %9s %10s %10s %12s\n",
		"circuit", "scenario", "corner", "gates", "area", "wns(ps)", "tns(ps)", "total(uW)")
	for _, c := range b.Circuits {
		for _, co := range c.Corners {
			fmt.Fprintf(w, "%-12s %-10s %6gK | %6d %9.1f %10.2f %10.2f %12.4f\n",
				c.Name, c.Scenario, co.TempK, co.Gates, co.Area,
				co.WNSSec*1e12, co.TNSSec*1e12, co.TotalW*1e6)
		}
		if !c.Deterministic {
			fmt.Fprintf(w, "%-12s %-10s WARNING: nondeterministic across repetitions\n", c.Name, c.Scenario)
		}
	}
	type slowStage struct {
		name string
		sec  float64
	}
	var stages []slowStage
	agg := map[string]float64{}
	for _, c := range b.Circuits {
		for name, st := range c.StageSeconds {
			agg[name] += st.Median
		}
	}
	for name, sec := range agg {
		if name == "rep.wall" {
			continue
		}
		stages = append(stages, slowStage{name, sec})
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i].sec > stages[j].sec })
	if len(stages) > 5 {
		stages = stages[:5]
	}
	if len(stages) > 0 {
		fmt.Fprintf(w, "hottest stages (median seconds summed over profile):")
		for _, s := range stages {
			fmt.Fprintf(w, "  %s=%.3g", s.name, s.sec)
		}
		fmt.Fprintln(w)
	}
	return nil
}
