package qor

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the qor golden baseline file")

// goldenBaseline is a fully-populated fixed record: every schema field is
// exercised so any shape change (rename, addition, removal, unit change)
// alters the serialized bytes and trips the comparison below.
func goldenBaseline() *Baseline {
	return &Baseline{
		SchemaVersion: SchemaVersion,
		Tool:          "cryobench",
		Profile:       "smoke",
		Repeat:        2,
		Seed:          1,
		ClockSec:      1e-9,
		Testlib:       true,
		CreatedAt:     "2026-08-06T00:00:00Z",
		GoOSArch:      "linux/amd64",
		Circuits: []Circuit{{
			Name:          "ctrl",
			Scenario:      "baseline",
			AIGNodesIn:    123,
			AIGNodesOpt:   96,
			AIGDepthOpt:   9,
			Deterministic: true,
			Corners: []Corner{{
				TempK:       300,
				Gates:       41,
				Area:        82.5,
				CriticalSec: 3.25e-10,
				WNSSec:      6.75e-10,
				TNSSec:      0,
				LeakageW:    1.5e-8,
				DynamicW:    2.5e-6,
				TotalW:      2.515e-6,
				Paths: []PathRecord{{
					Endpoint:   "out0",
					ArrivalSec: 3.25e-10,
					SlackSec:   6.75e-10,
					Arcs: []ArcRecord{{
						FromNet:    "in0",
						ToNet:      "n1",
						Gate:       "g1",
						Cell:       "INVx1",
						Pin:        "A",
						DelaySec:   1.25e-10,
						ArrivalSec: 1.25e-10,
						SlewSec:    2.0e-11,
						LoadF:      3.5e-15,
					}, {
						FromNet:    "n1",
						ToNet:      "out0",
						Gate:       "g2",
						Cell:       "NAND2x1",
						Pin:        "B",
						DelaySec:   2.0e-10,
						ArrivalSec: 3.25e-10,
						SlewSec:    2.5e-11,
						LoadF:      1.0e-15,
					}},
				}},
				PowerByClass: []ClassPower{{
					Cell:       "INVx1",
					Count:      20,
					LeakageW:   7.5e-9,
					InternalW:  1.1e-6,
					SwitchingW: 2.0e-7,
				}, {
					Cell:       "NAND2x1",
					Count:      21,
					LeakageW:   7.5e-9,
					InternalW:  1.0e-6,
					SwitchingW: 1.9e-7,
				}},
			}, {
				TempK:       10,
				Gates:       41,
				Area:        82.5,
				CriticalSec: 2.75e-10,
				WNSSec:      7.25e-10,
				TNSSec:      -1.25e-12,
				LeakageW:    1.5e-12,
				DynamicW:    2.25e-6,
				TotalW:      2.25e-6,
			}},
			StageSeconds: map[string]Stat{
				"synth.synthesize": {N: 2, Median: 0.5, IQR: 0.02, Min: 0.49, Max: 0.51},
				"sta.analyze":      {N: 2, Median: 0.01, IQR: 0.001, Min: 0.0095, Max: 0.0105},
				"rep.wall":         {N: 2, Median: 0.75, IQR: 0.03, Min: 0.735, Max: 0.765},
			},
		}},
		Engine: map[string]Stat{
			"sat.conflicts":           {N: 2, Median: 1024, IQR: 0, Min: 1024, Max: 1024},
			"spice.newton.iterations": {N: 2, Median: 0, IQR: 0, Min: 0, Max: 0},
			"mapper.gates_emitted":    {N: 2, Median: 82, IQR: 0, Min: 82, Max: 82},
			"charlib.cache.hits":      {N: 2, Median: 0, IQR: 0, Min: 0, Max: 0},
		},
	}
}

// TestGoldenBaselineSchema pins the serialized baseline format byte for
// byte. If this test fails you changed the schema: bump SchemaVersion,
// re-record committed baselines, and regenerate the golden file with
//
//	go test ./internal/qor -run Golden -update-golden
func TestGoldenBaselineSchema(t *testing.T) {
	path := filepath.Join("testdata", "golden_baseline.json")
	var buf bytes.Buffer
	if err := goldenBaseline().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("baseline JSON schema drifted from golden file.\n"+
			"If intentional: bump qor.SchemaVersion, regenerate committed baselines,\n"+
			"and run `go test ./internal/qor -run Golden -update-golden`.\n--- got ---\n%s\n--- want ---\n%s",
			buf.String(), string(want))
	}

	// The golden file itself must load cleanly through the versioned reader.
	if _, err := ReadBaselineFile(path); err != nil {
		t.Fatalf("golden file does not load: %v", err)
	}
}

// TestSchemaVersionMismatchFailsLoudly: a bumped (or ancient) version must
// refuse to load with an error naming both versions.
func TestSchemaVersionMismatchFailsLoudly(t *testing.T) {
	b := goldenBaseline()
	b.SchemaVersion = SchemaVersion + 1
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBaseline(&buf)
	if err == nil {
		t.Fatal("version-bumped baseline loaded silently")
	}
	if !strings.Contains(err.Error(), "schema version") {
		t.Errorf("error does not explain the version mismatch: %v", err)
	}
}
