package qor

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/aig"
	"repro/internal/charlib"
	"repro/internal/epfl"
	"repro/internal/liberty"
	"repro/internal/mapper"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pdk"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/testlib"
)

// RunOptions configures one cryobench recording run.
type RunOptions struct {
	Profile Profile
	Repeat  int   // repetitions; 0 = profile default
	Seed    int64 // flow seed (determinism anchor); 0 = 1
	// ClockSec is the reference clock for WNS/TNS; 0 = 1 ns.
	ClockSec float64
	// UseTestlib swaps the SPICE-characterized libraries for the fast
	// synthetic ones (the CI configuration).
	UseTestlib bool
	CacheDir   string // liberty cache dir for characterized corners
	// Workers bounds the characterization worker pool when corners are
	// SPICE-characterized (0 = GOMAXPROCS). Does not affect the QoR metrics
	// or the cache key — only wall-clock.
	Workers int
	// TopPaths is the number of critical endpoint paths recorded per
	// (circuit, corner) for attribution (0 = DefaultTopPaths; negative
	// disables path provenance).
	TopPaths int
	// CreatedAt stamps the baseline (left empty for golden-stable output).
	CreatedAt string
	// Progress, when non-nil, receives human-readable progress lines.
	Progress func(format string, args ...any)
}

// Run executes the profile and returns the recorded baseline.
//
// Instrumentation contract: Run enables the global obs metrics registry and
// — per repetition — swaps in a fresh tracer (obs.ResetTracing), so that
// per-stage wall times and engine-counter deltas are attributable to one
// repetition. A -trace flag on the calling binary therefore captures only
// the final repetition's span forest.
func Run(ctx context.Context, opt RunOptions) (*Baseline, error) {
	if opt.Repeat <= 0 {
		opt.Repeat = opt.Profile.Repeat
	}
	if opt.Repeat <= 0 {
		opt.Repeat = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.ClockSec == 0 {
		opt.ClockSec = 1e-9
	}
	progress := opt.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	reg := obs.EnableMetrics()
	ctx = obs.Detach(ctx)

	corners, err := loadCorners(ctx, opt)
	if err != nil {
		return nil, err
	}

	b := &Baseline{
		SchemaVersion: SchemaVersion,
		Tool:          "cryobench",
		Profile:       opt.Profile.Name,
		Repeat:        opt.Repeat,
		Seed:          opt.Seed,
		ClockSec:      opt.ClockSec,
		Testlib:       opt.UseTestlib,
		CreatedAt:     opt.CreatedAt,
		GoOSArch:      runtime.GOOS + "/" + runtime.GOARCH,
		Engine:        map[string]Stat{},
	}

	// engineSamples[name][rep] accumulates counter deltas across the
	// whole profile, one sample per repetition.
	engineSamples := map[string][]float64{}

	reps := obs.Progress("qor.reps",
		int64(len(opt.Profile.Circuits))*int64(len(opt.Profile.Scenarios))*int64(opt.Repeat))
	defer reps.Finish()

	for _, name := range opt.Profile.Circuits {
		g, err := epfl.Build(name)
		if err != nil {
			return nil, err
		}
		for _, sc := range opt.Profile.Scenarios {
			rec := Circuit{
				Name:          name,
				Scenario:      sc.String(),
				AIGNodesIn:    g.NumNodes(),
				Deterministic: true,
				StageSeconds:  map[string]Stat{},
			}
			stageSamples := map[string][]float64{}
			for rep := 0; rep < opt.Repeat; rep++ {
				tracer := obs.ResetTracing()
				before := reg.Snapshot()
				t0 := time.Now()

				// qor.rep roots each repetition's span subtree, so cost
				// attribution groups the flow stages per rep instead of
				// scattering them as top-level roots.
				repCtx, repSpan := obs.Start(ctx, "qor.rep")
				repCircuit, err := runOnce(repCtx, g, sc, corners, opt)
				repSpan.End()
				if err != nil {
					obs.J().Failure("qor", err.Error(), map[string]string{
						"circuit":  name,
						"scenario": sc.String(),
						"rep":      fmt.Sprint(rep),
					}, nil)
					return nil, fmt.Errorf("qor: %s/%s rep %d: %w", name, sc, rep, err)
				}
				wall := time.Since(t0).Seconds()
				obs.J().Event(obs.KindStageEnd, "qor.rep",
					fmt.Sprintf("%s/%s rep %d/%d", name, sc, rep+1, opt.Repeat),
					map[string]string{
						"circuit":  name,
						"scenario": sc.String(),
						"rep":      fmt.Sprint(rep),
						"seconds":  fmt.Sprintf("%.6f", wall),
					})

				if rep == 0 {
					rec.AIGNodesOpt = repCircuit.AIGNodesOpt
					rec.AIGDepthOpt = repCircuit.AIGDepthOpt
					rec.Corners = repCircuit.Corners
				} else if !sameQoR(&rec, repCircuit) {
					rec.Deterministic = false
				}

				for span, tot := range tracer.Totals() {
					stageSamples[span] = padTo(stageSamples[span], rep)
					stageSamples[span][rep] = tot.Total.Seconds()
				}
				stageSamples["rep.wall"] = padTo(stageSamples["rep.wall"], rep)
				stageSamples["rep.wall"][rep] = wall

				delta := reg.Snapshot().Diff(before)
				for cname, v := range delta.Counters {
					engineSamples[cname] = padTo(engineSamples[cname], rep)
					engineSamples[cname][rep] += float64(v)
				}
				reps.Inc()
				progress("%-12s %-10s rep %d/%d  %.3fs", name, sc, rep+1, opt.Repeat, wall)
			}
			for span, samples := range stageSamples {
				rec.StageSeconds[span] = NewStat(padTo(samples, opt.Repeat-1))
			}
			b.Circuits = append(b.Circuits, rec)
		}
	}
	for cname, samples := range engineSamples {
		b.Engine[cname] = NewStat(padTo(samples, opt.Repeat-1))
	}
	return b, nil
}

// padTo grows s (with zeros) so index rep is addressable.
func padTo(s []float64, rep int) []float64 {
	for len(s) <= rep {
		s = append(s, 0)
	}
	return s
}

// cornerLib pairs a temperature with its characterized library and match
// library.
type cornerLib struct {
	tempK float64
	lib   *liberty.Library
	ml    *mapper.MatchLibrary
}

func loadCorners(ctx context.Context, opt RunOptions) ([]cornerLib, error) {
	catalog := pdk.Catalog()
	out := make([]cornerLib, 0, len(opt.Profile.Corners))
	for _, temp := range opt.Profile.Corners {
		var lib *liberty.Library
		var cells []*pdk.Cell
		if opt.UseTestlib {
			lib, cells = testlib.Build(catalog, testlib.Names(), temp)
		} else {
			cacheDir := opt.CacheDir
			if cacheDir == "" {
				cacheDir = "build"
			}
			cfg := charlib.DefaultConfig(temp)
			cfg.Workers = opt.Workers
			var err error
			lib, err = charlib.CharacterizeLibraryCached(ctx,
				charlib.DefaultCachePath(cacheDir, temp, len(catalog)),
				fmt.Sprintf("cryo%gk", temp), catalog,
				cfg, nil)
			if err != nil {
				return nil, fmt.Errorf("qor: characterizing %g K corner: %w", temp, err)
			}
			cells = catalog
		}
		ml, err := mapper.BuildMatchLibrary(lib, cells, 6)
		if err != nil {
			return nil, fmt.Errorf("qor: match library at %g K: %w", temp, err)
		}
		out = append(out, cornerLib{tempK: temp, lib: lib, ml: ml})
	}
	return out, nil
}

// DefaultTopPaths is the per-corner critical-path record count when
// RunOptions.TopPaths is zero.
const DefaultTopPaths = 3

// runOnce runs the full flow for one (circuit, scenario) repetition across
// all corners and returns the QoR record.
func runOnce(ctx context.Context, g *aig.AIG, sc synth.Scenario, corners []cornerLib, opt RunOptions) (*Circuit, error) {
	topK := opt.TopPaths
	if topK == 0 {
		topK = DefaultTopPaths
	}
	rec := &Circuit{}
	for _, c := range corners {
		res, err := synth.Synthesize(ctx, g, c.ml, synth.Options{Scenario: sc, Seed: opt.Seed})
		if err != nil {
			return nil, fmt.Errorf("synthesis at %g K: %w", c.tempK, err)
		}
		rec.AIGNodesOpt = res.NodesPower
		rec.AIGDepthOpt = res.DepthOut
		if err := signoffFunctional(ctx, g, res.Netlist, opt.Seed); err != nil {
			return nil, fmt.Errorf("functional signoff at %g K: %w", c.tempK, err)
		}
		timing, err := sta.Analyze(ctx, res.Netlist, c.lib, sta.Options{})
		if err != nil {
			return nil, fmt.Errorf("STA at %g K: %w", c.tempK, err)
		}
		rep, cells, err := power.AnalyzeFull(ctx, res.Netlist, c.lib, power.Options{
			ClockPeriod: opt.ClockSec, Seed: opt.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("power at %g K: %w", c.tempK, err)
		}
		corner := Corner{
			TempK:       c.tempK,
			Gates:       res.Netlist.NumGates(),
			Area:        res.Netlist.Area(),
			CriticalSec: timing.CriticalDelay,
			WNSSec:      timing.WorstSlack(opt.ClockSec),
			TNSSec:      endpointTNS(timing, res.Netlist, opt.ClockSec),
			LeakageW:    rep.Leakage,
			DynamicW:    rep.Internal + rep.Switching,
			TotalW:      rep.Total(),
		}
		if topK > 0 {
			corner.Paths = toPathRecords(timing.TopPaths(topK, opt.ClockSec))
			corner.PowerByClass = toClassPower(power.GroupByCell(cells), rep)
		}
		rec.Corners = append(rec.Corners, corner)
	}
	return rec, nil
}

// toPathRecords converts the live STA paths into the persisted schema form.
func toPathRecords(paths []sta.Path) []PathRecord {
	out := make([]PathRecord, 0, len(paths))
	for _, p := range paths {
		pr := PathRecord{
			Endpoint:   p.Endpoint,
			ArrivalSec: p.ArrivalSec,
			SlackSec:   p.SlackSec,
			Arcs:       make([]ArcRecord, 0, len(p.Arcs)),
		}
		for _, a := range p.Arcs {
			pr.Arcs = append(pr.Arcs, ArcRecord{
				FromNet:    a.FromNet,
				ToNet:      a.ToNet,
				Gate:       a.Gate,
				Cell:       a.Cell,
				Pin:        a.FromPin,
				DelaySec:   a.DelaySec,
				ArrivalSec: a.ArrivalSec,
				SlewSec:    a.SlewSec,
				LoadF:      a.LoadF,
			})
		}
		out = append(out, pr)
	}
	return out
}

// InputNetsClass is the pseudo cell class carrying primary-input net
// switching power, which no gate instance owns.
const InputNetsClass = "(input-nets)"

// toClassPower converts the power package's per-class rows into the schema
// form, adding a pseudo-class for switching power on nets no gate drives
// (primary inputs) so the breakdown covers the corner totals.
func toClassPower(classes []power.ClassPower, rep *power.Report) []ClassPower {
	out := make([]ClassPower, 0, len(classes)+1)
	var attributed float64
	for _, c := range classes {
		out = append(out, ClassPower{
			Cell:       c.Cell,
			Count:      c.Count,
			LeakageW:   c.Leakage,
			InternalW:  c.Internal,
			SwitchingW: c.Switching,
		})
		attributed += c.Switching
	}
	if resid := rep.Switching - attributed; resid > 1e-12*rep.Switching {
		out = append(out, ClassPower{Cell: InputNetsClass, SwitchingW: resid})
	}
	return out
}

// endpointTNS sums the negative endpoint (primary-output) slacks.
func endpointTNS(r *sta.Result, nl *netlist.Netlist, clock float64) float64 {
	slacks := r.Slacks(clock)
	var tns float64
	for _, out := range nl.Outputs {
		if s := slacks[nl.Resolve(out)]; s < 0 {
			tns += s
		}
	}
	return tns
}

// sameQoR reports whether a repetition reproduced the recorded QoR bit for
// bit (the flow is seeded, so it should). Path and power-class provenance
// participates: a wandering critical path is nondeterminism even when the
// scalar QoR happens to agree.
func sameQoR(rec *Circuit, rep *Circuit) bool {
	if rec.AIGNodesOpt != rep.AIGNodesOpt || rec.AIGDepthOpt != rep.AIGDepthOpt {
		return false
	}
	if len(rec.Corners) != len(rep.Corners) {
		return false
	}
	for i := range rec.Corners {
		if !cornerEqual(&rec.Corners[i], &rep.Corners[i]) {
			return false
		}
	}
	return true
}

// cornerEqual compares two corner records bit for bit, provenance included.
func cornerEqual(a, b *Corner) bool {
	if a.TempK != b.TempK || a.Gates != b.Gates || a.Area != b.Area ||
		a.CriticalSec != b.CriticalSec || a.WNSSec != b.WNSSec || a.TNSSec != b.TNSSec ||
		a.LeakageW != b.LeakageW || a.DynamicW != b.DynamicW || a.TotalW != b.TotalW {
		return false
	}
	if len(a.Paths) != len(b.Paths) || len(a.PowerByClass) != len(b.PowerByClass) {
		return false
	}
	for i := range a.Paths {
		pa, pb := &a.Paths[i], &b.Paths[i]
		if pa.Endpoint != pb.Endpoint || pa.ArrivalSec != pb.ArrivalSec ||
			pa.SlackSec != pb.SlackSec || len(pa.Arcs) != len(pb.Arcs) {
			return false
		}
		for j := range pa.Arcs {
			if pa.Arcs[j] != pb.Arcs[j] {
				return false
			}
		}
	}
	for i := range a.PowerByClass {
		if a.PowerByClass[i] != b.PowerByClass[i] {
			return false
		}
	}
	return true
}
