package qor

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/epfl"
	"repro/internal/synth"
)

// Profile names a benchmark subset plus the scenarios and temperature
// corners to sweep. Profiles bound cryobench's runtime: smoke is the CI
// gate, full is the paper's whole suite.
type Profile struct {
	Name      string
	Circuits  []string
	Scenarios []synth.Scenario
	Corners   []float64 // temperatures in kelvin
	Repeat    int       // default repetition count
}

// builtin profiles, cheapest first.
var profiles = []Profile{
	{
		Name:      "smoke",
		Circuits:  []string{"ctrl", "dec", "int2float"},
		Scenarios: []synth.Scenario{synth.BaselinePowerAware, synth.CryoPDA},
		Corners:   []float64{300, 10},
		Repeat:    2,
	},
	{
		Name:      "control",
		Circuits:  epflClass(epfl.Control),
		Scenarios: []synth.Scenario{synth.BaselinePowerAware, synth.CryoPAD, synth.CryoPDA},
		Corners:   []float64{300, 10},
		Repeat:    3,
	},
	{
		Name:      "arith",
		Circuits:  epflClass(epfl.Arithmetic),
		Scenarios: []synth.Scenario{synth.BaselinePowerAware, synth.CryoPAD, synth.CryoPDA},
		Corners:   []float64{300, 10},
		Repeat:    3,
	},
	{
		Name:      "full",
		Circuits:  epfl.Names(),
		Scenarios: []synth.Scenario{synth.BaselinePowerAware, synth.CryoPAD, synth.CryoPDA},
		Corners:   []float64{300, 10},
		Repeat:    3,
	},
}

func epflClass(class epfl.Class) []string {
	var out []string
	for _, g := range epfl.Suite() {
		if g.Class == class {
			out = append(out, g.Name)
		}
	}
	return out
}

// ProfileNames lists the built-in profile names.
func ProfileNames() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// FindProfile resolves a profile by name.
func FindProfile(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("qor: unknown profile %q (have %s)",
		name, strings.Join(ProfileNames(), ", "))
}
