package qor

import (
	"fmt"
	"math"
)

// Thresholds tunes the noise-aware comparison.
type Thresholds struct {
	// QoRRelEps is the relative epsilon for floating-point QoR fields
	// (the flow is deterministic, so this only absorbs representation
	// noise; integers are compared exactly).
	QoRRelEps float64
	// RuntimeFrac is the relative tolerance on runtime/engine medians: a
	// sample is only suspect beyond base*(1±RuntimeFrac).
	RuntimeFrac float64
	// IQRMult: on top of the relative band, the shift must also exceed
	// IQRMult * max(base IQR, cur IQR) — the noise-awareness proper.
	IQRMult float64
	// MinSeconds ignores runtime stages whose base and current medians
	// are both below this floor (too fast to measure honestly).
	MinSeconds float64
	// MinCount ignores engine counters whose base and current medians are
	// both below this floor.
	MinCount float64
}

// DefaultThresholds are the cryobench defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		QoRRelEps:   1e-9,
		RuntimeFrac: 0.30,
		IQRMult:     3.0,
		MinSeconds:  5e-3,
		MinCount:    64,
	}
}

// Verdict classifies one compared metric.
type Verdict int

// Verdicts, ordered from good to bad.
const (
	OK Verdict = iota
	Improved
	New     // metric only in the current run
	Missing // metric only in the baseline
	Regressed
)

// String renders the verdict for tables.
func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Improved:
		return "improved"
	case New:
		return "new"
	case Missing:
		return "missing"
	case Regressed:
		return "REGRESSED"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Kind separates the hard QoR gate from the soft runtime/engine watch.
type Kind string

// Metric kinds.
const (
	KindQoR     Kind = "qor"
	KindRuntime Kind = "runtime"
	KindEngine  Kind = "engine"
)

// Entry is one row of a diff report.
type Entry struct {
	Key     string // e.g. "ctrl/p->d->a @10K"
	Metric  string // e.g. "wns_seconds"
	Kind    Kind
	Base    float64
	Cur     float64
	Verdict Verdict
	Note    string
}

// Delta returns cur-base.
func (e *Entry) Delta() float64 { return e.Cur - e.Base }

// RelDelta returns the relative change against the baseline magnitude
// (0 when the base is zero).
func (e *Entry) RelDelta() float64 {
	if e.Base == 0 {
		return 0
	}
	return (e.Cur - e.Base) / math.Abs(e.Base)
}

// Report is the outcome of diffing a run against a baseline.
type Report struct {
	BaseLabel, CurLabel string
	Entries             []Entry
	QoRRegressions      int
	RuntimeRegressions  int
	NonDeterministic    []string // circuit keys whose repetitions disagreed
}

// Failed reports whether the diff should gate a merge: any QoR regression
// (or nondeterminism) fails; runtime regressions fail only when
// strictRuntime is set.
func (r *Report) Failed(strictRuntime bool) bool {
	if r.QoRRegressions > 0 || len(r.NonDeterministic) > 0 {
		return true
	}
	return strictRuntime && r.RuntimeRegressions > 0
}

// qorMetric describes one exactly-compared QoR field: how to read it and
// which direction is worse.
type qorMetric struct {
	name       string
	get        func(*Corner) float64
	higherBad  bool
	integerish bool
}

var cornerMetrics = []qorMetric{
	{"gates", func(c *Corner) float64 { return float64(c.Gates) }, true, true},
	{"area", func(c *Corner) float64 { return c.Area }, true, false},
	{"critical_delay_seconds", func(c *Corner) float64 { return c.CriticalSec }, true, false},
	{"wns_seconds", func(c *Corner) float64 { return c.WNSSec }, false, false},
	{"tns_seconds", func(c *Corner) float64 { return c.TNSSec }, false, false},
	{"leakage_w", func(c *Corner) float64 { return c.LeakageW }, true, false},
	{"dynamic_w", func(c *Corner) float64 { return c.DynamicW }, true, false},
	{"total_w", func(c *Corner) float64 { return c.TotalW }, true, false},
}

// Diff compares cur against base. QoR fields are compared exactly (per
// QoRRelEps); stage wall times and engine counters via the median/IQR rule.
func Diff(base, cur *Baseline, th Thresholds) *Report {
	r := &Report{
		BaseLabel: label(base),
		CurLabel:  label(cur),
	}
	baseByKey := map[string]*Circuit{}
	for i := range base.Circuits {
		baseByKey[base.Circuits[i].key()] = &base.Circuits[i]
	}
	seen := map[string]bool{}
	for i := range cur.Circuits {
		cc := &cur.Circuits[i]
		if !cc.Deterministic {
			r.NonDeterministic = append(r.NonDeterministic, cc.key())
		}
		bc, ok := baseByKey[cc.key()]
		if !ok {
			r.Entries = append(r.Entries, Entry{
				Key: cc.key(), Metric: "circuit", Kind: KindQoR, Verdict: New,
				Note: "not in baseline",
			})
			continue
		}
		seen[cc.key()] = true
		diffCircuit(r, bc, cc, th)
	}
	for i := range base.Circuits {
		if !seen[base.Circuits[i].key()] {
			r.Entries = append(r.Entries, Entry{
				Key: base.Circuits[i].key(), Metric: "circuit", Kind: KindQoR,
				Verdict: Missing, Note: "dropped from run",
			})
			r.QoRRegressions++ // losing coverage is a hard failure
		}
	}
	diffEngine(r, base.Engine, cur.Engine, th)
	return r
}

func label(b *Baseline) string {
	s := b.Tool + ":" + b.Profile
	if b.CreatedAt != "" {
		s += "@" + b.CreatedAt
	}
	return s
}

func diffCircuit(r *Report, base, cur *Circuit, th Thresholds) {
	key := cur.key()
	// AIG trajectory: exact integers.
	for _, m := range []struct {
		name      string
		base, cur int
		higherBad bool
	}{
		{"aig_nodes_opt", base.AIGNodesOpt, cur.AIGNodesOpt, true},
		{"aig_depth_opt", base.AIGDepthOpt, cur.AIGDepthOpt, true},
	} {
		e := Entry{Key: key, Metric: m.name, Kind: KindQoR,
			Base: float64(m.base), Cur: float64(m.cur), Verdict: OK}
		if m.cur != m.base {
			if (m.cur > m.base) == m.higherBad {
				e.Verdict = Regressed
				r.QoRRegressions++
			} else {
				e.Verdict = Improved
			}
		}
		r.Entries = append(r.Entries, e)
	}
	// Corners matched by temperature.
	baseCorner := map[float64]*Corner{}
	for i := range base.Corners {
		baseCorner[base.Corners[i].TempK] = &base.Corners[i]
	}
	seenCorner := map[float64]bool{}
	for i := range cur.Corners {
		cc := &cur.Corners[i]
		ckey := fmt.Sprintf("%s @%gK", key, cc.TempK)
		bc, ok := baseCorner[cc.TempK]
		if !ok {
			r.Entries = append(r.Entries, Entry{Key: ckey, Metric: "corner",
				Kind: KindQoR, Verdict: New, Note: "corner not in baseline"})
			continue
		}
		seenCorner[cc.TempK] = true
		for _, m := range cornerMetrics {
			bv, cv := m.get(bc), m.get(cc)
			e := Entry{Key: ckey, Metric: m.name, Kind: KindQoR, Base: bv, Cur: cv, Verdict: OK}
			if !qorEqual(bv, cv, th.QoRRelEps, m.integerish) {
				if (cv > bv) == m.higherBad {
					e.Verdict = Regressed
					r.QoRRegressions++
				} else {
					e.Verdict = Improved
				}
			}
			r.Entries = append(r.Entries, e)
		}
	}
	// A corner dropped from the current run is lost coverage — a hard
	// failure, like a dropped circuit.
	for i := range base.Corners {
		bc := &base.Corners[i]
		if !seenCorner[bc.TempK] {
			r.Entries = append(r.Entries, Entry{
				Key:    fmt.Sprintf("%s @%gK", key, bc.TempK),
				Metric: "corner", Kind: KindQoR, Verdict: Missing,
				Note: "corner dropped from run",
			})
			r.QoRRegressions++
		}
	}
	// Stage wall times: noise-aware, lower is better.
	for stage, cs := range cur.StageSeconds {
		bs, ok := base.StageSeconds[stage]
		if !ok {
			continue
		}
		if bs.Median < th.MinSeconds && cs.Median < th.MinSeconds {
			continue
		}
		e := Entry{Key: key, Metric: "stage:" + stage, Kind: KindRuntime,
			Base: bs.Median, Cur: cs.Median, Verdict: noisyVerdict(bs, cs, th)}
		if e.Verdict == Regressed {
			r.RuntimeRegressions++
			e.Note = noiseNote(bs, cs)
		}
		r.Entries = append(r.Entries, e)
	}
}

func diffEngine(r *Report, base, cur map[string]Stat, th Thresholds) {
	for name, cs := range cur {
		bs, ok := base[name]
		if !ok {
			continue
		}
		if bs.Median < th.MinCount && cs.Median < th.MinCount {
			continue
		}
		e := Entry{Key: "engine", Metric: name, Kind: KindEngine,
			Base: bs.Median, Cur: cs.Median, Verdict: noisyVerdict(bs, cs, th)}
		if e.Verdict == Regressed {
			r.RuntimeRegressions++
			e.Note = noiseNote(bs, cs)
		}
		r.Entries = append(r.Entries, e)
	}
}

// qorEqual is the "exact" QoR comparison: integers bit-exact, floats
// within a tiny relative epsilon.
func qorEqual(a, b, relEps float64, integerish bool) bool {
	if integerish {
		return a == b
	}
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= relEps*scale
}

// DriftVerdict classifies the shift from a historical sample set (base) to
// a current one under the noise-aware median/IQR rule — the same gate the
// baseline diff applies to runtime metrics, exported for cross-run trend
// analysis (cryoobs trend flags a metric as drifting only when its latest
// value escapes the noise band of its history).
func DriftVerdict(base, cur Stat, th Thresholds) Verdict {
	return noisyVerdict(base, cur, th)
}

// noisyVerdict applies the median/IQR rule: the median shift must exceed
// BOTH the relative band and IQRMult spreads of the noisier run to count.
func noisyVerdict(base, cur Stat, th Thresholds) Verdict {
	shift := cur.Median - base.Median
	relBand := th.RuntimeFrac * math.Abs(base.Median)
	noiseBand := th.IQRMult * math.Max(base.IQR, cur.IQR)
	if math.Abs(shift) <= math.Max(relBand, 1e-300) || math.Abs(shift) <= noiseBand {
		return OK
	}
	if shift > 0 {
		return Regressed
	}
	return Improved
}

func noiseNote(base, cur Stat) string {
	return fmt.Sprintf("median %.4g -> %.4g (IQR %.2g/%.2g, n=%d)",
		base.Median, cur.Median, base.IQR, cur.IQR, cur.N)
}
