// Package core is the high-level entry point to the cryogenic-aware design
// automation flow — the paper's primary contribution assembled from the
// substrate packages. It wires together device modeling, library
// characterization, and the power-first synthesis pipeline behind one small
// API, so a user can go from "temperature + circuit" to "mapped netlist +
// signoff power/delay" in a few calls.
package core

import (
	"context"
	"fmt"

	"repro/internal/charlib"
	"repro/internal/epfl"
	"repro/internal/liberty"
	"repro/internal/mapper"
	"repro/internal/pdk"
	"repro/internal/synth"
	"repro/internal/testlib"
)

// Flow bundles a characterized corner with its match library, ready to
// synthesize circuits.
type Flow struct {
	Library *liberty.Library
	Cells   []*pdk.Cell
	Matches *mapper.MatchLibrary
}

// Config controls flow construction.
type Config struct {
	// TempK is the operating temperature (300 for room, 10 for the paper's
	// cryogenic corner).
	TempK float64
	// CachePath, when non-empty, persists/reuses the SPICE-characterized
	// liberty file at this location.
	CachePath string
	// Synthetic skips SPICE characterization and uses the fast synthetic
	// library (tests, smoke runs).
	Synthetic bool
	// Progress, when non-nil, receives characterization progress.
	Progress func(done, total int)
}

// NewFlow characterizes (or loads) the standard-cell library at the given
// corner and prepares the technology-mapping index.
func NewFlow(ctx context.Context, cfg Config) (*Flow, error) {
	if cfg.TempK == 0 {
		cfg.TempK = 10
	}
	catalog := pdk.Catalog()
	var lib *liberty.Library
	var cells []*pdk.Cell
	if cfg.Synthetic {
		lib, cells = testlib.Build(catalog, testlib.Names(), cfg.TempK)
	} else {
		path := cfg.CachePath
		if path == "" {
			path = charlib.DefaultCachePath("build", cfg.TempK, len(catalog))
		}
		var err error
		lib, err = charlib.CharacterizeLibraryCached(ctx, path, fmt.Sprintf("cryo%gk", cfg.TempK),
			catalog, charlib.DefaultConfig(cfg.TempK), cfg.Progress)
		if err != nil {
			return nil, err
		}
		cells = catalog
	}
	ml, err := mapper.BuildMatchLibrary(lib, cells, 6)
	if err != nil {
		return nil, err
	}
	return &Flow{Library: lib, Cells: cells, Matches: ml}, nil
}

// Synthesize runs the paper's three-stage pipeline on a circuit under one
// scenario.
func (f *Flow) Synthesize(ctx context.Context, circuit string, sc synth.Scenario) (*synth.Result, error) {
	g, err := epfl.Build(circuit)
	if err != nil {
		return nil, err
	}
	return synth.Synthesize(ctx, g, f.Matches, synth.Options{Scenario: sc, Seed: 1})
}

// Compare evaluates all three scenarios on a circuit with the paper's
// shared-clock normalization.
func (f *Flow) Compare(ctx context.Context, circuit string) (*synth.Comparison, error) {
	g, err := epfl.Build(circuit)
	if err != nil {
		return nil, err
	}
	return synth.Compare(ctx, g, f.Matches, f.Library, synth.FlowOptions{Seed: 1})
}
