package core

import (
	"testing"

	"repro/internal/synth"
)

func TestSyntheticFlowEndToEnd(t *testing.T) {
	flow, err := NewFlow(Config{TempK: 10, Synthetic: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := flow.Synthesize("router", synth.CryoPAD)
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.NumGates() == 0 {
		t.Fatal("empty netlist from the facade flow")
	}
	cmp, err := flow.Compare("router")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ClockPeriod <= 0 || cmp.Metrics[synth.BaselinePowerAware].Power == nil {
		t.Fatalf("comparison incomplete: %+v", cmp)
	}
}

func TestUnknownCircuit(t *testing.T) {
	flow, err := NewFlow(Config{TempK: 300, Synthetic: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.Synthesize("nope", synth.BaselinePowerAware); err == nil {
		t.Error("unknown circuit accepted")
	}
}
