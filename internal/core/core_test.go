package core

import (
	"context"
	"testing"

	"repro/internal/synth"
)

func TestSyntheticFlowEndToEnd(t *testing.T) {
	flow, err := NewFlow(context.Background(), Config{TempK: 10, Synthetic: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := flow.Synthesize(context.Background(), "router", synth.CryoPAD)
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.NumGates() == 0 {
		t.Fatal("empty netlist from the facade flow")
	}
	cmp, err := flow.Compare(context.Background(), "router")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ClockPeriod <= 0 || cmp.Metrics[synth.BaselinePowerAware].Power == nil {
		t.Fatalf("comparison incomplete: %+v", cmp)
	}
}

func TestUnknownCircuit(t *testing.T) {
	flow, err := NewFlow(context.Background(), Config{TempK: 300, Synthetic: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.Synthesize(context.Background(), "nope", synth.BaselinePowerAware); err == nil {
		t.Error("unknown circuit accepted")
	}
}
