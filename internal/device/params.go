// Package device implements a cryogenic-aware FinFET compact model.
//
// The model is a charge-based (EKV-flavored) compact model augmented with the
// cryogenic physics described in the paper and its reference [13] (Pahwa et
// al., TED 2021): a band-tail-limited effective temperature that saturates
// the subthreshold swing at deep-cryogenic temperatures, a threshold-voltage
// increase toward low temperature, phonon-limited mobility improvement with a
// surface-roughness ceiling, and a leakage floor that bounds the OFF current
// reduction to the several-orders-of-magnitude range observed in
// measurements. It plays the role of the paper's cryogenic-aware BSIM-CMG: a
// single model card valid from 300 K down to 10 K that SPICE-class simulators
// can evaluate directly.
package device

// Type distinguishes n-type from p-type FinFETs.
type Type int

const (
	// NFET is an n-type FinFET.
	NFET Type = iota
	// PFET is a p-type FinFET.
	PFET
)

// String returns "nfet" or "pfet".
func (t Type) String() string {
	if t == PFET {
		return "pfet"
	}
	return "nfet"
}

// Params holds the compact-model card for one device polarity. All voltages
// are magnitudes (the Model applies polarity), lengths are in meters,
// mobilities in m^2/(V*s), capacitances per area in F/m^2.
type Params struct {
	// Geometry.
	L    float64 // gate length
	HFin float64 // fin height
	TFin float64 // fin thickness
	NFin int     // number of fins

	// Electrostatics.
	Vth0   float64 // threshold voltage at 300 K
	VthTC  float64 // threshold temperature coefficient (V over full 300->0 K span)
	N0     float64 // subthreshold ideality factor
	DIBL   float64 // drain-induced barrier lowering (V/V)
	Lambda float64 // channel-length modulation (1/V)

	// Band-tail states: the effective-temperature floor in kelvin. The
	// carrier statistics behave as if the lattice never cools below ~TBand,
	// which saturates the subthreshold swing near 8-12 mV/dec.
	TBand float64

	// Transport.
	MuPh0 float64 // phonon-limited mobility at 300 K
	MuExp float64 // phonon mobility temperature exponent
	MuSR  float64 // surface-roughness-limited mobility (temperature independent)
	Theta float64 // vertical-field mobility degradation (1/V)

	// Gate stack.
	CoxA  float64 // oxide capacitance per area
	CapTC float64 // relative gate-capacitance reduction over 300->0 K
	CFr   float64 // fringe/overlap capacitance per meter of Weff

	// Leakage floor (GIDL + junction + gate tunneling) per meter of Weff at
	// |Vds| = Vdd; weakly temperature dependent.
	IFloor float64
	// VddRef is the nominal supply used to normalize the floor bias term.
	VddRef float64
}

// DefaultNParams returns the calibrated n-FinFET model card for the 5 nm
// technology reproduced in this work.
func DefaultNParams() Params {
	return Params{
		L:    16e-9,
		HFin: 32e-9,
		TFin: 6.5e-9,
		NFin: 1,

		Vth0:   0.250,
		VthTC:  0.120,
		N0:     1.12,
		DIBL:   0.055,
		Lambda: 0.25,

		TBand: 35.0,

		MuPh0: 0.060,
		MuExp: 1.40,
		MuSR:  0.040,
		Theta: 1.1,

		CoxA:  0.0345, // ~1 nm EOT
		CapTC: 0.040,
		CFr:   0.9e-9, // F per meter of Weff (fringe+overlap lump)

		IFloor: 2.0e-7, // A per meter of Weff
		VddRef: 0.70,
	}
}

// DefaultPParams returns the calibrated p-FinFET model card. Hole transport
// is slower; the magnitude conventions match DefaultNParams.
func DefaultPParams() Params {
	p := DefaultNParams()
	p.Vth0 = 0.235
	p.VthTC = 0.110
	p.N0 = 1.15
	p.DIBL = 0.060
	p.MuPh0 = 0.028
	p.MuSR = 0.022
	p.MuExp = 1.30
	p.Theta = 1.3
	p.IFloor = 1.2e-7
	return p
}

// Weff returns the effective electrical width of the device: the wrapped fin
// perimeter times the number of fins.
func (p Params) Weff() float64 {
	n := p.NFin
	if n < 1 {
		n = 1
	}
	return float64(n) * (2*p.HFin + p.TFin)
}
