package device

import (
	"math"
)

// tempCache holds temperature-derived model quantities so that repeated
// evaluations at a fixed simulation temperature (the common case inside a
// SPICE run) avoid recomputing powers and exponentials.
type tempCache struct {
	temp   float64 // temperature this cache is valid for
	vt     float64 // band-tail-limited thermal voltage
	vth    float64 // zero-bias threshold at temp
	mu     float64 // low-field mobility at temp
	capF   float64 // gate-capacitance factor at temp
	ispec0 float64 // 2*n*mu*Cox*(W/L)*vt^2 before Theta degradation
	floorA float64 // leakage-floor amplitude (A)
	floorK float64 // leakage-floor bias shape factor (1/V)
}

func (m *Model) cacheFor(tempK float64) *tempCache {
	if m.tc != nil && m.tc.temp == tempK {
		return m.tc
	}
	p := &m.P
	c := &tempCache{temp: tempK}
	c.vt = p.thermalVoltageEff(tempK)
	c.vth = p.Vth(tempK)
	c.mu = p.Mobility(tempK)
	c.capF = p.GateCapFactor(tempK)
	cox := p.CoxA * c.capF
	c.ispec0 = 2 * p.N0 * c.mu * cox * (p.Weff() / p.L) * c.vt * c.vt
	c.floorA = p.IFloor * p.Weff()
	c.floorK = 1.5 / p.VddRef
	m.tc = c
	return c
}

// sigmoid is the logistic function, the derivative of ln1exp.
func sigmoid(x float64) float64 {
	if x > 40 {
		return 1
	}
	if x < -40 {
		return math.Exp(x)
	}
	return 1 / (1 + math.Exp(-x))
}

// derivs evaluates the n-oriented compact model (vds >= 0) returning the
// current and its analytic partial derivatives with respect to vgs and vds.
func (m *Model) derivs(vgs, vds, tempK float64) (f, fg, fd float64) {
	p := &m.P
	c := m.cacheFor(tempK)
	n := p.N0
	nvt := n * c.vt
	vth := c.vth - p.DIBL*vds

	u := (vgs - vth) / nvt
	w := u - vds/c.vt
	lf := ln1exp(u / 2)
	lr := ln1exp(w / 2)
	sf := sigmoid(u / 2)
	sr := sigmoid(w / 2)
	F := lf*lf - lr*lr

	dudg := 1 / nvt
	dudd := p.DIBL / nvt
	dwdd := dudd - 1/c.vt

	dFdg := (lf*sf - lr*sr) * dudg
	dFdd := lf*sf*dudd - lr*sr*dwdd

	// Vertical-field mobility degradation.
	su := sigmoid(u)
	vov := nvt * ln1exp(u)
	D := 1 + p.Theta*vov
	K := c.ispec0 / D
	dKdg := -c.ispec0 * p.Theta * su / (D * D) // dvov/dvgs = su
	dKdd := -c.ispec0 * p.Theta * su * p.DIBL / (D * D)

	clm := 1 + p.Lambda*vds
	// Leakage floor: GIDL/junction/gate components that do not freeze out.
	// tanh keeps it odd in Vds (zero current at zero bias, source/drain
	// symmetric) and saturating toward full bias.
	th := math.Tanh(c.floorK * vds)
	floor := c.floorA * th
	dfloor := c.floorA * c.floorK * (1 - th*th)
	f = K*F*clm + floor
	fg = (dKdg*F + K*dFdg) * clm
	fd = (dKdd*F+K*dFdd)*clm + K*F*p.Lambda + dfloor
	return f, fg, fd
}
