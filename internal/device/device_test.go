package device

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/constants"
)

func TestEffectiveTempLimits(t *testing.T) {
	p := DefaultNParams()
	if got := p.EffectiveTemp(300); math.Abs(got-300) > 3 {
		t.Errorf("EffectiveTemp(300) = %v, want ~300", got)
	}
	if got := p.EffectiveTemp(0); math.Abs(got-p.TBand) > 1e-9 {
		t.Errorf("EffectiveTemp(0) = %v, want TBand=%v", got, p.TBand)
	}
	if got := p.EffectiveTemp(-5); got < p.TBand {
		t.Errorf("EffectiveTemp(-5) = %v, want clamped >= TBand", got)
	}
}

func TestVthIncreasesTowardCryo(t *testing.T) {
	for _, typ := range []Type{NFET, PFET} {
		m := modelOf(typ)
		v300 := m.P.Vth(300)
		v77 := m.P.Vth(77)
		v10 := m.P.Vth(10)
		if !(v10 > v77 && v77 > v300) {
			t.Errorf("%v: Vth not monotonically increasing toward cryo: 300K=%v 77K=%v 10K=%v", typ, v300, v77, v10)
		}
		// The paper and cryo literature report ~100 mV increase for FinFETs.
		delta := v10 - v300
		if delta < 0.05 || delta > 0.2 {
			t.Errorf("%v: Vth(10K)-Vth(300K) = %v, want in [0.05, 0.2] V", typ, delta)
		}
		// Saturation: the change between 10 K and 4 K must be tiny compared
		// with the change between 300 K and 77 K.
		if sat := m.P.Vth(4) - v10; sat > 0.1*(v10-v300) {
			t.Errorf("%v: Vth not saturating at deep cryo: dVth(4K-10K)=%v", typ, sat)
		}
	}
}

func TestSubthresholdSwing(t *testing.T) {
	p := DefaultNParams()
	ss300 := p.SubthresholdSwing(300)
	if ss300 < 0.060 || ss300 > 0.080 {
		t.Errorf("SS(300K) = %v V/dec, want ~60-80 mV/dec", ss300)
	}
	ss10 := p.SubthresholdSwing(10)
	if ss10 < 0.004 || ss10 > 0.015 {
		t.Errorf("SS(10K) = %v V/dec, want band-tail-limited ~4-15 mV/dec", ss10)
	}
	// Band tails must prevent the Boltzmann limit from being reached.
	boltzmann10 := p.N0 * constants.ThermalVoltage(10) * math.Ln10
	if ss10 < 2*boltzmann10 {
		t.Errorf("SS(10K)=%v too close to Boltzmann limit %v: band tails missing", ss10, boltzmann10)
	}
}

func TestMobilityImprovesAndSaturates(t *testing.T) {
	for _, typ := range []Type{NFET, PFET} {
		p := modelOf(typ).P
		mu300 := p.Mobility(300)
		mu10 := p.Mobility(10)
		gain := mu10 / mu300
		if gain < 1.3 || gain > 2.2 {
			t.Errorf("%v: mobility gain at 10K = %v, want 1.3-2.2x (paper cites ~1.58x)", typ, gain)
		}
		// Surface roughness ceiling: mobility never exceeds MuSR.
		if mu10 >= p.MuSR {
			t.Errorf("%v: mobility %v exceeds surface-roughness limit %v", typ, mu10, p.MuSR)
		}
	}
}

func TestLeakageReduction(t *testing.T) {
	const vdd = 0.7
	for _, typ := range []Type{NFET, PFET} {
		m := modelOf(typ)
		off300 := m.OffCurrent(vdd, 300)
		off10 := m.OffCurrent(vdd, 10)
		if off300 <= 0 || off10 <= 0 {
			t.Fatalf("%v: off currents must be positive: %v %v", typ, off300, off10)
		}
		ratio := off300 / off10
		// "several orders of magnitude"; the floor bounds it from above.
		if ratio < 100 || ratio > 1e9 {
			t.Errorf("%v: Ioff(300K)/Ioff(10K) = %v, want within [1e2, 1e9]", typ, ratio)
		}
	}
}

func TestOnCurrentRoughlyConstant(t *testing.T) {
	const vdd = 0.7
	for _, typ := range []Type{NFET, PFET} {
		m := modelOf(typ)
		on300 := m.OnCurrent(vdd, 300)
		on10 := m.OnCurrent(vdd, 10)
		r := on10 / on300
		// Fig 1(b,c): ON current "remains almost the same" — mobility gain
		// partly cancels the Vth increase. Allow a modest window.
		if r < 0.75 || r > 1.5 {
			t.Errorf("%v: Ion(10K)/Ion(300K) = %v, want ~1 (0.75-1.5)", typ, r)
		}
		if on300 < 1e-6 || on300 > 1e-3 {
			t.Errorf("%v: Ion(300K)=%v A implausible for a single fin", typ, on300)
		}
	}
}

func TestIonIoffRatio(t *testing.T) {
	m := NewN(1)
	on := m.OnCurrent(0.7, 300)
	off := m.OffCurrent(0.7, 300)
	if r := on / off; r < 1e3 || r > 1e8 {
		t.Errorf("Ion/Ioff at 300K = %v, want a realistic 1e3-1e8", r)
	}
}

func TestIdsSourceDrainSymmetry(t *testing.T) {
	m := NewN(2)
	for _, vg := range []float64{0.1, 0.35, 0.7} {
		for _, vd := range []float64{0.05, 0.4, 0.7} {
			// Swapping source and drain: Ids(vgs, -vds) must equal
			// -Ids(vgs+vds measured from the new source, vds).
			fwd := m.Ids(vg, vd, 300)
			rev := m.Ids(vg-vd, -vd, 300)
			if math.Abs(fwd+rev) > 1e-12+1e-9*math.Abs(fwd) {
				t.Errorf("symmetry violated at vg=%v vd=%v: fwd=%v rev=%v", vg, vd, fwd, rev)
			}
		}
	}
}

func TestPFETPolarity(t *testing.T) {
	m := NewP(1)
	// In normal PFET operation vgs, vds < 0 and the drain current is
	// negative (current flows source->drain).
	ids := m.Ids(-0.7, -0.7, 300)
	if ids >= 0 {
		t.Errorf("PFET Ids(-0.7,-0.7) = %v, want negative", ids)
	}
	// Off state.
	off := m.Ids(0, -0.7, 300)
	if off >= 0 {
		t.Errorf("PFET off Ids = %v, want negative (leakage)", off)
	}
	if math.Abs(off) >= math.Abs(ids)/100 {
		t.Errorf("PFET off current %v not << on current %v", off, ids)
	}
}

func TestIdsMonotonicInVgs(t *testing.T) {
	m := NewN(1)
	for _, temp := range []float64{300, 77, 10} {
		prev := -1.0
		for vg := 0.0; vg <= 0.9; vg += 0.01 {
			id := m.Ids(vg, 0.7, temp)
			if id < prev {
				t.Fatalf("T=%v: Ids decreasing in Vgs at vg=%v: %v < %v", temp, vg, id, prev)
			}
			// Strictly increasing once out of the leakage-floor regime.
			if vg > 0.2 && id <= prev {
				t.Fatalf("T=%v: Ids flat above floor at vg=%v", temp, vg)
			}
			prev = id
		}
	}
}

func TestIdsMonotonicInVds(t *testing.T) {
	m := NewN(1)
	prev := math.Inf(-1)
	for vd := 0.0; vd <= 0.9; vd += 0.01 {
		id := m.Ids(0.7, vd, 300)
		if id < prev {
			t.Fatalf("Ids not non-decreasing in Vds at vd=%v", vd)
		}
		prev = id
	}
}

func TestConductancesPositive(t *testing.T) {
	m := NewN(1)
	for _, temp := range []float64{300, 10} {
		for _, vg := range []float64{0.0, 0.2, 0.45, 0.7} {
			for _, vd := range []float64{0.05, 0.35, 0.7} {
				_, gm, gds := m.Conductances(vg, vd, temp)
				if gm < 0 {
					t.Errorf("gm < 0 at T=%v vg=%v vd=%v: %v", temp, vg, vd, gm)
				}
				if gds < 0 {
					t.Errorf("gds < 0 at T=%v vg=%v vd=%v: %v", temp, vg, vd, gds)
				}
			}
		}
	}
}

func TestGateCapTemperature(t *testing.T) {
	m := NewN(3)
	c300 := m.GateCap(300)
	c10 := m.GateCap(10)
	if c10 >= c300 {
		t.Errorf("gate cap must be slightly lower at 10K: %v >= %v", c10, c300)
	}
	if drop := 1 - c10/c300; drop > 0.10 {
		t.Errorf("gate cap drop at 10K = %v, want < 10%%", drop)
	}
	// Sanity: single-digit fF per multi-fin device is wrong; expect ~0.1 fF/fin.
	if c300 < 1e-17 || c300 > 1e-15 {
		t.Errorf("GateCap(300K) = %v F implausible", c300)
	}
}

func TestNFinScaling(t *testing.T) {
	one := NewN(1)
	four := NewN(4)
	r := four.OnCurrent(0.7, 300) / one.OnCurrent(0.7, 300)
	if math.Abs(r-4) > 0.05 {
		t.Errorf("4-fin/1-fin on-current ratio = %v, want ~4", r)
	}
}

func TestSubthresholdSlopeMatchesIV(t *testing.T) {
	// The realized I-V curve's subthreshold slope must agree with the
	// analytic SubthresholdSwing within ~15 %.
	m := NewN(1)
	for _, temp := range []float64{300, 77} {
		vth := m.P.Vth(temp)
		v1, v2 := vth-0.15, vth-0.10
		floor := m.P.IFloor * m.P.Weff() * math.Tanh(1.5*0.05/m.P.VddRef)
		i1 := m.Ids(v1, 0.05, temp) - floor
		i2 := m.Ids(v2, 0.05, temp) - floor
		if i1 <= 0 || i2 <= 0 {
			t.Fatalf("T=%v: non-positive subthreshold currents %v %v", temp, i1, i2)
		}
		ssIV := (v2 - v1) / (math.Log10(i2) - math.Log10(i1))
		ssModel := m.P.SubthresholdSwing(temp)
		if math.Abs(ssIV-ssModel)/ssModel > 0.15 {
			t.Errorf("T=%v: I-V slope %v vs analytic swing %v", temp, ssIV, ssModel)
		}
	}
}

func TestQuickIdsFinite(t *testing.T) {
	m := NewN(2)
	f := func(vgRaw, vdRaw, tRaw uint16) bool {
		vg := float64(vgRaw)/65535*1.8 - 0.4
		vd := float64(vdRaw)/65535*1.8 - 0.9
		temp := 4 + float64(tRaw)/65535*396
		id := m.Ids(vg, vd, temp)
		return !math.IsNaN(id) && !math.IsInf(id, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickIdsSignFollowsVds(t *testing.T) {
	m := NewN(1)
	f := func(vgRaw, vdRaw uint16) bool {
		vg := float64(vgRaw) / 65535 * 0.9
		vd := float64(vdRaw)/65535*1.4 - 0.7
		id := m.Ids(vg, vd, 300)
		if vd > 1e-6 {
			return id > 0
		}
		if vd < -1e-6 {
			return id < 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickTemperatureContinuity(t *testing.T) {
	// Ids must vary smoothly with temperature: no jumps bigger than a few
	// percent per kelvin anywhere in the range.
	m := NewN(1)
	f := func(vgRaw, tRaw uint16) bool {
		vg := float64(vgRaw) / 65535 * 0.8
		temp := 10 + float64(tRaw)/65535*289
		a := m.Ids(vg, 0.7, temp)
		b := m.Ids(vg, 0.7, temp+0.5)
		if a <= 0 || b <= 0 {
			return false
		}
		return math.Abs(math.Log(b/a)) < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func modelOf(typ Type) *Model {
	if typ == PFET {
		return NewP(1)
	}
	return NewN(1)
}

func TestAnalyticDerivativesMatchNumeric(t *testing.T) {
	const h = 1e-6
	for _, m := range []*Model{NewN(2), NewP(2)} {
		for _, temp := range []float64{300, 77, 10} {
			for _, vg := range []float64{-0.2, 0, 0.2, 0.4, 0.7, -0.4, -0.7} {
				for _, vd := range []float64{-0.7, -0.3, -0.05, 0, 0.05, 0.3, 0.7} {
					ids, gm, gds := m.Conductances(vg, vd, temp)
					if got := m.Ids(vg, vd, temp); got != ids {
						t.Fatalf("Conductances current mismatch at %v,%v", vg, vd)
					}
					gmNum := (m.Ids(vg+h, vd, temp) - m.Ids(vg-h, vd, temp)) / (2 * h)
					gdsNum := (m.Ids(vg, vd+h, temp) - m.Ids(vg, vd-h, temp)) / (2 * h)
					scale := math.Abs(gmNum) + math.Abs(gdsNum) + 1e-9
					if math.Abs(gm-gmNum) > 1e-4*scale+1e-12 {
						t.Errorf("%v T=%v vg=%v vd=%v: gm analytic %v vs numeric %v", m.Type, temp, vg, vd, gm, gmNum)
					}
					if math.Abs(gds-gdsNum) > 1e-4*scale+1e-12 {
						t.Errorf("%v T=%v vg=%v vd=%v: gds analytic %v vs numeric %v", m.Type, temp, vg, vd, gds, gdsNum)
					}
				}
			}
		}
	}
}

func TestJunctionCapProportionalToGateCap(t *testing.T) {
	m := NewN(2)
	if r := m.JunctionCap(300) / m.GateCap(300); math.Abs(r-0.6) > 1e-9 {
		t.Errorf("junction/gate cap ratio %v, want 0.6", r)
	}
}

func TestWeffScaling(t *testing.T) {
	p := DefaultNParams()
	w1 := p.Weff()
	p.NFin = 3
	if r := p.Weff() / w1; math.Abs(r-3) > 1e-12 {
		t.Errorf("Weff fin scaling = %v, want 3", r)
	}
	p.NFin = 0 // clamps to 1
	if p.Weff() != w1 {
		t.Error("NFin=0 should clamp to one fin")
	}
}

func TestTempCacheConsistency(t *testing.T) {
	// Alternating temperatures must not leak cached values across calls.
	m := NewN(1)
	a1 := m.Ids(0.5, 0.5, 300)
	b1 := m.Ids(0.5, 0.5, 10)
	a2 := m.Ids(0.5, 0.5, 300)
	b2 := m.Ids(0.5, 0.5, 10)
	if a1 != a2 || b1 != b2 {
		t.Errorf("temperature cache corrupted results: %v/%v %v/%v", a1, a2, b1, b2)
	}
}
