package device

import "math"

// Model is one FinFET instance: a polarity plus a model card. A Model is
// not safe for concurrent use at different temperatures (it caches
// temperature-derived quantities); SPICE circuits instantiate one Model per
// device, which keeps usage single-threaded.
type Model struct {
	Type Type
	P    Params

	tc *tempCache
}

// NewN returns an n-FinFET with the default calibrated card and the given
// number of fins.
func NewN(nfin int) *Model {
	p := DefaultNParams()
	p.NFin = nfin
	return &Model{Type: NFET, P: p}
}

// NewP returns a p-FinFET with the default calibrated card and the given
// number of fins.
func NewP(nfin int) *Model {
	p := DefaultPParams()
	p.NFin = nfin
	return &Model{Type: PFET, P: p}
}

// ln1exp computes ln(1+exp(x)) without overflow.
func ln1exp(x float64) float64 {
	if x > 40 {
		return x
	}
	if x < -40 {
		return math.Exp(x) // ~0, keeps the derivative finite
	}
	return math.Log1p(math.Exp(x))
}

// idsMagnitude evaluates the source-referenced drain current for an n-type
// orientation with vgs >= 0 sweeps and vds >= 0. Polarity and terminal
// swapping are handled by Ids.
//
// The core is the EKV interpolation: normalized forward/reverse inversion
// charges i = ln^2(1+exp(v/2)) give an exponential subthreshold region with
// swing n*vt*ln(10), a quadratic saturation region, and a linear triode
// region, all continuous. Vertical-field mobility degradation (Theta),
// channel-length modulation (Lambda), DIBL, and the cryogenic leakage floor
// are layered on top. See derivs for the full equations with analytic
// partial derivatives.
func (m *Model) idsMagnitude(vgs, vds, tempK float64) float64 {
	f, _, _ := m.derivs(vgs, vds, tempK)
	return f
}

// Ids returns the signed drain current (conventional current into the drain
// terminal) for the given terminal voltages. For NFET devices vgs/vds are
// gate-source and drain-source voltages; for PFET the same arguments are
// accepted in circuit polarity (negative in normal operation) and mirrored
// internally. Source/drain symmetry is preserved: negative vds swaps the
// terminals.
func (m *Model) Ids(vgs, vds, tempK float64) float64 {
	sign := 1.0
	if m.Type == PFET {
		vgs, vds = -vgs, -vds
		sign = -1.0
	}
	if vds < 0 {
		// Swap source and drain: the "source" is the lower-potential end.
		return -sign * m.idsMagnitude(vgs-vds, -vds, tempK)
	}
	return sign * m.idsMagnitude(vgs, vds, tempK)
}

// Conductances returns the drain current along with gm = dIds/dVgs and
// gds = dIds/dVds at the given bias, using the analytic derivatives of the
// compact model with polarity and source/drain-swap chain rules applied.
func (m *Model) Conductances(vgs, vds, tempK float64) (ids, gm, gds float64) {
	s := 1.0
	if m.Type == PFET {
		vgs, vds = -vgs, -vds
		s = -1.0
	}
	if vds < 0 {
		f, fa, fb := m.derivs(vgs-vds, -vds, tempK)
		return -s * f, -fa, fa + fb
	}
	f, fg, fd := m.derivs(vgs, vds, tempK)
	return s * f, fg, fd
}

// GateCap returns the total gate capacitance of the device at the given
// temperature (intrinsic channel capacitance plus fringe/overlap), in
// farads. The characterizer and the SPICE engine use this as a bias-averaged
// Meyer capacitance split between gate-source and gate-drain.
func (m *Model) GateCap(tempK float64) float64 {
	p := &m.P
	c := m.cacheFor(tempK)
	w := p.Weff()
	intrinsic := p.CoxA * c.capF * w * p.L
	fringe := p.CFr * w
	return intrinsic + fringe
}

// JunctionCap returns the drain/source junction capacitance per terminal in
// farads. It is modeled as a fixed fraction of the gate capacitance, which
// is adequate for delay/energy trends.
func (m *Model) JunctionCap(tempK float64) float64 {
	return 0.6 * m.GateCap(tempK)
}

// OffCurrent returns the magnitude of the leakage current with the device
// fully off and |Vds| = vdd.
func (m *Model) OffCurrent(vdd, tempK float64) float64 {
	if m.Type == PFET {
		return -m.Ids(0, -vdd, tempK)
	}
	return m.Ids(0, vdd, tempK)
}

// OnCurrent returns the magnitude of the drive current with |Vgs| = |Vds| =
// vdd.
func (m *Model) OnCurrent(vdd, tempK float64) float64 {
	if m.Type == PFET {
		return -m.Ids(-vdd, -vdd, tempK)
	}
	return m.Ids(vdd, vdd, tempK)
}
