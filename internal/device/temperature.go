package device

import (
	"math"

	"repro/internal/constants"
)

// EffectiveTemp returns the band-tail effective temperature in kelvin.
//
// Exponential band tails in the density of states make the carrier
// statistics saturate below a critical temperature TBand: the device behaves
// as if the carrier gas never cools below that point. The smooth blend
// sqrt(T^2 + TBand^2) recovers T at room temperature (error < 1 % at 300 K
// for TBand = 35 K) and TBand as T -> 0.
func (p Params) EffectiveTemp(tempK float64) float64 {
	if tempK < 0 {
		tempK = 0
	}
	return math.Sqrt(tempK*tempK + p.TBand*p.TBand)
}

// Vth returns the threshold voltage magnitude at the given temperature. The
// threshold increases toward cryogenic temperatures (incomplete ionization
// and Fermi-level movement) and saturates below TBand.
func (p Params) Vth(tempK float64) float64 {
	teff := p.EffectiveTemp(tempK)
	return p.Vth0 + p.VthTC*(constants.RoomTemp-teff)/constants.RoomTemp
}

// SubthresholdSwing returns the subthreshold swing in V/decade at the given
// temperature. At 300 K this is ~68 mV/dec; at 10 K the band-tail effective
// temperature saturates it near 9 mV/dec instead of the Boltzmann limit's
// ~2 mV/dec, matching cryogenic FinFET measurements.
func (p Params) SubthresholdSwing(tempK float64) float64 {
	teff := p.EffectiveTemp(tempK)
	return p.N0 * constants.ThermalVoltage(teff) * math.Ln10
}

// Mobility returns the low-field effective mobility at the given temperature
// in m^2/(V*s). Phonon scattering freezes out toward low temperature
// (mu_ph ~ T^-MuExp) while surface-roughness scattering is temperature
// independent; Matthiessen's rule combines them, so the improvement
// saturates (~60 % gain at 10 K for the default card, consistent with the
// 58 % reported for 10 nm FinFETs).
func (p Params) Mobility(tempK float64) float64 {
	teff := p.EffectiveTemp(tempK)
	muPh := p.MuPh0 * math.Pow(constants.RoomTemp/teff, p.MuExp)
	return 1.0 / (1.0/muPh + 1.0/p.MuSR)
}

// GateCapFactor returns the relative gate-capacitance scaling at the given
// temperature. Shifts in the surface potential at cryogenic temperatures
// slightly reduce the effective gate capacitance, which is the mechanism
// behind the paper's Fig. 2(b) observation of slightly lower switching
// energy at 10 K.
func (p Params) GateCapFactor(tempK float64) float64 {
	teff := p.EffectiveTemp(tempK)
	return 1.0 - p.CapTC*(1.0-teff/constants.RoomTemp)
}

// thermalVoltageEff returns the band-tail-limited thermal voltage n-less
// (kB*Teff/q) used inside the current equations.
func (p Params) thermalVoltageEff(tempK float64) float64 {
	return constants.ThermalVoltage(p.EffectiveTemp(tempK))
}
