package power

import (
	"context"
	"math"
	"testing"

	"repro/internal/gsim"
	"repro/internal/netlist"
	"repro/internal/testlib"
)

// TestMeasuredActivityMatchesModel pins the ActivitySource contract: a
// zero-delay gsim run over the same seeded stimulus stream the statistical
// model draws must reproduce the model's power report (the activity maps are
// bit-identical, so the only slack allowed is float summation noise).
func TestMeasuredActivityMatchesModel(t *testing.T) {
	ctx := context.Background()
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	nl := demoNetlist(used)

	const rounds, seed = 8, 3
	model, err := Analyze(ctx, nl, lib, Options{ClockPeriod: 1e-9, SimRounds: rounds, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	m, err := gsim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gsim.NewLevelized(m).Run(ctx, m.RandomVectors(rounds*64, seed))
	if err != nil {
		t.Fatal(err)
	}
	measured, err := Analyze(ctx, nl, lib, Options{ClockPeriod: 1e-9, Activity: res.Activity()})
	if err != nil {
		t.Fatal(err)
	}

	if measured.Leakage != model.Leakage {
		t.Errorf("leakage: measured %v, model %v", measured.Leakage, model.Leakage)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"internal", measured.Internal, model.Internal},
		{"switching", measured.Switching, model.Switching},
	} {
		if math.Abs(c.got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("%s: measured %v, model %v", c.name, c.got, c.want)
		}
	}
}

// TestGlitchPowerExceedsZeroDelay is the acceptance fixture: on the hazard
// circuit y = XOR(a, INV(INV(a))), event-driven measured activity sees the
// glitch pulses a zero-delay model provably cannot, so the measured dynamic
// power must come out strictly higher.
func TestGlitchPowerExceedsZeroDelay(t *testing.T) {
	ctx := context.Background()
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	nl := netlist.New("glitch", used)
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"y"}
	for _, g := range []struct {
		cell string
		in   []string
		out  string
	}{
		{"INVx1", []string{"a"}, "n1"},
		{"INVx1", []string{"n1"}, "n2"},
		{"XOR2x1", []string{"a", "n2"}, "y"},
	} {
		if err := nl.AddGate(g.cell, g.in, g.out); err != nil {
			t.Fatal(err)
		}
	}
	m, err := gsim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	// A clock-like input: a toggles every vector, the worst case for hazards.
	vectors := make([]gsim.Vector, 256)
	for v := range vectors {
		vectors[v] = gsim.Vector{v%2 == 1}
	}
	zero, err := gsim.NewLevelized(m).Run(ctx, vectors)
	if err != nil {
		t.Fatal(err)
	}
	glitchy, err := gsim.NewEvent(m, gsim.EventOptions{}).Run(ctx, vectors)
	if err != nil {
		t.Fatal(err)
	}
	repZero, err := Analyze(ctx, nl, lib, Options{ClockPeriod: 1e-9, Activity: zero.Activity()})
	if err != nil {
		t.Fatal(err)
	}
	repGlitch, err := Analyze(ctx, nl, lib, Options{ClockPeriod: 1e-9, Activity: glitchy.Activity()})
	if err != nil {
		t.Fatal(err)
	}
	zeroDyn := repZero.Internal + repZero.Switching
	glitchDyn := repGlitch.Internal + repGlitch.Switching
	if glitchDyn <= zeroDyn {
		t.Errorf("glitch-aware dynamic power %v not above zero-delay %v", glitchDyn, zeroDyn)
	}
	if repGlitch.Leakage != repZero.Leakage {
		t.Errorf("leakage must not depend on activity: %v vs %v", repGlitch.Leakage, repZero.Leakage)
	}
}
