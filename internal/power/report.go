package power

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// CellPower attributes power to one gate instance.
type CellPower struct {
	Gate     string
	Cell     string
	Leakage  float64
	Internal float64
	// Switching charged to the gate's output net.
	Switching float64
}

// Total returns the instance's combined power.
func (c *CellPower) Total() float64 { return c.Leakage + c.Internal + c.Switching }

// Attribute computes the per-instance power breakdown (the "report_power
// -cell" view of a signoff tool). The sum over instances equals the
// Report's totals except for primary-input net switching, which has no
// owning gate.
func Attribute(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, opt Options) ([]CellPower, error) {
	if opt.ClockPeriod <= 0 {
		return nil, fmt.Errorf("power: clock period must be positive")
	}
	if opt.SimRounds == 0 {
		opt.SimRounds = 8
	}
	timing, err := sta.Analyze(ctx, nl, lib, opt.STA)
	if err != nil {
		return nil, err
	}
	rates, err := nl.ToggleRates(opt.SimRounds, opt.Seed)
	if err != nil {
		return nil, err
	}
	freq := 1.0 / opt.ClockPeriod
	vdd := lib.Vdd
	out := make([]CellPower, 0, len(nl.Gates))
	for _, g := range nl.Gates {
		lc := lib.FindCell(g.Cell)
		if lc == nil {
			return nil, fmt.Errorf("power: cell %s not in library", g.Cell)
		}
		def := nl.Cell(g.Cell)
		cp := CellPower{Gate: g.Name, Cell: g.Cell, Leakage: lc.LeakagePower}
		alpha := rates[g.Output]
		load := timing.Load[g.Output]
		if alpha > 0 {
			outPin := def.Outputs[0]
			var eSum float64
			arcs := 0
			for i, in := range g.Inputs {
				pw := lc.Power(outPin, def.Inputs[i])
				if pw == nil {
					continue
				}
				slew := timing.Slew[in]
				eSum += 0.5 * (pw.RisePower.Lookup(slew, load) + pw.FallPower.Lookup(slew, load))
				arcs++
			}
			if arcs > 0 {
				cp.Internal = alpha * freq * (eSum / float64(arcs))
			}
			cp.Switching = alpha * freq * 0.5 * load * vdd * vdd
		}
		out = append(out, cp)
	}
	return out, nil
}

// WriteTopConsumers prints the n highest-power instances as a signoff-style
// table.
func WriteTopConsumers(w io.Writer, cells []CellPower, n int) error {
	sorted := append([]CellPower(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total() > sorted[j].Total() })
	if n > len(sorted) {
		n = len(sorted)
	}
	if _, err := fmt.Fprintf(w, "%-8s %-12s %12s %12s %12s %12s\n",
		"inst", "cell", "leak(W)", "internal(W)", "switch(W)", "total(W)"); err != nil {
		return err
	}
	for _, c := range sorted[:n] {
		if _, err := fmt.Fprintf(w, "%-8s %-12s %12.4g %12.4g %12.4g %12.4g\n",
			c.Gate, c.Cell, c.Leakage, c.Internal, c.Switching, c.Total()); err != nil {
			return err
		}
	}
	return nil
}
