package power

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/liberty"
	"repro/internal/netlist"
)

// CellPower attributes power to one gate instance.
type CellPower struct {
	Gate     string
	Cell     string
	Leakage  float64
	Internal float64
	// Switching charged to the gate's output net.
	Switching float64
}

// Total returns the instance's combined power.
func (c *CellPower) Total() float64 { return c.Leakage + c.Internal + c.Switching }

// Attribute computes the per-instance power breakdown (the "report_power
// -cell" view of a signoff tool). The sum over instances equals the
// Report's totals except for primary-input net switching, which has no
// owning gate.
func Attribute(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, opt Options) ([]CellPower, error) {
	_, cells, err := AnalyzeFull(ctx, nl, lib, opt)
	return cells, err
}

// ClassPower aggregates instance power by library cell (the "cell class"
// view: all NAND2x1 instances as one row). The compact form the QoR
// baseline persists for cross-run power attribution.
type ClassPower struct {
	Cell      string
	Count     int
	Leakage   float64
	Internal  float64
	Switching float64
}

// Total returns the class's combined power.
func (c *ClassPower) Total() float64 { return c.Leakage + c.Internal + c.Switching }

// GroupByCell folds per-instance attributions into per-cell-class rows,
// sorted by cell name. Accumulation follows the instance (gate) order, so
// the grouped sums are as deterministic as the input.
func GroupByCell(cells []CellPower) []ClassPower {
	idx := make(map[string]int)
	var out []ClassPower
	for i := range cells {
		cp := &cells[i]
		j, ok := idx[cp.Cell]
		if !ok {
			j = len(out)
			idx[cp.Cell] = j
			out = append(out, ClassPower{Cell: cp.Cell})
		}
		out[j].Count++
		out[j].Leakage += cp.Leakage
		out[j].Internal += cp.Internal
		out[j].Switching += cp.Switching
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}

// WriteTopConsumers prints the n highest-power instances as a signoff-style
// table.
func WriteTopConsumers(w io.Writer, cells []CellPower, n int) error {
	sorted := append([]CellPower(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total() > sorted[j].Total() })
	if n > len(sorted) {
		n = len(sorted)
	}
	if _, err := fmt.Fprintf(w, "%-8s %-12s %12s %12s %12s %12s\n",
		"inst", "cell", "leak(W)", "internal(W)", "switch(W)", "total(W)"); err != nil {
		return err
	}
	for _, c := range sorted[:n] {
		if _, err := fmt.Fprintf(w, "%-8s %-12s %12.4g %12.4g %12.4g %12.4g\n",
			c.Gate, c.Cell, c.Leakage, c.Internal, c.Switching, c.Total()); err != nil {
			return err
		}
	}
	return nil
}
