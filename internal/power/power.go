// Package power implements signoff-style power analysis of mapped netlists:
// leakage, internal, and net-switching power, split exactly the way the
// paper's Fig. 2(c) reports them. Switching activity comes from
// random-vector simulation of the netlist; slews and loads come from STA.
package power

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sta"
)

// ActivitySource supplies per-net switching activity (toggles per cycle,
// keyed by net name) for a netlist, replacing the built-in random-vector
// statistical model. internal/gsim's measured Result.Activity satisfies it
// structurally, so simulated vector traces — glitches included — can drive
// the same power report.
type ActivitySource interface {
	NetActivity(nl *netlist.Netlist) (map[string]float64, error)
}

// Options configures a power run.
type Options struct {
	ClockPeriod float64 // cycle time used to convert per-cycle energy to watts
	SimRounds   int     // 64-vector rounds for activity extraction (default 8)
	Seed        int64
	STA         sta.Options
	// Activity, when non-nil, overrides the random-vector activity model
	// (SimRounds/Seed are then unused). Nets absent from the source are
	// treated as quiet.
	Activity ActivitySource
}

// Report is the power breakdown in watts.
type Report struct {
	Leakage   float64
	Internal  float64
	Switching float64
	// ClockPeriod echoes the normalization period used.
	ClockPeriod float64
}

// Total returns the summed power.
func (r *Report) Total() float64 { return r.Leakage + r.Internal + r.Switching }

// LeakageShare returns the leakage fraction of total power (the quantity
// the paper shows collapsing from ~15 % at 300 K to ~0.003 % at 10 K).
func (r *Report) LeakageShare() float64 {
	t := r.Total()
	if t == 0 {
		return 0
	}
	return r.Leakage / t
}

// Analyze computes the three-way power split of a mapped netlist.
func Analyze(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, opt Options) (*Report, error) {
	rep, _, err := AnalyzeFull(ctx, nl, lib, opt)
	return rep, err
}

// AnalyzeFull computes the power totals and the per-instance attribution in
// one STA + activity pass. The Report sums are accumulated in the same
// deterministic order as ever (gates for leakage/internal, sorted nets for
// switching), so totals are bit-identical whichever entry point is used —
// the QoR regression gate compares them exactly.
func AnalyzeFull(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, opt Options) (*Report, []CellPower, error) {
	ctx, span := obs.Start(ctx, "power.analyze")
	span.SetAttr("design", nl.Name)
	defer span.End()
	obs.C("power.analyses").Inc()
	if opt.ClockPeriod <= 0 {
		return nil, nil, fmt.Errorf("power: clock period must be positive")
	}
	if opt.SimRounds == 0 {
		opt.SimRounds = 8
	}
	timing, err := sta.Analyze(ctx, nl, lib, opt.STA)
	if err != nil {
		return nil, nil, err
	}
	var rates map[string]float64
	if opt.Activity != nil {
		rates, err = opt.Activity.NetActivity(nl)
		if err != nil {
			return nil, nil, fmt.Errorf("power: activity source: %w", err)
		}
		span.SetAttr("activity", "measured")
		obs.C("power.measured_activity").Inc()
	} else {
		rates, err = nl.ToggleRates(opt.SimRounds, opt.Seed)
		if err != nil {
			return nil, nil, err
		}
	}
	rep := &Report{ClockPeriod: opt.ClockPeriod}
	freq := 1.0 / opt.ClockPeriod
	vdd := lib.Vdd
	cells := make([]CellPower, 0, len(nl.Gates))
	for _, g := range nl.Gates {
		lc := lib.FindCell(g.Cell)
		if lc == nil {
			return nil, nil, fmt.Errorf("power: cell %s not in library", g.Cell)
		}
		def := nl.Cell(g.Cell)
		cp := CellPower{Gate: g.Name, Cell: g.Cell, Leakage: lc.LeakagePower}
		rep.Leakage += cp.Leakage

		// Internal power: per output-net toggle, the average of rise/fall
		// internal energy at the gate's operating point, attributed to the
		// worst-slew input arc (PrimeTime-style simplification).
		alpha := rates[g.Output]
		if alpha > 0 {
			load := timing.Load[g.Output]
			outPin := def.Outputs[0]
			var eSum float64
			var arcs int
			for i, in := range g.Inputs {
				pw := lc.Power(outPin, def.Inputs[i])
				if pw == nil {
					continue
				}
				slew := timing.Slew[in]
				eSum += 0.5 * (pw.RisePower.Lookup(slew, load) + pw.FallPower.Lookup(slew, load))
				arcs++
			}
			if arcs > 0 {
				cp.Internal = alpha * freq * (eSum / float64(arcs))
				rep.Internal += cp.Internal
			}
			// Switching charged to the gate's output net (the Report's
			// switching total is summed separately below so primary-input
			// nets, which no gate owns, are included too).
			cp.Switching = alpha * freq * 0.5 * load * vdd * vdd
		}
		cells = append(cells, cp)
	}
	// Net switching power: alpha * f * 1/2 * C * Vdd^2 over driven nets.
	// Nets are visited in sorted order so the floating-point sum is
	// bit-reproducible run to run (map order would perturb the last ULP,
	// which the QoR regression gate compares exactly).
	nets := make([]string, 0, len(timing.Load))
	for net := range timing.Load {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	for _, net := range nets {
		alpha := rates[net]
		if alpha == 0 {
			continue
		}
		rep.Switching += alpha * freq * 0.5 * timing.Load[net] * vdd * vdd
	}
	return rep, cells, nil
}
