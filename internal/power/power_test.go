package power

import (
	"context"
	"testing"

	"repro/internal/netlist"
	"repro/internal/pdk"
	"repro/internal/testlib"
)

var catalog = pdk.Catalog()

func demoNetlist(used []*pdk.Cell) *netlist.Netlist {
	nl := netlist.New("demo", used)
	nl.Inputs = []string{"a", "b", "c"}
	nl.AddGate("NAND2x1", []string{"a", "b"}, "n1")
	nl.AddGate("XOR2x1", []string{"n1", "c"}, "n2")
	nl.AddGate("INVx1", []string{"n2"}, "n3")
	nl.Outputs = []string{"y"}
	nl.Aliases["y"] = "n3"
	return nl
}

func TestPowerBreakdownPositive(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	rep, err := Analyze(context.Background(), demoNetlist(used), lib, Options{ClockPeriod: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leakage <= 0 || rep.Internal <= 0 || rep.Switching <= 0 {
		t.Errorf("breakdown must be positive: %+v", rep)
	}
	if rep.Total() <= rep.Leakage {
		t.Error("total must exceed leakage alone")
	}
	if s := rep.LeakageShare(); s <= 0 || s >= 1 {
		t.Errorf("leakage share = %v", s)
	}
}

func TestCryoLeakageCollapse(t *testing.T) {
	lib300, used := testlib.Build(catalog, testlib.Names(), 300)
	lib10, _ := testlib.Build(catalog, testlib.Names(), 10)
	r300, err := Analyze(context.Background(), demoNetlist(used), lib300, Options{ClockPeriod: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Analyze(context.Background(), demoNetlist(used), lib10, Options{ClockPeriod: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if r10.Leakage >= r300.Leakage/100 {
		t.Errorf("cryo leakage %v not << room leakage %v", r10.Leakage, r300.Leakage)
	}
	if r10.LeakageShare() >= r300.LeakageShare() {
		t.Error("leakage share must collapse at 10K")
	}
}

func TestFasterClockMoreDynamicPower(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	slow, err := Analyze(context.Background(), demoNetlist(used), lib, Options{ClockPeriod: 2e-9})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Analyze(context.Background(), demoNetlist(used), lib, Options{ClockPeriod: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Switching <= slow.Switching || fast.Internal <= slow.Internal {
		t.Error("halving the period must double dynamic power")
	}
	if fast.Leakage != slow.Leakage {
		t.Error("leakage must not depend on clock period")
	}
}

func TestInvalidPeriodRejected(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	if _, err := Analyze(context.Background(), demoNetlist(used), lib, Options{}); err == nil {
		t.Error("zero clock period accepted")
	}
}

func TestMoreGatesMoreLeakage(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	small := demoNetlist(used)
	big := demoNetlist(used)
	big.AddGate("INVx1", []string{"n3"}, "n4")
	big.AddGate("INVx1", []string{"n4"}, "n5")
	rs, err := Analyze(context.Background(), small, lib, Options{ClockPeriod: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Analyze(context.Background(), big, lib, Options{ClockPeriod: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Leakage <= rs.Leakage {
		t.Error("more gates must leak more")
	}
}

func TestAttributeSumsToReport(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	nl := demoNetlist(used)
	opt := Options{ClockPeriod: 1e-9, Seed: 4}
	rep, err := Analyze(context.Background(), nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Attribute(context.Background(), nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != nl.NumGates() {
		t.Fatalf("attributed %d instances, want %d", len(cells), nl.NumGates())
	}
	var leak, internal, sw float64
	for _, c := range cells {
		leak += c.Leakage
		internal += c.Internal
		sw += c.Switching
	}
	if rel(leak, rep.Leakage) > 1e-9 {
		t.Errorf("leakage: attributed %v vs report %v", leak, rep.Leakage)
	}
	if rel(internal, rep.Internal) > 1e-9 {
		t.Errorf("internal: attributed %v vs report %v", internal, rep.Internal)
	}
	// Switching: the report also counts primary-input nets, so the
	// attributed total must be <= and close.
	if sw > rep.Switching {
		t.Errorf("attributed switching %v exceeds report %v", sw, rep.Switching)
	}
	if sw < 0.3*rep.Switching {
		t.Errorf("attributed switching %v implausibly far below report %v", sw, rep.Switching)
	}
}

func TestGroupByCell(t *testing.T) {
	cells := []CellPower{
		{Gate: "g1", Cell: "INVx1", Leakage: 1, Internal: 2, Switching: 3},
		{Gate: "g2", Cell: "NAND2x1", Leakage: 10, Internal: 20, Switching: 30},
		{Gate: "g3", Cell: "INVx1", Leakage: 1, Internal: 2, Switching: 3},
	}
	classes := GroupByCell(cells)
	if len(classes) != 2 {
		t.Fatalf("want 2 classes, got %+v", classes)
	}
	// Sorted by cell name.
	if classes[0].Cell != "INVx1" || classes[1].Cell != "NAND2x1" {
		t.Errorf("class order wrong: %+v", classes)
	}
	inv := classes[0]
	if inv.Count != 2 || inv.Leakage != 2 || inv.Internal != 4 || inv.Switching != 6 {
		t.Errorf("INVx1 fold wrong: %+v", inv)
	}
	if inv.Total() != 12 {
		t.Errorf("Total = %g, want 12", inv.Total())
	}
	if nand := classes[1]; nand.Count != 1 || nand.Total() != 60 {
		t.Errorf("NAND2x1 fold wrong: %+v", nand)
	}
	if got := GroupByCell(nil); len(got) != 0 {
		t.Errorf("empty input: %+v", got)
	}
}

func TestWriteTopConsumers(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	cells, err := Attribute(context.Background(), demoNetlist(used), lib, Options{ClockPeriod: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	var sb stringsBuilder
	if err := WriteTopConsumers(&sb, cells, 2); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	if !containsStr(s, "inst") || !containsStr(s, "XOR2x1") {
		t.Errorf("report missing expected content:\n%s", s)
	}
	// Header + 2 rows.
	lines := 0
	for _, c := range s {
		if c == '\n' {
			lines++
		}
	}
	if lines != 3 {
		t.Errorf("report has %d lines, want 3", lines)
	}
}

type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *stringsBuilder) String() string              { return string(s.b) }

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func rel(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}
