package sta

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/netlist"
)

// PathArc is one hop of a timing path: the cell arc that propagates the
// worst arrival from one net to the next.
type PathArc struct {
	FromNet, ToNet string
	Gate, Cell     string  // empty for the primary-input launch point
	FromPin        string  // liberty input pin FromNet enters the gate through
	DelaySec       float64 // incremental arc delay (0 at the launch point)
	ArrivalSec     float64 // cumulative arrival at ToNet
	SlewSec        float64 // transition time at ToNet
	LoadF          float64 // capacitive load on ToNet
}

// Path is one endpoint's worst timing path, launch point first.
type Path struct {
	Endpoint   string // primary-output port name
	ArrivalSec float64
	SlackSec   float64 // against the clock period given to TopPaths
	Arcs       []PathArc
}

// TopPaths returns the K worst endpoint paths ranked by arrival time
// (PrimeTime's report_timing -max_paths K with one path per endpoint),
// each with its per-arc delay/slew breakdown. K <= 0 or K beyond the
// endpoint count returns every endpoint. Ties rank by endpoint name so the
// report is stable.
func (r *Result) TopPaths(k int, clockPeriod float64) []Path {
	type endpoint struct {
		port, net string
		arr       float64
	}
	eps := make([]endpoint, 0, len(r.nl.Outputs))
	for _, out := range r.nl.Outputs {
		net := r.nl.Resolve(out)
		eps = append(eps, endpoint{port: out, net: net, arr: r.Arrival[net]})
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].arr != eps[j].arr {
			return eps[i].arr > eps[j].arr
		}
		return eps[i].port < eps[j].port
	})
	if k > 0 && k < len(eps) {
		eps = eps[:k]
	}

	driver := make(map[string]*netlist.Gate, len(r.nl.Gates))
	for i := range r.nl.Gates {
		driver[r.nl.Gates[i].Output] = &r.nl.Gates[i]
	}

	paths := make([]Path, 0, len(eps))
	for _, ep := range eps {
		p := Path{Endpoint: ep.port, ArrivalSec: ep.arr, SlackSec: clockPeriod - ep.arr}
		// Walk the stored worst-predecessor chain back to the launch point,
		// then reverse into launch-first order.
		var chain []string
		for net := ep.net; net != ""; net = r.prev[net] {
			chain = append(chain, net)
		}
		for i := len(chain) - 1; i >= 0; i-- {
			net := chain[i]
			arc := PathArc{
				ToNet:      net,
				ArrivalSec: r.Arrival[net],
				SlewSec:    r.Slew[net],
				LoadF:      r.Load[net],
			}
			if i < len(chain)-1 {
				arc.FromNet = chain[i+1]
				arc.DelaySec = r.Arrival[net] - r.Arrival[arc.FromNet]
			}
			if g := driver[net]; g != nil {
				arc.Gate, arc.Cell = g.Name, g.Cell
				// Name the liberty arc: the input pin FromNet drives.
				if def := r.nl.Cell(g.Cell); def != nil && arc.FromNet != "" {
					for pi, in := range g.Inputs {
						if in == arc.FromNet && pi < len(def.Inputs) {
							arc.FromPin = def.Inputs[pi]
							break
						}
					}
				}
			}
			p.Arcs = append(p.Arcs, arc)
		}
		paths = append(paths, p)
	}
	return paths
}

// WritePathReport renders the top-K paths in a report_timing-style text
// block: one header line per endpoint, one row per arc.
func WritePathReport(w io.Writer, paths []Path) error {
	for i, p := range paths {
		status := "MET"
		if p.SlackSec < 0 {
			status = "VIOLATED"
		}
		if _, err := fmt.Fprintf(w, "path %d: endpoint %s  arrival %.2f ps  slack %.2f ps  (%s)\n",
			i+1, p.Endpoint, p.ArrivalSec*1e12, p.SlackSec*1e12, status); err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-16s %-14s %-12s %-5s %9s %10s %8s %8s\n",
			"net", "gate", "cell", "pin", "delay(ps)", "arrive(ps)", "slew(ps)", "load(fF)")
		for _, a := range p.Arcs {
			gate, cell := a.Gate, a.Cell
			if gate == "" {
				gate, cell = "<input>", "-"
			}
			pin := a.FromPin
			if pin == "" {
				pin = "-"
			}
			fmt.Fprintf(w, "  %-16s %-14s %-12s %-5s %9.2f %10.2f %8.2f %8.3f\n",
				a.ToNet, gate, cell, pin, a.DelaySec*1e12, a.ArrivalSec*1e12,
				a.SlewSec*1e12, a.LoadF*1e15)
		}
	}
	return nil
}
