package sta

import (
	"context"
	"testing"

	"repro/internal/netlist"
	"repro/internal/pdk"
	"repro/internal/testlib"
)

var catalog = pdk.Catalog()

func TestInverterChainDelayAccumulates(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	delays := make([]float64, 0, 3)
	for _, n := range []int{1, 2, 4} {
		nl := netlist.New("chain", used)
		nl.Inputs = []string{"a"}
		prev := "a"
		for i := 0; i < n; i++ {
			out := "n" + string(rune('0'+i))
			if err := nl.AddGate("INVx1", []string{prev}, out); err != nil {
				t.Fatal(err)
			}
			prev = out
		}
		nl.Outputs = []string{"y"}
		nl.Aliases["y"] = prev
		res, err := Analyze(context.Background(), nl, lib, Options{})
		if err != nil {
			t.Fatal(err)
		}
		delays = append(delays, res.CriticalDelay)
	}
	if !(delays[0] < delays[1] && delays[1] < delays[2]) {
		t.Errorf("chain delays not increasing: %v", delays)
	}
	// Roughly linear: 4-stage should be close to 4x the 1-stage.
	if r := delays[2] / delays[0]; r < 2.5 || r > 6 {
		t.Errorf("4-stage/1-stage delay ratio %v, want ~4", r)
	}
}

func TestFanoutLoadIncreasesDelay(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	build := func(fanout int) float64 {
		nl := netlist.New("fan", used)
		nl.Inputs = []string{"a"}
		nl.AddGate("INVx1", []string{"a"}, "n0")
		for i := 0; i < fanout; i++ {
			nl.AddGate("INVx1", []string{"n0"}, "s"+string(rune('0'+i)))
		}
		nl.Outputs = []string{"y"}
		nl.Aliases["y"] = "n0"
		res, err := Analyze(context.Background(), nl, lib, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.CriticalDelay
	}
	if d1, d8 := build(1), build(8); d8 <= d1 {
		t.Errorf("fanout-8 delay %v not above fanout-1 delay %v", d8, d1)
	}
}

func TestCriticalPathTraversal(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	nl := netlist.New("path", used)
	nl.Inputs = []string{"a", "b"}
	nl.AddGate("INVx1", []string{"a"}, "n1")
	nl.AddGate("INVx1", []string{"n1"}, "n2")
	nl.AddGate("NAND2x1", []string{"n2", "b"}, "n3")
	nl.Outputs = []string{"y"}
	nl.Aliases["y"] = "n3"
	res, err := Analyze(context.Background(), nl, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The critical path must run through the two-inverter branch.
	if len(res.CriticalPath) != 4 {
		t.Fatalf("critical path = %v", res.CriticalPath)
	}
	want := []string{"n3", "n2", "n1", "a"}
	for i, net := range want {
		if res.CriticalPath[i] != net {
			t.Errorf("path[%d] = %s, want %s", i, res.CriticalPath[i], net)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	nl := netlist.New("bad", used)
	nl.Inputs = []string{"a"}
	nl.AddGate("INVx1", []string{"ghost"}, "n1")
	nl.Outputs = []string{"y"}
	nl.Aliases["y"] = "n1"
	if _, err := Analyze(context.Background(), nl, lib, Options{}); err == nil {
		t.Error("missing arrival not detected")
	}
	// Cell absent from the library.
	nl2 := netlist.New("bad2", catalog)
	nl2.Inputs = []string{"a"}
	nl2.AddGate("DLY4x1", []string{"a"}, "n1")
	nl2.Outputs = []string{"y"}
	nl2.Aliases["y"] = "n1"
	if _, err := Analyze(context.Background(), nl2, lib, Options{}); err == nil {
		t.Error("unknown library cell not detected")
	}
}

func TestSlacks(t *testing.T) {
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	nl := netlist.New("slack", used)
	nl.Inputs = []string{"a", "b"}
	nl.AddGate("INVx1", []string{"a"}, "n1")
	nl.AddGate("INVx1", []string{"n1"}, "n2")
	nl.AddGate("NAND2x1", []string{"n2", "b"}, "n3")
	nl.Outputs = []string{"y"}
	nl.Aliases["y"] = "n3"
	res, err := Analyze(context.Background(), nl, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	period := res.CriticalDelay * 1.5
	slacks := res.Slacks(period)
	// The long branch ("a" through two inverters) must have less slack
	// than the short branch ("b").
	if slacks["a"] >= slacks["b"] {
		t.Errorf("slack(a)=%v should be below slack(b)=%v", slacks["a"], slacks["b"])
	}
	// Critical output slack = period - critical delay.
	want := period - res.CriticalDelay
	if got := slacks["n3"]; mathAbs(got-want) > 1e-15 {
		t.Errorf("output slack %v, want %v", got, want)
	}
	if ws := res.WorstSlack(period); ws < 0 {
		t.Errorf("worst slack %v negative at a relaxed period", ws)
	}
	// Tight clock must create violations.
	if ws := res.WorstSlack(res.CriticalDelay / 2); ws >= 0 {
		t.Errorf("worst slack %v should be negative at half the critical period", ws)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
