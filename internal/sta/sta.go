// Package sta implements static timing analysis over liberty NLDM tables:
// topological arrival-time and slew propagation with per-net capacitive
// loads, reporting the critical path. Together with internal/power it plays
// the role of the paper's Synopsys PrimeTime signoff step.
package sta

import (
	"context"
	"fmt"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Options configures an STA run.
type Options struct {
	InputSlew float64 // transition time assumed at primary inputs (default 10 ps)
	OutputCap float64 // load added to primary-output nets (default 1 fF)
	WireCap   float64 // extra capacitance per fanout connection (default 0.1 fF)
}

// Result holds the analysis outcome.
type Result struct {
	// CriticalDelay is the worst arrival time over all primary outputs.
	CriticalDelay float64
	// Arrival and Slew are per-net worst-case values.
	Arrival map[string]float64
	Slew    map[string]float64
	// Load is the capacitive load per net.
	Load map[string]float64
	// CriticalPath lists the nets of the worst path, output first.
	CriticalPath []string

	nl   *netlist.Netlist
	lib  *liberty.Library
	opt  Options
	prev map[string]string // net -> worst-path predecessor net
}

// Analyze runs STA on a mapped netlist against its characterized library.
func Analyze(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, opt Options) (*Result, error) {
	_, span := obs.Start(ctx, "sta.analyze")
	span.SetAttr("design", nl.Name)
	span.SetAttr("gates", nl.NumGates())
	defer span.End()
	obs.C("sta.analyses").Inc()
	if opt.InputSlew == 0 {
		opt.InputSlew = 10e-12
	}
	if opt.OutputCap == 0 {
		opt.OutputCap = 1e-15
	}
	if opt.WireCap == 0 {
		opt.WireCap = 0.1e-15
	}
	res := &Result{
		Arrival: make(map[string]float64),
		Slew:    make(map[string]float64),
		Load:    make(map[string]float64),
	}
	// Net loads: sum of load-pin capacitances plus wire estimate.
	loads := make(map[string]float64)
	for _, g := range nl.Gates {
		lc := lib.FindCell(g.Cell)
		if lc == nil {
			return nil, fmt.Errorf("sta: cell %s not in library %s", g.Cell, lib.Name)
		}
		def := nl.Cell(g.Cell)
		for i, net := range g.Inputs {
			pin := lc.FindPin(def.Inputs[i])
			if pin == nil {
				return nil, fmt.Errorf("sta: cell %s pin %s missing", g.Cell, def.Inputs[i])
			}
			loads[net] += pin.Cap + opt.WireCap
		}
	}
	for _, out := range nl.Outputs {
		loads[nl.Resolve(out)] += opt.OutputCap
	}
	res.Load = loads

	prev := make(map[string]string) // net -> worst-path predecessor net
	for _, in := range nl.Inputs {
		res.Arrival[in] = 0
		res.Slew[in] = opt.InputSlew
	}
	arcsEvaluated := 0
	for _, g := range nl.Gates {
		lc := lib.FindCell(g.Cell)
		def := nl.Cell(g.Cell)
		outPin := def.Outputs[0]
		load := loads[g.Output]
		worstArr, worstSlew := 0.0, opt.InputSlew
		worstFrom := ""
		for i, net := range g.Inputs {
			tm := lc.Timing(outPin, def.Inputs[i])
			if tm == nil {
				return nil, fmt.Errorf("sta: cell %s missing arc %s->%s", g.Cell, def.Inputs[i], outPin)
			}
			inArr, ok := res.Arrival[net]
			if !ok {
				return nil, fmt.Errorf("sta: net %s has no arrival (gate %s)", net, g.Name)
			}
			inSlew := res.Slew[net]
			arcsEvaluated++
			d := tm.CellRise.Lookup(inSlew, load)
			if f := tm.CellFall.Lookup(inSlew, load); f > d {
				d = f
			}
			tr := tm.RiseTrans.Lookup(inSlew, load)
			if f := tm.FallTrans.Lookup(inSlew, load); f > tr {
				tr = f
			}
			if arr := inArr + d; arr > worstArr {
				worstArr = arr
				worstFrom = net
			}
			if tr > worstSlew {
				worstSlew = tr
			}
		}
		res.Arrival[g.Output] = worstArr
		res.Slew[g.Output] = worstSlew
		prev[g.Output] = worstFrom
	}
	// Critical output.
	worstNet := ""
	for _, out := range nl.Outputs {
		net := nl.Resolve(out)
		arr, ok := res.Arrival[net]
		if !ok {
			return nil, fmt.Errorf("sta: output %s undriven", out)
		}
		if arr >= res.CriticalDelay {
			res.CriticalDelay = arr
			worstNet = net
		}
	}
	for net := worstNet; net != ""; net = prev[net] {
		res.CriticalPath = append(res.CriticalPath, net)
	}
	obs.C("sta.arcs_evaluated").Add(int64(arcsEvaluated))
	obs.C("sta.nets_propagated").Add(int64(len(res.Arrival)))
	obs.H("sta.critical_path_nets").Observe(float64(len(res.CriticalPath)))
	obs.H("sta.critical_delay_seconds").Observe(res.CriticalDelay)
	span.SetAttr("critical_ps", res.CriticalDelay*1e12)
	span.SetAttr("arcs", arcsEvaluated)
	res.nl, res.lib, res.opt, res.prev = nl, lib, opt, prev
	return res, nil
}

// Slacks computes per-net slack against the given clock period: the
// backward-propagated required time minus the arrival time. Negative slack
// marks a timing violation.
func (r *Result) Slacks(clockPeriod float64) map[string]float64 {
	obs.C("sta.slack_queries").Inc()
	nl, lib := r.nl, r.lib
	required := make(map[string]float64, len(r.Arrival))
	for net := range r.Arrival {
		required[net] = clockPeriod
	}
	// Walk gates in reverse topological order, tightening input required
	// times through each arc's delay at the gate's operating point.
	for gi := len(nl.Gates) - 1; gi >= 0; gi-- {
		g := nl.Gates[gi]
		lc := lib.FindCell(g.Cell)
		def := nl.Cell(g.Cell)
		outPin := def.Outputs[0]
		load := r.Load[g.Output]
		outReq := required[g.Output]
		for i, net := range g.Inputs {
			tm := lc.Timing(outPin, def.Inputs[i])
			if tm == nil {
				continue
			}
			inSlew := r.Slew[net]
			d := tm.CellRise.Lookup(inSlew, load)
			if f := tm.CellFall.Lookup(inSlew, load); f > d {
				d = f
			}
			if req := outReq - d; req < required[net] {
				required[net] = req
			}
		}
	}
	slacks := make(map[string]float64, len(r.Arrival))
	for net, arr := range r.Arrival {
		slacks[net] = required[net] - arr
	}
	return slacks
}

// WorstSlack returns the minimum slack over all nets for the given clock
// period.
func (r *Result) WorstSlack(clockPeriod float64) float64 {
	worst := clockPeriod
	for _, s := range r.Slacks(clockPeriod) {
		if s < worst {
			worst = s
		}
	}
	return worst
}
