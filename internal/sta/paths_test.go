package sta

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/testlib"
)

// pathsFixture: two endpoints with different depths, so the path ranking
// has something to order. y1 ends a 3-gate chain, y2 a 1-gate chain.
func pathsFixture(t *testing.T) *Result {
	t.Helper()
	lib, used := testlib.Build(catalog, testlib.Names(), 300)
	nl := netlist.New("paths", used)
	nl.Inputs = []string{"a", "b"}
	nl.AddGate("INVx1", []string{"a"}, "n1")
	nl.AddGate("INVx1", []string{"n1"}, "n2")
	nl.AddGate("NAND2x1", []string{"n2", "b"}, "n3")
	nl.AddGate("INVx1", []string{"b"}, "n4")
	nl.Outputs = []string{"y1", "y2"}
	nl.Aliases["y1"] = "n3"
	nl.Aliases["y2"] = "n4"
	res, err := Analyze(context.Background(), nl, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTopPaths(t *testing.T) {
	res := pathsFixture(t)
	clock := 1e-9
	paths := res.TopPaths(0, clock)
	if len(paths) != 2 {
		t.Fatalf("want 2 endpoint paths, got %d", len(paths))
	}
	// Worst first: the deep chain ends at y1.
	if paths[0].Endpoint != "y1" || paths[1].Endpoint != "y2" {
		t.Errorf("path order wrong: %s, %s", paths[0].Endpoint, paths[1].Endpoint)
	}
	if paths[0].ArrivalSec <= paths[1].ArrivalSec {
		t.Errorf("ranking not by arrival: %g <= %g", paths[0].ArrivalSec, paths[1].ArrivalSec)
	}
	// K truncates.
	if got := res.TopPaths(1, clock); len(got) != 1 || got[0].Endpoint != "y1" {
		t.Errorf("TopPaths(1) = %+v", got)
	}

	p := paths[0]
	if p.SlackSec != clock-p.ArrivalSec {
		t.Errorf("slack %g != clock - arrival %g", p.SlackSec, clock-p.ArrivalSec)
	}
	// Launch-first: a -> n1 -> n2 -> n3.
	want := []string{"a", "n1", "n2", "n3"}
	if len(p.Arcs) != len(want) {
		t.Fatalf("arc count %d, want %d: %+v", len(p.Arcs), len(want), p.Arcs)
	}
	for i, a := range p.Arcs {
		if a.ToNet != want[i] {
			t.Errorf("arc %d net = %s, want %s", i, a.ToNet, want[i])
		}
	}
	// Launch point: no gate, zero delay, zero arrival.
	if p.Arcs[0].Gate != "" || p.Arcs[0].DelaySec != 0 || p.Arcs[0].ArrivalSec != 0 {
		t.Errorf("launch arc not clean: %+v", p.Arcs[0])
	}
	// Per-arc delays must sum to the endpoint arrival.
	var sum float64
	for _, a := range p.Arcs {
		if a.DelaySec < 0 {
			t.Errorf("negative arc delay: %+v", a)
		}
		sum += a.DelaySec
	}
	if math.Abs(sum-p.ArrivalSec) > 1e-15 {
		t.Errorf("arc delays sum %g != arrival %g", sum, p.ArrivalSec)
	}
	// Every non-launch arc names its driving cell and entry pin.
	for _, a := range p.Arcs[1:] {
		if a.Gate == "" || a.Cell == "" {
			t.Errorf("arc missing driver: %+v", a)
		}
		if a.SlewSec <= 0 {
			t.Errorf("arc slew not populated: %+v", a)
		}
		if a.FromPin == "" {
			t.Errorf("arc missing liberty input pin: %+v", a)
		}
	}
	// The NAND2x1 into n3 is entered through n2, which is wired to pin A.
	if last := p.Arcs[len(p.Arcs)-1]; last.FromPin != "A" {
		t.Errorf("n2->n3 entry pin = %q, want A", last.FromPin)
	}
	// The launch arc has no pin (nothing is traversed).
	if p.Arcs[0].FromPin != "" {
		t.Errorf("launch arc has a pin: %+v", p.Arcs[0])
	}
}

func TestWritePathReport(t *testing.T) {
	res := pathsFixture(t)
	var buf bytes.Buffer
	if err := WritePathReport(&buf, res.TopPaths(2, 1e-9)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"path 1: endpoint y1", "path 2: endpoint y2",
		"<input>", "NAND2x1", "delay(ps)", "MET"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// A 1 ps clock is violated by any real path.
	buf.Reset()
	if err := WritePathReport(&buf, res.TopPaths(1, 1e-12)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VIOLATED") {
		t.Errorf("violated path not flagged:\n%s", buf.String())
	}
}
