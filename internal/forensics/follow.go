package forensics

import (
	"bytes"
	"encoding/json"
	"io"
	"os"

	"repro/internal/obs"
)

// Follower incrementally reads a growing journal file: each Poll returns
// the events appended since the previous Poll. It survives the file not
// existing yet (a flow that has not started returns no events, not an
// error) and being recreated or truncated (obs.EnableJournal truncates on
// open), in which case it restarts from the top. A torn final line — the
// journal's writer mid-append — is carried across polls until its newline
// arrives.
type Follower struct {
	path string
	off  int64
	buf  []byte // partial final line carried between polls
}

// NewFollower follows the journal file at path from its beginning.
func NewFollower(path string) *Follower { return &Follower{path: path} }

// Poll reads and decodes events appended since the last call. Lines that
// fail to decode are skipped (a follower must not die mid-flow on one bad
// line); I/O errors other than the file not existing are returned.
func (f *Follower) Poll() ([]obs.Event, error) {
	g, err := os.Open(f.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer g.Close()
	st, err := g.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < f.off {
		// Truncated or recreated: restart from the top.
		f.off, f.buf = 0, nil
	}
	if st.Size() == f.off {
		return nil, nil
	}
	if _, err := g.Seek(f.off, io.SeekStart); err != nil {
		return nil, err
	}
	fresh, err := io.ReadAll(g)
	if err != nil {
		return nil, err
	}
	f.off += int64(len(fresh))
	f.buf = append(f.buf, fresh...)
	var out []obs.Event
	for {
		i := bytes.IndexByte(f.buf, '\n')
		if i < 0 {
			break
		}
		line := bytes.TrimSpace(f.buf[:i])
		f.buf = f.buf[i+1:]
		if len(line) == 0 {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}
