package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/qor"
)

// TrendRun labels one column of a trend table: one history record.
type TrendRun struct {
	Run  string    `json:"run"`
	Bin  string    `json:"bin"`
	Time time.Time `json:"time"`
}

// TrendPoint is one metric's value in one run; Present is false when the
// run did not record the metric (the table renders a dash).
type TrendPoint struct {
	Value   float64 `json:"value"`
	Present bool    `json:"present"`
}

// TrendRow is one metric's trajectory across the selected runs, with the
// noise-aware drift verdict of its latest value against its history.
type TrendRow struct {
	Metric string       `json:"metric"`
	Points []TrendPoint `json:"points"`
	// Verdict classifies the latest value against the prior runs' noise
	// band (qor.DriftVerdict): OK, Improved, Regressed — or New/Missing
	// when the metric appeared in / vanished from the latest run.
	Verdict qor.Verdict `json:"-"`
	// VerdictText is the verdict's string form for JSON consumers.
	VerdictText string `json:"verdict"`
	// DeltaPct is the relative change of the latest value against the
	// median of the prior runs (0 when undefined).
	DeltaPct float64 `json:"delta_pct"`
}

// TrendReport is a run-over-run metrics comparison rendered by
// cryoobs trend: one column per history record (oldest first), one row per
// metric matching the requested globs.
type TrendReport struct {
	Runs []TrendRun `json:"runs"`
	Rows []TrendRow `json:"rows"`
}

// Drifting counts rows whose latest value escaped the noise band
// (Regressed or Improved).
func (t *TrendReport) Drifting() int {
	n := 0
	for i := range t.Rows {
		if t.Rows[i].Verdict == qor.Regressed || t.Rows[i].Verdict == qor.Improved {
			n++
		}
	}
	return n
}

// FlattenRecord flattens one history record into dotted scalar metrics —
// the namespace trend globs select over: counters and gauges keep their
// registry names, each histogram contributes "<name>.count" and
// "<name>.mean", per-stage wall times appear as "stage.<span>", and QoR
// metrics keep the "qor." names the producing tool staged. Runs captured
// under -cost additionally contribute "cost.<span>.<dimension>" columns
// (child-exclusive CPU/alloc/GC per stage), and every record carries
// "runtime.peak_rss_bytes" / "runtime.gc_pause_total_seconds".
func FlattenRecord(rec *obs.HistoryRecord) map[string]float64 {
	out := map[string]float64{}
	if m := rec.Metrics; m != nil {
		for k, v := range m.Counters {
			out[k] = float64(v)
		}
		for k, v := range m.Gauges {
			out[k] = v
		}
		for k, h := range m.Histograms {
			out[k+".count"] = float64(h.Count)
			if h.Count > 0 {
				out[k+".mean"] = h.Sum / float64(h.Count)
			}
		}
	}
	for k, v := range rec.Stages {
		out["stage."+k] = v
	}
	for k, v := range rec.QoR {
		out[k] = v
	}
	for k, c := range rec.Costs {
		if c.SelfCPUSec != 0 {
			out["cost."+k+".self_cpu_seconds"] = c.SelfCPUSec
		}
		if c.WallSec != 0 {
			out["cost."+k+".wall_seconds"] = c.WallSec
		}
		if c.SelfAllocBytes != 0 {
			out["cost."+k+".self_alloc_bytes"] = float64(c.SelfAllocBytes)
		}
		if c.SelfAllocObjects != 0 {
			out["cost."+k+".self_alloc_objects"] = float64(c.SelfAllocObjects)
		}
		if c.GCCPUSec != 0 {
			out["cost."+k+".gc_cpu_seconds"] = c.GCCPUSec
		}
	}
	// Record-level process health beats the sampled gauges of the same
	// name: it is present even when the run never scraped /metrics.
	if rec.PeakRSSBytes > 0 {
		out["runtime.peak_rss_bytes"] = float64(rec.PeakRSSBytes)
	}
	if rec.GCPauseTotalSec > 0 {
		out["runtime.gc_pause_total_seconds"] = rec.GCPauseTotalSec
	}
	return out
}

// globMatch reports whether name matches the pattern, where '*' matches
// any run of characters (including separators — metric names mix '.', '/',
// and '@', so path.Match semantics would be a trap). Matching is anchored
// at both ends.
func globMatch(pattern, name string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	for _, p := range parts[1 : len(parts)-1] {
		i := strings.Index(name, p)
		if i < 0 {
			return false
		}
		name = name[i+len(p):]
	}
	return strings.HasSuffix(name, parts[len(parts)-1])
}

func matchesAny(globs []string, name string) bool {
	for _, g := range globs {
		if globMatch(g, name) {
			return true
		}
	}
	return false
}

// Trend digests the history records (any order; they are sorted by append
// time) into a run-over-run report for the metrics matching globs, keeping
// only the last `last` records when last > 0. The drift verdict compares
// each metric's latest value against the noise band (median ± IQR, same
// thresholds as the cryobench diff) of its prior values, so identical
// reruns stay quiet and only real shifts are flagged.
func Trend(records []obs.HistoryRecord, globs []string, last int, th qor.Thresholds) *TrendReport {
	recs := append([]obs.HistoryRecord(nil), records...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].TNs < recs[j].TNs })
	if last > 0 && len(recs) > last {
		recs = recs[len(recs)-last:]
	}
	if len(globs) == 0 {
		globs = []string{"*"}
	}
	rep := &TrendReport{}
	flats := make([]map[string]float64, len(recs))
	names := map[string]bool{}
	for i := range recs {
		rep.Runs = append(rep.Runs, TrendRun{
			Run: recs[i].Run, Bin: recs[i].Bin, Time: recs[i].Time(),
		})
		flats[i] = FlattenRecord(&recs[i])
		for k := range flats[i] {
			if matchesAny(globs, k) {
				names[k] = true
			}
		}
	}
	ordered := make([]string, 0, len(names))
	for k := range names {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		row := TrendRow{Metric: name, Points: make([]TrendPoint, len(recs))}
		var prior []float64
		latest, latestOK := 0.0, false
		for i := range recs {
			v, ok := flats[i][name]
			row.Points[i] = TrendPoint{Value: v, Present: ok}
			if !ok {
				continue
			}
			if i == len(recs)-1 {
				latest, latestOK = v, true
			} else {
				prior = append(prior, v)
			}
		}
		switch {
		case !latestOK:
			row.Verdict = qor.Missing
		case len(prior) == 0:
			row.Verdict = qor.New
		default:
			base := qor.NewStat(prior)
			row.Verdict = qor.DriftVerdict(base, qor.NewStat([]float64{latest}), th)
			if base.Median != 0 {
				row.DeltaPct = 100 * (latest - base.Median) / math.Abs(base.Median)
			}
		}
		row.VerdictText = row.Verdict.String()
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// WriteText renders the trend report as an aligned text table, one run per
// column (oldest first), drift verdicts in the last column.
func (t *TrendReport) WriteText(w io.Writer) error {
	return t.writeTable(&errWriter{w: w}, false)
}

// WriteMarkdown renders the trend report as a markdown table.
func (t *TrendReport) WriteMarkdown(w io.Writer) error {
	bw := &errWriter{w: w}
	return t.writeTable(bw, true)
}

func shortRun(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}

func (t *TrendReport) writeTable(bw *errWriter, md bool) error {
	if md {
		bw.printf("| metric |")
		for _, r := range t.Runs {
			bw.printf(" %s |", shortRun(r.Run))
		}
		bw.printf(" Δ%% | verdict |\n|---|")
		for range t.Runs {
			bw.printf("---:|")
		}
		bw.printf("---:|---|\n")
	} else {
		bw.printf("%-48s", "metric")
		for _, r := range t.Runs {
			bw.printf(" %12s", shortRun(r.Run))
		}
		bw.printf(" %8s %s\n", "Δ%", "verdict")
	}
	for i := range t.Rows {
		row := &t.Rows[i]
		if md {
			bw.printf("| %s |", mdEscape(row.Metric))
		} else {
			bw.printf("%-48s", row.Metric)
		}
		for _, p := range row.Points {
			cell := "—"
			if p.Present {
				cell = fmt.Sprintf("%.6g", p.Value)
			}
			if md {
				bw.printf(" %s |", cell)
			} else {
				bw.printf(" %12s", cell)
			}
		}
		delta := ""
		if row.DeltaPct != 0 {
			delta = fmt.Sprintf("%+.1f", row.DeltaPct)
		}
		if md {
			bw.printf(" %s | %s |\n", orDash(delta), row.VerdictText)
		} else {
			bw.printf(" %8s %s\n", orDash(delta), row.VerdictText)
		}
	}
	if n := t.Drifting(); n > 0 {
		bw.printf("\n%d metric(s) drifted outside the noise band.\n", n)
	}
	return bw.err
}

// WriteJSON serializes the trend report (indented).
func (t *TrendReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
