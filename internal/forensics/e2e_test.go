package forensics

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/charlib"
	"repro/internal/obs"
	"repro/internal/pdk"
)

// TestNonconvergentCharlibPostMortem is the end-to-end acceptance path:
// an intentionally nonconvergent 4 K characterization writes a journal,
// and the rendered post-mortem names the failing (cell, arc, slew, load,
// temperature) point and the worst-residual device.
func TestNonconvergentCharlibPostMortem(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "char.jsonl")
	f, err := os.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	j := obs.NewJournal(f, "r-e2e000000001")
	prev := obs.SetJournal(j)
	defer obs.SetJournal(prev)

	// Two Newton iterations cannot settle the steep 4 K exponentials;
	// SkipLeakage makes the first failure land in a timing arc, where the
	// full (slew, load) context is known.
	cfg := charlib.QuickConfig(4)
	cfg.SkipLeakage = true
	cfg.NewtonIterLimit = 2
	cell := pdk.FindCell(pdk.Catalog(), "INVx1")
	if cell == nil {
		t.Fatal("INVx1 not in catalog")
	}
	if _, err := charlib.CharacterizeCell(context.Background(), cell, cfg); err == nil {
		t.Fatal("expected nonconvergence at 4 K with NewtonIterLimit=2")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	evs, err := Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	rep := Build(evs)
	if len(rep.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(rep.Runs))
	}
	run := &rep.Runs[0]
	if run.Clean() {
		t.Fatal("post-mortem records no failure")
	}
	site := &run.Failures[0]
	if site.Cell != "INVx1" {
		t.Errorf("failing cell = %q, want INVx1", site.Cell)
	}
	if !strings.Contains(site.Arc, "->") {
		t.Errorf("failing arc %q does not name an input->output pair", site.Arc)
	}
	a := site.First.Attrs
	if a["slew"] == "" || a["load"] == "" {
		t.Errorf("failure lacks slew/load context: %v", a)
	}
	if a["temp_k"] != "4" {
		t.Errorf("failure temp_k = %q, want 4", a["temp_k"])
	}
	if site.Diag == nil {
		t.Fatal("failure carries no SPICE diagnosis")
	}
	if site.Diag.WorstNode == "" || len(site.Diag.Devices) == 0 {
		t.Fatalf("diagnosis incomplete: %+v", site.Diag)
	}
	worstDev := site.Diag.Devices[0].Device
	if worstDev == "" {
		t.Fatal("worst-residual device unnamed")
	}

	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"INVx1", site.Arc, a["slew"], a["load"], worstDev, site.Diag.WorstNode} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("report missing %q:\n%s", want, md.String())
		}
	}
}
