package forensics

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/qor"
)

func histRec(tns int64, run string, qorVals map[string]float64) obs.HistoryRecord {
	return obs.HistoryRecord{
		TNs: tns, Run: run, Bin: "cryobench",
		Metrics: &obs.Snapshot{
			Counters: map[string]int64{"spice.newton.iterations": 1000 + tns},
		},
		Stages: map[string]float64{"synth.opt": 0.5},
		QoR:    qorVals,
	}
}

func TestFlattenRecord(t *testing.T) {
	rec := obs.HistoryRecord{
		Metrics: &obs.Snapshot{
			Counters: map[string]int64{"cec.sat.calls": 12},
			Gauges:   map[string]float64{"synth.map.area": 42.5},
			Histograms: map[string]obs.HistogramSnapshot{
				"charlib.cell.seconds": {Count: 4, Sum: 2},
				"empty.hist":           {Count: 0},
			},
		},
		Stages: map[string]float64{"qor.flow": 1.5},
		QoR:    map[string]float64{"qor.ctrl/pad@10K.area": 7},
	}
	flat := FlattenRecord(&rec)
	want := map[string]float64{
		"cec.sat.calls":              12,
		"synth.map.area":             42.5,
		"charlib.cell.seconds.count": 4,
		"charlib.cell.seconds.mean":  0.5,
		"empty.hist.count":           0,
		"stage.qor.flow":             1.5,
		"qor.ctrl/pad@10K.area":      7,
	}
	if len(flat) != len(want) {
		t.Errorf("flat keys = %v", flat)
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("flat[%q] = %g, want %g", k, flat[k], v)
		}
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*", "anything.at/all@10K", true},
		{"qor.*", "qor.ctrl/pad@10K.area", true}, // '*' crosses '/' and '@'
		{"qor.*", "stage.qor.flow", false},       // anchored prefix
		{"*.area", "qor.ctrl/pad@10K.area", true},
		{"qor.*.area", "qor.ctrl/pad@10K.area", true},
		{"qor.*.area", "qor.ctrl/pad@10K.gates", false},
		{"exact.name", "exact.name", true},
		{"exact.name", "exact.names", false},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.name); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

// TestTrendDriftAndQuiet is the acceptance scenario: three identical runs
// stay quiet; a fourth with a seeded regression is flagged, and only it.
func TestTrendDriftAndQuiet(t *testing.T) {
	th := qor.DefaultThresholds()
	quiet := []obs.HistoryRecord{
		histRec(1, "r-aaaaaaaa-1", map[string]float64{"qor.x.area": 100, "qor.x.delay": 2e-9}),
		histRec(2, "r-bbbbbbbb-2", map[string]float64{"qor.x.area": 100, "qor.x.delay": 2e-9}),
		histRec(3, "r-cccccccc-3", map[string]float64{"qor.x.area": 100, "qor.x.delay": 2e-9}),
	}
	rep := Trend(quiet, []string{"qor.*"}, 0, th)
	if rep.Drifting() != 0 {
		t.Errorf("identical reruns drifted: %+v", rep.Rows)
	}
	for _, row := range rep.Rows {
		if row.Verdict != qor.OK {
			t.Errorf("row %s verdict = %s, want ok", row.Metric, row.VerdictText)
		}
	}

	drifted := append(quiet, histRec(4, "r-dddddddd-4",
		map[string]float64{"qor.x.area": 150, "qor.x.delay": 2e-9}))
	rep = Trend(drifted, []string{"qor.*"}, 0, th)
	if rep.Drifting() != 1 {
		t.Fatalf("drifting = %d, want 1: %+v", rep.Drifting(), rep.Rows)
	}
	byName := map[string]*TrendRow{}
	for i := range rep.Rows {
		byName[rep.Rows[i].Metric] = &rep.Rows[i]
	}
	area := byName["qor.x.area"]
	if area == nil || area.Verdict != qor.Regressed {
		t.Fatalf("qor.x.area row: %+v", area)
	}
	if area.DeltaPct != 50 {
		t.Errorf("delta = %g, want +50", area.DeltaPct)
	}
	if byName["qor.x.delay"].Verdict != qor.OK {
		t.Errorf("stable metric flagged: %+v", byName["qor.x.delay"])
	}

	// An improvement is drift too, just with the good sign.
	improved := append(quiet, histRec(4, "r-eeeeeeee-4",
		map[string]float64{"qor.x.area": 50, "qor.x.delay": 2e-9}))
	rep = Trend(improved, []string{"qor.x.area"}, 0, th)
	if len(rep.Rows) != 1 || rep.Rows[0].Verdict != qor.Improved {
		t.Errorf("improvement rows: %+v", rep.Rows)
	}
}

func TestTrendNewMissingAndLast(t *testing.T) {
	th := qor.DefaultThresholds()
	recs := []obs.HistoryRecord{
		histRec(3, "r-3", map[string]float64{"qor.old": 1}), // appended out of order
		histRec(1, "r-1", map[string]float64{"qor.old": 1}),
		histRec(2, "r-2", map[string]float64{"qor.old": 1}),
		histRec(4, "r-4", map[string]float64{"qor.fresh": 9}),
	}
	rep := Trend(recs, []string{"qor.*"}, 0, th)
	if got := len(rep.Runs); got != 4 {
		t.Fatalf("runs = %d, want 4", got)
	}
	// Sorted by time, not input order.
	if rep.Runs[0].Run != "r-1" || rep.Runs[3].Run != "r-4" {
		t.Errorf("run order: %+v", rep.Runs)
	}
	byName := map[string]qor.Verdict{}
	for _, row := range rep.Rows {
		byName[row.Metric] = row.Verdict
	}
	if byName["qor.fresh"] != qor.New || byName["qor.old"] != qor.Missing {
		t.Errorf("verdicts: %+v", byName)
	}
	// Missing/New are informational, not drift.
	if rep.Drifting() != 0 {
		t.Errorf("drifting = %d, want 0", rep.Drifting())
	}

	// last=2 keeps only the newest two records.
	rep = Trend(recs, []string{"qor.*"}, 2, th)
	if len(rep.Runs) != 2 || rep.Runs[0].Run != "r-3" || rep.Runs[1].Run != "r-4" {
		t.Errorf("last=2 runs: %+v", rep.Runs)
	}
}

func TestTrendRenderers(t *testing.T) {
	th := qor.DefaultThresholds()
	recs := []obs.HistoryRecord{
		histRec(1, "r-aaaaaaaa-1", map[string]float64{"qor.x.area": 100}),
		histRec(2, "r-bbbbbbbb-2", map[string]float64{"qor.x.area": 150}),
	}
	rep := Trend(recs, []string{"qor.x.area"}, 0, th)

	var text strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{"qor.x.area", "r-aaaaaa", "r-bbbbbb", "100", "150", "+50.0", "REGRESSED", "1 metric(s) drifted"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text table missing %q:\n%s", want, text.String())
		}
	}

	var md strings.Builder
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	if !strings.Contains(md.String(), "| qor.x.area |") || !strings.Contains(md.String(), "|---|") {
		t.Errorf("markdown table malformed:\n%s", md.String())
	}

	var js strings.Builder
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(js.String(), `"verdict": "REGRESSED"`) {
		t.Errorf("json missing verdict:\n%s", js.String())
	}
}
