package forensics

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestFollowerIncrementalPolls(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	f := NewFollower(path)

	// File not there yet: a flow that has not started is not an error.
	evs, err := f.Poll()
	if err != nil || evs != nil {
		t.Fatalf("missing file: evs=%v err=%v", evs, err)
	}

	j := obs.NewJournal(mustCreate(t, path), "r-follow")
	j.Event("stage.start", "synth", "begin", nil)
	j.Sync()
	evs, err = f.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Stage != "synth" || evs[0].Run != "r-follow" {
		t.Fatalf("first poll: %+v", evs)
	}

	// Nothing new: quiet poll.
	if evs, _ := f.Poll(); evs != nil {
		t.Fatalf("quiet poll returned %+v", evs)
	}

	j.Event("stage.end", "synth", "done", nil)
	j.Event(obs.KindProgress, "charlib.cells", "progress", map[string]string{"done": "5"})
	j.Sync()
	evs, err = f.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Kind != obs.KindProgress {
		t.Fatalf("second poll: %+v", evs)
	}
	j.Close()
}

func TestFollowerTornLineAndTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f := NewFollower(path)

	w := mustCreate(t, path)
	// A torn write: half an event, no newline yet.
	w.WriteString(`{"t_ns":1,"run":"r-1","kind":"stage.start","stage":"a`)
	evs, err := f.Poll()
	if err != nil || len(evs) != 0 {
		t.Fatalf("torn line poll: evs=%+v err=%v", evs, err)
	}
	// The rest of the line arrives: the carried prefix completes.
	w.WriteString("\"}\n")
	evs, err = f.Poll()
	if err != nil || len(evs) != 1 || evs[0].Stage != "a" {
		t.Fatalf("completed line poll: evs=%+v err=%v", evs, err)
	}
	w.Close()

	// The journal is recreated (EnableJournal truncates) with a shorter
	// stream: the follower notices the shrink and restarts from the top.
	w = mustCreate(t, path)
	w.WriteString(`{"t_ns":2,"run":"r-2","kind":"x","stage":"b"}` + "\n")
	w.Close()
	evs, err = f.Poll()
	if err != nil || len(evs) != 1 || evs[0].Run != "r-2" {
		t.Fatalf("post-truncation poll: evs=%+v err=%v", evs, err)
	}
}

func mustCreate(t *testing.T, path string) *os.File {
	t.Helper()
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
