package forensics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/spice"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureEvents builds a deterministic two-run event stream: a cryochar run
// with a recurring SPICE nonconvergence failure, and a truncated cryobench
// run (no run.end — the crash signature).
func fixtureEvents(t *testing.T) []obs.Event {
	t.Helper()
	const t0 = int64(1700000000000000000)
	diag := spice.Diagnosis{
		Phase:     spice.PhaseGminLadder,
		TempK:     4,
		Gmin:      1e-6,
		Iters:     2,
		WorstNode: "x1.Y",
		Residual:  3.2e-4,
		MaxDV:     0.41,
		Devices: []spice.DeviceResidual{
			{Device: "x1.Y.N1(A)", Residual: 2.9e-4},
			{Device: "x1.Y.P2(A)", Residual: 1.1e-4},
		},
	}
	raw, err := json.Marshal(diag)
	if err != nil {
		t.Fatal(err)
	}
	failAttrs := map[string]string{
		"cell": "INVx1", "arc": "A->Y", "slew": "5e-12", "load": "1e-15",
		"temp_k": "4", "worst_node": "x1.Y", "phase": spice.PhaseGminLadder,
		"worst_device": "x1.Y.N1(A)",
	}
	const runA, runB = "r-aaaaaaaaaaaa", "r-bbbbbbbbbbbb"
	return []obs.Event{
		{Seq: 1, TNs: t0, Run: runA, Kind: obs.KindRunStart,
			Msg: "cryochar -temp 4 -journal a.jsonl", Attrs: map[string]string{"bin": "cryochar"}},
		{Seq: 2, TNs: t0 + 1e9, Run: runA, Kind: obs.KindStageEnd, Stage: "charlib.cell",
			Attrs: map[string]string{"seconds": "0.5"}},
		{Seq: 3, TNs: t0 + 2e9, Run: runA, Kind: obs.KindFailure, Stage: "charlib.arc",
			Msg: "newton failed", Attrs: failAttrs, Detail: raw},
		{Seq: 4, TNs: t0 + 3e9, Run: runA, Kind: obs.KindFailure, Stage: "charlib.arc",
			Msg: "newton failed", Attrs: failAttrs, Detail: raw},
		{Seq: 5, TNs: t0 + 4e9, Run: runA, Kind: obs.KindWarning, Stage: "charlib",
			Msg: "slow corner"},
		{Seq: 6, TNs: t0 + 5e9, Run: runA, Kind: obs.KindStageEnd, Stage: "charlib.cell",
			Attrs: map[string]string{"seconds": "0.25"}},
		{Seq: 7, TNs: t0 + 6e9, Run: runA, Kind: obs.KindArtifact, Stage: "charlib.cache",
			Attrs: map[string]string{"path": "build/cryolib_4K.lib", "bytes": "1234",
				"sha256": "deadbeefdeadbeefdeadbeef"}},
		{Seq: 8, TNs: t0 + 7e9, Run: runA, Kind: obs.KindRunEnd, Msg: "run complete"},
		// Interleaved truncated run from another binary.
		{Seq: 1, TNs: t0 + 1500000000, Run: runB, Kind: obs.KindRunStart,
			Msg: "cryobench -profile smoke", Attrs: map[string]string{"bin": "cryobench"}},
		{Seq: 2, TNs: t0 + 2500000000, Run: runB, Kind: obs.KindStageEnd, Stage: "qor.rep",
			Msg: "adder/area rep 1/1", Attrs: map[string]string{"seconds": "0.75"}},
	}
}

func TestPostMortemGolden(t *testing.T) {
	evs := fixtureEvents(t)
	Sort(evs)
	rep := Build(evs)
	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "postmortem.golden.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, md.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(md.Bytes(), want) {
		t.Errorf("markdown drifted from golden (re-run with -update and review):\n--- got ---\n%s", md.String())
	}
}

func TestBuildDigestsRuns(t *testing.T) {
	evs := fixtureEvents(t)
	Sort(evs)
	rep := Build(evs)
	if len(rep.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(rep.Runs))
	}
	a := &rep.Runs[0]
	if a.Bin != "cryochar" || a.Clean() || a.Truncated() {
		t.Errorf("run A digest wrong: %+v", a)
	}
	if len(a.Failures) != 1 || a.Failures[0].Count != 2 {
		t.Fatalf("failure grouping wrong: %+v", a.Failures)
	}
	site := &a.Failures[0]
	if site.Cell != "INVx1" || site.Arc != "A->Y" || site.Diag == nil {
		t.Errorf("failure site lost context: %+v", site)
	}
	if len(a.Devices) == 0 || a.Devices[0].Device != "x1.Y.N1(A)" || a.Devices[0].Count != 2 {
		t.Errorf("device ranking wrong: %+v", a.Devices)
	}
	if len(a.Nodes) == 0 || a.Nodes[0].Node != "x1.Y" {
		t.Errorf("node ranking wrong: %+v", a.Nodes)
	}
	if len(a.Stages) != 1 || a.Stages[0].Count != 2 || a.Stages[0].Seconds != 0.75 {
		t.Errorf("stage aggregation wrong: %+v", a.Stages)
	}
	if len(a.Artifacts) != 1 || a.Artifacts[0].Path != "build/cryolib_4K.lib" {
		t.Errorf("artifact record wrong: %+v", a.Artifacts)
	}
	b := &rep.Runs[1]
	if b.Bin != "cryobench" || !b.Truncated() {
		t.Errorf("run B should be a truncated cryobench run: %+v", b)
	}
	if rep.TotalFailures() != 2 {
		t.Errorf("TotalFailures = %d, want 2", rep.TotalFailures())
	}
}

func TestLoadMergesFiles(t *testing.T) {
	evs := fixtureEvents(t)
	dir := t.TempDir()
	// Split the stream by run into two journal files, as two binaries of one
	// flow invocation would write them.
	var fa, fb bytes.Buffer
	for _, e := range evs {
		enc := json.NewEncoder(&fa)
		if e.Run == "r-bbbbbbbbbbbb" {
			enc = json.NewEncoder(&fb)
		}
		if err := enc.Encode(&e); err != nil {
			t.Fatal(err)
		}
	}
	pa := filepath.Join(dir, "a.jsonl")
	pb := filepath.Join(dir, "b.jsonl")
	if err := os.WriteFile(pa, fa.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pb, fb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	merged, err := Load(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(evs) {
		t.Fatalf("merged %d events, want %d", len(merged), len(evs))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].TNs < merged[i-1].TNs {
			t.Fatalf("merge not time-ordered at %d: %d < %d", i, merged[i].TNs, merged[i-1].TNs)
		}
	}
	// The two runs must interleave — the truncated run starts mid-way
	// through the first.
	if merged[1].Run != "r-aaaaaaaaaaaa" || merged[2].Run != "r-bbbbbbbbbbbb" {
		t.Errorf("runs did not interleave: %s then %s", merged[1].Run, merged[2].Run)
	}
}

func TestSummaryAndTail(t *testing.T) {
	evs := fixtureEvents(t)
	Sort(evs)
	var sum bytes.Buffer
	if err := Build(evs).WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	s := sum.String()
	for _, want := range []string{"FAILED", "TRUNCATED", "cryochar", "cryobench", "cell=INVx1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	var line bytes.Buffer
	fails := FilterKind(evs, obs.KindFailure)
	if len(fails) != 2 {
		t.Fatalf("FilterKind found %d failures, want 2", len(fails))
	}
	if err := WriteEvent(&line, &fails[0]); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"failure", "charlib.arc", "cell=INVx1", "worst_node=x1.Y"} {
		if !strings.Contains(line.String(), want) {
			t.Errorf("tail line missing %q: %s", want, line.String())
		}
	}
}
