// Package forensics turns structured run journals (internal/obs JSONL
// events) into post-mortem reports: per-run stage timelines, failure sites
// ranked by recurrence, and — for SPICE nonconvergence failures carrying a
// spice.Diagnosis payload — the worst-converging nodes and devices across
// the run. cmd/cryoobs is the CLI front end.
package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/spice"
)

// Load reads one or more journal files and merges them into a single event
// stream ordered by wall-clock time (run ID, then sequence number, breaks
// ties), so journals written by different binaries of the same flow
// invocation interleave chronologically.
func Load(paths ...string) ([]obs.Event, error) {
	var all []obs.Event
	for _, p := range paths {
		evs, err := obs.ReadJournalFile(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, evs...)
	}
	Sort(all)
	return all, nil
}

// Sort orders events by time, then run ID, then sequence number.
func Sort(evs []obs.Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.TNs != b.TNs {
			return a.TNs < b.TNs
		}
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		return a.Seq < b.Seq
	})
}

// FilterRun keeps only events belonging to the given run ID.
func FilterRun(evs []obs.Event, run string) []obs.Event {
	var out []obs.Event
	for _, e := range evs {
		if e.Run == run {
			out = append(out, e)
		}
	}
	return out
}

// FilterKind keeps only events of the given kind.
func FilterKind(evs []obs.Event, kind string) []obs.Event {
	var out []obs.Event
	for _, e := range evs {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// StageStat aggregates the stage.end events of one stage.
type StageStat struct {
	Stage   string
	Count   int
	Seconds float64
}

// FailureSite groups recurring failures at the same site — same stage and,
// when present, same (cell, arc) — so the report leads with the most
// frequent offender rather than a flat event list.
type FailureSite struct {
	Stage string
	Cell  string
	Arc   string
	Count int
	// First is a representative event (the first occurrence).
	First obs.Event
	// Diag is the decoded SPICE diagnosis of the first occurrence, when the
	// failure carried one.
	Diag *spice.Diagnosis
}

// Label renders the site identity for humans.
func (s *FailureSite) Label() string {
	var b strings.Builder
	b.WriteString(s.Stage)
	if s.Cell != "" {
		fmt.Fprintf(&b, " cell=%s", s.Cell)
	}
	if s.Arc != "" {
		fmt.Fprintf(&b, " arc=%s", s.Arc)
	}
	return b.String()
}

// DeviceStat aggregates residual attributions for one named device across
// every diagnosis in a run.
type DeviceStat struct {
	Device      string
	Count       int
	MaxResidual float64
}

// NodeStat counts how often a node was the worst-converging row.
type NodeStat struct {
	Node  string
	Count int
}

// StallRec is one watchdog stall post-mortem: when a stage went silent,
// how deep into its work it was, and the evidence the watchdog captured
// (active span stack + goroutine dump) decoded from the event's
// obs.StallReport detail payload.
type StallRec struct {
	Time   time.Time
	Stage  string
	Msg    string
	Report *obs.StallReport // nil when the detail payload is missing/opaque
}

// ArtifactRec is one recorded artifact provenance event.
type ArtifactRec struct {
	Stage  string
	Path   string
	Bytes  string
	SHA256 string
}

// RunReport is the digested post-mortem of one run ID.
type RunReport struct {
	RunID    string
	Bin      string // producing binary, from the run.start event
	Cmdline  string
	Start    time.Time // zero when the journal lacks a run.start
	End      time.Time // zero when the process died before run.end
	Events   int
	Warnings int

	Stages    []StageStat   // first-seen order
	Failures  []FailureSite // ranked by recurrence (count desc)
	Stalls    []StallRec    // watchdog post-mortems, in journal order
	Devices   []DeviceStat  // worst-converging devices, by count then residual
	Nodes     []NodeStat    // worst-converging nodes, by count
	Artifacts []ArtifactRec
}

// Clean reports whether the run recorded no failures.
func (r *RunReport) Clean() bool { return len(r.Failures) == 0 }

// Truncated reports whether the journal ends without a run.end event — the
// signature of a crashed or killed process.
func (r *RunReport) Truncated() bool { return !r.Start.IsZero() && r.End.IsZero() }

// Report is the digested post-mortem of a merged event stream.
type Report struct {
	Runs []RunReport // in order of first event
}

// TotalFailures sums failure occurrences across runs.
func (r *Report) TotalFailures() int {
	n := 0
	for i := range r.Runs {
		for _, s := range r.Runs[i].Failures {
			n += s.Count
		}
	}
	return n
}

// Build digests a (sorted) event stream into a report, grouping by run ID.
func Build(evs []obs.Event) *Report {
	rep := &Report{}
	idx := map[string]int{}
	for _, e := range evs {
		i, ok := idx[e.Run]
		if !ok {
			i = len(rep.Runs)
			idx[e.Run] = i
			rep.Runs = append(rep.Runs, RunReport{RunID: e.Run})
		}
		addEvent(&rep.Runs[i], e)
	}
	for i := range rep.Runs {
		finishRun(&rep.Runs[i])
	}
	return rep
}

func addEvent(r *RunReport, e obs.Event) {
	r.Events++
	switch e.Kind {
	case obs.KindRunStart:
		r.Start = e.Time()
		r.Cmdline = e.Msg
		r.Bin = e.Attrs["bin"]
	case obs.KindRunEnd:
		r.End = e.Time()
	case obs.KindStageEnd:
		sec := attrFloat(e.Attrs, "seconds")
		for i := range r.Stages {
			if r.Stages[i].Stage == e.Stage {
				r.Stages[i].Count++
				r.Stages[i].Seconds += sec
				return
			}
		}
		r.Stages = append(r.Stages, StageStat{Stage: e.Stage, Count: 1, Seconds: sec})
	case obs.KindWarning:
		r.Warnings++
	case obs.KindFailure:
		addFailure(r, e)
	case obs.KindStall:
		rec := StallRec{Time: e.Time(), Stage: e.Stage, Msg: e.Msg}
		if len(e.Detail) > 0 {
			var rep obs.StallReport
			if err := json.Unmarshal(e.Detail, &rep); err == nil && rep.Task != "" {
				rec.Report = &rep
			}
		}
		r.Stalls = append(r.Stalls, rec)
	case obs.KindArtifact:
		r.Artifacts = append(r.Artifacts, ArtifactRec{
			Stage:  e.Stage,
			Path:   e.Attrs["path"],
			Bytes:  e.Attrs["bytes"],
			SHA256: e.Attrs["sha256"],
		})
	}
}

func addFailure(r *RunReport, e obs.Event) {
	cell, arc := e.Attrs["cell"], e.Attrs["arc"]
	diag := DecodeDiagnosis(&e)
	for i := range r.Failures {
		s := &r.Failures[i]
		if s.Stage == e.Stage && s.Cell == cell && s.Arc == arc {
			s.Count++
			tallyDiag(r, diag, e.Attrs)
			return
		}
	}
	r.Failures = append(r.Failures, FailureSite{
		Stage: e.Stage, Cell: cell, Arc: arc, Count: 1, First: e, Diag: diag,
	})
	tallyDiag(r, diag, e.Attrs)
}

// tallyDiag folds one failure's convergence evidence into the run-wide
// worst-device / worst-node rankings.
func tallyDiag(r *RunReport, d *spice.Diagnosis, attrs map[string]string) {
	node := attrs["worst_node"]
	if d != nil && d.WorstNode != "" {
		node = d.WorstNode
	}
	if node != "" {
		found := false
		for i := range r.Nodes {
			if r.Nodes[i].Node == node {
				r.Nodes[i].Count++
				found = true
				break
			}
		}
		if !found {
			r.Nodes = append(r.Nodes, NodeStat{Node: node, Count: 1})
		}
	}
	if d == nil {
		return
	}
	for _, dev := range d.Devices {
		found := false
		for i := range r.Devices {
			if r.Devices[i].Device == dev.Device {
				r.Devices[i].Count++
				if dev.Residual > r.Devices[i].MaxResidual {
					r.Devices[i].MaxResidual = dev.Residual
				}
				found = true
				break
			}
		}
		if !found {
			r.Devices = append(r.Devices, DeviceStat{
				Device: dev.Device, Count: 1, MaxResidual: dev.Residual,
			})
		}
	}
}

func finishRun(r *RunReport) {
	sort.SliceStable(r.Failures, func(i, j int) bool {
		return r.Failures[i].Count > r.Failures[j].Count
	})
	sort.SliceStable(r.Devices, func(i, j int) bool {
		a, b := &r.Devices[i], &r.Devices[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.MaxResidual > b.MaxResidual
	})
	sort.SliceStable(r.Nodes, func(i, j int) bool {
		return r.Nodes[i].Count > r.Nodes[j].Count
	})
}

// DecodeDiagnosis extracts the spice.Diagnosis payload from a failure
// event's detail, or nil when the event carries none (or something else).
func DecodeDiagnosis(e *obs.Event) *spice.Diagnosis {
	if len(e.Detail) == 0 {
		return nil
	}
	var d spice.Diagnosis
	if err := json.Unmarshal(e.Detail, &d); err != nil {
		return nil
	}
	if d.WorstNode == "" && d.Iters == 0 && len(d.Devices) == 0 {
		return nil
	}
	return &d
}

func attrFloat(attrs map[string]string, key string) float64 {
	var v float64
	fmt.Sscanf(attrs[key], "%g", &v)
	return v
}

// WriteMarkdown renders the post-mortem report as markdown.
func (r *Report) WriteMarkdown(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("# Cryo-EDA flow post-mortem\n\n")
	nev := 0
	for i := range r.Runs {
		nev += r.Runs[i].Events
	}
	bw.printf("%d run(s), %d event(s), %d failure(s).\n", len(r.Runs), nev, r.TotalFailures())
	for i := range r.Runs {
		writeRunMarkdown(bw, &r.Runs[i])
	}
	return bw.err
}

func writeRunMarkdown(bw *errWriter, r *RunReport) {
	title := r.RunID
	if r.Bin != "" {
		title += " (" + r.Bin + ")"
	}
	bw.printf("\n## Run %s\n\n", title)
	if r.Cmdline != "" {
		bw.printf("- command: `%s`\n", r.Cmdline)
	}
	if !r.Start.IsZero() {
		bw.printf("- started: %s\n", r.Start.UTC().Format(time.RFC3339Nano))
	}
	switch {
	case r.Truncated():
		bw.printf("- ended: **never** — journal is truncated (crash or kill)\n")
	case !r.End.IsZero():
		bw.printf("- ended: %s (%.3fs)\n", r.End.UTC().Format(time.RFC3339Nano),
			r.End.Sub(r.Start).Seconds())
	}
	outcome := "clean"
	if !r.Clean() {
		n := 0
		for _, s := range r.Failures {
			n += s.Count
		}
		outcome = fmt.Sprintf("**FAILED** (%d failure(s))", n)
	}
	bw.printf("- outcome: %s, %d event(s), %d warning(s)\n", outcome, r.Events, r.Warnings)

	if len(r.Stages) > 0 {
		bw.printf("\n### Stage timeline\n\n")
		bw.printf("| stage | count | total (s) |\n|---|---:|---:|\n")
		for _, s := range r.Stages {
			bw.printf("| %s | %d | %.6g |\n", s.Stage, s.Count, s.Seconds)
		}
	}
	if len(r.Failures) > 0 {
		bw.printf("\n### Failure sites (ranked by recurrence)\n\n")
		bw.printf("| # | site | count | temp (K) | slew | load | worst node | phase | message |\n")
		bw.printf("|---:|---|---:|---|---|---|---|---|---|\n")
		for i := range r.Failures {
			s := &r.Failures[i]
			a := s.First.Attrs
			node, phase := a["worst_node"], a["phase"]
			if s.Diag != nil {
				if s.Diag.WorstNode != "" {
					node = s.Diag.WorstNode
				}
				if s.Diag.Phase != "" {
					phase = s.Diag.Phase
				}
			}
			bw.printf("| %d | %s | %d | %s | %s | %s | %s | %s | %s |\n",
				i+1, s.Label(), s.Count,
				orDash(a["temp_k"]), orDash(a["slew"]), orDash(a["load"]),
				orDash(node), orDash(phase), mdEscape(truncate(s.First.Msg, 120)))
		}
	}
	if len(r.Stalls) > 0 {
		bw.printf("\n### Stalls (watchdog post-mortems)\n\n")
		for i := range r.Stalls {
			s := &r.Stalls[i]
			bw.printf("%d. **%s** at %s — %s\n", i+1, mdEscape(s.Stage),
				s.Time.UTC().Format(time.RFC3339), mdEscape(s.Msg))
			rep := s.Report
			if rep == nil {
				continue
			}
			if rep.Total > 0 {
				bw.printf("   - progress: %d/%d units when the heartbeat stopped\n", rep.Done, rep.Total)
			} else {
				bw.printf("   - progress: %d units when the heartbeat stopped\n", rep.Done)
			}
			bw.printf("   - silent %.1fs (deadline %.1fs), %d goroutines\n",
				rep.SilentSec, rep.DeadlineSec, rep.NumGoroutine)
			if len(rep.SpanStack) > 0 {
				bw.printf("   - active span stack: `%s`\n", strings.Join(rep.SpanStack, " → "))
			}
			if rep.Goroutines != "" {
				bw.printf("\n```\n%s\n```\n", truncate(strings.TrimSpace(rep.Goroutines), 4000))
			}
		}
	}
	if len(r.Devices) > 0 {
		bw.printf("\n### Worst-converging devices\n\n")
		bw.printf("| device | failures | max residual |\n|---|---:|---:|\n")
		for _, d := range r.Devices {
			bw.printf("| %s | %d | %.3e |\n", mdEscape(d.Device), d.Count, d.MaxResidual)
		}
	}
	if len(r.Nodes) > 0 {
		bw.printf("\n### Worst-converging nodes\n\n")
		bw.printf("| node | failures |\n|---|---:|\n")
		for _, n := range r.Nodes {
			bw.printf("| %s | %d |\n", mdEscape(n.Node), n.Count)
		}
	}
	if len(r.Artifacts) > 0 {
		bw.printf("\n### Artifacts\n\n")
		bw.printf("| stage | path | bytes | sha256 |\n|---|---|---:|---|\n")
		for _, a := range r.Artifacts {
			sum := a.SHA256
			if len(sum) > 12 {
				sum = sum[:12] + "…"
			}
			bw.printf("| %s | %s | %s | `%s` |\n", a.Stage, a.Path, a.Bytes, sum)
		}
	}
}

// WriteSummary renders a terse per-run text summary (the cryoobs `summary`
// subcommand).
func (r *Report) WriteSummary(w io.Writer) error {
	bw := &errWriter{w: w}
	for i := range r.Runs {
		run := &r.Runs[i]
		status := "ok"
		switch {
		case run.Truncated():
			status = "TRUNCATED"
		case !run.Clean():
			status = "FAILED"
		}
		nfail := 0
		for _, s := range run.Failures {
			nfail += s.Count
		}
		bin := run.Bin
		if bin == "" {
			bin = "?"
		}
		bw.printf("%-16s %-10s %-9s %4d events %3d failures %3d warnings",
			run.RunID, bin, status, run.Events, nfail, run.Warnings)
		if len(run.Stalls) > 0 {
			bw.printf(" %3d stalls", len(run.Stalls))
		}
		if !run.Start.IsZero() && !run.End.IsZero() {
			bw.printf("  %.3fs", run.End.Sub(run.Start).Seconds())
		}
		bw.printf("\n")
		for j := range run.Failures {
			s := &run.Failures[j]
			bw.printf("    %dx %s\n", s.Count, s.Label())
		}
	}
	return bw.err
}

// WriteEvent pretty-prints one event as a single human-oriented line (the
// cryoobs `tail` subcommand).
func WriteEvent(w io.Writer, e *obs.Event) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %-11s", e.Time().UTC().Format("15:04:05.000"), e.Run, e.Kind)
	if e.Stage != "" {
		fmt.Fprintf(&b, " [%s]", e.Stage)
	}
	if e.Msg != "" {
		fmt.Fprintf(&b, " %s", truncate(e.Msg, 160))
	}
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, e.Attrs[k])
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func mdEscape(s string) string {
	return strings.NewReplacer("|", "\\|", "\n", " ").Replace(s)
}
