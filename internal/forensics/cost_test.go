package forensics

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// costFixtureReport builds a small three-node tree with every dimension
// populated, as BuildCostReport would emit it.
func costFixtureReport() *obs.CostReport {
	return &obs.CostReport{
		WindowSec: 2.5, ProcessCPUSec: 1.8, ProfiledCPUSec: 1.6, CPUAttributed: true,
		Roots: []*obs.CostNode{{
			Name: "flow", Path: "flow", Count: 1, WallSec: 2.4,
			CPUSec: 1.5, SelfCPUSec: 0.1, AllocBytes: 9000, SelfAllocBytes: 1000,
			Children: []*obs.CostNode{
				{
					Name: "charlib", Path: "flow/charlib", Count: 4, WallSec: 2,
					CPUSec: 1.4, SelfCPUSec: 1.4, AllocBytes: 8000, SelfAllocBytes: 8000,
					GCCPUSec: 0.2, SelfGCCPUSec: 0.2,
					Counters:     map[string]int64{"spice.solver.factor": 33},
					SelfCounters: map[string]int64{"spice.solver.factor": 33},
				},
				{Name: "report", Path: "flow/report", Count: 1, WallSec: 0.1},
			},
		}},
	}
}

// TestCostJournalRoundTrip: JournalCost → journal lines → ReadJournal →
// CostFromEvents must reproduce the tree shape and every value the journal
// carries.
func TestCostJournalRoundTrip(t *testing.T) {
	var sink strings.Builder
	j := obs.NewJournal(&sink, "r-roundtrip")
	costFixtureReport().JournalCost(j)
	j.Close()

	evs, err := obs.ReadJournal(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	rep, err := CostFromEvents(evs, "")
	if err != nil {
		t.Fatalf("CostFromEvents: %v", err)
	}
	if rep.WindowSec != 2.5 || rep.ProcessCPUSec != 1.8 || rep.ProfiledCPUSec != 1.6 || !rep.CPUAttributed {
		t.Errorf("summary lost: %+v", rep)
	}
	if len(rep.Roots) != 1 || rep.Roots[0].Path != "flow" {
		t.Fatalf("roots: %+v", rep.Roots)
	}
	flow := rep.Roots[0]
	if len(flow.Children) != 2 {
		t.Fatalf("flow children: %+v", flow.Children)
	}
	char := flow.Children[0]
	if char.Path != "flow/charlib" || char.Count != 4 || char.SelfCPUSec != 1.4 ||
		char.SelfAllocBytes != 8000 || char.SelfGCCPUSec != 0.2 {
		t.Errorf("charlib node lost values: %+v", char)
	}
	if char.Counters["spice.solver.factor"] != 33 {
		t.Errorf("charlib counters lost: %v", char.Counters)
	}
	if flow.Children[1].Path != "flow/report" {
		t.Errorf("child order lost: %+v", flow.Children[1])
	}

	// An explicit wrong run must fail loudly.
	if _, err := CostFromEvents(evs, "no-such-run"); err == nil {
		t.Error("CostFromEvents accepted a run with no cost events")
	}
}

// TestCostFromEventsOrphan: a node event whose parent never made it into
// the journal (truncated file) becomes a root instead of vanishing.
func TestCostFromEventsOrphan(t *testing.T) {
	var sink strings.Builder
	j := obs.NewJournal(&sink, "r-orphan")
	costFixtureReport().JournalCost(j)
	j.Close()
	evs, err := obs.ReadJournal(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Drop the "flow" node event, keeping the summary and the children.
	var cut []obs.Event
	for _, e := range evs {
		if e.Kind == obs.KindCost && e.Stage == "flow" {
			continue
		}
		cut = append(cut, e)
	}
	rep, err := CostFromEvents(cut, "")
	if err != nil {
		t.Fatalf("CostFromEvents: %v", err)
	}
	if len(rep.Roots) != 2 {
		t.Fatalf("orphaned children should become roots: %+v", rep.Roots)
	}
}

func TestWriteStageCosts(t *testing.T) {
	rec := &obs.HistoryRecord{
		Run: "run-1", PeakRSSBytes: 1 << 20, GCPauseTotalSec: 0.004,
		Costs: map[string]obs.StageCost{
			"charlib.cell": {SelfCPUSec: 1.25, WallSec: 2, SelfAllocBytes: 4096, SelfAllocObjects: 12},
			"qor.signoff":  {SelfCPUSec: 0.5, WallSec: 0.6},
		},
	}
	var out strings.Builder
	if err := WriteStageCosts(&out, rec); err != nil {
		t.Fatalf("WriteStageCosts: %v", err)
	}
	text := out.String()
	iChar := strings.Index(text, "charlib.cell")
	iQor := strings.Index(text, "qor.signoff")
	if iChar < 0 || iQor < 0 || iChar > iQor {
		t.Errorf("stages missing or not sorted by self-CPU:\n%s", text)
	}
	if !strings.Contains(text, "peak RSS 1048576 bytes") {
		t.Errorf("header missing peak RSS:\n%s", text)
	}

	if err := WriteStageCosts(&out, &obs.HistoryRecord{Run: "bare"}); err == nil {
		t.Error("WriteStageCosts accepted a record without costs")
	}
}

// TestFlattenRecordCostColumns: trend flattening surfaces the cost and
// process-health columns, omitting zero dimensions.
func TestFlattenRecordCostColumns(t *testing.T) {
	rec := &obs.HistoryRecord{
		PeakRSSBytes:    2048,
		GCPauseTotalSec: 0.25,
		Costs: map[string]obs.StageCost{
			"charlib.cell": {SelfCPUSec: 1.5, WallSec: 2, SelfAllocBytes: 64},
		},
	}
	flat := FlattenRecord(rec)
	want := map[string]float64{
		"cost.charlib.cell.self_cpu_seconds": 1.5,
		"cost.charlib.cell.wall_seconds":     2,
		"cost.charlib.cell.self_alloc_bytes": 64,
		"runtime.peak_rss_bytes":             2048,
		"runtime.gc_pause_total_seconds":     0.25,
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("flat[%q] = %g, want %g", k, flat[k], v)
		}
	}
	if _, ok := flat["cost.charlib.cell.self_alloc_objects"]; ok {
		t.Error("zero dimension should be omitted from trend columns")
	}
}
