package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// CostFromEvents reconstructs a cost report from a journal's typed cost
// events: the summary event (report totals in attrs, no detail payload)
// plus one node event per span path, relinked into a tree by path. run
// selects which journal run to read; "" picks the last run that emitted
// cost events. Returns an error when the events carry no cost data.
func CostFromEvents(evs []obs.Event, run string) (*obs.CostReport, error) {
	if run == "" {
		for i := len(evs) - 1; i >= 0; i-- {
			if evs[i].Kind == obs.KindCost {
				run = evs[i].Run
				break
			}
		}
		if run == "" {
			return nil, fmt.Errorf("forensics: no cost events in journal (was the run started with -cost?)")
		}
	}
	rep := &obs.CostReport{}
	var flat []*obs.CostNode
	sawSummary := false
	for i := range evs {
		e := &evs[i]
		if e.Kind != obs.KindCost || e.Run != run {
			continue
		}
		if len(e.Detail) == 0 {
			sawSummary = true
			rep.WindowSec = attrF64(e.Attrs, "window_seconds")
			rep.ProcessCPUSec = attrF64(e.Attrs, "process_cpu_seconds")
			rep.ProfiledCPUSec = attrF64(e.Attrs, "profiled_cpu_seconds")
			rep.CPUAttributed = e.Attrs["cpu_attributed"] == "true"
			continue
		}
		var n obs.CostNode
		if err := json.Unmarshal(e.Detail, &n); err != nil {
			return nil, fmt.Errorf("forensics: cost event seq %d: %w", e.Seq, err)
		}
		flat = append(flat, &n)
	}
	if !sawSummary && len(flat) == 0 {
		return nil, fmt.Errorf("forensics: run %s has no cost events", run)
	}
	// Relink by path. Emission is preorder, so a parent always precedes its
	// children and child order within the events is the report's sort order.
	byPath := make(map[string]*obs.CostNode, len(flat))
	for _, n := range flat {
		byPath[n.Path] = n
		if i := strings.LastIndex(n.Path, "/"); i >= 0 {
			if p := byPath[n.Path[:i]]; p != nil {
				p.Children = append(p.Children, n)
				continue
			}
		}
		rep.Roots = append(rep.Roots, n)
	}
	return rep, nil
}

func attrF64(attrs map[string]string, key string) float64 {
	v, err := strconv.ParseFloat(attrs[key], 64)
	if err != nil {
		return 0
	}
	return v
}

// WriteStageCosts renders one history record's per-stage cost columns
// (-history records written under -cost) as a text table, hottest self-CPU
// first.
func WriteStageCosts(w io.Writer, rec *obs.HistoryRecord) error {
	if len(rec.Costs) == 0 {
		return fmt.Errorf("forensics: history record %s carries no stage costs (was the run started with -cost?)", rec.Run)
	}
	names := make([]string, 0, len(rec.Costs))
	nameW := len("stage")
	for name := range rec.Costs {
		names = append(names, name)
		if len(name) > nameW {
			nameW = len(name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := rec.Costs[names[i]], rec.Costs[names[j]]
		if a.SelfCPUSec != b.SelfCPUSec {
			return a.SelfCPUSec > b.SelfCPUSec
		}
		return names[i] < names[j]
	})
	ew := &errWriter{w: w}
	ew.printf("stage costs: run %s (%s), peak RSS %d bytes, GC pause %.3fs\n\n",
		rec.Run, rec.Time().Format("2006-01-02 15:04:05"), rec.PeakRSSBytes, rec.GCPauseTotalSec)
	ew.printf("%-*s  %10s  %10s  %14s  %12s  %10s\n",
		nameW, "stage", "self-cpu", "wall", "self-allocs", "self-objs", "gc-cpu")
	for _, name := range names {
		c := rec.Costs[name]
		ew.printf("%-*s  %9.3fs  %9.3fs  %14d  %12d  %9.3fs\n",
			nameW, name, c.SelfCPUSec, c.WallSec, c.SelfAllocBytes, c.SelfAllocObjects, c.GCCPUSec)
	}
	return ew.err
}
