package synth

import (
	"context"
	"sort"
	"strings"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pdk"
	"repro/internal/sta"
)

// ResizeResult summarizes a gate-sizing pass.
type ResizeResult struct {
	Downsized, Upsized int
	DelayBefore        float64
	DelayAfter         float64
}

// ResizeForPower performs slack-guided drive-strength assignment on a
// mapped netlist: gates with timing slack are swapped to smaller drive
// variants of the same function (saving internal energy, input capacitance,
// and leakage), and gates on violating paths are upsized back until the
// delay limit holds. delayBudget is the allowed critical-path delay as a
// multiple of the pre-sizing delay (e.g. 1.02 protects delay, 1.3 trades it
// away). This is the gate-sizing step real power-aware flows run after
// mapping; the baseline scenario leaves sizes as mapped.
func ResizeForPower(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, staOpt sta.Options, delayBudget float64) (*ResizeResult, error) {
	ctx, span := obs.Start(ctx, "synth.resize")
	span.SetAttr("design", nl.Name)
	defer span.End()
	res0, err := sta.Analyze(ctx, nl, lib, staOpt)
	if err != nil {
		return nil, err
	}
	out := &ResizeResult{DelayBefore: res0.CriticalDelay}
	limit := res0.CriticalDelay * delayBudget

	families := driveFamilies(nl)
	// Downsizing sweep: a few iterations of slack-guided swaps.
	for iter := 0; iter < 4; iter++ {
		res, err := sta.Analyze(ctx, nl, lib, staOpt)
		if err != nil {
			return nil, err
		}
		slacks := res.Slacks(limit)
		changed := 0
		for gi := range nl.Gates {
			g := &nl.Gates[gi]
			smaller := nextDrive(families, g.Cell, -1)
			if smaller == "" {
				continue
			}
			slack := slacks[g.Output]
			if slack <= 0 {
				continue
			}
			penalty := delayAt(lib, nl, smaller, g, res) - delayAt(lib, nl, g.Cell, g, res)
			if penalty <= 0 || slack > 3*penalty {
				g.Cell = smaller
				changed++
				out.Downsized++
			}
		}
		if changed == 0 {
			break
		}
	}
	// Repair: upsize along the critical path until the limit holds.
	for iter := 0; iter < 8; iter++ {
		res, err := sta.Analyze(ctx, nl, lib, staOpt)
		if err != nil {
			return nil, err
		}
		out.DelayAfter = res.CriticalDelay
		if res.CriticalDelay <= limit {
			break
		}
		critical := map[string]bool{}
		for _, net := range res.CriticalPath {
			critical[net] = true
		}
		changed := 0
		for gi := range nl.Gates {
			g := &nl.Gates[gi]
			if !critical[g.Output] {
				continue
			}
			bigger := nextDrive(families, g.Cell, +1)
			if bigger == "" {
				continue
			}
			g.Cell = bigger
			changed++
			out.Upsized++
		}
		if changed == 0 {
			break
		}
	}
	if out.DelayAfter == 0 {
		res, err := sta.Analyze(ctx, nl, lib, staOpt)
		if err != nil {
			return nil, err
		}
		out.DelayAfter = res.CriticalDelay
	}
	obs.C("synth.resize.downsized").Add(int64(out.Downsized))
	obs.C("synth.resize.upsized").Add(int64(out.Upsized))
	span.SetAttr("downsized", out.Downsized)
	span.SetAttr("upsized", out.Upsized)
	return out, nil
}

// driveFamilies groups the netlist's available cell variants by base
// function, sorted by drive strength.
func driveFamilies(nl *netlist.Netlist) map[string][]*pdk.Cell {
	fams := map[string][]*pdk.Cell{}
	seen := map[string]bool{}
	for _, g := range nl.Gates {
		def := nl.Cell(g.Cell)
		if def == nil || seen[def.Base] {
			continue
		}
		seen[def.Base] = true
		// Probe all drives of this base via the name convention BASExD.
		for _, d := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
			name := def.Base + "x" + itoa(d)
			if c := nl.Cell(name); c != nil {
				fams[def.Base] = append(fams[def.Base], c)
			}
		}
		sort.Slice(fams[def.Base], func(i, j int) bool {
			return fams[def.Base][i].Drive < fams[def.Base][j].Drive
		})
	}
	return fams
}

// nextDrive returns the name of the adjacent drive variant (dir = -1
// smaller, +1 larger), or "" when none exists.
func nextDrive(fams map[string][]*pdk.Cell, cellName string, dir int) string {
	base := cellName
	if i := strings.LastIndex(cellName, "x"); i > 0 {
		base = cellName[:i]
	}
	fam := fams[base]
	for i, c := range fam {
		if c.Name == cellName {
			j := i + dir
			if j < 0 || j >= len(fam) {
				return ""
			}
			return fam[j].Name
		}
	}
	return ""
}

// delayAt estimates a gate's worst arc delay if it were implemented with
// the given cell, at the operating point from the last STA.
func delayAt(lib *liberty.Library, nl *netlist.Netlist, cellName string, g *netlist.Gate, res *sta.Result) float64 {
	lc := lib.FindCell(cellName)
	def := nl.Cell(cellName)
	if lc == nil || def == nil {
		return 0
	}
	load := res.Load[g.Output]
	var worst float64
	outPin := def.Outputs[0]
	for i, net := range g.Inputs {
		if i >= len(def.Inputs) {
			break
		}
		tm := lc.Timing(outPin, def.Inputs[i])
		if tm == nil {
			continue
		}
		slew := res.Slew[net]
		d := tm.CellRise.Lookup(slew, load)
		if f := tm.CellFall.Lookup(slew, load); f > d {
			d = f
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
