// Package synth implements the paper's three-stage synthesis pipeline
// (Section V-B):
//
//  1. Technology-independent AIG compression — the c2rs script: a chain of
//     balancing, Boolean resubstitution, rewriting, and refactoring.
//  2. Power-aware optimization — structural choices (dch), k-LUT collapse
//     (if), SAT-based don't-care resubstitution (mfs -pegd), and strash,
//     with the cost hierarchy of the selected scenario.
//  3. Technology mapping (map) with the scenario's cost-priority list.
//
// The three scenarios are the paper's: the state-of-the-art power-aware
// baseline, and the two proposed cryogenic-aware priority lists
// power->area->delay and power->delay->area.
package synth

import (
	"context"
	"fmt"

	"repro/internal/aig"
	"repro/internal/liberty"
	"repro/internal/mapper"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sta"
)

// Scenario selects the synthesis cost hierarchy.
type Scenario int

// The paper's three evaluation scenarios.
const (
	// BaselinePowerAware: unmodified priority lists with ABC's best power
	// optimizations enabled (power as final tie-breaker).
	BaselinePowerAware Scenario = iota
	// CryoPAD: the proposed power -> area -> delay hierarchy.
	CryoPAD
	// CryoPDA: the proposed power -> delay -> area hierarchy.
	CryoPDA
)

// String names the scenario as in the paper's figures.
func (s Scenario) String() string {
	switch s {
	case CryoPAD:
		return "p->a->d"
	case CryoPDA:
		return "p->d->a"
	default:
		return "baseline"
	}
}

// MapMode returns the matching technology-mapping cost mode.
func (s Scenario) MapMode() mapper.CostMode {
	switch s {
	case CryoPAD:
		return mapper.PowerAreaDelay
	case CryoPDA:
		return mapper.PowerDelayArea
	default:
		return mapper.Baseline
	}
}

// Options configures a synthesis run.
type Options struct {
	Scenario Scenario
	K        int   // mapping cut size (default 5)
	LutK     int   // stage-2 LUT size (default 6)
	Seed     int64 // simulation seed for activity/don't-care extraction
	// Verify runs a SAT equivalence check after each stage and fails the
	// run on any mismatch (slow; meant for tests and validation runs).
	Verify bool
	// SkipMfs disables the SAT-based don't-care stage (ablation).
	SkipMfs bool
	// SkipChoices disables the structural-choice variants (ablation).
	SkipChoices bool
	// SkipSizing disables the post-mapping drive-strength assignment
	// (ablation). Sizing only runs for the cryogenic-aware scenarios: the
	// baseline keeps the mapper's drive choices, mirroring how the paper's
	// baseline does not get the cryogenic cost functions.
	SkipSizing bool
	// Lib provides the characterized library for the sizing/STA stage; when
	// nil, sizing is skipped.
	Lib *liberty.Library
}

// Result carries the synthesis outcome with per-stage statistics.
type Result struct {
	Scenario Scenario
	// Stage sizes: input, after c2rs, after the power-aware stage.
	NodesIn, NodesC2RS, NodesPower int
	DepthIn, DepthOut              int
	Optimized                      *aig.AIG
	Netlist                        *netlist.Netlist
}

// Synthesize runs the full pipeline on the input AIG against the match
// library.
func Synthesize(ctx context.Context, g *aig.AIG, ml *mapper.MatchLibrary, opt Options) (*Result, error) {
	ctx, span := obs.Start(ctx, "synth.synthesize")
	span.SetAttr("design", g.Name)
	span.SetAttr("scenario", opt.Scenario.String())
	defer span.End()
	obs.C("synth.runs").Inc()
	if opt.K == 0 {
		opt.K = 5
	}
	if opt.LutK == 0 {
		opt.LutK = 6
	}
	res := &Result{Scenario: opt.Scenario, NodesIn: g.NumNodes(), DepthIn: g.Depth()}

	// Stage 1: c2rs.
	_, c2rsSpan := obs.Start(ctx, "synth.c2rs")
	step1 := c2rs(g, opt.Seed)
	c2rsSpan.SetAttr("nodes_in", res.NodesIn)
	c2rsSpan.SetAttr("nodes_out", step1.NumNodes())
	c2rsSpan.End()
	if err := verifyStage(g, step1, opt, "c2rs"); err != nil {
		return nil, err
	}
	res.NodesC2RS = step1.NumNodes()
	obs.C("synth.c2rs.nodes_delta").Add(int64(res.NodesC2RS - res.NodesIn))

	// Stage 2: dch -p; if -p; mfs -pegd; strash.
	_, powSpan := obs.Start(ctx, "synth.power_stage")
	step2, err := powerStage(step1, opt)
	powSpan.End()
	if err != nil {
		return nil, err
	}
	if err := verifyStage(step1, step2, opt, "power-aware stage"); err != nil {
		return nil, err
	}
	res.NodesPower = step2.NumNodes()
	res.DepthOut = step2.Depth()
	res.Optimized = step2
	obs.C("synth.power_stage.nodes_delta").Add(int64(res.NodesPower - res.NodesC2RS))

	// Stage 3: technology mapping with the scenario's priority list.
	nl, err := mapper.Map(ctx, step2, ml, mapper.Options{Mode: opt.Scenario.MapMode(), K: opt.K})
	if err != nil {
		return nil, fmt.Errorf("synth: mapping: %w", err)
	}
	res.Netlist = nl

	// Stage 4: drive-strength assignment (cryogenic-aware scenarios only).
	// The delay budget follows the priority list: p->d->a protects delay;
	// p->a->d lets delay float in exchange for power/area.
	if opt.Lib != nil && !opt.SkipSizing && opt.Scenario != BaselinePowerAware {
		budget := 1.03
		if opt.Scenario == CryoPAD {
			budget = 1.35
		}
		if _, err := ResizeForPower(ctx, nl, opt.Lib, sta.Options{}, budget); err != nil {
			return nil, fmt.Errorf("synth: sizing: %w", err)
		}
	}
	return res, nil
}

// c2rs approximates ABC's compress2rs shortcut: balance and interleaved
// resubstitution / rewriting / refactoring rounds.
func c2rs(g *aig.AIG, seed int64) *aig.AIG {
	ropt := aig.DefaultResubOptions()
	ropt.Seed = seed + 1
	cur := g.Balance()
	cur = cur.Resub(ropt)
	cur = cur.Rewrite(false)
	ropt.Seed = seed + 2
	cur = cur.Resub(ropt)
	cur = cur.Refactor()
	cur = cur.Balance()
	cur = cur.Rewrite(true)
	cur = cur.Balance()
	return cur
}

// powerStage implements dch/if/mfs/strash with scenario-dependent variant
// selection: several structurally different versions of the network are
// prepared (the "choices"), each is collapsed to k-LUTs with power-aware
// cut selection, minimized with SAT don't-cares, and structurally hashed
// back; the variant that wins under the scenario's cost hierarchy is kept.
func powerStage(g *aig.AIG, opt Options) (*aig.AIG, error) {
	variants := []*aig.AIG{g}
	if !opt.SkipChoices {
		variants = append(variants, g.Rewrite(true), g.Balance())
	}
	type scored struct {
		net   *aig.AIG
		power float64
		size  float64
		depth float64
	}
	var best *scored
	for _, v := range variants {
		lut := v.MapLUT(aig.LUTMapOptions{K: opt.LutK, PowerAware: true})
		if !opt.SkipMfs {
			mopt := aig.DefaultMfsOptions()
			mopt.PowerAware = true
			mopt.Seed = opt.Seed + 7
			lut.Mfs(mopt)
		}
		back := lut.Strash()
		s := &scored{
			net:   back,
			power: totalActivity(back),
			size:  float64(back.NumNodes()),
			depth: float64(back.Depth()),
		}
		if best == nil || stageBetter(s.power, s.size, s.depth, best.power, best.size, best.depth, opt.Scenario) {
			best = s
		}
	}
	return best.net, nil
}

// totalActivity sums switching activity over the AND nodes: the
// technology-independent dynamic-power proxy.
func totalActivity(g *aig.AIG) float64 {
	act := g.Activities()
	var sum float64
	for v := g.NumPIs() + 1; v < g.NumVars(); v++ {
		sum += act[v]
	}
	return sum
}

// stageBetter compares stage-2 variants under the scenario's hierarchy.
func stageBetter(p1, s1, d1, p2, s2, d2 float64, sc Scenario) bool {
	cmp := func(a, b float64) int {
		const eps = 0.06
		scale := a
		if b > scale {
			scale = b
		}
		if scale <= 0 {
			return 0
		}
		switch {
		case a < b-eps*scale:
			return -1
		case a > b+eps*scale:
			return 1
		default:
			return 0
		}
	}
	var keys [][2]float64
	switch sc {
	case CryoPAD:
		keys = [][2]float64{{p1, p2}, {s1, s2}, {d1, d2}}
	case CryoPDA:
		keys = [][2]float64{{p1, p2}, {d1, d2}, {s1, s2}}
	default:
		keys = [][2]float64{{s1, s2}, {d1, d2}, {p1, p2}}
	}
	for _, k := range keys {
		if c := cmp(k[0], k[1]); c != 0 {
			return c < 0
		}
	}
	return false
}

func verifyStage(before, after *aig.AIG, opt Options, stage string) error {
	if !opt.Verify {
		return nil
	}
	eq, proven := aig.Equivalent(before, after, 200000)
	if !proven {
		return fmt.Errorf("synth: %s: equivalence not proven within budget", stage)
	}
	if !eq {
		return fmt.Errorf("synth: %s BROKE the circuit", stage)
	}
	return nil
}
