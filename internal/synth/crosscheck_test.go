package synth

import (
	"context"
	"testing"

	"repro/internal/aig"
	"repro/internal/charlib"
	"repro/internal/mapper"
	"repro/internal/pdk"
	"repro/internal/spice"
	"repro/internal/sta"
)

// TestSTAMatchesSPICE closes the loop across the whole stack: a circuit is
// mapped onto a small SPICE-characterized library, its critical delay is
// predicted by liberty-table STA, and then the very same mapped netlist is
// expanded transistor-by-transistor and re-simulated with the SPICE engine.
// The two delays must agree within NLDM-interpolation accuracy.
func TestSTAMatchesSPICE(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization-backed cross-check skipped in -short mode")
	}
	subset := []string{"INVx1", "BUFx1", "NAND2x1", "NOR2x1", "AND2x1", "OR2x1",
		"NAND2Bx1", "NOR2Bx1", "AND2Bx1", "OR2Bx1", "XOR2x1", "XNOR2x1"}
	catalog := pdk.Catalog()
	var cells []*pdk.Cell
	for _, n := range subset {
		cells = append(cells, pdk.FindCell(catalog, n))
	}
	const temp = 300.0
	lib, err := charlib.CharacterizeLibrary(context.Background(), "xcheck", cells, charlib.QuickConfig(temp), nil)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := mapper.BuildMatchLibrary(lib, cells, 4)
	if err != nil {
		t.Fatal(err)
	}

	// XOR chain: every input toggle propagates to the output, so the SPICE
	// measurement excites the same path STA reports.
	g := aig.New("xorchain")
	n := 4
	pis := make([]aig.Lit, n)
	pis[0] = g.AddPI("x0")
	for i := 1; i < n; i++ {
		pis[i] = g.AddPI(itoaPI(i))
	}
	acc := pis[0]
	for i := 1; i < n; i++ {
		acc = g.Xor(acc, pis[i])
	}
	g.AddPO(acc, "y")

	nl, err := mapper.Map(context.Background(), g, ml, mapper.Options{Mode: mapper.Baseline, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	const vdd = 0.7
	const inSlew = 10e-12
	const outCap = 1e-15
	staRes, err := sta.Analyze(context.Background(), nl, lib, sta.Options{InputSlew: inSlew, OutputCap: outCap, WireCap: 1e-18})
	if err != nil {
		t.Fatal(err)
	}
	if staRes.CriticalDelay <= 0 {
		t.Fatal("STA returned no delay")
	}

	// Transistor-level re-simulation of the mapped netlist.
	c := spice.New(temp)
	_, nodes, err := nl.BuildSPICE(c, vdd)
	if err != nil {
		t.Fatal(err)
	}
	t0 := 30e-12
	ramp := inSlew
	c.AddVSource(nodes["x0"], spice.Ground, spice.PWL(
		[2]float64{0, 0}, [2]float64{t0, 0}, [2]float64{t0 + ramp, vdd}))
	for i := 1; i < n; i++ {
		c.AddVSource(nodes[itoaPI(i)], spice.Ground, spice.DC(0))
	}
	c.AddCapacitor(nodes["y"], spice.Ground, outCap)
	wf, err := c.Transient(1.2e-9, 0.5e-12)
	if err != nil {
		t.Fatal(err)
	}
	in := wf.V(c.NodeName(nodes["x0"]))
	out := wf.V(c.NodeName(nodes["y"]))
	tIn, ok1 := wf.CrossTime(in, vdd/2, true, 0)
	// The output direction depends on the mapped polarity chain; find
	// either crossing after the stimulus.
	tOut, ok2 := wf.CrossTime(out, vdd/2, true, tIn)
	if !ok2 {
		tOut, ok2 = wf.CrossTime(out, vdd/2, false, tIn)
	}
	if !ok1 || !ok2 {
		t.Fatal("SPICE crossings not found")
	}
	spiceDelay := tOut - tIn

	ratio := spiceDelay / staRes.CriticalDelay
	t.Logf("critical delay: STA %.2f ps vs SPICE %.2f ps (ratio %.2f, %d gates)",
		staRes.CriticalDelay*1e12, spiceDelay*1e12, ratio, nl.NumGates())
	// STA is worst-case over arcs/directions and quantized to the NLDM
	// grid; the single measured path must land in the same regime.
	if ratio < 0.3 || ratio > 1.6 {
		t.Errorf("STA and SPICE disagree: STA %.3g s, SPICE %.3g s", staRes.CriticalDelay, spiceDelay)
	}
}

func itoaPI(i int) string {
	return "x" + string(rune('0'+i))
}
