package synth

import (
	"context"
	"fmt"

	"repro/internal/aig"
	"repro/internal/liberty"
	"repro/internal/mapper"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sta"
)

// ScenarioMetrics holds the signoff results of one synthesis scenario.
type ScenarioMetrics struct {
	Scenario Scenario
	Gates    int
	Area     float64
	Delay    float64 // critical-path delay from STA
	Power    *power.Report
}

// Comparison is the paper's per-circuit evaluation: all three scenarios
// synthesized, timed, and power-analyzed under the shared clock
// normalization (footnote 1: the clock period is set to the propagation
// delay of the slowest resulting circuit variant, so faster variants are
// not penalized with higher clock rates).
type Comparison struct {
	Circuit     string
	ClockPeriod float64
	Metrics     [3]ScenarioMetrics
}

// FlowOptions configures a comparison run.
type FlowOptions struct {
	K       int
	LutK    int
	Seed    int64
	Verify  bool
	STA     sta.Options
	SkipMfs bool
	// Sizing enables the post-mapping drive-strength assignment stage for
	// the cryogenic-aware scenarios (off by default: the mapper's area/power
	// flows already pick minimal drives, so sizing mostly re-balances slews).
	Sizing bool
}

// Compare synthesizes the circuit under all three scenarios against the
// given characterized library and reports normalized power/delay metrics.
func Compare(ctx context.Context, g *aig.AIG, ml *mapper.MatchLibrary, lib *liberty.Library, opt FlowOptions) (*Comparison, error) {
	ctx, span := obs.Start(ctx, "synth.compare")
	span.SetAttr("design", g.Name)
	defer span.End()
	cmp := &Comparison{Circuit: g.Name}
	scenarios := []Scenario{BaselinePowerAware, CryoPAD, CryoPDA}
	results := make([]*Result, len(scenarios))
	for i, sc := range scenarios {
		sizeLib := lib
		if !opt.Sizing {
			sizeLib = nil
		}
		res, err := Synthesize(ctx, g, ml, Options{
			Scenario: sc, K: opt.K, LutK: opt.LutK, Seed: opt.Seed,
			Verify: opt.Verify, SkipMfs: opt.SkipMfs, Lib: sizeLib,
		})
		if err != nil {
			return nil, fmt.Errorf("synth: %s scenario %v: %w", g.Name, sc, err)
		}
		results[i] = res
	}
	// STA for every variant; the slowest defines the shared clock.
	var worst float64
	timings := make([]*sta.Result, len(scenarios))
	for i, res := range results {
		tr, err := sta.Analyze(ctx, res.Netlist, lib, opt.STA)
		if err != nil {
			return nil, fmt.Errorf("synth: %s STA: %w", g.Name, err)
		}
		timings[i] = tr
		if tr.CriticalDelay > worst {
			worst = tr.CriticalDelay
		}
	}
	cmp.ClockPeriod = worst * 1.05 // small guard band over the slowest variant
	for i, sc := range scenarios {
		rep, err := power.Analyze(ctx, results[i].Netlist, lib, power.Options{
			ClockPeriod: cmp.ClockPeriod,
			Seed:        opt.Seed + int64(i),
			STA:         opt.STA,
		})
		if err != nil {
			return nil, fmt.Errorf("synth: %s power: %w", g.Name, err)
		}
		cmp.Metrics[sc] = ScenarioMetrics{
			Scenario: sc,
			Gates:    results[i].Netlist.NumGates(),
			Area:     results[i].Netlist.Area(),
			Delay:    timings[i].CriticalDelay,
			Power:    rep,
		}
	}
	return cmp, nil
}

// PowerSaving returns the fractional power saving of a proposed scenario
// relative to the baseline (positive = the proposed scenario dissipates
// less, the paper's Fig. 3a quantity).
func (c *Comparison) PowerSaving(sc Scenario) float64 {
	base := c.Metrics[BaselinePowerAware].Power.Total()
	if base == 0 {
		return 0
	}
	return (base - c.Metrics[sc].Power.Total()) / base
}

// DelayOverhead returns the fractional delay increase of a proposed
// scenario relative to the baseline (negative = the proposed scenario is
// faster, the paper's Fig. 3b quantity).
func (c *Comparison) DelayOverhead(sc Scenario) float64 {
	base := c.Metrics[BaselinePowerAware].Delay
	if base == 0 {
		return 0
	}
	return (c.Metrics[sc].Delay - base) / base
}

// VerifyMapped checks that a synthesized netlist still realizes the source
// AIG on bit-parallel random patterns (plus exhaustive patterns when the
// input count allows); it returns an error on the first mismatch.
func VerifyMapped(g *aig.AIG, res *Result, rounds int, seed int64) error {
	nl := res.Netlist
	for round := 0; round < rounds; round++ {
		words := make([]uint64, g.NumPIs())
		in := make(map[string]uint64, g.NumPIs())
		rng := seededRng(seed + int64(round))
		for i := range words {
			words[i] = rng.Uint64()
			if round == 0 && g.NumPIs() <= 6 {
				words[i] = aig.Truth6Var(i)
			}
			in[g.PIName(i)] = words[i]
		}
		vals := g.SimWords(words)
		netVals, err := nl.SimulateWords(in)
		if err != nil {
			return err
		}
		for i := 0; i < g.NumPOs(); i++ {
			want := aig.EvalLit(vals, g.PO(i))
			got, ok := netVals[nl.Resolve(g.POName(i))]
			if !ok {
				return fmt.Errorf("synth: output %s undriven", g.POName(i))
			}
			if got != want {
				return fmt.Errorf("synth: output %s mismatches on round %d", g.POName(i), round)
			}
		}
	}
	return nil
}

type xorshift struct{ s uint64 }

func seededRng(seed int64) *xorshift {
	return &xorshift{s: uint64(seed)*2685821657736338717 + 1}
}

func (x *xorshift) Uint64() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}
