package synth

import (
	"context"
	"testing"

	"repro/internal/aig"
	"repro/internal/epfl"
	"repro/internal/mapper"
	"repro/internal/pdk"
	"repro/internal/sta"
	"repro/internal/testlib"
)

var catalog = pdk.Catalog()

func buildML(t *testing.T, temp float64) (*mapper.MatchLibrary, *testLibHandle) {
	t.Helper()
	lib, used := testlib.Build(catalog, testlib.Names(), temp)
	ml, err := mapper.BuildMatchLibrary(lib, used, 6)
	if err != nil {
		t.Fatal(err)
	}
	return ml, &testLibHandle{lib: lib}
}

type testLibHandle struct{ lib interface{} }

func TestScenarioStrings(t *testing.T) {
	if BaselinePowerAware.String() != "baseline" ||
		CryoPAD.String() != "p->a->d" || CryoPDA.String() != "p->d->a" {
		t.Error("scenario names drifted from the paper's labels")
	}
	if CryoPAD.MapMode() != mapper.PowerAreaDelay || CryoPDA.MapMode() != mapper.PowerDelayArea {
		t.Error("scenario->mapper mode binding broken")
	}
}

func TestSynthesizeSmallCircuitsVerified(t *testing.T) {
	ml, _ := buildML(t, 300)
	for _, name := range []string{"ctrl", "int2float", "router", "cavlc", "dec"} {
		g, err := epfl.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []Scenario{BaselinePowerAware, CryoPAD, CryoPDA} {
			res, err := Synthesize(context.Background(), g, ml, Options{Scenario: sc, Verify: true, Seed: 5})
			if err != nil {
				t.Fatalf("%s %v: %v", name, sc, err)
			}
			if res.Netlist.NumGates() == 0 {
				t.Fatalf("%s %v: empty netlist", name, sc)
			}
			if err := VerifyMapped(g, res, 6, 11); err != nil {
				t.Fatalf("%s %v: mapped netlist wrong: %v", name, sc, err)
			}
		}
	}
}

func TestC2RSCompresses(t *testing.T) {
	// The paper's stage 1 exists to shrink the input AIG; on the
	// mux-heavy benchmarks it must not grow it.
	for _, name := range []string{"int2float", "priority", "i2c"} {
		g, err := epfl.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		opt := c2rs(g, 3)
		if opt.NumNodes() > g.NumNodes() {
			t.Errorf("%s: c2rs grew the network %d -> %d", name, g.NumNodes(), opt.NumNodes())
		}
		eq, proven := aig.Equivalent(g, opt, 100000)
		if !proven || !eq {
			t.Fatalf("%s: c2rs equivalence eq=%v proven=%v", name, eq, proven)
		}
	}
}

func TestPowerStagePreservesFunction(t *testing.T) {
	g, err := epfl.Build("router")
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []Scenario{BaselinePowerAware, CryoPAD, CryoPDA} {
		out, err := powerStage(g, Options{Scenario: sc, LutK: 6, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		eq, proven := aig.Equivalent(g, out, 100000)
		if !proven || !eq {
			t.Fatalf("scenario %v: power stage eq=%v proven=%v", sc, eq, proven)
		}
	}
}

func TestCompareProducesMetrics(t *testing.T) {
	ml, _ := buildML(t, 300)
	lib, _ := testlib.Build(catalog, testlib.Names(), 300)
	g, err := epfl.Build("int2float")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(context.Background(), g, ml, lib, FlowOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ClockPeriod <= 0 {
		t.Fatal("clock period not set")
	}
	for _, sc := range []Scenario{BaselinePowerAware, CryoPAD, CryoPDA} {
		m := cmp.Metrics[sc]
		if m.Gates == 0 || m.Delay <= 0 || m.Power == nil || m.Power.Total() <= 0 {
			t.Errorf("scenario %v metrics incomplete: %+v", sc, m)
		}
		if m.Delay > cmp.ClockPeriod {
			t.Errorf("scenario %v delay %v exceeds the shared clock %v", sc, m.Delay, cmp.ClockPeriod)
		}
	}
	// The savings/overhead accessors are exact transforms of the metrics.
	for _, sc := range []Scenario{CryoPAD, CryoPDA} {
		s := cmp.PowerSaving(sc)
		if s <= -1 || s >= 1 {
			t.Errorf("scenario %v power saving out of range: %v", sc, s)
		}
	}
	if cmp.PowerSaving(BaselinePowerAware) != 0 {
		t.Error("baseline saving vs itself must be zero")
	}
	if cmp.DelayOverhead(BaselinePowerAware) != 0 {
		t.Error("baseline overhead vs itself must be zero")
	}
}

func TestStageBetterHierarchy(t *testing.T) {
	// power 10 vs 20, size 5 vs 1, depth 1 vs 5.
	if !stageBetter(10, 5, 1, 20, 1, 5, CryoPAD) {
		t.Error("p->a->d must pick the lower-power variant")
	}
	if stageBetter(10, 5, 1, 20, 1, 5, BaselinePowerAware) {
		t.Error("baseline must pick the smaller variant")
	}
	// Power tie: area decides for PAD, depth for PDA.
	if !stageBetter(10, 1, 9, 10.05, 5, 1, CryoPAD) {
		t.Error("p->a->d tie on power must fall to area")
	}
	if stageBetter(10, 1, 9, 10.05, 5, 1, CryoPDA) {
		t.Error("p->d->a tie on power must fall to delay")
	}
}

func TestAblationFlags(t *testing.T) {
	ml, _ := buildML(t, 300)
	g, err := epfl.Build("router")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Synthesize(context.Background(), g, ml, Options{Scenario: CryoPAD, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	noMfs, err := Synthesize(context.Background(), g, ml, Options{Scenario: CryoPAD, Seed: 1, SkipMfs: true})
	if err != nil {
		t.Fatal(err)
	}
	noChoices, err := Synthesize(context.Background(), g, ml, Options{Scenario: CryoPAD, Seed: 1, SkipChoices: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{full, noMfs, noChoices} {
		if err := VerifyMapped(g, r, 4, 9); err != nil {
			t.Fatalf("ablation variant broke function: %v", err)
		}
	}
}

func TestResizeForPower(t *testing.T) {
	ml, _ := buildML(t, 10)
	lib, _ := testlib.Build(catalog, testlib.Names(), 10)
	g, err := epfl.Build("int2float")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(context.Background(), g, ml, Options{Scenario: CryoPAD, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ResizeForPower(context.Background(), res.Netlist, lib, staOptions(), 1.3)
	if err != nil {
		t.Fatal(err)
	}
	// Delay must respect the budget.
	if rr.DelayAfter > rr.DelayBefore*1.3*1.001 {
		t.Errorf("sizing violated the delay budget: %v -> %v", rr.DelayBefore, rr.DelayAfter)
	}
	// The resized netlist must still be functionally correct.
	if err := VerifyMapped(g, res, 4, 3); err != nil {
		t.Fatalf("sizing broke the netlist: %v", err)
	}
}

func TestSizingScenarioIntegration(t *testing.T) {
	ml, _ := buildML(t, 10)
	lib, _ := testlib.Build(catalog, testlib.Names(), 10)
	g, err := epfl.Build("router")
	if err != nil {
		t.Fatal(err)
	}
	// With the library provided, sizing runs for cryo scenarios; every
	// variant must still verify.
	for _, sc := range []Scenario{BaselinePowerAware, CryoPAD, CryoPDA} {
		res, err := Synthesize(context.Background(), g, ml, Options{Scenario: sc, Seed: 4, Lib: lib})
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if err := VerifyMapped(g, res, 4, 5); err != nil {
			t.Fatalf("%v: sized netlist wrong: %v", sc, err)
		}
	}
	// Ablation flag must disable it without breaking anything.
	if _, err := Synthesize(context.Background(), g, ml, Options{Scenario: CryoPAD, Seed: 4, Lib: lib, SkipSizing: true}); err != nil {
		t.Fatal(err)
	}
}

func staOptions() sta.Options { return sta.Options{} }

func TestNextDrive(t *testing.T) {
	ml, _ := buildML(t, 300)
	g, err := epfl.Build("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(context.Background(), g, ml, Options{Scenario: BaselinePowerAware, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fams := driveFamilies(res.Netlist)
	if len(fams) == 0 {
		t.Fatal("no drive families discovered")
	}
	// Walking up then down returns to the start; the ends terminate.
	for base, fam := range fams {
		if len(fam) < 2 {
			continue
		}
		first := fam[0].Name
		up := nextDrive(fams, first, +1)
		if up == "" {
			t.Fatalf("%s: no upsize from smallest", base)
		}
		if back := nextDrive(fams, up, -1); back != first {
			t.Fatalf("%s: up+down != identity (%s -> %s -> %s)", base, first, up, back)
		}
		if nextDrive(fams, first, -1) != "" {
			t.Fatalf("%s: downsize below smallest should fail", base)
		}
		last := fam[len(fam)-1].Name
		if nextDrive(fams, last, +1) != "" {
			t.Fatalf("%s: upsize above largest should fail", base)
		}
	}
	if nextDrive(fams, "NOPEx1", 1) != "" {
		t.Error("unknown cell should have no drive neighbors")
	}
}

func TestSynthesizedNetlistsPassDRC(t *testing.T) {
	ml, _ := buildML(t, 300)
	for _, name := range []string{"ctrl", "router", "dec"} {
		g, err := epfl.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []Scenario{BaselinePowerAware, CryoPAD, CryoPDA} {
			res, err := Synthesize(context.Background(), g, ml, Options{Scenario: sc, Seed: 6})
			if err != nil {
				t.Fatal(err)
			}
			if issues := res.Netlist.Check(); len(issues) != 0 {
				t.Errorf("%s %v: mapped netlist DRC: %v", name, sc, issues)
			}
		}
	}
}
