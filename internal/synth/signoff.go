package synth

import (
	"context"
	"fmt"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/obs"
)

// SignoffReport is the result of the formal signoff gate: both hand-offs of
// the synthesis pipeline checked by the SAT-sweeping equivalence engine.
type SignoffReport struct {
	// PrePost: source AIG vs optimized AIG (stages 1-2 preserved function).
	PrePost *cec.Verdict
	// PostMapped: optimized AIG vs the mapped netlist re-elaborated to an
	// AIG (technology mapping preserved function).
	PostMapped *cec.Verdict
}

// OK reports whether both hand-offs were proven equivalent.
func (r *SignoffReport) OK() bool {
	return r.PrePost.Status == cec.Equal && r.PostMapped.Status == cec.Equal
}

// SignoffVerify formally verifies a synthesis result against its source
// AIG: pre-opt ≡ post-opt and post-opt ≡ mapped netlist. Unlike the
// simulation spot-check VerifyMapped, this is a complete decision procedure
// (up to the configured conflict budgets): EQUAL is a proof, NOT-EQUAL
// carries a concrete distinguishing input vector.
func SignoffVerify(ctx context.Context, golden *aig.AIG, res *Result, opt cec.Options) (*SignoffReport, error) {
	ctx, span := obs.Start(ctx, "synth.signoff")
	span.SetAttr("design", golden.Name)
	defer span.End()
	if res.Optimized == nil || res.Netlist == nil {
		return nil, fmt.Errorf("synth: signoff needs a completed synthesis result")
	}
	rep := &SignoffReport{}
	rep.PrePost = cec.Check(ctx, golden, res.Optimized, opt)
	mapped, err := cec.Elaborate(res.Netlist)
	if err != nil {
		return nil, fmt.Errorf("synth: signoff elaboration: %w", err)
	}
	rep.PostMapped = cec.Check(ctx, res.Optimized, mapped, opt)
	span.SetAttr("ok", rep.OK())
	return rep, nil
}
