package fit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/measure"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	x, v := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+1) > 1e-4 {
		t.Errorf("minimum at %v, want (3,-1)", x)
	}
	if v > 1e-7 {
		t.Errorf("objective %v, want ~0", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _ := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 8000})
	if math.Abs(x[0]-1) > 0.02 || math.Abs(x[1]-1) > 0.04 {
		t.Errorf("Rosenbrock minimum at %v, want (1,1)", x)
	}
}

func TestQuickNelderMeadNeverWorsens(t *testing.T) {
	// The returned value must never exceed the starting objective.
	f := func(ax, bx int8) bool {
		cx := float64(ax) / 16
		cy := float64(bx) / 16
		obj := func(x []float64) float64 {
			return math.Abs(x[0]-cx) + (x[1]-cy)*(x[1]-cy)
		}
		start := []float64{1, 1}
		_, v := NelderMead(obj, start, NelderMeadOptions{MaxIter: 200})
		return v <= obj(start)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateRecoversNFET(t *testing.T) {
	testCalibrateRecovers(t, device.NFET, 7, 11)
}

func TestCalibrateRecoversPFET(t *testing.T) {
	testCalibrateRecovers(t, device.PFET, 13, 17)
}

func testCalibrateRecovers(t *testing.T, typ device.Type, siliconSeed, stationSeed int64) {
	t.Helper()
	silicon := measure.ReferenceSilicon(typ, siliconSeed)
	st := measure.NewStation(stationSeed)
	ds := st.Measure(silicon, measure.PaperPlan())

	var initial *device.Model
	if typ == device.PFET {
		initial = device.NewP(1)
	} else {
		initial = device.NewN(1)
	}
	before := LogRMSError(initial, ds, st.NoiseFloor)
	res := Calibrate(initial, ds, AllKnobs, st.NoiseFloor)
	if res.RMSLog >= before {
		t.Errorf("%v: calibration did not improve: before=%v after=%v", typ, before, res.RMSLog)
	}
	// "Excellent agreement": within a few hundredths of a decade RMS.
	if res.RMSLog > 0.08 {
		t.Errorf("%v: post-calibration RMS log error %v, want < 0.08 decades", typ, res.RMSLog)
	}
	// The extracted threshold should land near the hidden silicon's value.
	if d := math.Abs(res.Model.P.Vth0 - silicon.P.Vth0); d > 0.03 {
		t.Errorf("%v: extracted Vth0 off by %v V from silicon", typ, d)
	}
}

func TestCalibrateSubsetKnobs(t *testing.T) {
	silicon := measure.ReferenceSilicon(device.NFET, 21)
	st := measure.NewStation(22)
	ds := st.Measure(silicon, measure.PaperPlan())
	initial := device.NewN(1)
	res := Calibrate(initial, ds, []Knob{KnobVth0, KnobMuPh0}, st.NoiseFloor)
	if len(res.KnobsUsed) != 2 {
		t.Fatalf("KnobsUsed = %v", res.KnobsUsed)
	}
	// Untouched knobs must keep the initial values.
	if res.Model.P.TBand != initial.P.TBand || res.Model.P.N0 != initial.P.N0 {
		t.Error("subset calibration modified knobs outside the set")
	}
	if res.Model.P.Vth0 == initial.P.Vth0 {
		t.Error("subset calibration did not move the selected knob")
	}
}

func TestLogRMSErrorIgnoresNoiseFloor(t *testing.T) {
	m := device.NewN(1)
	ds := measure.Dataset{Points: []measure.Point{
		{Vgs: 0.7, Vds: 0.7, TempAct: 300, Ids: m.Ids(0.7, 0.7, 300)},
		{Vgs: 0.0, Vds: 0.05, TempAct: 300, Ids: 1e-14}, // below 10x floor
	}}
	if got := LogRMSError(m, ds, 1e-13); got > 1e-9 {
		t.Errorf("exact on-point with sub-floor point gave RMS %v, want ~0", got)
	}
}

func TestLogRMSErrorEmptyDataset(t *testing.T) {
	m := device.NewN(1)
	if got := LogRMSError(m, measure.Dataset{}, 1e-13); !math.IsInf(got, 1) {
		t.Errorf("empty dataset RMS = %v, want +Inf", got)
	}
}

func TestKnobRoundTrip(t *testing.T) {
	p := device.DefaultNParams()
	for _, k := range AllKnobs {
		orig := getKnob(&p, k)
		setKnob(&p, k, orig*1.25)
		if got := getKnob(&p, k); math.Abs(got-orig*1.25) > 1e-12*math.Abs(orig) {
			t.Errorf("knob %v: set/get mismatch: %v vs %v", k, got, orig*1.25)
		}
		setKnob(&p, k, orig)
	}
	// Guard rails: N0 clamps at 1, TBand/MuPh0 take magnitudes.
	setKnob(&p, KnobN0, 0.5)
	if p.N0 < 1 {
		t.Errorf("N0 clamp failed: %v", p.N0)
	}
	setKnob(&p, KnobTBand, -40)
	if p.TBand != 40 {
		t.Errorf("TBand magnitude clamp failed: %v", p.TBand)
	}
}
