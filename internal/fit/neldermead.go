// Package fit calibrates the cryogenic compact model against measurement
// datasets, playing the role of the paper's model-calibration step (Section
// II-C): parameter extraction so that SPICE lines agree with measured dots
// across the whole 300 K -> 10 K range.
package fit

import (
	"math"
	"sort"
)

// Objective is a scalar function to minimize.
type Objective func(x []float64) float64

// NelderMeadOptions tunes the simplex search.
type NelderMeadOptions struct {
	MaxIter int     // maximum iterations (default 2000)
	TolF    float64 // convergence tolerance on the function spread (default 1e-10)
	Scale   float64 // initial simplex displacement relative to |x| (default 0.05)
}

// NelderMead minimizes f starting from x0 using the downhill-simplex method.
// It returns the best point found and its objective value. The method is
// derivative-free, which suits the piecewise-physical compact-model
// objective.
func NelderMead(f Objective, x0 []float64, opt NelderMeadOptions) ([]float64, float64) {
	if opt.MaxIter == 0 {
		opt.MaxIter = 2000
	}
	if opt.TolF == 0 {
		opt.TolF = 1e-10
	}
	if opt.Scale == 0 {
		opt.Scale = 0.05
	}
	n := len(x0)
	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	for i := range simplex {
		x := append([]float64(nil), x0...)
		if i > 0 {
			d := opt.Scale * math.Abs(x[i-1])
			if d == 0 {
				d = opt.Scale
			}
			x[i-1] += d
		}
		simplex[i] = vertex{x, f(x)}
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	centroid := make([]float64, n)
	for iter := 0; iter < opt.MaxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if simplex[n].f-simplex[0].f < opt.TolF {
			break
		}
		for j := 0; j < n; j++ {
			centroid[j] = 0
			for i := 0; i < n; i++ {
				centroid[j] += simplex[i].x[j]
			}
			centroid[j] /= float64(n)
		}
		reflect := make([]float64, n)
		for j := range reflect {
			reflect[j] = centroid[j] + alpha*(centroid[j]-simplex[n].x[j])
		}
		fr := f(reflect)
		switch {
		case fr < simplex[0].f:
			expand := make([]float64, n)
			for j := range expand {
				expand[j] = centroid[j] + gamma*(reflect[j]-centroid[j])
			}
			if fe := f(expand); fe < fr {
				simplex[n] = vertex{expand, fe}
			} else {
				simplex[n] = vertex{reflect, fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{reflect, fr}
		default:
			contract := make([]float64, n)
			for j := range contract {
				contract[j] = centroid[j] + rho*(simplex[n].x[j]-centroid[j])
			}
			if fc := f(contract); fc < simplex[n].f {
				simplex[n] = vertex{contract, fc}
			} else {
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return simplex[0].x, simplex[0].f
}
