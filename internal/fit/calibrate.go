package fit

import (
	"math"

	"repro/internal/device"
	"repro/internal/measure"
)

// Knob identifies one tunable parameter of the compact model exposed to the
// extractor.
type Knob int

// Extraction knobs, mirroring the physics the paper's calibration targets:
// threshold and its temperature drift, band-tail critical temperature,
// transport, ideality, and DIBL.
const (
	KnobVth0 Knob = iota
	KnobVthTC
	KnobTBand
	KnobMuPh0
	KnobMuExp
	KnobN0
	KnobDIBL
	numKnobs
)

// AllKnobs lists every extraction knob.
var AllKnobs = []Knob{KnobVth0, KnobVthTC, KnobTBand, KnobMuPh0, KnobMuExp, KnobN0, KnobDIBL}

func getKnob(p *device.Params, k Knob) float64 {
	switch k {
	case KnobVth0:
		return p.Vth0
	case KnobVthTC:
		return p.VthTC
	case KnobTBand:
		return p.TBand
	case KnobMuPh0:
		return p.MuPh0
	case KnobMuExp:
		return p.MuExp
	case KnobN0:
		return p.N0
	case KnobDIBL:
		return p.DIBL
	}
	panic("fit: unknown knob")
}

func setKnob(p *device.Params, k Knob, v float64) {
	switch k {
	case KnobVth0:
		p.Vth0 = v
	case KnobVthTC:
		p.VthTC = v
	case KnobTBand:
		p.TBand = math.Abs(v)
	case KnobMuPh0:
		p.MuPh0 = math.Abs(v)
	case KnobMuExp:
		p.MuExp = math.Abs(v)
	case KnobN0:
		p.N0 = math.Max(1.0, v)
	case KnobDIBL:
		p.DIBL = math.Abs(v)
	default:
		panic("fit: unknown knob")
	}
}

// Result reports a calibration outcome.
type Result struct {
	Model     *device.Model
	RMSLog    float64 // RMS error in log10(current) over fit-significant points
	Residual  float64 // final objective value
	Evals     int     // objective evaluations performed
	KnobsUsed []Knob
}

// LogRMSError computes the RMS disagreement in log10 current between a model
// and a dataset, considering points where the measured current is above the
// noise-significance threshold (10x the instrument floor). This is the
// quantitative form of the paper's "excellent agreement" claim for Fig. 1.
func LogRMSError(m *device.Model, ds measure.Dataset, floor float64) float64 {
	var sum float64
	var n int
	for _, pt := range ds.Points {
		meas := math.Abs(pt.Ids)
		if meas < 10*floor {
			continue
		}
		sim := math.Abs(m.Ids(pt.Vgs, pt.Vds, pt.TempAct))
		if sim < floor {
			sim = floor
		}
		d := math.Log10(meas) - math.Log10(sim)
		sum += d * d
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(sum / float64(n))
}

// Calibrate extracts the given knobs of the initial model so that its I-V
// curves match the dataset, using a log-current least-squares objective
// (subthreshold decades and on-current contribute comparably, as in
// industrial extraction flows). The initial model is not modified.
func Calibrate(initial *device.Model, ds measure.Dataset, knobs []Knob, noiseFloor float64) Result {
	if len(knobs) == 0 {
		knobs = AllKnobs
	}
	work := &device.Model{Type: initial.Type, P: initial.P}
	evals := 0
	obj := func(x []float64) float64 {
		evals++
		p := initial.P
		for i, k := range knobs {
			setKnob(&p, k, x[i])
		}
		work.P = p
		return LogRMSError(work, ds, noiseFloor)
	}
	x0 := make([]float64, len(knobs))
	for i, k := range knobs {
		p := initial.P
		x0[i] = getKnob(&p, k)
	}
	best, residual := NelderMead(obj, x0, NelderMeadOptions{MaxIter: 1500, Scale: 0.08})
	final := initial.P
	for i, k := range knobs {
		setKnob(&final, k, best[i])
	}
	m := &device.Model{Type: initial.Type, P: final}
	return Result{
		Model:     m,
		RMSLog:    LogRMSError(m, ds, noiseFloor),
		Residual:  residual,
		Evals:     evals,
		KnobsUsed: knobs,
	}
}
