package netlist

import (
	"fmt"
	"sort"
)

// Issue is one netlist DRC finding.
type Issue struct {
	Kind string // "undriven", "multi-driver", "unused-gate", "bad-order", "undriven-output"
	Net  string
	Gate string
}

func (i Issue) String() string {
	if i.Gate != "" {
		return fmt.Sprintf("%s: net %q (gate %s)", i.Kind, i.Net, i.Gate)
	}
	return fmt.Sprintf("%s: net %q", i.Kind, i.Net)
}

// Check runs structural design-rule checks on the netlist: every consumed
// net must have exactly one driver (or be a primary input), gate order must
// be topological, primary outputs must resolve to driven nets, and every
// gate's output should reach a primary output (dead logic is reported, not
// fatal). Findings are sorted deterministically.
func (n *Netlist) Check() []Issue {
	var issues []Issue
	driven := make(map[string]string, len(n.Gates)) // net -> driver gate
	driven[Const0] = "<const>"
	driven[Const1] = "<const>"
	for _, in := range n.Inputs {
		driven[in] = "<input>"
	}
	for _, g := range n.Gates {
		for _, in := range g.Inputs {
			if _, ok := driven[in]; !ok {
				issues = append(issues, Issue{Kind: "bad-order", Net: in, Gate: g.Name})
			}
		}
		if prev, ok := driven[g.Output]; ok {
			issues = append(issues, Issue{Kind: "multi-driver", Net: g.Output, Gate: g.Name + "/" + prev})
		}
		driven[g.Output] = g.Name
	}
	// Outputs must resolve to driven nets.
	for _, out := range n.Outputs {
		if _, ok := driven[n.Resolve(out)]; !ok {
			issues = append(issues, Issue{Kind: "undriven-output", Net: out})
		}
	}
	// Reachability: gates whose output feeds nothing and no PO.
	used := make(map[string]bool, len(n.Gates))
	for _, g := range n.Gates {
		for _, in := range g.Inputs {
			used[in] = true
		}
	}
	for _, out := range n.Outputs {
		used[n.Resolve(out)] = true
	}
	for _, g := range n.Gates {
		if !used[g.Output] {
			issues = append(issues, Issue{Kind: "unused-gate", Net: g.Output, Gate: g.Name})
		}
	}
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].Kind != issues[j].Kind {
			return issues[i].Kind < issues[j].Kind
		}
		return issues[i].Net < issues[j].Net
	})
	return issues
}
