package netlist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/pdk"
)

var catalog = pdk.Catalog()

func simpleNetlist(t *testing.T) *Netlist {
	t.Helper()
	nl := New("simple", catalog)
	nl.Inputs = []string{"a", "b"}
	if err := nl.AddGate("NAND2x1", []string{"a", "b"}, "n1"); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddGate("INVx1", []string{"n1"}, "n2"); err != nil {
		t.Fatal(err)
	}
	nl.Outputs = []string{"y"}
	nl.Aliases["y"] = "n2"
	return nl
}

func TestEvalAndGate(t *testing.T) {
	nl := simpleNetlist(t)
	for idx := 0; idx < 4; idx++ {
		in := map[string]bool{"a": idx&1 != 0, "b": idx&2 != 0}
		out, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if out["y"] != (in["a"] && in["b"]) {
			t.Errorf("y(%v) = %v", in, out["y"])
		}
	}
}

func TestSimulateWordsMatchesBitwise(t *testing.T) {
	nl := simpleNetlist(t)
	in := map[string]uint64{"a": 0b1100, "b": 0b1010}
	vals, err := nl.SimulateWords(in)
	if err != nil {
		t.Fatal(err)
	}
	if vals["n2"]&0xF != 0b1000 {
		t.Errorf("AND word = %b", vals["n2"]&0xF)
	}
	if vals["n1"]&0xF != 0b0111 {
		t.Errorf("NAND word = %b", vals["n1"]&0xF)
	}
}

func TestAddGateValidation(t *testing.T) {
	nl := New("bad", catalog)
	if err := nl.AddGate("NOPE", []string{"a"}, "y"); err == nil {
		t.Error("unknown cell accepted")
	}
	if err := nl.AddGate("NAND2x1", []string{"a"}, "y"); err == nil {
		t.Error("wrong pin count accepted")
	}
}

func TestUseBeforeDriveDetected(t *testing.T) {
	nl := New("order", catalog)
	nl.Inputs = []string{"a"}
	nl.AddGate("INVx1", []string{"ghost"}, "n1")
	if _, err := nl.SimulateWords(map[string]uint64{"a": 1}); err == nil {
		t.Error("undriven net not detected")
	}
}

func TestToggleRates(t *testing.T) {
	nl := simpleNetlist(t)
	rates, err := nl.ToggleRates(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Random inputs toggle with rate ~0.5; the AND output toggles at
	// ~2*(1/4)*(3/4) = 0.375.
	if math.Abs(rates["a"]-0.5) > 0.06 {
		t.Errorf("input toggle rate %v, want ~0.5", rates["a"])
	}
	if math.Abs(rates["n2"]-0.375) > 0.06 {
		t.Errorf("AND toggle rate %v, want ~0.375", rates["n2"])
	}
	// NAND and its inverse toggle identically.
	if math.Abs(rates["n1"]-rates["n2"]) > 1e-9 {
		t.Errorf("complementary nets with different rates: %v vs %v", rates["n1"], rates["n2"])
	}
}

func TestAreaAndCounts(t *testing.T) {
	nl := simpleNetlist(t)
	if nl.Area() <= 0 {
		t.Error("area must be positive")
	}
	counts := nl.CellCounts()
	if counts["NAND2x1"] != 1 || counts["INVx1"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if nl.NumGates() != 2 {
		t.Errorf("gates = %d", nl.NumGates())
	}
}

func TestWriteVerilog(t *testing.T) {
	nl := simpleNetlist(t)
	var sb strings.Builder
	if err := nl.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module simple (a, b, y);",
		"input a;",
		"output y;",
		"NAND2x1 g0 (.A(a), .B(b), .Y(n1));",
		"assign y = n2;",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestFanouts(t *testing.T) {
	nl := New("fan", catalog)
	nl.Inputs = []string{"a"}
	nl.AddGate("INVx1", []string{"a"}, "n1")
	nl.AddGate("INVx1", []string{"n1"}, "n2")
	nl.AddGate("NAND2x1", []string{"n1", "n2"}, "n3")
	f := nl.Fanouts()
	if len(f["n1"]) != 2 {
		t.Errorf("n1 fanouts = %v", f["n1"])
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	nl := simpleNetlist(t)
	nl.AddGate("AOI21x1", []string{"a", "b", "n2"}, "n3")
	nl.Outputs = append(nl.Outputs, "z")
	nl.Aliases["z"] = "n3"
	var sb strings.Builder
	if err := nl.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVerilog(strings.NewReader(sb.String()), catalog)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if back.Name != nl.Name || back.NumGates() != nl.NumGates() {
		t.Fatalf("structure lost: %d gates vs %d", back.NumGates(), nl.NumGates())
	}
	// Functional equivalence over all input vectors.
	for idx := 0; idx < 4; idx++ {
		in := map[string]bool{"a": idx&1 != 0, "b": idx&2 != 0}
		w1, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := back.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range nl.Outputs {
			if w1[o] != w2[o] {
				t.Fatalf("output %s differs after round trip at %v", o, in)
			}
		}
	}
}

func TestReadVerilogRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"module m (a); input a; NOPE g0 (.A(a), .Y(y)); endmodule",
		"module m (a); input a; INVx1 g0 (a, y); endmodule",  // positional ports
		"module m (a); input a; INVx1 g0 (.Y(y)); endmodule", // missing pin
		"wire w; module m (a); endmodule",                    // decl before module
	}
	for _, src := range cases {
		if _, err := ReadVerilog(strings.NewReader(src), catalog); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestReadVerilogConstantTies(t *testing.T) {
	src := `// constant ties on pins and assigns
module ties (a, y, z);
input a;
output y;
output z;
wire n1;
NAND2x1 g0 (.A(a), .B(1'b1), .Y(n1));
assign y = n1;
assign z = 1'b0;
endmodule`
	nl, err := ReadVerilog(strings.NewReader(src), catalog)
	if err != nil {
		t.Fatal(err)
	}
	if issues := nl.Check(); len(issues) != 0 {
		t.Errorf("constant-tied netlist has issues: %v", issues)
	}
	// y = NAND(a, 1) = !a; z = 0 always.
	for _, a := range []bool{false, true} {
		out, err := nl.Eval(map[string]bool{"a": a})
		if err != nil {
			t.Fatal(err)
		}
		if out["y"] != !a || out["z"] != false {
			t.Errorf("a=%v: got y=%v z=%v", a, out["y"], out["z"])
		}
	}
}

func TestReadVerilogRejectsBadConstants(t *testing.T) {
	cases := []string{
		// only 1'b0 / 1'b1 are recognized literals
		"module m (a, y); input a; output y; INVx1 g0 (.A(2'b01), .Y(y)); endmodule",
		"module m (a, y); input a; output y; INVx1 g0 (.A(1'bx), .Y(y)); endmodule",
		// an instance must not drive a constant literal
		"module m (a); input a; INVx1 g0 (.A(a), .Y(1'b0)); endmodule",
	}
	for _, src := range cases {
		if _, err := ReadVerilog(strings.NewReader(src), catalog); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestReadVerilogErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		src      string
		wantLine string
	}{
		{"module m (a, y);\ninput a;\noutput y;\nNOPE g0 (.A(a), .Y(y));\nendmodule", "line 4"},
		{"module m (a, y);\ninput a;\n\noutput y;\nINVx1 g0 (a, y);\nendmodule", "line 5"},
		{"wire w;\nmodule m (a);\nendmodule", "line 1"},
		{"module m (a, y);\ninput a;\noutput y;\nINVx1 g0 (.Y(y));\nendmodule", "line 4"},
	}
	for _, tc := range cases {
		_, err := ReadVerilog(strings.NewReader(tc.src), catalog)
		if err == nil {
			t.Errorf("accepted %q", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantLine) {
			t.Errorf("error %q does not name %s (source %q)", err, tc.wantLine, tc.src)
		}
	}
}

func TestCheckCleanNetlist(t *testing.T) {
	nl := simpleNetlist(t)
	if issues := nl.Check(); len(issues) != 0 {
		t.Errorf("clean netlist reported issues: %v", issues)
	}
}

func TestCheckFindsProblems(t *testing.T) {
	nl := New("broken", catalog)
	nl.Inputs = []string{"a"}
	nl.AddGate("INVx1", []string{"ghost"}, "n1") // bad order: ghost undriven
	nl.AddGate("INVx1", []string{"a"}, "n1")     // multi-driver on n1
	nl.AddGate("INVx1", []string{"a"}, "dead")   // unused gate
	nl.Outputs = []string{"y"}
	nl.Aliases["y"] = "nowhere" // undriven output
	kinds := map[string]bool{}
	for _, is := range nl.Check() {
		kinds[is.Kind] = true
	}
	for _, want := range []string{"bad-order", "multi-driver", "unused-gate", "undriven-output"} {
		if !kinds[want] {
			t.Errorf("missing issue kind %q (got %v)", want, kinds)
		}
	}
}

func TestCheckMappedCircuitsClean(t *testing.T) {
	// The mapper's output must always pass DRC (checked here on a hand
	// netlist standing in for mapper output via the round-trip path).
	nl := simpleNetlist(t)
	var sb strings.Builder
	if err := nl.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVerilog(strings.NewReader(sb.String()), catalog)
	if err != nil {
		t.Fatal(err)
	}
	if issues := back.Check(); len(issues) != 0 {
		t.Errorf("round-tripped netlist has issues: %v", issues)
	}
}
