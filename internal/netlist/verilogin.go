package netlist

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
	"repro/internal/pdk"
)

// ReadVerilog parses structural Verilog in the subset emitted by
// WriteVerilog (module header, input/output/wire declarations, named-port
// cell instances, and assigns), resolving cells against the given PDK
// catalog. Constant ties (1'b0 / 1'b1) are accepted wherever a net may
// appear. Gate order in the file must be topological (drivers first), as
// WriteVerilog guarantees. Parse errors carry the source line number.
func ReadVerilog(r io.Reader, cells []*pdk.Cell) (*Netlist, error) {
	text, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var nl *Netlist
	var headerPorts []string
	for _, st := range lexStatements(string(text)) {
		stmt := st.text
		fields := strings.Fields(stmt)
		if len(fields) == 0 || fields[0] == "endmodule" {
			continue
		}
		switch fields[0] {
		case "module":
			name, ports, err := parseModuleHeader(stmt, st.line)
			if err != nil {
				return nil, err
			}
			nl = New(name, cells)
			headerPorts = ports
		case "input", "output", "wire":
			if nl == nil {
				return nil, fmt.Errorf("verilog: line %d: declaration before module", st.line)
			}
			for _, n := range splitList(strings.TrimPrefix(stmt, fields[0])) {
				switch fields[0] {
				case "input":
					nl.Inputs = append(nl.Inputs, n)
				case "output":
					nl.Outputs = append(nl.Outputs, n)
				}
			}
		case "assign":
			if nl == nil {
				return nil, fmt.Errorf("verilog: line %d: assign before module", st.line)
			}
			rest := strings.TrimSpace(strings.TrimPrefix(stmt, "assign"))
			parts := strings.SplitN(rest, "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("verilog: line %d: malformed assign %q", st.line, stmt)
			}
			nl.Aliases[strings.TrimSpace(parts[0])] = strings.TrimSpace(parts[1])
		default:
			// Cell instance: CELL name ( .P(net), ... )
			if nl == nil {
				return nil, fmt.Errorf("verilog: line %d: instance before module", st.line)
			}
			if err := parseInstance(nl, stmt, st.line); err != nil {
				return nil, err
			}
		}
	}
	if nl == nil {
		return nil, fmt.Errorf("verilog: no module found")
	}
	// Diagnostics go through the leveled logger, never straight to stderr:
	// callers (tests, servers) control verbosity and destination.
	if declared := len(nl.Inputs) + len(nl.Outputs); len(headerPorts) != declared {
		obs.Log().Warnf("verilog: module %s header lists %d ports but %d are declared",
			nl.Name, len(headerPorts), declared)
	}
	for _, issue := range nl.Check() {
		if issue.Kind == "unused-gate" {
			obs.Log().Debugf("verilog: module %s: %s", nl.Name, issue)
		} else {
			obs.Log().Warnf("verilog: module %s: %s", nl.Name, issue)
		}
	}
	obs.Log().Debugf("verilog: read module %s: %d gates, %d inputs, %d outputs",
		nl.Name, nl.NumGates(), len(nl.Inputs), len(nl.Outputs))
	return nl, nil
}

// statement is one ';'-terminated chunk with the 1-based line its first
// non-blank character appeared on.
type statement struct {
	text string
	line int
}

// lexStatements strips // comments and splits the source into statements,
// tracking line numbers. Statements may span lines; the recorded line is
// where the statement starts.
func lexStatements(src string) []statement {
	var out []statement
	var sb strings.Builder
	line, start := 1, 0
	inComment := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '\n':
			line++
			inComment = false
			sb.WriteByte(' ')
		case inComment:
			// skip
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			inComment = true
			i++
		case c == ';':
			text := strings.TrimSpace(sb.String())
			if text != "" {
				out = append(out, statement{text: text, line: start})
			}
			sb.Reset()
			start = 0
		default:
			if start == 0 && c != ' ' && c != '\t' && c != '\r' {
				start = line
			}
			sb.WriteByte(c)
		}
	}
	if text := strings.TrimSpace(sb.String()); text != "" {
		out = append(out, statement{text: text, line: start})
	}
	return out
}

func parseModuleHeader(stmt string, line int) (name string, ports []string, err error) {
	open := strings.Index(stmt, "(")
	closeIdx := strings.LastIndex(stmt, ")")
	if open < 0 || closeIdx < open {
		return "", nil, fmt.Errorf("verilog: line %d: malformed module header %q", line, stmt)
	}
	name = strings.TrimSpace(strings.TrimPrefix(stmt[:open], "module"))
	return name, splitList(stmt[open+1 : closeIdx]), nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func parseInstance(nl *Netlist, stmt string, line int) error {
	open := strings.Index(stmt, "(")
	closeIdx := strings.LastIndex(stmt, ")")
	if open < 0 || closeIdx < open {
		return fmt.Errorf("verilog: line %d: malformed instance %q", line, stmt)
	}
	head := strings.Fields(stmt[:open])
	if len(head) != 2 {
		return fmt.Errorf("verilog: line %d: malformed instance header %q", line, strings.TrimSpace(stmt[:open]))
	}
	cellName := head[0]
	def := nl.Cell(cellName)
	if def == nil {
		return fmt.Errorf("verilog: line %d: unknown cell %q", line, cellName)
	}
	conns := make(map[string]string)
	for _, p := range splitList(stmt[open+1 : closeIdx]) {
		if !strings.HasPrefix(p, ".") {
			return fmt.Errorf("verilog: line %d: positional port %q unsupported", line, p)
		}
		po := strings.Index(p, "(")
		pc := strings.LastIndex(p, ")")
		if po < 0 || pc < po {
			return fmt.Errorf("verilog: line %d: malformed port %q", line, p)
		}
		pin := strings.TrimSpace(p[1:po])
		net := strings.TrimSpace(p[po+1 : pc])
		if err := checkNet(net); err != nil {
			return fmt.Errorf("verilog: line %d: port .%s: %v", line, pin, err)
		}
		conns[pin] = net
	}
	inputs := make([]string, len(def.Inputs))
	for i, pin := range def.Inputs {
		net, ok := conns[pin]
		if !ok {
			return fmt.Errorf("verilog: line %d: cell %s instance missing pin %s", line, cellName, pin)
		}
		inputs[i] = net
	}
	out, ok := conns[def.Outputs[0]]
	if !ok {
		return fmt.Errorf("verilog: line %d: cell %s instance missing output %s", line, cellName, def.Outputs[0])
	}
	if out == Const0 || out == Const1 {
		return fmt.Errorf("verilog: line %d: cell %s drives constant literal %s", line, cellName, out)
	}
	if err := nl.AddGate(cellName, inputs, out); err != nil {
		return fmt.Errorf("verilog: line %d: %v", line, err)
	}
	return nil
}

// checkNet validates a net reference: an identifier, or one of the scalar
// constant literals 1'b0 / 1'b1 (other literal widths are rejected).
func checkNet(net string) error {
	if net == "" {
		return fmt.Errorf("empty net")
	}
	if strings.Contains(net, "'") && net != Const0 && net != Const1 {
		return fmt.Errorf("unsupported literal %q (only %s and %s)", net, Const0, Const1)
	}
	return nil
}
