package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
	"repro/internal/pdk"
)

// ReadVerilog parses structural Verilog in the subset emitted by
// WriteVerilog (module header, input/output/wire declarations, named-port
// cell instances, and assigns), resolving cells against the given PDK
// catalog. Gate order in the file must be topological (drivers first), as
// WriteVerilog guarantees.
func ReadVerilog(r io.Reader, cells []*pdk.Cell) (*Netlist, error) {
	text, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Normalize: strip comments, join statements split across lines.
	var sb strings.Builder
	for _, line := range strings.Split(string(text), "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(line)
		sb.WriteString(" ")
	}
	src := sb.String()

	var nl *Netlist
	var headerPorts []string
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	sc.Split(splitStatements)
	for sc.Scan() {
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" || stmt == "endmodule" {
			continue
		}
		fields := strings.Fields(stmt)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "module":
			name, ports, err := parseModuleHeader(stmt)
			if err != nil {
				return nil, err
			}
			nl = New(name, cells)
			headerPorts = ports
		case "input", "output", "wire":
			if nl == nil {
				return nil, fmt.Errorf("verilog: declaration before module")
			}
			for _, n := range splitList(strings.TrimPrefix(stmt, fields[0])) {
				switch fields[0] {
				case "input":
					nl.Inputs = append(nl.Inputs, n)
				case "output":
					nl.Outputs = append(nl.Outputs, n)
				}
			}
		case "assign":
			if nl == nil {
				return nil, fmt.Errorf("verilog: assign before module")
			}
			rest := strings.TrimSpace(strings.TrimPrefix(stmt, "assign"))
			parts := strings.SplitN(rest, "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("verilog: malformed assign %q", stmt)
			}
			nl.Aliases[strings.TrimSpace(parts[0])] = strings.TrimSpace(parts[1])
		default:
			// Cell instance: CELL name ( .P(net), ... )
			if nl == nil {
				return nil, fmt.Errorf("verilog: instance before module")
			}
			if err := parseInstance(nl, stmt); err != nil {
				return nil, err
			}
		}
	}
	if nl == nil {
		return nil, fmt.Errorf("verilog: no module found")
	}
	// Diagnostics go through the leveled logger, never straight to stderr:
	// callers (tests, servers) control verbosity and destination.
	if declared := len(nl.Inputs) + len(nl.Outputs); len(headerPorts) != declared {
		obs.Log().Warnf("verilog: module %s header lists %d ports but %d are declared",
			nl.Name, len(headerPorts), declared)
	}
	for _, issue := range nl.Check() {
		if issue.Kind == "unused-gate" {
			obs.Log().Debugf("verilog: module %s: %s", nl.Name, issue)
		} else {
			obs.Log().Warnf("verilog: module %s: %s", nl.Name, issue)
		}
	}
	obs.Log().Debugf("verilog: read module %s: %d gates, %d inputs, %d outputs",
		nl.Name, nl.NumGates(), len(nl.Inputs), len(nl.Outputs))
	return nl, nil
}

// splitStatements splits on ';' at depth zero.
func splitStatements(data []byte, atEOF bool) (advance int, token []byte, err error) {
	for i := 0; i < len(data); i++ {
		if data[i] == ';' {
			return i + 1, data[:i], nil
		}
	}
	if atEOF && len(data) > 0 {
		return len(data), data, nil
	}
	if atEOF {
		return 0, nil, nil
	}
	return 0, nil, nil
}

func parseModuleHeader(stmt string) (name string, ports []string, err error) {
	open := strings.Index(stmt, "(")
	closeIdx := strings.LastIndex(stmt, ")")
	if open < 0 || closeIdx < open {
		return "", nil, fmt.Errorf("verilog: malformed module header %q", stmt)
	}
	name = strings.TrimSpace(strings.TrimPrefix(stmt[:open], "module"))
	return name, splitList(stmt[open+1 : closeIdx]), nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func parseInstance(nl *Netlist, stmt string) error {
	open := strings.Index(stmt, "(")
	closeIdx := strings.LastIndex(stmt, ")")
	if open < 0 || closeIdx < open {
		return fmt.Errorf("verilog: malformed instance %q", stmt)
	}
	head := strings.Fields(stmt[:open])
	if len(head) != 2 {
		return fmt.Errorf("verilog: malformed instance header %q", stmt[:open])
	}
	cellName := head[0]
	def := nl.Cell(cellName)
	if def == nil {
		return fmt.Errorf("verilog: unknown cell %q", cellName)
	}
	conns := make(map[string]string)
	for _, p := range splitList(stmt[open+1 : closeIdx]) {
		if !strings.HasPrefix(p, ".") {
			return fmt.Errorf("verilog: positional port %q unsupported", p)
		}
		po := strings.Index(p, "(")
		pc := strings.LastIndex(p, ")")
		if po < 0 || pc < po {
			return fmt.Errorf("verilog: malformed port %q", p)
		}
		pin := strings.TrimSpace(p[1:po])
		net := strings.TrimSpace(p[po+1 : pc])
		conns[pin] = net
	}
	inputs := make([]string, len(def.Inputs))
	for i, pin := range def.Inputs {
		net, ok := conns[pin]
		if !ok {
			return fmt.Errorf("verilog: cell %s instance missing pin %s", cellName, pin)
		}
		inputs[i] = net
	}
	out, ok := conns[def.Outputs[0]]
	if !ok {
		return fmt.Errorf("verilog: cell %s instance missing output %s", cellName, def.Outputs[0])
	}
	return nl.AddGate(cellName, inputs, out)
}
