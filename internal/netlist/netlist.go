// Package netlist represents technology-mapped gate-level netlists: the
// output of the technology mapper and the input to the STA and power
// analysis engines. It supports functional simulation (used both to verify
// mapping correctness against the source AIG and to extract switching
// activity) and structural Verilog export.
package netlist

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/pdk"
)

// Constant net names: Verilog scalar literals are accepted anywhere a net
// can appear (gate input pins, assign right-hand sides). Simulation and the
// structural checks treat them as always-driven constant drivers.
const (
	Const0 = "1'b0"
	Const1 = "1'b1"
)

// Gate is one cell instance. Pins are ordered exactly as the PDK cell's
// Inputs list; Output receives the single output pin.
type Gate struct {
	Name   string // instance name
	Cell   string // library cell name
	Inputs []string
	Output string
}

// Netlist is a combinational mapped circuit.
type Netlist struct {
	Name    string
	Inputs  []string
	Outputs []string
	Gates   []Gate // topologically ordered (drivers before loads)
	// Aliases maps primary-output names onto the internal nets driving
	// them (emitted as Verilog assigns).
	Aliases map[string]string

	cellIndex map[string]*pdk.Cell
}

// New creates an empty netlist bound to a PDK cell catalog for function
// lookup.
func New(name string, cells []*pdk.Cell) *Netlist {
	idx := make(map[string]*pdk.Cell, len(cells))
	for _, c := range cells {
		idx[c.Name] = c
	}
	return &Netlist{Name: name, Aliases: make(map[string]string), cellIndex: idx}
}

// Cell returns the PDK definition of a cell name, or nil.
func (n *Netlist) Cell(name string) *pdk.Cell { return n.cellIndex[name] }

// AddGate appends a gate instance (drivers must be appended before loads).
func (n *Netlist) AddGate(cell string, inputs []string, output string) error {
	def := n.cellIndex[cell]
	if def == nil {
		return fmt.Errorf("netlist: unknown cell %s", cell)
	}
	if len(inputs) != len(def.Inputs) {
		return fmt.Errorf("netlist: cell %s expects %d inputs, got %d", cell, len(def.Inputs), len(inputs))
	}
	n.Gates = append(n.Gates, Gate{
		Name:   fmt.Sprintf("g%d", len(n.Gates)),
		Cell:   cell,
		Inputs: append([]string(nil), inputs...),
		Output: output,
	})
	return nil
}

// NumGates returns the instance count.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// Area sums the cell areas.
func (n *Netlist) Area() float64 {
	var a float64
	for _, g := range n.Gates {
		a += n.cellIndex[g.Cell].Area()
	}
	return a
}

// CellCounts returns instance counts per cell name.
func (n *Netlist) CellCounts() map[string]int {
	out := make(map[string]int)
	for _, g := range n.Gates {
		out[g.Cell]++
	}
	return out
}

// Fanouts returns, per net, the list of (gate index, pin index) loads, plus
// which nets are primary outputs.
func (n *Netlist) Fanouts() map[string][][2]int {
	out := make(map[string][][2]int)
	for gi, g := range n.Gates {
		for pi, in := range g.Inputs {
			out[in] = append(out[in], [2]int{gi, pi})
		}
	}
	return out
}

// SimulateWords runs 64-bit-parallel simulation: in maps each primary input
// to a stimulus word. It returns the value of every net.
func (n *Netlist) SimulateWords(in map[string]uint64) (map[string]uint64, error) {
	vals := make(map[string]uint64, len(in)+len(n.Gates)+2)
	vals[Const0] = 0
	vals[Const1] = ^uint64(0)
	for k, v := range in {
		vals[k] = v
	}
	for _, g := range n.Gates {
		def := n.cellIndex[g.Cell]
		tt, ok := def.Truth(def.Outputs[0])
		if !ok {
			return nil, fmt.Errorf("netlist: cell %s has no truth table", g.Cell)
		}
		var out uint64
		// Evaluate bit-parallel via Shannon: for each input pattern index of
		// the cell, select stimulus bits matching it.
		inWords := make([]uint64, len(g.Inputs))
		for i, net := range g.Inputs {
			w, ok := vals[net]
			if !ok {
				return nil, fmt.Errorf("netlist: net %s used before driven (gate %s)", net, g.Name)
			}
			inWords[i] = w
		}
		for row := 0; row < 1<<uint(len(inWords)); row++ {
			if tt&(1<<uint(row)) == 0 {
				continue
			}
			sel := ^uint64(0)
			for i, w := range inWords {
				if row&(1<<uint(i)) != 0 {
					sel &= w
				} else {
					sel &= ^w
				}
			}
			out |= sel
		}
		vals[g.Output] = out
	}
	return vals, nil
}

// Resolve returns the driving net for a name, following output aliases.
func (n *Netlist) Resolve(name string) string {
	if d, ok := n.Aliases[name]; ok {
		return d
	}
	return name
}

// Eval computes primary-output values for one input assignment.
func (n *Netlist) Eval(in map[string]bool) (map[string]bool, error) {
	words := make(map[string]uint64, len(in))
	for k, v := range in {
		if v {
			words[k] = ^uint64(0)
		} else {
			words[k] = 0
		}
	}
	vals, err := n.SimulateWords(words)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(n.Outputs))
	for _, o := range n.Outputs {
		w, ok := vals[n.Resolve(o)]
		if !ok {
			return nil, fmt.Errorf("netlist: output %s undriven", o)
		}
		out[o] = w&1 != 0
	}
	return out, nil
}

// ToggleRates estimates per-net toggle rates (transitions per cycle) under
// random input stimulus: rounds*64 vectors, deterministic for a seed.
func (n *Netlist) ToggleRates(rounds int, seed int64) (map[string]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	rates := make(map[string]float64)
	var prev map[string]uint64
	total := 0
	for r := 0; r < rounds; r++ {
		in := make(map[string]uint64, len(n.Inputs))
		for _, name := range n.Inputs {
			in[name] = rng.Uint64()
		}
		vals, err := n.SimulateWords(in)
		if err != nil {
			return nil, err
		}
		for net, w := range vals {
			flips := popcount((w ^ (w << 1)) &^ 1)
			if prev != nil {
				if (prev[net]>>63)&1 != w&1 {
					flips++
				}
			}
			rates[net] += float64(flips)
		}
		prev = vals
		total += 64
	}
	for net := range rates {
		rates[net] /= float64(total)
	}
	return rates, nil
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// WriteVerilog emits the netlist as structural Verilog.
func (n *Netlist) WriteVerilog(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "// mapped netlist %s: %d gates\n", n.Name, len(n.Gates))
	fmt.Fprintf(&b, "module %s (%s, %s);\n", sanitize(n.Name),
		strings.Join(sanitizeAll(n.Inputs), ", "), strings.Join(sanitizeAll(n.Outputs), ", "))
	for _, in := range n.Inputs {
		fmt.Fprintf(&b, "  input %s;\n", sanitize(in))
	}
	for _, out := range n.Outputs {
		fmt.Fprintf(&b, "  output %s;\n", sanitize(out))
	}
	// Internal wires.
	declared := make(map[string]bool)
	for _, in := range n.Inputs {
		declared[sanitize(in)] = true
	}
	for _, out := range n.Outputs {
		declared[sanitize(out)] = true
	}
	var wires []string
	for _, g := range n.Gates {
		if s := sanitize(g.Output); !declared[s] {
			declared[s] = true
			wires = append(wires, s)
		}
	}
	sort.Strings(wires)
	for _, wn := range wires {
		fmt.Fprintf(&b, "  wire %s;\n", wn)
	}
	for _, g := range n.Gates {
		def := n.cellIndex[g.Cell]
		var pins []string
		for i, in := range g.Inputs {
			pins = append(pins, fmt.Sprintf(".%s(%s)", def.Inputs[i], sanitize(in)))
		}
		pins = append(pins, fmt.Sprintf(".%s(%s)", def.Outputs[0], sanitize(g.Output)))
		fmt.Fprintf(&b, "  %s %s (%s);\n", g.Cell, g.Name, strings.Join(pins, ", "))
	}
	var aliased []string
	for out := range n.Aliases {
		aliased = append(aliased, out)
	}
	sort.Strings(aliased)
	for _, out := range aliased {
		fmt.Fprintf(&b, "  assign %s = %s;\n", sanitize(out), sanitize(n.Aliases[out]))
	}
	fmt.Fprintf(&b, "endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitize(s string) string {
	return strings.NewReplacer(".", "_", "[", "_", "]", "_").Replace(s)
}

func sanitizeAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = sanitize(s)
	}
	return out
}
