package netlist

import (
	"fmt"

	"repro/internal/spice"
)

// BuildSPICE instantiates the mapped netlist transistor by transistor into
// a SPICE circuit at the given temperature: every gate is expanded through
// its PDK cell definition. It returns the supply branch index (for current
// measurement) and a map from netlist nets to circuit nodes. Primary inputs
// are NOT driven — the caller attaches sources to the returned nodes.
//
// This closes the loop between the abstract signoff (liberty STA/power) and
// the underlying device physics: a mapped netlist can be re-simulated at
// the transistor level with the same compact model that characterized the
// library.
func (n *Netlist) BuildSPICE(c *spice.Circuit, vdd float64) (supplyBranch int, nodes map[string]spice.NodeID, err error) {
	vddN := c.Node("vdd")
	supplyBranch = c.AddVSource(vddN, spice.Ground, spice.DC(vdd))
	nodes = make(map[string]spice.NodeID)
	nodeOf := func(net string) spice.NodeID {
		if id, ok := nodes[net]; ok {
			return id
		}
		id := c.Node("net_" + net)
		nodes[net] = id
		return id
	}
	for _, in := range n.Inputs {
		nodeOf(in)
	}
	for gi, g := range n.Gates {
		def := n.cellIndex[g.Cell]
		if def == nil {
			return 0, nil, fmt.Errorf("netlist: unknown cell %s", g.Cell)
		}
		pins := make(map[string]spice.NodeID, len(g.Inputs)+1)
		for i, net := range g.Inputs {
			pins[def.Inputs[i]] = nodeOf(net)
		}
		pins[def.Outputs[0]] = nodeOf(g.Output)
		// Multi-output cells: tie unused outputs to fresh nodes.
		for _, o := range def.Outputs[1:] {
			pins[o] = c.Node(fmt.Sprintf("nc_%d_%s", gi, o))
		}
		if err := def.Build(c, fmt.Sprintf("x%d", gi), pins, vddN); err != nil {
			return 0, nil, err
		}
	}
	// Alias nets of primary outputs resolve to their drivers.
	for _, out := range n.Outputs {
		nodes[out] = nodeOf(n.Resolve(out))
	}
	return supplyBranch, nodes, nil
}
