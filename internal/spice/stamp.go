package spice

import (
	"repro/internal/device"
)

// mnaMatrix is the matrix interface elements stamp through: the dense
// linalg.Matrix, the sparse linalg.Sparse (writes resolve against the
// circuit's compiled sparsity pattern), and the pattern recorder that
// discovers that pattern all satisfy it.
type mnaMatrix interface {
	Add(i, j int, v float64)
}

// stampCtx carries the MNA system being assembled for one Newton iteration.
type stampCtx struct {
	g     mnaMatrix // conductance/incidence matrix
	b     []float64 // right-hand side
	x     []float64 // current Newton iterate (node voltages + branch currents)
	prev  []float64 // previous-timestep solution (nil for DC)
	time  float64   // current time (s); 0 for DC
	dt    float64   // timestep (s); 0 for DC
	nNode int       // number of node-voltage unknowns
	gmin  float64   // convergence-aid conductance to ground
	temp  float64   // simulation temperature (K)
}

// volt returns the voltage of a node in the solution vector x.
func volt(x []float64, n NodeID) float64 {
	if n == Ground {
		return 0
	}
	return x[n]
}

// addG stamps a conductance between two nodes.
func (ctx *stampCtx) addG(a, b NodeID, g float64) {
	if a != Ground {
		ctx.g.Add(int(a), int(a), g)
	}
	if b != Ground {
		ctx.g.Add(int(b), int(b), g)
	}
	if a != Ground && b != Ground {
		ctx.g.Add(int(a), int(b), -g)
		ctx.g.Add(int(b), int(a), -g)
	}
}

// addI stamps a current source of value i flowing from node "from" into node
// "to" (i.e. i is extracted from "from" and injected into "to").
func (ctx *stampCtx) addI(from, to NodeID, i float64) {
	if from != Ground {
		ctx.b[from] -= i
	}
	if to != Ground {
		ctx.b[to] += i
	}
}

type resistor struct {
	a, b NodeID
	r    float64
}

func (r *resistor) stamp(ctx *stampCtx) {
	ctx.addG(r.a, r.b, 1.0/r.r)
}

type capacitor struct {
	a, b NodeID
	c    float64
}

func (c *capacitor) stamp(ctx *stampCtx) {
	if ctx.dt <= 0 {
		return // open circuit at DC
	}
	// Backward-Euler companion: i = C/dt*(v - vPrev) -> conductance C/dt in
	// parallel with a history current source.
	geq := c.c / ctx.dt
	vp := volt(ctx.prev, c.a) - volt(ctx.prev, c.b)
	ctx.addG(c.a, c.b, geq)
	// History term: inject geq*vp from b into a.
	ctx.addI(c.b, c.a, geq*vp)
}

type vsource struct {
	pos, neg NodeID
	branch   int
	fn       SourceFn
}

func (v *vsource) stamp(ctx *stampCtx) {
	k := ctx.nNode + v.branch
	if v.pos != Ground {
		ctx.g.Add(int(v.pos), k, 1)
		ctx.g.Add(k, int(v.pos), 1)
	}
	if v.neg != Ground {
		ctx.g.Add(int(v.neg), k, -1)
		ctx.g.Add(k, int(v.neg), -1)
	}
	ctx.b[k] += v.fn(ctx.time)
}

// clamp is a switchable conductance to a target voltage: i = g(t)*(v - vt).
// With g = 0 it vanishes. Used to force bistable circuits onto a chosen
// branch before re-solving unaided.
type clamp struct {
	node NodeID
	vt   float64
	g    SourceFn
}

func (cl *clamp) stamp(ctx *stampCtx) {
	if cl.node == Ground {
		return
	}
	// Stamp unconditionally, even when g(t) = 0: the Add-call sequence of
	// every element must depend only on topology and analysis mode so the
	// recorded slot sequence (solverState.seq) replays exactly. Adding a
	// zero is free; branching on the value would derail the replay.
	g := cl.g(ctx.time)
	ctx.g.Add(int(cl.node), int(cl.node), g)
	ctx.b[cl.node] += g * cl.vt
}

type isource struct {
	from, to NodeID
	fn       SourceFn
}

func (s *isource) stamp(ctx *stampCtx) {
	ctx.addI(s.from, s.to, s.fn(ctx.time))
}

// mosfet stamps the linearized cryogenic compact model plus its Meyer-style
// device capacitances.
type mosfet struct {
	m          *device.Model
	d, g, s, b NodeID
}

func (t *mosfet) stamp(ctx *stampCtx) {
	vd := volt(ctx.x, t.d)
	vg := volt(ctx.x, t.g)
	vs := volt(ctx.x, t.s)
	vgs := vg - vs
	vds := vd - vs

	ids, gm, gds := t.m.Conductances(vgs, vds, ctx.temp)

	// Linearized drain current: i = ids + gm*(dvgs) + gds*(dvds).
	// Equivalent current source for the Newton companion.
	ieq := ids - gm*vgs - gds*vds

	// gds between d and s.
	ctx.addG(t.d, t.s, gds)
	// gm as a voltage-controlled current source d<-s controlled by (g,s).
	if t.d != Ground {
		if t.g != Ground {
			ctx.g.Add(int(t.d), int(t.g), gm)
		}
		if t.s != Ground {
			ctx.g.Add(int(t.d), int(t.s), -gm)
		}
	}
	if t.s != Ground {
		if t.g != Ground {
			ctx.g.Add(int(t.s), int(t.g), -gm)
		}
		if t.s != Ground {
			ctx.g.Add(int(t.s), int(t.s), gm)
		}
	}
	// ieq flows from drain to source inside the device.
	ctx.addI(t.d, t.s, ieq)

	// Device capacitances (bias-averaged Meyer split) — only in transient.
	if ctx.dt > 0 {
		cg := t.m.GateCap(ctx.temp)
		cj := t.m.JunctionCap(ctx.temp)
		stampCap := func(a, b NodeID, c float64) {
			geq := c / ctx.dt
			vp := volt(ctx.prev, a) - volt(ctx.prev, b)
			ctx.addG(a, b, geq)
			ctx.addI(b, a, geq*vp)
		}
		stampCap(t.g, t.s, cg/2)
		stampCap(t.g, t.d, cg/2)
		stampCap(t.d, t.b, cj)
		stampCap(t.s, t.b, cj)
	}
}
