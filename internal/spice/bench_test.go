package spice_test

import (
	"testing"

	"repro/internal/pdk"
	"repro/internal/spice"
)

// benchCircuit builds a mid-size PDK cell (a scan flop: the biggest common
// characterization DUT) at 10 K with DC inputs, using the requested solver
// backend.
func benchCircuit(b *testing.B, name string, kind spice.SolverKind) *spice.Circuit {
	b.Helper()
	cell := pdk.FindCell(pdk.Catalog(), name)
	if cell == nil {
		b.Fatalf("cell %s not in catalog", name)
	}
	const vdd = 0.55
	c := spice.New(10)
	c.Solver = kind
	vddN := c.Node("vdd")
	c.AddVSource(vddN, spice.Ground, spice.DC(vdd))
	pins := map[string]spice.NodeID{}
	for _, in := range cell.Inputs {
		node := c.Node("in_" + in)
		pins[in] = node
		c.AddVSource(node, spice.Ground, spice.DC(0))
	}
	for _, out := range cell.Outputs {
		pins[out] = c.Node("out_" + out)
	}
	if err := cell.Build(c, "dut", pins, vddN); err != nil {
		b.Fatalf("%s: build: %v", cell.Name, err)
	}
	if cell.Seq {
		for _, state := range []string{"mi", "si", "li"} {
			if id, ok := c.LookupNode("dut." + state); ok {
				c.AddClamp(id, 0, spice.DC(0.05))
			}
		}
	}
	return c
}

// BenchmarkOpPoint measures a full Newton DC solve on a representative PDK
// cell with each backend. The sparse backend amortizes its symbolic
// factorization across every iteration after the first, so the gap widens
// with repeated solves of the same topology (the characterization pattern).
func BenchmarkOpPoint(b *testing.B) {
	for _, bc := range []struct {
		name string
		kind spice.SolverKind
	}{
		{"dense", spice.SolverDense},
		{"sparse", spice.SolverSparse},
	} {
		b.Run("SDFFx1/"+bc.name, func(b *testing.B) {
			c := benchCircuit(b, "SDFFx1", bc.kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.OpPoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("AOI222x1/"+bc.name, func(b *testing.B) {
			c := benchCircuit(b, "AOI222x1", bc.kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.OpPoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
