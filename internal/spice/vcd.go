package spice

import (
	"fmt"
	"io"
	"sort"
)

// WriteVCD dumps the waveform as a Value Change Dump file (IEEE 1364) with
// every node voltage declared as a real variable, so analog transients open
// directly in GTKWave and friends. The timescale is 1 fs: VCD timestamps are
// integers, and femtoseconds keep sub-picosecond transition detail without
// overflowing int64 for any realistic transient window. Samples that repeat
// the previous value are elided per VCD convention.
//
// nodes selects which signals to dump; nil dumps every non-ground node in
// the circuit, sorted by name.
func (w *Waveform) WriteVCD(out io.Writer, date string, nodes []string) error {
	if len(w.Time) == 0 {
		return fmt.Errorf("spice: empty waveform, nothing to dump")
	}
	if nodes == nil {
		nodes = append(nodes, w.circuit.names...)
		sort.Strings(nodes)
	}
	ids := make([]NodeID, len(nodes))
	for i, n := range nodes {
		id, ok := w.circuit.LookupNode(n)
		if !ok {
			return fmt.Errorf("spice: vcd: node %q not in circuit", n)
		}
		ids[i] = id
	}

	bw := &errWriter{w: out}
	if date != "" {
		bw.printf("$date %s $end\n", date)
	}
	bw.printf("$version cryospice transient $end\n")
	bw.printf("$timescale 1fs $end\n")
	bw.printf("$scope module cryospice $end\n")
	for i, n := range nodes {
		bw.printf("$var real 64 %s %s $end\n", vcdCode(i), vcdIdent(n))
	}
	bw.printf("$upscope $end\n$enddefinitions $end\n")

	last := make([]float64, len(ids))
	for s := range w.Time {
		stamped := false
		for i, id := range ids {
			v := w.samples[s][id]
			if s > 0 && v == last[i] {
				continue
			}
			if !stamped {
				bw.printf("#%d\n", int64(w.Time[s]*1e15+0.5))
				if s == 0 {
					bw.printf("$dumpvars\n")
				}
				stamped = true
			}
			bw.printf("r%.9g %s\n", v, vcdCode(i))
			last[i] = v
		}
		if s == 0 && stamped {
			bw.printf("$end\n")
		}
	}
	return bw.err
}

// vcdCode yields the compact printable-ASCII identifier code for variable i
// (the '!'..'~' base-94 encoding VCD tools expect).
func vcdCode(i int) string {
	const lo, n = 33, 94 // '!' through '~'
	code := []byte{byte(lo + i%n)}
	for i /= n; i > 0; i /= n {
		code = append(code, byte(lo+i%n))
	}
	return string(code)
}

// vcdIdent sanitizes a name into a VCD identifier (no whitespace).
func vcdIdent(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == 0x7f {
			c = '_'
		}
		out[i] = c
	}
	if len(out) == 0 {
		return "top"
	}
	return string(out)
}

// errWriter latches the first write error so the dump loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
