package spice

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/vcd"
)

// WriteVCD dumps the waveform as a Value Change Dump file (IEEE 1364) with
// every node voltage declared as a real variable, so analog transients open
// directly in GTKWave and friends. The timescale is 1 fs: VCD timestamps are
// integers, and femtoseconds keep sub-picosecond transition detail without
// overflowing int64 for any realistic transient window. Samples that repeat
// the previous value are elided per VCD convention.
//
// The encoding itself lives in internal/vcd, shared with the gate-level
// simulator's logic dumps; this wrapper only maps circuit nodes onto real
// variables and sample times onto femtosecond timestamps.
//
// nodes selects which signals to dump; nil dumps every non-ground node in
// the circuit, sorted by name.
func (w *Waveform) WriteVCD(out io.Writer, date string, nodes []string) error {
	if len(w.Time) == 0 {
		return fmt.Errorf("spice: empty waveform, nothing to dump")
	}
	if nodes == nil {
		nodes = append(nodes, w.circuit.names...)
		sort.Strings(nodes)
	}
	ids := make([]NodeID, len(nodes))
	for i, n := range nodes {
		id, ok := w.circuit.LookupNode(n)
		if !ok {
			return fmt.Errorf("spice: vcd: node %q not in circuit", n)
		}
		ids[i] = id
	}

	enc := vcd.NewWriter(out)
	enc.Date(date)
	enc.Version("cryospice transient")
	enc.Timescale("1fs")
	enc.Scope("cryospice")
	vars := make([]vcd.Var, len(nodes))
	for i, n := range nodes {
		vars[i] = enc.Real(n)
	}
	enc.EndHeader()

	for s := range w.Time {
		enc.Time(int64(w.Time[s]*1e15 + 0.5))
		for i, id := range ids {
			enc.SetReal(vars[i], w.samples[s][id])
		}
	}
	return enc.Close()
}
