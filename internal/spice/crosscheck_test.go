package spice_test

import (
	"math"
	"testing"

	"repro/internal/pdk"
	"repro/internal/spice"
)

// buildCellCircuit instantiates one PDK cell at 10 K with DC inputs set from
// vec, mirroring the characterization leakage setup. Sequential cells get a
// permanent symmetry-breaking clamp on their state nodes so the operating
// point sits on a definite, well-conditioned branch — this test compares
// solver backends, not bistable branch selection.
func buildCellCircuit(t *testing.T, cell *pdk.Cell, vec int, kind spice.SolverKind) *spice.Circuit {
	t.Helper()
	const vdd = 0.55
	c := spice.New(10)
	c.Solver = kind
	vddN := c.Node("vdd")
	c.AddVSource(vddN, spice.Ground, spice.DC(vdd))
	pins := map[string]spice.NodeID{}
	for i, in := range cell.Inputs {
		node := c.Node("in_" + in)
		pins[in] = node
		v := 0.0
		if vec&(1<<uint(i)) != 0 {
			v = vdd
		}
		c.AddVSource(node, spice.Ground, spice.DC(v))
	}
	for _, out := range cell.Outputs {
		pins[out] = c.Node("out_" + out)
	}
	if err := cell.Build(c, "dut", pins, vddN); err != nil {
		t.Fatalf("%s: build: %v", cell.Name, err)
	}
	if cell.Seq {
		for _, state := range []string{"mi", "si", "li"} {
			if id, ok := c.LookupNode("dut." + state); ok {
				c.AddClamp(id, 0, spice.DC(0.05))
			}
		}
	}
	// A 1 GΩ leak on every node bounds the Jacobian condition number.
	// Nodes inside OFF tristate stacks otherwise sit on a gmin-scale
	// (1e-12 S) diagonal, and at condition numbers near 1e12 the two
	// backends' rounding differs above the 1e-9 V comparison bar for
	// reasons that have nothing to do with solver correctness.
	for id := 0; id < c.NumNodes(); id++ {
		c.AddResistor(spice.NodeID(id), spice.Ground, 1e9)
	}
	return c
}

// TestDenseSparseCrossCheck solves the DC operating point of every base cell
// in the PDK with both linear-solver backends and requires the node voltages
// to agree to 1e-9 V — the dense path is the oracle for the sparse LU with
// symbolic reuse. One drive strength per base suffices: drive variants scale
// device widths without changing the sparsity pattern.
func TestDenseSparseCrossCheck(t *testing.T) {
	seen := map[string]bool{}
	for _, cell := range pdk.Catalog() {
		if seen[cell.Base] {
			continue
		}
		seen[cell.Base] = true
		vecs := []int{0, 1<<uint(len(cell.Inputs)) - 1}
		for _, vec := range vecs {
			dense := buildCellCircuit(t, cell, vec, spice.SolverDense)
			sparse := buildCellCircuit(t, cell, vec, spice.SolverSparse)
			// Converge once with the dense oracle, then re-solve both
			// backends from that shared seed. Quasi-floating internal nodes
			// (femtoamp currents through OFF stacks) are only pinned to the
			// Newton tolerance, so two independent solves may differ at the
			// 1e-6 level; from a shared converged seed the Newton paths are
			// identical and any disagreement is the linear solver's.
			seed, err := dense.OpPoint()
			if err != nil {
				t.Fatalf("%s vec=%d: dense op point: %v", cell.Name, vec, err)
			}
			xd, err := dense.OpPointFrom(seed)
			if err != nil {
				t.Fatalf("%s vec=%d: dense re-solve: %v", cell.Name, vec, err)
			}
			xs, err := sparse.OpPointFrom(seed)
			if err != nil {
				t.Fatalf("%s vec=%d: sparse op point: %v", cell.Name, vec, err)
			}
			if len(xd) != len(xs) {
				t.Fatalf("%s vec=%d: system size mismatch %d vs %d", cell.Name, vec, len(xd), len(xs))
			}
			for i := range xd {
				if d := math.Abs(xd[i] - xs[i]); d > 1e-9 {
					t.Errorf("%s vec=%d: unknown %d (%s) differs by %.3e (dense %.12f sparse %.12f)",
						cell.Name, vec, i, nodeLabel(dense, i), d, xd[i], xs[i])
				}
			}
		}
	}
	if len(seen) < 50 {
		t.Fatalf("cross-check covered only %d base cells; catalog shrank?", len(seen))
	}
}

func nodeLabel(c *spice.Circuit, i int) string {
	if i < c.NumNodes() {
		return c.NodeName(spice.NodeID(i))
	}
	return "branch"
}
