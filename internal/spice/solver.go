package spice

import (
	"time"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// SolverKind selects the linear-solver backend for a circuit's MNA system.
type SolverKind int

const (
	// SolverAuto uses the sparse solver except for tiny systems, where the
	// dense path's lower constant wins.
	SolverAuto SolverKind = iota
	// SolverDense forces dense LU — the cross-check oracle.
	SolverDense
	// SolverSparse forces sparse LU regardless of size.
	SolverSparse
)

// denseCutoff is the auto-mode system size at or below which dense LU is
// used: below ~8 unknowns the sparse bookkeeping costs more than it saves.
const denseCutoff = 8

// pivotTau is the threshold-pivoting relaxation for the sparse LU: rows
// within 10% of the column maximum are acceptable pivots, letting the
// Markowitz tie-break pick the sparsest. MNA systems carry gmin on every
// node diagonal, so this is comfortably stable.
const pivotTau = 0.1

// solverState is the per-circuit solver scratch: the assembled matrix (one
// backend), the reusable factorization, and the vectors the Newton loop
// writes into. It is rebuilt whenever the circuit's topology (element count
// or unknown count) changes, which freezes the sparsity pattern per
// topology exactly once.
type solverState struct {
	n, nNode int
	nelems   int
	kind     SolverKind
	dense    bool

	gd *linalg.Matrix // dense backend
	sp *linalg.Sparse // sparse backend (compiled pattern)
	lu *linalg.SparseLU

	// seq[mode] is the recorded slot sequence of one full stamping pass —
	// the per-topology index map. Element stamp order and each element's
	// Add-call sequence depend only on topology and the analysis mode
	// (mode 1: transient, capacitor companions active; mode 0: DC), never
	// on values, so after one recording pass every stamp resolves to an
	// O(1) indexed add instead of a binary search in the CSC column.
	seq      [2][]int32
	recorder seqRecorder
	replayer seqReplayer

	b     []float64 // right-hand side
	resid []float64 // G*x scratch for the residual scan
	xNew  []float64 // Newton proposal
}

// seqRecorder resolves stamps against the compiled pattern by binary search
// and records the slot order for replay.
type seqRecorder struct {
	sp  *linalg.Sparse
	seq []int32
}

func (r *seqRecorder) Add(i, j int, v float64) {
	s := r.sp.Slot(i, j)
	r.seq = append(r.seq, int32(s))
	r.sp.Vals[s] += v
}

// seqReplayer replays a recorded slot sequence: each Add consumes the next
// slot. A k that runs past the sequence means an element stamped a
// value-dependent pattern — a bug; endStamp catches it.
type seqReplayer struct {
	sp  *linalg.Sparse
	seq []int32
	k   int
}

func (r *seqReplayer) Add(i, j int, v float64) {
	r.sp.Vals[r.seq[r.k]] += v
	r.k++
}

// beginStamp clears the system and returns the matrix to stamp into.
// Sparse circuits record the slot sequence on the first pass for the mode
// (tran: capacitor companions active) and replay it afterwards; the caller
// must finish the pass with endStamp.
func (st *solverState) beginStamp(tran bool) mnaMatrix {
	st.zeroSystem()
	if st.dense {
		return st.gd
	}
	mode := 0
	if tran {
		mode = 1
	}
	if st.seq[mode] == nil {
		st.recorder = seqRecorder{sp: st.sp}
		return &st.recorder
	}
	st.replayer = seqReplayer{sp: st.sp, seq: st.seq[mode]}
	return &st.replayer
}

// endStamp commits a recording pass or verifies a replay consumed exactly
// the recorded sequence.
func (st *solverState) endStamp(tran bool) {
	if st.dense {
		return
	}
	mode := 0
	if tran {
		mode = 1
	}
	if st.seq[mode] == nil {
		st.seq[mode] = st.recorder.seq
		st.recorder = seqRecorder{}
		return
	}
	if st.replayer.k != len(st.replayer.seq) {
		panic("spice: stamp sequence diverged from recorded pattern — value-dependent stamping?")
	}
}

// zeroSystem clears the matrix (O(nnz) on the sparse path) and RHS.
func (st *solverState) zeroSystem() {
	if st.dense {
		st.gd.Zero()
	} else {
		st.sp.Zero()
	}
	for i := range st.b {
		st.b[i] = 0
	}
}

// mulVecInto computes dst = G*x on whichever backend is active.
func (st *solverState) mulVecInto(dst, x []float64) {
	if st.dense {
		st.gd.MulVecInto(dst, x)
	} else {
		st.sp.MulVecInto(dst, x)
	}
}

// patternRecorder adapts linalg.Pattern to the stamp interface so one
// discovery pass over the elements yields the full sparsity pattern.
type patternRecorder struct{ p *linalg.Pattern }

func (r patternRecorder) Add(i, j int, _ float64) { r.p.Add(i, j) }

// solverFor returns the circuit's solver state, (re)building it when the
// topology changed since the last solve. Building the sparse state runs one
// pattern-discovery stamp with every conditional element forced on (dt > 0
// for capacitor companions, clamps enabled), so the compiled pattern is a
// superset of anything any analysis mode will ever write.
func (c *Circuit) solverFor() *solverState {
	n := c.systemSize()
	if st := c.solver; st != nil && st.n == n && st.nelems == len(c.elems) && st.kind == c.Solver {
		return st
	}
	nNode := len(c.names)
	st := &solverState{
		n: n, nNode: nNode, nelems: len(c.elems), kind: c.Solver,
		b:     make([]float64, n),
		resid: make([]float64, n),
		xNew:  make([]float64, n),
	}
	st.dense = c.Solver == SolverDense || (c.Solver == SolverAuto && n <= denseCutoff)
	if st.dense {
		st.gd = linalg.NewMatrix(n)
		obs.C("spice.solver.dense_builds").Inc()
	} else {
		pat := linalg.NewPattern(n)
		zero := make([]float64, n)
		ctx := &stampCtx{
			g: patternRecorder{pat}, b: st.b, x: zero, prev: zero,
			time: 0, dt: 1e-12, nNode: nNode, temp: c.Temp,
		}
		for _, e := range c.elems {
			e.stamp(ctx)
		}
		// The gmin convergence aid lands on every node diagonal.
		for i := 0; i < nNode; i++ {
			pat.Add(i, i)
		}
		st.sp = pat.Compile()
		for i := range st.b {
			st.b[i] = 0
		}
		obs.C("spice.solver.pattern_builds").Inc()
	}
	c.solver = st
	return st
}

// solve factors the assembled system and solves it into st.xNew. On the
// sparse path the symbolic factorization is computed once per pattern and
// reused via in-place numeric refactorization; a pivot that drifted
// numerically triggers one full re-pivot before giving up.
func (st *solverState) solve() error {
	if st.dense {
		f, err := linalg.Factor(st.gd)
		if err != nil {
			return err
		}
		copy(st.xNew, f.Solve(st.b))
		return nil
	}
	metrics := obs.MetricsEnabled()
	var t0 time.Time
	if metrics {
		t0 = time.Now()
	}
	if st.lu == nil {
		lu, err := st.sp.Factor(pivotTau)
		if err != nil {
			return err
		}
		st.lu = lu
		obs.C("spice.solver.symbolic.builds").Inc()
		obs.G("spice.solver.fillin").Set(float64(lu.FillIn()))
	} else if err := st.lu.Refactor(); err != nil {
		obs.C("spice.solver.repivots").Inc()
		lu, err2 := st.sp.Factor(pivotTau)
		if err2 != nil {
			return err2
		}
		st.lu = lu
		obs.G("spice.solver.fillin").Set(float64(lu.FillIn()))
	} else {
		obs.C("spice.solver.symbolic.reuse").Inc()
	}
	if metrics {
		obs.H("spice.solver.factor.seconds").Observe(time.Since(t0).Seconds())
		t0 = time.Now()
	}
	st.lu.SolveInto(st.xNew, st.b)
	if metrics {
		obs.H("spice.solver.solve.seconds").Observe(time.Since(t0).Seconds())
	}
	return nil
}
