package spice

import (
	"math"
	"strings"
	"testing"

	"repro/internal/device"
)

func TestVoltageDividerDC(t *testing.T) {
	c := New(300)
	in := c.Node("in")
	mid := c.Node("mid")
	c.AddVSource(in, Ground, DC(1.0))
	c.AddResistor(in, mid, 1e3)
	c.AddResistor(mid, Ground, 3e3)
	x, err := c.OpPoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := x[mid]; math.Abs(got-0.75) > 1e-6 {
		t.Errorf("divider mid = %v, want 0.75", got)
	}
}

func TestVSourceBranchCurrent(t *testing.T) {
	c := New(300)
	a := c.Node("a")
	br := c.AddVSource(a, Ground, DC(2.0))
	c.AddResistor(a, Ground, 1e3)
	x, err := c.OpPoint()
	if err != nil {
		t.Fatal(err)
	}
	// 2 mA flows out of the pos terminal into the resistor, so the MNA
	// branch current (pos -> through source -> neg) is -2 mA.
	got := x[c.NumNodes()+br]
	if math.Abs(got+2e-3) > 1e-9 {
		t.Errorf("branch current = %v, want -2e-3", got)
	}
}

func TestRCCharging(t *testing.T) {
	// R = 1k, C = 1pF, tau = 1ns; step to 1 V.
	c := New(300)
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource(in, Ground, DC(1.0))
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, Ground, 1e-12)
	wf, err := c.Transient(5e-9, 5e-12)
	if err != nil {
		t.Fatal(err)
	}
	v := wf.V("out")
	// Initial op point charges the cap instantly at DC (cap open, no load
	// current): out starts at 1.0. To test dynamics, use a PWL source
	// instead.
	_ = v

	c2 := New(300)
	in2 := c2.Node("in")
	out2 := c2.Node("out")
	c2.AddVSource(in2, Ground, PWL([2]float64{0, 0}, [2]float64{1e-12, 1}))
	c2.AddResistor(in2, out2, 1e3)
	c2.AddCapacitor(out2, Ground, 1e-12)
	wf2, err := c2.Transient(5e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	v2 := wf2.V("out")
	// Compare with 1 - exp(-t/tau) at a few points (BE has O(dt) error).
	for _, frac := range []float64{0.2, 0.5, 0.9} {
		tau := 1e-9
		tt := -tau * math.Log(1-frac)
		// Find nearest sample.
		idx := 0
		for i, tm := range wf2.Time {
			if tm <= tt {
				idx = i
			}
		}
		if math.Abs(v2[idx]-frac) > 0.03 {
			t.Errorf("RC charge at t=%.3gns: got %v, want ~%v", tt*1e9, v2[idx], frac)
		}
	}
}

func TestRCEnergyConservation(t *testing.T) {
	// Charging a capacitor through a resistor from a step supply draws
	// E = C*V^2 from the source: half stored, half dissipated.
	c := New(300)
	in := c.Node("in")
	out := c.Node("out")
	fn := PWL([2]float64{0, 0}, [2]float64{1e-12, 1})
	br := c.AddVSource(in, Ground, fn)
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, Ground, 1e-12)
	wf, err := c.Transient(20e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	e := wf.SupplyEnergy(br, fn)
	want := 1e-12 * 1 * 1 // C*V^2
	if math.Abs(e-want)/want > 0.05 {
		t.Errorf("supply energy = %v, want ~%v (C*V^2)", e, want)
	}
}

func buildInverter(temp float64, nfin int, loadF float64) (*Circuit, int, SourceFn) {
	c := New(temp)
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	supply := DC(0.7)
	br := c.AddVSource(vdd, Ground, supply)
	c.AddMOSFET(device.NewP(nfin), out, in, vdd, vdd)
	c.AddMOSFET(device.NewN(nfin), out, in, Ground, Ground)
	if loadF > 0 {
		c.AddCapacitor(out, Ground, loadF)
	}
	return c, br, supply
}

func TestInverterDCTransfer(t *testing.T) {
	for _, temp := range []float64{300, 10} {
		c, _, _ := buildInverter(temp, 1, 0)
		in := c.Node("in")
		out := c.Node("out")
		var prev float64 = math.Inf(1)
		for _, vin := range []float64{0, 0.175, 0.35, 0.525, 0.7} {
			cc, _, _ := buildInverter(temp, 1, 0)
			cc.AddVSource(in, Ground, DC(vin))
			x, err := cc.OpPoint()
			if err != nil {
				t.Fatalf("T=%v vin=%v: %v", temp, vin, err)
			}
			vout := x[out]
			if vout > prev+1e-3 {
				t.Errorf("T=%v: VTC not monotone at vin=%v: %v > %v", temp, vin, vout, prev)
			}
			prev = vout
		}
		// Rails.
		cc, _, _ := buildInverter(temp, 1, 0)
		cc.AddVSource(in, Ground, DC(0))
		x, err := cc.OpPoint()
		if err != nil {
			t.Fatal(err)
		}
		if x[out] < 0.69 {
			t.Errorf("T=%v: inverter high output %v, want ~0.7", temp, x[out])
		}
		cc2, _, _ := buildInverter(temp, 1, 0)
		cc2.AddVSource(in, Ground, DC(0.7))
		x2, err := cc2.OpPoint()
		if err != nil {
			t.Fatal(err)
		}
		if x2[out] > 0.01 {
			t.Errorf("T=%v: inverter low output %v, want ~0", temp, x2[out])
		}
	}
}

func TestInverterTransientDelay(t *testing.T) {
	const vdd = 0.7
	for _, temp := range []float64{300, 10} {
		c, _, _ := buildInverter(temp, 2, 1e-15)
		in := c.Node("in")
		slew := 20e-12
		c.AddVSource(in, Ground, PWL([2]float64{10e-12, 0}, [2]float64{10e-12 + slew, vdd}))
		wf, err := c.Transient(400e-12, 0.5e-12)
		if err != nil {
			t.Fatalf("T=%v: %v", temp, err)
		}
		vin := wf.V("in")
		vout := wf.V("out")
		tIn, ok1 := wf.CrossTime(vin, vdd/2, true, 0)
		tOut, ok2 := wf.CrossTime(vout, vdd/2, false, 0)
		if !ok1 || !ok2 {
			t.Fatalf("T=%v: crossings not found", temp)
		}
		delay := tOut - tIn
		if delay <= 0 || delay > 100e-12 {
			t.Errorf("T=%v: inverter delay %v s implausible", temp, delay)
		}
		// Output must settle low.
		if wf.Final(vout) > 0.02 {
			t.Errorf("T=%v: output did not settle low: %v", temp, wf.Final(vout))
		}
	}
}

func TestInverterLeakageTemperature(t *testing.T) {
	// Static supply current of an inverter with input low: the paper's
	// orders-of-magnitude leakage reduction must appear at circuit level.
	leak := func(temp float64) float64 {
		c, br, _ := buildInverter(temp, 1, 0)
		c.AddVSource(c.Node("in"), Ground, DC(0))
		x, err := c.OpPoint()
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(x[c.NumNodes()+br])
	}
	l300 := leak(300)
	l10 := leak(10)
	if l300 <= 0 || l10 <= 0 {
		t.Fatalf("leakage currents must be positive: %v %v", l300, l10)
	}
	if r := l300 / l10; r < 50 {
		t.Errorf("inverter leakage reduction 300K/10K = %v, want >= 50x", r)
	}
}

func TestPulseSource(t *testing.T) {
	fn := Pulse(0, 1, 1e-9, 0.1e-9, 0.1e-9, 2e-9, 10e-9)
	cases := []struct{ t, want float64 }{
		{0, 0}, {1.05e-9, 0.5}, {2e-9, 1}, {3.15e-9, 0.5}, {4e-9, 0},
		{11.05e-9, 0.5}, // periodic repeat
	}
	for _, cse := range cases {
		if got := fn(cse.t); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("Pulse(%g) = %v, want %v", cse.t, got, cse.want)
		}
	}
}

func TestPWLSource(t *testing.T) {
	fn := PWL([2]float64{1, 0}, [2]float64{2, 1})
	if fn(0) != 0 || fn(3) != 1 {
		t.Error("PWL clamping failed")
	}
	if got := fn(1.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PWL(1.5) = %v, want 0.5", got)
	}
}

func TestParseNetlistDivider(t *testing.T) {
	deck := `* divider
V1 in 0 DC 1.0
R1 in mid 1k
R2 mid 0 1k
.end
`
	res, err := ParseNetlist(strings.NewReader(deck), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Circuit.OpPoint()
	if err != nil {
		t.Fatal(err)
	}
	mid := res.Circuit.Node("mid")
	if math.Abs(x[mid]-0.5) > 1e-6 {
		t.Errorf("parsed divider mid = %v, want 0.5", x[mid])
	}
}

func TestParseNetlistInverterTran(t *testing.T) {
	deck := `* inverter
.temp 10
VDD vdd 0 DC 0.7
VIN in 0 PWL(0 0 10p 0 30p 0.7)
MP out in vdd vdd pfet nfin=2
MN out in 0 0 nfet nfin=2
CL out 0 1f
.tran 1p 300p
.end
`
	res, err := ParseNetlist(strings.NewReader(deck), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.Temp != 10 {
		t.Errorf("temp = %v, want 10", res.Circuit.Temp)
	}
	if !res.HasTran || res.Tstop != 300e-12 {
		t.Errorf("tran card parse: %+v", res)
	}
	wf, err := res.Circuit.Transient(res.Tstop, res.Tstep)
	if err != nil {
		t.Fatal(err)
	}
	if out := wf.Final(wf.V("out")); out > 0.05 {
		t.Errorf("inverter output after rise input = %v, want ~0", out)
	}
}

func TestParseValueSuffixes(t *testing.T) {
	cases := map[string]float64{
		"1k": 1e3, "2.5n": 2.5e-9, "10p": 1e-11, "3meg": 3e6,
		"1f": 1e-15, "0.5u": 5e-7, "7m": 7e-3, "2g": 2e9, "1.5": 1.5,
	}
	for in, want := range cases {
		got, err := ParseValue(in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", in, err)
			continue
		}
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("ParseValue(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseValue("abc"); err == nil {
		t.Error("ParseValue(abc) should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"R1 a b\n",            // missing value
		"M1 d g s nfet\n",     // missing bulk
		"V1 a 0 PWL(0)\n",     // odd PWL args
		"X1 a b c\n",          // unknown card
		"M1 d g s b xfet\n",   // unknown model
		"V1 a 0 PULSE(1 2)\n", // short pulse
	}
	for _, deck := range bad {
		if _, err := ParseNetlist(strings.NewReader(deck), ParseOptions{}); err == nil {
			t.Errorf("deck %q parsed without error", deck)
		}
	}
}

func TestNodeInterning(t *testing.T) {
	c := New(300)
	a := c.Node("x")
	b := c.Node("x")
	if a != b {
		t.Error("same name gave different IDs")
	}
	if c.Node("0") != Ground || c.Node("gnd") != Ground || c.Node("vss") != Ground {
		t.Error("ground aliases not mapped to Ground")
	}
	if c.NodeName(a) != "x" || c.NodeName(Ground) != "0" {
		t.Error("NodeName round-trip failed")
	}
}

func TestRCDischarge(t *testing.T) {
	// Precharged cap discharging through a resistor: v = exp(-t/tau).
	c := New(300)
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource(in, Ground, PWL([2]float64{0, 1}, [2]float64{1e-12, 0}))
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, Ground, 1e-12)
	wf, err := c.Transient(3e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	v := wf.V("out")
	// After one tau (1ns) the voltage should be ~0.37.
	idx := 0
	for i, tm := range wf.Time {
		if tm <= 1e-9 {
			idx = i
		}
	}
	if math.Abs(v[idx]-math.Exp(-1)) > 0.03 {
		t.Errorf("discharge at tau: %v, want ~0.368", v[idx])
	}
}

func TestCurrentSourceDC(t *testing.T) {
	c := New(300)
	a := c.Node("a")
	c.AddISource(Ground, a, DC(1e-3)) // push 1 mA into a
	c.AddResistor(a, Ground, 1e3)
	x, err := c.OpPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[a]-1.0) > 1e-6 {
		t.Errorf("V(a) = %v, want 1.0 (1mA * 1k)", x[a])
	}
}

func TestClampElement(t *testing.T) {
	c := New(300)
	a := c.Node("a")
	c.AddVSource(c.Node("s"), Ground, DC(1))
	c.AddResistor(c.Node("s"), a, 1e3)
	on := true
	c.AddClamp(a, 0, func(float64) float64 {
		if on {
			return 1 // 1 S: crushes the node to ~0
		}
		return 0
	})
	x, err := c.OpPoint()
	if err != nil {
		t.Fatal(err)
	}
	if x[a] > 0.01 {
		t.Errorf("clamped node at %v, want ~0", x[a])
	}
	on = false
	x2, err := c.OpPointFrom(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x2[a]-1.0) > 1e-6 {
		t.Errorf("released node at %v, want 1.0", x2[a])
	}
}

func TestTwoSupplies(t *testing.T) {
	// Two voltage sources with a resistor bridge; superposition check.
	c := New(300)
	a := c.Node("a")
	b := c.Node("b")
	m := c.Node("m")
	c.AddVSource(a, Ground, DC(1))
	c.AddVSource(b, Ground, DC(0.5))
	c.AddResistor(a, m, 1e3)
	c.AddResistor(b, m, 1e3)
	c.AddResistor(m, Ground, 1e3)
	x, err := c.OpPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[m]-0.5) > 1e-9 {
		t.Errorf("V(m) = %v, want 0.5", x[m])
	}
}

func TestTransientRejectsBadWindow(t *testing.T) {
	c := New(300)
	c.AddVSource(c.Node("a"), Ground, DC(1))
	if _, err := c.Transient(0, 1e-12); err == nil {
		t.Error("zero tstop accepted")
	}
	if _, err := c.Transient(1e-9, 0); err == nil {
		t.Error("zero dt accepted")
	}
}

func TestPassGateThroughNMOS(t *testing.T) {
	// NMOS pass transistor: output follows input up to Vdd - Vth.
	c := New(300)
	g := c.Node("g")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource(g, Ground, DC(0.7))
	c.AddVSource(in, Ground, DC(0.7))
	c.AddResistor(out, Ground, 1e8) // weak load
	c.AddMOSFET(device.NewN(2), out, g, in, Ground)
	x, err := c.OpPoint()
	if err != nil {
		t.Fatal(err)
	}
	vth := device.DefaultNParams()
	expected := 0.7 - vth.Vth0
	if x[out] < expected-0.15 || x[out] > 0.7 {
		t.Errorf("pass-gate output %v, want near Vdd-Vth (~%v)", x[out], expected)
	}
}
