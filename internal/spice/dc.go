package spice

import (
	"errors"
	"fmt"
	"math"
	"os"

	"repro/internal/constants"
	"repro/internal/obs"
)

// ErrNoConvergence is returned when Newton iteration fails even with gmin
// stepping and temperature continuation. Failed solves carry a
// *ConvergenceError in their chain (see AsConvergenceError) with the full
// forensic diagnosis.
var ErrNoConvergence = errors.New("spice: operating point did not converge")

// debugNewton opts the final Newton iterations into per-iteration trace
// output. It is honored locally (obs.Log().Emitf) and deliberately does NOT
// touch the global obs log level: a library init must not clobber the
// user's -loglevel choice.
var debugNewton = os.Getenv("SPICE_DEBUG") != ""

const (
	newtonTolV  = 1e-6
	newtonMaxIt = 400
	baseGmin    = 1e-12
)

// gminLadder is the gmin-continuation schedule: solve with a heavy
// convergence-aid conductance and relax it rung by rung down to baseGmin.
var gminLadder = [...]float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, baseGmin}

// gminLadderFullDepth is the ladder-depth histogram value recorded when
// every rung converged (a fully walked ladder); smaller observations mark
// the rung at which the ladder died.
const gminLadderFullDepth = float64(len(gminLadder))

// dampFor returns the Newton trust region for a given temperature. At
// cryogenic temperatures the subthreshold exponential steepens to a few
// millivolts per decade, so voltage steps must shrink accordingly.
func dampFor(tempK float64) float64 {
	vt := constants.ThermalVoltage(math.Max(tempK, 35))
	d := 60 * vt
	if d > 0.4 {
		d = 0.4
	}
	if d < 0.03 {
		d = 0.03
	}
	return d
}

// OpPoint solves the DC operating point at t = 0 and returns the solution
// vector (node voltages followed by voltage-source branch currents).
func (c *Circuit) OpPoint() ([]float64, error) {
	return c.opAt(0, nil, 0, nil)
}

// OpPointFrom solves the DC operating point seeded with an initial guess —
// used to re-solve after removing a symmetry-breaking aid, keeping the
// solution on the same stable branch of a bistable circuit.
func (c *Circuit) OpPointFrom(guess []float64) ([]float64, error) {
	return c.opAt(0, nil, 0, guess)
}

// opAt runs Newton-Raphson at the given time. For transient steps, prev is
// the previous solution (used by capacitor companions) and dt > 0. guess
// seeds the iteration when non-nil.
func (c *Circuit) opAt(t float64, prev []float64, dt float64, guess []float64) ([]float64, error) {
	n := c.systemSize()
	x := make([]float64, n)
	if guess != nil {
		copy(x, guess)
	}
	if sol, err := c.newton(t, prev, dt, x, baseGmin, c.Temp); err == nil {
		return sol, nil
	}
	// Fallback 1: gmin continuation — solve with heavy gmin and relax,
	// keeping any caller-provided guess so warm starts stay on their branch
	// (bistable circuits!).
	obs.C("spice.newton.retries").Inc()
	if sol, err := c.gminLadderFrom(t, prev, dt, c.Temp, x); err == nil {
		return sol, nil
	}
	// Fallback 2: temperature continuation. The 300 K system is far better
	// conditioned (gentler exponentials); walk the solution down to the
	// target temperature, warm-starting each rung from the caller's guess.
	obs.C("spice.temp_continuation.runs").Inc()
	ladder := []float64{300, 150, 77, 40, 20, 12, c.Temp}
	x = make([]float64, n)
	if guess != nil {
		copy(x, guess)
	}
	solved := false
	for _, temp := range ladder {
		if temp < c.Temp {
			temp = c.Temp
		}
		sol, err := c.newton(t, prev, dt, x, baseGmin, temp)
		if err != nil {
			sol, err = c.gminLadderFrom(t, prev, dt, temp, x)
			if err != nil {
				if ce := AsConvergenceError(err); ce != nil {
					ce.Diag.Phase = PhaseTempContinuation
				}
				return nil, fmt.Errorf("%w (temperature continuation at %g K)", err, temp)
			}
		}
		x = sol
		if temp == c.Temp {
			solved = true
			break
		}
	}
	if !solved {
		// c.Temp > 300: finish directly.
		sol, err := c.newton(t, prev, dt, x, baseGmin, c.Temp)
		if err != nil {
			return nil, err
		}
		x = sol
	}
	return x, nil
}

func (c *Circuit) gminLadderFrom(t float64, prev []float64, dt, temp float64, x0 []float64) ([]float64, error) {
	obs.C("spice.gmin.ladders").Inc()
	x := append([]float64(nil), x0...)
	for depth, gmin := range gminLadder {
		sol, err := c.newton(t, prev, dt, x, gmin, temp)
		if err != nil {
			obs.H("spice.gmin.ladder_depth").Observe(float64(depth + 1))
			obs.C("spice.gmin.exhausted").Inc()
			if ce := AsConvergenceError(err); ce != nil {
				ce.Diag.Phase = PhaseGminLadder
			}
			return nil, fmt.Errorf("%w (gmin=%g)", err, gmin)
		}
		x = sol
		obs.C("spice.gmin.steps").Inc()
	}
	obs.H("spice.gmin.ladder_depth").Observe(gminLadderFullDepth)
	return x, nil
}

// newton runs damped Newton-Raphson with a fixed gmin at the given
// temperature. While it iterates it keeps the trailing ringK iterations in
// a fixed-size ring (maxDV and its node, worst residual and its row, gmin
// rung, temperature); on failure the ring becomes the diagnosis of the
// returned *ConvergenceError.
func (c *Circuit) newton(t float64, prev []float64, dt float64, x0 []float64, gmin, temp float64) (sol []float64, err error) {
	obs.C("spice.newton.solves").Inc()
	iters := 0
	defer func() {
		obs.C("spice.newton.iterations").Add(int64(iters))
		if err == nil {
			obs.H("spice.newton.iters_per_solve").Observe(float64(iters))
		} else {
			obs.C("spice.newton.nonconverged").Inc()
		}
	}()
	n := c.systemSize()
	nNode := len(c.names)
	st := c.solverFor()
	b := st.b
	x := append([]float64(nil), x0...)

	maxIt := c.MaxIter
	if maxIt <= 0 {
		maxIt = newtonMaxIt
	}
	var ring [ringK]iterRec

	damp := dampFor(temp)
	for it := 0; it < maxIt; it++ {
		iters = it + 1
		// Shrink the trust region if the iteration is slow to settle, which
		// breaks limit cycles around high-impedance internal nodes.
		if it > 0 && it%60 == 0 {
			damp *= 0.5
		}
		mat := st.beginStamp(dt > 0)
		ctx := &stampCtx{g: mat, b: b, x: x, prev: prev, time: t, dt: dt, nNode: nNode, gmin: gmin, temp: temp}
		for _, e := range c.elems {
			e.stamp(ctx)
		}
		for i := 0; i < nNode; i++ {
			mat.Add(i, i, gmin)
		}
		st.endStamp(dt > 0)
		// Residual acceptance: at the expansion point the Newton companion
		// currents equal the true nonlinear currents, so G*x - b is the
		// exact KCL/KVL residual. Floating nodes between OFF devices can
		// two-cycle at millivolt amplitude while carrying femtoamps; when
		// every node balances to < 1 pA and every source constraint to
		// < 1 nV, the point is a solution for all practical purposes.
		// The scan doubles as the forensic residual probe: the row that is
		// worst relative to its tolerance is the convergence bottleneck.
		// The matvec is O(nnz) on the sparse path, not O(n²).
		st.mulVecInto(st.resid, x)
		ok := it > 0
		var worstResid float64
		worstRow, worstScore := -1, 0.0
		for i := 0; i < n; i++ {
			r := st.resid[i] - b[i]
			tol := 1e-12 // node row: amperes
			if i >= nNode {
				tol = 1e-9 // source row: volts
			}
			a := math.Abs(r)
			if a > tol {
				ok = false
			}
			if score := a / tol; score > worstScore {
				worstScore, worstRow, worstResid = score, i, a
			}
		}
		if ok {
			return x, nil
		}
		if err := st.solve(); err != nil {
			return nil, err
		}
		xNew := st.xNew
		// Damping: limit per-node voltage moves to keep the exponential
		// device model inside its linearization trust region. Convergence is
		// judged on the full Newton proposal, not the clipped step, so a
		// forcibly shrunk trust region cannot fake convergence.
		var maxDV float64
		dvRow := -1
		for i := 0; i < nNode; i++ {
			dv := xNew[i] - x[i]
			if a := math.Abs(dv); a > maxDV {
				maxDV = a
				dvRow = i
			}
			if dv > damp {
				dv = damp
			} else if dv < -damp {
				dv = -damp
			}
			x[i] += dv
		}
		for i := nNode; i < n; i++ {
			x[i] = xNew[i]
		}
		ring[it%ringK] = iterRec{
			it: it, maxDV: maxDV, dvRow: dvRow,
			resid: worstResid, residRow: worstRow,
			gmin: gmin, temp: temp,
		}
		if maxDV < newtonTolV {
			return x, nil
		}
		if (debugNewton || obs.Log().DebugEnabled()) && it > maxIt-20 {
			obs.Log().Emitf(obs.LogDebug, "spice: newton it=%d temp=%g gmin=%g maxDV=%.3e x=%.4v", it, temp, gmin, maxDV, x)
		}
	}
	return nil, c.diagnose(&ring, iters, x, t, prev, dt, gmin, temp)
}
