package spice

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// rcWaveform builds a small RC charging circuit and runs a short transient.
func rcWaveform(t *testing.T) *Waveform {
	t.Helper()
	c := New(300)
	in := c.Node("in")
	out := c.Node("out")
	vdd := c.Node("vdd")
	c.AddVSource(in, Ground, Pulse(0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 10e-9, 20e-9))
	c.AddVSource(vdd, Ground, DC(1.0))
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, Ground, 1e-12)
	c.AddResistor(vdd, Ground, 1e6)
	wf, err := c.Transient(5e-9, 0.05e-9)
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	return wf
}

func TestWriteVCD(t *testing.T) {
	wf := rcWaveform(t)
	var buf bytes.Buffer
	if err := wf.WriteVCD(&buf, "test", nil); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	s := buf.String()
	for _, want := range []string{
		"$timescale 1fs $end",
		"$var real 64 ! in $end",
		"$var real 64 \" out $end",
		"$var real 64 # vdd $end",
		"$enddefinitions $end",
		"#0\n$dumpvars\n",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("VCD missing %q:\n%s", want, s)
		}
	}
	// The DC-held node is constant at 1 V: exactly one value change. The RC
	// node charges: many changes.
	if n := strings.Count(s, " #\n"); n != 1 {
		t.Errorf("constant node dumped %d times, want 1", n)
	}
	if n := strings.Count(s, " \"\n"); n < 10 {
		t.Errorf("charging node dumped only %d times", n)
	}
	// Final timestamp must be 5 ns in femtoseconds.
	if !strings.Contains(s, "#5000000") {
		t.Errorf("missing 5 ns timestamp in:\n%s", s)
	}
}

func TestWriteVCDSelectsNodes(t *testing.T) {
	wf := rcWaveform(t)
	var buf bytes.Buffer
	if err := wf.WriteVCD(&buf, "", []string{"out"}); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	s := buf.String()
	if strings.Contains(s, " in ") {
		t.Errorf("unselected node dumped:\n%s", s)
	}
	if err := wf.WriteVCD(&buf, "", []string{"nope"}); err == nil {
		t.Errorf("unknown node did not error")
	}
}

// legacyWriteVCD is the pre-refactor analog VCD writer, kept verbatim as the
// byte-level reference: the shared internal/vcd encoder must reproduce its
// output exactly, whatever the waveform.
func legacyWriteVCD(w *Waveform, out io.Writer, date string, nodes []string) error {
	if len(w.Time) == 0 {
		return fmt.Errorf("spice: empty waveform, nothing to dump")
	}
	if nodes == nil {
		nodes = append(nodes, w.circuit.names...)
		sort.Strings(nodes)
	}
	ids := make([]NodeID, len(nodes))
	for i, n := range nodes {
		id, ok := w.circuit.LookupNode(n)
		if !ok {
			return fmt.Errorf("spice: vcd: node %q not in circuit", n)
		}
		ids[i] = id
	}
	legacyCode := func(i int) string {
		const lo, n = 33, 94
		code := []byte{byte(lo + i%n)}
		for i /= n; i > 0; i /= n {
			code = append(code, byte(lo+i%n))
		}
		return string(code)
	}
	legacyIdent := func(s string) string {
		outB := make([]byte, len(s))
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c <= ' ' || c == 0x7f {
				c = '_'
			}
			outB[i] = c
		}
		if len(outB) == 0 {
			return "top"
		}
		return string(outB)
	}
	var b bytes.Buffer
	if date != "" {
		fmt.Fprintf(&b, "$date %s $end\n", date)
	}
	fmt.Fprintf(&b, "$version cryospice transient $end\n")
	fmt.Fprintf(&b, "$timescale 1fs $end\n")
	fmt.Fprintf(&b, "$scope module cryospice $end\n")
	for i, n := range nodes {
		fmt.Fprintf(&b, "$var real 64 %s %s $end\n", legacyCode(i), legacyIdent(n))
	}
	fmt.Fprintf(&b, "$upscope $end\n$enddefinitions $end\n")

	last := make([]float64, len(ids))
	for s := range w.Time {
		stamped := false
		for i, id := range ids {
			v := w.samples[s][id]
			if s > 0 && v == last[i] {
				continue
			}
			if !stamped {
				fmt.Fprintf(&b, "#%d\n", int64(w.Time[s]*1e15+0.5))
				if s == 0 {
					fmt.Fprintf(&b, "$dumpvars\n")
				}
				stamped = true
			}
			fmt.Fprintf(&b, "r%.9g %s\n", v, legacyCode(i))
			last[i] = v
		}
		if s == 0 && stamped {
			fmt.Fprintf(&b, "$end\n")
		}
	}
	_, err := out.Write(b.Bytes())
	return err
}

// TestWriteVCDByteIdentical pins the refactored writer to the legacy
// implementation byte for byte, on both a solver-produced waveform and a
// synthetic one exercising elision and quiet-sample corner cases.
func TestWriteVCDByteIdentical(t *testing.T) {
	for name, wf := range map[string]*Waveform{
		"rc":        rcWaveform(t),
		"synthetic": syntheticWaveform(),
	} {
		for _, sel := range [][]string{nil, {"out"}} {
			var got, want bytes.Buffer
			if err := wf.WriteVCD(&got, "d", sel); err != nil {
				t.Fatalf("%s: WriteVCD: %v", name, err)
			}
			if err := legacyWriteVCD(wf, &want, "d", sel); err != nil {
				t.Fatalf("%s: legacy: %v", name, err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("%s (nodes=%v): refactored VCD differs from legacy:\n--- got ---\n%s\n--- want ---\n%s",
					name, sel, got.String(), want.String())
			}
		}
	}
}

// syntheticWaveform hand-builds a waveform (no solver) so the golden file is
// exact on every platform: a stepping node, a constant node, and a node that
// goes quiet mid-trace (whole samples with no changes must leave no
// timestamp).
func syntheticWaveform() *Waveform {
	c := New(300)
	c.Node("in")
	c.Node("out")
	c.Node("vdd")
	wf := &Waveform{circuit: c}
	vals := [][3]float64{
		{0, 0, 1.1},
		{0.5, 0.25, 1.1},
		{0.5, 0.25, 1.1}, // quiet sample: no timestamp in the dump
		{1.0, 0.25, 1.1},
		{1.0, 0.875, 1.1},
	}
	for s, v := range vals {
		wf.Time = append(wf.Time, float64(s)*1e-12)
		wf.samples = append(wf.samples, []float64{v[0], v[1], v[2]})
	}
	return wf
}

// TestWriteVCDGolden compares the synthetic waveform's dump against the
// committed golden file (regenerate with UPDATE_GOLDEN=1 go test).
func TestWriteVCDGolden(t *testing.T) {
	wf := syntheticWaveform()
	var buf bytes.Buffer
	if err := wf.WriteVCD(&buf, "golden", nil); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	path := filepath.Join("testdata", "synthetic.vcd.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("VCD output drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
			path, buf.String(), string(want))
	}
}

// TestWriteVCDQuietTail ensures a trace whose final samples are all quiet
// still ends cleanly (no dangling timestamp, $dumpvars closed).
func TestWriteVCDQuietTail(t *testing.T) {
	c := New(300)
	c.Node("a")
	wf := &Waveform{circuit: c,
		Time:    []float64{0, 1e-12, 2e-12},
		samples: [][]float64{{0.5}, {0.5}, {0.5}},
	}
	var buf bytes.Buffer
	if err := wf.WriteVCD(&buf, "", nil); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	s := buf.String()
	if strings.Count(s, "#") != 1 {
		t.Errorf("quiet samples produced extra timestamps:\n%s", s)
	}
	if !strings.HasSuffix(s, "$end\n") {
		t.Errorf("dumpvars block not closed:\n%s", s)
	}
}
