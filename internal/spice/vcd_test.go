package spice

import (
	"bytes"
	"strings"
	"testing"
)

// rcWaveform builds a small RC charging circuit and runs a short transient.
func rcWaveform(t *testing.T) *Waveform {
	t.Helper()
	c := New(300)
	in := c.Node("in")
	out := c.Node("out")
	vdd := c.Node("vdd")
	c.AddVSource(in, Ground, Pulse(0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 10e-9, 20e-9))
	c.AddVSource(vdd, Ground, DC(1.0))
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, Ground, 1e-12)
	c.AddResistor(vdd, Ground, 1e6)
	wf, err := c.Transient(5e-9, 0.05e-9)
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	return wf
}

func TestWriteVCD(t *testing.T) {
	wf := rcWaveform(t)
	var buf bytes.Buffer
	if err := wf.WriteVCD(&buf, "test", nil); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	s := buf.String()
	for _, want := range []string{
		"$timescale 1fs $end",
		"$var real 64 ! in $end",
		"$var real 64 \" out $end",
		"$var real 64 # vdd $end",
		"$enddefinitions $end",
		"#0\n$dumpvars\n",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("VCD missing %q:\n%s", want, s)
		}
	}
	// The DC-held node is constant at 1 V: exactly one value change. The RC
	// node charges: many changes.
	if n := strings.Count(s, " #\n"); n != 1 {
		t.Errorf("constant node dumped %d times, want 1", n)
	}
	if n := strings.Count(s, " \"\n"); n < 10 {
		t.Errorf("charging node dumped only %d times", n)
	}
	// Final timestamp must be 5 ns in femtoseconds.
	if !strings.Contains(s, "#5000000") {
		t.Errorf("missing 5 ns timestamp in:\n%s", s)
	}
}

func TestWriteVCDSelectsNodes(t *testing.T) {
	wf := rcWaveform(t)
	var buf bytes.Buffer
	if err := wf.WriteVCD(&buf, "", []string{"out"}); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	s := buf.String()
	if strings.Contains(s, " in ") {
		t.Errorf("unselected node dumped:\n%s", s)
	}
	if err := wf.WriteVCD(&buf, "", []string{"nope"}); err == nil {
		t.Errorf("unknown node did not error")
	}
}

func TestVCDCode(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := vcdCode(i)
		if seen[c] {
			t.Fatalf("vcdCode collision at %d: %q", i, c)
		}
		seen[c] = true
		for j := 0; j < len(c); j++ {
			if c[j] < 33 || c[j] > 126 {
				t.Fatalf("vcdCode(%d) has non-printable byte %d", i, c[j])
			}
		}
	}
}
