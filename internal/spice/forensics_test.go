package spice

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/device"
)

// buildHardInverter wires a cryogenic CMOS inverter biased mid-rail — with
// a tiny iteration budget the steep 4 K exponentials cannot settle, which
// is the supported way to force a nonconvergent solve.
func buildHardInverter(tempK float64, maxIter int) *Circuit {
	c := New(tempK)
	c.MaxIter = maxIter
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource(vdd, Ground, DC(0.7))
	c.NameLast("Vdd")
	c.AddVSource(in, Ground, DC(0.35))
	c.NameLast("Vin")
	c.AddMOSFET(device.NewP(2), out, in, vdd, vdd)
	c.NameLast("MP1(in)")
	c.AddMOSFET(device.NewN(1), out, in, Ground, Ground)
	c.NameLast("MN1(in)")
	return c
}

func TestConvergenceErrorDiagnosis(t *testing.T) {
	ResetRecentFailures()
	c := buildHardInverter(4, 2)
	_, err := c.OpPoint()
	if err == nil {
		t.Fatal("expected nonconvergence with MaxIter=2 at 4 K")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("error chain lost ErrNoConvergence: %v", err)
	}
	ce := AsConvergenceError(err)
	if ce == nil {
		t.Fatalf("error carries no ConvergenceError: %v", err)
	}
	d := ce.Diag
	if d.WorstNode == "" {
		t.Error("diagnosis names no worst node")
	}
	if d.Iters == 0 || len(d.History) == 0 {
		t.Errorf("diagnosis has no iteration history: %+v", d)
	}
	if len(d.Devices) == 0 {
		t.Fatal("diagnosis attributes no device residuals")
	}
	for _, dev := range d.Devices {
		if dev.Device == "" || dev.Residual < 0 {
			t.Errorf("bad device residual %+v", dev)
		}
	}
	// The attribution must use the builder-assigned names.
	joined := ""
	for _, dev := range d.Devices {
		joined += dev.Device + " "
	}
	if !strings.Contains(joined, "M") && !strings.Contains(joined, "V") {
		t.Errorf("device attribution lost element names: %q", joined)
	}
	if d.Phase == "" {
		t.Error("diagnosis has no phase")
	}
	// The error string itself must be actionable.
	if !strings.Contains(err.Error(), d.WorstNode) {
		t.Errorf("error text %q does not name worst node %q", err.Error(), d.WorstNode)
	}

	recent := RecentFailures()
	if len(recent) == 0 {
		t.Fatal("failure not recorded in the recent-failures ring")
	}
	if recent[0].WorstNode == "" {
		t.Errorf("recorded diagnosis mangled: %+v", recent[0])
	}
}

func TestConvergedSolveHasNoDiagnosis(t *testing.T) {
	c := buildHardInverter(300, 0) // default budget converges at 300 K
	if _, err := c.OpPoint(); err != nil {
		t.Fatalf("300 K inverter must converge: %v", err)
	}
}

// TestRecentFailuresConcurrent exercises the shared failure ring from
// parallel solvers — the charlib worker-pool shape — under -race.
func TestRecentFailuresConcurrent(t *testing.T) {
	ResetRecentFailures()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				c := buildHardInverter(4, 2)
				if _, err := c.OpPoint(); err == nil {
					t.Error("expected failure")
				}
				RecentFailures()
			}
		}()
	}
	wg.Wait()
	if got := RecentFailures(); len(got) != 16 {
		t.Fatalf("ring holds %d diagnoses, want full 16", len(got))
	}
}

func TestElemNames(t *testing.T) {
	c := New(300)
	a, b := c.Node("a"), c.Node("b")
	c.AddResistor(a, b, 100)
	c.AddCapacitor(b, Ground, 1e-15)
	c.NameLast("Cload")
	if got := c.ElemName(0); got != "R#0" {
		t.Errorf("auto name = %q, want R#0", got)
	}
	if got := c.ElemName(1); got != "Cload" {
		t.Errorf("assigned name = %q, want Cload", got)
	}
	if got := c.ElemName(99); got != "?" {
		t.Errorf("out of range name = %q", got)
	}
}

func TestGminExhaustedCounterWiring(t *testing.T) {
	// The exhausted counter and full-depth observation must reference the
	// same ladder; a drive-by edit that changes one side silently skews the
	// histogram semantics.
	if gminLadderFullDepth != float64(len(gminLadder)) {
		t.Fatalf("gminLadderFullDepth %v out of sync with ladder length %d",
			gminLadderFullDepth, len(gminLadder))
	}
	if gminLadder[len(gminLadder)-1] != baseGmin {
		t.Fatal("gmin ladder must end at baseGmin")
	}
}
