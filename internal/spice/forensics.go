package spice

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// ringK is the number of trailing Newton iterations kept for post-mortems.
// The tail is what matters: a limit cycle or a diverging node shows up in
// the last few iterations, and a fixed-size ring keeps the always-on
// recording allocation-free.
const ringK = 8

// iterRec is the in-flight (unresolved) per-iteration record; node names
// are resolved only when a solve actually fails.
type iterRec struct {
	it       int
	maxDV    float64
	dvRow    int // node row with the largest proposed Newton step
	resid    float64
	residRow int // row with the worst tolerance-relative KCL/KVL residual
	gmin     float64
	temp     float64
}

// IterRecord is one Newton iteration as captured by the forensics ring
// buffer, with node names resolved.
type IterRecord struct {
	Iter      int     `json:"iter"`
	MaxDV     float64 `json:"max_dv"`     // largest proposed voltage step (V)
	DVNode    string  `json:"dv_node"`    // node proposing that step
	Residual  float64 `json:"residual"`   // worst row residual (A for nodes, V for sources)
	WorstNode string  `json:"worst_node"` // row with that residual
	Gmin      float64 `json:"gmin"`
	TempK     float64 `json:"temp_k"`
}

// DeviceResidual attributes a slice of the failure-point KCL residual to
// one circuit element: the magnitude of the element's unbalanced current
// injection at the worst-converging node.
type DeviceResidual struct {
	Device   string  `json:"device"`
	Residual float64 `json:"residual"` // |contribution at the worst node| (A)
}

// Convergence-failure phases: which solver strategy was active when the
// diagnosis was taken.
const (
	PhaseDirect           = "direct"
	PhaseGminLadder       = "gmin_ladder"
	PhaseTempContinuation = "temp_continuation"
)

// Diagnosis is the post-mortem of one nonconvergent Newton solve: where the
// iteration was when it died, which node refused to settle, and which
// devices inject the unbalanced current there. It serializes to JSON and is
// what charlib attaches to run-journal failure events.
type Diagnosis struct {
	Phase     string           `json:"phase"`
	TempK     float64          `json:"temp_k"`
	Gmin      float64          `json:"gmin"`
	Iters     int              `json:"iters"`
	WorstNode string           `json:"worst_node"`
	Residual  float64          `json:"residual"` // worst-row residual at failure
	MaxDV     float64          `json:"max_dv"`   // last proposed step (V)
	History   []IterRecord     `json:"history,omitempty"`
	Devices   []DeviceResidual `json:"devices,omitempty"`
}

// String renders a one-line summary suitable for error text.
func (d *Diagnosis) String() string {
	s := fmt.Sprintf("phase=%s T=%gK gmin=%g iters=%d worst node %s (residual %.3g, maxDV %.3g)",
		d.Phase, d.TempK, d.Gmin, d.Iters, d.WorstNode, d.Residual, d.MaxDV)
	if len(d.Devices) > 0 {
		s += fmt.Sprintf(", worst device %s (%.3g)", d.Devices[0].Device, d.Devices[0].Residual)
	}
	return s
}

// ConvergenceError wraps ErrNoConvergence with the forensic diagnosis of
// the failed solve. errors.Is(err, ErrNoConvergence) keeps working;
// errors.As / AsConvergenceError recover the diagnosis.
type ConvergenceError struct {
	Diag Diagnosis
}

func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("%v (%s)", ErrNoConvergence, e.Diag.String())
}

// Unwrap makes errors.Is(err, ErrNoConvergence) true.
func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// AsConvergenceError extracts the *ConvergenceError from an error chain,
// or nil when the failure carries no diagnosis.
func AsConvergenceError(err error) *ConvergenceError {
	var ce *ConvergenceError
	if errors.As(err, &ce) {
		return ce
	}
	return nil
}

// recentFailures is a process-global ring of the most recent convergence
// diagnoses, so post-mortems can be pulled even when an error chain was
// swallowed along the way. Shared across the parallel charlib workers —
// hence the mutex (covered by the -race CI step).
var recentFailures struct {
	mu   sync.Mutex
	ring [16]Diagnosis
	n    int // total recorded
}

func recordFailure(d Diagnosis) {
	obs.C("spice.newton.diagnosed").Inc()
	recentFailures.mu.Lock()
	recentFailures.ring[recentFailures.n%len(recentFailures.ring)] = d
	recentFailures.n++
	recentFailures.mu.Unlock()
}

// RecentFailures returns the most recent convergence diagnoses, newest
// first (at most the ring capacity of 16).
func RecentFailures() []Diagnosis {
	recentFailures.mu.Lock()
	defer recentFailures.mu.Unlock()
	k := recentFailures.n
	if k > len(recentFailures.ring) {
		k = len(recentFailures.ring)
	}
	out := make([]Diagnosis, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, recentFailures.ring[(recentFailures.n-1-i)%len(recentFailures.ring)])
	}
	return out
}

// ResetRecentFailures clears the global failure ring (tests).
func ResetRecentFailures() {
	recentFailures.mu.Lock()
	recentFailures.n = 0
	recentFailures.mu.Unlock()
}

// rowName resolves an MNA row index to a human-readable name: node rows
// get their interned node name, source branch rows a vsrc#k tag.
func (c *Circuit) rowName(i int) string {
	if i < 0 {
		return "?"
	}
	if i < len(c.names) {
		return c.names[i]
	}
	return fmt.Sprintf("vsrc#%d", i-len(c.names))
}

// diagnose assembles the post-mortem of a failed Newton solve from the
// iteration ring and the final iterate, including per-device residual
// attribution at the worst node. It runs only on the failure path, so its
// cost (one element-by-element re-stamp) is irrelevant.
func (c *Circuit) diagnose(ring *[ringK]iterRec, iters int, x []float64, t float64, prev []float64, dt, gmin, temp float64) *ConvergenceError {
	d := Diagnosis{Phase: PhaseDirect, TempK: temp, Gmin: gmin, Iters: iters}
	k := iters
	if k > ringK {
		k = ringK
	}
	for i := 0; i < k; i++ {
		r := ring[(iters-k+i)%ringK]
		d.History = append(d.History, IterRecord{
			Iter:      r.it,
			MaxDV:     r.maxDV,
			DVNode:    c.rowName(r.dvRow),
			Residual:  r.resid,
			WorstNode: c.rowName(r.residRow),
			Gmin:      r.gmin,
			TempK:     r.temp,
		})
	}
	worstRow := -1
	if k > 0 {
		last := ring[(iters-1)%ringK]
		worstRow = last.residRow
		d.WorstNode = c.rowName(last.residRow)
		d.Residual = last.resid
		d.MaxDV = last.maxDV
	}
	d.Devices = c.attributeResiduals(x, t, prev, dt, gmin, temp, worstRow, 5)
	if len(d.Devices) == 0 {
		// The ring records pre-update residuals, and linear rows (source
		// branches) are satisfied exactly by the final full-step update — so
		// the recorded row can be clean at the final iterate. Re-locate the
		// worst row there and attribute at it instead.
		if row, resid := c.worstResidualRow(x, t, prev, dt, gmin, temp); row >= 0 && resid > 0 {
			worstRow = row
			d.WorstNode = c.rowName(row)
			d.Residual = resid
			d.Devices = c.attributeResiduals(x, t, prev, dt, gmin, temp, row, 5)
		}
	}
	ce := &ConvergenceError{Diag: d}
	recordFailure(d)
	return ce
}

// worstResidualRow recomputes the tolerance-relative KCL/KVL residual of
// the final iterate over the fully stamped system and returns the worst row
// and its absolute residual ((-1, 0) when the system cannot be evaluated).
func (c *Circuit) worstResidualRow(x []float64, t float64, prev []float64, dt, gmin, temp float64) (int, float64) {
	n := c.systemSize()
	if len(x) != n {
		return -1, 0
	}
	nNode := len(c.names)
	g := linalg.NewMatrix(n)
	b := make([]float64, n)
	ctx := &stampCtx{g: g, b: b, x: x, prev: prev, time: t, dt: dt, nNode: nNode, gmin: gmin, temp: temp}
	for _, e := range c.elems {
		e.stamp(ctx)
	}
	for i := 0; i < nNode; i++ {
		g.Add(i, i, gmin)
	}
	row, score, resid := -1, 0.0, 0.0
	for i := 0; i < n; i++ {
		var r float64
		for j := 0; j < n; j++ {
			r += g.At(i, j) * x[j]
		}
		r -= b[i]
		tol := 1e-12 // node row: amperes
		if i >= nNode {
			tol = 1e-9 // source row: volts
		}
		if a := math.Abs(r); a/tol > score {
			score, row, resid = a/tol, i, a
		}
	}
	return row, resid
}

// attributeResiduals splits the KCL residual at MNA row "worst" between the
// circuit's elements: each element is stamped alone and its unbalanced
// injection at that row measured against the final iterate. The per-element
// contributions sum (with the gmin diagonal) to the total row residual, so
// the ranking names the devices that keep the node from settling.
func (c *Circuit) attributeResiduals(x []float64, t float64, prev []float64, dt, gmin, temp float64, worst, topN int) []DeviceResidual {
	n := c.systemSize()
	if worst < 0 || worst >= n || len(x) != n {
		return nil
	}
	g := linalg.NewMatrix(n)
	b := make([]float64, n)
	out := make([]DeviceResidual, 0, len(c.elems))
	for i, e := range c.elems {
		g.Zero()
		for j := range b {
			b[j] = 0
		}
		ctx := &stampCtx{g: g, b: b, x: x, prev: prev, time: t, dt: dt, nNode: len(c.names), gmin: gmin, temp: temp}
		e.stamp(ctx)
		r := -b[worst]
		for j := 0; j < n; j++ {
			r += g.At(worst, j) * x[j]
		}
		if a := math.Abs(r); a > 0 {
			out = append(out, DeviceResidual{Device: c.ElemName(i), Residual: a})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Residual != out[j].Residual {
			return out[i].Residual > out[j].Residual
		}
		return out[i].Device < out[j].Device
	})
	if len(out) > topN {
		out = out[:topN]
	}
	return out
}
