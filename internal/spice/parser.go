package spice

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/device"
)

// ParseOptions configures netlist parsing.
type ParseOptions struct {
	Temp float64 // simulation temperature (K); .temp cards override it
}

// ParseResult is the outcome of parsing a netlist deck.
type ParseResult struct {
	Circuit *Circuit
	// Tstop/Tstep are set when the deck contains a .tran card.
	Tstop, Tstep float64
	HasTran      bool
	// Sources maps source names (upper-cased) to branch indices.
	Sources map[string]int
}

// ParseNetlist reads a SPICE-subset netlist:
//
//   - comment lines, leading title line not required
//     R<name> a b value
//     C<name> a b value
//     V<name> pos neg DC <v> | PWL(t v t v ...) | PULSE(v1 v2 td tr tf pw per)
//     I<name> from to DC <v>
//     M<name> d g s b nfet|pfet [nfin=<int>]
//     .temp <kelvin>
//     .tran <tstep> <tstop>
//     .end
//
// Values accept SPICE unit suffixes (f p n u m k meg g t).
func ParseNetlist(r io.Reader, opt ParseOptions) (*ParseResult, error) {
	if opt.Temp == 0 {
		opt.Temp = 300
	}
	c := New(opt.Temp)
	res := &ParseResult{Circuit: c, Sources: make(map[string]int)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, "//") {
			continue
		}
		if i := strings.Index(line, ";"); i >= 0 {
			line = strings.TrimSpace(line[:i])
			if line == "" {
				continue
			}
		}
		if err := parseLine(c, res, line); err != nil {
			return nil, fmt.Errorf("spice: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

func parseLine(c *Circuit, res *ParseResult, line string) error {
	fields := splitFields(line)
	if len(fields) == 0 {
		return nil
	}
	head := strings.ToUpper(fields[0])
	switch {
	case head == ".END":
		return nil
	case head == ".TEMP":
		if len(fields) < 2 {
			return fmt.Errorf(".temp needs a value")
		}
		v, err := ParseValue(fields[1])
		if err != nil {
			return err
		}
		c.Temp = v
		return nil
	case head == ".TRAN":
		if len(fields) < 3 {
			return fmt.Errorf(".tran needs tstep and tstop")
		}
		step, err := ParseValue(fields[1])
		if err != nil {
			return err
		}
		stop, err := ParseValue(fields[2])
		if err != nil {
			return err
		}
		res.Tstep, res.Tstop, res.HasTran = step, stop, true
		return nil
	case strings.HasPrefix(head, "."):
		return nil // ignore other control cards
	case head[0] == 'R':
		if len(fields) != 4 {
			return fmt.Errorf("resistor needs 2 nodes and a value")
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		c.AddResistor(c.Node(fields[1]), c.Node(fields[2]), v)
		c.NameLast(fields[0])
		return nil
	case head[0] == 'C':
		if len(fields) != 4 {
			return fmt.Errorf("capacitor needs 2 nodes and a value")
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		c.AddCapacitor(c.Node(fields[1]), c.Node(fields[2]), v)
		c.NameLast(fields[0])
		return nil
	case head[0] == 'V', head[0] == 'I':
		if len(fields) < 4 {
			return fmt.Errorf("source needs 2 nodes and a spec")
		}
		fn, err := parseSource(fields[3:])
		if err != nil {
			return err
		}
		if head[0] == 'V' {
			idx := c.AddVSource(c.Node(fields[1]), c.Node(fields[2]), fn)
			res.Sources[head] = idx
		} else {
			c.AddISource(c.Node(fields[1]), c.Node(fields[2]), fn)
		}
		c.NameLast(fields[0])
		return nil
	case head[0] == 'M':
		if len(fields) < 6 {
			return fmt.Errorf("mosfet needs d g s b and a model name")
		}
		nfin := 1
		for _, f := range fields[6:] {
			kv := strings.SplitN(strings.ToLower(f), "=", 2)
			if len(kv) == 2 && kv[0] == "nfin" {
				n, err := strconv.Atoi(kv[1])
				if err != nil {
					return fmt.Errorf("bad nfin: %v", err)
				}
				nfin = n
			}
		}
		var m *device.Model
		switch strings.ToLower(fields[5]) {
		case "nfet", "nmos":
			m = device.NewN(nfin)
		case "pfet", "pmos":
			m = device.NewP(nfin)
		default:
			return fmt.Errorf("unknown model %q", fields[5])
		}
		c.AddMOSFET(m, c.Node(fields[1]), c.Node(fields[2]), c.Node(fields[3]), c.Node(fields[4]))
		c.NameLast(fields[0])
		return nil
	}
	return fmt.Errorf("unrecognized card %q", fields[0])
}

// splitFields splits a card into fields, keeping parenthesized groups (e.g.
// PWL(0 0 1n 1)) as a single field.
func splitFields(line string) []string {
	var out []string
	depth := 0
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t') && depth == 0:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func parseSource(fields []string) (SourceFn, error) {
	spec := strings.ToUpper(fields[0])
	switch {
	case spec == "DC":
		if len(fields) < 2 {
			return nil, fmt.Errorf("DC needs a value")
		}
		v, err := ParseValue(fields[1])
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	case strings.HasPrefix(spec, "PWL(") || strings.HasPrefix(spec, "PULSE("):
		open := strings.Index(fields[0], "(")
		closeIdx := strings.LastIndex(fields[0], ")")
		if closeIdx < open {
			return nil, fmt.Errorf("unbalanced parentheses in source spec")
		}
		args := strings.Fields(strings.ReplaceAll(fields[0][open+1:closeIdx], ",", " "))
		vals := make([]float64, len(args))
		for i, a := range args {
			v, err := ParseValue(a)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if strings.HasPrefix(spec, "PWL(") {
			if len(vals)%2 != 0 || len(vals) == 0 {
				return nil, fmt.Errorf("PWL needs time/value pairs")
			}
			pts := make([][2]float64, len(vals)/2)
			for i := range pts {
				pts[i] = [2]float64{vals[2*i], vals[2*i+1]}
			}
			return PWL(pts...), nil
		}
		if len(vals) != 7 {
			return nil, fmt.Errorf("PULSE needs 7 arguments")
		}
		return Pulse(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6]), nil
	default:
		// Bare numeric value means DC.
		v, err := ParseValue(fields[0])
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	}
}

// ParseValue parses a SPICE numeric literal with an optional unit suffix.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "meg"):
		mult, s = 1e6, strings.TrimSuffix(s, "meg")
	case strings.HasSuffix(s, "f"):
		mult, s = 1e-15, strings.TrimSuffix(s, "f")
	case strings.HasSuffix(s, "p"):
		mult, s = 1e-12, strings.TrimSuffix(s, "p")
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, strings.TrimSuffix(s, "n")
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, strings.TrimSuffix(s, "u")
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "g"):
		mult, s = 1e9, strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "t"):
		mult, s = 1e12, strings.TrimSuffix(s, "t")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad numeric value %q", s)
	}
	return v * mult, nil
}
