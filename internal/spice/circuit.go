// Package spice implements a SPICE-class circuit simulator: modified nodal
// analysis with Newton-Raphson DC operating-point solution and
// backward-Euler transient analysis. It substitutes for the commercial SPICE
// engine the paper uses for standard-cell characterization: the cryogenic
// compact model from internal/device is evaluated directly as the MOSFET
// element.
package spice

import (
	"fmt"
	"math"

	"repro/internal/device"
)

// NodeID identifies a circuit node. Ground is a fixed negative ID.
type NodeID int

// Ground is the reference node ("0" / "gnd" / "vss" in netlists map to it).
const Ground NodeID = -1

// Circuit is a flat transistor-level circuit at a fixed temperature.
type Circuit struct {
	Temp float64 // simulation temperature in kelvin
	// MaxIter caps Newton iterations per solve attempt; 0 uses the solver
	// default. A deliberately tiny cap is the supported way to force
	// nonconvergence diagnostics (forensics tests, failure drills).
	MaxIter int
	// Solver selects the linear-solver backend (default SolverAuto: sparse
	// with reusable symbolic factorization, dense for tiny systems).
	// SolverDense is the cross-check oracle.
	Solver    SolverKind
	names     []string
	index     map[string]NodeID
	elems     []element
	elemNames []string // per-element names ("" = auto, see ElemName)
	nvsrc     int
	solver    *solverState // lazily built, invalidated on topology change
}

// New returns an empty circuit that will be simulated at the given
// temperature.
func New(tempK float64) *Circuit {
	return &Circuit{Temp: tempK, index: make(map[string]NodeID)}
}

// Node interns a node name and returns its ID. The names "0", "gnd", and
// "vss!" style ground aliases return Ground.
func (c *Circuit) Node(name string) NodeID {
	switch name {
	case "0", "gnd", "GND", "vss", "VSS":
		return Ground
	}
	if id, ok := c.index[name]; ok {
		return id
	}
	id := NodeID(len(c.names))
	c.names = append(c.names, name)
	c.index[name] = id
	return id
}

// NodeName returns the interned name for an ID.
func (c *Circuit) NodeName(id NodeID) string {
	if id == Ground {
		return "0"
	}
	return c.names[id]
}

// LookupNode returns the ID of an already-interned node without creating
// it.
func (c *Circuit) LookupNode(name string) (NodeID, bool) {
	id, ok := c.index[name]
	return id, ok
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.names) }

// element is anything that can stamp itself into the MNA system.
type element interface {
	stamp(ctx *stampCtx)
}

// addElem appends an element with an empty (auto) name slot.
func (c *Circuit) addElem(e element) {
	c.elems = append(c.elems, e)
	c.elemNames = append(c.elemNames, "")
}

// NameLast names the most recently added element, so nonconvergence
// forensics can attribute residuals to "dut.q.N(A)" instead of "elem#17".
// Builders (the netlist parser, pdk cell instantiation) call it right after
// each Add*.
func (c *Circuit) NameLast(name string) {
	if len(c.elemNames) > 0 {
		c.elemNames[len(c.elemNames)-1] = name
	}
}

// ElemName returns the forensic name of element i: the builder-assigned
// name when present, otherwise an auto tag derived from the element kind.
func (c *Circuit) ElemName(i int) string {
	if i < 0 || i >= len(c.elems) {
		return "?"
	}
	if c.elemNames[i] != "" {
		return c.elemNames[i]
	}
	kind := "elem"
	switch c.elems[i].(type) {
	case *resistor:
		kind = "R"
	case *capacitor:
		kind = "C"
	case *vsource:
		kind = "V"
	case *isource:
		kind = "I"
	case *mosfet:
		kind = "M"
	case *clamp:
		kind = "clamp"
	}
	return fmt.Sprintf("%s#%d", kind, i)
}

// AddResistor adds a linear resistor between nodes a and b.
func (c *Circuit) AddResistor(a, b NodeID, ohms float64) {
	c.addElem(&resistor{a, b, ohms})
}

// AddCapacitor adds a linear capacitor between nodes a and b.
func (c *Circuit) AddCapacitor(a, b NodeID, farads float64) {
	c.addElem(&capacitor{a, b, farads})
}

// SourceFn gives a source value at time t (seconds). DC analyses evaluate it
// at t = 0.
type SourceFn func(t float64) float64

// DC returns a constant source function.
func DC(v float64) SourceFn { return func(float64) float64 { return v } }

// PWL returns a piecewise-linear source through the given (time, value)
// points, which must be time-sorted. Before the first point the first value
// holds; after the last, the last value holds.
func PWL(pts ...[2]float64) SourceFn {
	return func(t float64) float64 {
		if len(pts) == 0 {
			return 0
		}
		if t <= pts[0][0] {
			return pts[0][1]
		}
		for i := 1; i < len(pts); i++ {
			if t <= pts[i][0] {
				t0, v0 := pts[i-1][0], pts[i-1][1]
				t1, v1 := pts[i][0], pts[i][1]
				if t1 == t0 {
					return v1
				}
				return v0 + (v1-v0)*(t-t0)/(t1-t0)
			}
		}
		return pts[len(pts)-1][1]
	}
}

// Pulse returns a SPICE-style pulse source: v1 -> v2 with the given delay,
// rise, fall, width, and period.
func Pulse(v1, v2, delay, rise, fall, width, period float64) SourceFn {
	return func(t float64) float64 {
		if t < delay {
			return v1
		}
		tt := math.Mod(t-delay, period)
		switch {
		case tt < rise:
			return v1 + (v2-v1)*tt/rise
		case tt < rise+width:
			return v2
		case tt < rise+width+fall:
			return v2 + (v1-v2)*(tt-rise-width)/fall
		default:
			return v1
		}
	}
}

// AddVSource adds an independent voltage source (pos relative to neg) and
// returns its branch index for current measurement.
func (c *Circuit) AddVSource(pos, neg NodeID, fn SourceFn) int {
	idx := c.nvsrc
	c.nvsrc++
	c.addElem(&vsource{pos, neg, idx, fn})
	return idx
}

// AddISource adds an independent current source pushing current from node
// "from" to node "to" (through the external circuit from "to" back to
// "from").
func (c *Circuit) AddISource(from, to NodeID, fn SourceFn) {
	c.addElem(&isource{from, to, fn})
}

// AddClamp attaches a switchable conductance from the node toward a target
// voltage: i = g(t)*(v - vtarget). A zero conductance disables it. Used to
// steer bistable feedback loops onto a stable branch during operating-point
// analysis.
func (c *Circuit) AddClamp(node NodeID, vtarget float64, g SourceFn) {
	c.addElem(&clamp{node: node, vt: vtarget, g: g})
}

// AddMOSFET adds a FinFET with the given compact model between drain, gate,
// source, and bulk nodes.
func (c *Circuit) AddMOSFET(m *device.Model, d, g, s, b NodeID) {
	c.addElem(&mosfet{m, d, g, s, b})
}

// systemSize returns the MNA unknown count: node voltages plus source branch
// currents.
func (c *Circuit) systemSize() int { return len(c.names) + c.nvsrc }

func (c *Circuit) String() string {
	return fmt.Sprintf("spice.Circuit{T=%gK, nodes=%d, elems=%d, vsrc=%d}",
		c.Temp, len(c.names), len(c.elems), c.nvsrc)
}
