package spice

import "fmt"

// Waveform holds the sampled results of a transient analysis.
type Waveform struct {
	Time    []float64
	circuit *Circuit
	// samples[i] is the full solution vector at Time[i].
	samples [][]float64
}

// Transient runs a transient analysis from 0 to tstop with the given fixed
// timestep. The initial condition is the DC operating point with the sources
// evaluated at t = 0.
func (c *Circuit) Transient(tstop, dt float64) (*Waveform, error) {
	return c.TransientFrom(nil, tstop, dt)
}

// TransientFrom is Transient with the initial operating-point solve seeded
// from guess — the characterization warm start: neighboring sweep points
// share (or nearly share) their DC state, so seeding skips most of the gmin
// ladder. A guess of the wrong length (or nil) is ignored.
func (c *Circuit) TransientFrom(guess []float64, tstop, dt float64) (*Waveform, error) {
	if dt <= 0 || tstop <= 0 {
		return nil, fmt.Errorf("spice: invalid transient window tstop=%g dt=%g", tstop, dt)
	}
	if len(guess) != c.systemSize() {
		guess = nil
	}
	x, err := c.opAt(0, nil, 0, guess)
	if err != nil {
		return nil, fmt.Errorf("spice: initial operating point: %w", err)
	}
	wf := &Waveform{circuit: c}
	record := func(t float64, sol []float64) {
		wf.Time = append(wf.Time, t)
		wf.samples = append(wf.samples, append([]float64(nil), sol...))
	}
	record(0, x)
	steps := int(tstop/dt + 0.5)
	for i := 1; i <= steps; i++ {
		t := float64(i) * dt
		next, err := c.opAt(t, x, dt, x)
		if err != nil {
			// Retry the step at a quarter of the stride for robustness
			// around sharp input edges.
			fine := dt / 4
			cur := x
			ok := true
			for j := 1; j <= 4; j++ {
				sub, errSub := c.opAt(t-dt+float64(j)*fine, cur, fine, cur)
				if errSub != nil {
					ok = false
					break
				}
				cur = sub
			}
			if !ok {
				return nil, fmt.Errorf("spice: transient step at t=%g: %w", t, err)
			}
			next = cur
		}
		record(t, next)
		x = next
	}
	return wf, nil
}

// InitialOp returns a copy of the t = 0 operating-point solution vector —
// the warm-start seed a neighboring sweep point passes to TransientFrom
// when the circuits share node ordering (same builder, different values).
func (w *Waveform) InitialOp() []float64 {
	if len(w.samples) == 0 {
		return nil
	}
	return append([]float64(nil), w.samples[0]...)
}

// V returns the voltage waveform at the named node.
func (w *Waveform) V(node string) []float64 {
	id := w.circuit.Node(node)
	out := make([]float64, len(w.samples))
	if id == Ground {
		return out
	}
	for i, s := range w.samples {
		out[i] = s[id]
	}
	return out
}

// BranchCurrent returns the current waveform through the voltage source with
// the given branch index, in the MNA convention (positive current flows from
// the pos terminal through the source to the neg terminal).
func (w *Waveform) BranchCurrent(branch int) []float64 {
	n := w.circuit.NumNodes()
	out := make([]float64, len(w.samples))
	for i, s := range w.samples {
		out[i] = s[n+branch]
	}
	return out
}

// SupplyEnergy integrates the energy delivered by the voltage source with
// the given branch index over the full waveform, in joules. For a supply,
// delivered current flows out of the pos terminal, which is the negative of
// the MNA branch current.
func (w *Waveform) SupplyEnergy(branch int, fn SourceFn) float64 {
	cur := w.BranchCurrent(branch)
	var e float64
	for i := 1; i < len(w.Time); i++ {
		dt := w.Time[i] - w.Time[i-1]
		p0 := -cur[i-1] * fn(w.Time[i-1])
		p1 := -cur[i] * fn(w.Time[i])
		e += 0.5 * (p0 + p1) * dt
	}
	return e
}

// CrossTime returns the first time after "after" at which the signal crosses
// the threshold in the requested direction, using linear interpolation. The
// second return value reports whether a crossing was found.
func (w *Waveform) CrossTime(signal []float64, threshold float64, rising bool, after float64) (float64, bool) {
	for i := 1; i < len(w.Time); i++ {
		if w.Time[i] < after {
			continue
		}
		a, b := signal[i-1], signal[i]
		var hit bool
		if rising {
			hit = a < threshold && b >= threshold
		} else {
			hit = a > threshold && b <= threshold
		}
		if hit {
			frac := (threshold - a) / (b - a)
			return w.Time[i-1] + frac*(w.Time[i]-w.Time[i-1]), true
		}
	}
	return 0, false
}

// TransitionTime returns the time the signal takes to move between the low
// and high measurement thresholds (in either direction), searching after the
// given time. It reports false when the transition is not found.
func (w *Waveform) TransitionTime(signal []float64, vLow, vHigh float64, rising bool, after float64) (float64, bool) {
	if rising {
		t0, ok0 := w.CrossTime(signal, vLow, true, after)
		if !ok0 {
			return 0, false
		}
		t1, ok1 := w.CrossTime(signal, vHigh, true, t0)
		if !ok1 {
			return 0, false
		}
		return t1 - t0, true
	}
	t0, ok0 := w.CrossTime(signal, vHigh, false, after)
	if !ok0 {
		return 0, false
	}
	t1, ok1 := w.CrossTime(signal, vLow, false, t0)
	if !ok1 {
		return 0, false
	}
	return t1 - t0, true
}

// Final returns the last sampled value of the signal.
func (w *Waveform) Final(signal []float64) float64 {
	if len(signal) == 0 {
		return 0
	}
	return signal[len(signal)-1]
}
