package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivialSat(t *testing.T) {
	s := New(2)
	s.AddClause(L(0, false), L(1, false))
	s.AddClause(L(0, true), L(1, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(1) {
		t.Error("x1 must be true in any model")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New(1)
	s.AddClause(L(0, false))
	if ok := s.AddClause(L(0, true)); ok {
		if got := s.Solve(); got != Unsat {
			t.Fatalf("Solve = %v, want Unsat", got)
		}
		return
	}
	// AddClause may already detect the contradiction; that's fine.
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New(1)
	if s.AddClause() {
		t.Error("empty clause must report unsatisfiable")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New(1)
	if !s.AddClause(L(0, false), L(0, true)) {
		t.Error("tautology rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Errorf("Solve = %v", got)
	}
}

func TestPigeonhole32(t *testing.T) {
	// 3 pigeons into 2 holes: unsat. Vars p*2+h.
	s := New(6)
	for p := 0; p < 3; p++ {
		s.AddClause(L(p*2, false), L(p*2+1, false))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				s.AddClause(L(p1*2+h, true), L(p2*2+h, true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(3,2) = %v, want Unsat", got)
	}
}

func TestPigeonhole54(t *testing.T) {
	const P, H = 5, 4
	s := New(P * H)
	for p := 0; p < P; p++ {
		lits := make([]Lit, H)
		for h := 0; h < H; h++ {
			lits[h] = L(p*H+h, false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				s.AddClause(L(p1*H+h, true), L(p2*H+h, true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(5,4) = %v, want Unsat", got)
	}
}

func TestAssumptions(t *testing.T) {
	// (a | b) & (!a | c)
	s := New(3)
	s.AddClause(L(0, false), L(1, false))
	s.AddClause(L(0, true), L(2, false))
	if got := s.Solve(L(0, false), L(2, true)); got != Unsat {
		t.Errorf("assuming a & !c: %v, want Unsat", got)
	}
	if got := s.Solve(L(0, false)); got != Sat {
		t.Errorf("assuming a: %v, want Sat", got)
	}
	if !s.Value(2) {
		t.Error("c must be true when a is assumed")
	}
	// Solver remains reusable after assumption solves.
	if got := s.Solve(); got != Sat {
		t.Errorf("no assumptions: %v, want Sat", got)
	}
}

func TestModelSatisfiesFormula(t *testing.T) {
	// Random 3-SAT near/below threshold; verify returned models, and
	// cross-check sat/unsat against brute force.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 4 + rng.Intn(6) // 4..9
		nCls := 2 + rng.Intn(5*nVars)
		type cl [3]Lit
		cls := make([]cl, nCls)
		s := New(nVars)
		for i := range cls {
			for k := 0; k < 3; k++ {
				cls[i][k] = L(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			s.AddClause(cls[i][0], cls[i][1], cls[i][2])
		}
		verdict := s.Solve()
		// Brute force ground truth.
		truth := false
		for m := 0; m < 1<<uint(nVars); m++ {
			ok := true
			for _, c := range cls {
				sat := false
				for _, l := range c {
					bit := m&(1<<uint(l.Var())) != 0
					if bit != l.Neg() {
						sat = true
						break
					}
				}
				if !sat {
					ok = false
					break
				}
			}
			if ok {
				truth = true
				break
			}
		}
		if truth != (verdict == Sat) {
			return false
		}
		if verdict == Sat {
			// Model must satisfy all clauses.
			for _, c := range cls {
				ok := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard-ish pigeonhole with a tiny budget must return Unknown.
	const P, H = 7, 6
	s := New(P * H)
	s.ConflictBudget = 5
	for p := 0; p < P; p++ {
		lits := make([]Lit, H)
		for h := 0; h < H; h++ {
			lits[h] = L(p*H+h, false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				s.AddClause(L(p1*H+h, true), L(p2*H+h, true))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Errorf("budgeted solve = %v, want Unknown", got)
	}
}

func TestGrowAndAddVar(t *testing.T) {
	s := New(0)
	a := s.AddVar()
	b := s.AddVar()
	if a != 0 || b != 1 {
		t.Fatalf("AddVar gave %d,%d", a, b)
	}
	s.AddClause(L(a, false), L(b, true))
	if got := s.Solve(); got != Sat {
		t.Errorf("Solve = %v", got)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// x0 & (x0->x1) & (x1->x2) ... forces the whole chain true.
	const n = 20
	s := New(n)
	s.AddClause(L(0, false))
	for i := 0; i+1 < n; i++ {
		s.AddClause(L(i, true), L(i+1, false))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("chain: %v", got)
	}
	for i := 0; i < n; i++ {
		if !s.Value(i) {
			t.Fatalf("x%d should be forced true", i)
		}
	}
}

func TestXorChainCNF(t *testing.T) {
	// Tseitin-encoded XOR chain with a parity constraint: satisfiable, and
	// the model must have odd parity over the inputs.
	const n = 6
	s := New(n)
	prev := 0 // x0
	aux := n
	for i := 1; i < n; i++ {
		y := s.AddVar()
		a, b := prev, i
		// y = a XOR b
		s.AddClause(L(y, true), L(a, false), L(b, false))
		s.AddClause(L(y, true), L(a, true), L(b, true))
		s.AddClause(L(y, false), L(a, true), L(b, false))
		s.AddClause(L(y, false), L(a, false), L(b, true))
		prev = y
	}
	_ = aux
	s.AddClause(L(prev, false)) // parity must be 1
	if got := s.Solve(); got != Sat {
		t.Fatalf("xor chain: %v", got)
	}
	parity := false
	for i := 0; i < n; i++ {
		if s.Value(i) {
			parity = !parity
		}
	}
	if !parity {
		t.Error("model has even parity, constraint requires odd")
	}
}

func TestSolverReuseAcrossManySolves(t *testing.T) {
	// Repeated assumption solves must not corrupt state.
	s := New(3)
	s.AddClause(L(0, false), L(1, false), L(2, false))
	for i := 0; i < 50; i++ {
		v := i % 3
		if got := s.Solve(L(v, false)); got != Sat {
			t.Fatalf("iteration %d: %v", i, got)
		}
		if !s.Value(v) {
			t.Fatalf("iteration %d: assumption not honored", i)
		}
	}
	if got := s.Solve(L(0, true), L(1, true), L(2, true)); got != Unsat {
		t.Fatalf("all-false assumptions: %v", got)
	}
}
