package sat

// varHeap is a binary max-heap over variable activities with lazy
// re-insertion: popped variables that turn out to be assigned are simply
// skipped, and unassignment pushes variables back. indices[v] < 0 means v is
// not currently in the heap.
type varHeap struct {
	data    []int
	indices []int
}

func (h *varHeap) less(s *Solver, a, b int) bool {
	return s.activity[h.data[a]] > s.activity[h.data[b]]
}

func (h *varHeap) swap(a, b int) {
	h.data[a], h.data[b] = h.data[b], h.data[a]
	h.indices[h.data[a]] = a
	h.indices[h.data[b]] = b
}

func (h *varHeap) up(s *Solver, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(s, i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(s *Solver, i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(s, l, best) {
			best = l
		}
		if r < n && h.less(s, r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// push inserts v if absent.
func (h *varHeap) push(s *Solver, v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.indices[v] = len(h.data) - 1
	h.up(s, len(h.data)-1)
}

// bump restores heap order after v's activity increased.
func (h *varHeap) bump(s *Solver, v int) {
	if v < len(h.indices) && h.indices[v] >= 0 {
		h.up(s, h.indices[v])
	}
}

// popMax removes and returns the highest-activity variable.
func (h *varHeap) popMax(s *Solver) (int, bool) {
	if len(h.data) == 0 {
		return 0, false
	}
	v := h.data[0]
	last := len(h.data) - 1
	h.swap(0, last)
	h.data = h.data[:last]
	h.indices[v] = -1
	if len(h.data) > 0 {
		h.down(s, 0)
	}
	return v, true
}

// rebuild re-establishes heap order after a global activity rescale.
func (h *varHeap) rebuild(s *Solver) {
	for i := len(h.data)/2 - 1; i >= 0; i-- {
		h.down(s, i)
	}
}
