// Package sat implements a compact CDCL SAT solver with two-watched-literal
// propagation, first-UIP conflict learning, VSIDS-style activity ordering,
// and restarts. It is the reasoning engine behind the don't-care-based
// resubstitution (mfs) and the combinational equivalence checks used to
// validate every optimization pass, mirroring the role SAT solvers play
// inside ABC.
package sat

import (
	"sort"

	"repro/internal/obs"
)

// Lit is a literal: variable<<1 | sign (sign 1 = negated). Variables are
// 0-based.
type Lit int32

// L builds a literal from a 0-based variable and a negation flag.
func L(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 != 0 }

// Not returns the complement.
func (l Lit) Not() Lit { return l ^ 1 }

// Status is a solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

const noReason = int32(-1)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

// Solver is a CDCL SAT solver. Zero value is not usable; call New.
type Solver struct {
	clauses  []*clause
	watches  [][]*clause // literal -> watching clauses
	assign   []int8      // var -> 0 unassigned, +1 true, -1 false
	level    []int32     // var -> decision level
	reason   []int32     // var -> clause index in trailReasons
	reasons  []*clause   // aligned with vars: antecedent clause
	activity []float64
	polarity []bool // phase saving
	heap     varHeap
	trail    []Lit
	trailLim []int
	qhead    int
	varInc   float64
	claInc   float64

	// ConflictBudget bounds the search effort; <0 means unlimited.
	ConflictBudget int64
	conflicts      int64
	rootUnsat      bool
}

// New returns a solver pre-sized for n variables.
func New(n int) *Solver {
	s := &Solver{varInc: 1, claInc: 1, ConflictBudget: -1}
	s.Grow(n)
	return s
}

// Grow ensures the solver knows about at least n variables.
func (s *Solver) Grow(n int) {
	for len(s.assign) < n {
		s.assign = append(s.assign, 0)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, noReason)
		s.reasons = append(s.reasons, nil)
		s.activity = append(s.activity, 0)
		s.polarity = append(s.polarity, false)
		s.watches = append(s.watches, nil, nil)
		s.heap.push(s, len(s.assign)-1)
	}
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return len(s.assign) }

// AddVar adds a fresh variable and returns its index.
func (s *Solver) AddVar() int {
	s.Grow(len(s.assign) + 1)
	return len(s.assign) - 1
}

func (s *Solver) value(l Lit) int8 {
	v := s.assign[l.Var()]
	if l.Neg() {
		return -v
	}
	return v
}

// AddClause adds a clause; it returns false if the formula became trivially
// unsatisfiable (the solver then answers Unsat from Solve as well). It may
// be called between Solve calls: the solver first backtracks to the root
// level, and since clauses are only ever added (never removed), incremental
// strengthening of the formula is sound. This is what the equivalence
// checker's SAT sweeping relies on to encode AIG cones lazily across many
// prove/refute queries on one solver.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.rootUnsat {
		return false
	}
	s.cancelUntil(0)
	// Deduplicate and detect tautology.
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	var prev Lit = -1
	for _, l := range lits {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() && l.Var() == prev.Var() {
			return true // tautology
		}
		// Drop already-false root-level literals; satisfied clause is a no-op.
		if len(s.trailLim) == 0 {
			switch s.value(l) {
			case 1:
				return true
			case -1:
				continue
			}
		}
		out = append(out, l)
		prev = l
	}
	lits = out
	switch len(lits) {
	case 0:
		s.rootUnsat = true
		return false
	case 1:
		if s.value(lits[0]) == -1 {
			s.rootUnsat = true
			return false
		}
		if s.value(lits[0]) == 0 {
			s.enqueue(lits[0], nil)
			if s.propagate() != nil {
				s.rootUnsat = true
				return false
			}
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), lits...)}
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.clauses = append(s.clauses, c)
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) enqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = -1
	} else {
		s.assign[v] = 1
	}
	s.level[v] = int32(len(s.trailLim))
	s.reasons[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if confl != nil {
				kept = append(kept, c)
				continue
			}
			// Ensure the falsified literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == 1 {
				kept = append(kept, c)
				continue
			}
			// Search replacement watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != -1 {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			kept = append(kept, c)
			if s.value(c.lits[0]) == -1 {
				confl = c
				continue
			}
			s.enqueue(c.lits[0], c)
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	back := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= back; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assign[v] == 1
		s.assign[v] = 0
		s.reasons[v] = nil
		s.heap.push(s, v)
	}
	s.trail = s.trail[:back]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = back
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.heap.rebuild(s)
		return
	}
	s.heap.bump(s, v)
}

// analyze performs first-UIP learning, returning the learnt clause and the
// backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	seen := make(map[int]bool)
	var learnt []Lit
	counter := 0
	p := Lit(-1)
	idx := len(s.trail) - 1
	for {
		for _, q := range confl.lits {
			if p >= 0 && q == p {
				continue
			}
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find next literal to expand on the trail.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		seen[v] = false
		counter--
		if counter == 0 {
			learnt = append([]Lit{p.Not()}, learnt...)
			break
		}
		confl = s.reasons[v]
	}
	// Backtrack level: second-highest level in the clause.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}
	return learnt, bt
}

func (s *Solver) pickBranch() (Lit, bool) {
	for {
		v, ok := s.heap.popMax(s)
		if !ok {
			return 0, false
		}
		if s.assign[v] == 0 {
			return L(v, !s.polarity[v]), true
		}
	}
}

// Solve searches for a satisfying assignment under the given assumptions.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.conflicts = 0
	if obs.MetricsEnabled() {
		// Batched at call granularity: one counter bump per Solve, plus the
		// conflict total accumulated during this search, flushed on return.
		obs.C("sat.solves").Inc()
		defer func() { obs.C("sat.conflicts").Add(s.conflicts) }()
	}
	if s.rootUnsat {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		return Unsat
	}
	restartLimit := int64(100)

	// Apply assumptions as pseudo-decisions.
	for _, a := range assumptions {
		switch s.value(a) {
		case -1:
			s.cancelUntil(0)
			return Unsat
		case 1:
			continue
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(a, nil)
		if s.propagate() != nil {
			s.cancelUntil(0)
			return Unsat
		}
	}
	assumeLvl := s.decisionLevel()

	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			if s.ConflictBudget >= 0 && s.conflicts > s.ConflictBudget {
				s.cancelUntil(0)
				return Unknown
			}
			if s.decisionLevel() <= assumeLvl {
				s.cancelUntil(0)
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			if bt < assumeLvl {
				bt = assumeLvl
			}
			s.cancelUntil(bt)
			if len(learnt) == 1 && s.decisionLevel() == 0 {
				if s.value(learnt[0]) == -1 {
					return Unsat
				}
				if s.value(learnt[0]) == 0 {
					s.enqueue(learnt[0], nil)
				}
			} else {
				c := &clause{lits: learnt, learnt: true}
				if len(learnt) >= 2 {
					s.attach(c)
				}
				if s.value(learnt[0]) == 0 {
					s.enqueue(learnt[0], c)
				}
			}
			s.varInc /= 0.95
			if s.conflicts%restartLimit == 0 {
				restartLimit += restartLimit / 2
				s.cancelUntil(assumeLvl)
			}
			continue
		}
		l, ok := s.pickBranch()
		if !ok {
			return Sat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(l, nil)
	}
}

// Value returns the model value of a variable after Sat (true/false); only
// meaningful immediately after a Sat result.
func (s *Solver) Value(v int) bool { return s.assign[v] == 1 }
