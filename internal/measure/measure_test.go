package measure

import (
	"math"
	"testing"

	"repro/internal/device"
)

func TestPaperPlanShape(t *testing.T) {
	p := PaperPlan()
	if len(p.VdsList) != 2 || p.VdsList[0] != 0.05 || p.VdsList[1] != 0.75 {
		t.Errorf("plan drain biases = %v, want paper's 50 mV and 750 mV", p.VdsList)
	}
	if p.Temps[0] != 300 || p.Temps[len(p.Temps)-1] != 10 {
		t.Errorf("plan temperatures %v must span 300 K down to 10 K", p.Temps)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	ref := ReferenceSilicon(device.NFET, 7)
	a := NewStation(42).Measure(ref, PaperPlan())
	b := NewStation(42).Measure(ref, PaperPlan())
	if len(a.Points) != len(b.Points) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs between identically seeded stations", i)
		}
	}
}

func TestThermalFluctuationRange(t *testing.T) {
	ref := ReferenceSilicon(device.NFET, 7)
	ds := NewStation(1).Measure(ref, PaperPlan())
	for _, pt := range ds.Points {
		d := pt.TempAct - pt.TempSet
		if d < 3.5-1e-9 || d > 8.5+1e-9 {
			t.Fatalf("thermal fluctuation %v K outside the documented 3.5-8.5 K", d)
		}
	}
}

func TestMeasurementTracksSilicon(t *testing.T) {
	ref := ReferenceSilicon(device.NFET, 7)
	ds := NewStation(3).Measure(ref, PaperPlan())
	// Above the noise floor the relative error should be dominated by the
	// 2 % instrument noise.
	var worst float64
	for _, pt := range ds.Points {
		ideal := ref.Ids(pt.Vgs, pt.Vds, pt.TempAct)
		if math.Abs(ideal) < 1e-9 {
			continue
		}
		rel := math.Abs(pt.Ids-ideal) / math.Abs(ideal)
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.15 {
		t.Errorf("worst relative measurement error %v, want < 15%%", worst)
	}
}

func TestPFETMeasurementPolarity(t *testing.T) {
	ref := ReferenceSilicon(device.PFET, 9)
	ds := NewStation(5).Measure(ref, PaperPlan())
	for _, pt := range ds.Points {
		if pt.Vgs > 1e-12 || pt.Vds > 1e-12 {
			t.Fatalf("PFET measurement with positive bias: %+v", pt)
		}
	}
	// Strong-inversion currents must be negative.
	neg := 0
	for _, pt := range ds.Points {
		if pt.Vgs < -0.5 && pt.Ids < 0 {
			neg++
		}
	}
	if neg == 0 {
		t.Error("no negative strong-inversion PFET currents recorded")
	}
}

func TestFilters(t *testing.T) {
	ref := ReferenceSilicon(device.NFET, 7)
	ds := NewStation(1).Measure(ref, PaperPlan())
	low := ds.FilterVds(0.05)
	high := ds.FilterVds(0.75)
	if len(low) == 0 || len(high) == 0 || len(low)+len(high) != len(ds.Points) {
		t.Errorf("FilterVds split %d + %d != %d", len(low), len(high), len(ds.Points))
	}
	t300 := ds.FilterTemp(300)
	if len(t300) == 0 {
		t.Error("FilterTemp(300) empty")
	}
	for _, pt := range t300 {
		if pt.TempSet != 300 {
			t.Fatalf("FilterTemp returned setpoint %v", pt.TempSet)
		}
	}
}

func TestReferenceSiliconPerturbed(t *testing.T) {
	ref := ReferenceSilicon(device.NFET, 7)
	def := device.DefaultNParams()
	if ref.P.Vth0 == def.Vth0 && ref.P.MuPh0 == def.MuPh0 && ref.P.TBand == def.TBand {
		t.Error("reference silicon identical to the default card; calibration would be a no-op")
	}
	// Different seeds give different silicon.
	other := ReferenceSilicon(device.NFET, 8)
	if other.P.Vth0 == ref.P.Vth0 {
		t.Error("different seeds produced identical silicon")
	}
}
