// Package measure implements a virtual cryogenic probe station.
//
// It substitutes for the paper's physical measurement setup (Lakeshore
// CRX-VF cryogenic probe station + Keysight B1500A semiconductor analyzer +
// commercial 5 nm FinFET samples): a reference device — a compact model with
// a perturbed "silicon" parameter card that the calibration flow does not
// get to see — is swept under a measurement plan, and the recorded currents
// are corrupted with instrument noise and with the probe-induced thermal
// fluctuation the paper documents (3.5 K to 8.5 K of heat-flux drift, which
// is why 10 K is the lowest stable setpoint).
package measure

import (
	"math"
	"math/rand"

	"repro/internal/device"
)

// Point is a single I-V measurement sample.
type Point struct {
	Vgs     float64 // applied gate-source voltage (V)
	Vds     float64 // applied drain-source voltage (V)
	TempSet float64 // chuck setpoint (K)
	TempAct float64 // actual device temperature during the sample (K)
	Ids     float64 // measured drain current (A), signed
}

// Dataset is a collection of measurements for one device.
type Dataset struct {
	Device string // e.g. "nfet" / "pfet"
	Points []Point
}

// Plan describes a measurement campaign: transfer sweeps at a set of drain
// biases and temperatures, mirroring the paper's Fig. 1(b,c) campaign.
type Plan struct {
	VgsStart, VgsStop, VgsStep float64
	VdsList                    []float64
	Temps                      []float64
}

// PaperPlan returns the measurement plan of the paper: Vgs transfer sweeps at
// Vds = 50 mV and 750 mV, from 300 K down to 10 K. Voltages are magnitudes;
// the station mirrors them for p-type devices.
func PaperPlan() Plan {
	return Plan{
		VgsStart: 0, VgsStop: 0.75, VgsStep: 0.025,
		VdsList: []float64{0.05, 0.75},
		Temps:   []float64{300, 200, 100, 77, 50, 25, 10},
	}
}

// Station is the virtual instrument. NoiseRel is the relative current noise
// (1 sigma), NoiseFloor the absolute instrument noise floor in amperes, and
// FluctLo/FluctHi the probe-heat-flux temperature rise range in kelvin.
type Station struct {
	NoiseRel   float64
	NoiseFloor float64
	FluctLo    float64
	FluctHi    float64
	rng        *rand.Rand
}

// NewStation returns a station with the paper's documented characteristics
// and a deterministic noise stream derived from seed.
func NewStation(seed int64) *Station {
	return &Station{
		NoiseRel:   0.02,
		NoiseFloor: 5e-13,
		FluctLo:    3.5,
		FluctHi:    8.5,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Measure runs the plan against the reference device and returns the noisy
// dataset. For PFET devices the plan's magnitudes are applied with circuit
// polarity (negative biases) and negative currents are recorded, exactly as
// a real SMU would report them.
func (s *Station) Measure(ref *device.Model, plan Plan) Dataset {
	sign := 1.0
	if ref.Type == device.PFET {
		sign = -1.0
	}
	ds := Dataset{Device: ref.Type.String()}
	for _, temp := range plan.Temps {
		for _, vds := range plan.VdsList {
			for vgs := plan.VgsStart; vgs <= plan.VgsStop+1e-12; vgs += plan.VgsStep {
				tact := temp + s.FluctLo + s.rng.Float64()*(s.FluctHi-s.FluctLo)
				ideal := ref.Ids(sign*vgs, sign*vds, tact)
				noisy := ideal*(1+s.NoiseRel*s.rng.NormFloat64()) + s.NoiseFloor*s.rng.NormFloat64()
				ds.Points = append(ds.Points, Point{
					Vgs:     sign * vgs,
					Vds:     sign * vds,
					TempSet: temp,
					TempAct: tact,
					Ids:     noisy,
				})
			}
		}
	}
	return ds
}

// ReferenceSilicon returns the hidden "wafer" device the station probes: the
// default model card perturbed deterministically, so that calibration has
// real work to do. The perturbation magnitudes reflect realistic
// die-to-model offsets.
func ReferenceSilicon(typ device.Type, seed int64) *device.Model {
	rng := rand.New(rand.NewSource(seed))
	var m *device.Model
	if typ == device.PFET {
		m = device.NewP(1)
	} else {
		m = device.NewN(1)
	}
	p := &m.P
	p.Vth0 *= 1 + 0.06*(rng.Float64()*2-1)
	p.VthTC *= 1 + 0.10*(rng.Float64()*2-1)
	p.TBand *= 1 + 0.12*(rng.Float64()*2-1)
	p.MuPh0 *= 1 + 0.08*(rng.Float64()*2-1)
	p.N0 *= 1 + 0.03*(rng.Float64()*2-1)
	p.DIBL *= 1 + 0.10*(rng.Float64()*2-1)
	return m
}

// FilterVds returns the subset of points measured at the given drain bias
// magnitude.
func (d Dataset) FilterVds(vdsMag float64) []Point {
	var out []Point
	for _, pt := range d.Points {
		if math.Abs(math.Abs(pt.Vds)-vdsMag) < 1e-9 {
			out = append(out, pt)
		}
	}
	return out
}

// FilterTemp returns the subset of points at the given setpoint.
func (d Dataset) FilterTemp(tempSet float64) []Point {
	var out []Point
	for _, pt := range d.Points {
		if pt.TempSet == tempSet {
			out = append(out, pt)
		}
	}
	return out
}
