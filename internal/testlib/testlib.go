// Package testlib fabricates small synthetic liberty libraries from PDK
// cell definitions with closed-form (rather than SPICE-characterized)
// timing and power models. Tests of the mapper, STA, power, and synthesis
// layers use it to stay fast and deterministic; the real flow uses
// internal/charlib instead.
package testlib

import (
	"repro/internal/liberty"
	"repro/internal/pdk"
)

// Names returns the default cell subset used by fast tests.
func Names() []string {
	return []string{
		"INVx1", "INVx2", "INVx4",
		"BUFx1",
		"NAND2x1", "NAND2x2", "NOR2x1", "AND2x1", "OR2x1",
		"NAND2Bx1", "NOR2Bx1", "AND2Bx1", "OR2Bx1",
		"NAND3x1", "NOR3x1", "AND3x1", "OR3x1",
		"NAND4x1", "NOR4x1",
		"XOR2x1", "XNOR2x1",
		"AOI21x1", "OAI21x1", "AOI22x1", "OAI22x1",
		"MUX2x1", "MUXI2x1", "MAJ3x1", "MAJI3x1",
	}
}

// Build fabricates a liberty library over the named PDK cells. tempK only
// scales the leakage (mimicking the cryogenic collapse): leakage at 10 K is
// 1e-4 of the 300 K value.
func Build(catalog []*pdk.Cell, names []string, tempK float64) (*liberty.Library, []*pdk.Cell) {
	lib := &liberty.Library{Name: "testlib", TempK: tempK, Vdd: 0.7}
	var used []*pdk.Cell
	leakScale := 1.0
	if tempK < 100 {
		leakScale = 1e-4
	}
	slews := []float64{5e-12, 20e-12, 80e-12}
	loads := []float64{0.4e-15, 1.6e-15, 6.4e-15}
	for _, name := range names {
		cell := pdk.FindCell(catalog, name)
		if cell == nil || cell.Seq {
			continue
		}
		used = append(used, cell)
		area := cell.Area()
		lc := &liberty.Cell{
			Name:         name,
			Area:         area,
			LeakagePower: 0.4e-12 * area * leakScale,
		}
		for _, in := range cell.Inputs {
			lc.Pins = append(lc.Pins, &liberty.Pin{
				Name:      in,
				Direction: "input",
				Cap:       cell.InputCap(in, tempK),
			})
		}
		for _, out := range cell.Outputs {
			pin := &liberty.Pin{Name: out, Direction: "output"}
			for _, in := range cell.Inputs {
				mk := func(base float64) *liberty.Table {
					t := liberty.NewTable(slews, loads)
					for i, s := range slews {
						for j, l := range loads {
							t.Values[i][j] = base + 0.3*s + l*2e3*float64(cell.TransistorCount())/float64(4*cell.Drive)
						}
					}
					return t
				}
				mkE := func(base float64) *liberty.Table {
					t := liberty.NewTable(slews, loads)
					for i, s := range slews {
						for j, l := range loads {
							t.Values[i][j] = base + 1e-17*area + 0.01e-15*s/1e-12 + 0.2*l*0.49
						}
					}
					return t
				}
				pin.Timings = append(pin.Timings, &liberty.Timing{
					RelatedPin: in,
					Sense:      liberty.SenseNonUnate,
					CellRise:   mk(2e-12),
					CellFall:   mk(1.8e-12),
					RiseTrans:  mk(1.5e-12),
					FallTrans:  mk(1.4e-12),
				})
				pin.Powers = append(pin.Powers, &liberty.InternalPower{
					RelatedPin: in,
					RisePower:  mkE(0.05e-15),
					FallPower:  mkE(0.04e-15),
				})
			}
			lc.Pins = append(lc.Pins, pin)
		}
		lib.Cells = append(lib.Cells, lc)
	}
	return lib, used
}
