// Package explain is the cross-run QoR attribution engine: where
// internal/qor's diff says *that* a metric moved, explain says *why* —
// which endpoint path, which cell and liberty arc, slew- or load-driven,
// which power class, and which flow stages and engine counters shifted
// alongside. It consumes the provenance the v2 baseline schema records
// (per-corner critical paths and power-by-cell-class) and renders
// markdown/JSON attribution reports for cryobench and cryoobs.
package explain

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/qor"
)

// Options tunes attribution significance thresholds.
type Options struct {
	// QoRRelEps is the relative floor below which a QoR delta is noise
	// (matches qor.Thresholds.QoRRelEps: the flow is deterministic).
	QoRRelEps float64
	// ArcRelEps is the relative floor for per-arc delay/slew/load deltas.
	ArcRelEps float64
	// TopArcs bounds the arcs listed per path delta (ranked by |delta|).
	TopArcs int
	// StageFrac/IQRMult/MinSeconds gate the stage wall-time correlation
	// (same semantics as qor.Thresholds).
	StageFrac  float64
	IQRMult    float64
	MinSeconds float64
	// CounterFrac/MinCount gate the engine-counter correlation.
	CounterFrac float64
	MinCount    float64
}

// DefaultOptions are the cryobench/cryoobs defaults.
func DefaultOptions() Options {
	return Options{
		QoRRelEps:   1e-9,
		ArcRelEps:   1e-9,
		TopArcs:     5,
		StageFrac:   0.30,
		IQRMult:     3.0,
		MinSeconds:  5e-3,
		CounterFrac: 0.30,
		MinCount:    64,
	}
}

// Report is one attribution run: every QoR delta between two baselines,
// explained down to cells, arcs, and power classes, plus the runtime
// correlation (stage wall times, engine counters) that moved with it.
type Report struct {
	BaseLabel string `json:"base_label"`
	CurLabel  string `json:"cur_label"`
	// ZeroDelta is the self-diff property: true iff no QoR delta was
	// attributed (runtime/counter shifts are correlation, not QoR, and do
	// not break it).
	ZeroDelta bool `json:"zero_delta"`
	// AttributedDeltas counts the QoR-bearing deltas explained below.
	AttributedDeltas int            `json:"attributed_deltas"`
	Circuits         []CircuitDelta `json:"circuits,omitempty"`
	// Stages holds profile- or journal-level stage shifts (per-circuit
	// shifts live inside Circuits).
	Stages []StageDelta   `json:"stages,omitempty"`
	Engine []CounterDelta `json:"engine,omitempty"`
	// Notes records coverage caveats: missing provenance, unverifiable
	// artifacts, circuits present on only one side.
	Notes []string `json:"notes,omitempty"`
}

// CircuitDelta groups one (circuit, scenario)'s attributed deltas.
type CircuitDelta struct {
	Key     string        `json:"key"`
	Corners []CornerDelta `json:"corners,omitempty"`
	Stages  []StageDelta  `json:"stages,omitempty"`
}

// CornerDelta explains one temperature corner's QoR movement.
type CornerDelta struct {
	TempK float64 `json:"temp_k"`
	// Metrics lists the corner scalars that moved beyond the epsilon.
	Metrics []MetricDelta `json:"metrics,omitempty"`
	Paths   []PathDelta   `json:"paths,omitempty"`
	Power   []PowerDelta  `json:"power,omitempty"`
	// Summary is the one-line headline ("WNS -50 ps: concentrated in
	// NAND3x2 A2 arc at 4 K, slew-driven").
	Summary string `json:"summary,omitempty"`
}

// MetricDelta is one moved corner scalar.
type MetricDelta struct {
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	Cur    float64 `json:"cur"`
}

// Delta returns cur-base.
func (m *MetricDelta) Delta() float64 { return m.Cur - m.Base }

// Path match statuses.
const (
	PathMatched = "matched"
	PathNew     = "new"     // endpoint only in the current run
	PathRemoved = "removed" // endpoint only in the baseline
)

// PathDelta attributes one endpoint's arrival movement arc by arc.
type PathDelta struct {
	Endpoint string     `json:"endpoint"`
	Status   string     `json:"status"`
	BaseSec  float64    `json:"base_arrival_seconds,omitempty"`
	CurSec   float64    `json:"cur_arrival_seconds,omitempty"`
	DeltaSec float64    `json:"delta_seconds"`
	Arcs     []ArcDelta `json:"arcs,omitempty"`
	// ResidualSec is the arrival delta not covered by the listed arcs
	// (arcs beyond TopArcs, or structural mismatch).
	ResidualSec float64 `json:"residual_seconds,omitempty"`
	// Culprit is the one-line attribution for this path.
	Culprit string `json:"culprit,omitempty"`
}

// Arc change kinds.
const (
	ArcDelayShift = "delay-shift"
	ArcCellSwap   = "cell-swap"
	ArcAdded      = "added"   // arc only on the current path (structural)
	ArcRemoved    = "removed" // arc only on the baseline path (structural)
)

// Arc delta drivers: what moved the arc's delay.
const (
	DriverCell       = "cell-driven"  // the mapped cell changed
	DriverSlew       = "slew-driven"  // the input transition degraded/improved
	DriverLoad       = "load-driven"  // the output load changed
	DriverTable      = "table-driven" // same cell/slew/load: the liberty tables moved
	DriverStructural = "structural"
)

// ArcDelta is one liberty arc's contribution to a path delta.
type ArcDelta struct {
	ToNet        string  `json:"to_net"`
	Gate         string  `json:"gate,omitempty"`
	BaseCell     string  `json:"base_cell,omitempty"`
	CurCell      string  `json:"cur_cell,omitempty"`
	Pin          string  `json:"pin,omitempty"`
	DeltaSec     float64 `json:"delta_seconds"`
	SlewDeltaSec float64 `json:"slew_delta_seconds,omitempty"`
	LoadDeltaF   float64 `json:"load_delta_f,omitempty"`
	Change       string  `json:"change"`
	Driver       string  `json:"driver"`
}

// Label renders the arc's cell identity: "NAND3x2" or "NAND3x1->NAND3x2".
func (a *ArcDelta) Label() string {
	switch {
	case a.BaseCell == a.CurCell:
		return a.CurCell
	case a.BaseCell == "":
		return a.CurCell
	case a.CurCell == "":
		return a.BaseCell
	default:
		return a.BaseCell + "->" + a.CurCell
	}
}

// PowerDelta attributes power movement to one cell class.
type PowerDelta struct {
	Cell       string  `json:"cell"`
	BaseCount  int     `json:"base_count"`
	CurCount   int     `json:"cur_count"`
	LeakageW   float64 `json:"leakage_delta_w,omitempty"`
	InternalW  float64 `json:"internal_delta_w,omitempty"`
	SwitchingW float64 `json:"switching_delta_w,omitempty"`
	// Dominant names the component carrying the largest |delta|:
	// "leakage", "internal", or "switching".
	Dominant string `json:"dominant,omitempty"`
}

// TotalW returns the class's summed power delta.
func (p *PowerDelta) TotalW() float64 { return p.LeakageW + p.InternalW + p.SwitchingW }

// StageDelta is one stage wall-time shift beyond the noise thresholds.
type StageDelta struct {
	Stage   string  `json:"stage"`
	BaseSec float64 `json:"base_seconds"`
	CurSec  float64 `json:"cur_seconds"`
	Note    string  `json:"note,omitempty"`
}

// CounterDelta is one engine-counter shift beyond the noise thresholds.
type CounterDelta struct {
	Name string  `json:"name"`
	Base float64 `json:"base"`
	Cur  float64 `json:"cur"`
}

// Diff attributes every QoR delta between base and cur. It never fails:
// missing provenance degrades to scalar-level attribution with a Note.
func Diff(base, cur *qor.Baseline, opt Options) *Report {
	if opt.QoRRelEps == 0 {
		opt = DefaultOptions()
	}
	r := &Report{
		BaseLabel: baselineLabel(base),
		CurLabel:  baselineLabel(cur),
	}
	if base == nil || cur == nil {
		r.Notes = append(r.Notes, "missing baseline: nothing to attribute")
		r.ZeroDelta = true
		return r
	}
	baseByKey := map[string]*qor.Circuit{}
	for i := range base.Circuits {
		baseByKey[circuitKey(&base.Circuits[i])] = &base.Circuits[i]
	}
	seen := map[string]bool{}
	for i := range cur.Circuits {
		cc := &cur.Circuits[i]
		key := circuitKey(cc)
		bc, ok := baseByKey[key]
		if !ok {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: only in current run (no baseline to attribute against)", key))
			r.AttributedDeltas++
			continue
		}
		seen[key] = true
		if cd := diffCircuit(bc, cc, opt, r); cd != nil {
			r.Circuits = append(r.Circuits, *cd)
		}
	}
	for i := range base.Circuits {
		if key := circuitKey(&base.Circuits[i]); !seen[key] {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: dropped from current run", key))
			r.AttributedDeltas++
		}
	}
	r.Engine = diffCounters(base.Engine, cur.Engine, opt)
	r.ZeroDelta = r.AttributedDeltas == 0
	return r
}

func baselineLabel(b *qor.Baseline) string {
	if b == nil {
		return "(none)"
	}
	s := b.Tool + ":" + b.Profile
	if b.CreatedAt != "" {
		s += "@" + b.CreatedAt
	}
	return s
}

func circuitKey(c *qor.Circuit) string { return c.Name + "/" + c.Scenario }

// cornerScalars mirrors qor's exactly-compared corner fields.
var cornerScalars = []struct {
	name string
	get  func(*qor.Corner) float64
}{
	{"gates", func(c *qor.Corner) float64 { return float64(c.Gates) }},
	{"area", func(c *qor.Corner) float64 { return c.Area }},
	{"critical_delay_seconds", func(c *qor.Corner) float64 { return c.CriticalSec }},
	{"wns_seconds", func(c *qor.Corner) float64 { return c.WNSSec }},
	{"tns_seconds", func(c *qor.Corner) float64 { return c.TNSSec }},
	{"leakage_w", func(c *qor.Corner) float64 { return c.LeakageW }},
	{"dynamic_w", func(c *qor.Corner) float64 { return c.DynamicW }},
	{"total_w", func(c *qor.Corner) float64 { return c.TotalW }},
}

func diffCircuit(base, cur *qor.Circuit, opt Options, r *Report) *CircuitDelta {
	cd := &CircuitDelta{Key: circuitKey(cur)}
	baseCorner := map[float64]*qor.Corner{}
	for i := range base.Corners {
		baseCorner[base.Corners[i].TempK] = &base.Corners[i]
	}
	for i := range cur.Corners {
		cc := &cur.Corners[i]
		bc, ok := baseCorner[cc.TempK]
		if !ok {
			r.Notes = append(r.Notes, fmt.Sprintf("%s @%gK: corner only in current run", cd.Key, cc.TempK))
			r.AttributedDeltas++
			continue
		}
		if corner := diffCorner(bc, cc, opt, r); corner != nil {
			cd.Corners = append(cd.Corners, *corner)
		}
	}
	curTemps := map[float64]bool{}
	for i := range cur.Corners {
		curTemps[cur.Corners[i].TempK] = true
	}
	for i := range base.Corners {
		if t := base.Corners[i].TempK; !curTemps[t] {
			r.Notes = append(r.Notes, fmt.Sprintf("%s @%gK: corner dropped from current run", cd.Key, t))
			r.AttributedDeltas++
		}
	}
	// AIG trajectory shifts are QoR deltas too (they precede mapping).
	if base.AIGNodesOpt != cur.AIGNodesOpt || base.AIGDepthOpt != cur.AIGDepthOpt {
		r.AttributedDeltas++
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: technology-independent trajectory moved (nodes %d->%d, depth %d->%d) — upstream of mapping",
			cd.Key, base.AIGNodesOpt, cur.AIGNodesOpt, base.AIGDepthOpt, cur.AIGDepthOpt))
	}
	cd.Stages = diffStages(base.StageSeconds, cur.StageSeconds, opt)
	if len(cd.Corners) == 0 && len(cd.Stages) == 0 {
		return nil
	}
	return cd
}

func diffCorner(base, cur *qor.Corner, opt Options, r *Report) *CornerDelta {
	out := &CornerDelta{TempK: cur.TempK}
	for _, m := range cornerScalars {
		bv, cv := m.get(base), m.get(cur)
		if !relEqual(bv, cv, opt.QoRRelEps) {
			out.Metrics = append(out.Metrics, MetricDelta{Metric: m.name, Base: bv, Cur: cv})
			r.AttributedDeltas++
		}
	}
	out.Paths = diffPaths(base.Paths, cur.Paths, opt, r)
	out.Power = diffPowerClasses(base.PowerByClass, cur.PowerByClass, opt, r)
	if len(out.Metrics) > 0 && len(base.Paths) == 0 && len(cur.Paths) == 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"@%gK: no path provenance recorded on either side; arc-level attribution unavailable (re-record with schema v%d)",
			cur.TempK, qor.SchemaVersion))
	}
	if len(out.Metrics) == 0 && len(out.Paths) == 0 && len(out.Power) == 0 {
		return nil
	}
	out.Summary = cornerSummary(out)
	return out
}

// diffPaths matches paths by endpoint and attributes arrival deltas arc by
// arc. Only endpoints whose arrival moved (or that exist on one side only)
// produce a PathDelta.
func diffPaths(base, cur []qor.PathRecord, opt Options, r *Report) []PathDelta {
	baseByEp := map[string]*qor.PathRecord{}
	for i := range base {
		baseByEp[base[i].Endpoint] = &base[i]
	}
	var out []PathDelta
	seen := map[string]bool{}
	for i := range cur {
		cp := &cur[i]
		bp, ok := baseByEp[cp.Endpoint]
		if !ok {
			out = append(out, PathDelta{
				Endpoint: cp.Endpoint, Status: PathNew,
				CurSec: cp.ArrivalSec, DeltaSec: cp.ArrivalSec,
				Culprit: "endpoint entered the top-K critical set",
			})
			r.AttributedDeltas++
			continue
		}
		seen[cp.Endpoint] = true
		if relEqual(bp.ArrivalSec, cp.ArrivalSec, opt.QoRRelEps) && samePathShape(bp, cp) {
			continue
		}
		pd := PathDelta{
			Endpoint: cp.Endpoint, Status: PathMatched,
			BaseSec: bp.ArrivalSec, CurSec: cp.ArrivalSec,
			DeltaSec: cp.ArrivalSec - bp.ArrivalSec,
		}
		pd.Arcs, pd.ResidualSec = diffArcs(bp, cp, opt)
		pd.Culprit = pathCulprit(&pd)
		out = append(out, pd)
		r.AttributedDeltas++
	}
	for i := range base {
		bp := &base[i]
		if seen[bp.Endpoint] {
			continue
		}
		out = append(out, PathDelta{
			Endpoint: bp.Endpoint, Status: PathRemoved,
			BaseSec: bp.ArrivalSec, DeltaSec: -bp.ArrivalSec,
			Culprit: "endpoint left the top-K critical set",
		})
		r.AttributedDeltas++
	}
	return out
}

// samePathShape reports whether two matched paths traverse the same arcs
// with identical provenance (so a zero-arrival-delta path with a swapped
// cell still gets attributed).
func samePathShape(a, b *qor.PathRecord) bool {
	if len(a.Arcs) != len(b.Arcs) {
		return false
	}
	for i := range a.Arcs {
		if a.Arcs[i] != b.Arcs[i] {
			return false
		}
	}
	return true
}

// diffArcs aligns two matched paths by driven net and classifies each
// moved arc: what changed (cell swap, delay shift, structural) and what
// drove it (cell, slew, load, or the tables themselves).
func diffArcs(base, cur *qor.PathRecord, opt Options) ([]ArcDelta, float64) {
	baseByNet := map[string]*qor.ArcRecord{}
	for i := range base.Arcs {
		baseByNet[base.Arcs[i].ToNet] = &base.Arcs[i]
	}
	// Input slews come from the predecessor arc's recorded SlewSec.
	baseSlewAt := pathSlews(base)
	curSlewAt := pathSlews(cur)

	var out []ArcDelta
	covered := 0.0
	for i := range cur.Arcs {
		ca := &cur.Arcs[i]
		ba, ok := baseByNet[ca.ToNet]
		if !ok {
			out = append(out, ArcDelta{
				ToNet: ca.ToNet, Gate: ca.Gate, CurCell: ca.Cell, Pin: ca.Pin,
				DeltaSec: ca.DelaySec, Change: ArcAdded, Driver: DriverStructural,
			})
			covered += ca.DelaySec
			continue
		}
		d := ca.DelaySec - ba.DelaySec
		cellSwapped := ba.Cell != ca.Cell
		if !cellSwapped && relEqual(ba.DelaySec, ca.DelaySec, opt.ArcRelEps) {
			continue
		}
		ad := ArcDelta{
			ToNet: ca.ToNet, Gate: ca.Gate,
			BaseCell: ba.Cell, CurCell: ca.Cell, Pin: ca.Pin,
			DeltaSec:     d,
			SlewDeltaSec: curSlewAt[ca.FromNet] - baseSlewAt[ba.FromNet],
			LoadDeltaF:   ca.LoadF - ba.LoadF,
			Change:       ArcDelayShift,
		}
		switch {
		case cellSwapped:
			ad.Change = ArcCellSwap
			ad.Driver = DriverCell
		case !relEqual(baseSlewAt[ba.FromNet], curSlewAt[ca.FromNet], opt.ArcRelEps):
			ad.Driver = DriverSlew
		case !relEqual(ba.LoadF, ca.LoadF, opt.ArcRelEps):
			ad.Driver = DriverLoad
		default:
			ad.Driver = DriverTable
		}
		covered += d
		out = append(out, ad)
	}
	for i := range base.Arcs {
		ba := &base.Arcs[i]
		if _, stillThere := findArc(cur, ba.ToNet); !stillThere {
			out = append(out, ArcDelta{
				ToNet: ba.ToNet, Gate: ba.Gate, BaseCell: ba.Cell, Pin: ba.Pin,
				DeltaSec: -ba.DelaySec, Change: ArcRemoved, Driver: DriverStructural,
			})
			covered += -ba.DelaySec
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].DeltaSec) > math.Abs(out[j].DeltaSec)
	})
	residual := (cur.ArrivalSec - base.ArrivalSec) - covered
	if opt.TopArcs > 0 && len(out) > opt.TopArcs {
		for _, a := range out[opt.TopArcs:] {
			residual += a.DeltaSec
		}
		out = out[:opt.TopArcs]
	}
	if math.Abs(residual) < 1e-18 {
		residual = 0
	}
	return out, residual
}

func findArc(p *qor.PathRecord, toNet string) (*qor.ArcRecord, bool) {
	for i := range p.Arcs {
		if p.Arcs[i].ToNet == toNet {
			return &p.Arcs[i], true
		}
	}
	return nil, false
}

// pathSlews maps each net on the path to its recorded transition time, so
// an arc's input slew is the predecessor's entry.
func pathSlews(p *qor.PathRecord) map[string]float64 {
	m := make(map[string]float64, len(p.Arcs))
	for i := range p.Arcs {
		m[p.Arcs[i].ToNet] = p.Arcs[i].SlewSec
	}
	return m
}

// pathCulprit writes the one-line attribution: the dominant arc and how
// much of the path delta it carries.
func pathCulprit(pd *PathDelta) string {
	if len(pd.Arcs) == 0 {
		return "arrival moved with no per-arc delta (provenance missing or load/slew boundary shift)"
	}
	a := &pd.Arcs[0]
	where := a.Label()
	if a.Pin != "" {
		where += " " + a.Pin + "-arc"
	}
	if a.Gate != "" {
		where += " at " + a.Gate
	}
	frac := ""
	if pd.DeltaSec != 0 {
		frac = fmt.Sprintf(", %.0f%% of the path delta", 100*a.DeltaSec/pd.DeltaSec)
	}
	return fmt.Sprintf("delta concentrated in %s (%s): %+.2f ps of %+.2f ps%s",
		where, a.Driver, a.DeltaSec*1e12, pd.DeltaSec*1e12, frac)
}

// diffPowerClasses attributes power movement by cell class.
func diffPowerClasses(base, cur []qor.ClassPower, opt Options, r *Report) []PowerDelta {
	baseByCell := map[string]*qor.ClassPower{}
	for i := range base {
		baseByCell[base[i].Cell] = &base[i]
	}
	var out []PowerDelta
	seen := map[string]bool{}
	for i := range cur {
		cc := &cur[i]
		bc := baseByCell[cc.Cell]
		var b qor.ClassPower
		if bc != nil {
			b = *bc
			seen[cc.Cell] = true
		}
		pd := PowerDelta{
			Cell: cc.Cell, BaseCount: b.Count, CurCount: cc.Count,
			LeakageW:   cc.LeakageW - b.LeakageW,
			InternalW:  cc.InternalW - b.InternalW,
			SwitchingW: cc.SwitchingW - b.SwitchingW,
		}
		if relEqual(b.LeakageW, cc.LeakageW, opt.QoRRelEps) &&
			relEqual(b.InternalW, cc.InternalW, opt.QoRRelEps) &&
			relEqual(b.SwitchingW, cc.SwitchingW, opt.QoRRelEps) &&
			b.Count == cc.Count {
			continue
		}
		pd.Dominant = dominantComponent(&pd)
		out = append(out, pd)
		r.AttributedDeltas++
	}
	for i := range base {
		bc := &base[i]
		if seen[bc.Cell] {
			continue
		}
		if _, stillThere := findClass(cur, bc.Cell); stillThere {
			continue
		}
		pd := PowerDelta{
			Cell: bc.Cell, BaseCount: bc.Count, CurCount: 0,
			LeakageW:   -bc.LeakageW,
			InternalW:  -bc.InternalW,
			SwitchingW: -bc.SwitchingW,
		}
		pd.Dominant = dominantComponent(&pd)
		out = append(out, pd)
		r.AttributedDeltas++
	}
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].TotalW()) > math.Abs(out[j].TotalW())
	})
	return out
}

func findClass(classes []qor.ClassPower, cell string) (*qor.ClassPower, bool) {
	for i := range classes {
		if classes[i].Cell == cell {
			return &classes[i], true
		}
	}
	return nil, false
}

func dominantComponent(p *PowerDelta) string {
	l, i, s := math.Abs(p.LeakageW), math.Abs(p.InternalW), math.Abs(p.SwitchingW)
	switch {
	case l >= i && l >= s:
		return "leakage"
	case s >= i:
		return "switching"
	default:
		return "internal"
	}
}

// cornerSummary writes the corner headline from the strongest evidence:
// a WNS/delay movement with its dominant path culprit, then power.
func cornerSummary(c *CornerDelta) string {
	var parts []string
	for _, m := range c.Metrics {
		switch m.Metric {
		case "wns_seconds":
			parts = append(parts, fmt.Sprintf("WNS %+.2f ps", m.Delta()*1e12))
		case "total_w":
			parts = append(parts, fmt.Sprintf("power %+.4g W", m.Delta()))
		case "area":
			parts = append(parts, fmt.Sprintf("area %+.4g", m.Delta()))
		}
	}
	head := ""
	if len(parts) > 0 {
		head = parts[0]
		for _, p := range parts[1:] {
			head += ", " + p
		}
	}
	for i := range c.Paths {
		if c.Paths[i].Status == PathMatched && len(c.Paths[i].Arcs) > 0 {
			if head != "" {
				head += ": "
			}
			head += c.Paths[i].Culprit
			break
		}
	}
	if len(c.Power) > 0 {
		p := &c.Power[0]
		if head != "" {
			head += "; "
		}
		head += fmt.Sprintf("power delta led by %s (%s, %+.4g W, count %d->%d)",
			p.Cell, p.Dominant, p.TotalW(), p.BaseCount, p.CurCount)
	}
	return head
}

// diffStages applies the qor noise rule to stage wall-time medians and
// returns the shifts worth correlating.
func diffStages(base, cur map[string]qor.Stat, opt Options) []StageDelta {
	var out []StageDelta
	for stage, cs := range cur {
		bs, ok := base[stage]
		if !ok {
			continue
		}
		if bs.Median < opt.MinSeconds && cs.Median < opt.MinSeconds {
			continue
		}
		if !noisyShift(bs, cs, opt.StageFrac, opt.IQRMult) {
			continue
		}
		out = append(out, StageDelta{
			Stage: stage, BaseSec: bs.Median, CurSec: cs.Median,
			Note: fmt.Sprintf("median %.4g -> %.4g s (IQR %.2g/%.2g, n=%d)",
				bs.Median, cs.Median, bs.IQR, cs.IQR, cs.N),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// diffCounters applies the same rule to engine counters.
func diffCounters(base, cur map[string]qor.Stat, opt Options) []CounterDelta {
	var out []CounterDelta
	for name, cs := range cur {
		bs, ok := base[name]
		if !ok {
			continue
		}
		if bs.Median < opt.MinCount && cs.Median < opt.MinCount {
			continue
		}
		if !noisyShift(bs, cs, opt.CounterFrac, opt.IQRMult) {
			continue
		}
		out = append(out, CounterDelta{Name: name, Base: bs.Median, Cur: cs.Median})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// noisyShift reports whether the median moved beyond BOTH the relative
// band and the IQR noise band (qor.noisyVerdict's rule, direction-blind).
func noisyShift(base, cur qor.Stat, frac, iqrMult float64) bool {
	shift := math.Abs(cur.Median - base.Median)
	relBand := frac * math.Abs(base.Median)
	noiseBand := iqrMult * math.Max(base.IQR, cur.IQR)
	return shift > math.Max(relBand, 1e-300) && shift > noiseBand
}

// relEqual is the shared relative-epsilon comparison.
func relEqual(a, b, relEps float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= relEps*scale
}
