package explain

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/qor"
)

// RunFacts is the explain-relevant extract of one journal run: per-stage
// wall-time samples, failure count, and the QoR baseline artifacts the run
// recorded (with their provenance hashes).
type RunFacts struct {
	RunID    string
	Bin      string
	Stages   map[string][]float64 // stage -> wall-time samples (seconds)
	Failures int
	// Baselines are cryobench baseline artifacts the journal attests to,
	// in emission order.
	Baselines []BaselineRef
}

// BaselineRef is one journal-attested baseline artifact.
type BaselineRef struct {
	Path   string
	SHA256 string
}

// Facts extracts RunFacts from a journal event stream.
func Facts(events []obs.Event) *RunFacts {
	f := &RunFacts{Stages: map[string][]float64{}}
	for i := range events {
		e := &events[i]
		if f.RunID == "" && e.Run != "" {
			f.RunID = e.Run
		}
		switch e.Kind {
		case obs.KindRunStart:
			if b := e.Attrs["bin"]; b != "" {
				f.Bin = b
			}
		case obs.KindStageEnd:
			if s := e.Attrs["seconds"]; s != "" {
				if sec, err := strconv.ParseFloat(s, 64); err == nil {
					f.Stages[e.Stage] = append(f.Stages[e.Stage], sec)
				}
			}
		case obs.KindFailure:
			f.Failures++
		case obs.KindArtifact:
			path := e.Attrs["path"]
			if e.Stage == "cryobench" && strings.HasSuffix(path, ".json") {
				f.Baselines = append(f.Baselines, BaselineRef{Path: path, SHA256: e.Attrs["sha256"]})
			}
		}
	}
	return f
}

// Verify checks that the artifact on disk still matches the journal's
// recorded hash — attribution over drifted artifacts would lie.
func (b *BaselineRef) Verify() error {
	f, err := os.Open(b.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	if sum := hex.EncodeToString(h.Sum(nil)); sum != b.SHA256 {
		return fmt.Errorf("%s drifted on disk: journal sha %.12s, disk sha %.12s", b.Path, b.SHA256, sum)
	}
	return nil
}

// DiffJournals attributes the difference between two journal runs: stage
// wall-time shifts always; full QoR attribution when both journals attest
// to a baseline artifact that is still intact on disk. It never fails on
// missing provenance — gaps become Notes.
func DiffJournals(baseEvents, curEvents []obs.Event, opt Options) *Report {
	if opt.QoRRelEps == 0 {
		opt = DefaultOptions()
	}
	bf, cf := Facts(baseEvents), Facts(curEvents)
	r := &Report{
		BaseLabel: journalLabel(bf),
		CurLabel:  journalLabel(cf),
	}
	r.Stages = diffStages(stageStats(bf), stageStats(cf), opt)
	if bf.Failures != cf.Failures {
		r.Notes = append(r.Notes, fmt.Sprintf("failure count moved: %d -> %d", bf.Failures, cf.Failures))
	}

	bb := loadAttested(bf, r, "baseline journal")
	cb := loadAttested(cf, r, "current journal")
	if bb != nil && cb != nil {
		qr := Diff(bb, cb, opt)
		r.Circuits = qr.Circuits
		r.Engine = qr.Engine
		r.AttributedDeltas = qr.AttributedDeltas
		r.Notes = append(r.Notes, qr.Notes...)
	} else {
		r.Notes = append(r.Notes,
			"QoR attribution skipped: both journals must attest to an intact cryobench baseline artifact")
	}
	r.ZeroDelta = r.AttributedDeltas == 0
	return r
}

func journalLabel(f *RunFacts) string {
	bin := f.Bin
	if bin == "" {
		bin = "journal"
	}
	if f.RunID == "" {
		return bin
	}
	return bin + ":" + f.RunID
}

// stageStats summarizes each stage's samples the way qor baselines do.
func stageStats(f *RunFacts) map[string]qor.Stat {
	out := make(map[string]qor.Stat, len(f.Stages))
	names := make([]string, 0, len(f.Stages))
	for name := range f.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out[name] = qor.NewStat(f.Stages[name])
	}
	return out
}

// loadAttested resolves a journal's attested baseline: the last intact
// artifact wins (a run may write intermediates). Failures become Notes.
func loadAttested(f *RunFacts, r *Report, side string) *qor.Baseline {
	for i := len(f.Baselines) - 1; i >= 0; i-- {
		ref := &f.Baselines[i]
		if err := ref.Verify(); err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: %v", side, err))
			continue
		}
		b, err := qor.ReadBaselineFile(ref.Path)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: %v", side, err))
			continue
		}
		return b
	}
	return nil
}
