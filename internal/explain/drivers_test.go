package explain_test

import (
	"strings"
	"testing"

	"repro/internal/explain"
	"repro/internal/qor"
)

// twoArcPath builds a launch point plus two gate arcs ending at endpoint
// "y" through nets n1 and n2.
func twoArcPath(d1, d2, slew1, slew2, load2 float64, cell2 string) qor.PathRecord {
	return qor.PathRecord{
		Endpoint:   "y",
		ArrivalSec: d1 + d2,
		SlackSec:   1e-9 - (d1 + d2),
		Arcs: []qor.ArcRecord{
			{ToNet: "a", SlewSec: 1e-11},
			{FromNet: "a", ToNet: "n1", Gate: "g1", Cell: "INVx1", Pin: "A",
				DelaySec: d1, ArrivalSec: d1, SlewSec: slew1, LoadF: 2e-15},
			{FromNet: "n1", ToNet: "n2", Gate: "g2", Cell: cell2, Pin: "A",
				DelaySec: d2, ArrivalSec: d1 + d2, SlewSec: slew2, LoadF: load2},
		},
	}
}

func cornerWith(p qor.PathRecord) qor.Corner {
	return qor.Corner{TempK: 300, Paths: []qor.PathRecord{p}}
}

func baselineWith(c qor.Corner) *qor.Baseline {
	return &qor.Baseline{
		SchemaVersion: qor.SchemaVersion, Tool: "cryobench", Profile: "unit",
		Circuits: []qor.Circuit{{
			Name: "t", Scenario: "s", Deterministic: true,
			Corners: []qor.Corner{c},
		}},
	}
}

// firstPath digs the single attributed path out of a report.
func firstPath(t *testing.T, rep *explain.Report) *explain.PathDelta {
	t.Helper()
	for i := range rep.Circuits {
		for j := range rep.Circuits[i].Corners {
			if ps := rep.Circuits[i].Corners[j].Paths; len(ps) > 0 {
				return &ps[0]
			}
		}
	}
	t.Fatalf("no path delta in report: %+v", rep)
	return nil
}

func TestArcDriverClassification(t *testing.T) {
	base := twoArcPath(10e-12, 20e-12, 10e-12, 15e-12, 3e-15, "NAND2x1")
	opt := explain.DefaultOptions()

	t.Run("slew-driven", func(t *testing.T) {
		// g1 slows and its output slew degrades; g2's delay moves because
		// its input transition (n1's slew) degraded.
		cur := twoArcPath(14e-12, 23e-12, 14e-12, 15e-12, 3e-15, "NAND2x1")
		rep := explain.Diff(baselineWith(cornerWith(base)), baselineWith(cornerWith(cur)), opt)
		p := firstPath(t, rep)
		var g2 *explain.ArcDelta
		for i := range p.Arcs {
			if p.Arcs[i].ToNet == "n2" {
				g2 = &p.Arcs[i]
			}
		}
		if g2 == nil {
			t.Fatalf("g2 arc not attributed: %+v", p.Arcs)
		}
		if g2.Driver != explain.DriverSlew {
			t.Errorf("g2 driver = %s, want %s", g2.Driver, explain.DriverSlew)
		}
		if g2.SlewDeltaSec <= 0 {
			t.Errorf("slew delta not recorded: %+v", g2)
		}
	})

	t.Run("load-driven", func(t *testing.T) {
		// Same slews, g2's output load grows.
		cur := twoArcPath(10e-12, 24e-12, 10e-12, 15e-12, 5e-15, "NAND2x1")
		rep := explain.Diff(baselineWith(cornerWith(base)), baselineWith(cornerWith(cur)), opt)
		p := firstPath(t, rep)
		var g2 *explain.ArcDelta
		for i := range p.Arcs {
			if p.Arcs[i].ToNet == "n2" {
				g2 = &p.Arcs[i]
			}
		}
		if g2 == nil || g2.Driver != explain.DriverLoad {
			t.Errorf("g2 = %+v, want %s", g2, explain.DriverLoad)
		}
	})

	t.Run("table-driven", func(t *testing.T) {
		// Same cell, slew, load — only the delay moved: the library moved.
		cur := twoArcPath(10e-12, 26e-12, 10e-12, 15e-12, 3e-15, "NAND2x1")
		rep := explain.Diff(baselineWith(cornerWith(base)), baselineWith(cornerWith(cur)), opt)
		p := firstPath(t, rep)
		var g2 *explain.ArcDelta
		for i := range p.Arcs {
			if p.Arcs[i].ToNet == "n2" {
				g2 = &p.Arcs[i]
			}
		}
		if g2 == nil || g2.Driver != explain.DriverTable {
			t.Errorf("g2 = %+v, want %s", g2, explain.DriverTable)
		}
	})

	t.Run("cell-swap-wins", func(t *testing.T) {
		// Cell changed AND slew changed: the swap is the explanation.
		cur := twoArcPath(10e-12, 17e-12, 10e-12, 12e-12, 3e-15, "NAND2x2")
		rep := explain.Diff(baselineWith(cornerWith(base)), baselineWith(cornerWith(cur)), opt)
		p := firstPath(t, rep)
		var g2 *explain.ArcDelta
		for i := range p.Arcs {
			if p.Arcs[i].ToNet == "n2" {
				g2 = &p.Arcs[i]
			}
		}
		if g2 == nil || g2.Change != explain.ArcCellSwap || g2.Driver != explain.DriverCell {
			t.Errorf("g2 = %+v, want %s/%s", g2, explain.ArcCellSwap, explain.DriverCell)
		}
		if g2.Label() != "NAND2x1->NAND2x2" {
			t.Errorf("Label = %q", g2.Label())
		}
	})
}

func TestStructuralPathChanges(t *testing.T) {
	opt := explain.DefaultOptions()
	base := cornerWith(twoArcPath(10e-12, 20e-12, 10e-12, 15e-12, 3e-15, "NAND2x1"))

	// New endpoint appears in the top-K set; old one leaves.
	curPath := twoArcPath(10e-12, 20e-12, 10e-12, 15e-12, 3e-15, "NAND2x1")
	curPath.Endpoint = "z"
	cur := cornerWith(curPath)
	rep := explain.Diff(baselineWith(base), baselineWith(cur), opt)
	if rep.ZeroDelta {
		t.Fatal("endpoint churn attributed nothing")
	}
	var sawNew, sawRemoved bool
	for _, cd := range rep.Circuits {
		for _, c := range cd.Corners {
			for _, p := range c.Paths {
				switch p.Status {
				case explain.PathNew:
					sawNew = true
					if p.Endpoint != "z" {
						t.Errorf("new endpoint = %s, want z", p.Endpoint)
					}
				case explain.PathRemoved:
					sawRemoved = true
					if p.Endpoint != "y" {
						t.Errorf("removed endpoint = %s, want y", p.Endpoint)
					}
				}
			}
		}
	}
	if !sawNew || !sawRemoved {
		t.Errorf("endpoint churn not classified (new=%v removed=%v)", sawNew, sawRemoved)
	}
}

func TestArcStructuralChanges(t *testing.T) {
	opt := explain.DefaultOptions()
	base := twoArcPath(10e-12, 20e-12, 10e-12, 15e-12, 3e-15, "NAND2x1")
	// The current path routes through an extra buffer net n1b.
	cur := base
	cur.Arcs = append([]qor.ArcRecord(nil), base.Arcs...)
	extra := qor.ArcRecord{FromNet: "n1", ToNet: "n1b", Gate: "g9", Cell: "BUFx1",
		Pin: "A", DelaySec: 5e-12, ArrivalSec: 15e-12, SlewSec: 10e-12, LoadF: 2e-15}
	cur.Arcs = append(cur.Arcs[:2:2], append([]qor.ArcRecord{extra}, cur.Arcs[2:]...)...)
	cur.Arcs[3].FromNet = "n1b"
	cur.ArrivalSec += 5e-12

	rep := explain.Diff(baselineWith(cornerWith(base)), baselineWith(cornerWith(cur)), opt)
	p := firstPath(t, rep)
	var added *explain.ArcDelta
	for i := range p.Arcs {
		if p.Arcs[i].Change == explain.ArcAdded {
			added = &p.Arcs[i]
		}
	}
	if added == nil || added.ToNet != "n1b" || added.Driver != explain.DriverStructural {
		t.Errorf("added buffer arc not classified structural: %+v", p.Arcs)
	}
}

func TestMissingProvenanceDegradesToNote(t *testing.T) {
	// Schema-v1-style corners: scalars only. A WNS delta must still be
	// reported, with a note that arc attribution is unavailable.
	mk := func(wns float64) *qor.Baseline {
		return baselineWith(qor.Corner{TempK: 300, WNSSec: wns})
	}
	rep := explain.Diff(mk(7e-10), mk(6.5e-10), explain.DefaultOptions())
	if rep.ZeroDelta {
		t.Fatal("WNS delta attributed nothing")
	}
	foundNote := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "no path provenance") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Errorf("missing-provenance note absent: %v", rep.Notes)
	}
}
