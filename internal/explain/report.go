package explain

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the attribution report (indented, trailing newline).
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteText renders the console attribution report.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "QoR attribution: %s  vs  %s\n", r.CurLabel, r.BaseLabel); err != nil {
		return err
	}
	if r.ZeroDelta {
		fmt.Fprintln(w, "zero attributed delta: the runs are QoR-identical")
		r.writeCorrelationText(w)
		return nil
	}
	fmt.Fprintf(w, "%d attributed deltas\n", r.AttributedDeltas)
	for _, cd := range r.Circuits {
		for _, c := range cd.Corners {
			fmt.Fprintf(w, "\n%s @%gK: %s\n", cd.Key, c.TempK, c.Summary)
			for _, m := range c.Metrics {
				fmt.Fprintf(w, "  %-24s %14.6g -> %-14.6g (%+.3g)\n", m.Metric, m.Base, m.Cur, m.Delta())
			}
			for _, p := range c.Paths {
				switch p.Status {
				case PathMatched:
					fmt.Fprintf(w, "  path %s: arrival %+.2f ps  (%s)\n", p.Endpoint, p.DeltaSec*1e12, p.Culprit)
					for _, a := range p.Arcs {
						fmt.Fprintf(w, "    arc -> %-12s %-18s pin %-4s %+9.3f ps  [%s, %s]\n",
							a.ToNet, a.Label(), orDash(a.Pin), a.DeltaSec*1e12, a.Change, a.Driver)
					}
					if p.ResidualSec != 0 {
						fmt.Fprintf(w, "    (residual %+.3f ps not covered by listed arcs)\n", p.ResidualSec*1e12)
					}
				default:
					fmt.Fprintf(w, "  path %s: %s (%s)\n", p.Endpoint, p.Status, p.Culprit)
				}
			}
			for _, p := range c.Power {
				fmt.Fprintf(w, "  power %-12s count %d->%d  leak %+.4g  int %+.4g  sw %+.4g  [%s-driven]\n",
					p.Cell, p.BaseCount, p.CurCount, p.LeakageW, p.InternalW, p.SwitchingW, p.Dominant)
			}
		}
		for _, s := range cd.Stages {
			fmt.Fprintf(w, "  stage %-28s %.4g -> %.4g s  (%s)\n", s.Stage, s.BaseSec, s.CurSec, s.Note)
		}
	}
	r.writeCorrelationText(w)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

func (r *Report) writeCorrelationText(w io.Writer) {
	for _, s := range r.Stages {
		fmt.Fprintf(w, "stage %-28s %.4g -> %.4g s  (%s)\n", s.Stage, s.BaseSec, s.CurSec, s.Note)
	}
	for _, e := range r.Engine {
		fmt.Fprintf(w, "engine %-32s %.6g -> %.6g\n", e.Name, e.Base, e.Cur)
	}
}

// WriteMarkdown renders the attribution report as a markdown section,
// designed to be appended to the qor diff report (the CI artifact).
func (r *Report) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n# QoR attribution\n\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "- current: `%s`\n- baseline: `%s`\n", r.CurLabel, r.BaseLabel)
	if r.ZeroDelta {
		fmt.Fprintf(w, "- **zero attributed delta** — the runs are QoR-identical ✅\n")
	} else {
		fmt.Fprintf(w, "- **%d attributed deltas**\n", r.AttributedDeltas)
	}
	fmt.Fprintln(w)
	for _, cd := range r.Circuits {
		for _, c := range cd.Corners {
			fmt.Fprintf(w, "## %s @%gK\n\n", cd.Key, c.TempK)
			if c.Summary != "" {
				fmt.Fprintf(w, "> %s\n\n", c.Summary)
			}
			if len(c.Metrics) > 0 {
				fmt.Fprintf(w, "| metric | base | current | delta |\n|---|---:|---:|---:|\n")
				for _, m := range c.Metrics {
					fmt.Fprintf(w, "| %s | %.6g | %.6g | %+.3g |\n", m.Metric, m.Base, m.Cur, m.Delta())
				}
				fmt.Fprintln(w)
			}
			for _, p := range c.Paths {
				switch p.Status {
				case PathMatched:
					fmt.Fprintf(w, "**path `%s`** arrival %+.2f ps — %s\n\n", p.Endpoint, p.DeltaSec*1e12, p.Culprit)
					if len(p.Arcs) > 0 {
						fmt.Fprintf(w, "| net | cell | pin | Δdelay (ps) | Δslew (ps) | Δload (fF) | change | driver |\n")
						fmt.Fprintf(w, "|---|---|---|---:|---:|---:|---|---|\n")
						for _, a := range p.Arcs {
							fmt.Fprintf(w, "| %s | %s | %s | %+.3f | %+.3f | %+.4f | %s | %s |\n",
								a.ToNet, a.Label(), orDash(a.Pin), a.DeltaSec*1e12,
								a.SlewDeltaSec*1e12, a.LoadDeltaF*1e15, a.Change, a.Driver)
						}
						if p.ResidualSec != 0 {
							fmt.Fprintf(w, "\nresidual %+.3f ps not covered by listed arcs\n", p.ResidualSec*1e12)
						}
						fmt.Fprintln(w)
					}
				default:
					fmt.Fprintf(w, "**path `%s`**: %s — %s\n\n", p.Endpoint, p.Status, p.Culprit)
				}
			}
			if len(c.Power) > 0 {
				fmt.Fprintf(w, "| cell class | count | Δleakage (W) | Δinternal (W) | Δswitching (W) | dominant |\n")
				fmt.Fprintf(w, "|---|---|---:|---:|---:|---|\n")
				for _, p := range c.Power {
					fmt.Fprintf(w, "| %s | %d→%d | %+.4g | %+.4g | %+.4g | %s |\n",
						p.Cell, p.BaseCount, p.CurCount, p.LeakageW, p.InternalW, p.SwitchingW, p.Dominant)
				}
				fmt.Fprintln(w)
			}
		}
		if len(cd.Stages) > 0 {
			fmt.Fprintf(w, "**%s stage shifts**\n\n", cd.Key)
			writeStageTable(w, cd.Stages)
		}
	}
	if len(r.Stages) > 0 {
		fmt.Fprintf(w, "## Stage wall-time shifts\n\n")
		writeStageTable(w, r.Stages)
	}
	if len(r.Engine) > 0 {
		fmt.Fprintf(w, "## Engine counter shifts\n\n")
		fmt.Fprintf(w, "| counter | base | current |\n|---|---:|---:|\n")
		for _, e := range r.Engine {
			fmt.Fprintf(w, "| %s | %.6g | %.6g |\n", e.Name, e.Base, e.Cur)
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "> ⚠️ %s\n", n)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
	}
	return nil
}

func writeStageTable(w io.Writer, stages []StageDelta) {
	fmt.Fprintf(w, "| stage | base (s) | current (s) | note |\n|---|---:|---:|---|\n")
	for _, s := range stages {
		fmt.Fprintf(w, "| %s | %.4g | %.4g | %s |\n", s.Stage, s.BaseSec, s.CurSec, s.Note)
	}
	fmt.Fprintln(w)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
